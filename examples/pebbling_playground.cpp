// Interactive visualisation of the Sec. 3 pebbling game: watch pebbles
// and cond-pointers evolve move by move on a chosen tree shape.
//
//   $ ./pebbling_playground --n=12 --shape=zigzag
//   $ ./pebbling_playground --n=1024 --shape=random --quiet   # counts only
//
// Legend: '*' pebbled, '.' unpebbled; '->(p,q)' shows cond(x) when it has
// left its own node.

#include <cstdio>
#include <string>

#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trees/generators.hpp"
#include "trees/pebble_game.hpp"
#include "trees/render.hpp"

int main(int argc, char** argv) {
  subdp::support::ArgParser args(
      "Pebbling game playground (paper Sec. 3, Fig. 2)");
  args.add_int("n", 12, "number of leaves");
  args.add_string("shape", "zigzag",
                  "complete | left-skewed | right-skewed | zigzag | random "
                  "| biased-random");
  args.add_int("seed", 1, "random seed (random shapes)");
  args.add_string("rule", "one-level",
                  "square rule: one-level (this paper) | path-doubling "
                  "(Rytter)");
  args.add_bool("quiet", false, "suppress per-move rendering");
  if (!args.parse(argc, argv)) return 2;

  const auto n = static_cast<std::size_t>(args.get_int("n"));
  const auto shape = subdp::trees::shape_from_string(args.get_string("shape"));
  if (!shape) {
    std::fprintf(stderr, "unknown shape '%s'\n",
                 args.get_string("shape").c_str());
    return 2;
  }
  const auto rule = args.get_string("rule") == "path-doubling"
                        ? subdp::trees::SquareRule::kPathDoubling
                        : subdp::trees::SquareRule::kOneLevel;
  const bool quiet = args.get_bool("quiet") || n > 64;

  subdp::support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
  const auto tree = subdp::trees::make_tree(*shape, n, &rng);
  subdp::trees::PebbleGame game(tree, rule);

  const auto decorate = [&](subdp::trees::NodeId x) {
    std::string mark = game.pebbled(x) ? "*" : ".";
    if (game.cond(x) != x) {
      mark += " ->(" + std::to_string(tree.lo(game.cond(x))) + "," +
              std::to_string(tree.hi(game.cond(x))) + ")";
    }
    return mark;
  };

  const std::size_t bound = subdp::support::two_ceil_sqrt(n);
  if (!quiet) {
    std::printf("move 0 (initial):\n%s\n",
                subdp::trees::render_sideways(tree, decorate).c_str());
  }
  while (!game.root_pebbled() && game.moves_made() < bound) {
    game.move();
    if (!quiet) {
      std::printf("after move %zu (%zu/%zu nodes pebbled):\n%s\n",
                  game.moves_made(), game.pebble_count(), tree.node_count(),
                  subdp::trees::render_sideways(tree, decorate).c_str());
    }
  }

  std::printf(
      "%s tree, n=%zu leaves, %s square rule:\n"
      "  root pebbled after %zu moves (Lemma 3.3 bound: %zu; log2(n)=%zu)\n",
      subdp::trees::to_string(*shape), n, subdp::trees::to_string(rule),
      game.moves_made(), bound, subdp::support::ceil_log2(n < 2 ? 2 : n));
  return game.root_pebbled() ? 0 : 1;
}
