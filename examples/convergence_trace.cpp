// Watch the algorithm converge: per-iteration trace of pw'/w' activity
// on a chosen instance family — the view behind the paper's Sec. 6-7
// simulation remarks. Try the adversarial family to see the schedule
// fully consumed:
//
//   $ ./convergence_trace --family=matrix-chain --n=48
//   $ ./convergence_trace --family=zigzag --n=49

#include <cstdio>
#include <iostream>
#include <memory>

#include "core/convergence_report.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/sequential.hpp"
#include "dp/tabulated.hpp"
#include "dp/tree_shaped.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "trees/generators.hpp"

using namespace subdp;

namespace {

std::unique_ptr<dp::Problem> make_family(const std::string& family,
                                         std::size_t n,
                                         support::Rng& rng) {
  if (family == "matrix-chain") {
    return std::make_unique<dp::MatrixChainProblem>(
        dp::MatrixChainProblem::random(n, rng));
  }
  if (family == "optimal-bst") {
    return std::make_unique<dp::OptimalBstProblem>(
        dp::OptimalBstProblem::random(n > 1 ? n - 1 : 1, rng));
  }
  const auto shape = trees::shape_from_string(family);
  if (!shape) {
    throw std::invalid_argument("unknown family " + family);
  }
  auto inst = dp::make_tree_shaped_instance(
      trees::make_tree(*shape, n, &rng), rng);
  return std::make_unique<dp::TabulatedProblem>(std::move(inst.problem));
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("Per-iteration convergence trace");
  args.add_string("family", "matrix-chain",
                  "matrix-chain | optimal-bst | zigzag | complete | "
                  "left-skewed | random");
  args.add_int("n", 48, "instance size");
  args.add_int("seed", 9, "random seed");
  args.add_string("termination", "fixed-point",
                  "fixed-point | fixed-bound | w-heuristic");
  if (!args.parse(argc, argv)) return 2;

  support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
  const auto n = static_cast<std::size_t>(args.get_int("n"));
  const auto problem = make_family(args.get_string("family"), n, rng);

  core::SublinearOptions options;
  const auto& term = args.get_string("termination");
  options.termination = term == "fixed-bound"
                            ? core::TerminationMode::kFixedBound
                        : term == "w-heuristic"
                            ? core::TerminationMode::kWUnchangedTwice
                            : core::TerminationMode::kFixedPoint;
  core::SublinearSolver solver(options);
  const auto result = solver.solve(*problem);

  core::convergence_table(
      result, args.get_string("family") + " (n = " + std::to_string(n) +
                  "), banded solver, termination = " + term)
      .print(std::cout);
  std::printf("\n%s\n", core::summarize_convergence(result).c_str());
  std::printf("cost: %lld\n", static_cast<long long>(result.cost));

  const auto check = dp::solve_sequential(*problem).cost;
  std::printf("sequential check: %lld (%s)\n",
              static_cast<long long>(check),
              check == result.cost ? "match" : "MISMATCH");
  return check == result.cost ? 0 : 1;
}
