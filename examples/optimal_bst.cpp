// Optimal binary search tree over a small keyword table: builds the
// dictionary BST that minimises expected lookup cost, using the paper's
// parallel solver, and cross-checks against Knuth's O(n^2) algorithm.
//
//   $ ./optimal_bst

#include <cstdio>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "dp/knuth.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/sequential.hpp"

namespace {

struct Keyword {
  const char* word;
  subdp::Cost frequency;  // lookups per million tokens, say
};

// In-order keyword table (must be sorted; a BST needs ordered keys).
constexpr Keyword kKeywords[] = {
    {"begin", 42}, {"do", 13},    {"else", 25},  {"end", 42},
    {"if", 31},    {"then", 30},  {"while", 17},
};

void print_bst(const subdp::trees::FullBinaryTree& tree,
               subdp::trees::NodeId x, int depth) {
  // Interval (i,j) holds keys i+1..j-1; its split k is the root key k.
  if (tree.is_leaf(x)) return;
  const std::size_t key = tree.split(x);
  print_bst(tree, tree.right(x), depth + 1);
  std::printf("%*s%s\n", 4 * depth + 2, "", kKeywords[key - 1].word);
  print_bst(tree, tree.left(x), depth + 1);
}

}  // namespace

int main() {
  std::vector<subdp::Cost> key_weights;
  for (const auto& kw : kKeywords) key_weights.push_back(kw.frequency);
  // Miss weights: how often a lookup falls between adjacent keywords.
  const std::vector<subdp::Cost> gap_weights(key_weights.size() + 1, 5);

  const subdp::dp::OptimalBstProblem problem(key_weights, gap_weights);
  const auto solution = subdp::core::solve(problem);

  std::printf("optimal BST over %zu keywords (weighted path length %lld)\n",
              key_weights.size(), static_cast<long long>(solution.cost));
  std::printf("tree (rotated 90 degrees, root at the left):\n");
  print_bst(solution.tree, solution.tree.root(), 0);

  // Cross-check with the two classical baselines.
  const auto knuth = subdp::dp::solve_knuth(problem);
  const auto seq = subdp::dp::solve_sequential(problem);
  std::printf("cross-check: sublinear=%lld, knuth=%lld, sequential=%lld\n",
              static_cast<long long>(solution.cost),
              static_cast<long long>(knuth.cost),
              static_cast<long long>(seq.cost));
  return (solution.cost == knuth.cost && knuth.cost == seq.cost) ? 0 : 1;
}
