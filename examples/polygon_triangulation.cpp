// Minimum-perimeter triangulation of a random convex polygon: solves the
// instance with the sublinear algorithm and lists the chosen diagonals.
//
//   $ ./polygon_triangulation --vertices=16 --seed=7

#include <cstdio>
#include <vector>

#include "core/api.hpp"
#include "dp/polygon_triangulation.hpp"
#include "dp/sequential.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  subdp::support::ArgParser args(
      "Minimum-perimeter triangulation of a convex polygon");
  args.add_int("vertices", 16, "number of polygon vertices (>= 3)");
  args.add_int("seed", 7, "random seed for the polygon shape");
  if (!args.parse(argc, argv)) return 2;

  const auto vertices = static_cast<std::size_t>(args.get_int("vertices"));
  if (vertices < 3) {
    std::fprintf(stderr, "need at least 3 vertices\n");
    return 2;
  }
  subdp::support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
  const auto problem =
      subdp::dp::PolygonTriangulationProblem::random_convex(vertices - 1,
                                                            rng);

  const auto solution = subdp::core::solve(problem);
  std::printf("polygon with %zu vertices: optimal triangulation cost %lld "
              "(sum of triangle perimeters x1000)\n",
              vertices, static_cast<long long>(solution.cost));

  // Every internal tree node (i,j) with j > i+1 contributes triangle
  // (v_i, v_k, v_j); edges (i,j) with j - i >= 2 are diagonals.
  std::printf("diagonals drawn:\n");
  const auto& tree = solution.tree;
  std::size_t diagonals = 0;
  for (subdp::trees::NodeId x = 0;
       static_cast<std::size_t>(x) < tree.node_count(); ++x) {
    if (tree.is_leaf(x)) continue;
    const std::size_t i = tree.lo(x);
    const std::size_t j = tree.hi(x);
    if (j - i >= 2 && !(i == 0 && j == problem.size())) {
      std::printf("  v%zu -- v%zu\n", i, j);
      ++diagonals;
    }
  }
  std::printf("%zu diagonals, %zu triangles\n", diagonals, vertices - 2);

  const auto check = subdp::dp::solve_sequential(problem);
  return solution.cost == check.cost ? 0 : 1;
}
