// Quickstart: solve a matrix-chain instance with the paper's sublinear
// algorithm and inspect the solution.
//
//   $ ./quickstart
//
// demonstrates the three lines a typical user needs:
//   MatrixChainProblem problem({30, 35, 15, 5, 10, 20, 25});
//   auto solution = subdp::core::solve(problem);
//   // solution.cost, solution.tree, solution.iterations, ...

#include <cstdio>
#include <functional>
#include <string>

#include "core/api.hpp"
#include "dp/matrix_chain.hpp"

namespace {

// Renders the decomposition tree as a parenthesization of A1..An.
std::string parenthesization(const subdp::trees::FullBinaryTree& tree,
                             subdp::trees::NodeId x) {
  if (tree.is_leaf(x)) {
    return "A" + std::to_string(tree.lo(x) + 1);
  }
  return "(" + parenthesization(tree, tree.left(x)) +
         parenthesization(tree, tree.right(x)) + ")";
}

}  // namespace

int main() {
  // The CLRS Section 15.2 chain: dimensions 30x35, 35x15, 15x5, 5x10,
  // 10x20, 20x25.
  const subdp::dp::MatrixChainProblem problem(
      {30, 35, 15, 5, 10, 20, 25});

  const subdp::core::Solution solution = subdp::core::solve(problem);

  std::printf("subdp quickstart: optimal matrix-chain multiplication\n");
  std::printf("  chain           : 6 matrices, dims 30x35 ... 20x25\n");
  std::printf("  optimal cost    : %lld scalar multiplications\n",
              static_cast<long long>(solution.cost));
  std::printf("  parenthesization: %s\n",
              parenthesization(solution.tree, solution.tree.root()).c_str());
  std::printf("  iterations      : %zu (worst-case schedule %zu = 2*ceil(sqrt n))\n",
              solution.iterations, solution.iteration_bound);
  std::printf("  PRAM work       : %llu elementary operations\n",
              static_cast<unsigned long long>(solution.pram_work));
  std::printf("  PRAM depth      : %llu parallel time units\n",
              static_cast<unsigned long long>(solution.pram_depth));

  return solution.cost == 15125 ? 0 : 1;  // the textbook answer
}
