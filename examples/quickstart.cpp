// Quickstart: solve one matrix-chain instance with the paper's sublinear
// algorithm, then serve a stream of instances through the concurrent
// SolverService front door — blocking batches and async futures.
//
//   $ ./quickstart
//
// demonstrates the three lines a typical user needs:
//   MatrixChainProblem problem({30, 35, 15, 5, 10, 20, 25});
//   auto solution = subdp::core::solve(problem);
//   // solution.cost, solution.tree, solution.iterations, ...
//
// and the serving-shaped API for heavy traffic:
//   serve::SolverService service;                 // hardware workers
//   auto batch  = service.solve_all(instances);   // blocking, ordered
//   auto future = service.submit(problem);        // async
//   // one SolvePlan per (n, options) in a bounded LRU cache, pooled
//   // sessions reset in place, instances overlapped across workers —
//   // results bit-identical to independent solves.
//
// including overload behavior under admission control: a bounded
// dispatch queue that either back-pressures (OverloadPolicy::kBlock) or
// sheds with a typed core::AdmissionError (kReject) carrying a
// retry-after hint the client sleeps on before resubmitting, and
// per-job deadlines that expire un-picked-up jobs instead of solving
// them —
// and plan persistence: `ServiceOptions::snapshot_dir` writes every
// built plan to a versioned on-disk snapshot store, and a restarted
// service prewarms the shapes named in the store's manifest from disk
// before its first request, serving it with no plan-build stall.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/api.hpp"
#include "dp/matrix_chain.hpp"
#include "serve/solver_service.hpp"
#include "support/rng.hpp"

namespace {

// Renders the decomposition tree as a parenthesization of A1..An.
std::string parenthesization(const subdp::trees::FullBinaryTree& tree,
                             subdp::trees::NodeId x) {
  if (tree.is_leaf(x)) {
    return "A" + std::to_string(tree.lo(x) + 1);
  }
  return "(" + parenthesization(tree, tree.left(x)) +
         parenthesization(tree, tree.right(x)) + ")";
}

}  // namespace

int main() {
  // The CLRS Section 15.2 chain: dimensions 30x35, 35x15, 15x5, 5x10,
  // 10x20, 20x25.
  const subdp::dp::MatrixChainProblem problem(
      {30, 35, 15, 5, 10, 20, 25});

  const subdp::core::Solution solution = subdp::core::solve(problem);

  std::printf("subdp quickstart: optimal matrix-chain multiplication\n");
  std::printf("  chain           : 6 matrices, dims 30x35 ... 20x25\n");
  std::printf("  optimal cost    : %lld scalar multiplications\n",
              static_cast<long long>(solution.cost));
  std::printf("  parenthesization: %s\n",
              parenthesization(solution.tree, solution.tree.root()).c_str());
  std::printf("  iterations      : %zu (worst-case schedule %zu = 2*ceil(sqrt n))\n",
              solution.iterations, solution.iteration_bound);
  std::printf("  PRAM work       : %llu elementary operations\n",
              static_cast<unsigned long long>(solution.pram_work));
  std::printf("  PRAM depth      : %llu parallel time units\n",
              static_cast<unsigned long long>(solution.pram_depth));

  // Heavy-traffic shape: many instances, few distinct sizes. The service
  // keeps one immutable SolvePlan per (n, options) in a bounded LRU
  // cache, checks reusable sessions out of a per-plan pool, and overlaps
  // independent instances across its worker threads while each solve
  // runs the serial fast path.
  subdp::support::Rng rng(7);
  std::vector<subdp::dp::MatrixChainProblem> stream;
  for (int k = 0; k < 8; ++k) {
    stream.push_back(subdp::dp::MatrixChainProblem::random(24, rng));
  }
  std::vector<const subdp::dp::Problem*> instances;
  for (const auto& p : stream) instances.push_back(&p);

  subdp::serve::SolverService service;  // hardware_concurrency workers

  // Blocking surface: the whole batch at once, results in input order.
  const subdp::core::BatchResult out = service.solve_all(instances);
  long long cost_sum = 0;
  for (const auto& r : out.results) {
    cost_sum += static_cast<long long>(r.cost);
  }
  std::printf("\n  solve_all        : %zu instances of n=24 in %zu shape "
              "group(s), %zu plan(s) built, %zu worker(s)\n",
              out.ledger.instances, out.ledger.shape_groups,
              out.ledger.plans_built, service.workers());
  std::printf("  total iterations : %zu, summed optimal cost %lld\n",
              out.ledger.total_iterations, cost_sum);

  // Async surface: submit returns a future immediately; the plan and a
  // pooled session are resolved on a worker. Per-call options work too
  // (distinct (n, options) keys occupy distinct cache entries).
  std::vector<std::future<subdp::core::SublinearResult>> futures;
  for (const auto* p : instances) futures.push_back(service.submit(*p));
  bool async_matches = true;
  for (std::size_t k = 0; k < futures.size(); ++k) {
    const auto result = futures[k].get();
    async_matches = async_matches && result.cost == out.results[k].cost &&
                    result.iterations == out.results[k].iterations &&
                    result.w == out.results[k].w;
  }
  const subdp::serve::ServiceStats stats = service.stats();
  std::printf("  async submit     : %zu futures, results %s\n",
              futures.size(),
              async_matches ? "bit-identical to solve_all" : "DIVERGED");
  std::printf("  service stats    : %llu jobs, cache %llu hit / %llu miss, "
              "%llu session reuse(s)\n",
              static_cast<unsigned long long>(stats.jobs_completed),
              static_cast<unsigned long long>(stats.plan_cache.hits),
              static_cast<unsigned long long>(stats.plan_cache.misses),
              static_cast<unsigned long long>(stats.session_reuses));

  // Overload shape: a service with a deliberately tiny intake. The
  // 2-deep bounded queue under kReject sheds bursts with a typed
  // AdmissionError, and a job whose deadline has already passed
  // resolves with the same error instead of occupying a worker.
  // Whatever admission decides, the accounting is exact: every
  // submission ends up completed, rejected, or expired — exactly once.
  subdp::serve::ServiceOptions overload_options;
  overload_options.workers = 1;
  overload_options.queue_capacity = 2;
  overload_options.overload_policy = subdp::serve::OverloadPolicy::kReject;
  subdp::serve::SolverService bounded(overload_options);

  // Each rejection carries a retry-after hint: the queue depth it saw
  // and a drain estimate from the service's queue-wait histogram. A
  // well-behaved client sleeps that long and resubmits instead of
  // hammering the intake — here every shed submit eventually lands.
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t max_depth_seen = 0;
  std::chrono::nanoseconds last_hint{0};
  std::vector<std::future<subdp::core::SublinearResult>> burst;
  for (const auto* p : instances) {
    for (;;) {
      try {
        burst.push_back(bounded.submit(*p));
        ++accepted;
        break;
      } catch (const subdp::core::AdmissionError& e) {
        ++rejected;  // queue full: shed instead of queueing unboundedly
        if (e.has_hint()) {
          max_depth_seen = std::max(max_depth_seen, e.queue_depth());
          last_hint = e.retry_after();
        }
        std::this_thread::sleep_for(
            e.has_hint()
                ? e.retry_after()
                : subdp::serve::kRetryAfterConservativeDefault);
      }
    }
  }
  for (auto& f : burst) (void)f.get();  // admitted jobs all complete
  std::printf("\n  retry-after      : %zu shed submit(s) retried after "
              "hinted backoff (depth %zu, last hint %.1f us) until all "
              "%zu landed\n",
              rejected, max_depth_seen, last_hint.count() / 1e3, accepted);

  // The queue is drained now, so this deadline-carrying submit is
  // admitted — but its deadline already passed, so the worker expires
  // it at pickup without a single f() evaluation.
  auto doomed = bounded.submit(
      stream.front(),
      std::chrono::steady_clock::now() - std::chrono::seconds(1));
  bool deadline_expired = false;
  try {
    (void)doomed.get();
  } catch (const subdp::core::AdmissionError& e) {
    deadline_expired =
        e.kind() == subdp::core::AdmissionError::Kind::kDeadlineExceeded;
  }

  const subdp::serve::ServiceStats bounded_stats = bounded.stats();
  std::printf("  overload (cap 2) : %zu admitted, %zu shed attempt(s), "
              "expired deadline %s\n",
              accepted, rejected, deadline_expired ? "shed" : "LOST");
  std::printf("  admission ledger : %llu submitted == %llu completed + "
              "%llu rejected + %llu expired\n",
              static_cast<unsigned long long>(bounded_stats.jobs_submitted),
              static_cast<unsigned long long>(bounded_stats.jobs_completed),
              static_cast<unsigned long long>(bounded_stats.jobs_rejected),
              static_cast<unsigned long long>(bounded_stats.jobs_expired));

  const bool admission_ok =
      deadline_expired && accepted == instances.size() &&
      bounded_stats.jobs_expired == 1 &&
      bounded_stats.jobs_submitted == bounded_stats.jobs_completed +
                                          bounded_stats.jobs_rejected +
                                          bounded_stats.jobs_expired;

  // Persistence shape: `snapshot_dir` turns the expensive plan build
  // into a one-time cost. Generation 1 builds the n=24 plan (a snapshot
  // miss), writes it back to the store, and names the shape in the
  // prewarm manifest. The "restarted replica" — generation 2 over the
  // same directory — rehydrates it from disk in its constructor, so its
  // first request finds a warm plan: no geometry rebuild, bit-identical
  // results.
  const std::string snapshot_dir =
      (std::filesystem::temp_directory_path() / "subdp-quickstart-snapshots")
          .string();
  std::filesystem::remove_all(snapshot_dir);
  subdp::serve::ServiceOptions persist_options;
  persist_options.workers = 2;
  persist_options.snapshot_dir = snapshot_dir;

  subdp::core::SublinearResult gen1;
  {
    subdp::serve::SolverService gen1_service(persist_options);
    gen1 = gen1_service.submit(stream.front()).get();  // builds + writes back
    gen1_service.snapshot_store()->flush();  // write-back is async; settle it
    gen1_service.snapshot_store()->write_manifest({24});  // the hot shapes
  }  // "process exit"

  bool snapshot_ok = false;
  {
    subdp::serve::SolverService gen2_service(persist_options);  // "restart"
    const subdp::serve::ServiceStats warm_stats = gen2_service.stats();
    const auto warm = gen2_service.submit(stream.front()).get();
    snapshot_ok = warm_stats.shapes_prewarmed == 1 &&
                  warm_stats.snapshot_hits == 1 && warm.cost == gen1.cost &&
                  warm.iterations == gen1.iterations && warm.w == gen1.w;
    std::printf("\n  plan snapshots   : %llu shape(s) prewarmed from disk, "
                "%llu snapshot hit(s), first request %s\n",
                static_cast<unsigned long long>(warm_stats.shapes_prewarmed),
                static_cast<unsigned long long>(warm_stats.snapshot_hits),
                snapshot_ok ? "bit-identical with zero build stalls"
                            : "DIVERGED");
  }
  std::filesystem::remove_all(snapshot_dir);

  // Observability shape: every service records per-stage latency
  // histograms (queue wait, plan build/load, solve, end-to-end) and a
  // per-job lifecycle trace for free. `stats()` carries the histogram
  // snapshots, `metrics()` renders them (with every counter) to
  // Prometheus text or JSON, and `export_trace()` emits Chrome
  // trace-event JSON — load it in Perfetto to see each job's span from
  // submit to resolve, rejections and expiries included.
  std::printf("\n  latency (e2e)    : %zu jobs, p50 %.1f us, p95 %.1f us, "
              "p99 %.1f us\n",
              static_cast<std::size_t>(stats.e2e.count),
              stats.e2e.p50() / 1e3, stats.e2e.p95() / 1e3,
              stats.e2e.p99() / 1e3);

  const std::string prometheus = service.metrics().to_prometheus();
  const std::string trace = bounded.export_trace();
  std::printf("  metrics export   : %zu bytes of Prometheus text "
              "(subdp_jobs_completed, subdp_e2e_ns_p95, ...)\n",
              prometheus.size());
  std::printf("  trace export     : %zu bytes of Chrome trace JSON "
              "covering completed, rejected and expired jobs\n",
              trace.size());

  const bool obs_ok =
      stats.e2e.count == stats.jobs_completed &&
      prometheus.find("subdp_jobs_completed") != std::string::npos &&
      prometheus.find("subdp_e2e_ns_p95") != std::string::npos &&
      trace.find("\"traceEvents\"") != std::string::npos &&
      trace.find("rejected") != std::string::npos &&
      trace.find("expired") != std::string::npos;

  const bool serve_ok = async_matches && out.ledger.plans_built == 1 &&
                        out.results.size() == 8 &&
                        stats.jobs_completed == 16;
  // textbook answer, intact serving + admission + persistence +
  // observability contracts
  return solution.cost == 15125 && serve_ok && admission_ok &&
                 snapshot_ok && obs_ok
             ? 0
             : 1;
}
