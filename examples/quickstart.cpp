// Quickstart: solve a matrix-chain instance with the paper's sublinear
// algorithm, then batch-solve a stream of same-shape instances through
// the prepare-once/solve-many front door.
//
//   $ ./quickstart
//
// demonstrates the three lines a typical user needs:
//   MatrixChainProblem problem({30, 35, 15, 5, 10, 20, 25});
//   auto solution = subdp::core::solve(problem);
//   // solution.cost, solution.tree, solution.iterations, ...
//
// and the serving-shaped API for many instances:
//   core::BatchSolver batch;
//   auto out = batch.solve_all(instances);   // one plan per shape,
//   // out.results[k].cost, ...              // tables reused in place

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "dp/matrix_chain.hpp"
#include "support/rng.hpp"

namespace {

// Renders the decomposition tree as a parenthesization of A1..An.
std::string parenthesization(const subdp::trees::FullBinaryTree& tree,
                             subdp::trees::NodeId x) {
  if (tree.is_leaf(x)) {
    return "A" + std::to_string(tree.lo(x) + 1);
  }
  return "(" + parenthesization(tree, tree.left(x)) +
         parenthesization(tree, tree.right(x)) + ")";
}

}  // namespace

int main() {
  // The CLRS Section 15.2 chain: dimensions 30x35, 35x15, 15x5, 5x10,
  // 10x20, 20x25.
  const subdp::dp::MatrixChainProblem problem(
      {30, 35, 15, 5, 10, 20, 25});

  const subdp::core::Solution solution = subdp::core::solve(problem);

  std::printf("subdp quickstart: optimal matrix-chain multiplication\n");
  std::printf("  chain           : 6 matrices, dims 30x35 ... 20x25\n");
  std::printf("  optimal cost    : %lld scalar multiplications\n",
              static_cast<long long>(solution.cost));
  std::printf("  parenthesization: %s\n",
              parenthesization(solution.tree, solution.tree.root()).c_str());
  std::printf("  iterations      : %zu (worst-case schedule %zu = 2*ceil(sqrt n))\n",
              solution.iterations, solution.iteration_bound);
  std::printf("  PRAM work       : %llu elementary operations\n",
              static_cast<unsigned long long>(solution.pram_work));
  std::printf("  PRAM depth      : %llu parallel time units\n",
              static_cast<unsigned long long>(solution.pram_depth));

  // Heavy-traffic shape: many instances, few distinct sizes. BatchSolver
  // groups by size, builds each SolvePlan (entry lists, layout offsets,
  // schedules) once, and re-initialises one session's tables in place
  // across every instance of that shape.
  subdp::support::Rng rng(7);
  std::vector<subdp::dp::MatrixChainProblem> stream;
  for (int k = 0; k < 8; ++k) {
    stream.push_back(subdp::dp::MatrixChainProblem::random(24, rng));
  }
  std::vector<const subdp::dp::Problem*> instances;
  for (const auto& p : stream) instances.push_back(&p);

  subdp::core::BatchSolver batch;
  const subdp::core::BatchResult out = batch.solve_all(instances);

  long long cost_sum = 0;
  for (const auto& r : out.results) {
    cost_sum += static_cast<long long>(r.cost);
  }
  std::printf("\n  batched front door: %zu instances of n=24 in %zu shape "
              "group(s), %zu plan(s) built\n",
              out.ledger.instances, out.ledger.shape_groups,
              out.ledger.plans_built);
  std::printf("  total iterations : %zu, summed optimal cost %lld\n",
              out.ledger.total_iterations, cost_sum);

  const bool batch_ok =
      out.ledger.plans_built == 1 && out.results.size() == 8;
  return solution.cost == 15125 && batch_ok ? 0 : 1;  // textbook answer
}
