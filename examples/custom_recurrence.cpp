// Plugging a user-defined recurrence into the solver: any cost of the
// family  c(i,j) = min_k { c(i,k) + c(k,j) + f(i,k,j) }  works. Here:
// optimal *ordered file merge* — merging adjacent runs of lengths
// len[i..n-1], where merging two runs costs the total length (the classic
// polyfile merge / "minimum merge cost" problem).
//
//   $ ./custom_recurrence --n=20 --seed=3

#include <cstdio>
#include <numeric>
#include <vector>

#include "core/api.hpp"
#include "dp/sequential.hpp"
#include "dp/tabulated.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  subdp::support::ArgParser args(
      "Custom recurrence demo: optimal ordered merge of adjacent runs");
  args.add_int("n", 20, "number of runs to merge");
  args.add_int("seed", 3, "random seed for run lengths");
  if (!args.parse(argc, argv)) return 2;

  const auto n = static_cast<std::size_t>(args.get_int("n"));
  subdp::support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));

  std::vector<subdp::Cost> run_length(n);
  for (auto& len : run_length) len = rng.uniform_int(1, 100);
  std::vector<subdp::Cost> prefix(n + 1, 0);
  for (std::size_t t = 0; t < n; ++t) {
    prefix[t + 1] = prefix[t] + run_length[t];
  }

  // Merging the runs of interval (i,j) — however parenthesized inside —
  // always ends with one merge touching every element once: f = total
  // length of (i,j), independent of the split.
  const auto problem = subdp::dp::TabulatedProblem::from_functions(
      n, "ordered-merge",
      [](std::size_t) { return subdp::Cost{0}; },
      [&](std::size_t i, std::size_t, std::size_t j) {
        return prefix[j] - prefix[i];
      });

  const auto solution = subdp::core::solve(problem);
  const auto total =
      std::accumulate(run_length.begin(), run_length.end(), subdp::Cost{0});
  std::printf("%zu runs, %lld elements total\n", n,
              static_cast<long long>(total));
  std::printf("optimal merge cost: %lld element moves\n",
              static_cast<long long>(solution.cost));
  std::printf("solved in %zu iterations (bound %zu) with %llu PRAM ops\n",
              solution.iterations, solution.iteration_bound,
              static_cast<unsigned long long>(solution.pram_work));

  // Sanity: the engine-independent O(n^3) DP agrees.
  const auto check = subdp::dp::solve_sequential(problem);
  std::printf("sequential check: %lld\n",
              static_cast<long long>(check.cost));
  return solution.cost == check.cost ? 0 : 1;
}
