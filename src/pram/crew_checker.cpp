#include "pram/crew_checker.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace subdp::pram {

void CrewChecker::begin_step(const std::string& label) {
  const std::lock_guard<std::mutex> lock(mutex_);
  SUBDP_REQUIRE(!in_step_, "begin_step while a step is already open");
  writes_.clear();
  current_label_ = label;
  in_step_ = true;
}

void CrewChecker::record_write(std::uint64_t address) {
  const std::lock_guard<std::mutex> lock(mutex_);
  SUBDP_ASSERT(in_step_);
  writes_.push_back(address);
}

void CrewChecker::end_step() {
  const std::lock_guard<std::mutex> lock(mutex_);
  SUBDP_REQUIRE(in_step_, "end_step without begin_step");
  in_step_ = false;
  std::sort(writes_.begin(), writes_.end());
  for (std::size_t i = 1; i < writes_.size(); ++i) {
    if (writes_[i] == writes_[i - 1]) {
      ++violations_;
      if (first_violation_.empty()) {
        std::size_t count = 2;
        while (i + count - 1 < writes_.size() &&
               writes_[i + count - 1] == writes_[i]) {
          ++count;
        }
        first_violation_ = "step " + current_label_ + ": cell " +
                           std::to_string(writes_[i]) + " written " +
                           std::to_string(count) + " times";
      }
      // Skip past this run of duplicates.
      while (i + 1 < writes_.size() && writes_[i + 1] == writes_[i]) ++i;
    }
  }
  writes_.clear();
}

void CrewChecker::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  writes_.clear();
  in_step_ = false;
  violations_ = 0;
  first_violation_.clear();
}

}  // namespace subdp::pram
