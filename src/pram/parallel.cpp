#include "pram/parallel.hpp"

#include <algorithm>

#include "pram/thread_pool.hpp"

#ifdef SUBDP_HAVE_OPENMP
#include <omp.h>
#endif

namespace subdp::pram {

namespace {

#ifdef SUBDP_HAVE_OPENMP
void openmp_for_blocked(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t n = end - begin;
  if (grain <= 0) {
    const auto threads = static_cast<std::int64_t>(omp_get_max_threads());
    grain = std::max<std::int64_t>(1, n / std::max<std::int64_t>(1, threads * 8));
  }
  const std::int64_t blocks = (n + grain - 1) / grain;
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t lo = begin + b * grain;
    const std::int64_t hi = std::min(lo + grain, end);
    body(lo, hi);
  }
}
#endif

}  // namespace

void parallel_for_blocked(
    Backend backend, std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (begin >= end) return;
  switch (backend) {
    case Backend::kSerial:
      body(begin, end);
      return;
    case Backend::kThreadPool:
      ThreadPool::shared().parallel_for(begin, end, grain, body);
      return;
    case Backend::kOpenMP:
#ifdef SUBDP_HAVE_OPENMP
      openmp_for_blocked(begin, end, grain, body);
#else
      body(begin, end);  // graceful fallback when OpenMP is compiled out
#endif
      return;
  }
}

void parallel_for_each(Backend backend, std::int64_t begin, std::int64_t end,
                       const std::function<void(std::int64_t)>& body) {
  parallel_for_blocked(backend, begin, end, 0,
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i) body(i);
                       });
}

}  // namespace subdp::pram
