#include "pram/machine.hpp"

#include <atomic>

#include "pram/parallel.hpp"
#include "support/stats.hpp"

namespace subdp::pram {

Machine::Machine(MachineOptions options) : options_(options) {
  if (options_.check_crew) {
    crew_ = std::make_unique<CrewChecker>();
  }
}

std::uint64_t Machine::step(const std::string& label, std::int64_t n,
                            const StepBody& body) {
  if (n <= 0) return 0;
  if (crew_) crew_->begin_step(label);

  std::atomic<std::uint64_t> total_ops{0};
  std::atomic<std::uint64_t> max_ops{0};

  parallel_for_blocked(
      options_.backend, 0, n, 0,
      [&](std::int64_t lo, std::int64_t hi) {
        std::uint64_t block_ops = 0;
        std::uint64_t block_max = 0;
        for (std::int64_t i = lo; i < hi; ++i) {
          const std::uint64_t ops = body(i);
          block_ops += ops;
          if (ops > block_max) block_max = ops;
        }
        total_ops.fetch_add(block_ops, std::memory_order_relaxed);
        std::uint64_t seen = max_ops.load(std::memory_order_relaxed);
        while (seen < block_max &&
               !max_ops.compare_exchange_weak(seen, block_max,
                                              std::memory_order_relaxed)) {
        }
      });

  if (crew_) crew_->end_step();

  const std::uint64_t work = total_ops.load();
  if (options_.record_costs) {
    const std::uint64_t widest = max_ops.load();
    // A processor scanning m candidates is modelled as a log-depth binary
    // reduction over m leaves; a step where every processor does O(1) work
    // costs unit depth.
    const std::uint64_t depth =
        1 + (widest > 1 ? support::ceil_log2(static_cast<std::size_t>(widest))
                        : 0);
    costs_.add_step(label, work, depth);
  }
  return work;
}

void Machine::reset() {
  costs_.reset();
  if (crew_) crew_->reset();
}

}  // namespace subdp::pram
