#pragma once

/// \file scan.hpp
/// Parallel prefix sums on the PRAM simulator.
///
/// Sec. 4 of the paper notes that the `f(i,k,j)` values of its
/// applications are prepared in parallel before the main iteration —
/// O(1) time / O(n^2) processors for matrix chains and triangulation,
/// O(log n) time / O(n^3) processors for optimal BSTs (whose `f` is an
/// interval weight, i.e. a prefix-sum query). This header provides the
/// classic work-efficient Blelloch scan expressed as `Machine` steps, so
/// the preprocessing phase appears in the same work/depth ledger as the
/// main algorithm.

#include <vector>

#include "pram/machine.hpp"
#include "support/cost.hpp"

namespace subdp::pram {

/// Inclusive prefix sums of `values`, computed as O(log n) accounted
/// PRAM steps on `machine` (up-sweep + down-sweep, O(n) work total).
/// Returns the scanned vector; `values` is unchanged.
[[nodiscard]] std::vector<Cost> inclusive_scan(Machine& machine,
                                               const std::vector<Cost>& values,
                                               const std::string& label);

/// Exclusive variant: element i receives the sum of values[0..i-1].
[[nodiscard]] std::vector<Cost> exclusive_scan(Machine& machine,
                                               const std::vector<Cost>& values,
                                               const std::string& label);

}  // namespace subdp::pram
