#pragma once

/// \file crew_checker.hpp
/// Exclusive-write conformance checking for simulated PRAM steps.
///
/// A CREW PRAM allows concurrent reads but forbids two processors writing
/// the same cell in the same step. Algorithms in this library follow the
/// owner-computes discipline (each cell written by exactly one logical
/// processor per step); the checker verifies that empirically: during a
/// checked step, every write is reported with a linearised cell address,
/// and at `end_step` duplicate addresses are flagged as violations.
///
/// The checker is intended for tests and debugging (it serialises writes
/// through a mutex); production runs leave it disabled.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace subdp::pram {

/// Records writes within one step and detects write-write conflicts.
class CrewChecker {
 public:
  /// Starts a new step; clears the write set.
  void begin_step(const std::string& label);

  /// Reports that the running step wrote cell `address`.
  /// Thread-safe; addresses are namespaced by the caller (e.g. table id
  /// in the top bits).
  void record_write(std::uint64_t address);

  /// Finishes the step; duplicate addresses become violations.
  void end_step();

  /// Number of write-write conflicts observed so far.
  [[nodiscard]] std::size_t violation_count() const noexcept {
    return violations_;
  }

  /// Description of the first conflict ("step <label>: cell <addr> written
  /// k times"), empty if none.
  [[nodiscard]] const std::string& first_violation() const noexcept {
    return first_violation_;
  }

  /// Clears all state including the violation tally.
  void reset();

 private:
  std::mutex mutex_;
  std::vector<std::uint64_t> writes_;
  std::string current_label_;
  bool in_step_ = false;
  std::size_t violations_ = 0;
  std::string first_violation_;
};

}  // namespace subdp::pram
