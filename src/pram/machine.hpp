#pragma once

/// \file machine.hpp
/// The CREW PRAM simulator facade.
///
/// `Machine` ties together execution (a `Backend`), accounting
/// (`CostModel`) and optional conformance checking (`CrewChecker`). A PRAM
/// program is expressed as a sequence of *steps*: `step(label, n, body)`
/// runs `body(i)` for every logical processor `i in [0, n)` in parallel on
/// the host, while the body reports how many elementary operations (table
/// reads + min/add updates) processor `i` performed. The ledger then
/// charges `work = sum(ops)` and `depth = 1 + ceil(log2(max ops))` — the
/// cost of performing each processor's candidate scan as a balanced binary
/// reduction, which is how the paper obtains its `O(n^k / log n)` processor
/// bounds via Brent's theorem.
///
/// Two execution paths share these semantics:
///  * `step` — the checked/instrumented mode: the body is a `std::function`
///    reporting per-processor op counts; the ledger and (optionally) the
///    CREW checker observe every step.
///  * `run_blocks` — the fast path used when `instrumented()` is false: the
///    body is a template parameter invoked once per block, so the per-cell
///    kernel inlines into the worker loop and op-counting / `note_write`
///    bookkeeping compile down to nothing. Results are identical by
///    construction; only the accounting differs.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "pram/backend.hpp"
#include "pram/cost_model.hpp"
#include "pram/crew_checker.hpp"
#include "pram/parallel.hpp"

namespace subdp::pram {

/// Configuration for a `Machine`.
struct MachineOptions {
  Backend backend = default_backend();
  bool check_crew = false;   ///< Enable write-write conflict detection.
  bool record_costs = true;  ///< Keep the work/depth ledger.
};

/// Executes and accounts synchronous PRAM steps.
class Machine {
 public:
  explicit Machine(MachineOptions options = {});

  /// The per-processor body: receives the logical processor index and
  /// returns the number of elementary operations it performed (>= 0; a
  /// pure assignment counts as 1).
  using StepBody = std::function<std::uint64_t(std::int64_t)>;

  /// Runs one synchronous PRAM step with `n` logical processors.
  /// Returns the total work performed in the step.
  std::uint64_t step(const std::string& label, std::int64_t n,
                     const StepBody& body);

  /// Reports a write to linearised cell `address` from inside a step body;
  /// a no-op unless CREW checking is enabled.
  void note_write(std::uint64_t address) {
    if (crew_) crew_->record_write(address);
  }

  /// True when per-op accounting is active (CREW checking or the cost
  /// ledger). When false, callers may use `run_blocks` and skip op
  /// counting entirely.
  [[nodiscard]] bool instrumented() const noexcept {
    return crew_ != nullptr || options_.record_costs;
  }

  /// Fast-path step: runs `body(block_begin, block_end)` over `[0, n)` on
  /// the configured backend with no ledger or CREW bookkeeping. The body
  /// type is a template parameter, so per-cell work inlines into the
  /// worker loop. Intended for `instrumented() == false` runs; semantics
  /// (coverage, synchronisation at return) match `step`.
  template <class BlockBody>
  void run_blocks(std::int64_t n, BlockBody&& body) {
    if (n <= 0) return;
    parallel_for_blocked(options_.backend, 0, n, 0,
                         std::forward<BlockBody>(body));
  }

  [[nodiscard]] Backend backend() const noexcept {
    return options_.backend;
  }
  [[nodiscard]] const CostModel& costs() const noexcept { return costs_; }
  [[nodiscard]] CostModel& costs() noexcept { return costs_; }

  /// Null unless `check_crew` was set.
  [[nodiscard]] const CrewChecker* crew() const noexcept {
    return crew_.get();
  }
  [[nodiscard]] CrewChecker* crew() noexcept { return crew_.get(); }

  /// Clears the ledger (and CREW tallies).
  void reset();

 private:
  MachineOptions options_;
  CostModel costs_;
  std::unique_ptr<CrewChecker> crew_;
};

}  // namespace subdp::pram
