#pragma once

/// \file thread_pool.hpp
/// A persistent fork-join thread pool.
///
/// The pool keeps `worker_count()` threads parked on a condition variable.
/// `parallel_for` publishes one job (an index range plus a chunked body),
/// wakes the workers, participates from the calling thread, and returns when
/// every chunk has run. Chunks are claimed with a single `fetch_add`, so
/// load imbalance between chunks is absorbed dynamically. Exceptions thrown
/// by the body are captured and rethrown on the calling thread.
///
/// `parallel_for` is a template over the body type: the job is published as
/// a raw `(function pointer, context)` pair, so dispatch costs one indirect
/// call per *chunk* while the per-index loop inside the body inlines into
/// the worker — no `std::function` allocation or per-cell type erasure on
/// the hot path. `std::function` bodies still work (they are callables).
///
/// The engine's inner loops are the pool's caller, through
/// `Machine::run_blocks` / `parallel_for_blocked` on the process-wide
/// `shared()` pool. `serve::SolverService` deliberately does *not* run
/// its dispatch through this pool: a fork-join round cannot return
/// before its longest solve, so async submissions arriving mid-round
/// would head-of-line block behind it — the service keeps free-running
/// queue-consumer threads instead, and (when it runs more than one
/// worker) forces each solve onto the serial backend so `shared()`
/// never sees loops issued from two service workers at once, honouring
/// the single-issuer contract below.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace subdp::pram {

/// Fork-join pool; one instance can be reused for any number of loops,
/// but loops must not be issued concurrently from different threads.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = `hardware_concurrency`).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute chunks (workers + the caller).
  [[nodiscard]] unsigned parallelism() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs `body(chunk_begin, chunk_end)` over `[begin, end)` split into
  /// chunks of at most `grain` indices (grain 0 = choose automatically).
  /// Blocks until all chunks have completed.
  template <class Body>
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    Body&& body) {
    using Fn = std::remove_reference_t<Body>;
    parallel_for_erased(
        begin, end, grain,
        [](void* ctx, std::int64_t lo, std::int64_t hi) {
          (*static_cast<Fn*>(ctx))(lo, hi);
        },
        const_cast<std::remove_const_t<Fn>*>(std::addressof(body)));
  }

  /// Process-wide shared pool, created on first use.
  static ThreadPool& shared();

 private:
  /// One chunk of the published job: `fn(ctx, lo, hi)`.
  using BlockFn = void (*)(void*, std::int64_t, std::int64_t);

  /// Type-erased core of `parallel_for` (one erased call per chunk).
  void parallel_for_erased(std::int64_t begin, std::int64_t end,
                           std::int64_t grain, BlockFn fn, void* ctx);

  void worker_loop();
  void run_chunks();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;

  // Current job, valid while generation_ is odd-stepped per dispatch.
  BlockFn body_fn_ = nullptr;
  void* body_ctx_ = nullptr;
  std::int64_t job_begin_ = 0;
  std::int64_t job_end_ = 0;
  std::int64_t job_grain_ = 1;
  std::atomic<std::int64_t> next_chunk_{0};
  std::atomic<unsigned> workers_active_{0};
  std::uint64_t generation_ = 0;
  bool shutting_down_ = false;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace subdp::pram
