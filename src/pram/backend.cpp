#include "pram/backend.hpp"

#include "pram/thread_pool.hpp"

#ifdef SUBDP_HAVE_OPENMP
#include <omp.h>
#endif

namespace subdp::pram {

const char* to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::kSerial:
      return "serial";
    case Backend::kThreadPool:
      return "threads";
    case Backend::kOpenMP:
      return "openmp";
  }
  return "unknown";
}

std::optional<Backend> backend_from_string(const std::string& name) noexcept {
  if (name == "serial") return Backend::kSerial;
  if (name == "threads" || name == "threadpool") return Backend::kThreadPool;
  if (name == "openmp" || name == "omp") return Backend::kOpenMP;
  return std::nullopt;
}

bool openmp_available() noexcept {
#ifdef SUBDP_HAVE_OPENMP
  return true;
#else
  return false;
#endif
}

Backend default_backend() noexcept { return Backend::kThreadPool; }

unsigned backend_parallelism(Backend backend) noexcept {
  switch (backend) {
    case Backend::kSerial:
      return 1;
    case Backend::kThreadPool:
      return ThreadPool::shared().parallelism();
    case Backend::kOpenMP:
#ifdef SUBDP_HAVE_OPENMP
      return static_cast<unsigned>(omp_get_max_threads());
#else
      return 1;  // the loop falls back to serial
#endif
  }
  return 1;
}

}  // namespace subdp::pram
