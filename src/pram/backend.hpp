#pragma once

/// \file backend.hpp
/// Execution backends for PRAM step emulation.
///
/// A CREW PRAM step "for all x in parallel do ..." is *executed* on the host
/// by one of three interchangeable backends. Results are identical across
/// backends by construction (each logical processor owns its output cell),
/// which the test suite verifies; accounting (see `CostModel`) is
/// backend-independent.

#include <optional>
#include <string>

namespace subdp::pram {

/// How parallel steps are run on the host machine.
enum class Backend {
  kSerial,      ///< Plain loop; reference semantics, useful for debugging.
  kThreadPool,  ///< Persistent std::thread pool (subdp's own fork-join).
  kOpenMP,      ///< `#pragma omp parallel for` (falls back to serial if
                ///< OpenMP was disabled at configure time).
};

/// Human-readable backend name ("serial", "threads", "openmp").
[[nodiscard]] const char* to_string(Backend backend) noexcept;

/// Parses a backend name; accepts the strings produced by `to_string`.
[[nodiscard]] std::optional<Backend> backend_from_string(
    const std::string& name) noexcept;

/// True if OpenMP support was compiled in.
[[nodiscard]] bool openmp_available() noexcept;

/// The preferred backend on this build (thread pool; it is always available).
[[nodiscard]] Backend default_backend() noexcept;

/// Host threads a parallel loop on `backend` executes across: 1 for
/// serial, the shared pool's parallelism for the thread pool, OpenMP's
/// max thread count when compiled in (bench rows record this so runs
/// from differently-sized hosts stay distinguishable).
[[nodiscard]] unsigned backend_parallelism(Backend backend) noexcept;

}  // namespace subdp::pram
