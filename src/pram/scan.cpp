#include "pram/scan.hpp"

#include "support/assert.hpp"

namespace subdp::pram {

std::vector<Cost> inclusive_scan(Machine& machine,
                                 const std::vector<Cost>& values,
                                 const std::string& label) {
  const std::size_t n = values.size();
  std::vector<Cost> data = values;
  if (n <= 1) return data;

  // Hillis-Steele-style doubling: log2(n) steps, each a parallel map in
  // which processor i reads data[i - stride] from the previous buffer.
  // (O(n log n) work; acceptable for the O(n)-sized inputs this library
  // scans, and the depth matches the paper's O(log n) preprocessing.)
  std::vector<Cost> previous(n);
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    previous = data;
    machine.step(label, static_cast<std::int64_t>(n),
                 [&](std::int64_t idx) -> std::uint64_t {
                   const auto i = static_cast<std::size_t>(idx);
                   if (i >= stride) {
                     data[i] = sat_add(previous[i], previous[i - stride]);
                     machine.note_write(static_cast<std::uint64_t>(i));
                     return 1;
                   }
                   return 0;
                 });
  }
  return data;
}

std::vector<Cost> exclusive_scan(Machine& machine,
                                 const std::vector<Cost>& values,
                                 const std::string& label) {
  const std::size_t n = values.size();
  const std::vector<Cost> inclusive = inclusive_scan(machine, values, label);
  std::vector<Cost> out(n, 0);
  if (n == 0) return out;
  machine.step(label + "-shift", static_cast<std::int64_t>(n),
               [&](std::int64_t idx) -> std::uint64_t {
                 const auto i = static_cast<std::size_t>(idx);
                 out[i] = i == 0 ? 0 : inclusive[i - 1];
                 machine.note_write(static_cast<std::uint64_t>(i));
                 return 1;
               });
  return out;
}

}  // namespace subdp::pram
