#include "pram/thread_pool.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace subdp::pram {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 2;
  // The calling thread participates, so spawn n-1 workers.
  workers_.reserve(n > 0 ? n - 1 : 0);
  for (unsigned i = 1; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutting_down_ || generation_ != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = generation_;
    }
    run_chunks();
    if (workers_active_.fetch_sub(1) == 1) {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_chunks() {
  for (;;) {
    const std::int64_t chunk_begin =
        next_chunk_.fetch_add(job_grain_, std::memory_order_relaxed);
    if (chunk_begin >= job_end_) return;
    const std::int64_t chunk_end = std::min(chunk_begin + job_grain_, job_end_);
    try {
      body_fn_(body_ctx_, chunk_begin, chunk_end);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::parallel_for_erased(std::int64_t begin, std::int64_t end,
                                     std::int64_t grain, BlockFn fn,
                                     void* ctx) {
  if (begin >= end) return;
  const std::int64_t n = end - begin;
  if (grain <= 0) {
    // Aim for ~8 chunks per thread to smooth imbalance, min grain 1.
    const auto target =
        static_cast<std::int64_t>(parallelism()) * 8;
    grain = std::max<std::int64_t>(1, n / std::max<std::int64_t>(1, target));
  }
  if (workers_.empty() || n <= grain) {
    fn(ctx, begin, end);
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    body_fn_ = fn;
    body_ctx_ = ctx;
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = grain;
    next_chunk_.store(begin, std::memory_order_relaxed);
    workers_active_.store(static_cast<unsigned>(workers_.size()),
                          std::memory_order_relaxed);
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();

  run_chunks();  // the calling thread works too

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return workers_active_.load(std::memory_order_acquire) == 0;
    });
    body_fn_ = nullptr;
    body_ctx_ = nullptr;
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace subdp::pram
