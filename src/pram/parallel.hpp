#pragma once

/// \file parallel.hpp
/// Backend-dispatched parallel loops.
///
/// `parallel_for_blocked` is the primitive every PRAM step compiles down
/// to: the index range is split into blocks and the body is invoked once
/// per block on some host thread. Blocks never overlap and jointly cover
/// the range exactly once, whatever the backend.
///
/// Both loops are templates over the body type so the per-block (and, for
/// `parallel_for_each`, per-index) code inlines into the executing loop;
/// dispatch is type-erased only once per block, never per element.

#include <cstdint>
#include <utility>

#include "pram/backend.hpp"
#include "pram/thread_pool.hpp"

#ifdef SUBDP_HAVE_OPENMP
#include <omp.h>

#include <algorithm>
#endif

namespace subdp::pram {

#ifdef SUBDP_HAVE_OPENMP
namespace detail {
template <class BlockBody>
void openmp_for_blocked(std::int64_t begin, std::int64_t end,
                        std::int64_t grain, BlockBody&& body) {
  const std::int64_t n = end - begin;
  if (grain <= 0) {
    const auto threads = static_cast<std::int64_t>(omp_get_max_threads());
    grain =
        std::max<std::int64_t>(1, n / std::max<std::int64_t>(1, threads * 8));
  }
  const std::int64_t blocks = (n + grain - 1) / grain;
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t lo = begin + b * grain;
    const std::int64_t hi = std::min(lo + grain, end);
    body(lo, hi);
  }
}
}  // namespace detail
#endif

/// Runs `body(block_begin, block_end)` over `[begin, end)` on `backend`.
/// `grain` caps the block size (0 = automatic).
template <class BlockBody>
void parallel_for_blocked(Backend backend, std::int64_t begin,
                          std::int64_t end, std::int64_t grain,
                          BlockBody&& body) {
  if (begin >= end) return;
  switch (backend) {
    case Backend::kSerial:
      body(begin, end);
      return;
    case Backend::kThreadPool:
      ThreadPool::shared().parallel_for(begin, end, grain,
                                        std::forward<BlockBody>(body));
      return;
    case Backend::kOpenMP:
#ifdef SUBDP_HAVE_OPENMP
      detail::openmp_for_blocked(begin, end, grain,
                                 std::forward<BlockBody>(body));
#else
      body(begin, end);  // graceful fallback when OpenMP is compiled out
#endif
      return;
  }
}

/// Element-wise convenience: `body(i)` for each `i` in `[begin, end)`.
template <class Body>
void parallel_for_each(Backend backend, std::int64_t begin, std::int64_t end,
                       Body&& body) {
  parallel_for_blocked(backend, begin, end, 0,
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i) body(i);
                       });
}

}  // namespace subdp::pram
