#pragma once

/// \file parallel.hpp
/// Backend-dispatched parallel loops.
///
/// `parallel_for_blocked` is the primitive every PRAM step compiles down
/// to: the index range is split into blocks and the body is invoked once
/// per block on some host thread. Blocks never overlap and jointly cover
/// the range exactly once, whatever the backend.

#include <cstdint>
#include <functional>

#include "pram/backend.hpp"

namespace subdp::pram {

/// Runs `body(block_begin, block_end)` over `[begin, end)` on `backend`.
/// `grain` caps the block size (0 = automatic).
void parallel_for_blocked(
    Backend backend, std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body);

/// Element-wise convenience: `body(i)` for each `i` in `[begin, end)`.
void parallel_for_each(Backend backend, std::int64_t begin, std::int64_t end,
                       const std::function<void(std::int64_t)>& body);

}  // namespace subdp::pram
