#include "pram/cost_model.hpp"

#include "support/assert.hpp"

namespace subdp::pram {

void CostModel::add_step(const std::string& label, std::uint64_t work,
                         std::uint64_t depth) {
  SUBDP_REQUIRE(depth >= 1, "a PRAM step takes at least one time unit");
  steps_.push_back(StepRecord{label, work, depth});
  work_ += work;
  depth_ += depth;
}

std::uint64_t CostModel::brent_time(std::uint64_t p) const {
  SUBDP_REQUIRE(p >= 1, "processor count must be positive");
  std::uint64_t t = 0;
  for (const auto& s : steps_) {
    t += (s.work + p - 1) / p + s.depth;
  }
  return t;
}

std::map<std::string, PhaseTotals> CostModel::phase_totals() const {
  std::map<std::string, PhaseTotals> totals;
  for (const auto& s : steps_) {
    auto& t = totals[s.label];
    t.steps += 1;
    t.work += s.work;
    t.depth += s.depth;
  }
  return totals;
}

void CostModel::reset() {
  steps_.clear();
  work_ = 0;
  depth_ = 0;
}

}  // namespace subdp::pram
