#pragma once

/// \file cost_model.hpp
/// Work/depth accounting for simulated CREW PRAM executions.
///
/// The paper states its results in the synchronous PRAM model: an algorithm
/// performs a sequence of *steps*; step `s` uses some number of processor
/// operations (`work_s`) and, if each logical processor reduces over `m`
/// candidates, a binary reduction tree of depth `ceil(log2 m)`
/// (`depth_s`). The ledger records `(work_s, depth_s)` per labeled step, so
/// experiments can report:
///   * total work  (the processor-time *product* the paper compares),
///   * total depth (the PRAM parallel time, up to constants),
///   * Brent-scheduled time on `p` processors:
///     `T_p = sum_s (ceil(work_s / p) + depth_s)`.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace subdp::pram {

/// One synchronous PRAM step.
struct StepRecord {
  std::string label;     ///< Phase name, e.g. "a-square".
  std::uint64_t work;    ///< Total processor operations in the step.
  std::uint64_t depth;   ///< Parallel time of the step (>= 1).
};

/// Aggregate of all steps sharing a label.
struct PhaseTotals {
  std::uint64_t steps = 0;
  std::uint64_t work = 0;
  std::uint64_t depth = 0;
};

/// Append-only ledger of PRAM steps.
class CostModel {
 public:
  /// Records one step. `depth` defaults to 1 (a pure map step).
  void add_step(const std::string& label, std::uint64_t work,
                std::uint64_t depth = 1);

  /// Total processor operations across all steps (= PT product at p -> inf).
  [[nodiscard]] std::uint64_t total_work() const noexcept { return work_; }

  /// Total PRAM depth (parallel time with unbounded processors).
  [[nodiscard]] std::uint64_t total_depth() const noexcept { return depth_; }

  /// Number of recorded steps.
  [[nodiscard]] std::size_t step_count() const noexcept {
    return steps_.size();
  }

  /// Brent's theorem schedule: time on `p` processors.
  [[nodiscard]] std::uint64_t brent_time(std::uint64_t p) const;

  /// Per-label totals (phase breakdown for experiment tables).
  [[nodiscard]] std::map<std::string, PhaseTotals> phase_totals() const;

  /// Raw step sequence.
  [[nodiscard]] const std::vector<StepRecord>& steps() const noexcept {
    return steps_;
  }

  /// Discards all records.
  void reset();

 private:
  std::vector<StepRecord> steps_;
  std::uint64_t work_ = 0;
  std::uint64_t depth_ = 0;
};

}  // namespace subdp::pram
