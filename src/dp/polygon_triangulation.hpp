#pragma once

/// \file polygon_triangulation.hpp
/// Optimal triangulation of convex polygons as an instance of (*).
///
/// A convex polygon `v_0, ..., v_n` (n sides `v_i v_{i+1}` plus the
/// closing edge `v_n v_0`) is triangulated by parenthesizing its sides:
/// interval `(i,j)` is the sub-polygon `v_i .. v_j` and split `k` forms
/// triangle `(v_i, v_k, v_j)`. Two classic cost models are provided:
///
/// * *weight product* (Cormen et al. exercise form): each vertex carries a
///   weight and triangle `(i,k,j)` costs `w_i * w_k * w_j` — structurally
///   identical to matrix-chain but kept separate because the paper lists
///   it as a distinct motivating application;
/// * *perimeter* (Klincsek's problem): vertices are points in the plane
///   and a triangle costs its perimeter, scaled to integers.

#include <string>
#include <vector>

#include "dp/problem.hpp"
#include "support/rng.hpp"

namespace subdp::dp {

/// A point in the plane (perimeter cost model).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Convex-polygon triangulation instance.
class PolygonTriangulationProblem final : public Problem {
 public:
  /// Weight-product cost model; `vertex_weights` has `n + 1 >= 3` entries.
  [[nodiscard]] static PolygonTriangulationProblem weight_product(
      std::vector<Cost> vertex_weights);

  /// Perimeter cost model; `vertices` are the polygon corners in convex
  /// position (`n + 1 >= 3` points); costs are rounded from
  /// `scale * perimeter`.
  [[nodiscard]] static PolygonTriangulationProblem perimeter(
      std::vector<Point> vertices, double scale = 1000.0);

  /// Random weight-product instance on `n + 1` vertices.
  [[nodiscard]] static PolygonTriangulationProblem random(
      std::size_t n, support::Rng& rng, Cost max_weight = 50);

  /// Random convex polygon (points on a perturbed circle), perimeter cost.
  [[nodiscard]] static PolygonTriangulationProblem random_convex(
      std::size_t n, support::Rng& rng);

  [[nodiscard]] std::size_t size() const override { return n_; }
  [[nodiscard]] Cost init(std::size_t) const override { return 0; }
  [[nodiscard]] Cost f(std::size_t i, std::size_t k,
                       std::size_t j) const override;
  [[nodiscard]] std::string name() const override;

 private:
  PolygonTriangulationProblem() = default;

  std::size_t n_ = 0;  ///< Number of sides being parenthesized.
  std::vector<Cost> weights_;   ///< Weight-product model (empty if unused).
  std::vector<Point> points_;   ///< Perimeter model (empty if unused).
  double scale_ = 1000.0;
};

}  // namespace subdp::dp
