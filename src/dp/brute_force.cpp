#include "dp/brute_force.hpp"

#include <vector>

#include "support/assert.hpp"

namespace subdp::dp {

namespace {

Cost enumerate(const Problem& problem, std::size_t i, std::size_t j) {
  if (j - i == 1) return problem.init(i);
  Cost best = kInfinity;
  for (std::size_t k = i + 1; k < j; ++k) {
    const Cost cand = sat_add(enumerate(problem, i, k),
                              enumerate(problem, k, j),
                              problem.f(i, k, j));
    best = sat_min(best, cand);
  }
  return best;
}

}  // namespace

Cost brute_force_cost(const Problem& problem) {
  SUBDP_REQUIRE(problem.size() <= 16,
                "brute force is exponential; use a DP solver");
  return enumerate(problem, 0, problem.size());
}

Cost parenthesization_count(std::size_t n) {
  SUBDP_REQUIRE(n >= 1, "need at least one object");
  // C_0 = 1, C_m = sum C_i C_{m-1-i}; trees over n leaves = C_{n-1}.
  std::vector<Cost> c(n, 0);
  c[0] = 1;
  for (std::size_t m = 1; m < n; ++m) {
    Cost total = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const Cost a = c[i];
      const Cost b = c[m - 1 - i];
      if (a >= kInfinity || b >= kInfinity ||
          (b != 0 && a > kInfinity / b)) {
        total = kInfinity;
        break;
      }
      total = sat_add(total, a * b);
    }
    c[m] = total;
  }
  return c[n - 1];
}

}  // namespace subdp::dp
