#include "dp/matrix_chain.hpp"

#include "support/assert.hpp"

namespace subdp::dp {

MatrixChainProblem::MatrixChainProblem(std::vector<Cost> dims)
    : dims_(std::move(dims)) {
  SUBDP_REQUIRE(dims_.size() >= 2, "need at least one matrix");
  for (const Cost d : dims_) {
    SUBDP_REQUIRE(d > 0, "matrix dimensions must be positive");
  }
}

MatrixChainProblem MatrixChainProblem::clrs_example() {
  return MatrixChainProblem({30, 35, 15, 5, 10, 20, 25});
}

MatrixChainProblem MatrixChainProblem::random(std::size_t n,
                                              support::Rng& rng,
                                              Cost max_dim) {
  SUBDP_REQUIRE(n >= 1, "need at least one matrix");
  SUBDP_REQUIRE(max_dim >= 1, "max_dim must be positive");
  std::vector<Cost> dims(n + 1);
  for (auto& d : dims) d = rng.uniform_int(1, max_dim);
  return MatrixChainProblem(std::move(dims));
}

}  // namespace subdp::dp
