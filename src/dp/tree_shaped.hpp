#pragma once

/// \file tree_shaped.hpp
/// Adversarial instances whose optimal tree is a prescribed shape.
///
/// The paper's worst case (Sec. 6) is a *zigzag* optimal tree; to exercise
/// it the benchmark needs instances of (*) whose unique optimal
/// decomposition tree is exactly a given `FullBinaryTree`. The penalty
/// construction achieves this: `f(i,k,j)` is a small random "noise" value
/// when `(i,j)` is a node of the target tree split at `k`, and a large
/// penalty otherwise. Any tree other than the target must use at least one
/// penalised decomposition, so the target is the unique optimum whenever
/// `penalty > total noise budget`.

#include "dp/tabulated.hpp"
#include "support/rng.hpp"
#include "trees/full_binary_tree.hpp"

namespace subdp::dp {

/// An instance plus its known optimum.
struct TreeShapedInstance {
  TabulatedProblem problem;
  Cost optimal_cost = 0;  ///< Equals `tree_weight(problem, target)`.
};

/// Builds an instance of (*) whose unique optimal tree is `target`.
/// `max_noise >= 0` adds uniform noise in `[0, max_noise]` to on-tree
/// decompositions and leaf inits (0 = exact zero-cost tree).
[[nodiscard]] TreeShapedInstance make_tree_shaped_instance(
    const trees::FullBinaryTree& target, support::Rng& rng,
    Cost max_noise = 8);

}  // namespace subdp::dp
