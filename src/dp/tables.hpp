#pragma once

/// \file tables.hpp
/// Shared result representation for all DP solvers, plus optimal-tree
/// extraction and validation.

#include <cstdint>

#include "support/cost.hpp"
#include "support/grid.hpp"
#include "dp/problem.hpp"
#include "trees/full_binary_tree.hpp"

namespace subdp::dp {

/// A solved instance: the full `c` table plus argmin splits.
struct DpResult {
  Cost cost = kInfinity;  ///< `c(0, n)`.
  /// `c(i,j)` for `0 <= i < j <= n`; cells outside that range are unused.
  support::Grid2D<Cost> c;
  /// `split(i,j)` = an optimal `k` for `(i,j)` (undefined for leaves).
  support::Grid2D<std::int32_t> split;
};

/// Rebuilds the optimal decomposition tree from the split table.
[[nodiscard]] trees::FullBinaryTree extract_tree(const DpResult& result);

/// Extracts an optimal tree from a converged `w` table alone (no split
/// table), by re-deriving `argmin_k w(i,k) + w(k,j) + f(i,k,j)` at every
/// node. This is how a tree is recovered from the sublinear solver, whose
/// iteration never materialises splits. Requires `w` to be optimal for
/// every pair (which holds after the paper's `2*ceil(sqrt n)` iterations).
[[nodiscard]] trees::FullBinaryTree extract_tree_from_w(
    const Problem& problem, const support::Grid2D<Cost>& w);

/// Sum of node weights of `tree` under `problem` (leaf `(i,i+1)` weighs
/// `init(i)`, internal `(i,j)` split at `k` weighs `f(i,k,j)`) — the
/// paper's `W(T)`. An optimal tree's weight equals `c(0,n)`.
[[nodiscard]] Cost tree_weight(const Problem& problem,
                               const trees::FullBinaryTree& tree);

/// Recomputes every cell of `result.c` from scratch and checks
/// consistency (cost matches, splits achieve the minima). O(n^3).
[[nodiscard]] bool validate_result(const Problem& problem,
                                   const DpResult& result);

}  // namespace subdp::dp
