#pragma once

/// \file tabulated.hpp
/// A fully materialised instance: `init` and `f` stored in flat arrays.
///
/// Useful for (a) adversarial instances whose `f` has no closed form
/// (`TreeShapedProblem`), (b) user-supplied recurrences, and (c) removing
/// virtual-call and arithmetic cost from hot solver loops via
/// `TabulatedProblem::from(problem)`.

#include <functional>
#include <string>
#include <vector>

#include "dp/problem.hpp"

namespace subdp::dp {

/// Instance backed by an `(n+1)^3` table of `f` values.
class TabulatedProblem final : public Problem {
 public:
  /// An all-zero instance of `n` objects named `name` (costs settable).
  TabulatedProblem(std::size_t n, std::string name);

  /// Materialises any instance (evaluates `f` O(n^3) times).
  [[nodiscard]] static TabulatedProblem from(const Problem& problem);

  /// Builds from a callable `f(i,k,j)` and callable `init(i)`.
  [[nodiscard]] static TabulatedProblem from_functions(
      std::size_t n, std::string name,
      const std::function<Cost(std::size_t)>& init,
      const std::function<Cost(std::size_t, std::size_t, std::size_t)>& f);

  [[nodiscard]] std::size_t size() const override { return n_; }
  [[nodiscard]] Cost init(std::size_t i) const override {
    SUBDP_ASSERT(i < n_);
    return init_[i];
  }
  [[nodiscard]] Cost f(std::size_t i, std::size_t k,
                       std::size_t j) const override {
    SUBDP_ASSERT(i < k && k < j && j <= n_);
    return f_[index(i, k, j)];
  }
  [[nodiscard]] std::string name() const override { return name_; }

  /// Mutators for instance generators.
  void set_init(std::size_t i, Cost value);
  void set_f(std::size_t i, std::size_t k, std::size_t j, Cost value);

 private:
  [[nodiscard]] std::size_t index(std::size_t i, std::size_t k,
                                  std::size_t j) const {
    return (i * (n_ + 1) + k) * (n_ + 1) + j;
  }

  std::size_t n_;
  std::string name_;
  std::vector<Cost> init_;
  std::vector<Cost> f_;
};

}  // namespace subdp::dp
