#include "dp/polygon_triangulation.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace subdp::dp {

PolygonTriangulationProblem PolygonTriangulationProblem::weight_product(
    std::vector<Cost> vertex_weights) {
  SUBDP_REQUIRE(vertex_weights.size() >= 3,
                "a polygon needs at least three vertices");
  for (const Cost w : vertex_weights) {
    SUBDP_REQUIRE(w >= 0, "vertex weights must be nonnegative");
  }
  PolygonTriangulationProblem p;
  p.n_ = vertex_weights.size() - 1;
  p.weights_ = std::move(vertex_weights);
  return p;
}

PolygonTriangulationProblem PolygonTriangulationProblem::perimeter(
    std::vector<Point> vertices, double scale) {
  SUBDP_REQUIRE(vertices.size() >= 3,
                "a polygon needs at least three vertices");
  SUBDP_REQUIRE(scale > 0.0, "scale must be positive");
  PolygonTriangulationProblem p;
  p.n_ = vertices.size() - 1;
  p.points_ = std::move(vertices);
  p.scale_ = scale;
  return p;
}

PolygonTriangulationProblem PolygonTriangulationProblem::random(
    std::size_t n, support::Rng& rng, Cost max_weight) {
  SUBDP_REQUIRE(n >= 2, "need at least two sides");
  std::vector<Cost> w(n + 1);
  for (auto& v : w) v = rng.uniform_int(1, max_weight);
  return weight_product(std::move(w));
}

PolygonTriangulationProblem PolygonTriangulationProblem::random_convex(
    std::size_t n, support::Rng& rng) {
  SUBDP_REQUIRE(n >= 2, "need at least two sides");
  // Points on a circle with jittered radii stay convex as long as the
  // jitter is mild; we sort angles implicitly by construction.
  std::vector<Point> pts(n + 1);
  const double two_pi = 6.283185307179586;
  for (std::size_t t = 0; t <= n; ++t) {
    const double angle =
        two_pi * static_cast<double>(t) / static_cast<double>(n + 1);
    const double radius = 100.0 * (1.0 + 0.05 * rng.uniform01());
    pts[t] = Point{radius * std::cos(angle), radius * std::sin(angle)};
  }
  return perimeter(std::move(pts));
}

Cost PolygonTriangulationProblem::f(std::size_t i, std::size_t k,
                                    std::size_t j) const {
  SUBDP_ASSERT(i < k && k < j && j <= n_);
  if (!weights_.empty()) {
    return weights_[i] * weights_[k] * weights_[j];
  }
  const auto dist = [](const Point& a, const Point& b) {
    return std::hypot(a.x - b.x, a.y - b.y);
  };
  const double peri = dist(points_[i], points_[k]) +
                      dist(points_[k], points_[j]) +
                      dist(points_[i], points_[j]);
  return static_cast<Cost>(std::llround(scale_ * peri));
}

std::string PolygonTriangulationProblem::name() const {
  return weights_.empty() ? "polygon-triangulation(perimeter)"
                          : "polygon-triangulation(weights)";
}

}  // namespace subdp::dp
