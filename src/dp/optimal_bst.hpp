#pragma once

/// \file optimal_bst.hpp
/// Optimal binary search trees (Knuth 1971) as an instance of (*).
///
/// Given `m` keys with access weights `p_1..p_m` and `m+1` gap (miss)
/// weights `q_0..q_m`, we use the standard parenthesization encoding: the
/// objects are the `m + 1` gaps, so `n = m + 1`. Interval `(i,j)` covers
/// gaps `i..j-1` and keys `i+1..j-1`; choosing split `k` makes key `k` the
/// subtree root. Since lowering a subtree by one level adds its total
/// weight once,
///
///   f(i,k,j) = W(i,j) = sum(q_i..q_{j-1}) + sum(p_{i+1}..p_{j-1})
///
/// independent of `k`, and `init(i) = 0`. `c(0,n)` is then the weighted
/// path length `sum p_t (depth_t + 1) + sum q_g depth_g` of an optimal
/// BST. `f` is O(1) after prefix sums, matching the paper's remark that
/// the `f` values need O(log n) time and O(n^3) processors to prepare.

#include <string>
#include <vector>

#include "dp/problem.hpp"
#include "support/rng.hpp"

namespace subdp::dp {

/// Optimal BST instance over integer weights.
class OptimalBstProblem final : public Problem {
 public:
  /// `key_weights` has `m >= 1` entries; `gap_weights` has `m + 1`.
  /// All weights nonnegative.
  OptimalBstProblem(std::vector<Cost> key_weights,
                    std::vector<Cost> gap_weights);

  [[nodiscard]] std::size_t size() const override {
    return gap_weights_.size();  // n = m + 1 objects (the gaps)
  }
  [[nodiscard]] Cost init(std::size_t) const override { return 0; }
  [[nodiscard]] Cost f(std::size_t i, [[maybe_unused]] std::size_t k,
                       std::size_t j) const override {
    SUBDP_ASSERT(i < k && k < j && j <= size());
    return total_weight(i, j);
  }
  [[nodiscard]] std::string name() const override { return "optimal-bst"; }

  /// `W(i,j)`: total weight of gaps `i..j-1` and keys `i+1..j-1`.
  [[nodiscard]] Cost total_weight(std::size_t i, std::size_t j) const {
    return (gap_prefix_[j] - gap_prefix_[i]) +
           (key_prefix_[j - 1] - key_prefix_[i]);
  }

  [[nodiscard]] std::size_t key_count() const noexcept {
    return key_weights_.size();
  }
  [[nodiscard]] const std::vector<Cost>& key_weights() const noexcept {
    return key_weights_;
  }
  [[nodiscard]] const std::vector<Cost>& gap_weights() const noexcept {
    return gap_weights_;
  }

  /// The CLRS Section 15.5 instance scaled by 100 (optimal cost 275).
  [[nodiscard]] static OptimalBstProblem clrs_example();

  /// Random instance with `keys` keys and weights in `[0, max_weight]`.
  [[nodiscard]] static OptimalBstProblem random(std::size_t keys,
                                                support::Rng& rng,
                                                Cost max_weight = 50);

 private:
  std::vector<Cost> key_weights_;  ///< p_1..p_m (stored 0-based).
  std::vector<Cost> gap_weights_;  ///< q_0..q_m.
  std::vector<Cost> key_prefix_;   ///< key_prefix_[t] = p_1 + .. + p_t.
  std::vector<Cost> gap_prefix_;   ///< gap_prefix_[t] = q_0 + .. + q_{t-1}.
};

}  // namespace subdp::dp
