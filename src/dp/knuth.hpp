#pragma once

/// \file knuth.hpp
/// Knuth's O(n^2) speedup (Knuth 1971, Yao 1980) for k-independent
/// instances of (*) satisfying the quadrangle inequality.
///
/// When `f(i,k,j)` does not depend on `k` (write `w(i,j)`), is monotone
/// (`w(i',j') <= w(i,j)` for `[i',j'] ⊆ [i,j]`) and satisfies the
/// quadrangle inequality `w(i,j) + w(i',j') <= w(i',j) + w(i,j')` for
/// `i <= i' <= j <= j'`, the optimal split is monotone:
/// `split(i,j-1) <= split(i,j) <= split(i+1,j)`, which caps the total scan
/// work at O(n^2). Optimal BST is the canonical example. The checkers let
/// tests and users establish applicability before trusting the fast path.

#include <cstdint>

#include "dp/problem.hpp"
#include "dp/tables.hpp"

namespace subdp::dp {

/// True iff `f(i,k,j)` is the same for every valid `k` (O(n^3) scan).
[[nodiscard]] bool is_k_independent(const Problem& problem);

/// True iff the (k-independent) weight satisfies monotonicity and the
/// quadrangle inequality. Requires `is_k_independent(problem)`.
[[nodiscard]] bool satisfies_quadrangle_inequality(const Problem& problem);

/// Solves a k-independent, QI instance in O(n^2) using split monotonicity.
/// The caller is responsible for applicability (see the checkers); the
/// result equals `solve_sequential` whenever the preconditions hold.
/// If `ops_out` is non-null it receives the candidate-evaluation count.
[[nodiscard]] DpResult solve_knuth(const Problem& problem,
                                   std::uint64_t* ops_out = nullptr);

}  // namespace subdp::dp
