#include "dp/tabulated.hpp"

#include "support/assert.hpp"

namespace subdp::dp {

TabulatedProblem::TabulatedProblem(std::size_t n, std::string name)
    : n_(n), name_(std::move(name)) {
  SUBDP_REQUIRE(n >= 1, "need at least one object");
  init_.assign(n, 0);
  f_.assign((n + 1) * (n + 1) * (n + 1), 0);
}

TabulatedProblem TabulatedProblem::from(const Problem& problem) {
  const std::size_t n = problem.size();
  TabulatedProblem t(n, problem.name());
  for (std::size_t i = 0; i < n; ++i) t.init_[i] = problem.init(i);
  for (std::size_t i = 0; i + 2 <= n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      for (std::size_t k = i + 1; k < j; ++k) {
        t.f_[t.index(i, k, j)] = problem.f(i, k, j);
      }
    }
  }
  return t;
}

TabulatedProblem TabulatedProblem::from_functions(
    std::size_t n, std::string name,
    const std::function<Cost(std::size_t)>& init,
    const std::function<Cost(std::size_t, std::size_t, std::size_t)>& f) {
  TabulatedProblem t(n, std::move(name));
  for (std::size_t i = 0; i < n; ++i) t.init_[i] = init(i);
  for (std::size_t i = 0; i + 2 <= n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      for (std::size_t k = i + 1; k < j; ++k) {
        t.f_[t.index(i, k, j)] = f(i, k, j);
      }
    }
  }
  return t;
}

void TabulatedProblem::set_init(std::size_t i, Cost value) {
  SUBDP_REQUIRE(i < n_, "init index out of range");
  SUBDP_REQUIRE(value >= 0, "init must be nonnegative");
  init_[i] = value;
}

void TabulatedProblem::set_f(std::size_t i, std::size_t k, std::size_t j,
                             Cost value) {
  SUBDP_REQUIRE(i < k && k < j && j <= n_, "f index out of range");
  SUBDP_REQUIRE(value >= 0, "f must be nonnegative");
  f_[index(i, k, j)] = value;
}

}  // namespace subdp::dp
