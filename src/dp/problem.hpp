#pragma once

/// \file problem.hpp
/// The recurrence family the paper targets (its equation (*)).
///
/// A `Problem` describes an instance of
///
///   c(i,j) = min_{i<k<j} { c(i,k) + c(k,j) + f(i,k,j) },  0 <= i < j <= n
///   c(i,i+1) = init(i),                                   0 <= i < n
///
/// over `n` objects, with nonnegative `f` and `init`. Matrix-chain
/// ordering, optimal binary search trees and optimal polygon triangulation
/// are all instances (Sec. 1). Solvers only access instances through this
/// interface, so any user-defined recurrence of the family plugs in.
///
/// Thread-safety contract: solvers call `size`/`init`/`f` concurrently —
/// from the parallel loops inside one solve, and, under
/// `serve::SolverService`, from several worker threads solving the same
/// instance at once. Implementations must therefore make these const
/// calls safe to run concurrently: compute from immutable state set up in
/// the constructor (as every bundled problem does) and do not hide
/// mutable caches behind the const interface without locking.

#include <cstddef>
#include <string>

#include "support/cost.hpp"

namespace subdp::dp {

/// Abstract instance of recurrence (*).
class Problem {
 public:
  virtual ~Problem() = default;

  /// Number of objects `n` (the answer is `c(0, n)`); at least 1.
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Leaf cost `init(i)` for the singleton interval `(i, i+1)`,
  /// `0 <= i < size()`. Must be nonnegative and finite.
  [[nodiscard]] virtual Cost init(std::size_t i) const = 0;

  /// Decomposition cost `f(i,k,j)` for splitting `(i,j)` into `(i,k)` and
  /// `(k,j)`, with `0 <= i < k < j <= size()`. Must be nonnegative and
  /// finite, and cheap to evaluate (the paper assumes O(1) after
  /// preprocessing).
  [[nodiscard]] virtual Cost f(std::size_t i, std::size_t k,
                               std::size_t j) const = 0;

  /// Human-readable instance name for tables and logs.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace subdp::dp
