#pragma once

/// \file parallel_setup.hpp
/// The paper's preprocessing phase (Sec. 4): materialise every `f(i,k,j)`
/// with accounted PRAM steps *before* the main iteration.
///
/// "For optimal order of matrix multiplication and optimal triangulation
///  of polygons they can be computed in O(1) time using O(n^2) [read:
///  per-entry O(1) work] processors. For optimal binary search trees they
///  can be computed in time O(log n) using O(n^3) processors."
///
/// `materialize_in_parallel` runs exactly that phase: one parallel map
/// step per (i,j) pair filling all its k-entries (unit work per entry,
/// matching the O(1)-per-value claim once the instance's prefix sums
/// exist), with `prepare_interval_weights` providing the O(log n)-depth
/// scan for weight-based instances. The result is a `TabulatedProblem`
/// whose `f` lookups are O(1), and the preprocessing cost sits in the
/// same ledger as a-activate/a-square/a-pebble so experiment tables can
/// show it never dominates.

#include <vector>

#include "dp/problem.hpp"
#include "dp/tabulated.hpp"
#include "pram/machine.hpp"

namespace subdp::dp {

/// Computes interval weight prefix sums (the OBST `W(i,j)` ingredients)
/// from raw per-position weights, as accounted O(log n)-depth PRAM scans.
/// Returns prefix[t] = weights[0] + ... + weights[t-1] (size n+1).
[[nodiscard]] std::vector<Cost> prepare_interval_weights(
    pram::Machine& machine, const std::vector<Cost>& weights);

/// Materialises `problem` into a `TabulatedProblem` using one parallel
/// PRAM step per interval length (label "f-precompute"), unit work per
/// `f` entry. Semantically identical to `TabulatedProblem::from`, but
/// executed and accounted on `machine`.
[[nodiscard]] TabulatedProblem materialize_in_parallel(
    pram::Machine& machine, const Problem& problem);

}  // namespace subdp::dp
