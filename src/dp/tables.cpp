#include "dp/tables.hpp"

#include <vector>

#include "support/assert.hpp"

namespace subdp::dp {

trees::FullBinaryTree extract_tree(const DpResult& result) {
  const std::size_t n = result.c.rows() - 1;
  return trees::FullBinaryTree::build(
      n, [&](std::size_t lo, std::size_t hi, std::size_t) {
        const auto k = static_cast<std::size_t>(result.split(lo, hi));
        SUBDP_REQUIRE(lo < k && k < hi, "split table is inconsistent");
        return k;
      });
}

trees::FullBinaryTree extract_tree_from_w(const Problem& problem,
                                          const support::Grid2D<Cost>& w) {
  const std::size_t n = problem.size();
  SUBDP_REQUIRE(w.rows() == n + 1 && w.cols() == n + 1,
                "w table has wrong shape");
  return trees::FullBinaryTree::build(
      n, [&](std::size_t lo, std::size_t hi, std::size_t) {
        Cost best = kInfinity;
        std::size_t best_k = lo + 1;
        for (std::size_t k = lo + 1; k < hi; ++k) {
          const Cost cand = sat_add(w(lo, k), w(k, hi), problem.f(lo, k, hi));
          if (cand < best) {
            best = cand;
            best_k = k;
          }
        }
        SUBDP_REQUIRE(best == w(lo, hi),
                      "w table is not a fixed point of the recurrence");
        return best_k;
      });
}

Cost tree_weight(const Problem& problem, const trees::FullBinaryTree& tree) {
  Cost total = 0;
  for (trees::NodeId x = 0;
       static_cast<std::size_t>(x) < tree.node_count(); ++x) {
    if (tree.is_leaf(x)) {
      total = sat_add(total, problem.init(tree.lo(x)));
    } else {
      total = sat_add(
          total, problem.f(tree.lo(x), tree.split(x), tree.hi(x)));
    }
  }
  return total;
}

bool validate_result(const Problem& problem, const DpResult& result) {
  const std::size_t n = problem.size();
  if (result.c.rows() != n + 1 || result.c.cols() != n + 1) return false;
  support::Grid2D<Cost> ref(n + 1, n + 1, kInfinity);
  for (std::size_t i = 0; i < n; ++i) ref(i, i + 1) = problem.init(i);
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len;
      Cost best = kInfinity;
      for (std::size_t k = i + 1; k < j; ++k) {
        best = sat_min(best,
                       sat_add(ref(i, k), ref(k, j), problem.f(i, k, j)));
      }
      ref(i, j) = best;
      if (result.c(i, j) != best) return false;
      const auto k = static_cast<std::size_t>(result.split(i, j));
      if (k <= i || k >= j) return false;
      if (sat_add(ref(i, k), ref(k, j), problem.f(i, k, j)) != best) {
        return false;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (result.c(i, i + 1) != problem.init(i)) return false;
  }
  return result.cost == ref(0, n);
}

}  // namespace subdp::dp
