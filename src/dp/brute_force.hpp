#pragma once

/// \file brute_force.hpp
/// Exponential-time oracle: enumerates every parenthesization.
///
/// Recurses over all Catalan(n-1) decomposition trees without memoisation,
/// so it shares no code or complexity class with the DP solvers it checks.
/// Restricted to small `n` (the test suites use n <= 12).

#include "dp/problem.hpp"

namespace subdp::dp {

/// Optimal cost `c(0, n)` by exhaustive enumeration. Requires
/// `problem.size() <= 16`.
[[nodiscard]] Cost brute_force_cost(const Problem& problem);

/// Number of distinct decomposition trees over `n` objects
/// (the Catalan number C_{n-1}); saturates at `kInfinity`.
[[nodiscard]] Cost parenthesization_count(std::size_t n);

}  // namespace subdp::dp
