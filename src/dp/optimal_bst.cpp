#include "dp/optimal_bst.hpp"

#include "support/assert.hpp"

namespace subdp::dp {

OptimalBstProblem::OptimalBstProblem(std::vector<Cost> key_weights,
                                     std::vector<Cost> gap_weights)
    : key_weights_(std::move(key_weights)),
      gap_weights_(std::move(gap_weights)) {
  SUBDP_REQUIRE(!key_weights_.empty(), "need at least one key");
  SUBDP_REQUIRE(gap_weights_.size() == key_weights_.size() + 1,
                "need one more gap weight than key weights");
  for (const Cost w : key_weights_) {
    SUBDP_REQUIRE(w >= 0, "key weights must be nonnegative");
  }
  for (const Cost w : gap_weights_) {
    SUBDP_REQUIRE(w >= 0, "gap weights must be nonnegative");
  }
  key_prefix_.resize(key_weights_.size() + 1, 0);
  for (std::size_t t = 0; t < key_weights_.size(); ++t) {
    key_prefix_[t + 1] = key_prefix_[t] + key_weights_[t];
  }
  gap_prefix_.resize(gap_weights_.size() + 1, 0);
  for (std::size_t t = 0; t < gap_weights_.size(); ++t) {
    gap_prefix_[t + 1] = gap_prefix_[t] + gap_weights_[t];
  }
}

OptimalBstProblem OptimalBstProblem::clrs_example() {
  return OptimalBstProblem({15, 10, 5, 10, 20}, {5, 10, 5, 5, 5, 10});
}

OptimalBstProblem OptimalBstProblem::random(std::size_t keys,
                                            support::Rng& rng,
                                            Cost max_weight) {
  SUBDP_REQUIRE(keys >= 1, "need at least one key");
  std::vector<Cost> p(keys), q(keys + 1);
  for (auto& w : p) w = rng.uniform_int(0, max_weight);
  for (auto& w : q) w = rng.uniform_int(0, max_weight);
  return OptimalBstProblem(std::move(p), std::move(q));
}

}  // namespace subdp::dp
