#pragma once

/// \file sequential.hpp
/// The classic O(n^3) bottom-up dynamic program (the paper's sequential
/// baseline, [1]). Fills intervals by increasing length; also reports the
/// number of elementary candidate evaluations so experiment E6 can compare
/// measured work across solvers.

#include <cstdint>

#include "dp/problem.hpp"
#include "dp/tables.hpp"

namespace subdp::dp {

/// Solves `problem` in O(n^3) time; returns the full table and splits.
/// If `ops_out` is non-null it receives the number of candidate
/// evaluations (one per `(i,k,j)` triple considered).
[[nodiscard]] DpResult solve_sequential(const Problem& problem,
                                        std::uint64_t* ops_out = nullptr);

}  // namespace subdp::dp
