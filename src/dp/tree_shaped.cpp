#include "dp/tree_shaped.hpp"

#include "support/assert.hpp"

namespace subdp::dp {

TreeShapedInstance make_tree_shaped_instance(
    const trees::FullBinaryTree& target, support::Rng& rng, Cost max_noise) {
  SUBDP_REQUIRE(max_noise >= 0, "max_noise must be nonnegative");
  const std::size_t n = target.leaf_count();
  TabulatedProblem problem(n, "tree-shaped(n=" + std::to_string(n) + ")");

  // Penalty strictly exceeding the largest possible on-tree total:
  // 2n - 1 nodes, each at most max_noise.
  const Cost penalty =
      max_noise * static_cast<Cost>(2 * n) + 1;
  for (std::size_t i = 0; i + 2 <= n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      for (std::size_t k = i + 1; k < j; ++k) {
        problem.set_f(i, k, j, penalty);
      }
    }
  }

  Cost total = 0;
  for (trees::NodeId x = 0;
       static_cast<std::size_t>(x) < target.node_count(); ++x) {
    const Cost noise =
        max_noise > 0 ? rng.uniform_int(0, max_noise) : 0;
    total += noise;
    if (target.is_leaf(x)) {
      problem.set_init(target.lo(x), noise);
    } else {
      problem.set_f(target.lo(x), target.split(x), target.hi(x), noise);
    }
  }
  return TreeShapedInstance{std::move(problem), total};
}

}  // namespace subdp::dp
