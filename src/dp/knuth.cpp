#include "dp/knuth.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace subdp::dp {

bool is_k_independent(const Problem& problem) {
  const std::size_t n = problem.size();
  for (std::size_t i = 0; i + 2 <= n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      const Cost first = problem.f(i, i + 1, j);
      for (std::size_t k = i + 2; k < j; ++k) {
        if (problem.f(i, k, j) != first) return false;
      }
    }
  }
  return true;
}

bool satisfies_quadrangle_inequality(const Problem& problem) {
  SUBDP_REQUIRE(is_k_independent(problem),
                "QI check applies to k-independent instances");
  const std::size_t n = problem.size();
  const auto w = [&](std::size_t i, std::size_t j) {
    return j - i >= 2 ? problem.f(i, i + 1, j) : Cost{0};
  };
  // Monotonicity on the lattice of intervals.
  for (std::size_t i = 0; i + 2 <= n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      if (w(i, j - 1) > w(i, j) || w(i + 1, j) > w(i, j)) return false;
    }
  }
  // Quadrangle inequality: i <= i' <= j <= j'. Intervals of length
  // exactly 1 are skipped: their weights are `init`-level quantities the
  // `Problem` interface cannot expose through `f` (which needs j-i >= 2),
  // and Yao's split-monotonicity derivation is driven by the crossing
  // quadruples with non-degenerate intervals.
  for (std::size_t i = 0; i <= n; ++i) {
    for (std::size_t ip = i; ip <= n; ++ip) {
      for (std::size_t j = ip; j <= n; ++j) {
        if (j - ip == 1 || j - i == 1) continue;
        for (std::size_t jp = j; jp <= n; ++jp) {
          if (jp - ip == 1 || jp - j == 1) continue;
          if (w(i, j) + w(ip, jp) > w(ip, j) + w(i, jp)) return false;
        }
      }
    }
  }
  return true;
}

DpResult solve_knuth(const Problem& problem, std::uint64_t* ops_out) {
  const std::size_t n = problem.size();
  DpResult result;
  result.c = support::Grid2D<Cost>(n + 1, n + 1, kInfinity);
  result.split = support::Grid2D<std::int32_t>(n + 1, n + 1, -1);

  std::uint64_t ops = 0;
  for (std::size_t i = 0; i < n; ++i) {
    result.c(i, i + 1) = problem.init(i);
    // Degenerate "split" of a leaf: its own upper bound, so the monotone
    // window below starts tight.
    result.split(i, i + 1) = static_cast<std::int32_t>(i + 1);
  }
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len;
      // Knuth's window: split(i, j-1) <= k <= split(i+1, j).
      const auto k_lo = static_cast<std::size_t>(
          std::max<std::int32_t>(result.split(i, j - 1),
                                 static_cast<std::int32_t>(i + 1)));
      const auto k_hi = static_cast<std::size_t>(
          std::min<std::int32_t>(result.split(i + 1, j),
                                 static_cast<std::int32_t>(j - 1)));
      Cost best = kInfinity;
      std::size_t best_k = k_lo;
      for (std::size_t k = k_lo; k <= k_hi; ++k) {
        const Cost cand =
            sat_add(result.c(i, k), result.c(k, j), problem.f(i, k, j));
        ++ops;
        if (cand < best) {
          best = cand;
          best_k = k;
        }
      }
      result.c(i, j) = best;
      result.split(i, j) = static_cast<std::int32_t>(best_k);
    }
  }
  result.cost = result.c(0, n);
  if (ops_out != nullptr) *ops_out = ops;
  return result;
}

}  // namespace subdp::dp
