#include "dp/parallel_setup.hpp"

#include "pram/scan.hpp"
#include "support/assert.hpp"

namespace subdp::dp {

std::vector<Cost> prepare_interval_weights(pram::Machine& machine,
                                           const std::vector<Cost>& weights) {
  return pram::exclusive_scan(machine, weights, "weight-scan");
}

TabulatedProblem materialize_in_parallel(pram::Machine& machine,
                                         const Problem& problem) {
  const std::size_t n = problem.size();
  TabulatedProblem table(n, problem.name());

  machine.step("init-precompute", static_cast<std::int64_t>(n),
               [&](std::int64_t idx) -> std::uint64_t {
                 const auto i = static_cast<std::size_t>(idx);
                 table.set_init(i, problem.init(i));
                 machine.note_write(static_cast<std::uint64_t>(i));
                 return 1;
               });

  // One synchronous step over all (i,j) pairs: pair-processor (i,j)
  // produces its len-1 entries, charged one unit of work each — the
  // paper's O(1)-time-per-value claim with O(n^3) processors; the
  // accounted depth is 1 + ceil(log2(n)) for the widest pair, so the
  // whole phase is O(log n) deep and never dominates the main iteration.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) pairs.emplace_back(i, i + len);
  }
  machine.step(
      "f-precompute", static_cast<std::int64_t>(pairs.size()),
      [&](std::int64_t idx) -> std::uint64_t {
        const auto [i, j] = pairs[static_cast<std::size_t>(idx)];
        for (std::size_t k = i + 1; k < j; ++k) {
          table.set_f(i, k, j, problem.f(i, k, j));
          machine.note_write(
              static_cast<std::uint64_t>((i * (n + 1) + k) * (n + 1) + j));
        }
        return static_cast<std::uint64_t>(j - i - 1);
      });
  return table;
}

}  // namespace subdp::dp
