#pragma once

/// \file wavefront.hpp
/// Diagonal-parallel DP: the "optimal parallel algorithm" baseline of the
/// paper's introduction ([10]: O(n) time with O(n^2) processors).
///
/// The `c` table is filled one anti-diagonal (interval length) at a time;
/// all `n - len + 1` cells of a diagonal are independent and computed in
/// one PRAM step on the supplied `Machine`, each cell reducing over its
/// `len - 1` split candidates. Total work O(n^3) (optimal), depth O(n)
/// with log-factors from the reductions — linear time, not sublinear,
/// which is exactly the gap the paper's algorithm attacks.

#include "dp/problem.hpp"
#include "dp/tables.hpp"
#include "pram/machine.hpp"

namespace subdp::dp {

/// Solves `problem` with one PRAM step per diagonal, executed and
/// accounted on `machine`.
[[nodiscard]] DpResult solve_wavefront(const Problem& problem,
                                       pram::Machine& machine);

}  // namespace subdp::dp
