#include "dp/wavefront.hpp"

#include "support/assert.hpp"

namespace subdp::dp {

DpResult solve_wavefront(const Problem& problem, pram::Machine& machine) {
  const std::size_t n = problem.size();
  DpResult result;
  result.c = support::Grid2D<Cost>(n + 1, n + 1, kInfinity);
  result.split = support::Grid2D<std::int32_t>(n + 1, n + 1, -1);

  machine.step("wavefront-init", static_cast<std::int64_t>(n),
               [&](std::int64_t i) {
                 const auto ii = static_cast<std::size_t>(i);
                 result.c(ii, ii + 1) = problem.init(ii);
                 machine.note_write(static_cast<std::uint64_t>(i));
                 return std::uint64_t{1};
               });

  for (std::size_t len = 2; len <= n; ++len) {
    machine.step(
        "wavefront-diagonal", static_cast<std::int64_t>(n - len + 1),
        [&, len](std::int64_t idx) {
          const auto i = static_cast<std::size_t>(idx);
          const std::size_t j = i + len;
          Cost best = kInfinity;
          std::size_t best_k = i + 1;
          for (std::size_t k = i + 1; k < j; ++k) {
            const Cost cand = sat_add(result.c(i, k), result.c(k, j),
                                      problem.f(i, k, j));
            if (cand < best) {
              best = cand;
              best_k = k;
            }
          }
          result.c(i, j) = best;
          result.split(i, j) = static_cast<std::int32_t>(best_k);
          machine.note_write(i * (n + 1) + j);
          return static_cast<std::uint64_t>(len - 1);
        });
  }
  result.cost = result.c(0, n);
  return result;
}

}  // namespace subdp::dp
