#include "dp/sequential.hpp"

#include "support/assert.hpp"

namespace subdp::dp {

DpResult solve_sequential(const Problem& problem, std::uint64_t* ops_out) {
  const std::size_t n = problem.size();
  DpResult result;
  result.c = support::Grid2D<Cost>(n + 1, n + 1, kInfinity);
  result.split = support::Grid2D<std::int32_t>(n + 1, n + 1, -1);

  std::uint64_t ops = 0;
  for (std::size_t i = 0; i < n; ++i) result.c(i, i + 1) = problem.init(i);
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len;
      Cost best = kInfinity;
      std::size_t best_k = i + 1;
      for (std::size_t k = i + 1; k < j; ++k) {
        const Cost cand =
            sat_add(result.c(i, k), result.c(k, j), problem.f(i, k, j));
        ++ops;
        if (cand < best) {
          best = cand;
          best_k = k;
        }
      }
      result.c(i, j) = best;
      result.split(i, j) = static_cast<std::int32_t>(best_k);
    }
  }
  result.cost = n >= 2 ? result.c(0, n) : result.c(0, 1);
  if (ops_out != nullptr) *ops_out = ops;
  return result;
}

}  // namespace subdp::dp
