#pragma once

/// \file matrix_chain.hpp
/// Optimal matrix-chain multiplication as an instance of recurrence (*).
///
/// Multiplying matrices `A_1 ... A_n` with `A_t` of shape
/// `dims[t-1] x dims[t]` costs `d_i * d_k * d_j` scalar multiplications to
/// combine a product spanning `(i,k)` with one spanning `(k,j)`, so
/// `f(i,k,j) = dims[i] * dims[k] * dims[j]` and `init(i) = 0`.

#include <string>
#include <vector>

#include "dp/problem.hpp"
#include "support/rng.hpp"

namespace subdp::dp {

/// Matrix-chain instance over `dims.size() - 1` matrices.
class MatrixChainProblem final : public Problem {
 public:
  /// `dims` has `n + 1` entries, all positive.
  explicit MatrixChainProblem(std::vector<Cost> dims);

  [[nodiscard]] std::size_t size() const override {
    return dims_.size() - 1;
  }
  [[nodiscard]] Cost init(std::size_t) const override { return 0; }
  [[nodiscard]] Cost f(std::size_t i, std::size_t k,
                       std::size_t j) const override {
    SUBDP_ASSERT(i < k && k < j && j < dims_.size());
    return dims_[i] * dims_[k] * dims_[j];
  }
  [[nodiscard]] std::string name() const override { return "matrix-chain"; }

  [[nodiscard]] const std::vector<Cost>& dims() const noexcept {
    return dims_;
  }

  /// The CLRS Section 15.2 textbook instance (optimal cost 15125).
  [[nodiscard]] static MatrixChainProblem clrs_example();

  /// Random instance with `n` matrices and dimensions in `[1, max_dim]`.
  [[nodiscard]] static MatrixChainProblem random(std::size_t n,
                                                 support::Rng& rng,
                                                 Cost max_dim = 100);

 private:
  std::vector<Cost> dims_;
};

}  // namespace subdp::dp
