// Lock-free log2-bucket latency histograms.
//
// A LatencyHistogram is a fixed array of 65 atomic counters: bucket 0
// holds exact zeros, bucket k (k >= 1) holds values in [2^(k-1), 2^k - 1].
// `record` is two relaxed fetch_adds plus a bit_width — cheap enough for
// the service hot path. `snapshot()` returns a plain-value
// HistogramSnapshot that supports merging and quantile extraction
// (linear interpolation inside the matched bucket), which is what the
// metrics surface and the bench p50/p95/p99 columns consume.
//
// Units are the caller's choice; the serving stack records nanoseconds.

#ifndef SUBDP_OBS_LATENCY_HISTOGRAM_HPP_
#define SUBDP_OBS_LATENCY_HISTOGRAM_HPP_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace subdp::obs {

/// 1 bucket for zero + one per bit of a uint64 value.
inline constexpr std::size_t kHistogramBuckets = 65;

/// Bucket index for `value`: 0 for 0, else bit_width(value) — so bucket
/// k >= 1 covers [2^(k-1), 2^k - 1].
[[nodiscard]] std::size_t histogram_bucket(std::uint64_t value);

/// Inclusive [lo, hi] value range of bucket `index`.
[[nodiscard]] std::uint64_t histogram_bucket_lo(std::size_t index);
[[nodiscard]] std::uint64_t histogram_bucket_hi(std::size_t index);

/// A plain-value copy of a histogram's state: mergeable, queryable,
/// trivially copyable across threads.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Element-wise accumulate `other` into this snapshot.
  void merge(const HistogramSnapshot& other);

  /// The q-quantile (q in [0, 1]) by cumulative bucket walk with linear
  /// interpolation inside the matched bucket. Returns 0 on an empty
  /// snapshot.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// The live, concurrently-writable histogram.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record(std::uint64_t value) {
    buckets_[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace subdp::obs

#endif  // SUBDP_OBS_LATENCY_HISTOGRAM_HPP_
