// Metrics export surface.
//
// A MetricsRegistry is a plain value bag: counters/gauges by name plus
// labelled HistogramSnapshots, rendered to either Prometheus text
// exposition format (`to_prometheus`) or a JSON dump (`to_json`). The
// service fills one on demand (`SolverService::metrics()`) from its
// ServiceStats counters and stage histograms; the bench writes the JSON
// form via `--metrics-json=<path>`, and a scraper would serve the
// Prometheus form. The registry itself is not thread-safe — it is a
// snapshot assembled by one thread from atomic sources.

#ifndef SUBDP_OBS_METRICS_HPP_
#define SUBDP_OBS_METRICS_HPP_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/latency_histogram.hpp"

namespace subdp::obs {

class MetricsRegistry {
 public:
  /// Adds (or overwrites) a numeric metric. Rendered as a Prometheus
  /// gauge; insertion order is preserved in both outputs.
  void set_gauge(const std::string& name, double value);

  /// Adds a labelled histogram, e.g.
  /// `set_histogram("subdp_solve_ns", "stage=\"solve\"", snap)`.
  /// `labels` is a raw Prometheus label body (no braces), may be empty.
  void set_histogram(const std::string& name, const std::string& labels,
                     const HistogramSnapshot& snapshot);

  /// Prometheus text exposition format: each gauge as `# TYPE ... gauge`
  /// + value, each histogram as cumulative `_bucket{le="..."}` lines up
  /// to its highest populated bucket plus `+Inf`, `_count`, `_sum`, and
  /// `_p50`/`_p95`/`_p99` convenience gauges.
  [[nodiscard]] std::string to_prometheus() const;

  /// JSON dump: {"gauges": {...}, "histograms": [{name, labels, count,
  /// sum, p50, p95, p99, buckets: [[lo, hi, count], ...]}]}.
  [[nodiscard]] std::string to_json() const;

 private:
  struct Gauge {
    std::string name;
    double value = 0.0;
  };
  struct Histogram {
    std::string name;
    std::string labels;
    HistogramSnapshot snapshot;
  };

  std::vector<Gauge> gauges_;
  std::vector<Histogram> histograms_;
};

}  // namespace subdp::obs

#endif  // SUBDP_OBS_METRICS_HPP_
