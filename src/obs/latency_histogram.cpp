#include "obs/latency_histogram.hpp"

#include <bit>
#include <limits>

namespace subdp::obs {

std::size_t histogram_bucket(std::uint64_t value) {
  return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t histogram_bucket_lo(std::size_t index) {
  return index == 0 ? 0 : std::uint64_t{1} << (index - 1);
}

std::uint64_t histogram_bucket_hi(std::size_t index) {
  if (index == 0) return 0;
  if (index == kHistogramBuckets - 1) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return (std::uint64_t{1} << index) - 1;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t next = cumulative + buckets[b];
    if (static_cast<double>(next) >= target) {
      const double lo = static_cast<double>(histogram_bucket_lo(b));
      const double hi = static_cast<double>(histogram_bucket_hi(b));
      const double into = target - static_cast<double>(cumulative);
      const double fraction = into / static_cast<double>(buckets[b]);
      return lo + fraction * (hi - lo);
    }
    cumulative = next;
  }
  // q == 1 with rounding: the highest populated bucket's upper edge.
  for (std::size_t b = kHistogramBuckets; b-- > 0;) {
    if (buckets[b] != 0) return static_cast<double>(histogram_bucket_hi(b));
  }
  return 0.0;
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot out;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    out.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace subdp::obs
