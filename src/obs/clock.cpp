#include "obs/clock.hpp"

namespace subdp::obs {

std::shared_ptr<const Clock> default_clock() {
  static const std::shared_ptr<const Clock> instance =
      std::make_shared<SteadyClock>();
  return instance;
}

}  // namespace subdp::obs
