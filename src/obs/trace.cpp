#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <thread>

namespace subdp::obs {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSubmit:
      return "submit";
    case TraceEventKind::kEnqueue:
      return "enqueue";
    case TraceEventKind::kReject:
      return "reject";
    case TraceEventKind::kDequeue:
      return "dequeue";
    case TraceEventKind::kExpire:
      return "expire";
    case TraceEventKind::kColdDefer:
      return "cold_defer";
    case TraceEventKind::kPlanReady:
      return "plan_ready";
    case TraceEventKind::kPlanAcquired:
      return "plan_acquired";
    case TraceEventKind::kSolveBegin:
      return "solve_begin";
    case TraceEventKind::kSolveEnd:
      return "solve_end";
    case TraceEventKind::kResolve:
      return "resolve";
    case TraceEventKind::kFail:
      return "fail";
  }
  return "unknown";
}

const char* to_string(PlanSource source) {
  switch (source) {
    case PlanSource::kNone:
      return "none";
    case PlanSource::kCacheHit:
      return "cache-hit";
    case PlanSource::kSnapshotHit:
      return "snapshot-hit";
    case PlanSource::kColdBuild:
      return "cold-build";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t stripes, std::size_t capacity_per_stripe)
    : capacity_(capacity_per_stripe),
      stripes_(stripes == 0 ? 1 : stripes) {
  for (Stripe& stripe : stripes_) {
    stripe.slots = std::make_unique<Slot[]>(capacity_);
  }
}

TraceRing::Stripe& TraceRing::stripe_for_this_thread() {
  // Long-lived threads (service workers, the builder) hash to a stable
  // stripe, so steady-state recording is contention-free in practice;
  // collisions only cost fetch_add contention, never correctness.
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripes_[h % stripes_.size()];
}

bool TraceRing::record(const TraceEvent& event) {
  Stripe& stripe = stripe_for_this_thread();
  const std::size_t idx =
      stripe.reserved.fetch_add(1, std::memory_order_relaxed);
  if (idx >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Slot& slot = stripe.slots[idx];
  slot.event = event;
  slot.ready.store(1, std::memory_order_release);
  return true;
}

std::vector<TraceEvent> TraceRing::collect() const {
  std::vector<TraceEvent> out;
  for (const Stripe& stripe : stripes_) {
    const std::size_t used =
        std::min(stripe.reserved.load(std::memory_order_acquire), capacity_);
    for (std::size_t k = 0; k < used; ++k) {
      const Slot& slot = stripe.slots[k];
      // A claimed-but-unpublished slot (writer between the fetch_add and
      // the release store) is skipped rather than read torn.
      if (slot.ready.load(std::memory_order_acquire) == 0) continue;
      out.push_back(slot.event);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.timestamp_ns != b.timestamp_ns
                         ? a.timestamp_ns < b.timestamp_ns
                         : a.job_id < b.job_id;
            });
  return out;
}

namespace {

void append_event_json(std::string& out, const TraceEvent& e, bool first) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "%s    {\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", "
      "\"ts\": %.3f, \"pid\": 1, \"tid\": %llu, "
      "\"args\": {\"source\": \"%s\"}}",
      first ? "" : ",\n", to_string(e.kind),
      static_cast<double>(e.timestamp_ns) / 1000.0,
      static_cast<unsigned long long>(e.job_id), to_string(e.source));
  out += buf;
}

const char* outcome_name(TraceEventKind terminal) {
  switch (terminal) {
    case TraceEventKind::kResolve:
      return "completed";
    case TraceEventKind::kReject:
      return "rejected";
    case TraceEventKind::kExpire:
      return "expired";
    case TraceEventKind::kFail:
      return "failed";
    default:
      return "in-flight";
  }
}

}  // namespace

std::string render_chrome_trace(const std::vector<TraceEvent>& events) {
  // Per-job span bookkeeping: first/last timestamp, the latest terminal
  // kind seen, and whether the job ever took the cold-deferred path.
  struct JobSpan {
    std::uint64_t first_ns = 0;
    std::uint64_t last_ns = 0;
    TraceEventKind terminal = TraceEventKind::kSubmit;
    bool has_terminal = false;
    bool cold_deferred = false;
    bool seen = false;
  };
  std::map<std::uint64_t, JobSpan> spans;
  for (const TraceEvent& e : events) {
    JobSpan& span = spans[e.job_id];
    if (!span.seen) {
      span.first_ns = e.timestamp_ns;
      span.seen = true;
    }
    span.first_ns = std::min(span.first_ns, e.timestamp_ns);
    span.last_ns = std::max(span.last_ns, e.timestamp_ns);
    if (e.kind == TraceEventKind::kColdDefer) span.cold_deferred = true;
    if (e.kind == TraceEventKind::kResolve ||
        e.kind == TraceEventKind::kReject ||
        e.kind == TraceEventKind::kExpire ||
        e.kind == TraceEventKind::kFail) {
      span.terminal = e.kind;
      span.has_terminal = true;
    }
  }

  std::string out = "{\n  \"traceEvents\": [\n";
  bool first = true;
  for (const auto& [job_id, span] : spans) {
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "%s    {\"name\": \"job %llu (%s)\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %llu, "
        "\"args\": {\"outcome\": \"%s\", \"cold_deferred\": %s}}",
        first ? "" : ",\n", static_cast<unsigned long long>(job_id),
        outcome_name(span.has_terminal ? span.terminal
                                       : TraceEventKind::kSubmit),
        static_cast<double>(span.first_ns) / 1000.0,
        static_cast<double>(span.last_ns - span.first_ns) / 1000.0,
        static_cast<unsigned long long>(job_id),
        outcome_name(span.has_terminal ? span.terminal
                                       : TraceEventKind::kSubmit),
        span.cold_deferred ? "true" : "false");
    out += buf;
    first = false;
  }
  for (const TraceEvent& e : events) {
    append_event_json(out, e, first);
    first = false;
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace subdp::obs
