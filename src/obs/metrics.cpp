#include "obs/metrics.hpp"

#include <cstdio>
#include <set>

namespace subdp::obs {

namespace {

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  for (Gauge& g : gauges_) {
    if (g.name == name) {
      g.value = value;
      return;
    }
  }
  gauges_.push_back({name, value});
}

void MetricsRegistry::set_histogram(const std::string& name,
                                    const std::string& labels,
                                    const HistogramSnapshot& snapshot) {
  for (Histogram& h : histograms_) {
    if (h.name == name && h.labels == labels) {
      h.snapshot = snapshot;
      return;
    }
  }
  histograms_.push_back({name, labels, snapshot});
}

std::string MetricsRegistry::to_prometheus() const {
  std::string out;
  std::set<std::string> typed;  // one # TYPE line per metric name
  for (const Gauge& g : gauges_) {
    if (typed.insert(g.name).second) {
      out += "# TYPE " + g.name + " gauge\n";
    }
    out += g.name + " " + format_double(g.value) + "\n";
  }
  for (const Histogram& h : histograms_) {
    if (typed.insert(h.name).second) {
      out += "# TYPE " + h.name + " histogram\n";
    }
    const std::string label_prefix =
        h.labels.empty() ? std::string() : h.labels + ",";
    // Cumulative buckets up to the highest populated one, then +Inf.
    std::size_t highest = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.snapshot.buckets[b] != 0) highest = b;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b <= highest; ++b) {
      cumulative += h.snapshot.buckets[b];
      out += h.name + "_bucket{" + label_prefix + "le=\"" +
             std::to_string(histogram_bucket_hi(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    const std::string braces =
        h.labels.empty() ? std::string() : "{" + h.labels + "}";
    out += h.name + "_bucket{" + label_prefix + "le=\"+Inf\"} " +
           std::to_string(h.snapshot.count) + "\n";
    out += h.name + "_count" + braces + " " +
           std::to_string(h.snapshot.count) + "\n";
    out += h.name + "_sum" + braces + " " + std::to_string(h.snapshot.sum) +
           "\n";
    out += h.name + "_p50" + braces + " " +
           format_double(h.snapshot.p50()) + "\n";
    out += h.name + "_p95" + braces + " " +
           format_double(h.snapshot.p95()) + "\n";
    out += h.name + "_p99" + braces + " " +
           format_double(h.snapshot.p99()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n  \"gauges\": {";
  bool first = true;
  for (const Gauge& g : gauges_) {
    out += first ? "\n" : ",\n";
    out += "    \"";
    append_json_escaped(out, g.name);
    out += "\": " + format_double(g.value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": [";
  first = true;
  for (const Histogram& h : histograms_) {
    out += first ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_json_escaped(out, h.name);
    out += "\", \"labels\": \"";
    append_json_escaped(out, h.labels);
    out += "\", \"count\": " + std::to_string(h.snapshot.count) +
           ", \"sum\": " + std::to_string(h.snapshot.sum) +
           ", \"p50\": " + format_double(h.snapshot.p50()) +
           ", \"p95\": " + format_double(h.snapshot.p95()) +
           ", \"p99\": " + format_double(h.snapshot.p99()) +
           ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.snapshot.buckets[b] == 0) continue;
      if (!first_bucket) out += ", ";
      out += "[" + std::to_string(histogram_bucket_lo(b)) + ", " +
             std::to_string(histogram_bucket_hi(b)) + ", " +
             std::to_string(h.snapshot.buckets[b]) + "]";
      first_bucket = false;
    }
    out += "]}";
    first = false;
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace subdp::obs
