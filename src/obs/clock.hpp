// Monotonic-clock seam for the serving stack.
//
// Everything in serve/ that reads time (deadline expiry, queue-wait and
// stage latencies, trace-event timestamps) goes through an obs::Clock so
// tests can drive time deterministically instead of sleeping. Production
// code uses the process-wide SteadyClock singleton (`default_clock()`);
// tests inject a ManualClock through `ServiceOptions::clock` and advance
// it explicitly.

#ifndef SUBDP_OBS_CLOCK_HPP_
#define SUBDP_OBS_CLOCK_HPP_

#include <atomic>
#include <chrono>
#include <memory>

namespace subdp::obs {

/// A monotonic time source. Implementations must be thread-safe: `now()`
/// is called concurrently from every service worker.
class Clock {
 public:
  using time_point = std::chrono::steady_clock::time_point;
  using duration = std::chrono::steady_clock::duration;

  virtual ~Clock() = default;

  [[nodiscard]] virtual time_point now() const = 0;
};

/// The real monotonic clock.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] time_point now() const override {
    return std::chrono::steady_clock::now();
  }
};

/// A manually advanced clock for deterministic tests. Starts at the
/// steady-clock epoch; `advance` and `set` are atomic, so readers on
/// other threads always see a consistent (monotonic, if the test only
/// advances) time.
class ManualClock final : public Clock {
 public:
  ManualClock() : ns_(0) {}
  explicit ManualClock(time_point start)
      : ns_(start.time_since_epoch().count()) {}

  [[nodiscard]] time_point now() const override {
    return time_point(duration(ns_.load(std::memory_order_acquire)));
  }

  void advance(duration d) {
    ns_.fetch_add(d.count(), std::memory_order_acq_rel);
  }

  void set(time_point t) {
    ns_.store(t.time_since_epoch().count(), std::memory_order_release);
  }

 private:
  std::atomic<duration::rep> ns_;
};

/// The shared SteadyClock every service uses unless one is injected.
[[nodiscard]] std::shared_ptr<const Clock> default_clock();

}  // namespace subdp::obs

#endif  // SUBDP_OBS_CLOCK_HPP_
