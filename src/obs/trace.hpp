// Per-job lifecycle trace spans.
//
// Every SolverService job emits timestamped TraceEvents (submit →
// enqueue → dequeue → plan acquired → solve begin/end → resolve, plus
// the reject / expire / cold-defer / fail paths) into a TraceRing: a
// fixed-capacity, lock-free, striped ring buffer. Writers claim a slot
// with one relaxed fetch_add on their stripe; a full stripe counts the
// event as dropped and returns — recording never blocks the hot path
// and never overwrites an earlier event (slots are claim-once, so a
// collected event is always whole). `render_chrome_trace` turns a
// collected event list into Chrome trace-event JSON ("traceEvents"
// array: one instant event per lifecycle point plus one complete span
// per job), loadable in chrome://tracing or Perfetto.

#ifndef SUBDP_OBS_TRACE_HPP_
#define SUBDP_OBS_TRACE_HPP_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace subdp::obs {

/// A job lifecycle point. kResolve / kReject / kExpire / kFail are the
/// terminal kinds; exactly one of them ends every job's span.
enum class TraceEventKind : std::uint8_t {
  kSubmit,        ///< accepted by a submit/solve_all call
  kEnqueue,       ///< admitted to the dispatch queue
  kReject,        ///< shed at admission (queue full, kReject policy)
  kDequeue,       ///< picked up by a worker
  kExpire,        ///< deadline already passed at pickup
  kColdDefer,     ///< handed to the background builder (cold plan)
  kPlanReady,     ///< builder finished the cold build
  kPlanAcquired,  ///< worker holds the plan (source says from where)
  kSolveBegin,    ///< session lease acquired, solve starting
  kSolveEnd,      ///< solve finished
  kResolve,       ///< result delivered (future / batch slot)
  kFail,          ///< solve threw; error delivered
};

[[nodiscard]] const char* to_string(TraceEventKind kind);

/// Where a job's plan came from, attached to kPlanAcquired / kPlanReady.
enum class PlanSource : std::uint8_t {
  kNone,         ///< not a plan event
  kCacheHit,     ///< warm PlanCache entry
  kSnapshotHit,  ///< loaded from the on-disk snapshot store
  kColdBuild,    ///< built from scratch
};

[[nodiscard]] const char* to_string(PlanSource source);

struct TraceEvent {
  std::uint64_t job_id = 0;
  std::uint64_t timestamp_ns = 0;  ///< clock time since steady epoch
  TraceEventKind kind = TraceEventKind::kSubmit;
  PlanSource source = PlanSource::kNone;
};

/// Fixed-capacity, striped, lock-free event sink. Each stripe is an
/// independent claim-once ring segment: `reserved` is bumped with a
/// relaxed fetch_add; claims past the stripe capacity increment the
/// shared drop counter instead (drop-newest, counted exactly). A per-slot
/// release/acquire `ready` flag keeps collection torn-free without any
/// lock on the write side.
class TraceRing {
 public:
  TraceRing(std::size_t stripes, std::size_t capacity_per_stripe);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Record one event from any thread. Never blocks; returns false when
  /// the calling thread's stripe is full (the drop was counted).
  bool record(const TraceEvent& event);

  /// All fully-written events across stripes, ordered by timestamp.
  [[nodiscard]] std::vector<TraceEvent> collect() const;

  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t stripes() const { return stripes_.size(); }
  [[nodiscard]] std::size_t capacity_per_stripe() const { return capacity_; }

 private:
  struct Slot {
    TraceEvent event;
    std::atomic<std::uint32_t> ready{0};
  };

  struct Stripe {
    std::atomic<std::size_t> reserved{0};
    std::unique_ptr<Slot[]> slots;
  };

  [[nodiscard]] Stripe& stripe_for_this_thread();

  std::size_t capacity_;
  std::vector<Stripe> stripes_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Renders collected events as Chrome trace-event JSON: an instant event
/// ("ph":"i") per lifecycle point (tid = job id, plan source in args)
/// plus a complete span ("ph":"X") per job from its first to its last
/// event, labelled with the job's outcome (completed / rejected /
/// expired / failed) and whether it took the cold-deferred path.
[[nodiscard]] std::string render_chrome_trace(
    const std::vector<TraceEvent>& events);

}  // namespace subdp::obs

#endif  // SUBDP_OBS_TRACE_HPP_
