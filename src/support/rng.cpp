#include "support/rng.hpp"

#include "support/assert.hpp"

namespace subdp::support {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SUBDP_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - span) % span;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) {
      return lo + static_cast<std::int64_t>(r % span);
    }
  }
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

Rng Rng::fork() noexcept { return Rng(next()); }

}  // namespace subdp::support
