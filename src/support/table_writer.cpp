#include "support/table_writer.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace subdp::support {

TableWriter::TableWriter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  SUBDP_REQUIRE(!columns_.empty(), "table needs at least one column");
}

void TableWriter::add_row(std::vector<Cell> row) {
  SUBDP_REQUIRE(row.size() == columns_.size(),
                "row width must match column count");
  rows_.push_back(std::move(row));
}

std::string TableWriter::format_cell(const Cell& cell) {
  if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&cell)) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(4) << *d;
    std::string s = os.str();
    // Trim trailing zeros but keep at least one decimal digit.
    while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.') {
      s.pop_back();
    }
    return s;
  }
  return std::get<std::string>(cell);
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  os << "\n== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& cells : rendered) emit_row(cells);
}

bool TableWriter::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string e = "\"";
    for (char ch : s) {
      if (ch == '"') e += '"';
      e += ch;
    }
    e += '"';
    return e;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << (c ? "," : "") << escape(columns_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << escape(format_cell(row[c]));
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace subdp::support
