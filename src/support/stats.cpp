#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace subdp::support {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;

  double sum = 0.0;
  s.min = xs.front();
  s.max = xs.front();
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());

  double sq = 0.0;
  for (double x : xs) sq += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(sq / static_cast<double>(xs.size() - 1))
                 : 0.0;

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = (sorted.size() % 2 == 1)
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  SUBDP_REQUIRE(xs.size() == ys.size(), "fit_linear: size mismatch");
  SUBDP_REQUIRE(xs.size() >= 2, "fit_linear: need at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  fit.slope = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_power_law(std::span<const double> xs,
                        std::span<const double> ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    SUBDP_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0,
                  "fit_power_law: inputs must be positive");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_linear(lx, ly);
}

LinearFit fit_logarithmic(std::span<const double> xs,
                          std::span<const double> ys) {
  std::vector<double> lx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    SUBDP_REQUIRE(xs[i] > 0.0, "fit_logarithmic: x must be positive");
    lx[i] = std::log2(xs[i]);
  }
  return fit_linear(lx, ys);
}

std::size_t ceil_sqrt(std::size_t n) {
  if (n == 0) return 0;
  auto r = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  while (r * r >= n && r > 0) --r;  // now r*r < n
  while (r * r < n) ++r;            // smallest r with r*r >= n
  return r;
}

std::size_t two_ceil_sqrt(std::size_t n) { return 2 * ceil_sqrt(n); }

std::size_t ceil_log2(std::size_t n) {
  SUBDP_REQUIRE(n >= 1, "ceil_log2: n must be >= 1");
  std::size_t bits = 0;
  std::size_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace subdp::support
