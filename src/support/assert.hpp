#pragma once

/// \file assert.hpp
/// Assertion macros used across subdp.
///
/// `SUBDP_REQUIRE` is an always-on precondition check (throws
/// `std::invalid_argument`); use it to validate user-facing API arguments.
/// `SUBDP_ASSERT` is an internal invariant check (throws `std::logic_error`)
/// compiled out in `NDEBUG` builds; use it in hot paths.

#include <stdexcept>
#include <string>

namespace subdp::support {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw std::invalid_argument(std::string("SUBDP_REQUIRE failed: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : (": " + msg)));
}

[[noreturn]] inline void assert_failed(const char* expr, const char* file,
                                       int line) {
  throw std::logic_error(std::string("SUBDP_ASSERT failed: ") + expr + " at " +
                         file + ":" + std::to_string(line));
}

}  // namespace subdp::support

#define SUBDP_REQUIRE(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::subdp::support::require_failed(#expr, __FILE__, __LINE__, msg);  \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define SUBDP_ASSERT(expr) \
  do {                     \
  } while (false)
#else
#define SUBDP_ASSERT(expr)                                          \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::subdp::support::assert_failed(#expr, __FILE__, __LINE__);   \
    }                                                               \
  } while (false)
#endif
