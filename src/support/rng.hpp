#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// All experiment randomness flows through `Rng` (xoshiro256**, seeded via
/// splitmix64) so that every test, example and benchmark is reproducible
/// from a single 64-bit seed. We deliberately avoid `std::mt19937` +
/// `std::uniform_int_distribution` because their outputs are not specified
/// identically across standard libraries; experiment tables must be
/// bit-stable across toolchains.

#include <array>
#include <cstdint>
#include <vector>

namespace subdp::support {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Raw 64-bit output (UniformRandomBitGenerator interface).
  [[nodiscard]] std::uint64_t next() noexcept;
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ull; }

  /// Uniform integer in `[lo, hi]` (inclusive). Requires `lo <= hi`.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in `[0, 1)`.
  [[nodiscard]] double uniform01() noexcept;

  /// Bernoulli trial with success probability `p`.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-trial streams).
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace subdp::support
