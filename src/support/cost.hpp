#pragma once

/// \file cost.hpp
/// The cost domain used by every dynamic-programming table in subdp.
///
/// Costs are 64-bit integers with a distinguished `kInfinity` sentinel and
/// *saturating* addition, so that `inf + x == inf` holds without signed
/// overflow (which would be UB). All recurrence tables start at `kInfinity`
/// and monotonically decrease toward the optimum, mirroring the paper's
/// initialisation of `w'` and `pw'` to infinity.

#include <cstdint>
#include <limits>

#include "support/assert.hpp"

namespace subdp {

/// Scalar cost. Finite problem costs must stay well below `kInfinity / 4`
/// so that sums of two finite costs never saturate accidentally.
using Cost = std::int64_t;

/// Sentinel for "no decomposition known yet" (the paper's \f$\infty\f$).
inline constexpr Cost kInfinity = std::numeric_limits<Cost>::max() / 4;

/// True iff `c` represents a real (non-infinite) cost.
[[nodiscard]] constexpr bool is_finite(Cost c) noexcept {
  return c < kInfinity;
}

/// Saturating addition: if either operand is infinite, or the exact sum
/// reaches the sentinel, the result is `kInfinity`. Both operands must be
/// nonnegative (all `f`, `init` values in the recurrence family are), and
/// since `kInfinity` is far below `INT64_MAX / 2` the intermediate sum
/// never overflows.
[[nodiscard]] constexpr Cost sat_add(Cost a, Cost b) noexcept {
  if (a >= kInfinity || b >= kInfinity) return kInfinity;
  const Cost sum = a + b;
  return sum >= kInfinity ? kInfinity : sum;
}

/// Three-operand saturating addition, used for `c(i,k) + c(k,j) + f(i,k,j)`.
[[nodiscard]] constexpr Cost sat_add(Cost a, Cost b, Cost c) noexcept {
  return sat_add(sat_add(a, b), c);
}

/// Minimum of two costs (named for symmetry with `sat_add`).
[[nodiscard]] constexpr Cost sat_min(Cost a, Cost b) noexcept {
  return a < b ? a : b;
}

}  // namespace subdp
