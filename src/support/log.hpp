#pragma once

/// \file log.hpp
/// Leveled stderr logging. Quiet by default (warnings and errors only);
/// experiment binaries raise the level behind a `--verbose` flag.

#include <sstream>
#include <string>

namespace subdp::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum severity that is emitted.
void set_log_level(LogLevel level);

/// Current global minimum severity.
[[nodiscard]] LogLevel log_level();

/// Emits `message` at `level` (with a severity prefix) if enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <class T, class... Rest>
void format_into(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  format_into(os, rest...);
}
}  // namespace detail

/// Streams all arguments into one log record.
template <class... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(level, os.str());
}

template <class... Args>
void log_debug(const Args&... args) {
  log(LogLevel::kDebug, args...);
}
template <class... Args>
void log_info(const Args&... args) {
  log(LogLevel::kInfo, args...);
}
template <class... Args>
void log_warn(const Args&... args) {
  log(LogLevel::kWarn, args...);
}
template <class... Args>
void log_error(const Args&... args) {
  log(LogLevel::kError, args...);
}

}  // namespace subdp::support
