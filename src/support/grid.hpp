#pragma once

/// \file grid.hpp
/// Dense row-major 2-D array. Used for the O(n^2) `w'(i,j)` tables, split
/// tables and prefix-weight matrices. Bounds are checked in debug builds.

#include <cstddef>
#include <vector>

#include "support/assert.hpp"

namespace subdp::support {

/// `rows x cols` dense array of `T` with value-initialised elements.
template <class T>
class Grid2D {
 public:
  Grid2D() = default;

  Grid2D(std::size_t rows, std::size_t cols, const T& fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    SUBDP_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    SUBDP_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Resets every element to `fill`.
  void fill(const T& fill) { data_.assign(data_.size(), fill); }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  friend bool operator==(const Grid2D& a, const Grid2D& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace subdp::support
