#pragma once

/// \file cli.hpp
/// Minimal command-line flag parser for examples and experiment binaries.
///
/// Flags use the `--name=value` or `--name value` form; bare `--name` sets a
/// boolean flag to true. Unknown flags are an error so that typos in sweep
/// scripts fail loudly rather than silently running defaults.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace subdp::support {

/// Declarative flag registry + parser.
class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Registers a flag. `help` is printed by `usage()`.
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, std::string default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);

  /// Parses argv. Returns false (after printing usage) on `--help` or on a
  /// malformed/unknown flag; the caller should exit in that case.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Positional arguments (everything not starting with `--`).
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Renders the help text.
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  [[nodiscard]] const Flag& find(const std::string& name, Kind kind) const;
  bool assign(Flag& flag, const std::string& text);

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace subdp::support
