#pragma once

/// \file timer.hpp
/// Wall-clock timing helpers (steady clock).

#include <chrono>

namespace subdp::support {

/// Stopwatch over `std::chrono::steady_clock`.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction / last `reset()`.
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last `reset()`.
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace subdp::support
