#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/assert.hpp"

namespace subdp::support {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  Flag f;
  f.kind = Kind::kInt;
  f.help = help;
  f.int_value = default_value;
  flags_.emplace(name, std::move(f));
}

void ArgParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  Flag f;
  f.kind = Kind::kDouble;
  f.help = help;
  f.double_value = default_value;
  flags_.emplace(name, std::move(f));
}

void ArgParser::add_string(const std::string& name, std::string default_value,
                           const std::string& help) {
  Flag f;
  f.kind = Kind::kString;
  f.help = help;
  f.string_value = std::move(default_value);
  flags_.emplace(name, std::move(f));
}

void ArgParser::add_bool(const std::string& name, bool default_value,
                         const std::string& help) {
  Flag f;
  f.kind = Kind::kBool;
  f.help = help;
  f.bool_value = default_value;
  flags_.emplace(name, std::move(f));
}

bool ArgParser::assign(Flag& flag, const std::string& text) {
  try {
    switch (flag.kind) {
      case Kind::kInt:
        flag.int_value = std::stoll(text);
        return true;
      case Kind::kDouble:
        flag.double_value = std::stod(text);
        return true;
      case Kind::kString:
        flag.string_value = text;
        return true;
      case Kind::kBool:
        flag.bool_value = (text == "true" || text == "1" || text == "yes");
        return true;
    }
  } catch (const std::exception&) {
    return false;
  }
  return false;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }
    Flag& flag = it->second;
    if (!value.has_value()) {
      if (flag.kind == Kind::kBool) {
        flag.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!assign(flag, *value)) {
      std::fprintf(stderr, "could not parse value '%s' for flag --%s\n",
                   value->c_str(), name.c_str());
      return false;
    }
  }
  return true;
}

const ArgParser::Flag& ArgParser::find(const std::string& name,
                                       Kind kind) const {
  auto it = flags_.find(name);
  SUBDP_REQUIRE(it != flags_.end(), "unregistered flag: " + name);
  SUBDP_REQUIRE(it->second.kind == kind, "flag type mismatch: " + name);
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return find(name, Kind::kInt).int_value;
}

double ArgParser::get_double(const std::string& name) const {
  return find(name, Kind::kDouble).double_value;
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).string_value;
}

bool ArgParser::get_bool(const std::string& name) const {
  return find(name, Kind::kBool).bool_value;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.kind) {
      case Kind::kInt:
        os << "=<int>     (default " << flag.int_value << ")";
        break;
      case Kind::kDouble:
        os << "=<float>   (default " << flag.double_value << ")";
        break;
      case Kind::kString:
        os << "=<string>  (default '" << flag.string_value << "')";
        break;
      case Kind::kBool:
        os << "            (default " << (flag.bool_value ? "true" : "false")
           << ")";
        break;
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace subdp::support
