#pragma once

/// \file table_writer.hpp
/// Paper-style result tables: aligned text to stdout plus optional CSV.
///
/// Every experiment binary prints its rows through a `TableWriter`, so all
/// outputs share one format and EXPERIMENTS.md can quote them verbatim.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace subdp::support {

/// One cell: integer, float (printed with limited precision) or text.
using Cell = std::variant<std::int64_t, double, std::string>;

/// Accumulates rows under a fixed header and renders them aligned.
class TableWriter {
 public:
  /// `title` is printed above the table; `columns` is the header row.
  TableWriter(std::string title, std::vector<std::string> columns);

  /// Appends a data row; must have exactly as many cells as columns.
  void add_row(std::vector<Cell> row);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders the table (title, header, separator, rows) to `os`.
  void print(std::ostream& os) const;

  /// Writes the table as RFC-4180-ish CSV (no title row) to `path`.
  /// Returns false if the file could not be opened.
  bool write_csv(const std::string& path) const;

  /// Renders one cell as text (doubles get 4 significant decimals).
  [[nodiscard]] static std::string format_cell(const Cell& cell);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace subdp::support
