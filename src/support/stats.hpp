#pragma once

/// \file stats.hpp
/// Descriptive statistics and curve fits used by the experiment harness.
///
/// Benchmarks summarise repeated trials (`summarize`) and estimate empirical
/// growth exponents by ordinary least squares in log-log space
/// (`fit_power_law`) or semi-log space (`fit_logarithmic`), so every table
/// can print "measured exponent" next to the paper's predicted one.

#include <cstddef>
#include <span>
#include <vector>

namespace subdp::support {

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes a `Summary` of `xs`. An empty sample yields a zeroed summary.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Result of a least-squares straight-line fit `y = intercept + slope * x`.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< Coefficient of determination.
};

/// Ordinary least squares over the points `(xs[i], ys[i])`.
/// Requires `xs.size() == ys.size() >= 2`.
[[nodiscard]] LinearFit fit_linear(std::span<const double> xs,
                                   std::span<const double> ys);

/// Fits `y = C * x^alpha` by OLS on `log y = log C + alpha log x`.
/// Returns `{alpha, log C, R^2}` in `LinearFit` fields (slope = alpha).
/// All inputs must be strictly positive.
[[nodiscard]] LinearFit fit_power_law(std::span<const double> xs,
                                      std::span<const double> ys);

/// Fits `y = a + b * log2(x)` (semi-log). slope = b, intercept = a.
/// All `xs` must be strictly positive.
[[nodiscard]] LinearFit fit_logarithmic(std::span<const double> xs,
                                        std::span<const double> ys);

/// Integer square root bound used throughout the paper:
/// `2 * ceil(sqrt(n))`, the worst-case move count of Lemma 3.3.
[[nodiscard]] std::size_t two_ceil_sqrt(std::size_t n);

/// `ceil(sqrt(n))` computed exactly in integers.
[[nodiscard]] std::size_t ceil_sqrt(std::size_t n);

/// `ceil(log2(n))` for n >= 1 (returns 0 for n == 1).
[[nodiscard]] std::size_t ceil_log2(std::size_t n);

}  // namespace subdp::support
