#include "serve/solver_service.hpp"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace subdp::serve {

namespace {

std::size_t resolve_workers(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

std::shared_ptr<snapshot::SnapshotStore> open_store(
    const std::string& snapshot_dir) {
  if (snapshot_dir.empty()) return nullptr;
  return std::make_shared<snapshot::SnapshotStore>(snapshot_dir);
}

obs::PlanSource to_plan_source(BuildSource source) {
  switch (source) {
    case BuildSource::kWarm:
      return obs::PlanSource::kCacheHit;
    case BuildSource::kSnapshot:
      return obs::PlanSource::kSnapshotHit;
    case BuildSource::kBuilt:
      return obs::PlanSource::kColdBuild;
  }
  return obs::PlanSource::kNone;
}

/// Per-shape histogram label: every field that distinguishes latency
/// behaviour at a glance (size, layout, square mode) — not the full
/// PlanKey, which would shard the histograms too finely to read.
std::string shape_label(std::size_t n, const core::SublinearOptions& opts) {
  return "n" + std::to_string(n) + "-" + to_string(opts.variant) + "-" +
         to_string(opts.square_mode);
}

}  // namespace

core::SublinearOptions SolverService::normalized(
    core::SublinearOptions options) const {
  // Multi-worker sessions run the serial engine path (the shared engine
  // pool is single-issuer, and instance-level parallelism already covers
  // the cores); a one-worker service keeps the caller's backend, so the
  // BatchSolver facade behaves exactly like the pre-service BatchSolver.
  if (workers_ > 1) options.machine.backend = pram::Backend::kSerial;
  return options;
}

/// Completion rendezvous for one `solve_all` call.
struct SolverService::BatchCall {
  core::SublinearResult* results = nullptr;  ///< Slot per input index.
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = 0;
  std::uint64_t iterations = 0;
  std::uint64_t work = 0;
  std::uint64_t depth = 0;
  std::exception_ptr error;
};

SolverService::SolverService(ServiceOptions options)
    : options_(std::move(options)),
      workers_(resolve_workers(options_.workers)),
      store_(open_store(options_.snapshot_dir)),
      cache_(options_.plan_capacity,
             options_.sessions_per_plan != 0 ? options_.sessions_per_plan
                                             : workers_,
             store_) {
  options_.solver = normalized(options_.solver);
  builders_ = options_.builders != 0 ? options_.builders : 1;
  clock_ = options_.clock != nullptr ? options_.clock : obs::default_clock();
  if (options_.trace_capacity != 0) {
    // One stripe per long-lived thread (workers + builder pool), plus
    // one of slack for submitter threads; hashing spreads them well
    // enough.
    trace_ring_ = std::make_unique<obs::TraceRing>(
        workers_ + builders_ + 1, options_.trace_capacity);
  }
  // Installed before the prewarm loop and before any thread starts, so
  // every real plan materialisation — prewarm loads included — feeds the
  // build/load histograms (the observer contract requires single-threaded
  // installation).
  cache_.set_build_observer(clock_, [this](const BuildReport& report) {
    if (report.source == BuildSource::kSnapshot) {
      snapshot_load_hist_.record(report.snapshot_load_ns);
    }
    plan_build_hist_.record(report.total_ns);
  });
  if (store_ != nullptr) {
    // Prewarm: resolve every manifest shape under the service options
    // before any thread starts — the first request of a listed shape hits
    // a warm cache entry, with the plan's geometry loaded from disk (a
    // snapshot hit) instead of rebuilt. A shape that fails to resolve
    // (bad manifest entry, invalid (n, options) combination) is skipped;
    // a damaged manifest degrades prewarming, never startup.
    for (const std::size_t n : store_->read_manifest()) {
      try {
        (void)cache_.acquire(n, options_.solver);
        ++shapes_prewarmed_;
      } catch (...) {
      }
    }
  }
  builder_threads_.reserve(builders_);
  for (std::size_t b = 0; b < builders_; ++b) {
    builder_threads_.emplace_back([this] { builder_loop(); });
  }
  worker_threads_.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    worker_threads_.emplace_back([this] { worker_loop(); });
  }
}

SolverService::~SolverService() {
  // Shutdown choreography (see the header's lifecycle contract):
  // 1. close intake — late calls fail loudly, blocked kBlock submitters
  //    wake and fail the same way, and solve_all fills mid-flight stop
  //    back-pressuring and push their remainder (waited for below, so
  //    their jobs are queued before any worker may exit);
  // 2. join the builder pool — each builder keeps claiming and building
  //    pending cold shapes until none remain, requeueing every deferred
  //    job (cold jobs dequeued by workers from here on are built inline
  //    — defer_to_builder refuses after builder_stop_);
  // 3. only then let workers exit on an empty queue, so every admitted
  //    job is drained — solved or expired — before threads die.
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    stopping_ = true;
    queue_not_full_.notify_all();
    batch_fills_done_.wait(lock, [&] { return batch_fills_ == 0; });
  }
  {
    const std::lock_guard<std::mutex> lock(builder_mutex_);
    builder_stop_ = true;
  }
  builder_cv_.notify_all();
  for (std::thread& builder : builder_threads_) {
    builder.join();
  }
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    workers_exit_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : worker_threads_) {
    worker.join();  // workers drain every queued job first
  }
}

std::future<core::SublinearResult> SolverService::submit(
    const dp::Problem& problem) {
  return submit_job(problem, options_.solver, options_.default_priority,
                    false, Deadline{});
}

std::future<core::SublinearResult> SolverService::submit(
    const dp::Problem& problem, const core::SublinearOptions& options) {
  return submit_job(problem, options, options_.default_priority, false,
                    Deadline{});
}

std::future<core::SublinearResult> SolverService::submit(
    const dp::Problem& problem, Deadline deadline) {
  return submit_job(problem, options_.solver, options_.default_priority,
                    true, deadline);
}

std::future<core::SublinearResult> SolverService::submit(
    const dp::Problem& problem, const core::SublinearOptions& options,
    Deadline deadline) {
  return submit_job(problem, options, options_.default_priority, true,
                    deadline);
}

std::future<core::SublinearResult> SolverService::submit(
    const dp::Problem& problem, PriorityClass priority) {
  return submit_job(problem, options_.solver, priority, false, Deadline{});
}

std::future<core::SublinearResult> SolverService::submit(
    const dp::Problem& problem, PriorityClass priority, Deadline deadline) {
  return submit_job(problem, options_.solver, priority, true, deadline);
}

std::future<core::SublinearResult> SolverService::submit(
    const dp::Problem& problem, const core::SublinearOptions& options,
    PriorityClass priority) {
  return submit_job(problem, options, priority, false, Deadline{});
}

std::future<core::SublinearResult> SolverService::submit(
    const dp::Problem& problem, const core::SublinearOptions& options,
    PriorityClass priority, Deadline deadline) {
  return submit_job(problem, options, priority, true, deadline);
}

std::future<core::SublinearResult> SolverService::submit_job(
    const dp::Problem& problem, const core::SublinearOptions& options,
    PriorityClass priority, bool has_deadline, Deadline deadline) {
  Job job;
  job.problem = &problem;
  job.solve_options = normalized(options);
  job.has_promise = true;
  job.priority = priority;
  job.has_deadline = has_deadline;
  job.deadline = deadline;
  job.id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  job.submit_time = clock_->now();
  trace(job.id, obs::TraceEventKind::kSubmit);
  std::future<core::SublinearResult> future = job.promise.get_future();
  enqueue(std::move(job));
  return future;
}

core::BatchResult SolverService::solve_all(
    std::span<const dp::Problem* const> problems) {
  return solve_all(problems, options_.solver);
}

core::BatchResult SolverService::solve_all(
    std::span<const dp::Problem* const> problems,
    const core::SublinearOptions& options) {
  const core::SublinearOptions opts = normalized(options);
  core::BatchResult out;
  out.results.resize(problems.size());
  out.ledger.instances = problems.size();

  // Group instance indices by shape: the ledger accounts one cache
  // hit/miss per distinct `n`, and same-shape jobs share the resolved
  // pool so workers skip the cache entirely.
  std::map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t idx = 0; idx < problems.size(); ++idx) {
    SUBDP_REQUIRE(problems[idx] != nullptr,
                  "solve_all: null problem pointer");
    groups[problems[idx]->size()].push_back(idx);
  }
  out.ledger.shape_groups = groups.size();
  if (problems.empty()) return out;

  BatchCall call;
  call.results = out.results.data();
  call.remaining = problems.size();

  std::deque<Job> jobs;
  for (const auto& [n, indices] : groups) {
    bool built = false;
    // Resolving on the caller thread (not per job on a worker) keeps the
    // per-call ledger exact — one hit or miss per shape group — and the
    // builder thread free for async cold traffic.
    std::shared_ptr<SessionPool> pool = cache_.acquire(n, opts, &built);
    if (built) {
      ++out.ledger.plans_built;
    } else {
      ++out.ledger.plans_reused;
    }
    for (const std::size_t idx : indices) {
      Job job;
      job.problem = problems[idx];
      job.solve_options = opts;
      job.pool = pool;
      job.batch = &call;
      job.slot = idx;
      job.priority = PriorityClass::kBatch;  // batch traffic yields to
                                             // interactive submits
      job.id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
      job.submit_time = clock_->now();
      trace(job.id, obs::TraceEventKind::kSubmit);
      jobs.push_back(std::move(job));  // no deadline: batch jobs bypass
                                       // expiry by construction
    }
  }
  enqueue(std::move(jobs));

  {
    std::unique_lock<std::mutex> lock(call.mutex);
    call.done.wait(lock, [&] { return call.remaining == 0; });
  }
  if (call.error) std::rethrow_exception(call.error);
  out.ledger.total_iterations = static_cast<std::size_t>(call.iterations);
  out.ledger.total_work = call.work;
  out.ledger.total_depth = call.depth;
  return out;
}

void SolverService::enqueue(Job&& job) {
  const std::size_t cls = static_cast<std::size_t>(job.priority);
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    SUBDP_REQUIRE(!stopping_,
                  "SolverService::submit/solve_all after shutdown began");
    const std::size_t cap = options_.queue_capacity;
    while (cap != 0 && queue_.size() >= cap && !stopping_) {
      // Full: sweep expired jobs first — a queue of already-expired
      // jobs frees its slots and admits new work instead of shedding
      // it. The sweep strictly shrank the queue when it returns > 0,
      // so this loop cannot spin.
      if (sweep_expired_locked(clock_->now()) > 0) {
        queue_not_full_.notify_all();
        continue;
      }
      if (options_.overload_policy == OverloadPolicy::kReject) {
        // Rejected submissions still count as submitted, so the
        // admission invariant (submitted == completed + rejected +
        // expired) holds without a separate denominator.
        const std::size_t depth = queue_.size();
        {
          const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
          ++jobs_submitted_;
          ++jobs_rejected_;
          ++class_submitted_[cls];
          ++class_rejected_[cls];
        }
        trace(job.id, obs::TraceEventKind::kReject);
        throw core::AdmissionError(
            core::AdmissionError::Kind::kQueueFull,
            "SolverService::submit: dispatch queue full (" +
                std::to_string(cap) + " jobs) under OverloadPolicy::kReject",
            depth, estimate_retry_after(depth));
      }
      // kBlock: back-pressure the submitter until a slot frees (worker
      // pickup or a later sweep). A shutdown racing this wait is a
      // lifecycle misuse; fail it with the same diagnostic as a late
      // submit (the loop exit below re-checks `stopping_`).
      queue_not_full_.wait(
          lock, [&] { return queue_.size() < cap || stopping_; });
    }
    SUBDP_REQUIRE(!stopping_,
                  "SolverService::submit/solve_all after shutdown began");
    {
      // Counted *before* the job becomes visible, so `stats()` can never
      // observe jobs_completed > jobs_submitted.
      const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++jobs_submitted_;
      ++class_submitted_[cls];
    }
    job.enqueue_time = clock_->now();
    trace(job.id, obs::TraceEventKind::kEnqueue);
    queue_.insert(std::move(job));
  }
  queue_cv_.notify_one();
}

void SolverService::enqueue(std::deque<Job>&& jobs) {
  const std::size_t count = jobs.size();
  std::unique_lock<std::mutex> lock(queue_mutex_);
  SUBDP_REQUIRE(!stopping_,
                "SolverService::submit/solve_all after shutdown began");
  // Registered in the same critical section as the REQUIRE, so a
  // concurrent destructor either rejects this call up front or waits
  // for the whole fill; see the destructor's choreography.
  ++batch_fills_;
  {
    // Counted *before* the jobs become visible; see the overload above.
    const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    jobs_submitted_ += count;
    class_submitted_[static_cast<std::size_t>(PriorityClass::kBatch)] +=
        count;
  }
  const std::size_t cap = options_.queue_capacity;
  for (Job& job : jobs) {
    while (cap != 0 && !stopping_ && queue_.size() >= cap) {
      // Batch jobs are never shed: at capacity the solve_all caller
      // blocks here while workers drain ahead of it, whatever the
      // overload policy (the blocking surface is its own back-pressure).
      // Expired jobs free their slots first, exactly as in the submit
      // path. A shutdown racing a mid-batch fill stops back-pressuring
      // and enqueues the remainder: the destructor waits for this fill
      // to finish before workers may exit, so its drain completes every
      // queued job and the caller's BatchCall resolves normally.
      if (sweep_expired_locked(clock_->now()) > 0) {
        queue_not_full_.notify_all();
        continue;
      }
      queue_cv_.notify_all();  // wake workers to drain what is queued
      queue_not_full_.wait(
          lock, [&] { return queue_.size() < cap || stopping_; });
    }
    job.enqueue_time = clock_->now();
    trace(job.id, obs::TraceEventKind::kEnqueue);
    queue_.insert(std::move(job));
  }
  --batch_fills_;
  if (batch_fills_ == 0) batch_fills_done_.notify_all();
  lock.unlock();
  queue_cv_.notify_all();  // the jobs are visible; wake every worker
}

void SolverService::requeue(Job&& job) {
  // Builder-resolved jobs re-enter past the capacity check: they were
  // admitted (and counted) when first enqueued, and blocking the
  // builder on queue space would stall every other cold shape behind an
  // already-admitted job.
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.insert(std::move(job));
  }
  queue_cv_.notify_one();
}

void SolverService::worker_loop() {
  for (;;) {
    Job job;
    obs::Clock::time_point picked_up{};
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [&] { return workers_exit_ || !queue_.empty(); });
      if (queue_.empty()) return;  // exiting, and fully drained
      // Expiry sweep at pickup (every pickup, including after a cold
      // handoff): anything past its deadline resolves right here —
      // without touching the problem — before a job is chosen, so the
      // extracted front is never expired. The worker already holds the
      // queue lock; the sweep only walks the per-class expired
      // prefixes, so this adds no locking point.
      picked_up = clock_->now();
      if (sweep_expired_locked(picked_up) > 0) {
        queue_not_full_.notify_all();
        if (queue_.empty()) continue;  // the whole backlog had expired
      }
      auto node = queue_.extract(queue_.begin());  // EDF order: begin()
      job = std::move(node.value());
    }
    if (options_.queue_capacity != 0) {
      // A slot freed: wake every parked submitter/batch-filler — the
      // first through the lock takes it, the rest re-wait.
      queue_not_full_.notify_all();
    }
    trace(job.id, obs::TraceEventKind::kDequeue);
    if (!job.queue_wait_recorded) {
      // Only the first pickup counts: a cold-deferred job's second
      // dequeue would otherwise double-count its wait. (Swept-expired
      // jobs never reach pickup and record no queue wait at all —
      // `queue_wait.count` tracks jobs workers actually picked up.)
      job.queue_wait_recorded = true;
      queue_wait_hist_.record(elapsed_ns(job.enqueue_time, picked_up));
    }
    if (job.pool == nullptr) {
      // submit() path: resolve the shape here, off the caller's thread.
      // Warm shapes attach their pool without blocking; cold (or still
      // mid-build) shapes go to the builder so this worker keeps
      // draining warm work.
      PlanState state = PlanState::kReady;
      std::shared_ptr<SessionPool> pool = cache_.try_acquire(
          job.problem->size(), job.solve_options, &state);
      if (pool == nullptr) {
        if (defer_to_builder(std::move(job))) continue;
        // Builder already stopped (destructor drain): fall through and
        // let run_job build inline — there is no warm traffic left to
        // protect.
      } else {
        job.pool = std::move(pool);
        trace(job.id, obs::TraceEventKind::kPlanAcquired,
              obs::PlanSource::kCacheHit);
      }
    }
    run_job(job);
  }
}

bool SolverService::defer_to_builder(Job&& job) {
  {
    const std::lock_guard<std::mutex> lock(builder_mutex_);
    if (builder_stop_) return false;
    {
      const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++jobs_cold_deferred_;
    }
    trace(job.id, obs::TraceEventKind::kColdDefer);
    // Park the job on its shape's entry (created on first defer). Jobs
    // arriving while a builder already owns the entry's build simply
    // join it and are resolved by that same build.
    ColdShape& shape =
        builder_shapes_[PlanKey::make(job.problem->size(),
                                      job.solve_options)];
    shape.n = job.problem->size();
    shape.options = job.solve_options;
    shape.jobs.push_back(std::move(job));
  }
  builder_cv_.notify_one();
  return true;
}

void SolverService::builder_loop() {
  std::unique_lock<std::mutex> lock(builder_mutex_);
  // The claimable shape with the most waiting requesters (ties break
  // toward the smaller PlanKey — deterministic); end() when every entry
  // is owned by another builder or the map is empty.
  const auto hottest = [this] {
    auto best = builder_shapes_.end();
    for (auto it = builder_shapes_.begin(); it != builder_shapes_.end();
         ++it) {
      if (it->second.in_progress) continue;
      if (best == builder_shapes_.end() ||
          it->second.jobs.size() > best->second.jobs.size()) {
        best = it;
      }
    }
    return best;
  };
  for (;;) {
    builder_cv_.wait(lock, [&] {
      return builder_stop_ || hottest() != builder_shapes_.end();
    });
    const auto claimed = hottest();
    if (claimed == builder_shapes_.end()) {
      // Stopping, and every pending shape is claimed: the owning
      // builders drain their own jobs, so this one is done.
      return;
    }
    // Claim the hottest shape and build with the mutex released — other
    // builders claim *other* shapes concurrently (the cache's per-entry
    // build lock only serialises same-key builds, which a claim already
    // prevents here).
    claimed->second.in_progress = true;
    const PlanKey key = claimed->first;
    const std::size_t n = claimed->second.n;
    const core::SublinearOptions build_options = claimed->second.options;
    lock.unlock();
    // Once per shape build, not per waiting job (see ServiceOptions).
    if (options_.cold_build_hook) options_.cold_build_hook();
    std::shared_ptr<SessionPool> pool;
    std::exception_ptr error;
    BuildSource source = BuildSource::kWarm;
    try {
      // The deferring try_acquire already counted the shape's one cache
      // miss; every job that joined the entry shares this single build.
      pool = cache_.build(n, build_options, &source);
    } catch (...) {
      // Plan validation failed: every waiting job's future carries the
      // error, exactly as when workers built inline.
      error = std::current_exception();
    }
    lock.lock();
    const auto entry = builder_shapes_.find(key);
    SUBDP_ASSERT(entry != builder_shapes_.end());
    // Take *all* waiting jobs — including any that joined mid-build —
    // and retire the entry; late arrivals re-create it and trigger a
    // fresh (now warm) claim.
    std::deque<Job> resolved = std::move(entry->second.jobs);
    builder_shapes_.erase(entry);
    lock.unlock();
    for (Job& job : resolved) {
      if (error != nullptr) {
        fail_job(job, error);
        continue;
      }
      job.pool = pool;
      trace(job.id, obs::TraceEventKind::kPlanReady,
            to_plan_source(source));
      requeue(std::move(job));
    }
    lock.lock();
  }
}

std::size_t SolverService::sweep_expired_locked(obs::Clock::time_point now) {
  std::size_t freed = 0;
  for (std::size_t cls = 0; cls < kPriorityClasses; ++cls) {
    // Within a class, deadline-carrying jobs are a deadline-sorted
    // prefix (deadline-free jobs rank at Deadline::max()), so the scan
    // stops at the first unexpired job: O(expired + 1) per class.
    auto it = queue_.lower_bound(
        JobRank{static_cast<int>(cls), Deadline::min(), 0});
    while (it != queue_.end() &&
           static_cast<std::size_t>(it->priority) == cls &&
           it->has_deadline && it->deadline <= now) {
      auto node = queue_.extract(it++);
      expire_job(node.value());
      ++freed;
    }
  }
  return freed;
}

std::chrono::nanoseconds SolverService::estimate_retry_after(
    std::size_t depth) const {
  // With `depth` queued jobs draining in about one typical (p50) queue
  // wait, one slot frees in about p50/depth. No signal yet — an empty
  // histogram, or only zero waits — falls back to the documented
  // conservative default rather than advising an instant retry.
  const obs::HistogramSnapshot waits = queue_wait_hist_.snapshot();
  const double p50 = waits.p50();
  if (waits.count == 0 || p50 <= 0.0 || depth == 0) {
    return kRetryAfterConservativeDefault;
  }
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(p50 / static_cast<double>(depth)));
}

void SolverService::run_job(Job& job) {
  try {
    std::shared_ptr<SessionPool> pool = std::move(job.pool);
    if (pool == nullptr) {
      // Shutdown-tail cold job (builder already joined): build inline.
      BuildSource source = BuildSource::kWarm;
      pool = cache_.build(job.problem->size(), job.solve_options, &source);
      trace(job.id, obs::TraceEventKind::kPlanReady,
            to_plan_source(source));
    }
    SessionPool::Lease lease = pool->acquire();
    const bool fresh = lease.fresh();
    trace(job.id, obs::TraceEventKind::kSolveBegin);
    const obs::Clock::time_point solve_begin = clock_->now();
    core::SublinearResult result = lease->solve(*job.problem);
    solve_hist_.record(elapsed_ns(solve_begin, clock_->now()));
    trace(job.id, obs::TraceEventKind::kSolveEnd);
    std::uint64_t work = 0;
    std::uint64_t depth = 0;
    if (job.solve_options.machine.record_costs) {
      work = lease->machine().costs().total_work();
      depth = lease->machine().costs().total_depth();
    }
    lease.release();  // free the session before completion bookkeeping
    const std::uint64_t iterations = result.iterations;

    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++jobs_completed_;
      ++class_completed_[static_cast<std::size_t>(job.priority)];
      total_iterations_ += iterations;
      total_work_ += work;
      total_depth_ += depth;
      if (fresh) {
        ++sessions_created_;
      } else {
        ++session_reuses_;
      }
    }
    record_e2e(job);
    trace(job.id, obs::TraceEventKind::kResolve);

    if (job.batch != nullptr) {
      job.batch->results[job.slot] = std::move(result);  // distinct slots
      // Notify under the lock: once `remaining` hits 0 the waiter may
      // destroy the BatchCall, so the CV must not be touched unlocked.
      const std::lock_guard<std::mutex> lock(job.batch->mutex);
      job.batch->iterations += iterations;
      job.batch->work += work;
      job.batch->depth += depth;
      if (--job.batch->remaining == 0) job.batch->done.notify_all();
    } else if (job.has_promise) {
      job.promise.set_value(std::move(result));
    }
  } catch (...) {
    fail_job(job, std::current_exception());
  }
}

void SolverService::expire_job(Job& job) {
  // solve_all never arms deadlines, so an expiring job always resolves
  // through its promise — the batch ledger cannot be torn by expiry.
  SUBDP_ASSERT(job.batch == nullptr);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++jobs_expired_;
    ++class_expired_[static_cast<std::size_t>(job.priority)];
  }
  trace(job.id, obs::TraceEventKind::kExpire);
  if (job.has_promise) {
    job.promise.set_exception(std::make_exception_ptr(core::AdmissionError(
        core::AdmissionError::Kind::kDeadlineExceeded,
        "SolverService: job deadline passed before a worker picked it "
        "up")));
  }
}

void SolverService::fail_job(Job& job, std::exception_ptr error) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++jobs_completed_;
    ++class_completed_[static_cast<std::size_t>(job.priority)];
  }
  // A failed job still *completed* (its future carries the error), so it
  // still records an end-to-end latency — keeping
  // `e2e.count == jobs_completed` exact.
  record_e2e(job);
  trace(job.id, obs::TraceEventKind::kFail);
  if (job.batch != nullptr) {
    const std::lock_guard<std::mutex> lock(job.batch->mutex);
    if (!job.batch->error) job.batch->error = error;
    if (--job.batch->remaining == 0) job.batch->done.notify_all();
  } else if (job.has_promise) {
    job.promise.set_exception(error);
  }
}

void SolverService::trace(std::uint64_t job_id, obs::TraceEventKind kind,
                          obs::PlanSource source) {
  if (trace_ring_ == nullptr) return;
  obs::TraceEvent event;
  event.job_id = job_id;
  event.timestamp_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          clock_->now().time_since_epoch())
          .count());
  event.kind = kind;
  event.source = source;
  (void)trace_ring_->record(event);  // overflow counted, never waited out
}

void SolverService::record_e2e(const Job& job) {
  const std::uint64_t ns = elapsed_ns(job.submit_time, clock_->now());
  e2e_hist_.record(ns);
  e2e_class_hist_[static_cast<std::size_t>(job.priority)].record(ns);
  obs::LatencyHistogram* shape = nullptr;
  {
    // The mutex guards the map only; recording happens outside it on the
    // histogram's own atomics.
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    std::unique_ptr<obs::LatencyHistogram>& slot =
        e2e_by_shape_[shape_label(job.problem->size(), job.solve_options)];
    if (slot == nullptr) slot = std::make_unique<obs::LatencyHistogram>();
    shape = slot.get();
  }
  shape->record(ns);
}

std::uint64_t SolverService::elapsed_ns(obs::Clock::time_point a,
                                        obs::Clock::time_point b) {
  if (b <= a) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

std::string SolverService::export_trace() const {
  return obs::render_chrome_trace(trace_ring_ != nullptr
                                      ? trace_ring_->collect()
                                      : std::vector<obs::TraceEvent>{});
}

ServiceStats SolverService::stats() const {
  ServiceStats out;
  out.workers = workers_;
  out.builders = builders_;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    out.jobs_submitted = jobs_submitted_;
    out.jobs_completed = jobs_completed_;
    out.jobs_rejected = jobs_rejected_;
    out.jobs_expired = jobs_expired_;
    out.jobs_cold_deferred = jobs_cold_deferred_;
    PriorityClassStats* const slices[kPriorityClasses] = {&out.interactive,
                                                          &out.batch};
    for (std::size_t cls = 0; cls < kPriorityClasses; ++cls) {
      slices[cls]->submitted = class_submitted_[cls];
      slices[cls]->completed = class_completed_[cls];
      slices[cls]->rejected = class_rejected_[cls];
      slices[cls]->expired = class_expired_[cls];
    }
    out.total_iterations = total_iterations_;
    out.total_work = total_work_;
    out.total_depth = total_depth_;
    out.sessions_created = sessions_created_;
    out.session_reuses = session_reuses_;
    out.e2e_by_shape.reserve(e2e_by_shape_.size());
    for (const auto& [label, hist] : e2e_by_shape_) {
      out.e2e_by_shape.emplace_back(label, hist->snapshot());
    }
  }
  out.queue_wait = queue_wait_hist_.snapshot();
  out.plan_build = plan_build_hist_.snapshot();
  out.snapshot_load = snapshot_load_hist_.snapshot();
  out.solve = solve_hist_.snapshot();
  out.e2e = e2e_hist_.snapshot();
  out.interactive.e2e =
      e2e_class_hist_[static_cast<std::size_t>(PriorityClass::kInteractive)]
          .snapshot();
  out.batch.e2e =
      e2e_class_hist_[static_cast<std::size_t>(PriorityClass::kBatch)]
          .snapshot();
  out.trace_dropped = trace_ring_ != nullptr ? trace_ring_->dropped() : 0;
  if (store_ != nullptr) {
    const snapshot::SnapshotStoreStats s = store_->stats();
    out.snapshot_hits = s.hits;
    out.snapshot_misses = s.misses;
    out.snapshot_write_failures = s.write_failures;
    out.shapes_prewarmed = shapes_prewarmed_;
  }
  out.plan_cache = cache_.stats();
  return out;
}

obs::MetricsRegistry SolverService::metrics() const {
  const ServiceStats s = stats();
  obs::MetricsRegistry reg;
  const auto gauge = [&reg](const char* name, std::uint64_t value) {
    reg.set_gauge(name, static_cast<double>(value));
  };
  gauge("subdp_workers", s.workers);
  gauge("subdp_builders", s.builders);
  gauge("subdp_jobs_submitted", s.jobs_submitted);
  gauge("subdp_jobs_completed", s.jobs_completed);
  gauge("subdp_jobs_rejected", s.jobs_rejected);
  gauge("subdp_jobs_expired", s.jobs_expired);
  gauge("subdp_jobs_cold_deferred", s.jobs_cold_deferred);
  gauge("subdp_total_iterations", s.total_iterations);
  gauge("subdp_total_work", s.total_work);
  gauge("subdp_total_depth", s.total_depth);
  gauge("subdp_sessions_created", s.sessions_created);
  gauge("subdp_session_reuses", s.session_reuses);
  gauge("subdp_snapshot_hits", s.snapshot_hits);
  gauge("subdp_snapshot_misses", s.snapshot_misses);
  gauge("subdp_snapshot_write_failures", s.snapshot_write_failures);
  gauge("subdp_shapes_prewarmed", s.shapes_prewarmed);
  gauge("subdp_plan_cache_capacity", s.plan_cache.capacity);
  gauge("subdp_plan_cache_size", s.plan_cache.size);
  gauge("subdp_plan_cache_hits", s.plan_cache.hits);
  gauge("subdp_plan_cache_misses", s.plan_cache.misses);
  gauge("subdp_plan_cache_evictions", s.plan_cache.evictions);
  gauge("subdp_trace_dropped", s.trace_dropped);
  // Per-priority-class slices: gauges suffixed by class (the registry's
  // gauges carry no labels), histograms labelled like the per-shape ones.
  const auto class_slice = [&](const char* cls,
                               const PriorityClassStats& c) {
    const std::string suffix = std::string("_") + cls;
    gauge(("subdp_jobs_submitted" + suffix).c_str(), c.submitted);
    gauge(("subdp_jobs_completed" + suffix).c_str(), c.completed);
    gauge(("subdp_jobs_rejected" + suffix).c_str(), c.rejected);
    gauge(("subdp_jobs_expired" + suffix).c_str(), c.expired);
    reg.set_histogram("subdp_e2e_class_ns",
                      "class=\"" + std::string(cls) + "\"", c.e2e);
  };
  class_slice(to_string(PriorityClass::kInteractive), s.interactive);
  class_slice(to_string(PriorityClass::kBatch), s.batch);
  reg.set_histogram("subdp_queue_wait_ns", "", s.queue_wait);
  reg.set_histogram("subdp_plan_build_ns", "", s.plan_build);
  reg.set_histogram("subdp_snapshot_load_ns", "", s.snapshot_load);
  reg.set_histogram("subdp_solve_ns", "", s.solve);
  reg.set_histogram("subdp_e2e_ns", "", s.e2e);
  for (const auto& [label, snapshot] : s.e2e_by_shape) {
    reg.set_histogram("subdp_e2e_shape_ns", "shape=\"" + label + "\"",
                      snapshot);
  }
  return reg;
}

std::shared_ptr<const core::SolvePlan> SolverService::plan_for(
    std::size_t n) const {
  return plan_for(n, options_.solver);
}

std::shared_ptr<const core::SolvePlan> SolverService::plan_for(
    std::size_t n, const core::SublinearOptions& options) const {
  return cache_.peek(n, normalized(options));
}

}  // namespace subdp::serve
