#include "serve/solver_service.hpp"

#include <map>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace subdp::serve {

namespace {

std::size_t resolve_workers(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

}  // namespace

core::SublinearOptions SolverService::normalized(
    core::SublinearOptions options) const {
  // Multi-worker sessions run the serial engine path (the shared engine
  // pool is single-issuer, and instance-level parallelism already covers
  // the cores); a one-worker service keeps the caller's backend, so the
  // BatchSolver facade behaves exactly like the pre-service BatchSolver.
  if (workers_ > 1) options.machine.backend = pram::Backend::kSerial;
  return options;
}

/// Completion rendezvous for one `solve_all` call.
struct SolverService::BatchCall {
  core::SublinearResult* results = nullptr;  ///< Slot per input index.
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = 0;
  std::uint64_t iterations = 0;
  std::uint64_t work = 0;
  std::uint64_t depth = 0;
  std::exception_ptr error;
};

SolverService::SolverService(ServiceOptions options)
    : options_(std::move(options)),
      workers_(resolve_workers(options_.workers)),
      cache_(options_.plan_capacity,
             options_.sessions_per_plan != 0 ? options_.sessions_per_plan
                                             : workers_) {
  options_.solver = normalized(options_.solver);
  worker_threads_.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    worker_threads_.emplace_back([this] { worker_loop(); });
  }
}

SolverService::~SolverService() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : worker_threads_) {
    worker.join();  // workers drain every queued job first
  }
}

std::future<core::SublinearResult> SolverService::submit(
    const dp::Problem& problem) {
  return submit(problem, options_.solver);
}

std::future<core::SublinearResult> SolverService::submit(
    const dp::Problem& problem, const core::SublinearOptions& options) {
  Job job;
  job.problem = &problem;
  job.solve_options = normalized(options);
  job.has_promise = true;
  std::future<core::SublinearResult> future = job.promise.get_future();
  enqueue(std::move(job));
  return future;
}

core::BatchResult SolverService::solve_all(
    std::span<const dp::Problem* const> problems) {
  return solve_all(problems, options_.solver);
}

core::BatchResult SolverService::solve_all(
    std::span<const dp::Problem* const> problems,
    const core::SublinearOptions& options) {
  const core::SublinearOptions opts = normalized(options);
  core::BatchResult out;
  out.results.resize(problems.size());
  out.ledger.instances = problems.size();

  // Group instance indices by shape: the ledger accounts one cache
  // hit/miss per distinct `n`, and same-shape jobs share the resolved
  // pool so workers skip the cache entirely.
  std::map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t idx = 0; idx < problems.size(); ++idx) {
    SUBDP_REQUIRE(problems[idx] != nullptr,
                  "solve_all: null problem pointer");
    groups[problems[idx]->size()].push_back(idx);
  }
  out.ledger.shape_groups = groups.size();
  if (problems.empty()) return out;

  BatchCall call;
  call.results = out.results.data();
  call.remaining = problems.size();

  std::deque<Job> jobs;
  for (const auto& [n, indices] : groups) {
    bool built = false;
    // Resolving on the caller thread (not per job on a worker) keeps the
    // per-call ledger exact: one hit or miss per shape group.
    std::shared_ptr<SessionPool> pool = cache_.acquire(n, opts, &built);
    if (built) {
      ++out.ledger.plans_built;
    } else {
      ++out.ledger.plans_reused;
    }
    for (const std::size_t idx : indices) {
      Job job;
      job.problem = problems[idx];
      job.solve_options = opts;
      job.pool = pool;
      job.batch = &call;
      job.slot = idx;
      jobs.push_back(std::move(job));
    }
  }
  enqueue(std::move(jobs));

  {
    std::unique_lock<std::mutex> lock(call.mutex);
    call.done.wait(lock, [&] { return call.remaining == 0; });
  }
  if (call.error) std::rethrow_exception(call.error);
  out.ledger.total_iterations = static_cast<std::size_t>(call.iterations);
  out.ledger.total_work = call.work;
  out.ledger.total_depth = call.depth;
  return out;
}

void SolverService::enqueue(Job&& job) {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    SUBDP_REQUIRE(!stopping_,
                  "SolverService::submit/solve_all after shutdown began");
    {
      // Counted *before* the job becomes visible, so `stats()` can never
      // observe jobs_completed > jobs_submitted.
      const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++jobs_submitted_;
    }
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
}

void SolverService::enqueue(std::deque<Job>&& jobs) {
  const std::size_t count = jobs.size();
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    SUBDP_REQUIRE(!stopping_,
                  "SolverService::submit/solve_all after shutdown began");
    {
      // Counted *before* the jobs become visible; see the overload above.
      const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      jobs_submitted_ += count;
    }
    for (Job& job : jobs) queue_.push_back(std::move(job));
  }
  queue_cv_.notify_all();
}

void SolverService::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    run_job(job);
  }
}

void SolverService::run_job(Job& job) {
  try {
    std::shared_ptr<SessionPool> pool = job.pool;
    if (pool == nullptr) {
      // submit() path: resolve the shape here, off the caller's thread.
      pool = cache_.acquire(job.problem->size(), job.solve_options);
    }
    SessionPool::Lease lease = pool->acquire();
    const bool fresh = lease.fresh();
    core::SublinearResult result = lease->solve(*job.problem);
    std::uint64_t work = 0;
    std::uint64_t depth = 0;
    if (job.solve_options.machine.record_costs) {
      work = lease->machine().costs().total_work();
      depth = lease->machine().costs().total_depth();
    }
    lease.release();  // free the session before completion bookkeeping
    const std::uint64_t iterations = result.iterations;

    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++jobs_completed_;
      total_iterations_ += iterations;
      total_work_ += work;
      total_depth_ += depth;
      if (fresh) {
        ++sessions_created_;
      } else {
        ++session_reuses_;
      }
    }

    if (job.batch != nullptr) {
      job.batch->results[job.slot] = std::move(result);  // distinct slots
      // Notify under the lock: once `remaining` hits 0 the waiter may
      // destroy the BatchCall, so the CV must not be touched unlocked.
      const std::lock_guard<std::mutex> lock(job.batch->mutex);
      job.batch->iterations += iterations;
      job.batch->work += work;
      job.batch->depth += depth;
      if (--job.batch->remaining == 0) job.batch->done.notify_all();
    } else if (job.has_promise) {
      job.promise.set_value(std::move(result));
    }
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++jobs_completed_;
    }
    if (job.batch != nullptr) {
      const std::lock_guard<std::mutex> lock(job.batch->mutex);
      if (!job.batch->error) job.batch->error = std::current_exception();
      if (--job.batch->remaining == 0) job.batch->done.notify_all();
    } else if (job.has_promise) {
      job.promise.set_exception(std::current_exception());
    }
  }
}

ServiceStats SolverService::stats() const {
  ServiceStats out;
  out.workers = workers_;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    out.jobs_submitted = jobs_submitted_;
    out.jobs_completed = jobs_completed_;
    out.total_iterations = total_iterations_;
    out.total_work = total_work_;
    out.total_depth = total_depth_;
    out.sessions_created = sessions_created_;
    out.session_reuses = session_reuses_;
  }
  out.plan_cache = cache_.stats();
  return out;
}

std::shared_ptr<const core::SolvePlan> SolverService::plan_for(
    std::size_t n) const {
  return plan_for(n, options_.solver);
}

std::shared_ptr<const core::SolvePlan> SolverService::plan_for(
    std::size_t n, const core::SublinearOptions& options) const {
  return cache_.peek(n, normalized(options));
}

}  // namespace subdp::serve
