#pragma once

/// \file plan_cache.hpp
/// A thread-safe, bounded-LRU cache of `SolvePlan`s and their session
/// pools, keyed by `(n, SublinearOptions)`.
///
/// Building a plan is the expensive step of a solve — O(n^2 B^2) entry
/// lists, offset tables and slot maps — and plans are immutable, so a
/// server wants to build each shape once and share it. `BatchSolver`
/// already did that, but kept every shape it had ever seen (an unbounded
/// map, flagged in ROADMAP.md). `PlanCache` bounds it: at most `capacity`
/// shapes stay resident, evicted least-recently-used, with hit / miss /
/// eviction counters surfaced through `ServiceStats`.
///
/// Each cached shape carries its `SessionPool` alongside the plan, so
/// eviction retires the sessions (the allocated tables) together with the
/// geometry. Entries are handed out as `shared_ptr`s: a shape evicted
/// while solves are in flight stays alive — detached from the cache —
/// until the last lease returns; a re-request of that key is a fresh miss
/// that rebuilds the plan.
///
/// The key covers every option field that shapes a plan (layout variant,
/// square mode, termination, band, caps, hot-path toggles, machine
/// configuration), so two clients asking for the same `n` under different
/// options get distinct plans — and distinct pools — as correctness
/// requires.
///
/// Thread-safety: all methods may be called from any thread. A miss
/// inserts a placeholder under the cache-wide lock, then builds the plan
/// under a *per-entry* lock with the cache lock released — so a cold
/// build only blocks concurrent requests for the *same* key (which then
/// share the one build), never hits, peeks or stats on other keys.
///
/// Async build handoff: `acquire` is the blocking all-in-one path
/// (lookup + build). For callers that must never block on a build — a
/// `SolverService` worker keeping warm traffic flowing — `try_acquire`
/// is the non-blocking first half: a built entry is a plain hit; a cold
/// or still-building key records the miss (once, on placeholder
/// insertion), reports `PlanState::kBuilding` and returns null without
/// touching the per-entry build lock. The caller then owes the blocking
/// second half, `build`, from whatever thread it dedicates to builds
/// (the service's builder pool — distinct keys build concurrently, one
/// builder per key): it performs — or waits on and shares — the one
/// build for that key, recording no further hit/miss, so N concurrent
/// cold requests for one key still count exactly one miss and trigger
/// exactly one build.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "core/solve_plan.hpp"
#include "core/solver_types.hpp"
#include "obs/clock.hpp"
#include "serve/session_pool.hpp"

namespace subdp::snapshot {
class SnapshotStore;
}  // namespace subdp::snapshot

namespace subdp::serve {

/// Total order over everything that distinguishes one plan (and the
/// machine configuration of its sessions) from another.
struct PlanKey {
  std::size_t n = 0;
  core::PwVariant variant = core::PwVariant::kBanded;
  core::SquareMode square_mode = core::SquareMode::kHlvOneLevel;
  core::TerminationMode termination = core::TerminationMode::kFixedPoint;
  std::size_t band_width = 0;
  std::size_t max_iterations = 0;
  bool windowed_pebble = false;
  bool delta_buffering = true;
  bool frontier_sweeps = true;
  bool pebble_cursor = true;
  bool incremental_marks = true;
  /// Per-step profiling changes what a session records (engine profile
  /// state), so profiled and unprofiled requests must not share pools —
  /// the toggle is part of the key even though it leaves plan geometry
  /// untouched.
  bool profile = false;
  pram::Backend backend = pram::default_backend();
  bool check_crew = false;
  bool record_costs = true;

  [[nodiscard]] static PlanKey make(std::size_t n,
                                    const core::SublinearOptions& options);

  friend bool operator<(const PlanKey& a, const PlanKey& b) {
    auto tie = [](const PlanKey& k) {
      return std::tuple(k.n, k.variant, k.square_mode, k.termination,
                        k.band_width, k.max_iterations, k.windowed_pebble,
                        k.delta_buffering, k.frontier_sweeps,
                        k.pebble_cursor, k.incremental_marks, k.profile,
                        k.backend, k.check_crew, k.record_costs);
    };
    return tie(a) < tie(b);
  }
};

/// Build state of one cached key, as observed by `try_acquire`.
enum class PlanState {
  kReady,     ///< Plan built; the returned pool serves it.
  kBuilding,  ///< Cold or mid-build; resolve it later via `build`.
};

/// Where an acquired pool came from, for trace tagging and the build
/// observer: an already-resident entry, a snapshot loaded from the disk
/// store, or a from-scratch geometry build.
enum class BuildSource {
  kWarm,      ///< Entry was already built (cache hit or shared build).
  kSnapshot,  ///< Plan decoded from the snapshot store.
  kBuilt,     ///< Plan built from scratch.
};

/// One completed plan materialisation (snapshot load or fresh build),
/// reported to the cache's build observer. `snapshot_load_ns` is nonzero
/// only for `kSnapshot`.
struct BuildReport {
  BuildSource source = BuildSource::kBuilt;
  std::uint64_t total_ns = 0;          ///< Load-or-build wall time.
  std::uint64_t snapshot_load_ns = 0;  ///< Store consult time.
};

/// One consistent snapshot of the cache's counters.
struct PlanCacheStats {
  std::size_t capacity = 0;
  std::size_t size = 0;         ///< Shapes currently resident.
  std::uint64_t hits = 0;       ///< Requests served by a resident shape.
  std::uint64_t misses = 0;     ///< Requests that built a plan.
  std::uint64_t evictions = 0;  ///< Shapes retired at the bound.
};

/// Bounded-LRU shape cache; see the file comment.
class PlanCache {
 public:
  /// Keeps at most `capacity >= 1` shapes resident. Each miss builds the
  /// plan and a `SessionPool` of at most `sessions_per_plan` sessions.
  /// With a `store`, a miss consults the snapshot directory before
  /// building geometry (a verified snapshot is adopted; anything corrupt
  /// or mismatched is ignored and rebuilt), and freshly built plans are
  /// written back asynchronously. LRU eviction never touches the store's
  /// files — the disk is the cheap tier, so a re-requested evicted shape
  /// reloads (a snapshot hit) instead of rebuilding.
  PlanCache(std::size_t capacity, std::size_t sessions_per_plan,
            std::shared_ptr<snapshot::SnapshotStore> store = nullptr);

  /// The pool (and plan) serving `(n, options)`: most-recently-used bump
  /// on a hit, plan build + LRU eviction on a miss. `built`, when given,
  /// reports which of the two happened; `source`, when given, reports
  /// where the pool came from (warm / snapshot / fresh build).
  [[nodiscard]] std::shared_ptr<SessionPool> acquire(
      std::size_t n, const core::SublinearOptions& options,
      bool* built = nullptr, BuildSource* source = nullptr);

  /// Non-blocking lookup (never builds, never waits on a build lock).
  /// A built resident key is a hit: MRU bump, `*state = kReady`, pool
  /// returned. Otherwise `*state = kBuilding` and null is returned — a
  /// fresh key records one miss and inserts the building placeholder; a
  /// key already mid-build records nothing (its miss was counted when
  /// the placeholder went in). See the file comment's handoff protocol.
  [[nodiscard]] std::shared_ptr<SessionPool> try_acquire(
      std::size_t n, const core::SublinearOptions& options,
      PlanState* state = nullptr);

  /// Blocking second half of a `try_acquire` that reported `kBuilding`:
  /// builds the plan (or waits on the in-flight build and shares its
  /// pool). Records no hit/miss — the `try_acquire` that deferred here
  /// already did. Safe to call for a key that has meanwhile finished
  /// (returns the warm pool) or been evicted (rebuilds and re-inserts).
  [[nodiscard]] std::shared_ptr<SessionPool> build(
      std::size_t n, const core::SublinearOptions& options,
      BuildSource* source = nullptr);

  /// Observability seam: after installation, every real plan
  /// materialisation (a snapshot load or a from-scratch build — not a
  /// warm early-exit) invokes `observer` with its timing, measured on
  /// `clock`. Install once, before the cache sees concurrent traffic
  /// (the `SolverService` constructor does this before starting any
  /// thread); the callback runs on the building thread with no cache
  /// lock held and must be thread-safe.
  void set_build_observer(std::shared_ptr<const obs::Clock> clock,
                          std::function<void(const BuildReport&)> observer);

  /// The resident plan for `(n, options)`, or null — no stats recorded,
  /// no LRU reordering (diagnostic lookups, `BatchSolver::plan_for`).
  [[nodiscard]] std::shared_ptr<const core::SolvePlan> peek(
      std::size_t n, const core::SublinearOptions& options) const;

  [[nodiscard]] PlanCacheStats stats() const;

  /// Sums `SessionPoolStats` counters across the resident pools.
  [[nodiscard]] SessionPoolStats pooled_session_stats() const;

 private:
  /// One cached shape. `pool` is guarded by the cache-wide `mutex_` (it
  /// is null while the plan is still building); `build_mutex` serialises
  /// the build itself so only same-key requesters wait on it. Lock order:
  /// `build_mutex` before `mutex_`, and `mutex_` is never held across a
  /// build.
  struct Slot {
    std::mutex build_mutex;
    std::shared_ptr<SessionPool> pool;
  };

  /// LRU list, most recent at the front; the map indexes into it.
  struct Entry {
    PlanKey key;
    std::shared_ptr<Slot> slot;
  };

  /// Inserts as most-recently-used and evicts down to capacity.
  /// Requires `mutex_` held.
  void insert_mru(const PlanKey& key, std::shared_ptr<Slot> slot);

  /// The expensive half shared by `acquire` and `build`: takes `slot`'s
  /// build lock, constructs the pool if this caller wins the build (or
  /// returns the pool a concurrent winner left), drops the placeholder
  /// on a failed build and re-inserts the entry if it was dropped or
  /// evicted mid-build. Requires `mutex_` *not* held.
  [[nodiscard]] std::shared_ptr<SessionPool> finish_build(
      const PlanKey& key, const std::shared_ptr<Slot>& slot, std::size_t n,
      const core::SublinearOptions& options, BuildSource* source);

  std::size_t capacity_;
  std::size_t sessions_per_plan_;
  /// Optional persistence tier consulted by `finish_build`; never locked
  /// under `mutex_` (loads and saves happen outside the cache lock).
  std::shared_ptr<snapshot::SnapshotStore> store_;
  /// Build observer seam (`set_build_observer`); read without a lock, so
  /// it must be installed before concurrent use.
  std::shared_ptr<const obs::Clock> observer_clock_;
  std::function<void(const BuildReport&)> build_observer_;

  mutable std::mutex mutex_;
  std::list<Entry> lru_;
  std::map<PlanKey, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace subdp::serve
