#include "serve/session_pool.hpp"

#include "support/assert.hpp"

namespace subdp::serve {

SessionPool::SessionPool(std::shared_ptr<const core::SolvePlan> plan,
                         std::size_t max_sessions)
    : plan_(std::move(plan)), capacity_(max_sessions) {
  SUBDP_REQUIRE(plan_ != nullptr, "SessionPool requires a plan");
  SUBDP_REQUIRE(capacity_ >= 1, "SessionPool requires a cap of at least 1");
}

SessionPool::Lease& SessionPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = std::move(other.pool_);
    session_ = std::move(other.session_);
    fresh_ = other.fresh_;
  }
  return *this;
}

void SessionPool::Lease::release() {
  if (session_ != nullptr && pool_ != nullptr) {
    pool_->give_back(std::move(session_));
  }
  session_.reset();
  pool_.reset();
}

SessionPool::Lease SessionPool::acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  session_returned_.wait(
      lock, [&] { return !idle_.empty() || created_ < capacity_; });
  std::unique_ptr<core::SolveSession> session;
  bool fresh = false;
  if (!idle_.empty()) {
    session = std::move(idle_.back());
    idle_.pop_back();
    ++reuses_;
  } else {
    // Construct outside the lock? No: growth is rare (at most `capacity_`
    // times over the pool's lifetime) and constructing under the lock
    // keeps `created_ <= capacity_` trivially correct.
    session = std::make_unique<core::SolveSession>(plan_);
    ++created_;
    fresh = true;
  }
  ++in_use_;
  ++checkouts_;
  if (in_use_ > peak_in_use_) peak_in_use_ = in_use_;
  return Lease(shared_from_this(), std::move(session), fresh);
}

void SessionPool::give_back(std::unique_ptr<core::SolveSession> session) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(session));
    --in_use_;
  }
  session_returned_.notify_one();
}

SessionPoolStats SessionPool::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SessionPoolStats out;
  out.capacity = capacity_;
  out.sessions_created = created_;
  out.in_use = in_use_;
  out.peak_in_use = peak_in_use_;
  out.checkouts = checkouts_;
  out.reuses = reuses_;
  return out;
}

}  // namespace subdp::serve
