#pragma once

/// \file session_pool.hpp
/// A per-plan pool of reusable `SolveSession`s for concurrent serving.
///
/// One `SolvePlan` is immutable and thread-agnostic, so any number of
/// sessions can share it — but each `SolveSession` is strictly
/// single-threaded (it owns the mutable pw/w tables, write logs and PRAM
/// machine of one in-flight solve). The pool mediates between the two:
/// `acquire()` checks out an idle session (or lazily constructs a new one
/// while the pool is below its cap) and hands it back as an RAII
/// `SessionLease`; destroying the lease returns the session to the idle
/// list, tables still allocated, ready to be `reset` in place by the next
/// checkout's solve. When every session is checked out and the cap is
/// reached, `acquire()` blocks until a lease returns — the cap is the
/// pool's back-pressure knob (a `SolverService` sizes it to its worker
/// count, so pool growth is bounded by the real concurrency).
///
/// Thread-safety: `acquire()`, lease destruction and `stats()` may be
/// called from any thread. The *leased session* must be driven by one
/// thread at a time (which holding the lease enforces by construction).
/// Pools are managed through `shared_ptr` — a lease pins its pool, so a
/// pool evicted from the `PlanCache` while leases are in flight stays
/// alive until the last lease returns.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/solve_plan.hpp"
#include "core/solve_session.hpp"

namespace subdp::serve {

/// Counters describing a pool's lifetime usage (one consistent snapshot).
struct SessionPoolStats {
  std::size_t capacity = 0;          ///< Maximal sessions ever allocated.
  std::size_t sessions_created = 0;  ///< Sessions constructed so far.
  std::size_t in_use = 0;            ///< Currently leased.
  std::size_t peak_in_use = 0;       ///< High-water mark of `in_use`.
  std::uint64_t checkouts = 0;       ///< Total successful `acquire()`s.
  /// Checkouts served by an already-constructed session (warm tables).
  std::uint64_t reuses = 0;
};

/// Checkout pool of reusable sessions over one shared plan; see the file
/// comment.
class SessionPool : public std::enable_shared_from_this<SessionPool> {
 public:
  /// The pool serves `plan` with at most `max_sessions` sessions
  /// (>= 1; sessions are constructed lazily, one per concurrent lease).
  SessionPool(std::shared_ptr<const core::SolvePlan> plan,
              std::size_t max_sessions);

  /// RAII checkout: holds exclusive use of one session (and pins the
  /// pool). Movable, not copyable; destruction returns the session.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept = default;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] core::SolveSession& session() noexcept {
      return *session_;
    }
    core::SolveSession* operator->() noexcept { return session_.get(); }

    /// True when the session was constructed for this checkout (a cold
    /// start); false when warm tables were reused.
    [[nodiscard]] bool fresh() const noexcept { return fresh_; }

    [[nodiscard]] explicit operator bool() const noexcept {
      return session_ != nullptr;
    }

    /// Returns the session early (idempotent; the destructor calls this).
    void release();

   private:
    friend class SessionPool;
    Lease(std::shared_ptr<SessionPool> pool,
          std::unique_ptr<core::SolveSession> session, bool fresh)
        : pool_(std::move(pool)),
          session_(std::move(session)),
          fresh_(fresh) {}

    std::shared_ptr<SessionPool> pool_;
    std::unique_ptr<core::SolveSession> session_;
    bool fresh_ = false;
  };

  /// Checks out a session: an idle one when available, a newly
  /// constructed one while below the cap, otherwise blocks until a lease
  /// returns. Must not be called while the caller already holds a lease
  /// on this pool from the same thread (self-deadlock at the cap).
  [[nodiscard]] Lease acquire();

  [[nodiscard]] const core::SolvePlan& plan() const noexcept {
    return *plan_;
  }
  [[nodiscard]] std::shared_ptr<const core::SolvePlan> plan_ptr()
      const noexcept {
    return plan_;
  }

  [[nodiscard]] SessionPoolStats stats() const;

 private:
  void give_back(std::unique_ptr<core::SolveSession> session);

  std::shared_ptr<const core::SolvePlan> plan_;
  std::size_t capacity_;

  mutable std::mutex mutex_;
  std::condition_variable session_returned_;
  std::vector<std::unique_ptr<core::SolveSession>> idle_;
  std::size_t created_ = 0;
  std::size_t in_use_ = 0;
  std::size_t peak_in_use_ = 0;
  std::uint64_t checkouts_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace subdp::serve
