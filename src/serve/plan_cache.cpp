#include "serve/plan_cache.hpp"

#include <chrono>
#include <utility>

#include "snapshot/snapshot_store.hpp"
#include "support/assert.hpp"

namespace subdp::serve {

PlanKey PlanKey::make(std::size_t n,
                      const core::SublinearOptions& options) {
  PlanKey key;
  key.n = n;
  key.variant = options.variant;
  key.square_mode = options.square_mode;
  key.termination = options.termination;
  key.band_width = options.band_width;
  key.max_iterations = options.max_iterations;
  key.windowed_pebble = options.windowed_pebble;
  key.delta_buffering = options.delta_buffering;
  key.frontier_sweeps = options.frontier_sweeps;
  key.pebble_cursor = options.pebble_cursor;
  key.incremental_marks = options.incremental_marks;
  key.profile = options.profile;
  key.backend = options.machine.backend;
  key.check_crew = options.machine.check_crew;
  key.record_costs = options.machine.record_costs;
  return key;
}

PlanCache::PlanCache(std::size_t capacity, std::size_t sessions_per_plan,
                     std::shared_ptr<snapshot::SnapshotStore> store)
    : capacity_(capacity),
      sessions_per_plan_(sessions_per_plan),
      store_(std::move(store)) {
  SUBDP_REQUIRE(capacity_ >= 1, "PlanCache requires a capacity of at least 1");
  SUBDP_REQUIRE(sessions_per_plan_ >= 1,
                "PlanCache requires at least one session per plan");
}

std::shared_ptr<SessionPool> PlanCache::acquire(
    std::size_t n, const core::SublinearOptions& options, bool* built,
    BuildSource* source) {
  const PlanKey key = PlanKey::make(n, options);
  std::shared_ptr<Slot> slot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      if (built != nullptr) *built = false;
      lru_.splice(lru_.begin(), lru_, it->second);  // MRU bump
      slot = it->second->slot;
    } else {
      ++misses_;
      if (built != nullptr) *built = true;
      slot = std::make_shared<Slot>();
      insert_mru(key, slot);
    }
  }
  return finish_build(key, slot, n, options, source);
}

std::shared_ptr<SessionPool> PlanCache::try_acquire(
    std::size_t n, const core::SublinearOptions& options, PlanState* state) {
  const PlanKey key = PlanKey::make(n, options);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    if (it->second->slot->pool != nullptr) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // MRU bump
      if (state != nullptr) *state = PlanState::kReady;
      return it->second->slot->pool;
    }
    // Mid-build: the placeholder's insertion already counted the miss.
    if (state != nullptr) *state = PlanState::kBuilding;
    return nullptr;
  }
  ++misses_;
  insert_mru(key, std::make_shared<Slot>());
  if (state != nullptr) *state = PlanState::kBuilding;
  return nullptr;
}

std::shared_ptr<SessionPool> PlanCache::build(
    std::size_t n, const core::SublinearOptions& options,
    BuildSource* source) {
  const PlanKey key = PlanKey::make(n, options);
  std::shared_ptr<Slot> slot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      slot = it->second->slot;
    } else {
      // The placeholder this call owes its existence to was dropped (a
      // failed same-key build) or evicted at capacity. Re-insert without
      // counting: the deferring `try_acquire` already recorded the miss.
      slot = std::make_shared<Slot>();
      insert_mru(key, slot);
    }
  }
  return finish_build(key, slot, n, options, source);
}

void PlanCache::set_build_observer(
    std::shared_ptr<const obs::Clock> clock,
    std::function<void(const BuildReport&)> observer) {
  observer_clock_ = std::move(clock);
  build_observer_ = std::move(observer);
}

std::shared_ptr<SessionPool> PlanCache::finish_build(
    const PlanKey& key, const std::shared_ptr<Slot>& slot, std::size_t n,
    const core::SublinearOptions& options, BuildSource* source) {
  // The expensive O(n^2 B^2) build happens here, with the cache-wide
  // lock released: only same-key requesters block (on build_mutex) and
  // then share the finished pool.
  const std::lock_guard<std::mutex> build_lock(slot->build_mutex);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (slot->pool != nullptr) {
      if (source != nullptr) *source = BuildSource::kWarm;
      return slot->pool;
    }
  }
  const bool timing =
      build_observer_ != nullptr && observer_clock_ != nullptr;
  const auto elapsed_ns = [](const obs::Clock::time_point a,
                             const obs::Clock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };
  BuildReport report;
  std::shared_ptr<SessionPool> pool;
  try {
    // Persistence tier first: a verified snapshot replaces the O(n^2 B^2)
    // geometry build outright; a fresh build is queued for write-back so
    // the *next* process (or a post-eviction re-request) loads instead.
    const obs::Clock::time_point t0 =
        timing ? observer_clock_->now() : obs::Clock::time_point();
    std::shared_ptr<const core::SolvePlan> plan;
    if (store_ != nullptr) plan = store_->load(n, options);
    const bool loaded = plan != nullptr;
    if (timing && loaded) {
      report.snapshot_load_ns = elapsed_ns(t0, observer_clock_->now());
    }
    if (!loaded) plan = core::SolvePlan::create(n, options);
    pool = std::make_shared<SessionPool>(std::move(plan), sessions_per_plan_);
    if (store_ != nullptr && !loaded) store_->save_async(pool->plan_ptr());
    report.source = loaded ? BuildSource::kSnapshot : BuildSource::kBuilt;
    if (timing) report.total_ns = elapsed_ns(t0, observer_clock_->now());
    if (source != nullptr) *source = report.source;
  } catch (...) {
    // Plan validation failed: drop the placeholder so a dead entry does
    // not occupy capacity (a retry is a fresh miss).
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end() && it->second->slot == slot) {
      lru_.erase(it->second);
      index_.erase(it);
    }
    throw;
  }
  if (build_observer_ != nullptr) build_observer_(report);
  const std::lock_guard<std::mutex> lock(mutex_);
  slot->pool = pool;
  // The placeholder may be gone by now — dropped by a failed same-key
  // build we waited behind, or evicted at capacity mid-build. Re-insert
  // (as most-recently-used: it was just requested) so the successful
  // build is actually cached, not orphaned.
  if (index_.find(key) == index_.end()) insert_mru(key, slot);
  return pool;
}

void PlanCache::insert_mru(const PlanKey& key, std::shared_ptr<Slot> slot) {
  lru_.push_front(Entry{key, std::move(slot)});
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();  // in-flight leases keep the evicted pool alive
    ++evictions_;
  }
}

std::shared_ptr<const core::SolvePlan> PlanCache::peek(
    std::size_t n, const core::SublinearOptions& options) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(PlanKey::make(n, options));
  if (it == index_.end()) return nullptr;
  const auto& pool = it->second->slot->pool;  // null while still building
  return pool != nullptr ? pool->plan_ptr() : nullptr;
}

PlanCacheStats PlanCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  PlanCacheStats out;
  out.capacity = capacity_;
  out.size = lru_.size();
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  return out;
}

SessionPoolStats PlanCache::pooled_session_stats() const {
  std::vector<std::shared_ptr<SessionPool>> pools;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    pools.reserve(lru_.size());
    for (const Entry& entry : lru_) {
      if (entry.slot->pool != nullptr) pools.push_back(entry.slot->pool);
    }
  }
  // Pool locks are taken outside the cache lock (stable order, no cycles).
  SessionPoolStats sum;
  for (const auto& pool : pools) {
    const SessionPoolStats s = pool->stats();
    sum.capacity += s.capacity;
    sum.sessions_created += s.sessions_created;
    sum.in_use += s.in_use;
    sum.peak_in_use += s.peak_in_use;
    sum.checkouts += s.checkouts;
    sum.reuses += s.reuses;
  }
  return sum;
}

}  // namespace subdp::serve
