#pragma once

/// \file solver_service.hpp
/// The concurrent serving front door: many independent DP instances,
/// overlapped across worker threads, behind one long-lived object.
///
/// Everything below `SolverService` exists to make this safe and cheap:
/// immutable `SolvePlan`s shared across any number of sessions, a bounded
/// `PlanCache` so shape diversity cannot grow memory server-lifetime
/// large, and per-plan `SessionPool`s whose sessions are `reset` in place
/// between instances. The service adds the missing piece named in
/// ROADMAP.md: *instance-level* parallelism. Where `BatchSolver` streamed
/// same-shape instances through one session serially (all parallelism
/// inside a single solve), the service keeps a pool of `workers`
/// long-lived worker threads consuming a shared dispatch queue, each
/// solve running the *serial* fast path. (A fork-join dispatch over
/// `pram::ThreadPool` was considered and rejected: a round cannot finish
/// before its longest solve, so async submissions arriving mid-round
/// would head-of-line block behind it; free-running queue consumers have
/// no rounds and no such cliff.) For batch traffic this inverts the
/// parallelism axis: overlapping whole instances scales embarrassingly,
/// needs no barriers per macro-step, and keeps every worker's tables hot
/// in its own cache.
///
/// Two submission surfaces share one dispatch queue:
///  * `solve_all(problems)` — blocking, a drop-in superset of
///    `BatchSolver::solve_all` (which is now a thin `workers = 1` facade
///    over this service): groups by shape, reports the same `BatchResult`
///    ledger, returns results in input order.
///  * `submit(problem)` — asynchronous: enqueues one instance and returns
///    a `std::future<SublinearResult>`; an overload takes per-call
///    `SublinearOptions`, exercising the cache's `(n, options)` keying.
///
/// Determinism: a solve is a pure function of `(problem, plan)` — sessions
/// share nothing mutable, the queue only changes *when* an instance runs,
/// never *what* it computes — so results are bit-identical to independent
/// `core::solve` calls for every worker count and submission order (the
/// serve test suite and the walltime bench assert this).
///
/// When the service runs more than one worker, sessions normalise the
/// machine backend to `kSerial`: the inner engine must not issue
/// fork-join loops on the shared engine pool from several service
/// workers at once (that pool is single-issuer), and with instances
/// already covering the cores, intra-solve threading has nothing left to
/// win. A one-worker service (the `BatchSolver` facade) keeps the
/// caller's configured backend — there is only one issuer, and the old
/// `BatchSolver` behavior (parallelism inside each solve) is preserved
/// exactly. Normalisation happens before keying the cache, so the
/// `(n, options)` key space is not split by ignored backend choices.
///
/// ```
/// serve::SolverService service;                  // hardware workers
/// auto future = service.submit(problem);         // async
/// auto batch  = service.solve_all(instances);    // blocking, ordered
/// auto stats  = service.stats();                 // cache + pool + ledger
/// ```

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/solver_types.hpp"
#include "dp/problem.hpp"
#include "serve/plan_cache.hpp"
#include "serve/session_pool.hpp"

namespace subdp::serve {

/// Configuration of a `SolverService`.
struct ServiceOptions {
  /// Solver configuration applied to `submit(problem)` / `solve_all`
  /// calls that do not carry their own options. The machine backend is
  /// normalised to `kSerial` when `workers > 1` (see the file comment).
  core::SublinearOptions solver;
  /// Worker threads executing solves (0 = `hardware_concurrency`).
  std::size_t workers = 0;
  /// Shapes kept resident in the plan cache (LRU beyond this).
  std::size_t plan_capacity = 32;
  /// Session cap per plan (0 = match the worker count — more can never
  /// run concurrently, so a larger pool would only hold dead tables).
  std::size_t sessions_per_plan = 0;
};

/// One consistent snapshot of a service's aggregate accounting.
struct ServiceStats {
  std::size_t workers = 0;
  std::uint64_t jobs_submitted = 0;  ///< `submit`s + `solve_all` instances.
  std::uint64_t jobs_completed = 0;
  std::uint64_t total_iterations = 0;
  /// Summed PRAM work/depth; 0 unless `machine.record_costs` is on.
  std::uint64_t total_work = 0;
  std::uint64_t total_depth = 0;
  /// Session churn across all plans (service lifetime, eviction-proof).
  std::uint64_t sessions_created = 0;
  std::uint64_t session_reuses = 0;
  PlanCacheStats plan_cache;
};

/// Concurrent plan-cached, session-pooled solver; see the file comment.
class SolverService {
 public:
  explicit SolverService(ServiceOptions options = {});

  /// Drains every queued job, then stops the workers. Futures obtained
  /// from `submit` remain valid after destruction.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Asynchronously solves `problem` under the service options (or the
  /// per-call `options` overload). The problem must stay alive until the
  /// future is ready. Safe from any thread, including concurrently.
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem);
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem, const core::SublinearOptions& options);

  /// Solves every instance, blocking until all are done. Groups by shape
  /// for the ledger, dispatches instances across the workers, returns
  /// results in input order — a drop-in superset of
  /// `BatchSolver::solve_all`. Safe from any thread; must not be called
  /// from a job running on this service (the caller blocks on capacity
  /// its own job occupies).
  [[nodiscard]] core::BatchResult solve_all(
      std::span<const dp::Problem* const> problems);
  [[nodiscard]] core::BatchResult solve_all(
      std::span<const dp::Problem* const> problems,
      const core::SublinearOptions& options);

  [[nodiscard]] ServiceStats stats() const;

  /// Worker threads executing solves (resolved, >= 1).
  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// The resident plan for shape `n` under the service options (or the
  /// per-call overload); null when not cached. Does not touch LRU order.
  [[nodiscard]] std::shared_ptr<const core::SolvePlan> plan_for(
      std::size_t n) const;
  [[nodiscard]] std::shared_ptr<const core::SolvePlan> plan_for(
      std::size_t n, const core::SublinearOptions& options) const;

  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Completion rendezvous for one `solve_all` call: jobs write their
  /// slot, add to the call ledger, and count down; the caller waits.
  struct BatchCall;

  /// One queued instance. Exactly one completion route is armed: the
  /// promise (submit jobs) or the batch-call slot (solve_all jobs).
  struct Job {
    const dp::Problem* problem = nullptr;
    core::SublinearOptions solve_options;
    /// Pre-resolved shape for solve_all jobs (the caller accounted the
    /// cache hit/miss per *group*); null for submit jobs, which resolve
    /// the cache per instance on the worker.
    std::shared_ptr<SessionPool> pool;
    std::promise<core::SublinearResult> promise;
    bool has_promise = false;
    BatchCall* batch = nullptr;
    std::size_t slot = 0;
  };

  /// Applies the `workers > 1` backend normalisation; see file comment.
  [[nodiscard]] core::SublinearOptions normalized(
      core::SublinearOptions options) const;

  void enqueue(Job&& job);
  void enqueue(std::deque<Job>&& jobs);
  void worker_loop();
  void run_job(Job& job);

  ServiceOptions options_;
  std::size_t workers_ = 1;
  PlanCache cache_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;

  mutable std::mutex stats_mutex_;
  std::uint64_t jobs_submitted_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t total_iterations_ = 0;
  std::uint64_t total_work_ = 0;
  std::uint64_t total_depth_ = 0;
  std::uint64_t sessions_created_ = 0;
  std::uint64_t session_reuses_ = 0;

  /// Long-lived queue consumers. Last member: joined (and thereby done
  /// touching every other member) before anything else is destroyed.
  std::vector<std::thread> worker_threads_;
};

}  // namespace subdp::serve
