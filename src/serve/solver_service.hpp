#pragma once

/// \file solver_service.hpp
/// The concurrent serving front door: many independent DP instances,
/// overlapped across worker threads, behind one long-lived object —
/// with admission control at the intake.
///
/// Everything below `SolverService` exists to make this safe and cheap:
/// immutable `SolvePlan`s shared across any number of sessions, a bounded
/// `PlanCache` so shape diversity cannot grow memory server-lifetime
/// large, and per-plan `SessionPool`s whose sessions are `reset` in place
/// between instances. The service adds the missing piece named in
/// ROADMAP.md: *instance-level* parallelism. Where `BatchSolver` streamed
/// same-shape instances through one session serially (all parallelism
/// inside a single solve), the service keeps a pool of `workers`
/// long-lived worker threads consuming a shared dispatch queue, each
/// solve running the *serial* fast path. (A fork-join dispatch over
/// `pram::ThreadPool` was considered and rejected: a round cannot finish
/// before its longest solve, so async submissions arriving mid-round
/// would head-of-line block behind it; free-running queue consumers have
/// no rounds and no such cliff.) For batch traffic this inverts the
/// parallelism axis: overlapping whole instances scales embarrassingly,
/// needs no barriers per macro-step, and keeps every worker's tables hot
/// in its own cache.
///
/// ## Admission control
///
/// The dispatch queue is bounded (`ServiceOptions::queue_capacity`;
/// 0 = unbounded, the legacy default). When the queue is full,
/// `overload_policy` decides what `submit` does:
///  * `OverloadPolicy::kBlock` — back-pressure: the submitting thread
///    waits until a worker drains a slot, then enqueues. No job is ever
///    turned away; memory stays bounded by `queue_capacity`.
///  * `OverloadPolicy::kReject` — load shedding: `submit` throws
///    `core::AdmissionError` (`Kind::kQueueFull`) synchronously and the
///    job is never queued. The rejection is counted in
///    `ServiceStats::jobs_rejected` (and in `jobs_submitted`, so
///    `jobs_submitted == jobs_completed + jobs_rejected + jobs_expired`
///    holds once the queue drains).
///
/// ## QoS intake: priority classes and EDF dispatch
///
/// The dispatch queue is not FIFO. Every job carries a **priority
/// class** (`PriorityClass::kInteractive` or `kBatch`; `submit`
/// overloads take one explicitly, otherwise
/// `ServiceOptions::default_priority` applies, and `solve_all` traffic
/// is always `kBatch`) and workers dequeue in **EDF order**: jobs are
/// ordered by `(priority class, deadline, submit sequence)` — every
/// interactive job ahead of every batch job, earlier deadlines first
/// within a class (no deadline sorts as "infinitely late"), submission
/// order breaking ties. A wall of `solve_all` batch traffic therefore
/// cannot starve a deadline-carrying interactive job: the interactive
/// job is simply next, however deep the batch backlog. Per-class
/// counters and end-to-end latency histograms
/// (`ServiceStats::interactive` / `::batch`) account each class
/// separately; their sums equal the global counters.
///
/// Jobs may also carry a **deadline** (`submit` overloads taking a
/// `Deadline`, a `std::chrono::steady_clock` time point). There is no
/// timer thread; instead expiry is a **lazy sweep** run at the two
/// points the queue is already locked: when a worker picks up work and
/// when an admission finds the bounded queue full. Within a class,
/// deadline-carrying jobs form a deadline-sorted prefix of the EDF
/// order, so the sweep inspects exactly the expired run plus one
/// non-expired sentinel per class — O(expired + classes), never a full
/// scan. A swept job resolves with `core::AdmissionError`
/// (`Kind::kDeadlineExceeded`) without touching the problem — no
/// session, no plan, not one `f()` call — counts in
/// `ServiceStats::jobs_expired`, and *frees its bounded-queue slot*:
/// a queue full of already-expired jobs admits new work instead of
/// shedding it. All deadline checks go through the injected
/// `obs::Clock` seam, so tests drive expiry deterministically.
///
/// The blocking surface `solve_all` participates differently, by
/// design: its jobs carry **no deadlines** (the call blocks until every
/// instance is solved; per-job expiry would tear the ledger and the
/// input-order result contract) and it **never rejects** — at capacity
/// it back-pressures the *calling* thread while workers drain,
/// whatever the overload policy. `BatchSolver` therefore keeps its
/// exact pre-service semantics under the new defaults.
///
/// ## Retry-after hints
///
/// A `kReject` shed does not leave the client guessing: the thrown
/// `core::AdmissionError` carries the exact queue depth at rejection
/// and an estimated time until a slot frees, derived from the service's
/// queue-wait histogram snapshot (`p50 wait / depth` — with depth jobs
/// draining in about one typical wait, one slot frees in about that
/// fraction of it). A service that has not yet observed a nonzero
/// queue wait reports the conservative default
/// `kRetryAfterConservativeDefault` instead. Clients back off for the
/// hinted duration instead of spin-retrying (examples/quickstart.cpp
/// demonstrates the loop).
///
/// ## The background builder pool
///
/// Building a plan is the expensive cold-start step (O(n^2 B^2) entry
/// lists and offset tables). Workers never build: on dequeueing a job
/// whose `(n, options)` shape is cold (or still mid-build), the worker
/// parks the job with the service's **builder pool**
/// (`ServiceOptions::builders` threads; `ServiceStats::
/// jobs_cold_deferred` counts each parked job) and immediately goes
/// back to draining warm work — one giant cold shape can no longer
/// stall a solve worker. Parked jobs are grouped by `PlanKey`; each
/// idle builder picks the cold shape with the **most waiting
/// requesters** (the hottest shape first), resolves it through
/// `PlanCache::build`, then requeues every waiting job — pool attached,
/// admission not re-run — for any worker to solve. Distinct keys build
/// concurrently across the pool (the cache's per-entry build lock only
/// serialises same-key builds); a shape is claimed by exactly one
/// builder at a time, so concurrent cold jobs for one key still share a
/// single build and count a single cache miss. Plan validation errors
/// surface through every waiting job's future, exactly as they did
/// when workers built inline.
///
/// ## Thread-safety & lifecycle contract
///
///  * `submit`, `solve_all`, `stats`, `plan_for` may be called from any
///    thread, concurrently. `solve_all` must not be called from a job
///    running on this service (the caller would block on capacity its
///    own job occupies).
///  * Lock audit. `queue_mutex_` guards the EDF structure (`queue_`, a
///    `std::multiset` ordered by the `(class, deadline, seq)` rank) and
///    the intake flags; the expiry sweep runs under it at pickup — the
///    worker already holds the lock to dequeue, and the sweep touches
///    only the per-class expired prefixes, so workers stay lock-light
///    (no second locking point, no timer thread, no full-queue scan).
///    `builder_mutex_` guards the cold-shape map (waiting requesters +
///    in-progress claims); builds themselves run with no service lock
///    held (the cache's per-entry lock serialises same-key builds).
///    `stats_mutex_` guards the counters and the per-shape histogram
///    map; histograms record on their own atomics outside it. Lock
///    order: `queue_mutex_` or `builder_mutex_` before `stats_mutex_`;
///    `queue_mutex_` and `builder_mutex_` are never held together.
///  * Plans are immutable and shared; sessions are strictly per-worker
///    (leased for exactly one solve); `dp::Problem` implementations
///    must tolerate concurrent const calls (problem.hpp contract). A
///    submitted problem must stay alive until its future is ready.
///  * Destruction: the destructor first closes intake (late `submit` /
///    `solve_all` calls fail a `SUBDP_REQUIRE`; `kBlock` submitters
///    still waiting for space are woken and fail the same way, while a
///    `solve_all` caught mid-fill stops back-pressuring and finishes
///    queueing — the destructor waits for it, so the call completes
///    normally), then joins the builder pool (each builder keeps
///    claiming and building pending cold shapes until none remain,
///    requeueing every deferred job), then the workers, which drain
///    every queued job — solving admitted work, expiring what is past
///    its deadline. Every future obtained from `submit` is therefore
///    resolved — value, solver error, or `AdmissionError` — and remains
///    valid after destruction; no promise is ever broken.
///  * Determinism: admission decides *whether and when* a job runs,
///    never *what* it computes. A solve is a pure function of
///    `(problem, plan)`, so every admitted job's result is bit-identical
///    to an independent `core::solve` for every worker count, queue
///    capacity, overload policy and submission order (the serve test
///    suite — including the differential fuzz harness — and the
///    walltime bench assert this).
///
/// When the service runs more than one worker, sessions normalise the
/// machine backend to `kSerial`: the inner engine must not issue
/// fork-join loops on the shared engine pool from several service
/// workers at once (that pool is single-issuer), and with instances
/// already covering the cores, intra-solve threading has nothing left to
/// win. A one-worker service (the `BatchSolver` facade) keeps the
/// caller's configured backend — there is only one issuer, and the old
/// `BatchSolver` behavior (parallelism inside each solve) is preserved
/// exactly. Normalisation happens before keying the cache, so the
/// `(n, options)` key space is not split by ignored backend choices.
///
/// ```
/// serve::ServiceOptions opts;
/// opts.queue_capacity = 64;                      // bounded intake
/// opts.overload_policy = serve::OverloadPolicy::kReject;
/// serve::SolverService service(opts);
/// auto future = service.submit(problem);         // async; may throw
///                                                // AdmissionError
/// auto timed  = service.submit(problem,          // with a deadline
///     std::chrono::steady_clock::now() + std::chrono::seconds(2));
/// auto batch  = service.solve_all(instances);    // blocking, ordered,
///                                                // never shed
/// auto stats  = service.stats();                 // cache + pool +
///                                                // admission ledger
/// ```

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include <string>

#include "core/solver_types.hpp"
#include "dp/problem.hpp"
#include "obs/clock.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/plan_cache.hpp"
#include "serve/session_pool.hpp"
#include "snapshot/snapshot_store.hpp"

namespace subdp::serve {

/// What a full dispatch queue does to `submit`; see the file comment.
enum class OverloadPolicy {
  kBlock,   ///< Back-pressure: the submitter waits for a free slot.
  kReject,  ///< Load shedding: `submit` throws `core::AdmissionError`.
};

[[nodiscard]] constexpr const char* to_string(OverloadPolicy p) noexcept {
  return p == OverloadPolicy::kBlock ? "block" : "reject";
}

/// Per-job deadline: a job not picked up by a worker before this instant
/// resolves with `core::AdmissionError` instead of solving.
using Deadline = std::chrono::steady_clock::time_point;

/// Dispatch class of a job: the EDF queue orders by
/// `(priority class, deadline, submit seq)`, so every interactive job
/// dequeues ahead of every batch job. `solve_all` traffic is always
/// `kBatch`; `submit` jobs default to `ServiceOptions::default_priority`
/// unless an overload names a class. Enumerator values are the queue-rank
/// sort keys (and the per-class accounting indices) — keep `kInteractive`
/// lowest.
enum class PriorityClass : int {
  kInteractive = 0,  ///< Latency-sensitive; dequeued first.
  kBatch = 1,        ///< Throughput traffic; yields to interactive.
};

/// Number of priority classes (per-class counter/histogram arrays).
inline constexpr std::size_t kPriorityClasses = 2;

[[nodiscard]] constexpr const char* to_string(PriorityClass c) noexcept {
  return c == PriorityClass::kInteractive ? "interactive" : "batch";
}

/// Retry-after hint reported on `kQueueFull` rejections when the
/// queue-wait histogram has no signal yet (empty, or every recorded wait
/// was zero): a deliberately small, conservative backoff — long enough to
/// stop a spin loop, short enough that a real drain estimate takes over
/// after the first few completions.
inline constexpr std::chrono::nanoseconds kRetryAfterConservativeDefault =
    std::chrono::milliseconds(1);

/// Configuration of a `SolverService`.
struct ServiceOptions {
  /// Solver configuration applied to `submit(problem)` / `solve_all`
  /// calls that do not carry their own options. The machine backend is
  /// normalised to `kSerial` when `workers > 1` (see the file comment).
  core::SublinearOptions solver;
  /// Worker threads executing solves (0 = `hardware_concurrency`).
  std::size_t workers = 0;
  /// Builder-pool threads resolving cold plan shapes (0 = 1). Distinct
  /// shapes build concurrently across the pool; same-key builds are
  /// still coalesced into one (one cache miss), whatever the pool size.
  std::size_t builders = 1;
  /// Priority class applied to `submit` calls that do not name one.
  /// `solve_all` traffic is always `PriorityClass::kBatch` regardless.
  PriorityClass default_priority = PriorityClass::kInteractive;
  /// Shapes kept resident in the plan cache (LRU beyond this).
  std::size_t plan_capacity = 32;
  /// Session cap per plan (0 = match the worker count — more can never
  /// run concurrently, so a larger pool would only hold dead tables).
  std::size_t sessions_per_plan = 0;
  /// Maximal jobs *waiting* in the dispatch queue (jobs in flight on
  /// workers or parked at the builder do not count); 0 = unbounded.
  std::size_t queue_capacity = 0;
  /// What `submit` does when the queue is full. `solve_all` always
  /// back-pressures its caller regardless of this policy.
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// Plan snapshot directory (empty = no persistence). When set, the
  /// service opens a `snapshot::SnapshotStore` there and threads it into
  /// the plan cache: cache misses load verified snapshots instead of
  /// building geometry, fresh builds are written back asynchronously,
  /// and at startup every shape in the store's prewarm manifest
  /// (`prewarm.txt`) is resolved before the first request is accepted —
  /// a restarted replica serves its first requests with zero cold-path
  /// stalls. See snapshot/snapshot_store.hpp.
  std::string snapshot_dir;
  /// Instrumentation/test seam: when set, invoked on a builder-pool
  /// thread once per cold *shape* it claims, just before the build
  /// (admission tests gate this to hold builders busy deterministically;
  /// concurrent cold jobs coalesced into one build trigger it once).
  /// Leave empty in production.
  std::function<void()> cold_build_hook;
  /// Monotonic clock behind deadlines, stage latencies, and trace
  /// timestamps (null = the shared `obs::SteadyClock`). Tests inject an
  /// `obs::ManualClock` to drive expiry and latency deterministically.
  std::shared_ptr<const obs::Clock> clock;
  /// Trace-ring capacity per stripe (the service keeps `workers + 2`
  /// stripes: one per long-lived thread, probabilistically, plus slack
  /// for submitters). 0 disables per-job tracing entirely; overflow
  /// never blocks — excess events are counted in
  /// `ServiceStats::trace_dropped` instead of recorded.
  std::size_t trace_capacity = 8192;
};

/// Per-priority-class slice of the admission ledger plus that class's
/// end-to-end latency distribution. The class slices partition the
/// global counters: summed over `interactive` and `batch`, each field
/// equals its `ServiceStats` counterpart, and the drained invariant
/// `submitted == completed + rejected + expired` holds per class (the
/// QoS and fuzz suites assert both).
struct PriorityClassStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  /// Submit-to-resolution latency of this class's completed jobs
  /// (`e2e.count == completed` once drained).
  obs::HistogramSnapshot e2e;
};

/// One consistent snapshot of a service's aggregate accounting.
///
/// Admission invariant: once the queue has drained (e.g. after the
/// destructor, or when all outstanding futures are ready),
/// `jobs_submitted == jobs_completed + jobs_rejected + jobs_expired`.
struct ServiceStats {
  std::size_t workers = 0;
  std::size_t builders = 0;  ///< Builder-pool threads (resolved, >= 1).
  std::uint64_t jobs_submitted = 0;  ///< `submit`s (incl. rejected) +
                                     ///< `solve_all` instances.
  std::uint64_t jobs_completed = 0;  ///< Solved, or failed in the solver
                                     ///< (the future carries the error).
  std::uint64_t jobs_rejected = 0;   ///< Turned away at a full queue
                                     ///< under `kReject`.
  std::uint64_t jobs_expired = 0;    ///< Deadline passed before pickup.
  /// Jobs handed to the builder thread because their shape was cold (or
  /// still mid-build). Concurrent cold jobs for one key each count here
  /// but share a single build (one cache miss).
  std::uint64_t jobs_cold_deferred = 0;
  std::uint64_t total_iterations = 0;
  /// Summed PRAM work/depth; 0 unless `machine.record_costs` is on.
  std::uint64_t total_work = 0;
  std::uint64_t total_depth = 0;
  /// Session churn across all plans (service lifetime, eviction-proof).
  std::uint64_t sessions_created = 0;
  std::uint64_t session_reuses = 0;
  /// Snapshot-store accounting; all zero without `snapshot_dir`. With a
  /// store, every plan construction consults it exactly once, so
  /// `snapshot_hits + snapshot_misses >= plan_cache.misses` (prewarm and
  /// post-eviction re-requests consult too) and the admission invariant
  /// is untouched — snapshots change where plans come from, never how
  /// jobs are counted.
  std::uint64_t snapshot_hits = 0;
  std::uint64_t snapshot_misses = 0;
  std::uint64_t snapshot_write_failures = 0;
  /// Shapes resolved from the prewarm manifest at startup.
  std::uint64_t shapes_prewarmed = 0;
  PlanCacheStats plan_cache;
  /// Per-stage latency distributions (nanoseconds, service lifetime).
  /// `queue_wait` covers first-enqueue to first-dequeue (cold-deferred
  /// jobs are not re-counted on requeue); `plan_build` and
  /// `snapshot_load` cover real plan materialisations (cache hits record
  /// nothing); `solve` is the session solve alone; `e2e` is submit to
  /// resolution for every completed job — rejected and expired jobs are
  /// excluded, so `e2e.count == jobs_completed` once the queue drains
  /// (the fuzz suite asserts this).
  obs::HistogramSnapshot queue_wait;
  obs::HistogramSnapshot plan_build;
  obs::HistogramSnapshot snapshot_load;
  obs::HistogramSnapshot solve;
  obs::HistogramSnapshot e2e;
  /// End-to-end latency split by plan shape (label "n<N>-<variant>-
  /// <square mode>"), sorted by label.
  std::vector<std::pair<std::string, obs::HistogramSnapshot>> e2e_by_shape;
  /// Per-priority-class admission slices; they partition the global
  /// counters (see `PriorityClassStats`).
  PriorityClassStats interactive;
  PriorityClassStats batch;
  /// Trace events lost to a full ring stripe (0 with tracing disabled).
  std::uint64_t trace_dropped = 0;
};

/// Concurrent plan-cached, session-pooled solver with admission control;
/// see the file comment.
class SolverService {
 public:
  explicit SolverService(ServiceOptions options = {});

  /// Drains every queued job (solving or expiring it), then stops the
  /// builder pool and the workers. Futures obtained from `submit` are
  /// all resolved and remain valid after destruction.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Asynchronously solves `problem` under the service options (or the
  /// per-call `options` overload), optionally bounded by `deadline` and
  /// classed by `priority` (`ServiceOptions::default_priority` when no
  /// overload names one — see the file comment's QoS section for the
  /// dequeue order). The problem must stay alive until the future is
  /// ready. Safe from any thread, including concurrently. With a
  /// bounded queue this may block (`kBlock`) or throw
  /// `core::AdmissionError` (`kReject`, carrying a retry-after hint); a
  /// job whose deadline passes before pickup resolves its future with
  /// `core::AdmissionError` instead of solving.
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem);
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem, const core::SublinearOptions& options);
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem, Deadline deadline);
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem, const core::SublinearOptions& options,
      Deadline deadline);
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem, PriorityClass priority);
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem, PriorityClass priority,
      Deadline deadline);
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem, const core::SublinearOptions& options,
      PriorityClass priority);
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem, const core::SublinearOptions& options,
      PriorityClass priority, Deadline deadline);

  /// Solves every instance, blocking until all are done. Groups by shape
  /// for the ledger, dispatches instances across the workers, returns
  /// results in input order — a drop-in superset of
  /// `BatchSolver::solve_all`. Batch jobs bypass admission shedding:
  /// they carry no deadline and are never rejected (at capacity the
  /// *caller* blocks while workers drain). Safe from any thread; must
  /// not be called from a job running on this service (the caller
  /// blocks on capacity its own job occupies).
  [[nodiscard]] core::BatchResult solve_all(
      std::span<const dp::Problem* const> problems);
  [[nodiscard]] core::BatchResult solve_all(
      std::span<const dp::Problem* const> problems,
      const core::SublinearOptions& options);

  [[nodiscard]] ServiceStats stats() const;

  /// Chrome trace-event JSON (`{"traceEvents": [...]}`, loadable in
  /// Perfetto / chrome://tracing) of every job lifecycle event still in
  /// the trace ring: one complete span per job plus its instant events
  /// (submit, enqueue, dequeue, plan acquired, solve begin/end,
  /// resolution — including reject/expire/fail). Returns an empty trace
  /// when `ServiceOptions::trace_capacity` is 0. Safe from any thread;
  /// typically called after the traffic of interest has drained.
  [[nodiscard]] std::string export_trace() const;

  /// The service's counters and per-stage latency histograms as an
  /// `obs::MetricsRegistry` (every `ServiceStats` field under a
  /// `subdp_` prefix), renderable via `to_prometheus()` / `to_json()`.
  [[nodiscard]] obs::MetricsRegistry metrics() const;

  /// Worker threads executing solves (resolved, >= 1).
  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// Builder-pool threads resolving cold shapes (resolved, >= 1).
  [[nodiscard]] std::size_t builders() const noexcept { return builders_; }

  /// The resident plan for shape `n` under the service options (or the
  /// per-call overload); null when not cached. Does not touch LRU order.
  [[nodiscard]] std::shared_ptr<const core::SolvePlan> plan_for(
      std::size_t n) const;
  [[nodiscard]] std::shared_ptr<const core::SolvePlan> plan_for(
      std::size_t n, const core::SublinearOptions& options) const;

  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

  /// The plan snapshot store, or null without `snapshot_dir` (tests and
  /// benches use this to flush pending write-backs deterministically).
  [[nodiscard]] const std::shared_ptr<snapshot::SnapshotStore>&
  snapshot_store() const noexcept {
    return store_;
  }

 private:
  /// Completion rendezvous for one `solve_all` call: jobs write their
  /// slot, add to the call ledger, and count down; the caller waits.
  struct BatchCall;

  /// One queued instance. Exactly one completion route is armed: the
  /// promise (submit jobs) or the batch-call slot (solve_all jobs).
  struct Job {
    const dp::Problem* problem = nullptr;
    core::SublinearOptions solve_options;
    /// Pre-resolved shape: set by the solve_all caller (which accounted
    /// the cache hit/miss per *group*) or by the builder after a cold
    /// handoff; null for warm-path submit jobs until the worker's
    /// `try_acquire` fills it in.
    std::shared_ptr<SessionPool> pool;
    std::promise<core::SublinearResult> promise;
    bool has_promise = false;
    BatchCall* batch = nullptr;
    std::size_t slot = 0;
    /// EDF rank, major key: interactive dequeues ahead of batch.
    PriorityClass priority = PriorityClass::kInteractive;
    /// Expiry instant; only submit jobs carry one (`has_deadline`).
    bool has_deadline = false;
    Deadline deadline{};
    /// Observability: service-unique id (trace `tid`), the submit and
    /// enqueue instants on the service clock, and whether queue wait was
    /// already recorded (a cold-deferred job is dequeued twice; only the
    /// first wait counts).
    std::uint64_t id = 0;
    obs::Clock::time_point submit_time{};
    obs::Clock::time_point enqueue_time{};
    bool queue_wait_recorded = false;
  };

  /// EDF sort key of a queued job: `(priority class, deadline, submit
  /// seq)`, tuple-compared. A job without a deadline ranks as
  /// "infinitely late" (`Deadline::max()`), so within a class the
  /// deadline-carrying jobs form a deadline-sorted prefix — exactly the
  /// run the expiry sweep walks. `seq` is the service-unique job id,
  /// assigned monotonically at submit, so ties preserve submission
  /// order and no two queued jobs rank equal.
  struct JobRank {
    int cls = 0;
    Deadline deadline = Deadline::max();
    std::uint64_t seq = 0;
  };

  [[nodiscard]] static JobRank rank_of(const Job& job) noexcept {
    return JobRank{static_cast<int>(job.priority),
                   job.has_deadline ? job.deadline : Deadline::max(),
                   job.id};
  }

  /// Strict weak order over queued jobs (and, transparently, bare
  /// `JobRank`s — the sweep seeks a class's first job without
  /// materialising a probe `Job`).
  struct JobOrder {
    using is_transparent = void;
    [[nodiscard]] static bool less(const JobRank& a,
                                   const JobRank& b) noexcept {
      if (a.cls != b.cls) return a.cls < b.cls;
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
      return a.seq < b.seq;
    }
    bool operator()(const Job& a, const Job& b) const noexcept {
      return less(rank_of(a), rank_of(b));
    }
    bool operator()(const Job& a, const JobRank& b) const noexcept {
      return less(rank_of(a), b);
    }
    bool operator()(const JobRank& a, const Job& b) const noexcept {
      return less(a, rank_of(b));
    }
  };

  /// One cold plan shape parked at the builder pool: the jobs waiting
  /// on its build plus whether a builder currently owns it. Guarded by
  /// `builder_mutex_`; the build itself runs with the mutex released.
  struct ColdShape {
    std::size_t n = 0;
    core::SublinearOptions options;  ///< Normalised (cache-key) options.
    std::deque<Job> jobs;
    bool in_progress = false;
  };

  /// Applies the `workers > 1` backend normalisation; see file comment.
  [[nodiscard]] core::SublinearOptions normalized(
      core::SublinearOptions options) const;

  [[nodiscard]] std::future<core::SublinearResult> submit_job(
      const dp::Problem& problem, const core::SublinearOptions& options,
      PriorityClass priority, bool has_deadline, Deadline deadline);

  /// Admission for one submit job: counts the submission, applies the
  /// bounded-queue policy (throws `AdmissionError` under `kReject`,
  /// waits for a slot under `kBlock`), enqueues.
  void enqueue(Job&& job);
  /// Admission for a solve_all group: counts every instance up front,
  /// then enqueues each, back-pressuring the caller at capacity (batch
  /// jobs are never rejected).
  void enqueue(std::deque<Job>&& jobs);
  /// Returns a builder-resolved job to the dispatch queue. No admission
  /// and no counting: the job was admitted when first enqueued.
  void requeue(Job&& job);

  void worker_loop();
  void builder_loop();
  /// Parks a cold job with the builder pool (grouped by plan key);
  /// after the pool has been stopped (destructor drain), the caller
  /// builds inline instead. Returns true when the job was handed off.
  [[nodiscard]] bool defer_to_builder(Job&& job);
  /// Resolves every queued job whose deadline has passed as of `now`
  /// (`queue_mutex_` held by the caller): each is extracted, counted in
  /// `jobs_expired`, and its future fails with `kDeadlineExceeded` —
  /// the problem is never touched. Walks only the per-class expired
  /// prefixes of the EDF order. Returns the number of slots freed (the
  /// caller notifies `queue_not_full_` when nonzero).
  std::size_t sweep_expired_locked(obs::Clock::time_point now);
  /// Drain-time estimate behind the `kQueueFull` retry-after hint:
  /// p50 queue wait / depth, or `kRetryAfterConservativeDefault` when
  /// the histogram has no nonzero signal yet.
  [[nodiscard]] std::chrono::nanoseconds estimate_retry_after(
      std::size_t depth) const;
  void run_job(Job& job);
  /// Resolves a job whose deadline passed before pickup; never solves.
  void expire_job(Job& job);
  /// Completion bookkeeping for a job that failed before/while solving.
  void fail_job(Job& job, std::exception_ptr error);

  /// Records one lifecycle event into the trace ring (no-op with tracing
  /// disabled). Never blocks; overflow is counted, not waited out.
  void trace(std::uint64_t job_id, obs::TraceEventKind kind,
             obs::PlanSource source = obs::PlanSource::kNone);
  /// Records the submit-to-resolution latency of a completed job into
  /// the service-wide and per-shape end-to-end histograms.
  void record_e2e(const Job& job);
  /// Nanoseconds between two instants of the service clock (0 when `b`
  /// precedes `a`, which a `ManualClock` rewind could produce).
  [[nodiscard]] static std::uint64_t elapsed_ns(obs::Clock::time_point a,
                                                obs::Clock::time_point b);

  ServiceOptions options_;
  std::size_t workers_ = 1;
  std::size_t builders_ = 1;
  /// Declared before `cache_`: the cache holds a copy of this pointer
  /// and its builds write through it.
  std::shared_ptr<snapshot::SnapshotStore> store_;
  PlanCache cache_;
  std::uint64_t shapes_prewarmed_ = 0;  ///< Set once in the constructor.

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  /// Signalled when a queue slot frees (worker pickup or expiry sweep;
  /// bounded queue only).
  std::condition_variable queue_not_full_;
  /// The EDF dispatch queue: ordered by `JobRank`, dequeued from
  /// `begin()`. Guarded by `queue_mutex_`.
  std::multiset<Job, JobOrder> queue_;
  /// Intake closed: late submit/solve_all calls fail a SUBDP_REQUIRE.
  bool stopping_ = false;
  /// Workers may exit once the queue is drained (set strictly after the
  /// builder has been joined, so no requeue can arrive afterwards).
  bool workers_exit_ = false;
  /// solve_all callers currently filling the queue. The destructor
  /// waits for this to hit zero (fills stop back-pressuring once
  /// `stopping_` is set, so they finish promptly) before letting
  /// workers exit — every batch job reaches the queue and is drained,
  /// so no BatchCall is ever abandoned mid-call.
  std::size_t batch_fills_ = 0;
  std::condition_variable batch_fills_done_;

  mutable std::mutex builder_mutex_;
  std::condition_variable builder_cv_;
  /// Cold shapes awaiting (or undergoing) a build, with their parked
  /// jobs. Idle builders claim the shape with the most waiting jobs.
  std::map<PlanKey, ColdShape> builder_shapes_;
  bool builder_stop_ = false;

  mutable std::mutex stats_mutex_;
  std::uint64_t jobs_submitted_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_rejected_ = 0;
  std::uint64_t jobs_expired_ = 0;
  std::uint64_t jobs_cold_deferred_ = 0;
  /// Per-priority-class slices of the admission counters, indexed by
  /// the `PriorityClass` enumerator value; they partition the globals.
  std::array<std::uint64_t, kPriorityClasses> class_submitted_{};
  std::array<std::uint64_t, kPriorityClasses> class_completed_{};
  std::array<std::uint64_t, kPriorityClasses> class_rejected_{};
  std::array<std::uint64_t, kPriorityClasses> class_expired_{};
  std::uint64_t total_iterations_ = 0;
  std::uint64_t total_work_ = 0;
  std::uint64_t total_depth_ = 0;
  std::uint64_t sessions_created_ = 0;
  std::uint64_t session_reuses_ = 0;
  /// Per-shape end-to-end latency, keyed by `shape_label` — guarded by
  /// `stats_mutex_` (the map; each histogram is internally atomic).
  std::map<std::string, std::unique_ptr<obs::LatencyHistogram>>
      e2e_by_shape_;

  /// Observability plumbing. The clock is never null (defaulted in the
  /// constructor); the trace ring is null when tracing is disabled.
  std::shared_ptr<const obs::Clock> clock_;
  std::unique_ptr<obs::TraceRing> trace_ring_;
  std::atomic<std::uint64_t> next_job_id_{1};
  /// Per-stage latency histograms (nanoseconds); lock-free recording.
  obs::LatencyHistogram queue_wait_hist_;
  obs::LatencyHistogram plan_build_hist_;
  obs::LatencyHistogram snapshot_load_hist_;
  obs::LatencyHistogram solve_hist_;
  obs::LatencyHistogram e2e_hist_;
  /// Per-priority-class end-to-end latency, indexed like the class
  /// counters; lock-free recording.
  std::array<obs::LatencyHistogram, kPriorityClasses> e2e_class_hist_;

  /// The cold-plan builder pool; see the file comment.
  std::vector<std::thread> builder_threads_;
  /// Long-lived queue consumers. Last member: joined (and thereby done
  /// touching every other member) before anything else is destroyed.
  std::vector<std::thread> worker_threads_;
};

}  // namespace subdp::serve
