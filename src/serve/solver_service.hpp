#pragma once

/// \file solver_service.hpp
/// The concurrent serving front door: many independent DP instances,
/// overlapped across worker threads, behind one long-lived object —
/// with admission control at the intake.
///
/// Everything below `SolverService` exists to make this safe and cheap:
/// immutable `SolvePlan`s shared across any number of sessions, a bounded
/// `PlanCache` so shape diversity cannot grow memory server-lifetime
/// large, and per-plan `SessionPool`s whose sessions are `reset` in place
/// between instances. The service adds the missing piece named in
/// ROADMAP.md: *instance-level* parallelism. Where `BatchSolver` streamed
/// same-shape instances through one session serially (all parallelism
/// inside a single solve), the service keeps a pool of `workers`
/// long-lived worker threads consuming a shared dispatch queue, each
/// solve running the *serial* fast path. (A fork-join dispatch over
/// `pram::ThreadPool` was considered and rejected: a round cannot finish
/// before its longest solve, so async submissions arriving mid-round
/// would head-of-line block behind it; free-running queue consumers have
/// no rounds and no such cliff.) For batch traffic this inverts the
/// parallelism axis: overlapping whole instances scales embarrassingly,
/// needs no barriers per macro-step, and keeps every worker's tables hot
/// in its own cache.
///
/// ## Admission control
///
/// The dispatch queue is bounded (`ServiceOptions::queue_capacity`;
/// 0 = unbounded, the legacy default). When the queue is full,
/// `overload_policy` decides what `submit` does:
///  * `OverloadPolicy::kBlock` — back-pressure: the submitting thread
///    waits until a worker drains a slot, then enqueues. No job is ever
///    turned away; memory stays bounded by `queue_capacity`.
///  * `OverloadPolicy::kReject` — load shedding: `submit` throws
///    `core::AdmissionError` (`Kind::kQueueFull`) synchronously and the
///    job is never queued. The rejection is counted in
///    `ServiceStats::jobs_rejected` (and in `jobs_submitted`, so
///    `jobs_submitted == jobs_completed + jobs_rejected + jobs_expired`
///    holds once the queue drains).
///
/// Jobs may also carry a **deadline** (`submit` overloads taking a
/// `Deadline`, a `std::chrono::steady_clock` time point). Deadlines are
/// checked when a worker *picks the job up* (every pickup, including the
/// one after a cold-build handoff, see below): a job whose deadline has
/// passed resolves its future with `core::AdmissionError`
/// (`Kind::kDeadlineExceeded`) without touching the problem — no
/// session, no plan, not one `f()` call — and counts in
/// `ServiceStats::jobs_expired`. There is no timer thread: a queued job
/// whose deadline passes is expired lazily at dequeue, which is always
/// "before a worker would have solved it".
///
/// The blocking surface `solve_all` participates differently, by
/// design: its jobs carry **no deadlines** (the call blocks until every
/// instance is solved; per-job expiry would tear the ledger and the
/// input-order result contract) and it **never rejects** — at capacity
/// it back-pressures the *calling* thread while workers drain,
/// whatever the overload policy. `BatchSolver` therefore keeps its
/// exact pre-service semantics under the new defaults.
///
/// ## The background plan builder
///
/// Building a plan is the expensive cold-start step (O(n^2 B^2) entry
/// lists and offset tables). Workers never build: on dequeueing a job
/// whose `(n, options)` shape is cold (or still mid-build), the worker
/// hands the job to the service's dedicated **builder thread**
/// (`ServiceStats::jobs_cold_deferred`) and immediately goes back to
/// draining warm work — one giant cold shape can no longer stall a
/// solve worker. The builder resolves the shape through
/// `PlanCache::build` (concurrent cold jobs for one key share a single
/// build and count a single cache miss), then requeues the job — pool
/// attached, admission not re-run — for any worker to solve. Plan
/// validation errors surface through the job's future, exactly as they
/// did when workers built inline.
///
/// ## Thread-safety & lifecycle contract
///
///  * `submit`, `solve_all`, `stats`, `plan_for` may be called from any
///    thread, concurrently. `solve_all` must not be called from a job
///    running on this service (the caller would block on capacity its
///    own job occupies).
///  * Plans are immutable and shared; sessions are strictly per-worker
///    (leased for exactly one solve); `dp::Problem` implementations
///    must tolerate concurrent const calls (problem.hpp contract). A
///    submitted problem must stay alive until its future is ready.
///  * Destruction: the destructor first closes intake (late `submit` /
///    `solve_all` calls fail a `SUBDP_REQUIRE`; `kBlock` submitters
///    still waiting for space are woken and fail the same way, while a
///    `solve_all` caught mid-fill stops back-pressuring and finishes
///    queueing — the destructor waits for it, so the call completes
///    normally), then joins the builder (which finishes building and
///    requeues every deferred job), then the workers, which drain every
///    queued job — solving admitted work, expiring what is past its
///    deadline. Every future obtained from `submit` is therefore
///    resolved — value, solver error, or `AdmissionError` — and remains
///    valid after destruction; no promise is ever broken.
///  * Determinism: admission decides *whether and when* a job runs,
///    never *what* it computes. A solve is a pure function of
///    `(problem, plan)`, so every admitted job's result is bit-identical
///    to an independent `core::solve` for every worker count, queue
///    capacity, overload policy and submission order (the serve test
///    suite — including the differential fuzz harness — and the
///    walltime bench assert this).
///
/// When the service runs more than one worker, sessions normalise the
/// machine backend to `kSerial`: the inner engine must not issue
/// fork-join loops on the shared engine pool from several service
/// workers at once (that pool is single-issuer), and with instances
/// already covering the cores, intra-solve threading has nothing left to
/// win. A one-worker service (the `BatchSolver` facade) keeps the
/// caller's configured backend — there is only one issuer, and the old
/// `BatchSolver` behavior (parallelism inside each solve) is preserved
/// exactly. Normalisation happens before keying the cache, so the
/// `(n, options)` key space is not split by ignored backend choices.
///
/// ```
/// serve::ServiceOptions opts;
/// opts.queue_capacity = 64;                      // bounded intake
/// opts.overload_policy = serve::OverloadPolicy::kReject;
/// serve::SolverService service(opts);
/// auto future = service.submit(problem);         // async; may throw
///                                                // AdmissionError
/// auto timed  = service.submit(problem,          // with a deadline
///     std::chrono::steady_clock::now() + std::chrono::seconds(2));
/// auto batch  = service.solve_all(instances);    // blocking, ordered,
///                                                // never shed
/// auto stats  = service.stats();                 // cache + pool +
///                                                // admission ledger
/// ```

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include <string>

#include "core/solver_types.hpp"
#include "dp/problem.hpp"
#include "obs/clock.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/plan_cache.hpp"
#include "serve/session_pool.hpp"
#include "snapshot/snapshot_store.hpp"

namespace subdp::serve {

/// What a full dispatch queue does to `submit`; see the file comment.
enum class OverloadPolicy {
  kBlock,   ///< Back-pressure: the submitter waits for a free slot.
  kReject,  ///< Load shedding: `submit` throws `core::AdmissionError`.
};

[[nodiscard]] constexpr const char* to_string(OverloadPolicy p) noexcept {
  return p == OverloadPolicy::kBlock ? "block" : "reject";
}

/// Per-job deadline: a job not picked up by a worker before this instant
/// resolves with `core::AdmissionError` instead of solving.
using Deadline = std::chrono::steady_clock::time_point;

/// Configuration of a `SolverService`.
struct ServiceOptions {
  /// Solver configuration applied to `submit(problem)` / `solve_all`
  /// calls that do not carry their own options. The machine backend is
  /// normalised to `kSerial` when `workers > 1` (see the file comment).
  core::SublinearOptions solver;
  /// Worker threads executing solves (0 = `hardware_concurrency`).
  std::size_t workers = 0;
  /// Shapes kept resident in the plan cache (LRU beyond this).
  std::size_t plan_capacity = 32;
  /// Session cap per plan (0 = match the worker count — more can never
  /// run concurrently, so a larger pool would only hold dead tables).
  std::size_t sessions_per_plan = 0;
  /// Maximal jobs *waiting* in the dispatch queue (jobs in flight on
  /// workers or parked at the builder do not count); 0 = unbounded.
  std::size_t queue_capacity = 0;
  /// What `submit` does when the queue is full. `solve_all` always
  /// back-pressures its caller regardless of this policy.
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// Plan snapshot directory (empty = no persistence). When set, the
  /// service opens a `snapshot::SnapshotStore` there and threads it into
  /// the plan cache: cache misses load verified snapshots instead of
  /// building geometry, fresh builds are written back asynchronously,
  /// and at startup every shape in the store's prewarm manifest
  /// (`prewarm.txt`) is resolved before the first request is accepted —
  /// a restarted replica serves its first requests with zero cold-path
  /// stalls. See snapshot/snapshot_store.hpp.
  std::string snapshot_dir;
  /// Instrumentation/test seam: when set, invoked on the builder thread
  /// before each cold-build it resolves (admission tests gate this to
  /// hold the builder busy deterministically). Leave empty in
  /// production.
  std::function<void()> cold_build_hook;
  /// Monotonic clock behind deadlines, stage latencies, and trace
  /// timestamps (null = the shared `obs::SteadyClock`). Tests inject an
  /// `obs::ManualClock` to drive expiry and latency deterministically.
  std::shared_ptr<const obs::Clock> clock;
  /// Trace-ring capacity per stripe (the service keeps `workers + 2`
  /// stripes: one per long-lived thread, probabilistically, plus slack
  /// for submitters). 0 disables per-job tracing entirely; overflow
  /// never blocks — excess events are counted in
  /// `ServiceStats::trace_dropped` instead of recorded.
  std::size_t trace_capacity = 8192;
};

/// One consistent snapshot of a service's aggregate accounting.
///
/// Admission invariant: once the queue has drained (e.g. after the
/// destructor, or when all outstanding futures are ready),
/// `jobs_submitted == jobs_completed + jobs_rejected + jobs_expired`.
struct ServiceStats {
  std::size_t workers = 0;
  std::uint64_t jobs_submitted = 0;  ///< `submit`s (incl. rejected) +
                                     ///< `solve_all` instances.
  std::uint64_t jobs_completed = 0;  ///< Solved, or failed in the solver
                                     ///< (the future carries the error).
  std::uint64_t jobs_rejected = 0;   ///< Turned away at a full queue
                                     ///< under `kReject`.
  std::uint64_t jobs_expired = 0;    ///< Deadline passed before pickup.
  /// Jobs handed to the builder thread because their shape was cold (or
  /// still mid-build). Concurrent cold jobs for one key each count here
  /// but share a single build (one cache miss).
  std::uint64_t jobs_cold_deferred = 0;
  std::uint64_t total_iterations = 0;
  /// Summed PRAM work/depth; 0 unless `machine.record_costs` is on.
  std::uint64_t total_work = 0;
  std::uint64_t total_depth = 0;
  /// Session churn across all plans (service lifetime, eviction-proof).
  std::uint64_t sessions_created = 0;
  std::uint64_t session_reuses = 0;
  /// Snapshot-store accounting; all zero without `snapshot_dir`. With a
  /// store, every plan construction consults it exactly once, so
  /// `snapshot_hits + snapshot_misses >= plan_cache.misses` (prewarm and
  /// post-eviction re-requests consult too) and the admission invariant
  /// is untouched — snapshots change where plans come from, never how
  /// jobs are counted.
  std::uint64_t snapshot_hits = 0;
  std::uint64_t snapshot_misses = 0;
  std::uint64_t snapshot_write_failures = 0;
  /// Shapes resolved from the prewarm manifest at startup.
  std::uint64_t shapes_prewarmed = 0;
  PlanCacheStats plan_cache;
  /// Per-stage latency distributions (nanoseconds, service lifetime).
  /// `queue_wait` covers first-enqueue to first-dequeue (cold-deferred
  /// jobs are not re-counted on requeue); `plan_build` and
  /// `snapshot_load` cover real plan materialisations (cache hits record
  /// nothing); `solve` is the session solve alone; `e2e` is submit to
  /// resolution for every completed job — rejected and expired jobs are
  /// excluded, so `e2e.count == jobs_completed` once the queue drains
  /// (the fuzz suite asserts this).
  obs::HistogramSnapshot queue_wait;
  obs::HistogramSnapshot plan_build;
  obs::HistogramSnapshot snapshot_load;
  obs::HistogramSnapshot solve;
  obs::HistogramSnapshot e2e;
  /// End-to-end latency split by plan shape (label "n<N>-<variant>-
  /// <square mode>"), sorted by label.
  std::vector<std::pair<std::string, obs::HistogramSnapshot>> e2e_by_shape;
  /// Trace events lost to a full ring stripe (0 with tracing disabled).
  std::uint64_t trace_dropped = 0;
};

/// Concurrent plan-cached, session-pooled solver with admission control;
/// see the file comment.
class SolverService {
 public:
  explicit SolverService(ServiceOptions options = {});

  /// Drains every queued job (solving or expiring it), then stops the
  /// builder and the workers. Futures obtained from `submit` are all
  /// resolved and remain valid after destruction.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Asynchronously solves `problem` under the service options (or the
  /// per-call `options` overload), optionally bounded by `deadline`.
  /// The problem must stay alive until the future is ready. Safe from
  /// any thread, including concurrently. With a bounded queue this may
  /// block (`kBlock`) or throw `core::AdmissionError` (`kReject`); a
  /// job whose deadline passes before pickup resolves its future with
  /// `core::AdmissionError` instead of solving.
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem);
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem, const core::SublinearOptions& options);
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem, Deadline deadline);
  [[nodiscard]] std::future<core::SublinearResult> submit(
      const dp::Problem& problem, const core::SublinearOptions& options,
      Deadline deadline);

  /// Solves every instance, blocking until all are done. Groups by shape
  /// for the ledger, dispatches instances across the workers, returns
  /// results in input order — a drop-in superset of
  /// `BatchSolver::solve_all`. Batch jobs bypass admission shedding:
  /// they carry no deadline and are never rejected (at capacity the
  /// *caller* blocks while workers drain). Safe from any thread; must
  /// not be called from a job running on this service (the caller
  /// blocks on capacity its own job occupies).
  [[nodiscard]] core::BatchResult solve_all(
      std::span<const dp::Problem* const> problems);
  [[nodiscard]] core::BatchResult solve_all(
      std::span<const dp::Problem* const> problems,
      const core::SublinearOptions& options);

  [[nodiscard]] ServiceStats stats() const;

  /// Chrome trace-event JSON (`{"traceEvents": [...]}`, loadable in
  /// Perfetto / chrome://tracing) of every job lifecycle event still in
  /// the trace ring: one complete span per job plus its instant events
  /// (submit, enqueue, dequeue, plan acquired, solve begin/end,
  /// resolution — including reject/expire/fail). Returns an empty trace
  /// when `ServiceOptions::trace_capacity` is 0. Safe from any thread;
  /// typically called after the traffic of interest has drained.
  [[nodiscard]] std::string export_trace() const;

  /// The service's counters and per-stage latency histograms as an
  /// `obs::MetricsRegistry` (every `ServiceStats` field under a
  /// `subdp_` prefix), renderable via `to_prometheus()` / `to_json()`.
  [[nodiscard]] obs::MetricsRegistry metrics() const;

  /// Worker threads executing solves (resolved, >= 1).
  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// The resident plan for shape `n` under the service options (or the
  /// per-call overload); null when not cached. Does not touch LRU order.
  [[nodiscard]] std::shared_ptr<const core::SolvePlan> plan_for(
      std::size_t n) const;
  [[nodiscard]] std::shared_ptr<const core::SolvePlan> plan_for(
      std::size_t n, const core::SublinearOptions& options) const;

  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

  /// The plan snapshot store, or null without `snapshot_dir` (tests and
  /// benches use this to flush pending write-backs deterministically).
  [[nodiscard]] const std::shared_ptr<snapshot::SnapshotStore>&
  snapshot_store() const noexcept {
    return store_;
  }

 private:
  /// Completion rendezvous for one `solve_all` call: jobs write their
  /// slot, add to the call ledger, and count down; the caller waits.
  struct BatchCall;

  /// One queued instance. Exactly one completion route is armed: the
  /// promise (submit jobs) or the batch-call slot (solve_all jobs).
  struct Job {
    const dp::Problem* problem = nullptr;
    core::SublinearOptions solve_options;
    /// Pre-resolved shape: set by the solve_all caller (which accounted
    /// the cache hit/miss per *group*) or by the builder after a cold
    /// handoff; null for warm-path submit jobs until the worker's
    /// `try_acquire` fills it in.
    std::shared_ptr<SessionPool> pool;
    std::promise<core::SublinearResult> promise;
    bool has_promise = false;
    BatchCall* batch = nullptr;
    std::size_t slot = 0;
    /// Expiry instant; only submit jobs carry one (`has_deadline`).
    bool has_deadline = false;
    Deadline deadline{};
    /// Observability: service-unique id (trace `tid`), the submit and
    /// enqueue instants on the service clock, and whether queue wait was
    /// already recorded (a cold-deferred job is dequeued twice; only the
    /// first wait counts).
    std::uint64_t id = 0;
    obs::Clock::time_point submit_time{};
    obs::Clock::time_point enqueue_time{};
    bool queue_wait_recorded = false;
  };

  /// Applies the `workers > 1` backend normalisation; see file comment.
  [[nodiscard]] core::SublinearOptions normalized(
      core::SublinearOptions options) const;

  [[nodiscard]] std::future<core::SublinearResult> submit_job(
      const dp::Problem& problem, const core::SublinearOptions& options,
      bool has_deadline, Deadline deadline);

  /// Admission for one submit job: counts the submission, applies the
  /// bounded-queue policy (throws `AdmissionError` under `kReject`,
  /// waits for a slot under `kBlock`), enqueues.
  void enqueue(Job&& job);
  /// Admission for a solve_all group: counts every instance up front,
  /// then enqueues each, back-pressuring the caller at capacity (batch
  /// jobs are never rejected).
  void enqueue(std::deque<Job>&& jobs);
  /// Returns a builder-resolved job to the dispatch queue. No admission
  /// and no counting: the job was admitted when first enqueued.
  void requeue(Job&& job);

  void worker_loop();
  void builder_loop();
  /// Hands a cold job to the builder thread; after the builder has been
  /// stopped (destructor drain), the caller builds inline instead.
  /// Returns true when the job was handed off.
  [[nodiscard]] bool defer_to_builder(Job&& job);
  void run_job(Job& job);
  /// Resolves a job whose deadline passed before pickup; never solves.
  void expire_job(Job& job);
  /// Completion bookkeeping for a job that failed before/while solving.
  void fail_job(Job& job, std::exception_ptr error);

  /// Records one lifecycle event into the trace ring (no-op with tracing
  /// disabled). Never blocks; overflow is counted, not waited out.
  void trace(std::uint64_t job_id, obs::TraceEventKind kind,
             obs::PlanSource source = obs::PlanSource::kNone);
  /// Records the submit-to-resolution latency of a completed job into
  /// the service-wide and per-shape end-to-end histograms.
  void record_e2e(const Job& job);
  /// Nanoseconds between two instants of the service clock (0 when `b`
  /// precedes `a`, which a `ManualClock` rewind could produce).
  [[nodiscard]] static std::uint64_t elapsed_ns(obs::Clock::time_point a,
                                                obs::Clock::time_point b);

  ServiceOptions options_;
  std::size_t workers_ = 1;
  /// Declared before `cache_`: the cache holds a copy of this pointer
  /// and its builds write through it.
  std::shared_ptr<snapshot::SnapshotStore> store_;
  PlanCache cache_;
  std::uint64_t shapes_prewarmed_ = 0;  ///< Set once in the constructor.

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  /// Signalled when a worker frees a queue slot (bounded queue only).
  std::condition_variable queue_not_full_;
  std::deque<Job> queue_;
  /// Intake closed: late submit/solve_all calls fail a SUBDP_REQUIRE.
  bool stopping_ = false;
  /// Workers may exit once the queue is drained (set strictly after the
  /// builder has been joined, so no requeue can arrive afterwards).
  bool workers_exit_ = false;
  /// solve_all callers currently filling the queue. The destructor
  /// waits for this to hit zero (fills stop back-pressuring once
  /// `stopping_` is set, so they finish promptly) before letting
  /// workers exit — every batch job reaches the queue and is drained,
  /// so no BatchCall is ever abandoned mid-call.
  std::size_t batch_fills_ = 0;
  std::condition_variable batch_fills_done_;

  mutable std::mutex builder_mutex_;
  std::condition_variable builder_cv_;
  std::deque<Job> builder_queue_;
  bool builder_stop_ = false;

  mutable std::mutex stats_mutex_;
  std::uint64_t jobs_submitted_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_rejected_ = 0;
  std::uint64_t jobs_expired_ = 0;
  std::uint64_t jobs_cold_deferred_ = 0;
  std::uint64_t total_iterations_ = 0;
  std::uint64_t total_work_ = 0;
  std::uint64_t total_depth_ = 0;
  std::uint64_t sessions_created_ = 0;
  std::uint64_t session_reuses_ = 0;
  /// Per-shape end-to-end latency, keyed by `shape_label` — guarded by
  /// `stats_mutex_` (the map; each histogram is internally atomic).
  std::map<std::string, std::unique_ptr<obs::LatencyHistogram>>
      e2e_by_shape_;

  /// Observability plumbing. The clock is never null (defaulted in the
  /// constructor); the trace ring is null when tracing is disabled.
  std::shared_ptr<const obs::Clock> clock_;
  std::unique_ptr<obs::TraceRing> trace_ring_;
  std::atomic<std::uint64_t> next_job_id_{1};
  /// Per-stage latency histograms (nanoseconds); lock-free recording.
  obs::LatencyHistogram queue_wait_hist_;
  obs::LatencyHistogram plan_build_hist_;
  obs::LatencyHistogram snapshot_load_hist_;
  obs::LatencyHistogram solve_hist_;
  obs::LatencyHistogram e2e_hist_;

  /// The dedicated cold-plan builder; see the file comment.
  std::thread builder_thread_;
  /// Long-lived queue consumers. Last member: joined (and thereby done
  /// touching every other member) before anything else is destroyed.
  std::vector<std::thread> worker_threads_;
};

}  // namespace subdp::serve
