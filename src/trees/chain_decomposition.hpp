#pragma once

/// \file chain_decomposition.hpp
/// The chain construction from the proof of Lemma 3.3 (paper Fig. 1).
///
/// For a node `x` with `i^2 < size(x) <= (i+1)^2`, at most one child of any
/// node on the path can have size exceeding `i^2`; following those heavy
/// children yields a *chain* `v_1 = x, ..., v_k` ending at the first node
/// whose children are both of size `<= i^2`. The proof bounds the chain
/// length by `k <= 2i + 1` and the total off-chain weight
/// `n_1 + ... + n_{k-1} <= 2i`, which drives the inductive step of the
/// lemma. `decompose` materialises the chain so tests and benches can
/// verify exactly these bounds on arbitrary trees.

#include <cstddef>
#include <vector>

#include "trees/full_binary_tree.hpp"

namespace subdp::trees {

/// The Fig. 1 chain of a node.
struct ChainDecomposition {
  /// `i` such that `i^2 < size(x) <= (i+1)^2`.
  std::size_t i = 0;
  /// Chain nodes `v_1 = x, ..., v_k`; every node has `size > i^2`.
  std::vector<NodeId> chain;
  /// Sizes `n_j` of the off-chain children of `v_1 .. v_{k-1}`.
  std::vector<std::size_t> off_chain_sizes;
  /// Sizes of the two children of the last chain node (`n_k`, `n_{k+1}`);
  /// both `<= i^2`. Empty when the last chain node is a leaf.
  std::vector<std::size_t> terminal_child_sizes;
};

/// Computes the chain decomposition of node `x` (paper Fig. 1).
[[nodiscard]] ChainDecomposition decompose(const FullBinaryTree& tree,
                                           NodeId x);

/// Verifies all bounds asserted in the proof of Lemma 3.3:
/// chain length `k <= 2i + 1`, every chain node size `> i^2`, terminal
/// children `<= i^2`, and `sum(off_chain_sizes) <= 2i`.
[[nodiscard]] bool verify_chain_bounds(const FullBinaryTree& tree,
                                       const ChainDecomposition& d);

}  // namespace subdp::trees
