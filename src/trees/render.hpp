#pragma once

/// \file render.hpp
/// ASCII rendering of small trees, used by the pebbling playground example
/// and by test failure diagnostics.

#include <functional>
#include <string>

#include "trees/full_binary_tree.hpp"

namespace subdp::trees {

/// Renders the tree sideways (root at the left, right subtree on top).
/// `decorate(x)` supplies a short annotation appended to each node's
/// `(lo,hi)` label — e.g. pebble / cond markers. Intended for trees with at
/// most a few dozen leaves.
[[nodiscard]] std::string render_sideways(
    const FullBinaryTree& tree,
    const std::function<std::string(NodeId)>& decorate = nullptr);

}  // namespace subdp::trees
