#pragma once

/// \file generators.hpp
/// Tree-shape generators for the pebbling experiments (paper Fig. 2).
///
/// * `kComplete` — balanced splits; the paper's best case, O(log n) moves.
/// * `kLeftSkewed` / `kRightSkewed` — a spine that always continues on one
///   side (Fig. 2b); height n-1.
/// * `kZigzag` — the spine alternates direction at every level (Fig. 2a);
///   the paper's pathological Theta(sqrt n) worst case for the game *and*
///   for the algorithm.
/// * `kRandom` — the optimal split is uniform on `(i, j)` independently at
///   every node; the model behind the Sec. 6 average-case analysis.
/// * `kBiasedRandom` — random split biased toward the boundary (long, thin
///   trees more likely than uniform); stress shape between random and
///   skewed.

#include <optional>
#include <string>

#include "support/rng.hpp"
#include "trees/full_binary_tree.hpp"

namespace subdp::trees {

enum class TreeShape {
  kComplete,
  kLeftSkewed,
  kRightSkewed,
  kZigzag,
  kRandom,
  kBiasedRandom,
};

/// All shapes, for parameterized tests and sweeps.
inline constexpr TreeShape kAllShapes[] = {
    TreeShape::kComplete,   TreeShape::kLeftSkewed,
    TreeShape::kRightSkewed, TreeShape::kZigzag,
    TreeShape::kRandom,     TreeShape::kBiasedRandom,
};

[[nodiscard]] const char* to_string(TreeShape shape) noexcept;
[[nodiscard]] std::optional<TreeShape> shape_from_string(
    const std::string& name) noexcept;

/// Builds a tree of the requested shape with `n_leaves` leaves.
/// `rng` is required for the random shapes and ignored otherwise.
[[nodiscard]] FullBinaryTree make_tree(TreeShape shape, std::size_t n_leaves,
                                       support::Rng* rng = nullptr);

}  // namespace subdp::trees
