#pragma once

/// \file pebble_game.hpp
/// The parallel pebbling game of Sec. 3.
///
/// State: a pebble bit per node and a pointer `cond(x)` per node, pointing
/// at `x` or one of its descendants. Initially only leaves carry pebbles
/// and `cond(x) = x`. One *move* applies three synchronous parallel
/// operations:
///
///   activate:  if `cond(x) == x` and some child of `x` is pebbled,
///              `cond(x) :=` the *other* child;
///   square:    (HLV rule) if `cond(cond(x)) != cond(x)`, set `cond(x)` to
///              the child of `cond(x)` that is an ancestor of
///              `cond(cond(x))` — one level down; or
///              (Rytter rule) `cond(x) := cond(cond(x))` — full doubling;
///   pebble:    if `x` is unpebbled but `cond(x)` is pebbled, pebble `x`.
///
/// Lemma 3.3: with the HLV rule the root of any full binary tree with `n`
/// leaves is pebbled within `2 * ceil(sqrt(n))` moves. With the Rytter rule
/// the count is O(log n) — the move-count half of the work/moves trade-off
/// this paper makes against Rytter's algorithm.
///
/// All three operations are evaluated synchronously: reads see the state
/// from before the operation (double-buffered), matching the PRAM model.

#include <cstddef>
#include <vector>

#include "trees/full_binary_tree.hpp"

namespace subdp::trees {

/// Which square rule the game uses.
enum class SquareRule {
  kOneLevel,      ///< This paper's rule: descend one level per move.
  kPathDoubling,  ///< Rytter's rule: jump to cond(cond(x)).
};

[[nodiscard]] const char* to_string(SquareRule rule) noexcept;

/// Mutable game state on one (fixed) tree.
class PebbleGame {
 public:
  /// The game keeps a reference to `tree`, which must outlive it.
  explicit PebbleGame(const FullBinaryTree& tree,
                      SquareRule rule = SquareRule::kOneLevel);
  /// Guard against dangling references from temporaries.
  explicit PebbleGame(FullBinaryTree&& tree,
                      SquareRule rule = SquareRule::kOneLevel) = delete;

  /// Executes one move (activate; square; pebble). Counts it.
  void move();

  /// The three phases of a move, exposed individually so tests can examine
  /// intermediate states (e.g. invariant (b) between square and pebble).
  /// A complete move is activate(); square(); pebble(); — only `move()`
  /// increments the move counter, so callers driving phases manually must
  /// not mix the two styles within one move.
  void activate();
  void square();
  void pebble();

  /// Plays until the root is pebbled or `max_moves` have been made.
  /// Returns the number of moves made in this call.
  std::size_t run_until_root(std::size_t max_moves);

  [[nodiscard]] bool root_pebbled() const {
    return pebbled_[static_cast<std::size_t>(tree_->root())];
  }
  [[nodiscard]] bool pebbled(NodeId x) const {
    return pebbled_[static_cast<std::size_t>(x)];
  }
  [[nodiscard]] NodeId cond(NodeId x) const {
    return cond_[static_cast<std::size_t>(x)];
  }
  [[nodiscard]] std::size_t moves_made() const noexcept { return moves_; }
  [[nodiscard]] const FullBinaryTree& tree() const noexcept { return *tree_; }
  [[nodiscard]] SquareRule rule() const noexcept { return rule_; }

  /// Number of currently pebbled nodes.
  [[nodiscard]] std::size_t pebble_count() const;

  /// Lemma 3.3 invariant (a): after `2k` moves every node with
  /// `size(x) <= k^2` is pebbled. Call with `k = moves_made() / 2`.
  /// (Holds for the HLV rule; the Rytter rule is strictly faster.)
  [[nodiscard]] bool invariant_a_holds(std::size_t k) const;

  /// Lemma 3.3 invariant (b): after `2k` moves, for every unpebbled node
  /// `x`: `size(x) - size(cond(x)) >= 2k + 1`, or no son of `cond(x)` is
  /// pebbled, or `cond(x)` is pebbled. (HLV rule only; the paper states
  /// the invariant as part of a proof sketch — evaluate it between the
  /// square and pebble phases, where the synchronous reads it refers to
  /// are still in effect.)
  [[nodiscard]] bool invariant_b_holds(std::size_t k) const;

  /// Structural sanity: `cond(x)` is always `x` or a descendant of `x`,
  /// and pebbles are never removed.
  [[nodiscard]] bool pointers_consistent() const;

 private:
  const FullBinaryTree* tree_;
  SquareRule rule_;
  std::vector<std::uint8_t> pebbled_;
  std::vector<NodeId> cond_;
  // Scratch double buffers reused across moves.
  std::vector<std::uint8_t> pebbled_next_;
  std::vector<NodeId> cond_next_;
  std::size_t moves_ = 0;
};

}  // namespace subdp::trees
