#include "trees/pebble_game.hpp"

namespace subdp::trees {

const char* to_string(SquareRule rule) noexcept {
  switch (rule) {
    case SquareRule::kOneLevel:
      return "one-level";
    case SquareRule::kPathDoubling:
      return "path-doubling";
  }
  return "unknown";
}

PebbleGame::PebbleGame(const FullBinaryTree& tree, SquareRule rule)
    : tree_(&tree), rule_(rule) {
  const std::size_t total = tree.node_count();
  pebbled_.assign(total, 0);
  cond_.resize(total);
  for (NodeId x = 0; static_cast<std::size_t>(x) < total; ++x) {
    cond_[static_cast<std::size_t>(x)] = x;
    if (tree.is_leaf(x)) pebbled_[static_cast<std::size_t>(x)] = 1;
  }
  pebbled_next_ = pebbled_;
  cond_next_ = cond_;
}

void PebbleGame::activate() {
  // Reads pebbled_ (stable during this operation) and each node's own
  // cond; writes each node's own cond — safe in place.
  const auto total = static_cast<NodeId>(tree_->node_count());
  for (NodeId x = 0; x < total; ++x) {
    const auto xi = static_cast<std::size_t>(x);
    if (cond_[xi] != x || tree_->is_leaf(x)) continue;
    const NodeId l = tree_->left(x);
    const NodeId r = tree_->right(x);
    const bool lp = pebbled_[static_cast<std::size_t>(l)] != 0;
    const bool rp = pebbled_[static_cast<std::size_t>(r)] != 0;
    if (lp || rp) {
      // Point at the *other* child (pebbled or not). If both are pebbled
      // either choice is valid; we mirror the paper and take the left
      // child's sibling first, i.e. cond := the non-pebbled one if there
      // is one, else the right child.
      cond_[xi] = lp ? r : l;
    }
  }
}

void PebbleGame::square() {
  // Reads cond of other nodes: double-buffer for synchronous semantics.
  const auto total = static_cast<NodeId>(tree_->node_count());
  cond_next_ = cond_;
  for (NodeId x = 0; x < total; ++x) {
    const auto xi = static_cast<std::size_t>(x);
    const NodeId c = cond_[xi];
    const NodeId cc = cond_[static_cast<std::size_t>(c)];
    if (cc == c) continue;
    if (rule_ == SquareRule::kPathDoubling) {
      cond_next_[xi] = cc;
    } else {
      // One-level rule: descend to the child of cond(x) that is an
      // ancestor of cond(cond(x)). cc is a strict descendant of c, so
      // exactly one child qualifies.
      const NodeId l = tree_->left(c);
      cond_next_[xi] = tree_->is_ancestor(l, cc) ? l : tree_->right(c);
    }
  }
  cond_.swap(cond_next_);
}

void PebbleGame::pebble() {
  // Reads pebbled of cond(x), writes pebbled of x: double-buffer.
  const auto total = static_cast<NodeId>(tree_->node_count());
  pebbled_next_ = pebbled_;
  for (NodeId x = 0; x < total; ++x) {
    const auto xi = static_cast<std::size_t>(x);
    if (pebbled_[xi] == 0 &&
        pebbled_[static_cast<std::size_t>(cond_[xi])] != 0) {
      pebbled_next_[xi] = 1;
    }
  }
  pebbled_.swap(pebbled_next_);
}

void PebbleGame::move() {
  activate();
  square();
  pebble();
  ++moves_;
}

std::size_t PebbleGame::run_until_root(std::size_t max_moves) {
  std::size_t made = 0;
  while (!root_pebbled() && made < max_moves) {
    move();
    ++made;
  }
  return made;
}

std::size_t PebbleGame::pebble_count() const {
  std::size_t count = 0;
  for (const auto p : pebbled_) count += p;
  return count;
}

bool PebbleGame::invariant_a_holds(std::size_t k) const {
  const auto total = static_cast<NodeId>(tree_->node_count());
  for (NodeId x = 0; x < total; ++x) {
    if (tree_->size(x) <= k * k && !pebbled(x)) return false;
  }
  return true;
}

bool PebbleGame::invariant_b_holds(std::size_t k) const {
  const auto total = static_cast<NodeId>(tree_->node_count());
  for (NodeId x = 0; x < total; ++x) {
    if (pebbled(x)) continue;
    const NodeId c = cond(x);
    if (pebbled(c)) continue;
    if (tree_->is_leaf(c)) continue;  // leaves are pebbled; defensive
    const bool son_pebbled =
        pebbled(tree_->left(c)) || pebbled(tree_->right(c));
    if (!son_pebbled) continue;
    if (tree_->size(x) - tree_->size(c) >= 2 * k + 1) continue;
    return false;
  }
  return true;
}

bool PebbleGame::pointers_consistent() const {
  const auto total = static_cast<NodeId>(tree_->node_count());
  for (NodeId x = 0; x < total; ++x) {
    if (!tree_->is_ancestor(x, cond(x))) return false;
    if (tree_->is_leaf(x) && !pebbled(x)) return false;
  }
  return true;
}

}  // namespace subdp::trees
