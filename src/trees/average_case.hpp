#pragma once

/// \file average_case.hpp
/// Exact evaluation of the Sec. 6 average-case recurrence.
///
/// With the optimal split uniform on `(i, j)` at every node, the expected
/// number of moves to pebble the root of an n-leaf tree is modelled by
///
///   T(1) = 0,
///   T(n) = 1 + (1/(n-1)) * sum_{i=1}^{n-1} max(T(i), T(n-i)),
///
/// which the paper shows is O(log n). We evaluate T exactly (O(n) total via
/// prefix sums and the monotonicity T(i) <= T(j) for i <= j) so experiment
/// E3 can compare the measured mean move count of simulated random trees
/// against the recurrence's prediction.

#include <cstddef>
#include <vector>

namespace subdp::trees {

/// Returns `T[0 .. max_n]` (index 0 unused, `T[1] = 0`).
[[nodiscard]] std::vector<double> average_move_recurrence(std::size_t max_n);

}  // namespace subdp::trees
