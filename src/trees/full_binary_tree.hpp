#pragma once

/// \file full_binary_tree.hpp
/// Arena-allocated full binary trees over leaf intervals.
///
/// The paper's trees (Sec. 2) have nodes labelled by pairs `(i,j)`,
/// `0 <= i < j <= n`: an internal node `(i,j)` has children `(i,k)` and
/// `(k,j)` for some split `i < k < j`, and leaves are `(i,i+1)`. A tree
/// with `n` leaves therefore has exactly `2n - 1` nodes and every internal
/// node has two children ("full" in the paper's Definition 3.1).
///
/// Nodes live in a flat arena indexed by `NodeId`; construction is
/// iterative so that degenerate (skewed) trees with millions of leaves do
/// not overflow the call stack.

#include <cstdint>
#include <functional>
#include <vector>

#include "support/assert.hpp"

namespace subdp::trees {

/// Index into the node arena.
using NodeId = std::int32_t;

/// Sentinel for "no node" (parent of the root, children of leaves).
inline constexpr NodeId kNoNode = -1;

/// Immutable full binary tree over the leaf interval `[0, n_leaves)`.
class FullBinaryTree {
 public:
  /// Chooses the split point `k` (with `lo < k < hi`) for the node covering
  /// leaves `[lo, hi)` at depth `depth` below the root.
  using SplitFn =
      std::function<std::size_t(std::size_t lo, std::size_t hi,
                                std::size_t depth)>;

  /// An empty placeholder (no nodes); assign a built tree before use.
  FullBinaryTree() = default;

  /// Builds the tree determined by `split` over `n_leaves >= 1` leaves.
  static FullBinaryTree build(std::size_t n_leaves, const SplitFn& split);

  /// Number of leaves `n`.
  [[nodiscard]] std::size_t leaf_count() const noexcept { return n_leaves_; }

  /// Total number of nodes (`2n - 1`).
  [[nodiscard]] std::size_t node_count() const noexcept {
    return lo_.size();
  }

  /// The root node id (always 0).
  [[nodiscard]] NodeId root() const noexcept { return 0; }

  [[nodiscard]] bool is_leaf(NodeId x) const {
    return hi(x) - lo(x) == 1;
  }

  /// Interval bounds: node `x` covers leaves `[lo(x), hi(x))`; in the
  /// paper's pair notation the node is `(lo, hi)`.
  [[nodiscard]] std::size_t lo(NodeId x) const {
    SUBDP_ASSERT(valid(x));
    return lo_[static_cast<std::size_t>(x)];
  }
  [[nodiscard]] std::size_t hi(NodeId x) const {
    SUBDP_ASSERT(valid(x));
    return hi_[static_cast<std::size_t>(x)];
  }

  /// `size(x)` in the paper's sense: number of leaves below `x`.
  [[nodiscard]] std::size_t size(NodeId x) const { return hi(x) - lo(x); }

  [[nodiscard]] NodeId left(NodeId x) const {
    SUBDP_ASSERT(valid(x));
    return left_[static_cast<std::size_t>(x)];
  }
  [[nodiscard]] NodeId right(NodeId x) const {
    SUBDP_ASSERT(valid(x));
    return right_[static_cast<std::size_t>(x)];
  }
  [[nodiscard]] NodeId parent(NodeId x) const {
    SUBDP_ASSERT(valid(x));
    return parent_[static_cast<std::size_t>(x)];
  }

  /// The split point of an internal node: its children are
  /// `(lo, split)` and `(split, hi)`.
  [[nodiscard]] std::size_t split(NodeId x) const {
    SUBDP_ASSERT(!is_leaf(x));
    return hi(left(x));
  }

  /// True iff `a` is an ancestor of `b` (every node is its own ancestor).
  /// O(1) via interval containment.
  [[nodiscard]] bool is_ancestor(NodeId a, NodeId b) const {
    return lo(a) <= lo(b) && hi(b) <= hi(a);
  }

  /// Locates the node with interval `(lo, hi)` by descending from the
  /// root; returns `kNoNode` if the tree has no such node.
  [[nodiscard]] NodeId node_at(std::size_t lo, std::size_t hi) const;

  /// Longest root-to-leaf path length in edges.
  [[nodiscard]] std::size_t height() const;

  /// Ids of all leaves, ordered by interval.
  [[nodiscard]] std::vector<NodeId> leaves() const;

  /// Structural self-check (sizes, parents, intervals); used by tests.
  [[nodiscard]] bool validate() const;

 private:
  [[nodiscard]] bool valid(NodeId x) const noexcept {
    return x >= 0 && static_cast<std::size_t>(x) < lo_.size();
  }

  std::size_t n_leaves_ = 0;
  // Structure-of-arrays layout: hot loops touch only the fields they need.
  std::vector<std::uint32_t> lo_;
  std::vector<std::uint32_t> hi_;
  std::vector<NodeId> left_;
  std::vector<NodeId> right_;
  std::vector<NodeId> parent_;
};

}  // namespace subdp::trees
