#include "trees/chain_decomposition.hpp"

#include <numeric>

#include "support/stats.hpp"

namespace subdp::trees {

ChainDecomposition decompose(const FullBinaryTree& tree, NodeId x) {
  ChainDecomposition d;
  const std::size_t size = tree.size(x);
  // i is the unique integer with i^2 < size <= (i+1)^2.
  d.i = support::ceil_sqrt(size) - 1;
  const std::size_t threshold = d.i * d.i;

  // The "at most one heavy child" argument needs (i-1)^2 > 0, i.e. i >= 2
  // (the paper notes 2(i^2+1) > (i+1)^2 "for i > 1"). For i <= 1 the
  // subtree has at most 4 leaves and the lemma's base case covers it; we
  // return the trivial chain {x}.
  if (d.i <= 1) {
    d.chain.push_back(x);
    if (!tree.is_leaf(x)) {
      d.terminal_child_sizes = {tree.size(tree.left(x)),
                                tree.size(tree.right(x))};
    }
    return d;
  }

  NodeId v = x;
  for (;;) {
    d.chain.push_back(v);
    if (tree.is_leaf(v)) break;
    const NodeId l = tree.left(v);
    const NodeId r = tree.right(v);
    const bool l_heavy = tree.size(l) > threshold;
    const bool r_heavy = tree.size(r) > threshold;
    // At most one child can exceed i^2 (2(i^2+1) > (i+1)^2 for i >= 2).
    SUBDP_ASSERT(!(l_heavy && r_heavy));
    if (l_heavy && !r_heavy) {
      d.off_chain_sizes.push_back(tree.size(r));
      v = l;
    } else if (r_heavy && !l_heavy) {
      d.off_chain_sizes.push_back(tree.size(l));
      v = r;
    } else {
      d.terminal_child_sizes = {tree.size(l), tree.size(r)};
      break;
    }
  }
  return d;
}

bool verify_chain_bounds(const FullBinaryTree& tree,
                         const ChainDecomposition& d) {
  const std::size_t i = d.i;
  if (d.chain.empty()) return false;
  if (i <= 1) return d.chain.size() == 1;  // trivial chain (base case)
  if (d.chain.size() > 2 * i + 1) return false;
  for (const NodeId v : d.chain) {
    if (tree.size(v) <= i * i) return false;
  }
  for (const std::size_t s : d.terminal_child_sizes) {
    if (s > i * i) return false;
  }
  const std::size_t off_total = std::accumulate(
      d.off_chain_sizes.begin(), d.off_chain_sizes.end(), std::size_t{0});
  if (off_total > 2 * i) return false;
  return true;
}

}  // namespace subdp::trees
