#include "trees/generators.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace subdp::trees {

const char* to_string(TreeShape shape) noexcept {
  switch (shape) {
    case TreeShape::kComplete:
      return "complete";
    case TreeShape::kLeftSkewed:
      return "left-skewed";
    case TreeShape::kRightSkewed:
      return "right-skewed";
    case TreeShape::kZigzag:
      return "zigzag";
    case TreeShape::kRandom:
      return "random";
    case TreeShape::kBiasedRandom:
      return "biased-random";
  }
  return "unknown";
}

std::optional<TreeShape> shape_from_string(const std::string& name) noexcept {
  for (const TreeShape s : kAllShapes) {
    if (name == to_string(s)) return s;
  }
  return std::nullopt;
}

FullBinaryTree make_tree(TreeShape shape, std::size_t n_leaves,
                         support::Rng* rng) {
  SUBDP_REQUIRE(n_leaves >= 1, "need at least one leaf");
  switch (shape) {
    case TreeShape::kComplete:
      return FullBinaryTree::build(
          n_leaves, [](std::size_t lo, std::size_t hi, std::size_t) {
            return lo + (hi - lo) / 2;
          });
    case TreeShape::kLeftSkewed:
      // Left child carries all but one leaf: spine descends leftward.
      return FullBinaryTree::build(
          n_leaves, [](std::size_t, std::size_t hi, std::size_t) {
            return hi - 1;
          });
    case TreeShape::kRightSkewed:
      return FullBinaryTree::build(
          n_leaves, [](std::size_t lo, std::size_t, std::size_t) {
            return lo + 1;
          });
    case TreeShape::kZigzag:
      // The spine turns at every level (Fig. 2a): even depths shed a leaf
      // on the left, odd depths shed a leaf on the right.
      return FullBinaryTree::build(
          n_leaves, [](std::size_t lo, std::size_t hi, std::size_t depth) {
            return depth % 2 == 0 ? lo + 1 : hi - 1;
          });
    case TreeShape::kRandom:
      SUBDP_REQUIRE(rng != nullptr, "random shape requires an Rng");
      return FullBinaryTree::build(
          n_leaves, [rng](std::size_t lo, std::size_t hi, std::size_t) {
            return static_cast<std::size_t>(rng->uniform_int(
                static_cast<std::int64_t>(lo) + 1,
                static_cast<std::int64_t>(hi) - 1));
          });
    case TreeShape::kBiasedRandom:
      SUBDP_REQUIRE(rng != nullptr, "biased-random shape requires an Rng");
      return FullBinaryTree::build(
          n_leaves, [rng](std::size_t lo, std::size_t hi, std::size_t) {
            // With probability 1/2 shed a single leaf on a random side,
            // otherwise split uniformly: caterpillar-ish trees.
            if (rng->bernoulli(0.5)) {
              return rng->bernoulli(0.5) ? lo + 1 : hi - 1;
            }
            return static_cast<std::size_t>(rng->uniform_int(
                static_cast<std::int64_t>(lo) + 1,
                static_cast<std::int64_t>(hi) - 1));
          });
  }
  SUBDP_REQUIRE(false, "unhandled tree shape");
  return FullBinaryTree::build(1, {});  // unreachable
}

}  // namespace subdp::trees
