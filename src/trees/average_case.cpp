#include "trees/average_case.hpp"

#include "support/assert.hpp"

namespace subdp::trees {

std::vector<double> average_move_recurrence(std::size_t max_n) {
  SUBDP_REQUIRE(max_n >= 1, "max_n must be at least 1");
  std::vector<double> t(max_n + 1, 0.0);
  std::vector<double> prefix(max_n + 1, 0.0);  // prefix[i] = sum_{j<=i} T(j)
  t[1] = 0.0;
  prefix[1] = 0.0;
  for (std::size_t n = 2; n <= max_n; ++n) {
    // max(T(i), T(n-i)) = T(max(i, n-i)) by monotonicity of T.
    // Summing i = 1..n-1: every m in (n/2, n-1] appears twice (as i and
    // n-i); if n is even, m = n/2 appears once.
    const std::size_t half = n / 2;
    double sum = 2.0 * (prefix[n - 1] - prefix[half]);
    if (n % 2 == 0) sum += t[half];
    t[n] = 1.0 + sum / static_cast<double>(n - 1);
    prefix[n] = prefix[n - 1] + t[n];
  }
  return t;
}

}  // namespace subdp::trees
