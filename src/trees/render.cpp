#include "trees/render.hpp"

#include <sstream>

namespace subdp::trees {

std::string render_sideways(
    const FullBinaryTree& tree,
    const std::function<std::string(NodeId)>& decorate) {
  std::ostringstream os;
  // Reverse in-order traversal (right subtree first) so the right subtree
  // prints on top; role: 0 = root, 1 = upper (right) child, 2 = lower.
  std::function<void(NodeId, const std::string&, int)> emit =
      [&](NodeId x, const std::string& prefix, int role) {
        const bool leaf = tree.is_leaf(x);
        if (!leaf) {
          emit(tree.right(x),
               prefix + (role == 2 ? "|   " : "    "), 1);
        }
        os << prefix;
        if (role == 1) {
          os << ".-- ";
        } else if (role == 2) {
          os << "`-- ";
        }
        os << '(' << tree.lo(x) << ',' << tree.hi(x) << ')';
        if (decorate) os << ' ' << decorate(x);
        os << '\n';
        if (!leaf) {
          emit(tree.left(x),
               prefix + (role == 1 ? "|   " : "    "), 2);
        }
      };
  emit(tree.root(), "", 0);
  return os.str();
}

}  // namespace subdp::trees
