#include "trees/full_binary_tree.hpp"

#include <algorithm>
#include <stack>

namespace subdp::trees {

FullBinaryTree FullBinaryTree::build(std::size_t n_leaves,
                                     const SplitFn& split) {
  SUBDP_REQUIRE(n_leaves >= 1, "a tree needs at least one leaf");
  FullBinaryTree t;
  t.n_leaves_ = n_leaves;
  const std::size_t total = 2 * n_leaves - 1;
  t.lo_.reserve(total);
  t.hi_.reserve(total);
  t.left_.reserve(total);
  t.right_.reserve(total);
  t.parent_.reserve(total);

  struct Frame {
    std::size_t lo, hi, depth;
    NodeId parent;
    bool is_left;
  };
  std::stack<Frame> todo;
  todo.push(Frame{0, n_leaves, 0, kNoNode, false});
  while (!todo.empty()) {
    const Frame f = todo.top();
    todo.pop();
    const auto id = static_cast<NodeId>(t.lo_.size());
    t.lo_.push_back(static_cast<std::uint32_t>(f.lo));
    t.hi_.push_back(static_cast<std::uint32_t>(f.hi));
    t.left_.push_back(kNoNode);
    t.right_.push_back(kNoNode);
    t.parent_.push_back(f.parent);
    if (f.parent != kNoNode) {
      auto& slot = f.is_left ? t.left_[static_cast<std::size_t>(f.parent)]
                             : t.right_[static_cast<std::size_t>(f.parent)];
      slot = id;
    }
    if (f.hi - f.lo > 1) {
      const std::size_t k = split(f.lo, f.hi, f.depth);
      SUBDP_REQUIRE(f.lo < k && k < f.hi,
                    "split point must lie strictly inside the interval");
      // Push right first so the left child is created (and numbered) first.
      todo.push(Frame{k, f.hi, f.depth + 1, id, false});
      todo.push(Frame{f.lo, k, f.depth + 1, id, true});
    }
  }
  SUBDP_ASSERT(t.lo_.size() == total);
  return t;
}

NodeId FullBinaryTree::node_at(std::size_t lo_q, std::size_t hi_q) const {
  if (lo_q >= hi_q || hi_q > n_leaves_) return kNoNode;
  NodeId x = root();
  for (;;) {
    if (lo(x) == lo_q && hi(x) == hi_q) return x;
    if (is_leaf(x)) return kNoNode;
    const NodeId l = left(x);
    if (lo_q >= lo(l) && hi_q <= hi(l)) {
      x = l;
      continue;
    }
    const NodeId r = right(x);
    if (lo_q >= lo(r) && hi_q <= hi(r)) {
      x = r;
      continue;
    }
    return kNoNode;  // interval straddles the split: not a node
  }
}

std::size_t FullBinaryTree::height() const {
  // Iterative: depth of each node via parent links in creation order
  // (parents are always created before their children).
  std::vector<std::uint32_t> depth(node_count(), 0);
  std::size_t best = 0;
  for (std::size_t x = 1; x < node_count(); ++x) {
    const auto p = static_cast<std::size_t>(parent_[x]);
    depth[x] = depth[p] + 1;
    best = std::max(best, static_cast<std::size_t>(depth[x]));
  }
  return best;
}

std::vector<NodeId> FullBinaryTree::leaves() const {
  std::vector<NodeId> out(n_leaves_, kNoNode);
  for (std::size_t x = 0; x < node_count(); ++x) {
    if (hi_[x] - lo_[x] == 1) out[lo_[x]] = static_cast<NodeId>(x);
  }
  return out;
}

bool FullBinaryTree::validate() const {
  if (node_count() != 2 * n_leaves_ - 1) return false;
  if (lo(root()) != 0 || hi(root()) != n_leaves_) return false;
  for (NodeId x = 0; static_cast<std::size_t>(x) < node_count(); ++x) {
    if (lo(x) >= hi(x)) return false;
    const bool leaf = is_leaf(x);
    if (leaf != (left(x) == kNoNode) || leaf != (right(x) == kNoNode)) {
      return false;  // full binary tree: zero or two children
    }
    if (!leaf) {
      const NodeId l = left(x);
      const NodeId r = right(x);
      if (lo(l) != lo(x) || hi(r) != hi(x) || hi(l) != lo(r)) return false;
      if (parent(l) != x || parent(r) != x) return false;
    }
    if (x == root()) {
      if (parent(x) != kNoNode) return false;
    } else if (parent(x) == kNoNode) {
      return false;
    }
  }
  return true;
}

}  // namespace subdp::trees
