#pragma once

/// \file snapshot_store.hpp
/// A directory of plan snapshots: one file per shape, shape-keyed names,
/// mmap-backed load, asynchronous temp-file + validate + rename save.
///
/// The store is the persistence tier under `serve::PlanCache` (threaded
/// in via `ServiceOptions::snapshot_dir`): a cache miss consults
/// `load(n, options)` before building geometry, and freshly built plans
/// are queued to a background writer thread so the builder never blocks
/// on disk. The cache's LRU eviction never touches the files — the disk
/// is the cheap tier, so a re-requested evicted shape reloads (a
/// `snapshot hit`) instead of rebuilding.
///
/// Durability discipline (the PR 6 artifact idiom): `save` writes to
/// `<name>.tmp`, flushes, *re-reads and fully decodes* the temp file
/// (checksum included), and only then renames it over the final name —
/// rename is atomic on POSIX, so a crash at any point leaves either the
/// old good file or no file, never a truncated artifact under the real
/// name. A failed validation removes the temp and counts a
/// `write_failure`; it never installs.
///
/// Load path: the file is mapped read-only (`mmap`, `MAP_PRIVATE`) where
/// available, so the decoded plan's geometry arrays alias the page cache
/// through `core::ShapeArray` views — no copy, and the mapping is held
/// alive by the arrays' owner handles for exactly as long as the plan
/// lives. Where mmap is unavailable the store falls back to one buffered
/// read into an owned buffer; decode is identical. *Any* load failure —
/// missing file, short file, bad magic/version/ABI, key mismatch,
/// checksum mismatch, structural disagreement — is a miss: the caller
/// rebuilds from scratch and the eventual save overwrites the bad file.
/// Corrupt bytes are never trusted and never fatal.
///
/// Thread-safety: all methods may be called from any thread; counters
/// are atomic, the writer queue has its own lock, and file-level races
/// (two processes saving the same shape) are benign — both write valid
/// bytes and rename atomically, so readers see one of them.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/solve_plan.hpp"
#include "core/solver_types.hpp"

namespace subdp::snapshot {

/// One consistent snapshot of a store's counters. Without a store every
/// counter a service reports is zero; with one, every plan construction
/// consults the store exactly once, so `hits + misses` counts those
/// consultations and `rejected <= misses` isolates the corrupt-file
/// subset (present-but-untrusted files).
struct SnapshotStoreStats {
  std::uint64_t hits = 0;       ///< Loads that produced a plan.
  std::uint64_t misses = 0;     ///< Loads that did not (absent or bad).
  std::uint64_t rejected = 0;   ///< Misses where a file existed but was
                                ///< corrupt/truncated/mismatched.
  std::uint64_t writes_completed = 0;  ///< Snapshots installed on disk.
  std::uint64_t write_failures = 0;    ///< Saves that could not install.
};

/// Plan snapshot directory; see the file comment.
class SnapshotStore {
 public:
  /// Opens (creating if needed) `directory`. Throws when the directory
  /// cannot be created. Starts the background writer thread.
  explicit SnapshotStore(std::string directory);

  /// Drains the writer queue (every queued save completes or fails, none
  /// is dropped), then joins the writer.
  ~SnapshotStore();

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Rehydrates the plan for `(n, options)` from its snapshot file, or
  /// returns null (counting a miss) when the file is absent or fails any
  /// validation layer. Never throws on bad bytes.
  [[nodiscard]] std::shared_ptr<const core::SolvePlan> load(
      std::size_t n, const core::SublinearOptions& options);

  /// Synchronously encodes, writes, validates and installs `plan`'s
  /// snapshot (temp + validate + rename). Returns whether it installed.
  bool save(const std::shared_ptr<const core::SolvePlan>& plan);

  /// Queues `plan` for the background writer (the builder-thread path:
  /// plan construction never waits on disk). The queued `shared_ptr`
  /// keeps the plan alive until written, even if the cache evicts it.
  void save_async(std::shared_ptr<const core::SolvePlan> plan);

  /// Blocks until every save queued so far has been written (or failed).
  void flush();

  /// Removes the snapshot file for `(n, options)`; returns whether a
  /// file was removed.
  bool evict(std::size_t n, const core::SublinearOptions& options);

  /// Snapshot file names (not paths) currently in the directory.
  [[nodiscard]] std::vector<std::string> scan() const;

  /// Shapes listed in the prewarm manifest (`prewarm.txt`: one `n` per
  /// line, `#` comments), in file order. Malformed lines are skipped —
  /// a damaged manifest degrades prewarming, never startup.
  [[nodiscard]] std::vector<std::size_t> read_manifest() const;

  /// Writes the prewarm manifest (temp + rename).
  void write_manifest(const std::vector<std::size_t>& shapes);

  [[nodiscard]] SnapshotStoreStats stats() const;

  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

  /// The manifest's file name inside the store directory.
  static constexpr const char* kManifestFile = "prewarm.txt";

 private:
  [[nodiscard]] std::string path_for(std::size_t n,
                                     const core::SublinearOptions& options)
      const;

  void writer_loop();

  std::string directory_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> writes_completed_{0};
  std::atomic<std::uint64_t> write_failures_{0};

  mutable std::mutex writer_mutex_;
  std::condition_variable writer_cv_;
  std::condition_variable writer_idle_;
  std::deque<std::shared_ptr<const core::SolvePlan>> writer_queue_;
  std::size_t writes_in_flight_ = 0;
  bool writer_stop_ = false;
  std::thread writer_thread_;  ///< Last member: joined first.
};

}  // namespace subdp::snapshot
