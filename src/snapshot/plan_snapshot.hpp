#pragma once

/// \file plan_snapshot.hpp
/// Versioned on-disk encoding of a `core::SolvePlan`'s shape geometry.
///
/// A plan is a deterministic function of `(n, SublinearOptions)`, and
/// building one is the expensive cold-start step — O(n^2 B^2) entry lists,
/// offset tables and slot maps. A *snapshot* persists exactly that
/// instance-independent state so a restarted service rehydrates the plan
/// from disk instead of recomputing it:
///
///   [ SnapshotHeader : 160 bytes, trivially copyable ]
///   [ payload: 7 sections, each 16-byte aligned, zero-padded ]
///     1. layout length_base     (std::size_t per element)
///     2. layout tetra_base      (banded only; empty for dense)
///     3. layout entries         (core::Quad)
///     4. shape pairs            (core::detail::Pair)
///     5. shape pair offsets     (std::size_t)
///     6. shape entry slots      (std::uint32_t; delta buffering only)
///     7. shape root blocks      (core::detail::RootBlock; ditto)
///
/// The header carries a magic, the format version, an ABI tag (field
/// sizes + endianness — this is a *host* format, not an interchange
/// format), the full plan key (`n` plus every option field that shapes a
/// plan), the derived scalars (`2*ceil(sqrt n)` bound, effective band,
/// iteration cap, split-site total), the seven section counts, and an
/// FNV-1a-64 checksum over the payload.
///
/// `decode_plan` trusts nothing: magic, version, ABI tag, embedded key ==
/// requested key, section counts x element sizes == payload size == what
/// the caller handed in, checksum — and then the structural layers verify
/// again (layout offset tables are recomputed from `(n, band)` and
/// compared; `EngineShape::restore` re-derives pair offsets and the
/// split-site total; `SolvePlan::restore` re-runs option validation and
/// cross-checks the derived scalars). Any disagreement throws, which
/// callers (`SnapshotStore`) treat as "no snapshot — rebuild". A decoded
/// plan aliases the caller's buffer via `core::ShapeArray` views (zero
/// copy when the buffer is an mmap), kept alive by the `owner` handle.
///
/// Bit-identity contract: a decoded plan is indistinguishable from a
/// freshly built one — same geometry bytes (checksummed), same derived
/// scalars (cross-checked) — so every solve through it produces
/// bit-identical results (tests/test_snapshot_roundtrip.cpp asserts this
/// across both layouts and all bench families).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/solve_plan.hpp"
#include "core/solver_types.hpp"

namespace subdp::snapshot {

/// Bumped on any incompatible change to the header or payload layout;
/// decoders reject other versions (the caller rebuilds and overwrites).
inline constexpr std::uint32_t kFormatVersion = 1;

/// "SUBDPSNP" — identifies a plan snapshot regardless of version.
inline constexpr char kMagic[8] = {'S', 'U', 'B', 'D', 'P', 'S', 'N', 'P'};

/// FNV-1a 64-bit over a byte range (the payload checksum).
[[nodiscard]] std::uint64_t fnv1a64(const std::uint8_t* data,
                                    std::size_t size) noexcept;

/// Shape-keyed snapshot file name, `plan-n<N>-k<hash16>.snap`: `n` in the
/// clear for scanability, every option field folded into the hash so two
/// shapes never share a file. A file whose content key disagrees with its
/// name fails `decode_plan`'s key check (the content is authoritative).
[[nodiscard]] std::string snapshot_file_name(
    std::size_t n, const core::SublinearOptions& options);

/// Serialises `plan` (header + payload) into a fresh buffer.
[[nodiscard]] std::vector<std::uint8_t> encode_plan(
    const core::SolvePlan& plan);

/// Rehydrates a plan from `[data, data + size)`, which `owner` keeps
/// alive (an mmap handle or an owned read buffer); the returned plan's
/// geometry arrays alias that memory. Verifies everything (see the file
/// comment) against the *requested* shape `(n, options)` and throws
/// `std::invalid_argument` / `std::runtime_error` on any mismatch —
/// corrupt, truncated, stale-version or wrong-key bytes never produce a
/// plan.
[[nodiscard]] std::shared_ptr<const core::SolvePlan> decode_plan(
    const std::uint8_t* data, std::size_t size,
    std::shared_ptr<const void> owner, std::size_t n,
    const core::SublinearOptions& options);

}  // namespace subdp::snapshot
