#include "snapshot/plan_snapshot.hpp"

#include <bit>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <type_traits>
#include <utility>

#include "core/engine.hpp"
#include "core/pw_banded.hpp"
#include "core/pw_dense.hpp"
#include "core/quad.hpp"
#include "support/assert.hpp"

namespace subdp::snapshot {

namespace {

/// Rejects a snapshot written by a build with different field sizes or
/// byte order (host format, not interchange; see the header comment).
constexpr std::uint32_t kAbiTag =
    (static_cast<std::uint32_t>(sizeof(std::size_t)) << 0) |
    (static_cast<std::uint32_t>(sizeof(core::Quad)) << 8) |
    (static_cast<std::uint32_t>(sizeof(core::detail::Pair)) << 16) |
    (static_cast<std::uint32_t>(sizeof(core::detail::RootBlock)) << 24) |
    ((std::endian::native == std::endian::little ? 1u : 2u) << 28);

/// Sections start 16-byte aligned: the header is 160 bytes and every
/// section is padded up, so an aligned buffer keeps every element type
/// (size_t, Quad, Pair, uint32, RootBlock) naturally aligned.
constexpr std::size_t kSectionAlign = 16;

constexpr std::size_t pad_to_align(std::size_t at) {
  return (at + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

struct SnapshotHeader {
  char magic[8];
  std::uint32_t format_version;
  std::uint32_t abi_tag;
  // The full plan key: n plus every option field that shapes a plan.
  std::uint64_t n;
  std::uint64_t band_width;
  std::uint64_t max_iterations;
  std::uint8_t variant;
  std::uint8_t square_mode;
  std::uint8_t termination;
  std::uint8_t windowed_pebble;
  std::uint8_t delta_buffering;
  std::uint8_t frontier_sweeps;
  std::uint8_t pebble_cursor;
  std::uint8_t incremental_marks;
  std::uint8_t backend;
  std::uint8_t check_crew;
  std::uint8_t record_costs;
  std::uint8_t pad[5];
  // Derived scalars, stored for cross-checking against recomputation.
  std::uint64_t bound;
  std::uint64_t band;
  std::uint64_t cap;
  std::uint64_t total_split_sites;
  // Payload section counts (elements, not bytes), in payload order.
  std::uint64_t length_base_count;
  std::uint64_t tetra_base_count;
  std::uint64_t entry_count;
  std::uint64_t pair_count;
  std::uint64_t pair_offset_count;
  std::uint64_t entry_slot_count;
  std::uint64_t root_block_count;
  std::uint64_t payload_bytes;
  std::uint64_t payload_checksum;  ///< FNV-1a 64 over the payload.
};

static_assert(sizeof(SnapshotHeader) == 160, "snapshot header layout");
static_assert(std::is_trivially_copyable_v<SnapshotHeader>);
static_assert(sizeof(SnapshotHeader) % kSectionAlign == 0);

// `SublinearOptions::profile` is deliberately absent from the snapshot
// key (and from `key_matches`): it toggles per-step engine recording,
// never plan geometry, so profiled and unprofiled requests share one
// snapshot file — the decoded plan adopts whatever options the loading
// request carried. No format bump needed.
void fill_key(SnapshotHeader& h, std::size_t n,
              const core::SublinearOptions& o) {
  h.n = n;
  h.band_width = o.band_width;
  h.max_iterations = o.max_iterations;
  h.variant = static_cast<std::uint8_t>(o.variant);
  h.square_mode = static_cast<std::uint8_t>(o.square_mode);
  h.termination = static_cast<std::uint8_t>(o.termination);
  h.windowed_pebble = o.windowed_pebble ? 1 : 0;
  h.delta_buffering = o.delta_buffering ? 1 : 0;
  h.frontier_sweeps = o.frontier_sweeps ? 1 : 0;
  h.pebble_cursor = o.pebble_cursor ? 1 : 0;
  h.incremental_marks = o.incremental_marks ? 1 : 0;
  h.backend = static_cast<std::uint8_t>(o.machine.backend);
  h.check_crew = o.machine.check_crew ? 1 : 0;
  h.record_costs = o.machine.record_costs ? 1 : 0;
}

[[nodiscard]] bool key_matches(const SnapshotHeader& h, std::size_t n,
                               const core::SublinearOptions& o) {
  SnapshotHeader want{};
  fill_key(want, n, o);
  return h.n == want.n && h.band_width == want.band_width &&
         h.max_iterations == want.max_iterations &&
         h.variant == want.variant && h.square_mode == want.square_mode &&
         h.termination == want.termination &&
         h.windowed_pebble == want.windowed_pebble &&
         h.delta_buffering == want.delta_buffering &&
         h.frontier_sweeps == want.frontier_sweeps &&
         h.pebble_cursor == want.pebble_cursor &&
         h.incremental_marks == want.incremental_marks &&
         h.backend == want.backend && h.check_crew == want.check_crew &&
         h.record_costs == want.record_costs;
}

/// Appends one section to `out`, 16-byte aligned, zero-padded.
template <class T>
void append_section(std::vector<std::uint8_t>& out, const T* data,
                    std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.resize(pad_to_align(out.size()), 0);
  const std::size_t bytes = count * sizeof(T);
  if (bytes == 0) return;
  const std::size_t at = out.size();
  out.resize(at + bytes);
  std::memcpy(out.data() + at, data, bytes);
}

/// Cursor over the payload sections of a buffer being decoded; verifies
/// alignment and bounds, returns a `ShapeArray` view per section.
class SectionReader {
 public:
  SectionReader(const std::uint8_t* payload, std::size_t payload_bytes,
                std::shared_ptr<const void> owner)
      : payload_(payload), bytes_(payload_bytes), owner_(std::move(owner)) {}

  template <class T>
  [[nodiscard]] core::ShapeArray<T> take(std::uint64_t count) {
    at_ = pad_to_align(at_);
    const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
    SUBDP_REQUIRE(bytes / sizeof(T) == count && at_ <= bytes_ &&
                      bytes <= bytes_ - at_,
                  "plan snapshot payload section out of bounds");
    if (count == 0) return {};
    const std::uint8_t* base = payload_ + at_;
    at_ += bytes;
    return core::ShapeArray<T>(reinterpret_cast<const T*>(base),
                               static_cast<std::size_t>(count), owner_);
  }

  [[nodiscard]] std::size_t consumed() const noexcept {
    return pad_to_align(at_);
  }

 private:
  const std::uint8_t* payload_;
  std::size_t bytes_;
  std::size_t at_ = 0;
  std::shared_ptr<const void> owner_;
};

template <class Shape>
void append_shape_payload(std::vector<std::uint8_t>& out, const Shape& shape,
                          SnapshotHeader& h) {
  const auto& layout = *shape.layout;
  h.length_base_count = layout.length_base().size();
  if constexpr (requires { layout.tetra_base(); }) {
    h.tetra_base_count = layout.tetra_base().size();
  }
  h.entry_count = layout.entries().size();
  h.pair_count = shape.pairs.size();
  h.pair_offset_count = shape.pairs_offset_by_length.size();
  h.entry_slot_count = shape.entry_slots.size();
  h.root_block_count = shape.root_blocks.size();
  h.total_split_sites = shape.total_split_sites;

  append_section(out, layout.length_base().data(),
                 layout.length_base().size());
  if constexpr (requires { layout.tetra_base(); }) {
    append_section(out, layout.tetra_base().data(),
                   layout.tetra_base().size());
  } else {
    append_section<std::size_t>(out, nullptr, 0);
  }
  append_section(out, layout.entries().data(), layout.entries().size());
  append_section(out, shape.pairs.data(), shape.pairs.size());
  append_section(out, shape.pairs_offset_by_length.data(),
                 shape.pairs_offset_by_length.size());
  append_section(out, shape.entry_slots.data(), shape.entry_slots.size());
  append_section(out, shape.root_blocks.data(), shape.root_blocks.size());
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) noexcept {
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string snapshot_file_name(std::size_t n,
                               const core::SublinearOptions& options) {
  SnapshotHeader key{};
  fill_key(key, n, options);
  // Hash the key fields only (the fixed-offset prefix after the magic/
  // version words), so the name is a pure function of the shape.
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&key);
  const std::uint64_t hash =
      fnv1a64(bytes + offsetof(SnapshotHeader, n),
              offsetof(SnapshotHeader, pad) - offsetof(SnapshotHeader, n));
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash));
  return "plan-n" + std::to_string(n) + "-k" + hex + ".snap";
}

std::vector<std::uint8_t> encode_plan(const core::SolvePlan& plan) {
  SnapshotHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.format_version = kFormatVersion;
  h.abi_tag = kAbiTag;
  fill_key(h, plan.n(), plan.options());
  h.bound = plan.iteration_bound();
  h.band = plan.effective_band();
  h.cap = plan.iteration_cap();

  std::vector<std::uint8_t> out(sizeof(SnapshotHeader), 0);
  if (plan.banded_shape() != nullptr) {
    append_shape_payload(out, *plan.banded_shape(), h);
  } else if (plan.dense_shape() != nullptr) {
    append_shape_payload(out, *plan.dense_shape(), h);
  }
  // Trivial plans (n == 1) carry no payload: every count stays 0.
  out.resize(pad_to_align(out.size()), 0);

  h.payload_bytes = out.size() - sizeof(SnapshotHeader);
  h.payload_checksum =
      fnv1a64(out.data() + sizeof(SnapshotHeader), h.payload_bytes);
  std::memcpy(out.data(), &h, sizeof(SnapshotHeader));
  return out;
}

std::shared_ptr<const core::SolvePlan> decode_plan(
    const std::uint8_t* data, std::size_t size,
    std::shared_ptr<const void> owner, std::size_t n,
    const core::SublinearOptions& options) {
  SUBDP_REQUIRE(data != nullptr && size >= sizeof(SnapshotHeader),
                "plan snapshot shorter than its header");
  SUBDP_REQUIRE(reinterpret_cast<std::uintptr_t>(data) % kSectionAlign == 0,
                "plan snapshot buffer is not 16-byte aligned");
  SnapshotHeader h;
  std::memcpy(&h, data, sizeof(SnapshotHeader));

  SUBDP_REQUIRE(std::memcmp(h.magic, kMagic, sizeof(kMagic)) == 0,
                "not a plan snapshot (bad magic)");
  SUBDP_REQUIRE(h.format_version == kFormatVersion,
                "plan snapshot format version mismatch");
  SUBDP_REQUIRE(h.abi_tag == kAbiTag,
                "plan snapshot written by an incompatible build (ABI tag)");
  SUBDP_REQUIRE(key_matches(h, n, options),
                "plan snapshot key does not match the requested shape");
  SUBDP_REQUIRE(h.payload_bytes == size - sizeof(SnapshotHeader),
                "plan snapshot payload size disagrees with the file size");
  const std::uint8_t* payload = data + sizeof(SnapshotHeader);
  SUBDP_REQUIRE(fnv1a64(payload, static_cast<std::size_t>(
                                     h.payload_bytes)) == h.payload_checksum,
                "plan snapshot payload checksum mismatch");

  SectionReader reader(payload, static_cast<std::size_t>(h.payload_bytes),
                       std::move(owner));
  auto length_base = reader.take<std::size_t>(h.length_base_count);
  auto tetra_base = reader.take<std::size_t>(h.tetra_base_count);
  auto entries = reader.take<core::Quad>(h.entry_count);
  auto pairs = reader.take<core::detail::Pair>(h.pair_count);
  auto pair_offsets = reader.take<std::size_t>(h.pair_offset_count);
  auto entry_slots = reader.take<std::uint32_t>(h.entry_slot_count);
  auto root_blocks = reader.take<core::detail::RootBlock>(h.root_block_count);
  SUBDP_REQUIRE(reader.consumed() == h.payload_bytes,
                "plan snapshot payload has trailing bytes");

  const auto band = static_cast<std::size_t>(h.band);
  std::shared_ptr<const core::SolvePlan> plan;
  if (n < 2) {
    SUBDP_REQUIRE(h.length_base_count == 0 && h.entry_count == 0 &&
                      h.pair_count == 0,
                  "trivial plan snapshot carries geometry");
    plan = core::SolvePlan::restore(n, options, nullptr, nullptr);
  } else if (options.variant == core::PwVariant::kDense) {
    SUBDP_REQUIRE(h.tetra_base_count == 0,
                  "dense plan snapshot carries banded offsets");
    auto layout = std::make_shared<const core::DensePwLayout>(
        n, std::move(length_base), std::move(entries));
    auto shape = core::detail::EngineShape<core::DensePwTable>::restore(
        std::move(layout), n, band, options, std::move(pairs),
        std::move(pair_offsets), std::move(entry_slots),
        std::move(root_blocks), h.total_split_sites);
    plan = core::SolvePlan::restore(n, options, nullptr, std::move(shape));
  } else {
    auto layout = std::make_shared<const core::BandedPwLayout>(
        n, band, std::move(length_base), std::move(tetra_base),
        std::move(entries));
    auto shape = core::detail::EngineShape<core::BandedPwTable>::restore(
        std::move(layout), n, band, options, std::move(pairs),
        std::move(pair_offsets), std::move(entry_slots),
        std::move(root_blocks), h.total_split_sites);
    plan = core::SolvePlan::restore(n, options, std::move(shape), nullptr);
  }

  // `restore` recomputed the derived scalars from (n, options); the
  // stored copies must agree or the file lied about its shape.
  SUBDP_REQUIRE(plan->iteration_bound() == h.bound &&
                    plan->effective_band() == h.band &&
                    plan->iteration_cap() == h.cap,
                "plan snapshot derived scalars disagree with (n, options)");
  return plan;
}

}  // namespace subdp::snapshot
