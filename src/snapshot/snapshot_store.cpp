#include "snapshot/snapshot_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "snapshot/plan_snapshot.hpp"
#include "support/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SUBDP_SNAPSHOT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SUBDP_SNAPSHOT_HAS_MMAP 0
#endif

namespace subdp::snapshot {

namespace {

namespace fs = std::filesystem;

/// A read-only view of a whole snapshot file plus whatever keeps it
/// alive: an mmap handle or an owned read buffer.
struct FileBytes {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  std::shared_ptr<const void> owner;
};

#if SUBDP_SNAPSHOT_HAS_MMAP
/// Owns one read-only mapping; destruction unmaps. Held alive by the
/// decoded plan's `ShapeArray` owner handles.
struct Mapping {
  void* base = nullptr;
  std::size_t size = 0;
  ~Mapping() {
    if (base != nullptr) ::munmap(base, size);
  }
};

[[nodiscard]] bool map_file(const std::string& path, FileBytes& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return false;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping outlives the descriptor
  if (base == MAP_FAILED) return false;
  auto mapping = std::make_shared<Mapping>();
  mapping->base = base;
  mapping->size = size;
  out.data = static_cast<const std::uint8_t*>(base);
  out.size = size;
  out.owner = std::move(mapping);
  return true;
}
#endif

/// Buffered-read fallback (and the validation read path): one owned copy.
[[nodiscard]] bool read_file(const std::string& path, FileBytes& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  auto buffer = std::make_shared<std::vector<std::uint8_t>>(
      std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return false;
  out.data = buffer->data();
  out.size = buffer->size();
  out.owner = std::move(buffer);
  return true;
}

[[nodiscard]] bool open_file(const std::string& path, FileBytes& out) {
#if SUBDP_SNAPSHOT_HAS_MMAP
  if (map_file(path, out)) return true;
#endif
  return read_file(path, out);
}

}  // namespace

SnapshotStore::SnapshotStore(std::string directory)
    : directory_(std::move(directory)) {
  SUBDP_REQUIRE(!directory_.empty(), "SnapshotStore needs a directory");
  std::error_code ec;
  fs::create_directories(directory_, ec);
  SUBDP_REQUIRE(!ec && fs::is_directory(directory_),
                "SnapshotStore could not create its directory");
  writer_thread_ = std::thread([this] { writer_loop(); });
}

SnapshotStore::~SnapshotStore() {
  {
    const std::lock_guard<std::mutex> lock(writer_mutex_);
    writer_stop_ = true;
  }
  writer_cv_.notify_all();
  writer_thread_.join();  // drains the queue first (see writer_loop)
}

std::string SnapshotStore::path_for(
    std::size_t n, const core::SublinearOptions& options) const {
  return (fs::path(directory_) / snapshot_file_name(n, options)).string();
}

std::shared_ptr<const core::SolvePlan> SnapshotStore::load(
    std::size_t n, const core::SublinearOptions& options) {
  FileBytes bytes;
  if (!open_file(path_for(n, options), bytes)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  try {
    auto plan =
        decode_plan(bytes.data, bytes.size, bytes.owner, n, options);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return plan;
  } catch (...) {
    // Present but untrustworthy (truncated, corrupt, stale version,
    // foreign key): a miss — the caller rebuilds and the write-back
    // atomically replaces this file with good bytes.
    misses_.fetch_add(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
}

bool SnapshotStore::save(const std::shared_ptr<const core::SolvePlan>& plan) {
  SUBDP_REQUIRE(plan != nullptr, "SnapshotStore::save: null plan");
  const std::string final_path = path_for(plan->n(), plan->options());
  const std::string tmp_path = final_path + ".tmp";
  bool installed = false;
  try {
    const std::vector<std::uint8_t> bytes = encode_plan(*plan);
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      if (out) {
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
      }
      if (out) {
        // Validate the *on-disk* bytes end to end (size, key, checksum,
        // structure) before the rename makes them reachable: a partial
        // or mangled write must never shadow a rebuildable shape.
        out.close();
        FileBytes check;
        if (read_file(tmp_path, check) && check.size == bytes.size()) {
          (void)decode_plan(check.data, check.size, check.owner, plan->n(),
                            plan->options());  // throws on any defect
          std::error_code ec;
          fs::rename(tmp_path, final_path, ec);
          installed = !ec;
        }
      }
    }
  } catch (...) {
    installed = false;
  }
  if (installed) {
    writes_completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    write_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return installed;
}

void SnapshotStore::save_async(std::shared_ptr<const core::SolvePlan> plan) {
  SUBDP_REQUIRE(plan != nullptr, "SnapshotStore::save_async: null plan");
  {
    const std::lock_guard<std::mutex> lock(writer_mutex_);
    writer_queue_.push_back(std::move(plan));
  }
  writer_cv_.notify_one();
}

void SnapshotStore::flush() {
  std::unique_lock<std::mutex> lock(writer_mutex_);
  writer_idle_.wait(lock, [&] {
    return writer_queue_.empty() && writes_in_flight_ == 0;
  });
}

void SnapshotStore::writer_loop() {
  for (;;) {
    std::shared_ptr<const core::SolvePlan> plan;
    {
      std::unique_lock<std::mutex> lock(writer_mutex_);
      writer_cv_.wait(
          lock, [&] { return writer_stop_ || !writer_queue_.empty(); });
      if (writer_queue_.empty()) return;  // stopping, and fully drained
      plan = std::move(writer_queue_.front());
      writer_queue_.pop_front();
      ++writes_in_flight_;
    }
    (void)save(plan);  // failure already counted; nothing to propagate
    {
      const std::lock_guard<std::mutex> lock(writer_mutex_);
      --writes_in_flight_;
    }
    writer_idle_.notify_all();
  }
}

bool SnapshotStore::evict(std::size_t n,
                          const core::SublinearOptions& options) {
  std::error_code ec;
  return fs::remove(path_for(n, options), ec) && !ec;
}

std::vector<std::string> SnapshotStore::scan() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (entry.is_regular_file() &&
        entry.path().extension() == ".snap") {
      names.push_back(entry.path().filename().string());
    }
  }
  return names;
}

std::vector<std::size_t> SnapshotStore::read_manifest() const {
  std::vector<std::size_t> shapes;
  std::ifstream in(fs::path(directory_) / kManifestFile);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream parse(line.substr(start));
    std::size_t n = 0;
    if (parse >> n && n >= 1) shapes.push_back(n);
  }
  return shapes;
}

void SnapshotStore::write_manifest(const std::vector<std::size_t>& shapes) {
  const fs::path final_path = fs::path(directory_) / kManifestFile;
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    SUBDP_REQUIRE(bool(out), "SnapshotStore could not write the manifest");
    out << "# subdp prewarm manifest: one instance size per line\n";
    for (const std::size_t n : shapes) out << n << "\n";
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  SUBDP_REQUIRE(!ec, "SnapshotStore could not install the manifest");
}

SnapshotStoreStats SnapshotStore::stats() const {
  SnapshotStoreStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.writes_completed = writes_completed_.load(std::memory_order_relaxed);
  out.write_failures = write_failures_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace subdp::snapshot
