#pragma once

/// \file sublinear_solver.hpp
/// The paper's contribution: the sublinear-time CREW PRAM algorithm for
/// recurrence (*), simulated on a multicore host.
///
/// One iteration applies the three parallel macro-steps
/// `a-activate; a-square; a-pebble` (Sec. 2); after `2*ceil(sqrt n)`
/// iterations every `w'(i,j)` equals the optimum `c(i,j)` (Sec. 4, via the
/// pebbling-game argument of Sec. 3). Options select the dense Sec. 2
/// layout or the banded Sec. 5 layout (O(n^3.5/log n) processors), the
/// Sec. 5 windowed pebble schedule, Rytter-style full squaring (the
/// baseline this paper improves on), and the Sec. 7 termination
/// heuristics. All PRAM work/depth is accounted on an internal `Machine`.
///
/// `SublinearSolver` is the classic one-object facade over the
/// plan/session split (solve_plan.hpp / solve_session.hpp): internally it
/// keys an immutable `SolvePlan` by the instance size and runs a reusable
/// `SolveSession` against it, so solving several same-`n` instances with
/// one solver re-initialises tables in place instead of rebuilding entry
/// lists and reallocating pw storage. Power users hold plans and sessions
/// directly (many sessions per plan, one per worker); batch workloads go
/// through `BatchSolver` (batch_solver.hpp).
///
/// Typical use:
/// ```
/// core::SublinearSolver solver;                 // banded defaults
/// auto result = solver.solve(problem);          // result.cost == c(0,n)
/// auto tree = dp::extract_tree_from_w(problem, result.w);
/// ```
/// The stepping interface (`prepare` / `step` / `current_*` / `finish`)
/// exposes the iteration to tests — in particular the Sec. 4 lock-step
/// comparison against the pebbling game on a known optimal tree. The
/// stepping lifecycle is guarded: `step`, `current_*` and `finish` before
/// `prepare`, or after `finish` without a new `prepare`, fail with a
/// `SUBDP_REQUIRE` diagnostic instead of dereferencing stale state.

#include <memory>

#include "core/solve_plan.hpp"
#include "core/solve_session.hpp"
#include "core/solver_types.hpp"
#include "dp/problem.hpp"
#include "pram/machine.hpp"

namespace subdp::core {

/// Reusable solver configured once, usable on many instances.
class SublinearSolver {
 public:
  explicit SublinearSolver(SublinearOptions options = {});

  /// Solves `problem` to completion under the configured termination mode.
  [[nodiscard]] SublinearResult solve(const dp::Problem& problem);

  // -- Stepping interface (tests, traces, co-simulation) -----------------

  /// Initialises state for `problem` (which must outlive the stepping).
  /// Reuses the cached plan and in-place tables when the size matches the
  /// previous instance; otherwise builds a fresh plan for the new shape.
  void prepare(const dp::Problem& problem);

  /// Runs one iteration; requires `prepare` (and no intervening `finish`).
  IterationOutcome step();

  /// Current `w'(i,j)` / `pw'(i,j,p,q)` values.
  [[nodiscard]] Cost current_w(std::size_t i, std::size_t j) const;
  [[nodiscard]] Cost current_pw(std::size_t i, std::size_t j, std::size_t p,
                                std::size_t q) const;

  /// Iterations run since `prepare`.
  [[nodiscard]] std::size_t iterations_done() const;

  /// Packages the current state into a result (cost, w table, traces).
  /// Finishes the stepping cycle: stepping again requires `prepare`.
  [[nodiscard]] SublinearResult finish();

  /// The worst-case iteration schedule for the prepared instance.
  [[nodiscard]] std::size_t iteration_bound() const {
    return plan_ != nullptr ? plan_->iteration_bound() : 0;
  }

  /// Effective band width for the prepared instance.
  [[nodiscard]] std::size_t effective_band() const {
    return plan_ != nullptr ? plan_->effective_band() : 0;
  }

  /// Number of allocated pw cells (memory metric, experiment E7).
  [[nodiscard]] std::size_t pw_cell_count() const;

  /// The plan backing the current shape (null before the first
  /// `prepare`/`solve`); shareable with further sessions.
  [[nodiscard]] std::shared_ptr<const SolvePlan> plan() const noexcept {
    return plan_;
  }

  /// The PRAM simulator carrying the work/depth ledger and (optionally)
  /// the CREW conformance checker.
  [[nodiscard]] const pram::Machine& machine() const { return machine_; }
  [[nodiscard]] pram::Machine& machine() { return machine_; }

  [[nodiscard]] const SublinearOptions& options() const { return options_; }

 private:
  /// Builds (or reuses) the plan/session pair serving `problem`'s shape.
  SolveSession& session_for(const dp::Problem& problem);

  SublinearOptions options_;
  pram::Machine machine_;
  std::shared_ptr<const SolvePlan> plan_;
  std::unique_ptr<SolveSession> session_;
};

}  // namespace subdp::core
