#pragma once

/// \file shape_array.hpp
/// `ShapeArray<T>`: an immutable, shareable array of plan geometry.
///
/// The big instance-independent tables a `SolvePlan` owns — the square
/// entry list, pair lists, write-log slot maps, root-block runs, offset
/// tables — were `std::vector`s, which forces every consumer of a plan
/// snapshot (snapshot/plan_snapshot.hpp) to copy megabytes of geometry
/// out of the file on load. `ShapeArray` is the seam that removes the
/// copy: it is a read-only `(data, size)` view plus a type-erased
/// keep-alive handle, so the same array type can be backed by
///  * an owned `std::vector<T>` (the build-from-scratch path — the
///    vector moves into the keep-alive and the view points at it), or
///  * a region of an mmapped snapshot file (the rehydration path — the
///    keep-alive pins the mapping, the view points straight into the
///    page cache; no allocation, no copy).
///
/// Plan geometry is immutable once built (the thread-safety contract in
/// solve_plan.hpp depends on that), so a read-only view loses nothing;
/// the engine's hot loops only ever index and iterate these arrays.
/// Copying a `ShapeArray` copies the view and bumps the keep-alive —
/// O(1), like the `shared_ptr` layout sharing it complements.

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace subdp::core {

/// Immutable shared array view; see the file comment.
template <class T>
class ShapeArray {
 public:
  ShapeArray() = default;

  /// Takes ownership of `values` (the build path): the vector moves into
  /// the keep-alive handle and the view aliases its buffer.
  ShapeArray(std::vector<T> values)  // NOLINT(google-explicit-constructor)
  {
    auto owned = std::make_shared<std::vector<T>>(std::move(values));
    data_ = owned->data();
    size_ = owned->size();
    owner_ = std::move(owned);
  }

  /// Aliases `[data, data + size)` whose storage `owner` keeps alive (the
  /// mmap rehydration path). `data` may be null only when `size == 0`.
  ShapeArray(const T* data, std::size_t size,
             std::shared_ptr<const void> owner)
      : data_(data), size_(size), owner_(std::move(owner)) {
    SUBDP_REQUIRE(data_ != nullptr || size_ == 0,
                  "ShapeArray view over null storage");
  }

  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] const T& operator[](std::size_t idx) const noexcept {
    return data_[idx];
  }
  [[nodiscard]] const T& front() const noexcept { return data_[0]; }
  [[nodiscard]] const T& back() const noexcept { return data_[size_ - 1]; }

  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

 private:
  const T* data_ = nullptr;
  std::size_t size_ = 0;
  /// Whatever keeps `data_` valid: the owned vector or the file mapping.
  std::shared_ptr<const void> owner_;
};

}  // namespace subdp::core
