#include "core/sublinear_solver.hpp"

#include "core/pw_banded.hpp"
#include "core/pw_dense.hpp"
#include "support/stats.hpp"

namespace subdp::core {

SublinearSolver::SublinearSolver(SublinearOptions options)
    : options_(options), machine_(options.machine) {
  SUBDP_REQUIRE(!options_.windowed_pebble ||
                    options_.termination == TerminationMode::kFixedBound,
                "the windowed pebble schedule requires fixed-bound "
                "termination (per-iteration change is not a stopping "
                "signal when most pairs are outside the window)");
}

void SublinearSolver::prepare(const dp::Problem& problem) {
  n_ = problem.size();
  SUBDP_REQUIRE(n_ <= kMaxPackedN,
                "instance too large: the packed pw-table coordinates "
                "(core::Quad) support n <= 65535");
  SUBDP_REQUIRE(options_.variant != PwVariant::kDense ||
                    n_ <= DensePwTable::kMaxDenseN,
                "instance too large for the dense (every-slack) layout; "
                "use the banded variant");
  trace_.clear();
  machine_.reset();
  bound_ = support::two_ceil_sqrt(n_);
  band_ = options_.band_width != 0 ? options_.band_width
                                   : support::two_ceil_sqrt(n_);
  if (band_ > n_) band_ = n_;
  if (band_ < 1) band_ = 1;

  if (options_.max_iterations != 0) {
    cap_ = options_.max_iterations;
  } else if (options_.square_mode == SquareMode::kRytterFull) {
    cap_ = 4 * support::ceil_log2(n_ < 2 ? 2 : n_) + 8;
  } else {
    cap_ = bound_;
  }

  if (n_ == 1) {
    trivial_cost_ = problem.init(0);
    engine_.reset();
    return;
  }

  if (options_.variant == PwVariant::kDense) {
    engine_ = std::make_unique<detail::Engine<DensePwTable>>(
        problem, options_, band_, machine_);
  } else {
    engine_ = std::make_unique<detail::Engine<BandedPwTable>>(
        problem, options_, band_, machine_);
  }
}

IterationOutcome SublinearSolver::step() {
  SUBDP_REQUIRE(engine_ != nullptr, "call prepare() first (and n >= 2)");
  const IterationOutcome out = engine_->iterate();
  IterationTrace t;
  t.iteration = engine_->iterations_done();
  t.pw_cells_changed = out.activate_changed + out.square_changed;
  t.w_cells_changed = out.pebble_changed;
  t.w_finite = engine_->w_finite_count();
  trace_.push_back(t);
  return out;
}

Cost SublinearSolver::current_w(std::size_t i, std::size_t j) const {
  SUBDP_REQUIRE(engine_ != nullptr, "call prepare() first");
  return engine_->w_value(i, j);
}

Cost SublinearSolver::current_pw(std::size_t i, std::size_t j, std::size_t p,
                                 std::size_t q) const {
  SUBDP_REQUIRE(engine_ != nullptr, "call prepare() first");
  return engine_->pw_value(i, j, p, q);
}

std::size_t SublinearSolver::iterations_done() const {
  return engine_ != nullptr ? engine_->iterations_done() : 0;
}

std::size_t SublinearSolver::pw_cell_count() const {
  return engine_ != nullptr ? engine_->pw_cell_count() : 0;
}

SublinearResult SublinearSolver::finish() {
  SublinearResult result;
  result.iteration_bound = bound_;
  result.trace = trace_;
  if (engine_ == nullptr) {  // n == 1: the answer is init(0)
    result.cost = trivial_cost_;
    result.iterations = 0;
    result.reached_fixed_point = true;
    result.w = support::Grid2D<Cost>(2, 2, kInfinity);
    result.w(0, 1) = trivial_cost_;
    return result;
  }
  result.iterations = engine_->iterations_done();
  result.w = engine_->w_table();
  result.cost = engine_->w_value(0, n_);
  result.reached_fixed_point =
      !trace_.empty() && trace_.back().pw_cells_changed == 0 &&
      trace_.back().w_cells_changed == 0;
  return result;
}

SublinearResult SublinearSolver::solve(const dp::Problem& problem) {
  prepare(problem);
  if (engine_ == nullptr) return finish();

  std::size_t w_unchanged_streak = 0;
  for (std::size_t iter = 0; iter < cap_; ++iter) {
    const IterationOutcome out = step();
    switch (options_.termination) {
      case TerminationMode::kFixedBound:
        break;  // always run the full schedule
      case TerminationMode::kFixedPoint:
        if (!out.any_changed()) {
          return finish();
        }
        break;
      case TerminationMode::kWUnchangedTwice:
        w_unchanged_streak =
            out.pebble_changed == 0 ? w_unchanged_streak + 1 : 0;
        if (w_unchanged_streak >= 2) {
          return finish();
        }
        break;
    }
  }
  return finish();
}

}  // namespace subdp::core
