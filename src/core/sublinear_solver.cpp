#include "core/sublinear_solver.hpp"

#include "support/assert.hpp"

namespace subdp::core {

SublinearSolver::SublinearSolver(SublinearOptions options)
    : options_(options), machine_(options.machine) {
  // Fail invalid option combinations at construction, before any
  // instance shape is known (SolvePlan::create re-validates per shape).
  SUBDP_REQUIRE(!options_.windowed_pebble ||
                    options_.termination == TerminationMode::kFixedBound,
                "the windowed pebble schedule requires fixed-bound "
                "termination (per-iteration change is not a stopping "
                "signal when most pairs are outside the window)");
}

SolveSession& SublinearSolver::session_for(const dp::Problem& problem) {
  const std::size_t n = problem.size();
  if (plan_ == nullptr || plan_->n() != n) {
    plan_ = SolvePlan::create(n, options_);
    session_ = std::make_unique<SolveSession>(plan_, &machine_);
  }
  return *session_;
}

void SublinearSolver::prepare(const dp::Problem& problem) {
  session_for(problem).reset(problem);
}

IterationOutcome SublinearSolver::step() {
  SUBDP_REQUIRE(session_ != nullptr,
                "call prepare() first (and n >= 2)");
  return session_->step();
}

Cost SublinearSolver::current_w(std::size_t i, std::size_t j) const {
  SUBDP_REQUIRE(session_ != nullptr, "call prepare() first");
  return session_->current_w(i, j);
}

Cost SublinearSolver::current_pw(std::size_t i, std::size_t j, std::size_t p,
                                 std::size_t q) const {
  SUBDP_REQUIRE(session_ != nullptr, "call prepare() first");
  return session_->current_pw(i, j, p, q);
}

std::size_t SublinearSolver::iterations_done() const {
  return session_ != nullptr ? session_->iterations_done() : 0;
}

std::size_t SublinearSolver::pw_cell_count() const {
  return session_ != nullptr ? session_->pw_cell_count() : 0;
}

SublinearResult SublinearSolver::finish() {
  SUBDP_REQUIRE(session_ != nullptr, "call prepare() first");
  return session_->finish();
}

SublinearResult SublinearSolver::solve(const dp::Problem& problem) {
  return session_for(problem).solve(problem);
}

}  // namespace subdp::core
