#include "core/api.hpp"

#include "core/solve_plan.hpp"
#include "core/solve_session.hpp"

namespace subdp::core {

Solution solve(const dp::Problem& problem, const SublinearOptions& options) {
  SolveSession session(SolvePlan::create(problem.size(), options));
  SublinearResult result = session.solve(problem);

  Solution solution;
  solution.cost = result.cost;
  solution.iterations = result.iterations;
  solution.iteration_bound = result.iteration_bound;
  solution.reached_fixed_point = result.reached_fixed_point;
  solution.pram_work = session.machine().costs().total_work();
  solution.pram_depth = session.machine().costs().total_depth();
  solution.tree = problem.size() == 1
                      ? trees::FullBinaryTree::build(1, {})
                      : dp::extract_tree_from_w(problem, result.w);
  return solution;
}

SublinearOptions rytter_options() {
  SublinearOptions options;
  options.variant = PwVariant::kDense;
  options.square_mode = SquareMode::kRytterFull;
  options.termination = TerminationMode::kFixedPoint;
  return options;
}

SublinearResult solve_rytter(const dp::Problem& problem,
                             const SublinearOptions& options) {
  SUBDP_REQUIRE(options.square_mode == SquareMode::kRytterFull,
                "solve_rytter requires SquareMode::kRytterFull; use "
                "core::solve / SublinearSolver for the paper's square");
  SUBDP_REQUIRE(problem.size() <= 24,
                "Rytter's square step performs O(n^6) work per iteration; "
                "restrict to small instances");
  SolveSession session(SolvePlan::create(problem.size(), options));
  return session.solve(problem);
}

}  // namespace subdp::core
