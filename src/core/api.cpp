#include "core/api.hpp"

namespace subdp::core {

Solution solve(const dp::Problem& problem, const SublinearOptions& options) {
  SublinearSolver solver(options);
  SublinearResult result = solver.solve(problem);

  Solution solution;
  solution.cost = result.cost;
  solution.iterations = result.iterations;
  solution.iteration_bound = result.iteration_bound;
  solution.reached_fixed_point = result.reached_fixed_point;
  solution.pram_work = solver.machine().costs().total_work();
  solution.pram_depth = solver.machine().costs().total_depth();
  solution.tree = problem.size() == 1
                      ? trees::FullBinaryTree::build(1, {})
                      : dp::extract_tree_from_w(problem, result.w);
  return solution;
}

SublinearResult solve_rytter(const dp::Problem& problem,
                             pram::Backend backend) {
  SUBDP_REQUIRE(problem.size() <= 24,
                "Rytter's square step performs O(n^6) work per iteration; "
                "restrict to small instances");
  SublinearOptions options;
  options.variant = PwVariant::kDense;
  options.square_mode = SquareMode::kRytterFull;
  options.termination = TerminationMode::kFixedPoint;
  options.machine.backend = backend;
  SublinearSolver solver(options);
  return solver.solve(problem);
}

}  // namespace subdp::core
