#include "core/pw_banded.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace subdp::core {

void BandedPwLayout::init_geometry(std::vector<std::size_t>& length_base,
                                   std::vector<std::size_t>& tetra_base) {
  SUBDP_REQUIRE(n_ >= 1, "need at least one object");
  SUBDP_REQUIRE(band_ >= 1, "band width must be at least 1");

  length_base.assign(n_ + 2, 0);
  std::size_t total = 0;
  for (std::size_t len = 2; len <= n_; ++len) {
    length_base[len] = total;
    total = checked_size_add(total,
                             checked_size_mul(n_ - len + 1, block_size(len)));
  }
  length_base[n_ + 1] = total;
  band_cell_count_ = total;

  // Child-gap side tables: tetrahedral addressing over the triples
  // (i, k, j) with i < k < j <= n — C(n+1, 3) cells per family instead of
  // a flat (n+1)^3 cube (~6x smaller), still O(1) access.
  tetra_base.assign(n_ + 1, 0);
  std::size_t tetra_total = 0;
  for (std::size_t i = 0; i + 2 <= n_; ++i) {
    tetra_base[i] = tetra_total;
    tetra_total += (n_ - i) * (n_ - i - 1) / 2;
  }
  child_cell_count_ = tetra_total;
  for (std::size_t len = 2; len <= n_; ++len) {
    if (len - 1 > band_) {
      // Out-of-band slacks s in (B, len-1]: two child gaps per slack.
      out_of_band_child_count_ += (n_ - len + 1) * 2 * (len - 1 - band_);
    }
  }
}

BandedPwLayout::BandedPwLayout(std::size_t n, std::size_t band)
    : n_(n), band_(band) {
  std::vector<std::size_t> length_base;
  std::vector<std::size_t> tetra_base;
  init_geometry(length_base, tetra_base);
  length_base_ = std::move(length_base);
  tetra_base_ = std::move(tetra_base);

  std::vector<Quad> entries;
  entries.reserve(band_cell_count_);
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len;
      const std::size_t max_s = len - 1 < band_ ? len - 1 : band_;
      for (std::size_t s = 1; s <= max_s; ++s) {
        const std::size_t gap_len = len - s;
        for (std::size_t o = 0; o <= s; ++o) {
          entries.push_back(Quad{static_cast<std::uint16_t>(i),
                                 static_cast<std::uint16_t>(j),
                                 static_cast<std::uint16_t>(i + o),
                                 static_cast<std::uint16_t>(i + o +
                                                            gap_len)});
        }
      }
    }
  }
  SUBDP_ASSERT(entries.size() == band_cell_count_);
  entries_ = std::move(entries);
}

BandedPwLayout::BandedPwLayout(std::size_t n, std::size_t band,
                               ShapeArray<std::size_t> length_base,
                               ShapeArray<std::size_t> tetra_base,
                               ShapeArray<Quad> entries)
    : n_(n), band_(band) {
  std::vector<std::size_t> expected_length_base;
  std::vector<std::size_t> expected_tetra_base;
  init_geometry(expected_length_base, expected_tetra_base);
  SUBDP_REQUIRE(length_base.size() == expected_length_base.size() &&
                    std::equal(length_base.begin(), length_base.end(),
                               expected_length_base.begin()),
                "banded snapshot offset table disagrees with (n, band)");
  SUBDP_REQUIRE(tetra_base.size() == expected_tetra_base.size() &&
                    std::equal(tetra_base.begin(), tetra_base.end(),
                               expected_tetra_base.begin()),
                "banded snapshot child-store offsets disagree with (n, band)");
  SUBDP_REQUIRE(entries.size() == band_cell_count_,
                "banded snapshot entry count disagrees with (n, band)");
  length_base_ = std::move(length_base);
  tetra_base_ = std::move(tetra_base);
  entries_ = std::move(entries);
}

BandedPwTable::BandedPwTable(std::shared_ptr<const BandedPwLayout> layout)
    : layout_(std::move(layout)),
      n_(layout_->n()),
      band_(layout_->band()),
      cells_(layout_->band_cell_count(), kInfinity),
      left_child_cells_(layout_->child_cell_count(), kInfinity),
      right_child_cells_(layout_->child_cell_count(), kInfinity) {}

void BandedPwTable::reset() {
  cells_.assign(cells_.size(), kInfinity);
  left_child_cells_.assign(left_child_cells_.size(), kInfinity);
  right_child_cells_.assign(right_child_cells_.size(), kInfinity);
}

void BandedPwTable::copy_from(const BandedPwTable& other) {
  SUBDP_ASSERT(n_ == other.n_ && band_ == other.band_);
  cells_ = other.cells_;
  left_child_cells_ = other.left_child_cells_;
  right_child_cells_ = other.right_child_cells_;
}

}  // namespace subdp::core
