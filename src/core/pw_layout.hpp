#pragma once

/// \file pw_layout.hpp
/// The compile-time storage-policy concept behind the `pw'` tables.
///
/// `engine.hpp` is templated on its partial-weight table; this header pins
/// down the contract that template assumes, so a layout is checked against
/// the full interface at instantiation time instead of failing two template
/// layers deep (or, worse, silently compiling a per-call branch). Both
/// shipped layouts — `DensePwTable` (entries-indexed, every slack) and
/// `BandedPwTable` (slack-banded plus child-gap side stores) — model
/// `PwStoragePolicy`, and the engine's kernels are instantiated once per
/// layout with the layout's own addressing inlined.
///
/// Beyond the classic get/set/stores surface, a policy must expose the
/// *unchecked in-band read machinery* the fast-path square kernel is built
/// on:
///
///  * `in_band_slot(i,j,p,q)` — the raw cell index of an entry known to be
///    stored in band, computed branch-free (no identity test, no slack
///    test, no child-gap fallback);
///  * `r_window_cursor` / `s_window_cursor` — incremental readers along
///    the HLV windows. In every layout the slot of `pw'(i,j,r,q)` for
///    ascending `r` (and of `pw'(i,j,p,s)` for ascending `s`) advances by
///    an *arithmetic progression* — dense rows stride `len-a-1, len-a-2,
///    ...`, banded slack blocks stride `s+2, s+3, ...` — so one
///    `PwWindowCursor{cell, step, dstep}` covers all four cases with two
///    adds per element and no address re-derivation;
///  * `for_each_gap_run` — the a-pebble analogue of the window cursors: the
///    stored gaps of one root `(i,j)`, partitioned into `PwGapRun`s inside
///    which both the pw slot and the flat `w(p,q)` slot (stride `n+1`)
///    advance by arithmetic progressions. Dense roots decompose into one
///    contiguous run per left endpoint `p`; banded roots into one
///    contiguous run per slack `s` (w slots striding `n+2`) plus, past the
///    band, one run per child-gap side store, whose cell offsets are
///    quadratic in the boundary `k` and therefore still APs. The engine's
///    fast pebble kernel streams these runs instead of calling the general
///    `get` per gap (identity / slack / child-gap branches eliminated);
///    `for_each_gap` remains the reference enumeration, and the two must
///    cover exactly the same `(p,q)` set with identical cell values.
///
/// `entries()` must enumerate the square-step targets grouped by root
/// length ascending with the quads of one root `(i,j)` contiguous; the
/// engine's root-major frontier sweep builds its block table from exactly
/// that grouping (a layout that interleaved roots would still be correct,
/// just unskippable).
///
/// A policy is further split into an immutable *layout* half and a mutable
/// *cells* half: `T::Layout` owns everything a `(n, band)` shape
/// determines — offset tables, the entry list, cell counts —
/// `T::make_layout(n, band)` builds one behind a `shared_ptr`, and
/// `T(layout)` binds a shared layout to a fresh cell allocation. This is
/// the seam `SolvePlan` amortises across instances: the plan builds each
/// layout once, every `SolveSession` table of that shape shares it, and
/// per-instance setup degenerates to `reset()` (an in-place fill). The
/// layout's bulk arrays are `ShapeArray`s (shape_array.hpp), so a layout
/// rehydrated from a plan snapshot can alias the file mapping instead of
/// copying the entry list (snapshot/plan_snapshot.hpp).
///
/// The header also provides the overflow-checked size arithmetic the
/// layout constructors use: table shapes are products of four instance
/// dimensions, and a silent `std::size_t` wrap would turn "too big" into a
/// small, wrong allocation.

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/quad.hpp"
#include "core/shape_array.hpp"
#include "support/assert.hpp"
#include "support/cost.hpp"

namespace subdp::core {

/// Overflow-checked multiply for table sizing; throws std::invalid_argument
/// instead of wrapping.
[[nodiscard]] constexpr std::size_t checked_size_mul(std::size_t a,
                                                     std::size_t b) {
  SUBDP_REQUIRE(b == 0 || a <= std::numeric_limits<std::size_t>::max() / b,
                "pw table size arithmetic overflows std::size_t");
  return a * b;
}

/// Overflow-checked add for table sizing; throws std::invalid_argument
/// instead of wrapping.
[[nodiscard]] constexpr std::size_t checked_size_add(std::size_t a,
                                                     std::size_t b) {
  SUBDP_REQUIRE(a <= std::numeric_limits<std::size_t>::max() - b,
                "pw table size arithmetic overflows std::size_t");
  return a + b;
}

/// Incremental in-band reader along one HLV window. The slot sequence is an
/// arithmetic progression (see the file comment), so advancing is two adds:
/// `cell += step; step += dstep`.
struct PwWindowCursor {
  const Cost* cell = nullptr;
  std::ptrdiff_t step = 0;
  std::ptrdiff_t dstep = 0;

  [[nodiscard]] Cost value() const noexcept { return *cell; }
  void advance() noexcept {
    cell += step;
    step += dstep;
  }
};

/// One arithmetic-progression run of a root's stored gaps (a-pebble fast
/// scan). Enumerates `count` gaps `(p,q)`: the pw slot starts at `cell`
/// and advances like a `PwWindowCursor` (`cell += cell_step; cell_step +=
/// cell_dstep`), while the matching `w(p,q)` slot — flattened as
/// `p * (n+1) + q` — starts at `w_slot` and advances by the constant
/// `w_step`. A run never contains the identity gap `(i,j)`.
struct PwGapRun {
  const Cost* cell = nullptr;
  std::ptrdiff_t cell_step = 0;
  std::ptrdiff_t cell_dstep = 0;
  std::size_t w_slot = 0;
  std::ptrdiff_t w_step = 0;
  std::size_t count = 0;
};

namespace layout_detail {
/// Stand-in callable for concept-checking `for_each_gap` (lambdas cannot
/// appear in a requires-expression portably).
struct GapSink {
  void operator()(std::size_t, std::size_t) const noexcept {}
};
/// Stand-in callable for concept-checking `for_each_gap_run`.
struct GapRunSink {
  void operator()(const PwGapRun&) const noexcept {}
};
}  // namespace layout_detail

/// The storage interface `detail::Engine` instantiates its kernels against.
template <class T>
concept PwStoragePolicy =
    std::constructible_from<T, std::size_t, std::size_t> &&
    std::constructible_from<T, std::shared_ptr<const typename T::Layout>> &&
    requires(T t, const T c, std::size_t z, Cost v) {
      typename T::Layout;
      { T::make_layout(z, z) } ->
          std::same_as<std::shared_ptr<const typename T::Layout>>;
      { c.layout() } noexcept ->
          std::same_as<const typename T::Layout&>;
      { T::kLayoutName } -> std::convertible_to<const char*>;
      { c.n() } noexcept -> std::same_as<std::size_t>;
      { c.max_slack() } noexcept -> std::same_as<std::size_t>;
      { c.get(z, z, z, z) } -> std::same_as<Cost>;
      { t.set(z, z, z, z, v) } -> std::same_as<void>;
      { c.stores(z, z, z, z) } -> std::same_as<bool>;
      { c.address(z, z, z, z) } -> std::same_as<std::uint64_t>;
      { c.entry_slot(z, z, z, z) } -> std::same_as<std::size_t>;
      { c.in_band_slot(z, z, z, z) } -> std::same_as<std::size_t>;
      { c.r_window_cursor(z, z, z, z) } -> std::same_as<PwWindowCursor>;
      { c.s_window_cursor(z, z, z, z) } -> std::same_as<PwWindowCursor>;
      { t.raw_cells() } noexcept -> std::same_as<Cost*>;
      { c.raw_cells() } noexcept -> std::same_as<const Cost*>;
      { c.cell_count() } noexcept -> std::same_as<std::size_t>;
      { c.entry_count() } noexcept -> std::same_as<std::size_t>;
      { c.entries() } noexcept -> std::same_as<const ShapeArray<Quad>&>;
      { c.for_each_gap(z, z, layout_detail::GapSink{}) } ->
          std::same_as<void>;
      { c.for_each_gap_run(z, z, layout_detail::GapRunSink{}) } ->
          std::same_as<void>;
      { t.reset() } -> std::same_as<void>;
      { t.copy_from(c) } -> std::same_as<void>;
    };

}  // namespace subdp::core
