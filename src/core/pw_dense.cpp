#include "core/pw_dense.hpp"

#include "support/assert.hpp"

namespace subdp::core {

DensePwLayout::DensePwLayout(std::size_t n) : n_(n) {
  SUBDP_REQUIRE(n >= 1, "need at least one object");
  SUBDP_REQUIRE(n <= DensePwTable::kMaxDenseN,
                "dense pw table would exceed the memory envelope; "
                "use the banded variant");

  length_base_.assign(n + 2, 0);
  std::size_t total = 0;
  std::size_t roots = 0;
  for (std::size_t len = 2; len <= n; ++len) {
    length_base_[len] = total;
    total = checked_size_add(
        total, checked_size_mul(n - len + 1, cells_per_root(len)));
    roots += n - len + 1;
  }
  length_base_[n + 1] = total;
  cell_count_ = total;

  // Group by root length ascending so windowed sweeps see short roots
  // first; within a root, gaps in (p,q) lexicographic order (which is also
  // ascending slot order). Every cell except one identity slot per root
  // backs a meaningful entry.
  entries_.reserve(total - roots);
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len;
      for (std::size_t p = i; p < j; ++p) {
        for (std::size_t q = p + 1; q <= j; ++q) {
          if (p == i && q == j) continue;
          entries_.push_back(Quad{static_cast<std::uint16_t>(i),
                                  static_cast<std::uint16_t>(j),
                                  static_cast<std::uint16_t>(p),
                                  static_cast<std::uint16_t>(q)});
        }
      }
    }
  }
  SUBDP_ASSERT(entries_.size() + roots == cell_count_);
}

DensePwTable::DensePwTable(std::shared_ptr<const DensePwLayout> layout)
    : layout_(std::move(layout)),
      n_(layout_->n()),
      cells_(layout_->cell_count(), kInfinity) {}

void DensePwTable::reset() {
  cells_.assign(cells_.size(), kInfinity);
}

void DensePwTable::copy_from(const DensePwTable& other) {
  SUBDP_ASSERT(n_ == other.n_);
  cells_ = other.cells_;
}

}  // namespace subdp::core
