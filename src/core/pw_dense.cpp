#include "core/pw_dense.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace subdp::core {

std::size_t DensePwLayout::init_geometry(
    std::vector<std::size_t>& length_base) {
  SUBDP_REQUIRE(n_ >= 1, "need at least one object");
  SUBDP_REQUIRE(n_ <= DensePwTable::kMaxDenseN,
                "dense pw table would exceed the memory envelope; "
                "use the banded variant");

  length_base.assign(n_ + 2, 0);
  std::size_t total = 0;
  std::size_t roots = 0;
  for (std::size_t len = 2; len <= n_; ++len) {
    length_base[len] = total;
    total = checked_size_add(
        total, checked_size_mul(n_ - len + 1, cells_per_root(len)));
    roots += n_ - len + 1;
  }
  length_base[n_ + 1] = total;
  cell_count_ = total;
  return roots;
}

DensePwLayout::DensePwLayout(std::size_t n) : n_(n) {
  std::vector<std::size_t> length_base;
  const std::size_t roots = init_geometry(length_base);
  length_base_ = std::move(length_base);

  // Group by root length ascending so windowed sweeps see short roots
  // first; within a root, gaps in (p,q) lexicographic order (which is also
  // ascending slot order). Every cell except one identity slot per root
  // backs a meaningful entry.
  std::vector<Quad> entries;
  entries.reserve(cell_count_ - roots);
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len;
      for (std::size_t p = i; p < j; ++p) {
        for (std::size_t q = p + 1; q <= j; ++q) {
          if (p == i && q == j) continue;
          entries.push_back(Quad{static_cast<std::uint16_t>(i),
                                 static_cast<std::uint16_t>(j),
                                 static_cast<std::uint16_t>(p),
                                 static_cast<std::uint16_t>(q)});
        }
      }
    }
  }
  SUBDP_ASSERT(entries.size() + roots == cell_count_);
  entries_ = std::move(entries);
}

DensePwLayout::DensePwLayout(std::size_t n,
                             ShapeArray<std::size_t> length_base,
                             ShapeArray<Quad> entries)
    : n_(n) {
  std::vector<std::size_t> expected_length_base;
  const std::size_t roots = init_geometry(expected_length_base);
  SUBDP_REQUIRE(length_base.size() == expected_length_base.size() &&
                    std::equal(length_base.begin(), length_base.end(),
                               expected_length_base.begin()),
                "dense snapshot offset table disagrees with n");
  SUBDP_REQUIRE(entries.size() + roots == cell_count_,
                "dense snapshot entry count disagrees with n");
  length_base_ = std::move(length_base);
  entries_ = std::move(entries);
}

DensePwTable::DensePwTable(std::shared_ptr<const DensePwLayout> layout)
    : layout_(std::move(layout)),
      n_(layout_->n()),
      cells_(layout_->cell_count(), kInfinity) {}

void DensePwTable::reset() {
  cells_.assign(cells_.size(), kInfinity);
}

void DensePwTable::copy_from(const DensePwTable& other) {
  SUBDP_ASSERT(n_ == other.n_);
  cells_ = other.cells_;
}

}  // namespace subdp::core
