#include "core/batch_solver.hpp"

namespace subdp::core {

serve::ServiceOptions BatchSolver::facade_options(
    const SublinearOptions& options) {
  serve::ServiceOptions service;
  service.solver = options;
  service.workers = 1;  // the classic serial streaming front door
  // "Effectively unbounded": BatchSolver predates the bounded cache and
  // promises warm plans for every shape it has served. Bounded eviction
  // is the service's own front door feature.
  service.plan_capacity = static_cast<std::size_t>(1) << 20;
  return service;
}

BatchSolver::BatchSolver(SublinearOptions options)
    : options_(options), service_(facade_options(options)) {}

BatchResult BatchSolver::solve_all(
    std::span<const dp::Problem* const> problems) {
  return service_.solve_all(problems);
}

}  // namespace subdp::core
