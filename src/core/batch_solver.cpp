#include "core/batch_solver.hpp"

#include "support/assert.hpp"

namespace subdp::core {

BatchSolver::BatchSolver(SublinearOptions options)
    : options_(options) {}

std::shared_ptr<const SolvePlan> BatchSolver::plan_for(std::size_t n) const {
  const auto it = sessions_.find(n);
  return it != sessions_.end() ? it->second->plan_ptr() : nullptr;
}

BatchResult BatchSolver::solve_all(
    std::span<const dp::Problem* const> problems) {
  BatchResult out;
  out.results.resize(problems.size());
  out.ledger.instances = problems.size();

  // Group instance indices by shape so each plan is built at most once
  // and each group streams through one session's reset-in-place tables.
  std::map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t idx = 0; idx < problems.size(); ++idx) {
    SUBDP_REQUIRE(problems[idx] != nullptr,
                  "solve_all: null problem pointer");
    groups[problems[idx]->size()].push_back(idx);
  }
  out.ledger.shape_groups = groups.size();

  for (const auto& [n, indices] : groups) {
    auto it = sessions_.find(n);
    if (it == sessions_.end()) {
      it = sessions_
               .emplace(n, std::make_unique<SolveSession>(
                               SolvePlan::create(n, options_)))
               .first;
      ++out.ledger.plans_built;
    } else {
      ++out.ledger.plans_reused;
    }
    SolveSession& session = *it->second;
    for (const std::size_t idx : indices) {
      out.results[idx] = session.solve(*problems[idx]);
      out.ledger.total_iterations += out.results[idx].iterations;
      out.ledger.total_work += session.machine().costs().total_work();
      out.ledger.total_depth += session.machine().costs().total_depth();
    }
  }
  return out;
}

}  // namespace subdp::core
