#include "core/convergence_report.hpp"

#include <sstream>

namespace subdp::core {

support::TableWriter convergence_table(const SublinearResult& result,
                                       const std::string& title) {
  support::TableWriter table(
      title, {"iteration", "pw cells improved", "w cells improved",
              "pairs finite", "quiet"});
  for (const auto& t : result.trace) {
    const bool quiet = t.pw_cells_changed == 0 && t.w_cells_changed == 0;
    table.add_row({static_cast<std::int64_t>(t.iteration),
                   static_cast<std::int64_t>(t.pw_cells_changed),
                   static_cast<std::int64_t>(t.w_cells_changed),
                   static_cast<std::int64_t>(t.w_finite),
                   std::string(quiet ? "yes" : "")});
  }
  return table;
}

std::string summarize_convergence(const SublinearResult& result) {
  std::size_t last_w_change = 0;
  for (const auto& t : result.trace) {
    if (t.w_cells_changed > 0) last_w_change = t.iteration;
  }
  std::ostringstream os;
  os << "ran " << result.iterations << " of " << result.iteration_bound
     << " scheduled iterations ("
     << (result.iteration_bound != 0
             ? 100.0 * static_cast<double>(result.iterations) /
                   static_cast<double>(result.iteration_bound)
             : 0.0)
     << "% of the 2*ceil(sqrt n) bound); ";
  os << (result.reached_fixed_point ? "reached a fixed point"
                                    : "stopped by schedule/heuristic");
  os << "; w' last improved at iteration " << last_w_change << ".";
  return os.str();
}

}  // namespace subdp::core
