#include "core/solve_session.hpp"

#include "support/assert.hpp"

namespace subdp::core {

SolveSession::SolveSession(std::shared_ptr<const SolvePlan> plan,
                           pram::Machine* external_machine)
    : plan_(std::move(plan)) {
  SUBDP_REQUIRE(plan_ != nullptr, "SolveSession requires a plan");
  if (external_machine != nullptr) {
    machine_ = external_machine;
  } else {
    owned_machine_ =
        std::make_unique<pram::Machine>(plan_->options().machine);
    machine_ = owned_machine_.get();
  }
}

void SolveSession::reset(const dp::Problem& problem) {
  SUBDP_REQUIRE(problem.size() == plan_->n(),
                "instance size does not match the session's plan; build a "
                "plan per shape (BatchSolver groups instances for you)");
  trace_.clear();
  machine_->reset();
  if (plan_->trivial()) {
    trivial_cost_ = problem.init(0);
  } else if (engine_ != nullptr) {
    engine_->reset(problem);  // in-place: the solve-many hot path
  } else {
    engine_ = plan_->make_engine(problem, *machine_);
  }
  state_ = State::kPrepared;
}

void SolveSession::require_prepared(const char* what) const {
  SUBDP_REQUIRE(state_ != State::kIdle,
                std::string(what) +
                    " requires a prepared session: call reset(problem) "
                    "(or prepare(problem) on SublinearSolver) first");
  SUBDP_REQUIRE(state_ != State::kFinished,
                std::string(what) +
                    " after finish(): the session result was already "
                    "packaged; call reset(problem) to start a new solve");
}

IterationOutcome SolveSession::step() {
  require_prepared("step()");
  SUBDP_REQUIRE(engine_ != nullptr,
                "nothing to step: n == 1 instances solve trivially");
  const IterationOutcome out = engine_->iterate();
  IterationTrace t;
  t.iteration = engine_->iterations_done();
  t.pw_cells_changed = out.activate_changed + out.square_changed;
  t.w_cells_changed = out.pebble_changed;
  t.w_finite = engine_->w_finite_count();
  trace_.push_back(t);
  return out;
}

Cost SolveSession::current_w(std::size_t i, std::size_t j) const {
  require_prepared("current_w()");
  SUBDP_REQUIRE(engine_ != nullptr, "n == 1 instances have no w table");
  return engine_->w_value(i, j);
}

Cost SolveSession::current_pw(std::size_t i, std::size_t j, std::size_t p,
                              std::size_t q) const {
  require_prepared("current_pw()");
  SUBDP_REQUIRE(engine_ != nullptr, "n == 1 instances have no pw table");
  return engine_->pw_value(i, j, p, q);
}

std::size_t SolveSession::iterations_done() const {
  return engine_ != nullptr ? engine_->iterations_done() : 0;
}

std::size_t SolveSession::pw_cell_count() const {
  return plan_->pw_cell_count();
}

const std::vector<StepProfile>& SolveSession::step_profile() const {
  static const std::vector<StepProfile> kEmpty;
  return engine_ != nullptr ? engine_->step_profiles() : kEmpty;
}

SublinearResult SolveSession::finish() {
  require_prepared("finish()");
  SublinearResult result;
  result.iteration_bound = plan_->iteration_bound();
  result.trace = trace_;
  if (engine_ == nullptr) {  // n == 1: the answer is init(0)
    result.cost = trivial_cost_;
    result.iterations = 0;
    result.reached_fixed_point = true;
    result.w = support::Grid2D<Cost>(2, 2, kInfinity);
    result.w(0, 1) = trivial_cost_;
  } else {
    result.iterations = engine_->iterations_done();
    result.w = engine_->w_table();
    result.cost = engine_->w_value(0, plan_->n());
    result.reached_fixed_point =
        !trace_.empty() && trace_.back().pw_cells_changed == 0 &&
        trace_.back().w_cells_changed == 0;
  }
  state_ = State::kFinished;
  return result;
}

SublinearResult SolveSession::solve(const dp::Problem& problem) {
  reset(problem);
  if (engine_ == nullptr) return finish();

  const SublinearOptions& options = plan_->options();
  const std::size_t cap = plan_->iteration_cap();
  std::size_t w_unchanged_streak = 0;
  for (std::size_t iter = 0; iter < cap; ++iter) {
    const IterationOutcome out = step();
    switch (options.termination) {
      case TerminationMode::kFixedBound:
        break;  // always run the full schedule
      case TerminationMode::kFixedPoint:
        if (!out.any_changed()) {
          return finish();
        }
        break;
      case TerminationMode::kWUnchangedTwice:
        w_unchanged_streak =
            out.pebble_changed == 0 ? w_unchanged_streak + 1 : 0;
        if (w_unchanged_streak >= 2) {
          return finish();
        }
        break;
    }
  }
  return finish();
}

}  // namespace subdp::core
