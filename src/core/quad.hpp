#pragma once

/// \file quad.hpp
/// A partial-weight table coordinate `(i,j,p,q)`: root interval `(i,j)`,
/// gap interval `(p,q)`, with `i <= p < q <= j` and `(p,q) != (i,j)`.

#include <cstddef>
#include <cstdint>

namespace subdp::core {

/// Largest instance size representable by the packed `Quad` coordinates.
/// `SublinearSolver` rejects larger `n` up front with a clear error instead
/// of silently truncating table coordinates.
inline constexpr std::size_t kMaxPackedN = 65535;

/// Packed quadruple; n is bounded by `kMaxPackedN` which far exceeds what
/// any O(n^4)-space table can hold anyway.
struct Quad {
  std::uint16_t i = 0;
  std::uint16_t j = 0;
  std::uint16_t p = 0;
  std::uint16_t q = 0;
};

}  // namespace subdp::core
