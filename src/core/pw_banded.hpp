#pragma once

/// \file pw_banded.hpp
/// Slack-banded partial-weight table (the Sec. 5 processor reduction).
///
/// Section 5 observes that the square step only ever needs partial weights
/// whose *slack* `s = (j-i) - (q-p)` — the number of leaves of the root
/// interval missing from the gap interval — is at most `B = 2*ceil(sqrt n)`:
/// the Fig. 1 chain decomposition peels at most `2*sqrt(n)` leaves off a
/// subtree before reaching a node `y` whose children are both small.
/// Storing only those entries shrinks the square step's input from O(n^4)
/// to O(n^2 B^2) cells, and the admissible split positions `r`/`s` per
/// entry to an O(B) window.
///
/// One subtlety the paper glosses: the terminal node `y` of the chain has
/// *both* children of size up to `i^2`, so pebbling `y` uses the
/// activate-form entries `pw(y, child)` whose slack is the sibling's
/// size — potentially far above `B`. The paper's own pebble-step bound
/// (O(n^{1.5}) pairs x O(n^2) gap candidates) implicitly keeps those
/// entries available; we store them in a dedicated child-gap side table
/// (written by a-activate, read by a-pebble and as square operands) —
/// without it, instances whose optimal trees contain balanced splits wider
/// than `B` converge to a wrong fixed point, which
/// `test_core_sublinear.cpp` demonstrates via the band-sensitivity tests.
///
/// Each child-gap family is keyed by a triple `(i, k, j)` with
/// `i < k < j <= n` (root `(i,j)`, inner boundary `k`), so the side stores
/// use tetrahedral `C(n+1,3)` indexing rather than a flat `(n+1)^3` cube —
/// a ~6x memory cut per family that also shrinks the per-iteration working
/// set the pebble step streams through.
///
/// Layout of the banded part: for root length `L` and left end `i`, the
/// block holds slacks `s = 1 .. min(B, L-1)` contiguously, each with its
/// `s + 1` gap offsets `o = p - i ∈ [0, s]`; all offsets have closed
/// forms, so addressing is O(1).
///
/// Plan/instance split: everything above is a function of `(n, B)` only,
/// so it lives in an immutable `BandedPwLayout` — offset tables, entry
/// list, cell counts. A `BandedPwTable` binds a (shared) layout to its own
/// mutable cell vectors; `SolvePlan` builds the layout once per shape and
/// every `SolveSession` table of that shape shares it, so per-instance
/// setup is a fill, not a rebuild.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/pw_layout.hpp"
#include "core/quad.hpp"
#include "support/cost.hpp"

namespace subdp::core {

/// Immutable banded-layout geometry for one `(n, band)` shape: offset
/// tables, the square-entry list, and cell counts. Instances share one
/// layout via `shared_ptr`; only cell values are per-instance.
class BandedPwLayout {
 public:
  BandedPwLayout(std::size_t n, std::size_t band);

  /// Rehydrates a layout around snapshot-backed arrays (the mmap load
  /// path; see snapshot/plan_snapshot.hpp). The offset tables and cell
  /// counts are recomputed from `(n, band)` and *verified* against the
  /// provided arrays — any size or content mismatch throws, so a decoder
  /// can adopt the arrays only when they are exactly what a fresh build
  /// would produce. Entry *contents* are vouched for by the snapshot
  /// checksum; only their count is checked here.
  BandedPwLayout(std::size_t n, std::size_t band,
                 ShapeArray<std::size_t> length_base,
                 ShapeArray<std::size_t> tetra_base,
                 ShapeArray<Quad> entries);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t band() const noexcept { return band_; }

  /// Banded (square-target) cells; equals `entries().size()`.
  [[nodiscard]] std::size_t band_cell_count() const noexcept {
    return band_cell_count_;
  }

  /// Cells per child-gap side store (`C(n+1,3)` each).
  [[nodiscard]] std::size_t child_cell_count() const noexcept {
    return child_cell_count_;
  }

  /// Stored child gaps whose slack exceeds the band.
  [[nodiscard]] std::size_t out_of_band_child_count() const noexcept {
    return out_of_band_child_count_;
  }

  /// Total cells a table of this shape allocates (all three stores).
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return band_cell_count_ + 2 * child_cell_count_;
  }

  /// Storage slot of an in-band square-step entry (index into a table's
  /// `raw_cells`); the layout-level form of `BandedPwTable::entry_slot`,
  /// usable before any table exists (engine-shape precomputation).
  [[nodiscard]] std::size_t entry_slot(std::size_t i, std::size_t j,
                                       std::size_t p, std::size_t q) const {
    return flat(i, j, p, (j - i) - (q - p));
  }

  /// Square-step targets (in-band quadruples), grouped by root length
  /// ascending with the quads of one root contiguous.
  [[nodiscard]] const ShapeArray<Quad>& entries() const noexcept {
    return entries_;
  }

  /// Cumulative block offsets per length (snapshot serialisation).
  [[nodiscard]] const ShapeArray<std::size_t>& length_base() const noexcept {
    return length_base_;
  }

  /// Child-store offsets per `i` (snapshot serialisation).
  [[nodiscard]] const ShapeArray<std::size_t>& tetra_base() const noexcept {
    return tetra_base_;
  }

  /// Cells for one `(L, i)` block: sum over s of (s+1) slots.
  [[nodiscard]] std::size_t block_size(std::size_t len) const {
    const std::size_t m = len - 1 < band_ ? len - 1 : band_;
    return m * (m + 3) / 2;
  }

  [[nodiscard]] std::size_t flat(std::size_t i, std::size_t j, std::size_t p,
                                 std::size_t s) const {
    const std::size_t len = j - i;
    SUBDP_ASSERT(len >= 2 && s >= 1 && s <= band_ && s <= len - 1);
    SUBDP_ASSERT(p >= i && p - i <= s);
    // Offset of slack s inside a block: sum_{s'=1..s-1} (s'+1).
    const std::size_t slack_offset = (s - 1) * (s + 2) / 2;
    return length_base_[len] + (i * block_size(len)) + slack_offset +
           (p - i);
  }

  /// Child-gap cell for root `(i,j)` and inner gap boundary `k`; gap
  /// `(i,k)` lives in the left family, gap `(k,j)` in the right (for long
  /// roots both can be out of band at the same `k`, so the families must
  /// not share storage). Both families are keyed by the ordered triple
  /// `(i, k, j)`, indexed tetrahedrally: triples sort by `i`, then `k`,
  /// then `j`, giving `C(n+1,3)` slots.
  [[nodiscard]] std::size_t child_flat(std::size_t i, std::size_t j,
                                       std::size_t k) const {
    SUBDP_ASSERT(i < k && k < j && j <= n_);
    // Within the `i` block, boundary `k` owns `n - k` slots (one per
    // `j > k`); offset of `k`'s row: sum_{b=i+1..k-1} (n - b).
    const std::size_t row = (k - i - 1) * (2 * n_ - i - k) / 2;
    return tetra_base_[i] + row + (j - k - 1);
  }

 private:
  /// Computes counts + offset tables from `(n, band)` alone (shared by
  /// both constructors; the rehydrating one verifies instead of adopting).
  void init_geometry(std::vector<std::size_t>& length_base,
                     std::vector<std::size_t>& tetra_base);

  std::size_t n_;
  std::size_t band_;
  std::size_t band_cell_count_ = 0;
  std::size_t child_cell_count_ = 0;
  std::size_t out_of_band_child_count_ = 0;
  ShapeArray<std::size_t> length_base_;  ///< Cumulative block offsets.
  ShapeArray<std::size_t> tetra_base_;   ///< Child-store offsets per `i`.
  ShapeArray<Quad> entries_;
};

/// Banded `pw'` storage; in-band entries plus child-gap entries of any
/// slack. Reads of anything else yield `kInfinity`.
class BandedPwTable {
 public:
  /// Storage-policy identifier (diagnostics, bench labels).
  static constexpr const char* kLayoutName = "banded";

  /// The immutable geometry this table's cells are addressed by.
  using Layout = BandedPwLayout;

  /// Builds the shared layout for one `(n, band)` shape.
  [[nodiscard]] static std::shared_ptr<const BandedPwLayout> make_layout(
      std::size_t n, std::size_t band) {
    return std::make_shared<const BandedPwLayout>(n, band);
  }

  /// `band` = maximal stored slack `B >= 1` for general gaps. Builds a
  /// private layout (one-shot use; plans share layouts instead).
  BandedPwTable(std::size_t n, std::size_t band)
      : BandedPwTable(make_layout(n, band)) {}

  /// Binds a shared layout; allocates only this instance's cells.
  explicit BandedPwTable(std::shared_ptr<const BandedPwLayout> layout);

  [[nodiscard]] const BandedPwLayout& layout() const noexcept {
    return *layout_;
  }

  [[nodiscard]] std::size_t n() const noexcept { return n_; }

  /// The slack bound `B` (square-step candidates stay within it).
  [[nodiscard]] std::size_t max_slack() const noexcept { return band_; }

  /// Reads `pw'(i,j,p,q)`: 0 for identity gaps; the banded cell when the
  /// slack is within the band; the child-gap cell when the gap shares an
  /// endpoint with the root (`p == i` or `q == j`); `kInfinity` otherwise.
  [[nodiscard]] Cost get(std::size_t i, std::size_t j, std::size_t p,
                         std::size_t q) const {
    SUBDP_ASSERT(i <= p && p < q && q <= j && j <= n_);
    if (p == i && q == j) return 0;
    const std::size_t s = (j - i) - (q - p);
    if (s <= band_) return cells_[layout_->flat(i, j, p, s)];
    if (p == i) return left_child_cells_[layout_->child_flat(i, j, q)];
    if (q == j) return right_child_cells_[layout_->child_flat(i, j, p)];
    return kInfinity;
  }

  /// Writes a stored entry; `stores(i,j,p,q)` must hold.
  void set(std::size_t i, std::size_t j, std::size_t p, std::size_t q,
           Cost value) {
    SUBDP_ASSERT(stores(i, j, p, q));
    const std::size_t s = (j - i) - (q - p);
    if (s <= band_) {
      cells_[layout_->flat(i, j, p, s)] = value;
    } else if (p == i) {
      left_child_cells_[layout_->child_flat(i, j, q)] = value;
    } else {
      right_child_cells_[layout_->child_flat(i, j, p)] = value;
    }
  }

  /// True iff the entry is materialised: in band, or a child gap.
  [[nodiscard]] bool stores(std::size_t i, std::size_t j, std::size_t p,
                            std::size_t q) const {
    if (!(i <= p && p < q && q <= j)) return false;
    if (p == i && q == j) return false;
    if ((j - i) - (q - p) <= band_) return true;
    return p == i || q == j;
  }

  /// Linearised address for CREW-conformance reporting.
  [[nodiscard]] std::uint64_t address(std::size_t i, std::size_t j,
                                      std::size_t p, std::size_t q) const {
    const std::size_t s = (j - i) - (q - p);
    if (s <= band_) {
      return static_cast<std::uint64_t>(layout_->flat(i, j, p, s));
    }
    if (p == i) {
      return kLeftChildTag |
             static_cast<std::uint64_t>(layout_->child_flat(i, j, q));
    }
    return kRightChildTag |
           static_cast<std::uint64_t>(layout_->child_flat(i, j, p));
  }

  /// Storage slot of a stored in-band (square-step) entry; an index into
  /// `raw_cells`. Lets the engine apply a write log without re-deriving
  /// the banded layout. Child-gap entries are not square targets and have
  /// no slot here.
  [[nodiscard]] std::size_t entry_slot(std::size_t i, std::size_t j,
                                       std::size_t p, std::size_t q) const {
    const std::size_t s = (j - i) - (q - p);
    SUBDP_ASSERT(s <= band_);
    return layout_->flat(i, j, p, s);
  }

  /// Unchecked slot of an entry known to be stored *in band* (slack in
  /// `[1, B]`, non-identity). Skips the identity / child-gap fallbacks of
  /// `get`; the square kernel's operands are provably in this regime.
  [[nodiscard]] std::size_t in_band_slot(std::size_t i, std::size_t j,
                                         std::size_t p, std::size_t q) const {
    return layout_->flat(i, j, p, (j - i) - (q - p));
  }

  /// Incremental reader over `pw'(i,j,r,q)` for ascending `r` starting at
  /// `r0` (the HLV r-window's first operand): the slack grows by one per
  /// step, so the slot advances by `s+2, s+3, ...`.
  [[nodiscard]] PwWindowCursor r_window_cursor(std::size_t i, std::size_t j,
                                               std::size_t r0,
                                               std::size_t q) const {
    const std::size_t s = (r0 - i) + (j - q);
    return {cells_.data() + layout_->flat(i, j, r0, s),
            static_cast<std::ptrdiff_t>(s + 2), 1};
  }

  /// Incremental reader over `pw'(i,j,p,s)` for ascending `s` starting at
  /// `s0` (the HLV s-window's first operand): the slack shrinks by one per
  /// step, so the slot retreats by `s, s-1, ...`.
  [[nodiscard]] PwWindowCursor s_window_cursor(std::size_t i, std::size_t j,
                                               std::size_t p,
                                               std::size_t s0) const {
    const std::size_t s = (j - i) - (s0 - p);
    return {cells_.data() + layout_->flat(i, j, p, s),
            -static_cast<std::ptrdiff_t>(s), 1};
  }

  /// Direct in-band cell storage (write-log apply path, cursor reads).
  [[nodiscard]] Cost* raw_cells() noexcept { return cells_.data(); }
  [[nodiscard]] const Cost* raw_cells() const noexcept {
    return cells_.data();
  }

  /// Allocated cells across all stores (E7 memory metric).
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size() + left_child_cells_.size() +
           right_child_cells_.size();
  }

  /// Meaningful stored entries: banded cells plus out-of-band child gaps.
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entries().size() + layout_->out_of_band_child_count();
  }

  /// Square-step targets (in-band quadruples), grouped by root length
  /// ascending. Child-gap entries are not square targets: their activate
  /// value `f + w(child)` is exact once the children have converged, and
  /// keeping them out preserves the O(n^3 * B) square work bound.
  [[nodiscard]] const ShapeArray<Quad>& entries() const noexcept {
    return layout_->entries();
  }

  /// Enumerates the stored gaps `(p,q)` of root `(i,j)` (pebble step):
  /// all in-band gaps, plus the out-of-band child gaps.
  template <class Fn>
  void for_each_gap(std::size_t i, std::size_t j, Fn&& fn) const {
    const std::size_t len = j - i;
    const std::size_t max_s = len - 1 < band_ ? len - 1 : band_;
    for (std::size_t s = 1; s <= max_s; ++s) {
      const std::size_t gap_len = len - s;
      for (std::size_t o = 0; o <= s; ++o) {
        fn(i + o, i + o + gap_len);
      }
    }
    for (std::size_t s = band_ + 1; s <= len - 1; ++s) {
      fn(i, j - s);      // left child gap (i, k) with slack s = j - k
      fn(i + s, j);      // right child gap (k, j) with slack s = k - i
    }
  }

  /// Enumerates the stored gaps of root `(i,j)` as arithmetic-progression
  /// runs (the fast pebble scan's reader; same gap set as `for_each_gap`).
  /// The banded block of a root is one contiguous cell range — slack `s`
  /// holds offsets `o = p - i in [0, s]` at consecutive slots — so each
  /// slack becomes a run with cell stride 1; the gaps `(i+o, i+o+len-s)`
  /// put the matching `w` slots on stride `n+2`. Past the band, each
  /// child-gap side store contributes one run over its boundary `k`: the
  /// tetrahedral `child_flat` is quadratic in `k`, so consecutive slots
  /// differ by `n-k` (left, descending `k`) / `n-k-1` (right, ascending
  /// `k`) — arithmetic progressions with `cell_dstep = -1`.
  template <class Fn>
  void for_each_gap_run(std::size_t i, std::size_t j, Fn&& fn) const {
    const std::size_t len = j - i;
    const std::size_t stride = n_ + 1;
    const std::size_t max_s = len - 1 < band_ ? len - 1 : band_;
    const Cost* block = cells_.data() + layout_->flat(i, j, i, 1);
    std::size_t w0 = i * stride + (j - 1);  // gap (i, j-1): s = 1, o = 0
    for (std::size_t s = 1; s <= max_s; ++s) {
      fn(PwGapRun{block, 1, 0, w0,
                  static_cast<std::ptrdiff_t>(stride + 1), s + 1});
      block += s + 1;
      --w0;  // next slack starts at gap (i, j-s-1)
    }
    if (max_s >= len - 1) return;
    const std::size_t child_count = (len - 1) - band_;
    const std::size_t kl = j - band_ - 1;  // left boundaries kl down to i+1
    fn(PwGapRun{left_child_cells_.data() + layout_->child_flat(i, j, kl),
                -static_cast<std::ptrdiff_t>(n_ - kl), -1,
                i * stride + kl, -1, child_count});
    const std::size_t kr = i + band_ + 1;  // right boundaries kr up to j-1
    fn(PwGapRun{right_child_cells_.data() + layout_->child_flat(i, j, kr),
                static_cast<std::ptrdiff_t>(n_ - kr - 1), -1,
                kr * stride + j, static_cast<std::ptrdiff_t>(stride),
                child_count});
  }

  /// Resets every stored entry to `kInfinity` (in place, no reallocation).
  void reset();

  /// Bulk copy from a same-shape table (square-step double buffering).
  void copy_from(const BandedPwTable& other);

 private:
  static constexpr std::uint64_t kLeftChildTag = std::uint64_t{1} << 60;
  static constexpr std::uint64_t kRightChildTag = std::uint64_t{1} << 61;

  std::shared_ptr<const BandedPwLayout> layout_;
  std::size_t n_;     ///< Cached from the layout (hot-path locality).
  std::size_t band_;  ///< Cached from the layout (hot-path locality).
  std::vector<Cost> cells_;
  std::vector<Cost> left_child_cells_;
  std::vector<Cost> right_child_cells_;
};

static_assert(PwStoragePolicy<BandedPwTable>);

}  // namespace subdp::core
