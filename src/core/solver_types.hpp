#pragma once

/// \file solver_types.hpp
/// Options, traces and results for the sublinear solver.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "pram/machine.hpp"
#include "support/cost.hpp"
#include "support/grid.hpp"

namespace subdp::core {

/// Which partial-weight table the solver keeps.
enum class PwVariant {
  kDense,   ///< Sec. 2 algorithm: O(n^4) table, O(n^5) square work.
  kBanded,  ///< Sec. 5 reduction: slack <= B entries, O(n^3 B) square work.
};

[[nodiscard]] constexpr const char* to_string(PwVariant v) noexcept {
  return v == PwVariant::kDense ? "dense" : "banded";
}

/// How the composition in the square step searches for decompositions.
enum class SquareMode {
  kHlvOneLevel,  ///< This paper's eq. (2c): compose at a node sharing the
                 ///< gap's row `(r,q)` or column `(p,s)` — O(n) candidates.
  kRytterFull,   ///< Rytter's full squaring over all intermediate gaps
                 ///< `(r,s)` — O(n^2) candidates, O(log n) iterations.
};

[[nodiscard]] constexpr const char* to_string(SquareMode m) noexcept {
  return m == SquareMode::kHlvOneLevel ? "hlv" : "rytter";
}

/// When the iteration loop stops.
enum class TerminationMode {
  kFixedBound,      ///< Run the full `2*ceil(sqrt n)` schedule (Sec. 2/4
                    ///< worst-case guarantee), no early exit.
  kFixedPoint,      ///< Stop when an iteration changes no cell (a fixed
                    ///< point persists, so the result equals the full
                    ///< schedule's); still capped by the bound.
  kWUnchangedTwice, ///< The Sec. 7 heuristic: stop when `w'` was unchanged
                    ///< in two consecutive iterations. Not proven
                    ///< sufficient by the paper; capped by the bound.
};

[[nodiscard]] constexpr const char* to_string(TerminationMode m) noexcept {
  switch (m) {
    case TerminationMode::kFixedBound:
      return "fixed-bound";
    case TerminationMode::kFixedPoint:
      return "fixed-point";
    case TerminationMode::kWUnchangedTwice:
      return "w-unchanged-twice";
  }
  return "unknown";
}

/// Solver configuration.
///
/// Together with the instance size `n`, an option set keys a `SolvePlan`
/// (solve_plan.hpp): plans are immutable per `(n, options)` and shared
/// across sessions, so option validation happens once per shape —
/// `SolvePlan::create` rejects invalid combinations (dense layout above
/// `DensePwTable::kMaxDenseN`, windowed pebble without fixed-bound
/// termination, `n` beyond the packed-coordinate cap) with a
/// `SUBDP_REQUIRE` diagnostic before any instance is touched.
struct SublinearOptions {
  PwVariant variant = PwVariant::kBanded;
  SquareMode square_mode = SquareMode::kHlvOneLevel;
  TerminationMode termination = TerminationMode::kFixedPoint;
  /// Maximal stored slack `B`; 0 = the paper's `2*ceil(sqrt n)`.
  std::size_t band_width = 0;
  /// Iteration cap; 0 = `2*ceil(sqrt n)` (or `4*ceil(log2 n) + 8` for
  /// `SquareMode::kRytterFull`).
  std::size_t max_iterations = 0;
  /// Sec. 5 windowed pebble schedule: at iterations `2l-1, 2l` only pairs
  /// with `(l-1)^2 < j-i <= l^2` are pebbled. Requires `kFixedBound`
  /// termination (the window makes per-iteration change useless as a
  /// stopping signal).
  bool windowed_pebble = false;
  /// Hot-path tuning (see the "Performance architecture" notes atop
  /// engine.hpp). Both default on; turning one off selects the reference
  /// implementation of that mechanism, which the equivalence tests compare
  /// against. Neither affects results, iteration counts, or the ledger.
  ///
  /// Delta buffering: a-square and a-pebble record `(cell, new value)`
  /// write logs during the step and apply them after the barrier, instead
  /// of copying the full table every iteration.
  bool delta_buffering = true;
  /// Frontier sweeps: a-activate and a-pebble skip sites none of whose
  /// inputs moved since the site was last scanned. Only engaged on the
  /// fast path (no CREW checker, no cost ledger) and without the windowed
  /// pebble schedule, so checked-mode accounting is unchanged.
  bool frontier_sweeps = true;
  /// Cursor pebble scan (fast path only): the a-pebble gap scan streams
  /// each root's stored gaps as the layout's arithmetic-progression
  /// `PwGapRun`s instead of reading every gap through `for_each_gap` and
  /// the general `get` (identity / slack / child-gap branches per read).
  bool pebble_cursor = true;
  /// Incremental mark grids (fast path only): the frontier sweeps'
  /// containment / prefix grids are updated from the step's moved-mark
  /// delta when sparse (rank-update row passes), rebuilt from scratch when
  /// dense — bit-identical counts either way.
  bool incremental_marks = true;
  /// Per-step engine profiling: record a `StepProfile` per iteration
  /// (frontier density, blocks/quads/pairs skipped vs scanned,
  /// incremental-mark updates vs rebuilds, write-log sizes), readable
  /// through `SolveSession::step_profile()`. Off by default; when off
  /// the engine takes no profiling branches at all, so results, timing
  /// and the ledger are untouched (asserted in the fastpath suite).
  /// Keyed into `serve::PlanKey` so profiled and unprofiled sessions
  /// never share a pool.
  bool profile = false;
  /// Host execution / accounting configuration.
  pram::MachineOptions machine;
};

/// One iteration's engine profile (`SublinearOptions::profile`). Counters
/// cover the fast sweep paths only — instrumented / reference sweeps
/// leave them zero (trivially consistent). Invariants asserted in tests:
/// `square_quads_scanned + square_quads_skipped + square_quads_block_skipped
/// == square_quads_total` and
/// `pebble_pairs_scanned + pebble_pairs_skipped == pebble_pairs_total`.
struct StepProfile {
  std::size_t iteration = 0;  ///< 1-based, matching IterationTrace.
  // a-activate frontier density: the sweep walks the frontier when its
  // total site count undercuts the full split-site count.
  std::uint64_t frontier_sites = 0;
  std::uint64_t total_split_sites = 0;
  bool activate_used_frontier = false;
  // a-square root-major sweep: whole root blocks skipped by the
  // containment count vs scanned, and the quad-level breakdown.
  std::uint64_t square_blocks_scanned = 0;
  std::uint64_t square_blocks_skipped = 0;
  std::uint64_t square_quads_total = 0;
  std::uint64_t square_quads_scanned = 0;
  std::uint64_t square_quads_skipped = 0;        ///< per-quad window test
  std::uint64_t square_quads_block_skipped = 0;  ///< inside a skipped block
  // a-pebble frontier sweep: pairs skipped by the gap-w mark test.
  std::uint64_t pebble_pairs_total = 0;
  std::uint64_t pebble_pairs_scanned = 0;
  std::uint64_t pebble_pairs_skipped = 0;
  // Incremental mark-grid maintenance: delta applications vs full
  // parallel rebuilds (density fallback or invalidated grids).
  std::uint64_t mark_updates_incremental = 0;
  std::uint64_t mark_updates_rebuilt = 0;
  // Delta-buffer write-log sizes (entries applied after the barrier).
  std::uint64_t pw_log_entries = 0;
  std::uint64_t w_log_entries = 0;
};

/// Per-iteration progress counters (experiment E5/E8 traces).
struct IterationTrace {
  std::size_t iteration = 0;       ///< 1-based.
  std::uint64_t pw_cells_changed = 0;  ///< activate + square changes.
  std::uint64_t w_cells_changed = 0;
  std::uint64_t w_finite = 0;      ///< Pairs whose w' is no longer inf.
};

/// Outcome of one iteration (stepping interface).
struct IterationOutcome {
  std::uint64_t activate_changed = 0;
  std::uint64_t square_changed = 0;
  std::uint64_t pebble_changed = 0;
  [[nodiscard]] bool any_changed() const noexcept {
    return activate_changed + square_changed + pebble_changed > 0;
  }
};

/// Result of a solve.
struct SublinearResult {
  Cost cost = kInfinity;            ///< `c(0, n)`.
  std::size_t iterations = 0;       ///< Iterations actually run.
  std::size_t iteration_bound = 0;  ///< The `2*ceil(sqrt n)` schedule.
  bool reached_fixed_point = false;
  /// Final `w'` table (optimal for every pair once the schedule ran).
  support::Grid2D<Cost> w;
  std::vector<IterationTrace> trace;
};

/// Typed failure raised by the serving layer's admission control when a
/// job is declined or abandoned *without solving*: the dispatch queue was
/// full under the reject policy, or the job's deadline passed before a
/// worker picked it up. Queue-full rejections are thrown synchronously
/// from `serve::SolverService::submit`; deadline expiries arrive through
/// the job's future. Solver-side failures (invalid options, bad inputs)
/// keep their own types — catching `AdmissionError` selects exactly the
/// load-shedding outcomes.
class AdmissionError : public std::runtime_error {
 public:
  enum class Kind {
    kQueueFull,          ///< Bounded queue at capacity under `kReject`.
    kDeadlineExceeded,   ///< Deadline passed before a worker picked it up.
  };

  AdmissionError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  /// `kQueueFull` with a retry-after hint: `queue_depth` is the exact
  /// number of jobs occupying the bounded queue at rejection time and
  /// `retry_after` the service's estimate of when the next slot frees
  /// (derived from its queue-wait latency histogram; a service that has
  /// not yet observed any nonzero wait reports a documented conservative
  /// default instead). Clients back off for `retry_after` instead of
  /// spin-retrying.
  AdmissionError(Kind kind, const std::string& what,
                 std::size_t queue_depth,
                 std::chrono::nanoseconds retry_after)
      : std::runtime_error(what),
        kind_(kind),
        has_hint_(true),
        queue_depth_(queue_depth),
        retry_after_(retry_after) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  /// True when the thrower attached a retry-after hint (queue-full
  /// rejections from `serve::SolverService` always do; deadline expiries
  /// never do).
  [[nodiscard]] bool has_hint() const noexcept { return has_hint_; }
  /// Jobs waiting in the queue at rejection time (0 without a hint).
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_depth_;
  }
  /// Estimated time until a queue slot frees; nonnegative, 0 without a
  /// hint.
  [[nodiscard]] std::chrono::nanoseconds retry_after() const noexcept {
    return retry_after_;
  }

 private:
  Kind kind_;
  bool has_hint_ = false;
  std::size_t queue_depth_ = 0;
  std::chrono::nanoseconds retry_after_{0};
};

[[nodiscard]] constexpr const char* to_string(AdmissionError::Kind k) noexcept {
  return k == AdmissionError::Kind::kQueueFull ? "queue-full"
                                               : "deadline-exceeded";
}

/// Aggregate accounting for one `solve_all` call (`BatchSolver` and
/// `serve::SolverService` both report through this).
struct BatchLedger {
  std::size_t instances = 0;      ///< Problems solved.
  std::size_t shape_groups = 0;   ///< Distinct `n` among the inputs.
  std::size_t plans_built = 0;    ///< Plans newly built by this call.
  std::size_t plans_reused = 0;   ///< Shape groups served by a warm plan.
  std::size_t total_iterations = 0;
  /// Summed PRAM work/depth across instances; 0 unless
  /// `options.machine.record_costs` is on.
  std::uint64_t total_work = 0;
  std::uint64_t total_depth = 0;
};

/// All per-instance results (input order) plus the aggregate ledger.
struct BatchResult {
  std::vector<SublinearResult> results;
  BatchLedger ledger;
};

}  // namespace subdp::core
