#pragma once

/// \file solve_plan.hpp
/// The immutable, shareable half of a solve: everything the algorithm
/// precomputes for a *shape* `(n, SublinearOptions)` before it has seen a
/// single instance cost.
///
/// A `SolvePlan` owns, behind `shared_ptr`s:
///  * the validated option set (size caps, dense-layout cap, windowed-
///    pebble/termination compatibility, band clamping) and the derived
///    scalars — the `2*ceil(sqrt n)` iteration schedule, the effective
///    band `B`, and the iteration cap;
///  * the pw storage layout (`BandedPwLayout` / `DensePwLayout`): offset
///    tables and the root-major square-entry list;
///  * the engine shape (`detail::EngineShape`): length-major pair lists
///    and their prefix offsets, the write-log slot of every square entry,
///    the root-block runs of the root-major sweep, and the frontier
///    density cutoff.
///
/// Thread-safety (audited for the concurrent serving subsystem): plans
/// are immutable and thread-agnostic once `create` returns — every member
/// is set before the `shared_ptr<const SolvePlan>` escapes, all accessors
/// are const reads of that state, and `make_engine` only *reads* the plan
/// while constructing engine state owned by the caller's session. So any
/// number of `SolveSession`s (each with its own mutable tables, write
/// logs and PRAM machine) can share one plan from any number of threads
/// with no synchronisation; `serve::SessionPool` relies on exactly this.
/// `BatchSolver` and `serve::SolverService` build one plan per distinct
/// `(n, options)` and run every same-shape instance through it;
/// `SublinearSolver` and `core::solve` are thin facades that build (or
/// reuse) a plan per call site. Building a plan is the expensive step —
/// O(n^2 B^2) entry-list and slot construction — which is exactly what
/// prepare-once/solve-many amortises away.

#include <cstddef>
#include <memory>

#include "core/engine.hpp"
#include "core/pw_banded.hpp"
#include "core/pw_dense.hpp"
#include "core/solver_types.hpp"
#include "dp/problem.hpp"
#include "pram/machine.hpp"

namespace subdp::core {

/// Immutable per-shape solve preparation; see the file comment.
class SolvePlan {
 public:
  /// Validates `options` for instances of `n` objects and precomputes the
  /// shape-dependent state. Throws `std::invalid_argument` on invalid
  /// combinations (n out of the packed-coordinate range, dense layout
  /// above `DensePwTable::kMaxDenseN`, windowed pebble without fixed-bound
  /// termination).
  [[nodiscard]] static std::shared_ptr<const SolvePlan> create(
      std::size_t n, const SublinearOptions& options = {});

  /// Adopts prebuilt engine shapes instead of constructing them — the plan
  /// snapshot rehydration path (snapshot/plan_snapshot.hpp). Runs exactly
  /// `create`'s validation and derived-scalar computation, then requires
  /// the shape matching `options.variant` (and only that one) to be
  /// present with agreeing `n`/band; throws on any mismatch. The returned
  /// plan is indistinguishable from a `create`d one.
  [[nodiscard]] static std::shared_ptr<const SolvePlan> restore(
      std::size_t n, const SublinearOptions& options,
      std::shared_ptr<const detail::EngineShape<BandedPwTable>> banded_shape,
      std::shared_ptr<const detail::EngineShape<DensePwTable>> dense_shape);

  /// Instance size this plan serves; sessions reject anything else.
  [[nodiscard]] std::size_t n() const noexcept { return n_; }

  [[nodiscard]] const SublinearOptions& options() const noexcept {
    return options_;
  }

  /// The worst-case iteration schedule `2*ceil(sqrt n)`.
  [[nodiscard]] std::size_t iteration_bound() const noexcept {
    return bound_;
  }

  /// Effective band width `B` (clamped to `[1, n]`).
  [[nodiscard]] std::size_t effective_band() const noexcept { return band_; }

  /// Iterations a `solve` runs at most (the bound, the Rytter log
  /// schedule, or `options.max_iterations` when set).
  [[nodiscard]] std::size_t iteration_cap() const noexcept { return cap_; }

  /// True for `n == 1`: no iterations, the answer is `init(0)`.
  [[nodiscard]] bool trivial() const noexcept { return n_ == 1; }

  /// pw cells a session of this plan allocates (experiment E7 metric).
  [[nodiscard]] std::size_t pw_cell_count() const noexcept;

  /// Binds the plan's precomputed shape to a concrete instance on the
  /// given machine. Returns null for trivial plans (`n == 1`). Sessions
  /// call this once and `IEngine::reset` for every further instance.
  [[nodiscard]] std::unique_ptr<detail::IEngine> make_engine(
      const dp::Problem& problem, pram::Machine& machine) const;

  /// The precomputed engine shape (null unless `options().variant` selects
  /// this layout and `n >= 2`); snapshot serialisation reads through these.
  [[nodiscard]] const std::shared_ptr<
      const detail::EngineShape<BandedPwTable>>&
  banded_shape() const noexcept {
    return banded_shape_;
  }
  [[nodiscard]] const std::shared_ptr<const detail::EngineShape<DensePwTable>>&
  dense_shape() const noexcept {
    return dense_shape_;
  }

 private:
  SolvePlan() = default;

  /// Shared validation + derived-scalar computation behind both factories.
  [[nodiscard]] static std::shared_ptr<SolvePlan> make_validated(
      std::size_t n, const SublinearOptions& options);

  std::size_t n_ = 0;
  std::size_t bound_ = 0;
  std::size_t band_ = 0;
  std::size_t cap_ = 0;
  SublinearOptions options_;
  /// Exactly one of the two is set (by `options_.variant`) when `n >= 2`.
  std::shared_ptr<const detail::EngineShape<BandedPwTable>> banded_shape_;
  std::shared_ptr<const detail::EngineShape<DensePwTable>> dense_shape_;
};

}  // namespace subdp::core
