#pragma once

/// \file convergence_report.hpp
/// Human-readable rendering of a solve's per-iteration trace — the
/// "simulation printout" view behind the paper's Secs. 6-7 observations
/// (how fast w' cells settle, when the fixed point is reached, how much
/// of the 2*ceil(sqrt n) schedule was actually needed).

#include <string>

#include "core/solver_types.hpp"
#include "support/table_writer.hpp"

namespace subdp::core {

/// Tabulates the iteration trace: per iteration, the number of pw'/w'
/// cells improved and how many pairs have a finite w' so far.
[[nodiscard]] support::TableWriter convergence_table(
    const SublinearResult& result, const std::string& title);

/// One-paragraph summary: iterations used vs schedule, fixed-point
/// status, and the iteration at which the root value last improved.
[[nodiscard]] std::string summarize_convergence(
    const SublinearResult& result);

}  // namespace subdp::core
