#pragma once

/// \file batch_solver.hpp
/// The single-threaded batched front door, now a thin facade over
/// `serve::SolverService`.
///
/// `BatchSolver::solve_all` keeps its original contract — group the input
/// instances by shape (`n`; options are fixed per solver), build one
/// `SolvePlan` per distinct shape, stream every same-shape instance
/// through pooled reusable `SolveSession`s, and return per-instance
/// results in input order, bit-identical to independent `core::solve`
/// calls, plus an aggregated ledger. Since the serving subsystem landed,
/// all of that is `serve::SolverService` behavior; `BatchSolver` simply
/// pins the service to one worker and an effectively unbounded plan
/// cache, so existing callers keep their warm-server semantics — solves
/// stream one at a time through the single worker thread, and (one-worker
/// services skip the serial-backend normalisation) each solve still runs
/// the machine backend configured in the options, exactly as before the
/// facade. The service's admission-control layer does not change any of
/// this: the facade keeps the unbounded-queue default, and `solve_all`
/// jobs are exempt from load shedding by construction — they carry no
/// deadline (so none can expire) and are never rejected (a bounded
/// queue back-pressures the calling thread instead), so the ledger and
/// the bit-identity contract hold under every service configuration
/// (tests/test_core_batch.cpp pins this down). Workloads that want
/// instances *overlapped* across cores, an async `submit` future API
/// with deadlines and overload policies, or a bounded plan cache with
/// eviction stats should hold a `serve::SolverService` directly.
///
/// ```
/// core::BatchSolver batch;                       // banded defaults
/// std::vector<const dp::Problem*> instances = ...;
/// auto out = batch.solve_all(instances);
/// // out.results[k].cost, out.ledger.plans_built, ...
/// ```

#include <cstddef>
#include <memory>
#include <span>

#include "core/solve_plan.hpp"
#include "core/solver_types.hpp"
#include "dp/problem.hpp"
#include "serve/solver_service.hpp"

namespace subdp::core {

/// Prepare-once/solve-many front door; see the file comment.
class BatchSolver {
 public:
  explicit BatchSolver(SublinearOptions options = {});

  /// Solves every instance, grouping by shape to share plans and pooled
  /// sessions. Null pointers are rejected. Results land in input order.
  [[nodiscard]] BatchResult solve_all(
      std::span<const dp::Problem* const> problems);

  /// Warm shapes currently cached (one plan + session pool per distinct
  /// `n`).
  [[nodiscard]] std::size_t cached_plan_count() const {
    return service_.stats().plan_cache.size;
  }

  /// The plan serving shape `n`, or null if that shape was never solved.
  [[nodiscard]] std::shared_ptr<const SolvePlan> plan_for(
      std::size_t n) const {
    return service_.plan_for(n);
  }

  [[nodiscard]] const SublinearOptions& options() const noexcept {
    return options_;
  }

 private:
  static serve::ServiceOptions facade_options(const SublinearOptions& options);

  SublinearOptions options_;
  serve::SolverService service_;
};

}  // namespace subdp::core
