#pragma once

/// \file batch_solver.hpp
/// The batched front door for heavy-traffic workloads: solve many
/// instances with per-shape preparation amortised away.
///
/// `BatchSolver::solve_all` groups the input instances by shape (`n`;
/// options are fixed per solver), builds one `SolvePlan` per distinct
/// shape — entry lists, layout offsets, pair lists, iteration schedule —
/// and then runs every same-shape instance through one reusable
/// `SolveSession`, whose tables are re-initialised in place between
/// instances instead of reallocated. Results are returned in input order
/// and are bit-identical to independent `core::solve` calls (the batch
/// test suite asserts this); an aggregated ledger reports how much
/// preparation the grouping saved and, when the cost ledger is on, the
/// summed PRAM work/depth.
///
/// Plans and sessions persist across `solve_all` calls, so a long-lived
/// `BatchSolver` behaves like a warm server: the first batch of a new
/// shape pays the preparation, every later batch of that shape starts
/// hot.
///
/// ```
/// core::BatchSolver batch;                       // banded defaults
/// std::vector<const dp::Problem*> instances = ...;
/// auto out = batch.solve_all(instances);
/// // out.results[k].cost, out.ledger.plans_built, ...
/// ```

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "core/solve_plan.hpp"
#include "core/solve_session.hpp"
#include "core/solver_types.hpp"
#include "dp/problem.hpp"

namespace subdp::core {

/// Aggregate accounting for one `solve_all` call.
struct BatchLedger {
  std::size_t instances = 0;      ///< Problems solved.
  std::size_t shape_groups = 0;   ///< Distinct `n` among the inputs.
  std::size_t plans_built = 0;    ///< Plans newly built by this call.
  std::size_t plans_reused = 0;   ///< Shape groups served by a warm plan.
  std::size_t total_iterations = 0;
  /// Summed PRAM work/depth across instances; 0 unless
  /// `options.machine.record_costs` is on.
  std::uint64_t total_work = 0;
  std::uint64_t total_depth = 0;
};

/// All per-instance results (input order) plus the aggregate ledger.
struct BatchResult {
  std::vector<SublinearResult> results;
  BatchLedger ledger;
};

/// Prepare-once/solve-many front door; see the file comment.
class BatchSolver {
 public:
  explicit BatchSolver(SublinearOptions options = {});

  /// Solves every instance, grouping by shape to share plans and
  /// sessions. Null pointers are rejected. Results land in input order.
  [[nodiscard]] BatchResult solve_all(
      std::span<const dp::Problem* const> problems);

  /// Warm shapes currently cached (one plan + session per distinct `n`).
  [[nodiscard]] std::size_t cached_plan_count() const noexcept {
    return sessions_.size();
  }

  /// The plan serving shape `n`, or null if that shape was never solved.
  [[nodiscard]] std::shared_ptr<const SolvePlan> plan_for(
      std::size_t n) const;

  [[nodiscard]] const SublinearOptions& options() const noexcept {
    return options_;
  }

 private:
  SublinearOptions options_;
  /// Keyed by `n`; each session pins its plan via `plan_ptr()`.
  std::map<std::size_t, std::unique_ptr<SolveSession>> sessions_;
};

}  // namespace subdp::core
