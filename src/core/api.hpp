#pragma once

/// \file api.hpp
/// Top-level convenience API over the plan/session architecture.
///
/// Four tiers, lowest friction first:
///  * `solve(problem, options)` — one instance in, assembled `Solution`
///    out (cost, optimal tree, iteration and PRAM statistics). Builds a
///    throwaway plan+session pair; what the examples use.
///  * `BatchSolver` (batch_solver.hpp) — many instances in, per-instance
///    results out, with per-shape preparation (entry lists, layout
///    offsets, schedules) built once per distinct `n` and tables reused
///    in place across same-shape instances; runs single-threaded.
///  * `serve::SolverService` (serve/solver_service.hpp) — the concurrent
///    serving front door `BatchSolver` is now a facade over: a bounded
///    LRU plan cache keyed by `(n, options)`, per-plan session pools,
///    and worker threads overlapping independent instances, with a
///    blocking `solve_all` and an async `submit -> std::future`.
///  * `SolvePlan` / `SolveSession` (solve_plan.hpp / solve_session.hpp) —
///    explicit prepare-once/solve-many: share one immutable plan across
///    worker sessions, step, trace, or CREW-check each solve. What
///    `SublinearSolver` and the tiers above are built from.
///
/// `solve_rytter` runs the Rytter-style full-squaring baseline of [8]
/// through the same plan/session machinery; its options must select
/// `SquareMode::kRytterFull` (see `rytter_options()` for the defaults).

#include "core/batch_solver.hpp"
#include "core/solver_types.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/problem.hpp"
#include "dp/tables.hpp"
#include "trees/full_binary_tree.hpp"

namespace subdp::core {

/// A fully assembled answer for one instance.
struct Solution {
  Cost cost = kInfinity;               ///< `c(0, n)`.
  trees::FullBinaryTree tree;          ///< An optimal decomposition tree.
  std::size_t iterations = 0;          ///< Iterations the solver ran.
  std::size_t iteration_bound = 0;     ///< The `2*ceil(sqrt n)` schedule.
  bool reached_fixed_point = false;
  std::uint64_t pram_work = 0;         ///< Total PRAM operations.
  std::uint64_t pram_depth = 0;        ///< Total PRAM parallel time.
};

/// Solves `problem` with the paper's algorithm (banded layout, fixed-point
/// termination by default) and extracts an optimal tree.
[[nodiscard]] Solution solve(const dp::Problem& problem,
                             const SublinearOptions& options = {});

/// The canonical options for the Rytter baseline: dense layout, full
/// squaring, fixed-point termination (O(log n) iterations), default
/// backend.
[[nodiscard]] SublinearOptions rytter_options();

/// Solves with Rytter-style full squaring (the baseline of [8]); O(n^6)
/// work per square, so small n only. `options` must keep
/// `SquareMode::kRytterFull` (start from `rytter_options()` to adjust the
/// backend, termination or iteration cap); routed through the same
/// plan/session machinery as every other solve.
[[nodiscard]] SublinearResult solve_rytter(
    const dp::Problem& problem,
    const SublinearOptions& options = rytter_options());

}  // namespace subdp::core
