#pragma once

/// \file api.hpp
/// Top-level convenience API: solve an instance of recurrence (*) with the
/// paper's algorithm and get back the cost, the optimal tree and the
/// iteration/work statistics. This is what the examples use; power users
/// construct `SublinearSolver` directly for stepping, tracing or CREW
/// checking.

#include "core/solver_types.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/problem.hpp"
#include "dp/tables.hpp"
#include "trees/full_binary_tree.hpp"

namespace subdp::core {

/// A fully assembled answer for one instance.
struct Solution {
  Cost cost = kInfinity;               ///< `c(0, n)`.
  trees::FullBinaryTree tree;          ///< An optimal decomposition tree.
  std::size_t iterations = 0;          ///< Iterations the solver ran.
  std::size_t iteration_bound = 0;     ///< The `2*ceil(sqrt n)` schedule.
  bool reached_fixed_point = false;
  std::uint64_t pram_work = 0;         ///< Total PRAM operations.
  std::uint64_t pram_depth = 0;        ///< Total PRAM parallel time.
};

/// Solves `problem` with the paper's algorithm (banded layout, fixed-point
/// termination by default) and extracts an optimal tree.
[[nodiscard]] Solution solve(const dp::Problem& problem,
                             const SublinearOptions& options = {});

/// Solves with Rytter-style full squaring (the baseline of [8]); dense
/// layout, O(log n) iterations, O(n^6) work per square. Small n only.
[[nodiscard]] SublinearResult solve_rytter(
    const dp::Problem& problem,
    pram::Backend backend = pram::default_backend());

}  // namespace subdp::core
