#include "core/solve_plan.hpp"

#include "core/quad.hpp"
#include "support/stats.hpp"

namespace subdp::core {

std::shared_ptr<SolvePlan> SolvePlan::make_validated(
    std::size_t n, const SublinearOptions& options) {
  SUBDP_REQUIRE(n >= 1, "need at least one object");
  SUBDP_REQUIRE(n <= kMaxPackedN,
                "instance too large: the packed pw-table coordinates "
                "(core::Quad) support n <= 65535");
  SUBDP_REQUIRE(options.variant != PwVariant::kDense ||
                    n <= DensePwTable::kMaxDenseN,
                "instance too large for the dense (every-slack) layout; "
                "use the banded variant");
  SUBDP_REQUIRE(!options.windowed_pebble ||
                    options.termination == TerminationMode::kFixedBound,
                "the windowed pebble schedule requires fixed-bound "
                "termination (per-iteration change is not a stopping "
                "signal when most pairs are outside the window)");

  auto plan = std::shared_ptr<SolvePlan>(new SolvePlan());
  plan->n_ = n;
  plan->options_ = options;
  plan->bound_ = support::two_ceil_sqrt(n);
  plan->band_ = options.band_width != 0 ? options.band_width
                                        : support::two_ceil_sqrt(n);
  if (plan->band_ > n) plan->band_ = n;
  if (plan->band_ < 1) plan->band_ = 1;

  if (options.max_iterations != 0) {
    plan->cap_ = options.max_iterations;
  } else if (options.square_mode == SquareMode::kRytterFull) {
    plan->cap_ = 4 * support::ceil_log2(n < 2 ? 2 : n) + 8;
  } else {
    plan->cap_ = plan->bound_;
  }
  return plan;
}

std::shared_ptr<const SolvePlan> SolvePlan::create(
    std::size_t n, const SublinearOptions& options) {
  auto plan = make_validated(n, options);
  if (n >= 2) {
    if (options.variant == PwVariant::kDense) {
      plan->dense_shape_ =
          detail::EngineShape<DensePwTable>::build(n, plan->band_, options);
    } else {
      plan->banded_shape_ =
          detail::EngineShape<BandedPwTable>::build(n, plan->band_, options);
    }
  }
  return plan;
}

std::shared_ptr<const SolvePlan> SolvePlan::restore(
    std::size_t n, const SublinearOptions& options,
    std::shared_ptr<const detail::EngineShape<BandedPwTable>> banded_shape,
    std::shared_ptr<const detail::EngineShape<DensePwTable>> dense_shape) {
  auto plan = make_validated(n, options);
  if (n >= 2) {
    if (options.variant == PwVariant::kDense) {
      SUBDP_REQUIRE(dense_shape != nullptr && banded_shape == nullptr,
                    "restoring a dense plan requires exactly the dense "
                    "engine shape");
      SUBDP_REQUIRE(dense_shape->n == n && dense_shape->band == plan->band_,
                    "restored engine shape disagrees with the plan's "
                    "(n, band)");
      plan->dense_shape_ = std::move(dense_shape);
    } else {
      SUBDP_REQUIRE(banded_shape != nullptr && dense_shape == nullptr,
                    "restoring a banded plan requires exactly the banded "
                    "engine shape");
      SUBDP_REQUIRE(banded_shape->n == n && banded_shape->band == plan->band_,
                    "restored engine shape disagrees with the plan's "
                    "(n, band)");
      SUBDP_REQUIRE(banded_shape->layout->band() == plan->band_,
                    "restored layout band disagrees with the plan's band");
      plan->banded_shape_ = std::move(banded_shape);
    }
  } else {
    SUBDP_REQUIRE(banded_shape == nullptr && dense_shape == nullptr,
                  "trivial plans carry no engine shape");
  }
  return plan;
}

std::size_t SolvePlan::pw_cell_count() const noexcept {
  if (banded_shape_ != nullptr) return banded_shape_->layout->cell_count();
  if (dense_shape_ != nullptr) return dense_shape_->layout->cell_count();
  return 0;
}

std::unique_ptr<detail::IEngine> SolvePlan::make_engine(
    const dp::Problem& problem, pram::Machine& machine) const {
  SUBDP_REQUIRE(problem.size() == n_,
                "instance size does not match the plan's shape");
  if (trivial()) return nullptr;
  if (options_.variant == PwVariant::kDense) {
    return std::make_unique<detail::Engine<DensePwTable>>(
        dense_shape_, problem, options_, machine);
  }
  return std::make_unique<detail::Engine<BandedPwTable>>(
      banded_shape_, problem, options_, machine);
}

}  // namespace subdp::core
