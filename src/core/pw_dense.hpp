#pragma once

/// \file pw_dense.hpp
/// Entries-indexed dense partial-weight table (the Sec. 2 algorithm's
/// `pw'`, every slack stored).
///
/// The seed stored the table as a flat `(n+1)^4` cube — O(1) addressing
/// bought with ~24x unused cells, which capped dense instances at n = 64.
/// This layout allocates only the *valid* index space: roots `(i,j)` with
/// `j - i >= 2` grouped by length ascending, and within each root the
/// triangular family of gaps `(p,q)` with `i <= p < q <= j` — `L(L+1)/2`
/// cells for a root of length `L` (one of them the definitional identity
/// gap, kept as a never-touched slot so gap addressing stays branch-free).
/// Total: `sum_L (n-L+1) * L(L+1)/2 ~ n^4/24` cells instead of `(n+1)^4`,
/// which lifts the supported size to `kMaxDenseN` = 192 in the same memory
/// envelope (~0.45 GB per table at the cap).
///
/// Addressing is still O(1): a per-length cumulative base, `i` times the
/// per-root block size, plus the closed-form triangle offset
/// `a(2L-a+1)/2 + (b-a-1)` for `a = p-i`, `b = q-i`. Along the engine's
/// HLV windows the offset advances by an arithmetic progression, which is
/// what the `PwStoragePolicy` window cursors expose.
///
/// The identity entries `pw(i,j,i,j) = 0` are definitional and answered
/// without a read; every other stored entry starts at `kInfinity`,
/// matching the algorithm's initialisation. Unlike the old cube (where
/// any coordinate quadruple landed on some allocated cell), `get`/`set`
/// now require a structurally valid quadruple `i <= p < q <= j <= n` —
/// asserted in debug builds, undefined in release. Sizing arithmetic is
/// overflow-checked (`checked_size_mul`/`checked_size_add`) rather than
/// trusting the cap to keep products representable.
///
/// Plan/instance split: offsets and the entry list depend only on `n`, so
/// they live in an immutable `DensePwLayout` shared between every table of
/// the same shape (see `SolvePlan`); a `DensePwTable` owns only its
/// mutable cell vector.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/pw_layout.hpp"
#include "core/quad.hpp"
#include "support/cost.hpp"

namespace subdp::core {

/// Immutable dense-layout geometry for one `n`: the per-length cumulative
/// bases and the square-entry list. Shared across same-shape instances.
class DensePwLayout {
 public:
  explicit DensePwLayout(std::size_t n);

  /// Rehydrates a layout around snapshot-backed arrays (the mmap load
  /// path; see snapshot/plan_snapshot.hpp). Offsets and counts are
  /// recomputed from `n` and verified against the provided arrays — any
  /// mismatch throws; entry contents are vouched for by the snapshot
  /// checksum, only their count is checked here.
  DensePwLayout(std::size_t n, ShapeArray<std::size_t> length_base,
                ShapeArray<Quad> entries);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }

  /// Total allocated cells (identity slots included).
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cell_count_;
  }

  /// All stored quadruples, grouped by root-interval length ascending and
  /// contiguous per root.
  [[nodiscard]] const ShapeArray<Quad>& entries() const noexcept {
    return entries_;
  }

  /// Cumulative block offsets per length (snapshot serialisation).
  [[nodiscard]] const ShapeArray<std::size_t>& length_base() const noexcept {
    return length_base_;
  }

  /// Storage slot of a stored square-step entry (index into a table's
  /// `raw_cells`); the layout-level form of `DensePwTable::entry_slot`,
  /// usable before any table exists (engine-shape precomputation).
  [[nodiscard]] std::size_t entry_slot(std::size_t i, std::size_t j,
                                       std::size_t p, std::size_t q) const {
    return flat(i, j, p, q);
  }

  /// Cells of one root of length `len`: the gap triangle `0 <= a < b <=
  /// len`, identity slot included.
  [[nodiscard]] static constexpr std::size_t cells_per_root(
      std::size_t len) noexcept {
    return len * (len + 1) / 2;
  }

  [[nodiscard]] std::size_t flat(std::size_t i, std::size_t j, std::size_t p,
                                 std::size_t q) const {
    const std::size_t len = j - i;
    const std::size_t a = p - i;
    const std::size_t b = q - i;
    return length_base_[len] + i * cells_per_root(len) +
           a * (2 * len - a + 1) / 2 + (b - a - 1);
  }

 private:
  /// Computes `cell_count_` and the offset table from `n` alone (shared
  /// by both constructors); returns the root count.
  std::size_t init_geometry(std::vector<std::size_t>& length_base);

  std::size_t n_;
  std::size_t cell_count_ = 0;
  ShapeArray<std::size_t> length_base_;  ///< Cumulative block offsets.
  ShapeArray<Quad> entries_;
};

/// Dense `pw'` storage for instances of up to `kMaxDenseN` objects.
class DensePwTable {
 public:
  /// Storage-policy identifier (diagnostics, bench labels).
  static constexpr const char* kLayoutName = "dense-entries";

  /// The immutable geometry this table's cells are addressed by.
  using Layout = DensePwLayout;

  /// Largest supported n. The entries-indexed layout needs ~n^4/24 cells,
  /// so 192 keeps 2 buffers x 8 bytes within ~1 GB (the seed's cube hit
  /// that wall at 64); the constructor additionally overflow-checks the
  /// cell arithmetic so the cap is a memory policy, not a correctness
  /// guard.
  static constexpr std::size_t kMaxDenseN = 192;

  /// Builds the shared layout for one `n` (the `band` parameter exists
  /// for interface parity with `BandedPwTable` and is ignored).
  [[nodiscard]] static std::shared_ptr<const DensePwLayout> make_layout(
      std::size_t n, std::size_t /*band*/ = 0) {
    return std::make_shared<const DensePwLayout>(n);
  }

  /// `band` is accepted for interface parity with `BandedPwTable` and
  /// ignored (a dense table stores every slack). Builds a private layout;
  /// plans share layouts instead.
  explicit DensePwTable(std::size_t n, std::size_t band = 0)
      : DensePwTable(make_layout(n, band)) {}

  /// Binds a shared layout; allocates only this instance's cells.
  explicit DensePwTable(std::shared_ptr<const DensePwLayout> layout);

  [[nodiscard]] const DensePwLayout& layout() const noexcept {
    return *layout_;
  }

  [[nodiscard]] std::size_t n() const noexcept { return n_; }

  /// Effective slack bound: dense tables store all slacks up to n.
  [[nodiscard]] std::size_t max_slack() const noexcept { return n_; }

  /// Reads `pw'(i,j,p,q)` (requires `i <= p < q <= j <= n`); identity
  /// gaps yield 0, anything unwritten yields `kInfinity`.
  [[nodiscard]] Cost get(std::size_t i, std::size_t j, std::size_t p,
                         std::size_t q) const {
    SUBDP_ASSERT(i <= p && p < q && q <= j && j <= n_);
    if (p == i && q == j) return 0;
    return cells_[layout_->flat(i, j, p, q)];
  }

  /// Writes a stored (non-identity) entry.
  void set(std::size_t i, std::size_t j, std::size_t p, std::size_t q,
           Cost value) {
    SUBDP_ASSERT(i <= p && p < q && q <= j && j <= n_);
    SUBDP_ASSERT(!(p == i && q == j));
    cells_[layout_->flat(i, j, p, q)] = value;
  }

  /// True iff the entry is materialised (always, for dense tables).
  [[nodiscard]] bool stores(std::size_t i, std::size_t j, std::size_t p,
                            std::size_t q) const {
    return i <= p && p < q && q <= j && !(p == i && q == j);
  }

  /// Linearised address for CREW-conformance reporting.
  [[nodiscard]] std::uint64_t address(std::size_t i, std::size_t j,
                                      std::size_t p, std::size_t q) const {
    return static_cast<std::uint64_t>(layout_->flat(i, j, p, q));
  }

  /// Storage slot of a stored square-step entry (index into `raw_cells`).
  /// Lets the engine apply a write log without re-deriving the layout.
  [[nodiscard]] std::size_t entry_slot(std::size_t i, std::size_t j,
                                       std::size_t p, std::size_t q) const {
    SUBDP_ASSERT(stores(i, j, p, q));
    return layout_->flat(i, j, p, q);
  }

  /// Unchecked slot of a stored entry (dense stores everything, so every
  /// non-identity quadruple is "in band"). No branches.
  [[nodiscard]] std::size_t in_band_slot(std::size_t i, std::size_t j,
                                         std::size_t p, std::size_t q) const {
    SUBDP_ASSERT(stores(i, j, p, q));
    return layout_->flat(i, j, p, q);
  }

  /// Incremental reader over `pw'(i,j,r,q)` for ascending `r` starting at
  /// `r0` (the HLV r-window's first operand): the triangle offset grows by
  /// `len - a - 1` per step, shrinking by one each time.
  [[nodiscard]] PwWindowCursor r_window_cursor(std::size_t i, std::size_t j,
                                               std::size_t r0,
                                               std::size_t q) const {
    const std::size_t len = j - i;
    const std::size_t a = r0 - i;
    return {cells_.data() + layout_->flat(i, j, r0, q),
            static_cast<std::ptrdiff_t>(len - a - 1), -1};
  }

  /// Incremental reader over `pw'(i,j,p,s)` for ascending `s` starting at
  /// `s0` (the HLV s-window's first operand): contiguous cells.
  [[nodiscard]] PwWindowCursor s_window_cursor(std::size_t i, std::size_t j,
                                               std::size_t p,
                                               std::size_t s0) const {
    return {cells_.data() + layout_->flat(i, j, p, s0), 1, 0};
  }

  /// Direct cell storage (write-log apply path, cursor reads).
  [[nodiscard]] Cost* raw_cells() noexcept { return cells_.data(); }
  [[nodiscard]] const Cost* raw_cells() const noexcept {
    return cells_.data();
  }

  /// Number of allocated cells (the memory-footprint metric for E7);
  /// exceeds `entry_count()` only by the one identity slot per root.
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }

  /// Number of *meaningful* (structurally valid, stored) entries.
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entries().size();
  }

  /// All stored quadruples, grouped by root-interval length ascending and
  /// contiguous per root (the order the square step iterates in; the
  /// engine's root-major sweep keys its block table off this grouping).
  [[nodiscard]] const ShapeArray<Quad>& entries() const noexcept {
    return layout_->entries();
  }

  /// Enumerates the stored gaps `(p,q)` of root `(i,j)` (pebble step).
  template <class Fn>
  void for_each_gap(std::size_t i, std::size_t j, Fn&& fn) const {
    for (std::size_t p = i; p < j; ++p) {
      for (std::size_t q = p + 1; q <= j; ++q) {
        if (p == i && q == j) continue;
        fn(p, q);
      }
    }
  }

  /// Enumerates the stored gaps of root `(i,j)` as arithmetic-progression
  /// runs (the fast pebble scan's reader; same gap set as `for_each_gap`).
  /// A root's gap triangle is laid out row-major by left endpoint `p`, so
  /// every `p` contributes one fully contiguous run — cells and `w` slots
  /// both stride 1 along ascending `q`. The `p == i` row is one gap short:
  /// its last slot is the identity `(i,j)`, which is skipped.
  template <class Fn>
  void for_each_gap_run(std::size_t i, std::size_t j, Fn&& fn) const {
    const std::size_t len = j - i;
    const std::size_t stride = n_ + 1;
    const Cost* cell = cells_.data() + layout_->flat(i, j, i, i + 1);
    fn(PwGapRun{cell, 1, 0, i * stride + (i + 1), 1, len - 1});
    cell += len;  // past the identity slot ending the p == i row
    std::size_t w0 = (i + 1) * stride + (i + 2);
    for (std::size_t p = i + 1; p < j; ++p) {
      const std::size_t count = j - p;
      fn(PwGapRun{cell, 1, 0, w0, 1, count});
      cell += count;
      w0 += stride + 1;
    }
  }

  /// Resets every stored entry to `kInfinity` (in place, no reallocation).
  void reset();

  /// Bulk copy from a same-shape table (square-step double buffering).
  void copy_from(const DensePwTable& other);

 private:
  std::shared_ptr<const DensePwLayout> layout_;
  std::size_t n_;  ///< Cached from the layout (hot-path locality).
  std::vector<Cost> cells_;
};

static_assert(PwStoragePolicy<DensePwTable>);

}  // namespace subdp::core
