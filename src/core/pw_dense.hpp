#pragma once

/// \file pw_dense.hpp
/// Dense O(n^4) partial-weight table (the Sec. 2 algorithm's `pw'`).
///
/// Stores every structural quadruple `(i,j,p,q)` with `i <= p < q <= j`
/// and `(p,q) != (i,j)` in a flat `(n+1)^4` cube (simple O(1) addressing
/// at the cost of unused cells). The identity entries `pw(i,j,i,j) = 0`
/// are definitional and answered without storage; structurally invalid or
/// unstored reads return `kInfinity`, matching the algorithm's
/// initialisation.

#include <cstdint>
#include <vector>

#include "core/quad.hpp"
#include "support/cost.hpp"

namespace subdp::core {

/// Dense `pw'` storage for instances of up to `kMaxDenseN` objects.
class DensePwTable {
 public:
  /// Largest supported n: 2 buffers x (n+1)^4 x 8 bytes must stay modest.
  static constexpr std::size_t kMaxDenseN = 64;

  /// `band` is accepted for interface parity with `BandedPwTable` and
  /// ignored (a dense table stores every slack).
  explicit DensePwTable(std::size_t n, std::size_t band = 0);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }

  /// Effective slack bound: dense tables store all slacks up to n.
  [[nodiscard]] std::size_t max_slack() const noexcept { return n_; }

  /// Reads `pw'(i,j,p,q)`; identity gaps yield 0, anything unstored
  /// (never written) yields `kInfinity`.
  [[nodiscard]] Cost get(std::size_t i, std::size_t j, std::size_t p,
                         std::size_t q) const {
    SUBDP_ASSERT(i <= p && p < q && q <= j && j <= n_);
    if (p == i && q == j) return 0;
    return cells_[flat(i, j, p, q)];
  }

  /// Writes a stored (non-identity) entry.
  void set(std::size_t i, std::size_t j, std::size_t p, std::size_t q,
           Cost value) {
    SUBDP_ASSERT(i <= p && p < q && q <= j && j <= n_);
    SUBDP_ASSERT(!(p == i && q == j));
    cells_[flat(i, j, p, q)] = value;
  }

  /// True iff the entry is materialised (always, for dense tables).
  [[nodiscard]] bool stores(std::size_t i, std::size_t j, std::size_t p,
                            std::size_t q) const {
    return i <= p && p < q && q <= j && !(p == i && q == j);
  }

  /// Linearised address for CREW-conformance reporting.
  [[nodiscard]] std::uint64_t address(std::size_t i, std::size_t j,
                                      std::size_t p, std::size_t q) const {
    return static_cast<std::uint64_t>(flat(i, j, p, q));
  }

  /// Storage slot of a stored square-step entry (index into `raw_cells`).
  /// Lets the engine apply a write log without re-deriving the layout.
  [[nodiscard]] std::size_t entry_slot(std::size_t i, std::size_t j,
                                       std::size_t p, std::size_t q) const {
    SUBDP_ASSERT(stores(i, j, p, q));
    return flat(i, j, p, q);
  }

  /// Direct cell storage (write-log apply path).
  [[nodiscard]] Cost* raw_cells() noexcept { return cells_.data(); }

  /// Number of allocated cells (the memory-footprint metric for E7).
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }

  /// Number of *meaningful* (structurally valid, stored) entries.
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entry_count_;
  }

  /// All stored quadruples, grouped by root-interval length ascending
  /// (the order the square step iterates in).
  [[nodiscard]] const std::vector<Quad>& entries() const noexcept {
    return entries_;
  }

  /// Enumerates the stored gaps `(p,q)` of root `(i,j)` (pebble step).
  template <class Fn>
  void for_each_gap(std::size_t i, std::size_t j, Fn&& fn) const {
    for (std::size_t p = i; p < j; ++p) {
      for (std::size_t q = p + 1; q <= j; ++q) {
        if (p == i && q == j) continue;
        fn(p, q);
      }
    }
  }

  /// Resets every stored entry to `kInfinity`.
  void reset();

  /// Bulk copy from a same-shape table (square-step double buffering).
  void copy_from(const DensePwTable& other);

 private:
  [[nodiscard]] std::size_t flat(std::size_t i, std::size_t j, std::size_t p,
                                 std::size_t q) const {
    return ((i * (n_ + 1) + j) * (n_ + 1) + p) * (n_ + 1) + q;
  }

  std::size_t n_;
  std::size_t entry_count_ = 0;
  std::vector<Cost> cells_;
  std::vector<Quad> entries_;
};

}  // namespace subdp::core
