#pragma once

/// \file engine.hpp
/// The iteration engine behind `SublinearSolver` (implementation detail).
///
/// Template on the partial-weight table type so dense (Sec. 2) and banded
/// (Sec. 5) variants share one implementation of the three macro-steps:
///
///   a-activate (eq. 1a/1b):
///     pw'(i,j,i,k) <- min(pw'(i,j,i,k), f(i,k,j) + w'(k,j))
///     pw'(i,j,k,j) <- min(pw'(i,j,k,j), f(i,k,j) + w'(i,k))
///   a-square (eq. 2c, HLV mode):
///     pw'(i,j,p,q) <- min over r in [max(i, p-B), p):
///                        pw'(i,j,r,q) + pw'(r,q,p,q)
///                     and over s in (q, min(j, q+B)]:
///                        pw'(i,j,p,s) + pw'(p,s,p,q)
///     (Rytter mode: min over all intermediate gaps (r,s) ⊇ (p,q))
///   a-pebble (eq. 3):
///     w'(i,j) <- min over stored gaps (p,q): pw'(i,j,p,q) + w'(p,q)
///
/// Synchronous CREW semantics and the write-log scheme
/// ---------------------------------------------------
/// a-square and a-pebble both read and write the same array, so every read
/// within a step must observe the *previous* step's state regardless of
/// execution backend. Instead of double-buffering (a full table copy per
/// step — the dominant memcpy of the seed engine), the step records a
/// write log of `(cell, new value)` pairs while scanning and applies it
/// only after the step's barrier: reads during the step see pre-step
/// state by construction, and since each cell is written by exactly one
/// logical processor per step (owner-computes, CREW), the apply order is
/// immaterial. The log doubles as the change count and — for a-pebble —
/// as the next iteration's frontier. a-activate writes cells nobody reads
/// within the step and updates in place, as before. Setting
/// `SublinearOptions::delta_buffering = false` restores the reference
/// copy-and-swap stepping (bit-identical results; the equivalence tests
/// compare the two).
///
/// Performance architecture
/// ------------------------
/// Each macro-step runs on one of two paths:
///  * the *instrumented* path (`Machine::step`, `std::function` body) when
///    the cost ledger or the CREW checker is on — per-processor op counts
///    and `note_write` conformance reports, exactly the paper's
///    accounting; and
///  * the *fast* path (`Machine::run_blocks`, templated body) otherwise —
///    the per-cell kernels below are instantiated with `Instr = false`,
///    so op counting and `note_write` compile down to nothing and the
///    kernel inlines into the worker loop.
/// On the fast path, the sweeps are additionally *frontier-driven*:
///  * a-activate re-evaluates only the sites reading a `w(i,j)` the last
///    pebble moved (falling back to the full sweep when that frontier is
///    dense);
///  * a-square (HLV mode) runs *root-major*: the entry list is walked as
///    contiguous per-root blocks, a 2-D containment count over the moved
///    roots answers "did any pw entry inside `(i,j)` move?" in O(1) and
///    skips the whole block when not, and surviving quads test their HLV
///    windows against per-endpoint prefix sums — O(1) per quad instead of
///    the O(B) per-quad root walk this replaces;
///  * a-pebble skips pairs with no root `pw` movement since their last
///    rescan and no moved `w` among their gaps; pairs that do rescan
///    stream their stored gaps as the layout's arithmetic-progression
///    `PwGapRun`s (`pebble_scan_fast`) instead of dereferencing the
///    general `get` per gap;
///  * the mark grids behind both skip tests are maintained
///    *incrementally*: each step diffs its moved-mark set against the
///    marks standing in the grids and rank-updates only the affected
///    rows/columns, falling back to the parallel from-scratch rebuild
///    when the delta's touched-cell estimate reaches a full grid. The
///    counts are integer sums over the same mark set either way, so they
///    are bit-identical; debug builds assert the incremental result
///    against the rebuild every step.
/// Monotonicity of both tables makes every skipped site provably a no-op
/// (its candidates are unchanged and were already min-applied), so
/// results, change counts and iteration schedules are identical to full
/// sweeps — the equivalence tests verify this per iteration. Checked /
/// instrumented runs always use full sweeps, keeping the cost ledger
/// unchanged.
///
/// Storage policy and the in-band read path
/// ----------------------------------------
/// `Table` must model `core::PwStoragePolicy` (pw_layout.hpp): the kernels
/// below are instantiated once per layout with that layout's addressing
/// inlined, not dispatched per call. On the fast path the HLV square scan
/// (`square_scan_fast`) exploits a structural fact: every candidate
/// operand of an in-band target is itself in band (first operands share
/// the target's root with strictly smaller slack; second operands `(r,q,
/// p,q)` / `(p,s,p,q)` have slack `p-r` / `s-q <= B` by the window
/// bounds), except the single identity operand `pw(i,j,i,j)`, whose
/// candidate equals the target's old value and is skipped as a provable
/// no-op. So the inner loops read through the layout's incremental window
/// cursors and unchecked `in_band_slot` instead of the general `get`,
/// eliminating the identity / slack / child-gap branches per read. The
/// a-pebble gap scan gets the same treatment through `for_each_gap_run`:
/// the layout emits every stored gap of a root as arithmetic-progression
/// runs over raw `pw` slots paired with strided `w` slots (`PwGapRun`),
/// so `pebble_scan_fast` is a pointer walk with no per-read addressing
/// branches. `SublinearOptions::pebble_cursor` / `incremental_marks`
/// select the reference implementations of these two mechanisms for the
/// equivalence tests.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/pw_layout.hpp"
#include "core/quad.hpp"
#include "core/solver_types.hpp"
#include "dp/problem.hpp"
#include "pram/machine.hpp"
#include "support/assert.hpp"
#include "support/stats.hpp"

namespace subdp::core::detail {

/// Distinguishes pw-table addresses from w-table addresses in CREW checks.
inline constexpr std::uint64_t kWAddressTag = std::uint64_t{1} << 62;

/// Abstract stepping interface so the public solver can hold either
/// table variant behind one pointer.
class IEngine {
 public:
  virtual ~IEngine() = default;
  virtual IterationOutcome iterate() = 0;
  /// Re-initialises every per-instance table and counter in place for a
  /// new problem of the same shape — no reallocation, no geometry rebuild
  /// (the `SolveSession::reset` hot path).
  virtual void reset(const dp::Problem& problem) = 0;
  [[nodiscard]] virtual std::size_t iterations_done() const = 0;
  [[nodiscard]] virtual Cost w_value(std::size_t i, std::size_t j) const = 0;
  [[nodiscard]] virtual Cost pw_value(std::size_t i, std::size_t j,
                                      std::size_t p, std::size_t q) const = 0;
  [[nodiscard]] virtual const support::Grid2D<Cost>& w_table() const = 0;
  [[nodiscard]] virtual std::uint64_t w_finite_count() const = 0;
  [[nodiscard]] virtual std::size_t pw_cell_count() const = 0;
  /// One StepProfile per completed iteration when
  /// `SublinearOptions::profile` is on; empty otherwise.
  [[nodiscard]] virtual const std::vector<StepProfile>& step_profiles()
      const = 0;
};

/// One pair `(i,j)` of the pebble/activate sweeps. 32-bit fields: unlike
/// the packed `Quad` (whose tables cap `n` anyway), pair lists are cheap
/// enough to exist for `n` far beyond 65535, so they must not truncate.
struct Pair {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
};

/// One root's contiguous run `[begin, end)` of the square-entry list,
/// plus the root's index into the pair list (root-major sweep unit).
struct RootBlock {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint32_t pair = 0;
};

/// Everything the engine precomputes that depends only on the *shape*
/// `(n, band, options)` — never on a concrete instance's costs: the shared
/// storage layout, the length-major pair list and its offsets, the write-
/// log slot of every square entry, the root-block runs of the root-major
/// sweep, and the activate-site total the frontier density test compares
/// against. A `SolvePlan` builds one `EngineShape` per pw layout and every
/// engine (session) of that shape shares it, so per-instance preparation
/// is a table fill instead of an O(n^2 B^2) rebuild.
template <class Table>
struct EngineShape {
  static_assert(PwStoragePolicy<Table>,
                "EngineShape requires a pw storage policy");

  std::shared_ptr<const typename Table::Layout> layout;
  std::size_t n = 0;
  std::size_t band = 0;
  /// Pairs with length >= 2, grouped by length ascending.
  ShapeArray<Pair> pairs;
  /// Prefix offsets addressing a window of lengths in `pairs`.
  ShapeArray<std::size_t> pairs_offset_by_length;
  /// Storage slot per square entry (delta-buffered write-log apply).
  ShapeArray<std::uint32_t> entry_slots;
  /// Per-root runs of the entry list (root-major square sweep).
  ShapeArray<RootBlock> root_blocks;
  /// Total (pair, split) activate sites — the frontier density cutoff.
  std::uint64_t total_split_sites = 0;

  /// Index of pair `(i,j)` in `pairs` (groups are length-major, then `i`).
  [[nodiscard]] std::size_t pair_index(std::size_t i, std::size_t j) const {
    return pairs_offset_by_length[j - i] + i;
  }

  [[nodiscard]] static std::shared_ptr<const EngineShape> build(
      std::size_t n, std::size_t band, const SublinearOptions& options) {
    auto shape = std::make_shared<EngineShape>();
    shape->layout = Table::make_layout(n, band);
    shape->n = n;
    shape->band = band;

    std::vector<Pair> pairs;
    std::vector<std::size_t> pairs_offset_by_length(n + 2, 0);
    for (std::size_t len = 2; len <= n; ++len) {
      pairs_offset_by_length[len] = pairs.size();
      for (std::size_t i = 0; i + len <= n; ++i) {
        pairs.push_back(Pair{static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(i + len)});
      }
    }
    pairs_offset_by_length[n + 1] = pairs.size();
    // Lengths below 2 alias the first real group.
    pairs_offset_by_length[0] = 0;
    pairs_offset_by_length[1] = 0;

    for (const Pair pr : pairs) {
      shape->total_split_sites += pr.j - pr.i - 1;
    }

    const auto& quads = shape->layout->entries();
    std::vector<std::uint32_t> entry_slots;
    std::vector<RootBlock> blocks;
    if (options.delta_buffering) {
      SUBDP_REQUIRE(shape->layout->cell_count() <= UINT32_MAX,
                    "pw table too large for 32-bit write-log slots");
      entry_slots.reserve(quads.size());
      for (const Quad& t : quads) {
        entry_slots.push_back(static_cast<std::uint32_t>(
            shape->layout->entry_slot(t.i, t.j, t.p, t.q)));
      }
      // Per-root runs of the entry list (both layouts emit the quads of a
      // root contiguously) — the unit of the root-major square sweep.
      for (std::size_t idx = 0; idx < quads.size(); ++idx) {
        const Quad& t = quads[idx];
        if (blocks.empty() ||
            pairs[blocks.back().pair].i != t.i ||
            pairs[blocks.back().pair].j != t.j) {
          if (!blocks.empty()) {
            blocks.back().end = static_cast<std::uint32_t>(idx);
          }
          blocks.push_back(RootBlock{
              static_cast<std::uint32_t>(idx), 0,
              static_cast<std::uint32_t>(pairs_offset_by_length[t.j - t.i] +
                                         t.i)});
        }
      }
      if (!blocks.empty()) {
        blocks.back().end = static_cast<std::uint32_t>(quads.size());
      }
    }
    shape->pairs = std::move(pairs);
    shape->pairs_offset_by_length = std::move(pairs_offset_by_length);
    shape->entry_slots = std::move(entry_slots);
    shape->root_blocks = std::move(blocks);
    return shape;
  }

  /// Rehydrates a shape around snapshot-backed arrays (the mmap load path;
  /// see snapshot/plan_snapshot.hpp). Array *contents* are vouched for by
  /// the snapshot checksum; this factory re-derives everything cheap — the
  /// O(n) pair offsets and the split-site total — verifies it against the
  /// stored copy, and checks every array count against what `build` would
  /// produce, throwing on any disagreement so a corrupt file can never
  /// yield a structurally inconsistent shape.
  [[nodiscard]] static std::shared_ptr<const EngineShape> restore(
      std::shared_ptr<const typename Table::Layout> layout, std::size_t n,
      std::size_t band, const SublinearOptions& options,
      ShapeArray<Pair> pairs, ShapeArray<std::size_t> pairs_offset_by_length,
      ShapeArray<std::uint32_t> entry_slots, ShapeArray<RootBlock> root_blocks,
      std::uint64_t total_split_sites) {
    auto shape = std::make_shared<EngineShape>();
    shape->layout = std::move(layout);
    shape->n = n;
    shape->band = band;

    SUBDP_REQUIRE(pairs.size() == (n >= 2 ? n * (n - 1) / 2 : 0),
                  "snapshot pair count disagrees with n");
    SUBDP_REQUIRE(pairs_offset_by_length.size() == n + 2,
                  "snapshot pair-offset count disagrees with n");
    std::size_t at = 0;
    std::uint64_t split_sites = 0;
    for (std::size_t len = 2; len <= n; ++len) {
      SUBDP_REQUIRE(pairs_offset_by_length[len] == at,
                    "snapshot pair offsets disagree with n");
      at += n - len + 1;
      split_sites += static_cast<std::uint64_t>(n - len + 1) * (len - 1);
    }
    SUBDP_REQUIRE(pairs_offset_by_length[n + 1] == at &&
                      pairs_offset_by_length[0] == 0 &&
                      pairs_offset_by_length[1] == 0,
                  "snapshot pair offsets disagree with n");
    SUBDP_REQUIRE(total_split_sites == split_sites,
                  "snapshot split-site total disagrees with n");

    const std::size_t quad_count = shape->layout->entries().size();
    if (options.delta_buffering) {
      SUBDP_REQUIRE(shape->layout->cell_count() <= UINT32_MAX,
                    "pw table too large for 32-bit write-log slots");
      SUBDP_REQUIRE(entry_slots.size() == quad_count,
                    "snapshot entry-slot count disagrees with the layout");
      // Both layouts give every root of length >= 2 at least one quad, so
      // the per-root runs must be one block per pair and end at the list.
      SUBDP_REQUIRE(root_blocks.size() == (quad_count > 0 ? pairs.size() : 0),
                    "snapshot root-block count disagrees with the pair list");
      SUBDP_REQUIRE(root_blocks.empty() ||
                        (root_blocks.front().begin == 0 &&
                         root_blocks.back().end == quad_count),
                    "snapshot root-block runs do not cover the entry list");
    } else {
      SUBDP_REQUIRE(entry_slots.empty() && root_blocks.empty(),
                    "snapshot carries delta-buffering arrays the options "
                    "do not use");
    }

    shape->pairs = std::move(pairs);
    shape->pairs_offset_by_length = std::move(pairs_offset_by_length);
    shape->entry_slots = std::move(entry_slots);
    shape->root_blocks = std::move(root_blocks);
    shape->total_split_sites = total_split_sites;
    return shape;
  }
};

template <class Table>
class Engine final : public IEngine {
  static_assert(PwStoragePolicy<Table>,
                "Engine requires a pw storage policy (see pw_layout.hpp)");

 public:
  Engine(std::shared_ptr<const EngineShape<Table>> shape,
         const dp::Problem& problem, const SublinearOptions& options,
         pram::Machine& machine)
      : shape_(std::move(shape)),
        problem_(&problem),
        options_(options),
        machine_(machine),
        n_(shape_->n),
        delta_(options.delta_buffering),
        pw_(shape_->layout),
        w_(n_ + 1, n_ + 1, kInfinity),
        pairs_(shape_->pairs),
        pairs_offset_by_length_(shape_->pairs_offset_by_length),
        entry_slots_(shape_->entry_slots),
        root_blocks_(shape_->root_blocks),
        total_split_sites_(shape_->total_split_sites) {
    SUBDP_ASSERT(problem.size() == n_);
    if (!delta_) {
      pw_next_.emplace(shape_->layout);
    } else {
      pw_log_.resize(pw_.entries().size());
      w_log_.resize(pairs_.size());
    }
    frontier_enabled_ = delta_ && options_.frontier_sweeps &&
                        !options_.windowed_pebble && !machine_.instrumented();
    profile_ = options_.profile;
    if (frontier_enabled_) {
      // Value-initialised (zeroed) atomic flag arrays.
      root_dirty_ =
          std::make_unique<std::atomic<std::uint8_t>[]>(pairs_.size());
      pw_root_moved_ =
          std::make_unique<std::atomic<std::uint8_t>[]>(pairs_.size());
      const std::size_t grid = (n_ + 1) * (n_ + 1);
      w_moved_.assign(grid, 0);
      contained_.assign(grid, 0);
      root_mark_grid_.assign(grid, 0);
      root_contained_.assign(grid, 0);
      mark_left_pre_.assign(grid, 0);
      mark_right_pre_.assign(grid, 0);
      frontier_.reserve(n_);
      moved_roots_.resize(pairs_.size());
    }
    bind_instance(problem, /*fresh_tables=*/true);
  }

  /// Rebinds the engine to a new same-shape instance: fills both tables
  /// back to their initial state in place and clears every per-instance
  /// counter and frontier mark. Geometry (layout, pair lists, entry
  /// slots, root blocks) is shape-owned and untouched.
  void reset(const dp::Problem& problem) override {
    SUBDP_REQUIRE(problem.size() == n_,
                  "engine reset requires an instance of the plan's size");
    pw_.reset();
    w_.fill(kInfinity);
    bind_instance(problem, /*fresh_tables=*/false);
  }

  IterationOutcome iterate() override {
    ++iteration_;
    if (profile_) begin_profile();
    IterationOutcome out;
    out.activate_changed = run_activate();
    out.square_changed = run_square();
    out.pebble_changed = run_pebble();
    if (profile_) end_profile();
    return out;
  }

  [[nodiscard]] std::size_t iterations_done() const override {
    return iteration_;
  }

  [[nodiscard]] Cost w_value(std::size_t i, std::size_t j) const override {
    SUBDP_REQUIRE(i < j && j <= n_, "w index out of range");
    return w_(i, j);
  }

  [[nodiscard]] Cost pw_value(std::size_t i, std::size_t j, std::size_t p,
                              std::size_t q) const override {
    SUBDP_REQUIRE(i <= p && p < q && q <= j && j <= n_,
                  "pw index out of range");
    return pw_.get(i, j, p, q);
  }

  [[nodiscard]] const support::Grid2D<Cost>& w_table() const override {
    return w_;
  }

  [[nodiscard]] std::uint64_t w_finite_count() const override {
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = i + 1; j <= n_; ++j) {
        if (is_finite(w_(i, j))) ++count;
      }
    }
    return count;
  }

  [[nodiscard]] std::size_t pw_cell_count() const override {
    return pw_.cell_count();
  }

  [[nodiscard]] const std::vector<StepProfile>& step_profiles()
      const override {
    return profiles_;
  }

 private:
  /// One deferred write of a step's log: for a-square, `index` is into
  /// `entries()`; for a-pebble, into `pairs_`.
  struct Delta {
    std::uint32_t index = 0;
    Cost value = 0;
  };

  /// One mark entering (+1) or leaving (-1) a frontier grid between two
  /// consecutive steps — the unit of the incremental grid maintenance.
  struct MarkDelta {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::int32_t add = 1;
  };

  /// The HLV square window of quad `t`: admissible intermediates
  /// `r in [r_lo, p)` and `s in (q, s_hi]`. Shared by the candidate scan
  /// and the frontier skip test, which must agree on the operand set.
  struct HlvWindow {
    std::size_t r_lo = 0;
    std::size_t s_hi = 0;
  };
  [[nodiscard]] HlvWindow hlv_window(const Quad& t) const {
    const std::size_t maxs = pw_.max_slack();
    const std::size_t i = t.i, j = t.j, p = t.p, q = t.q;
    return {p > maxs && p - maxs > i ? p - maxs : i,
            q + maxs < j ? q + maxs : j};
  }

  /// Per-instance (re)initialisation shared by the constructor and
  /// `reset`: base-row costs, iteration counter, and frontier marks.
  /// `fresh_tables` skips the flag clears that a fresh allocation has
  /// already zero-initialised.
  void bind_instance(const dp::Problem& problem, bool fresh_tables) {
    problem_ = &problem;
    iteration_ = 0;
    profiles_.clear();
    prof_ = nullptr;
    for (std::size_t i = 0; i < n_; ++i) {
      w_(i, i + 1) = problem.init(i);
    }
    if (!delta_) w_next_ = w_;
    if (frontier_enabled_) {
      if (!fresh_tables) {
        for (std::size_t k = 0; k < pairs_.size(); ++k) {
          root_dirty_[k].store(0, std::memory_order_relaxed);
          pw_root_moved_[k].store(0, std::memory_order_relaxed);
        }
      }
      moved_roots_count_.store(0, std::memory_order_relaxed);
      // The grids hold a previous instance's marks (or none); force a full
      // rebuild at the first step that needs them.
      square_grids_valid_ = false;
      pebble_grids_valid_ = false;
      square_marks_.clear();
      pebble_marks_.clear();
      square_frontier_ready_ = false;
      // The initial frontier: every base entry w(i, i+1) was just set.
      frontier_.clear();
      for (std::size_t i = 0; i < n_; ++i) {
        frontier_.push_back(Pair{static_cast<std::uint32_t>(i),
                                 static_cast<std::uint32_t>(i + 1)});
      }
    }
  }

  /// Index of pair `(i,j)` in `pairs_` (groups are length-major, then `i`).
  [[nodiscard]] std::size_t pair_index(std::size_t i, std::size_t j) const {
    return pairs_offset_by_length_[j - i] + i;
  }

  /// Sec. 5 window for iteration `t` (1-based): `l = ceil(t/2)`, lengths
  /// `(l-1)^2 < L <= l^2`. Returns the pair-index range to pebble.
  [[nodiscard]] std::pair<std::size_t, std::size_t> pebble_window() const {
    if (!options_.windowed_pebble) return {0, pairs_.size()};
    const std::size_t l = (iteration_ + 1) / 2;
    std::size_t lo_len = (l - 1) * (l - 1) + 1;
    std::size_t hi_len = l * l;
    if (lo_len < 2) lo_len = 2;
    if (hi_len > n_) hi_len = n_;
    if (lo_len > n_ || hi_len < 2 || lo_len > hi_len) {
      return {0, 0};  // nothing to pebble this iteration
    }
    return {pairs_offset_by_length_[lo_len],
            pairs_offset_by_length_[hi_len + 1]};
  }

  // ---- Per-cell kernels --------------------------------------------------
  // Templated on `Instr`: with Instr = false, op counting and CREW
  // reporting vanish at compile time and the kernel inlines into the
  // worker loop of the fast path.

  /// Full a-activate scan of one pair: both eq. 1a/1b targets for every
  /// split `k`. In-place writes (activate targets are read by nobody
  /// within the step). Returns the number of cells improved.
  template <bool Instr>
  std::uint64_t activate_pair(std::size_t i, std::size_t j,
                              std::uint64_t& ops) {
    std::uint64_t local_changed = 0;
    // Both tables store every child gap (eq. 1a/1b write targets): the
    // banded layout keeps out-of-band child gaps in a dedicated side
    // store because the terminal pebble of a balanced node needs them
    // (see pw_banded.hpp).
    for (std::size_t k = i + 1; k <= j - 1; ++k) {
      if constexpr (Instr) ops += 2;
      const Cost fv = problem_->f(i, k, j);
      const Cost w_right = w_(k, j);
      if (is_finite(w_right)) {
        const Cost cand = sat_add(fv, w_right);
        if (cand < pw_.get(i, j, i, k)) {
          pw_.set(i, j, i, k, cand);
          if constexpr (Instr) machine_.note_write(pw_.address(i, j, i, k));
          ++local_changed;
        }
      }
      const Cost w_left = w_(i, k);
      if (is_finite(w_left)) {
        const Cost cand = sat_add(fv, w_left);
        if (cand < pw_.get(i, j, k, j)) {
          pw_.set(i, j, k, j, cand);
          if constexpr (Instr) machine_.note_write(pw_.address(i, j, k, j));
          ++local_changed;
        }
      }
    }
    return local_changed;
  }

  /// a-square candidate scan for one stored quadruple; returns the best
  /// composition (callers write only if it beats `old_value`).
  template <bool Instr>
  Cost square_scan(const Quad& t, Cost old_value, std::uint64_t& ops) {
    const std::size_t i = t.i, j = t.j, p = t.p, q = t.q;
    Cost best = old_value;
    if (options_.square_mode == SquareMode::kRytterFull) {
      // Rytter: all intermediate gaps (r,s) with (p,q) ⊆ (r,s) ⊆ (i,j),
      // excluding the two identities.
      for (std::size_t r = i; r <= p; ++r) {
        for (std::size_t s = q; s <= j; ++s) {
          if (r == i && s == j) continue;
          if (r == p && s == q) continue;
          if constexpr (Instr) ++ops;
          const Cost a = pw_.get(i, j, r, s);
          if (!is_finite(a)) continue;
          const Cost b = pw_.get(r, s, p, q);
          best = sat_min(best, sat_add(a, b));
        }
      }
    } else {
      // HLV eq. (2c): intermediate shares the gap's row or column.
      // Out-of-band operands are infinite, so r (resp. s) may be
      // restricted to the B-window without changing the result.
      const HlvWindow win = hlv_window(t);
      for (std::size_t r = win.r_lo; r < p; ++r) {
        if constexpr (Instr) ++ops;
        const Cost a = pw_.get(i, j, r, q);
        if (!is_finite(a)) continue;
        const Cost b = pw_.get(r, q, p, q);
        best = sat_min(best, sat_add(a, b));
      }
      for (std::size_t s = q + 1; s <= win.s_hi; ++s) {
        if constexpr (Instr) ++ops;
        const Cost a = pw_.get(i, j, p, s);
        if (!is_finite(a)) continue;
        const Cost b = pw_.get(p, s, p, q);
        best = sat_min(best, sat_add(a, b));
      }
    }
    return best;
  }

  /// Fast-path HLV candidate scan: same candidate set, arithmetic and
  /// min-fold as `square_scan`, but every operand is read through the
  /// layout's incremental window cursors and unchecked `in_band_slot`
  /// instead of the general `get` (see the file comment for why all
  /// operands are provably in band). The lone identity operand — `r == i`
  /// with `q == j`, or `s == j` with `p == i` — pairs `pw(i,j,i,j) = 0`
  /// with the target's own old value and can never improve it, so it is
  /// skipped rather than branch-tested on every read.
  Cost square_scan_fast(const Quad& t, Cost old_value) const {
    const std::size_t i = t.i, j = t.j, p = t.p, q = t.q;
    Cost best = old_value;
    const HlvWindow win = hlv_window(t);
    const Cost* raw = pw_.raw_cells();
    std::size_t r = win.r_lo;
    if (r == i && q == j) ++r;  // identity operand: provable no-op
    if (r < p) {
      PwWindowCursor cur = pw_.r_window_cursor(i, j, r, q);
      for (; r < p; ++r) {
        const Cost a = cur.value();
        cur.advance();
        if (!is_finite(a)) continue;
        const Cost b = raw[pw_.in_band_slot(r, q, p, q)];
        best = sat_min(best, sat_add(a, b));
      }
    }
    std::size_t s_hi = win.s_hi;
    if (p == i && s_hi == j) --s_hi;  // identity operand: provable no-op
    if (q < s_hi) {
      PwWindowCursor cur = pw_.s_window_cursor(i, j, p, q + 1);
      for (std::size_t s = q + 1; s <= s_hi; ++s) {
        const Cost a = cur.value();
        cur.advance();
        if (!is_finite(a)) continue;
        const Cost b = raw[pw_.in_band_slot(p, s, p, q)];
        best = sat_min(best, sat_add(a, b));
      }
    }
    return best;
  }

  /// a-pebble gap scan for one pair; returns the best pebbled cost
  /// (callers write only if it beats `old_value`).
  template <bool Instr>
  Cost pebble_scan(std::size_t i, std::size_t j, Cost old_value,
                   std::uint64_t& ops) {
    Cost best = old_value;
    pw_.for_each_gap(i, j, [&](std::size_t p, std::size_t q) {
      if constexpr (Instr) ++ops;
      const Cost a = pw_.get(i, j, p, q);
      if (!is_finite(a)) return;
      best = sat_min(best, sat_add(a, w_(p, q)));
    });
    return best;
  }

  /// Fast-path a-pebble gap scan: same gap set, arithmetic and min-fold
  /// as `pebble_scan`, but the gaps arrive as the layout's
  /// arithmetic-progression `PwGapRun`s — a raw `pw` pointer advanced by
  /// a (possibly decaying) step, paired with a `w` slot advanced by a
  /// fixed stride — so the per-read identity / slack / child-gap
  /// branching of the general `get` vanishes from the inner loop.
  Cost pebble_scan_fast(std::size_t i, std::size_t j, Cost old_value) const {
    Cost best = old_value;
    const Cost* wraw = w_.data();
    pw_.for_each_gap_run(i, j, [&](const PwGapRun& run) {
      const Cost* cell = run.cell;
      std::ptrdiff_t step = run.cell_step;
      const Cost* wp = wraw + run.w_slot;
      for (std::size_t k = 0; k < run.count; ++k) {
        const Cost a = *cell;
        cell += step;
        step += run.cell_dstep;
        const Cost wv = *wp;
        wp += run.w_step;
        if (is_finite(a)) best = sat_min(best, sat_add(a, wv));
      }
    });
    return best;
  }

  // ---- Frontier bookkeeping ----------------------------------------------

  /// Records that some `pw` entry of root `pair_idx` moved, for both
  /// consumers: `root_dirty_` (read by a-pebble, sticky until the pair is
  /// rescanned) and `pw_root_moved_` (read by the next a-square, cleared
  /// at every square apply). The first marking of a root also appends it
  /// to the dense `moved_roots_` list — the exchange admits exactly one
  /// appender per root per square interval, so the list is always the
  /// exact set whose bitmap is `pw_root_moved_` (duplicate-free, in some
  /// backend-dependent order, which is fine: every consumer folds it with
  /// order-independent integer sums).
  void mark_root_dirty(std::size_t pair_idx) {
    root_dirty_[pair_idx].store(1, std::memory_order_relaxed);
    if (pw_root_moved_[pair_idx].exchange(1, std::memory_order_relaxed) ==
        0) {
      moved_roots_[moved_roots_count_.fetch_add(
          1, std::memory_order_relaxed)] =
          static_cast<std::uint32_t>(pair_idx);
    }
  }

  /// Parallel zero-fill of a mark grid (flat ranges are independent).
  void clear_grid(std::vector<std::uint8_t>& grid) {
    machine_.run_blocks(static_cast<std::int64_t>(grid.size()),
                        [&](std::int64_t lo, std::int64_t hi) {
                          std::fill(grid.begin() + lo, grid.begin() + hi,
                                    std::uint8_t{0});
                        });
  }

  /// 2-D containment counts over interval marks: `out(i,j)` = #marked
  /// `(a,b)` with `i <= a < b <= j` (shared by the pebble's moved-w test
  /// and the square's root-block test). Computed as a row-prefix pass
  /// then a column-suffix pass — `out(i,j)` becomes the dominance count
  /// #marked `(a,b)` with `a >= i, b <= j`, which equals the containment
  /// count at every cell since marks only exist at `a < b`. Each pass is
  /// parallel over independent rows / columns (this rebuild was the
  /// root-major sweep's per-step serial O(n^2) bottleneck); every cell
  /// has one owner, so the counts are bit-identical to the serial
  /// inclusion-exclusion DP they replace, whatever the backend.
  void accumulate_containment(const std::vector<std::uint8_t>& marks,
                              std::vector<std::uint32_t>& out) {
    const std::size_t stride = n_ + 1;
    machine_.run_blocks(static_cast<std::int64_t>(n_ + 1),
                        [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t a = lo; a < hi; ++a) {
                            const std::size_t row =
                                static_cast<std::size_t>(a) * stride;
                            std::uint32_t run = 0;
                            for (std::size_t j = 0; j <= n_; ++j) {
                              run += marks[row + j];
                              out[row + j] = run;
                            }
                          }
                        });
    machine_.run_blocks(static_cast<std::int64_t>(n_ + 1),
                        [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t jj = lo; jj < hi; ++jj) {
                            const std::size_t j =
                                static_cast<std::size_t>(jj);
                            for (std::size_t i = n_; i-- > 0;) {
                              out[i * stride + j] +=
                                  out[(i + 1) * stride + j];
                            }
                          }
                        });
  }

  /// Builds the 2-D containment counts of the last pebble's moved
  /// `w` entries: `contained_(i,j)` = #moved `(p,q)` with `i<=p<q<=j`.
  void build_contained_counts() {
    clear_grid(w_moved_);
    for (const Pair e : frontier_) w_moved_[e.i * (n_ + 1) + e.j] = 1;
    accumulate_containment(w_moved_, contained_);
  }

  // ---- Incremental grid maintenance --------------------------------------
  // The from-scratch builds above touch every grid cell each step. When
  // few marks changed between steps, it is cheaper to diff the new mark
  // set against the marks standing in the grids and rank-update only the
  // cells a changed mark contributes to: mark `(a, b)` sits on grid cell
  // `(a, b)`, counts toward the containment rectangle rows `0..a` from
  // column `b` on, and (square grids) toward the two per-endpoint prefix
  // row suffixes. Both forms compute the same integer sums over the same
  // mark set, so the counts are bit-identical; `update_*` picks the
  // cheaper form via a touched-cell estimate and debug builds assert the
  // incremental result against the rebuild.

  /// True when applying `deltas` incrementally would touch at least a
  /// full grid's worth of cells — the from-scratch rebuild is no slower
  /// then. `with_prefix_rows` adds the square grids' two per-mark prefix
  /// row suffixes to the estimate.
  [[nodiscard]] bool delta_is_dense(const std::vector<MarkDelta>& deltas,
                                    bool with_prefix_rows) const {
    const std::uint64_t stride = n_ + 1;
    const std::uint64_t full = stride * stride;
    // Every row worker scans the whole delta list once.
    std::uint64_t touched = stride * deltas.size();
    for (const MarkDelta d : deltas) {
      touched += static_cast<std::uint64_t>(d.a + 1) * (stride - d.b);
      if (with_prefix_rows) touched += (stride - d.b) + (stride - d.a);
      if (touched >= full) return true;
    }
    return touched >= full;
  }

  /// One parallel pass applying a mark-set delta to a mark grid, its
  /// containment counts and (square grids; null for the pebble's)
  /// the per-endpoint prefix grids. Ownership is by row index, so every
  /// cell keeps one writer whatever the backend: mark `(a,b)` updates
  /// `marks` and `right_pre` on row `a`, `left_pre` on row `b`, and the
  /// containment rectangle rows `0..a` from column `b` on.
  void apply_mark_delta(const std::vector<MarkDelta>& deltas,
                        std::vector<std::uint8_t>& marks,
                        std::vector<std::uint32_t>& counts,
                        std::vector<std::uint32_t>* left_pre,
                        std::vector<std::uint32_t>* right_pre) {
    if (deltas.empty()) return;
    const std::size_t stride = n_ + 1;
    machine_.run_blocks(
        static_cast<std::int64_t>(n_ + 1),
        [&](std::int64_t lo64, std::int64_t hi64) {
          const std::size_t lo = static_cast<std::size_t>(lo64);
          const std::size_t hi = static_cast<std::size_t>(hi64);
          for (const MarkDelta d : deltas) {
            const std::size_t a = d.a;
            const std::size_t b = d.b;
            // Unsigned wraparound of -1 subtracts correctly.
            const std::uint32_t add = static_cast<std::uint32_t>(d.add);
            if (a >= lo && a < hi) {
              marks[a * stride + b] = static_cast<std::uint8_t>(d.add > 0);
              if (right_pre != nullptr) {
                std::uint32_t* row = right_pre->data() + a * stride;
                for (std::size_t s = b; s <= n_; ++s) row[s] += add;
              }
            }
            if (left_pre != nullptr && b >= lo && b < hi) {
              std::uint32_t* row = left_pre->data() + b * stride;
              for (std::size_t r = a; r <= n_; ++r) row[r] += add;
            }
            const std::size_t row_hi = a + 1 < hi ? a + 1 : hi;
            for (std::size_t r = lo; r < row_hi; ++r) {
              std::uint32_t* row = counts.data() + r * stride;
              for (std::size_t c = b; c <= n_; ++c) row[c] += add;
            }
          }
        });
  }

#ifndef NDEBUG
  /// Debug cross-checks: the incrementally maintained grids must equal
  /// the from-scratch rebuild (which is left in place — it is identical).
  void verify_contained_counts() {
    const std::vector<std::uint8_t> marks = w_moved_;
    const std::vector<std::uint32_t> counts = contained_;
    build_contained_counts();
    SUBDP_ASSERT(marks == w_moved_);
    SUBDP_ASSERT(counts == contained_);
  }

  void verify_square_prefixes() {
    const std::vector<std::uint8_t> marks = root_mark_grid_;
    const std::vector<std::uint32_t> counts = root_contained_;
    const std::vector<std::uint32_t> left = mark_left_pre_;
    const std::vector<std::uint32_t> right = mark_right_pre_;
    build_square_prefixes();
    SUBDP_ASSERT(marks == root_mark_grid_);
    SUBDP_ASSERT(counts == root_contained_);
    SUBDP_ASSERT(left == mark_left_pre_);
    SUBDP_ASSERT(right == mark_right_pre_);
  }
#endif

  /// Brings `w_moved_` / `contained_` up to the current `frontier_`:
  /// incremental rank updates when the diff against the standing marks
  /// (`pebble_marks_`) is sparse, from-scratch rebuild when dense or when
  /// no valid grid state exists yet (first pebble, post-reset).
  void update_contained_counts() {
    if (!options_.incremental_marks || !pebble_grids_valid_) {
      if (prof_ != nullptr) ++prof_->mark_updates_rebuilt;
      build_contained_counts();
      pebble_marks_.assign(frontier_.begin(), frontier_.end());
      pebble_grids_valid_ = true;
      return;
    }
    const std::size_t stride = n_ + 1;
    // Diff through the mark grid itself: a persisting mark's cell is
    // flagged 2 transiently so the erase scan can tell it from a true
    // removal, then restored. Both lists are duplicate-free.
    mark_delta_.clear();
    for (const Pair e : frontier_) {
      std::uint8_t& cell = w_moved_[e.i * stride + e.j];
      if (cell != 0) {
        cell = 2;
      } else {
        mark_delta_.push_back(MarkDelta{e.i, e.j, +1});
      }
    }
    for (const Pair m : pebble_marks_) {
      std::uint8_t& cell = w_moved_[m.i * stride + m.j];
      if (cell == 2) {
        cell = 1;
      } else {
        mark_delta_.push_back(MarkDelta{m.i, m.j, -1});
      }
    }
    if (delta_is_dense(mark_delta_, /*with_prefix_rows=*/false)) {
      if (prof_ != nullptr) ++prof_->mark_updates_rebuilt;
      build_contained_counts();  // clears the transient flags with the rest
      pebble_marks_.assign(frontier_.begin(), frontier_.end());
      return;
    }
    if (prof_ != nullptr) ++prof_->mark_updates_incremental;
    apply_mark_delta(mark_delta_, w_moved_, contained_, nullptr, nullptr);
    pebble_marks_.assign(frontier_.begin(), frontier_.end());
#ifndef NDEBUG
    verify_contained_counts();
#endif
  }

  /// Snapshots `pw_root_moved_` into grid form for the root-major square
  /// sweep: containment counts (`root_contained_`, the whole-block skip
  /// test) and per-endpoint prefix sums (`mark_left_pre_(q,r)` = #moved
  /// roots `(a,q)` with `a <= r`; `mark_right_pre_(p,s)` = #moved roots
  /// `(p,b)` with `b <= s`) for the O(1) per-quad window tests. Every
  /// stage runs parallel over its independent unit — mark cells, then
  /// rows/columns of the three prefix grids.
  void build_square_prefixes() {
    const std::size_t stride = n_ + 1;
    clear_grid(root_mark_grid_);
    machine_.run_blocks(
        static_cast<std::int64_t>(pairs_.size()),
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t k = lo; k < hi; ++k) {
            if (pw_root_moved_[static_cast<std::size_t>(k)].load(
                    std::memory_order_relaxed) != 0) {
              const Pair pr = pairs_[static_cast<std::size_t>(k)];
              root_mark_grid_[pr.i * stride + pr.j] = 1;  // distinct cells
            }
          }
        });
    accumulate_containment(root_mark_grid_, root_contained_);
    machine_.run_blocks(static_cast<std::int64_t>(n_ + 1),
                        [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t qq = lo; qq < hi; ++qq) {
                            const std::size_t q =
                                static_cast<std::size_t>(qq);
                            std::uint32_t run = 0;
                            for (std::size_t r = 0; r <= n_; ++r) {
                              run += root_mark_grid_[r * stride + q];
                              mark_left_pre_[q * stride + r] = run;
                            }
                          }
                        });
    machine_.run_blocks(static_cast<std::int64_t>(n_ + 1),
                        [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t pp = lo; pp < hi; ++pp) {
                            const std::size_t p =
                                static_cast<std::size_t>(pp);
                            std::uint32_t run = 0;
                            for (std::size_t s = 0; s <= n_; ++s) {
                              run += root_mark_grid_[p * stride + s];
                              mark_right_pre_[p * stride + s] = run;
                            }
                          }
                        });
  }

  /// Records the mark set now standing in the square grids: exactly the
  /// roots on the moved-roots list (`pw_root_moved_` is its bitmap).
  void capture_square_marks() {
    const std::size_t moved =
        moved_roots_count_.load(std::memory_order_relaxed);
    square_marks_.clear();
    for (std::size_t k = 0; k < moved; ++k) {
      square_marks_.push_back(pairs_[moved_roots_[k]]);
    }
    square_grids_valid_ = true;
  }

  /// Brings the square grids up to the current moved-roots set; see
  /// `update_contained_counts` for the scheme. No transient flagging is
  /// needed here: `root_mark_grid_` answers membership for additions and
  /// `pw_root_moved_` (still set — the square apply clears it later) for
  /// removals.
  void update_square_prefixes() {
    if (!options_.incremental_marks || !square_grids_valid_) {
      if (prof_ != nullptr) ++prof_->mark_updates_rebuilt;
      build_square_prefixes();
      capture_square_marks();
      return;
    }
    const std::size_t stride = n_ + 1;
    mark_delta_.clear();
    const std::size_t moved =
        moved_roots_count_.load(std::memory_order_relaxed);
    for (std::size_t k = 0; k < moved; ++k) {
      const Pair pr = pairs_[moved_roots_[k]];
      if (root_mark_grid_[pr.i * stride + pr.j] == 0) {
        mark_delta_.push_back(MarkDelta{pr.i, pr.j, +1});
      }
    }
    for (const Pair m : square_marks_) {
      if (pw_root_moved_[pair_index(m.i, m.j)].load(
              std::memory_order_relaxed) == 0) {
        mark_delta_.push_back(MarkDelta{m.i, m.j, -1});
      }
    }
    if (delta_is_dense(mark_delta_, /*with_prefix_rows=*/true)) {
      if (prof_ != nullptr) ++prof_->mark_updates_rebuilt;
      build_square_prefixes();
      capture_square_marks();
      return;
    }
    if (prof_ != nullptr) ++prof_->mark_updates_incremental;
    apply_mark_delta(mark_delta_, root_mark_grid_, root_contained_,
                     &mark_left_pre_, &mark_right_pre_);
    capture_square_marks();
#ifndef NDEBUG
    verify_square_prefixes();
#endif
  }

  /// Hoisted root-block test: true iff any moved root lies inside `(i,j)`
  /// — a superset of every operand root of every quad of the block, so a
  /// false answer proves the whole block clean.
  [[nodiscard]] bool root_block_moved(const Pair root) const {
    return root_contained_[root.i * (n_ + 1) + root.j] != 0;
  }

  /// O(1) window test replacing the O(B) per-quad root walk: true iff a
  /// second-operand root `(r,q)` with `r` in `[r_lo, p)` or `(p,s)` with
  /// `s` in `(q, s_hi]` moved — exactly the set the scan would read. The
  /// quad's own root is tested separately (hoisted per block).
  [[nodiscard]] bool square_window_moved(const Quad& t) const {
    const std::size_t stride = n_ + 1;
    const std::size_t p = t.p, q = t.q;
    const HlvWindow win = hlv_window(t);
    if (win.r_lo < p) {
      const std::uint32_t hi = mark_left_pre_[q * stride + (p - 1)];
      const std::uint32_t lo =
          win.r_lo == 0 ? 0 : mark_left_pre_[q * stride + (win.r_lo - 1)];
      if (hi != lo) return true;
    }
    if (win.s_hi > q) {
      if (mark_right_pre_[p * stride + win.s_hi] !=
          mark_right_pre_[p * stride + q]) {
        return true;
      }
    }
    return false;
  }

  /// Index of the first root block whose entry range contains `entry_idx`
  /// (the blocks partition the entry list in order).
  [[nodiscard]] std::size_t block_at(std::size_t entry_idx) const {
    const auto it = std::upper_bound(
        root_blocks_.begin(), root_blocks_.end(), entry_idx,
        [](std::size_t v, const RootBlock& blk) { return v < blk.end; });
    return static_cast<std::size_t>(it - root_blocks_.begin());
  }

  /// True iff some moved `w(p,q)` is a proper sub-interval of `(i,j)` —
  /// i.e. a (potential) stored gap whose weight the last pebble changed.
  [[nodiscard]] bool gap_w_moved(std::size_t i, std::size_t j) const {
    const std::size_t at = i * (n_ + 1) + j;
    return contained_[at] > w_moved_[at];
  }

  // ---- Step drivers ------------------------------------------------------

  std::uint64_t run_activate() {
    if (frontier_enabled_) {
      // Frontier-driven activate touches one site per (moved entry,
      // affected root); a full sweep touches every (pair, split) twice.
      // Fall back to the full sweep when the frontier is dense.
      std::uint64_t frontier_sites = 0;
      for (const Pair e : frontier_) frontier_sites += e.i + (n_ - e.j);
      const bool use_frontier = frontier_sites < total_split_sites_;
      if (prof_ != nullptr) {
        prof_->frontier_sites = frontier_sites;
        prof_->total_split_sites = total_split_sites_;
        prof_->activate_used_frontier = use_frontier;
      }
      if (use_frontier) return run_activate_frontier();
    }
    std::atomic<std::uint64_t> changed{0};
    if (machine_.instrumented()) {
      machine_.step(
          "a-activate", static_cast<std::int64_t>(pairs_.size()),
          [&](std::int64_t idx) -> std::uint64_t {
            const Pair pr = pairs_[static_cast<std::size_t>(idx)];
            std::uint64_t ops = 0;
            const std::uint64_t local = activate_pair<true>(pr.i, pr.j, ops);
            if (local > 0) {
              changed.fetch_add(local, std::memory_order_relaxed);
            }
            return ops;
          });
    } else {
      machine_.run_blocks(
          static_cast<std::int64_t>(pairs_.size()),
          [&](std::int64_t lo, std::int64_t hi) {
            std::uint64_t block_changed = 0;
            std::uint64_t ops = 0;
            for (std::int64_t idx = lo; idx < hi; ++idx) {
              const Pair pr = pairs_[static_cast<std::size_t>(idx)];
              const std::uint64_t local =
                  activate_pair<false>(pr.i, pr.j, ops);
              if (local > 0 && frontier_enabled_) {
                mark_root_dirty(static_cast<std::size_t>(idx));
              }
              block_changed += local;
            }
            if (block_changed > 0) {
              changed.fetch_add(block_changed, std::memory_order_relaxed);
            }
          });
    }
    return changed.load();
  }

  /// Fast-path activate driven by the moved-`w` frontier: each moved
  /// entry (a,b) re-evaluates only the sites that read it — as the right
  /// child of roots (i,b) for i < a (target pw(i,b,i,a)) and as the left
  /// child of roots (a,j) for j > b (target pw(a,j,b,j)). All other
  /// sites' candidates are unchanged and, by monotonicity, already
  /// applied. Two logical processors per moved entry; the targets are
  /// pairwise distinct, so the step stays CREW.
  std::uint64_t run_activate_frontier() {
    std::atomic<std::uint64_t> changed{0};
    const std::size_t m = frontier_.size();
    machine_.run_blocks(
        static_cast<std::int64_t>(2 * m),
        [&](std::int64_t lo, std::int64_t hi) {
          std::uint64_t block_changed = 0;
          for (std::int64_t idx = lo; idx < hi; ++idx) {
            const Pair e = frontier_[static_cast<std::size_t>(idx >> 1)];
            const std::size_t a = e.i, b = e.j;
            const Cost wv = w_(a, b);  // finite: it just moved
            if ((idx & 1) == 0) {
              for (std::size_t i = a; i-- > 0;) {
                const Cost cand = sat_add(problem_->f(i, a, b), wv);
                if (cand < pw_.get(i, b, i, a)) {
                  pw_.set(i, b, i, a, cand);
                  mark_root_dirty(pair_index(i, b));
                  ++block_changed;
                }
              }
            } else {
              for (std::size_t j = b + 1; j <= n_; ++j) {
                const Cost cand = sat_add(problem_->f(a, b, j), wv);
                if (cand < pw_.get(a, j, b, j)) {
                  pw_.set(a, j, b, j, cand);
                  mark_root_dirty(pair_index(a, j));
                  ++block_changed;
                }
              }
            }
          }
          if (block_changed > 0) {
            changed.fetch_add(block_changed, std::memory_order_relaxed);
          }
        });
    return changed.load();
  }

  std::uint64_t run_square() {
    const auto& quads = pw_.entries();
    if (!delta_) {
      // Reference mode: full-table copy + swap double-buffering.
      std::atomic<std::uint64_t> changed{0};
      pw_next_->copy_from(pw_);
      machine_.step(
          "a-square", static_cast<std::int64_t>(quads.size()),
          [&](std::int64_t idx) -> std::uint64_t {
            const Quad t = quads[static_cast<std::size_t>(idx)];
            const Cost old_value = pw_.get(t.i, t.j, t.p, t.q);
            std::uint64_t ops = 0;
            const Cost best = square_scan<true>(t, old_value, ops);
            if (best < old_value) {
              pw_next_->set(t.i, t.j, t.p, t.q, best);
              machine_.note_write(pw_.address(t.i, t.j, t.p, t.q));
              changed.fetch_add(1, std::memory_order_relaxed);
            }
            return ops;
          });
      std::swap(pw_, *pw_next_);
      return changed.load();
    }

    // Delta-buffered: reads see pre-step state because all writes are
    // deferred to the post-barrier apply below.
    pw_log_count_.store(0, std::memory_order_relaxed);
    if (machine_.instrumented()) {
      machine_.step(
          "a-square", static_cast<std::int64_t>(quads.size()),
          [&](std::int64_t idx) -> std::uint64_t {
            const Quad t = quads[static_cast<std::size_t>(idx)];
            const Cost old_value = pw_.get(t.i, t.j, t.p, t.q);
            std::uint64_t ops = 0;
            const Cost best = square_scan<true>(t, old_value, ops);
            if (best < old_value) {
              pw_log_[pw_log_count_.fetch_add(1, std::memory_order_relaxed)] =
                  Delta{static_cast<std::uint32_t>(idx), best};
              machine_.note_write(pw_.address(t.i, t.j, t.p, t.q));
            }
            return ops;
          });
    } else {
      // Fast path: HLV scans run the unchecked in-band kernel, and — once
      // operand-movement marks exist (every square after the first) — the
      // sweep is root-major: whole root blocks are skipped via the
      // containment test, surviving quads via the O(1) window test.
      const bool hlv = options_.square_mode == SquareMode::kHlvOneLevel;
      const bool skip_clean =
          frontier_enabled_ && square_frontier_ready_ && hlv;
      if (skip_clean) update_square_prefixes();
      const Cost* raw_read = pw_.raw_cells();
      const bool prof = prof_ != nullptr;
      if (prof) prof_->square_quads_total += quads.size();
      machine_.run_blocks(
          static_cast<std::int64_t>(quads.size()),
          [&](std::int64_t lo64, std::int64_t hi64) {
            const std::size_t lo = static_cast<std::size_t>(lo64);
            const std::size_t hi = static_cast<std::size_t>(hi64);
            std::uint64_t ops = 0;
            const auto scan_one = [&](const Quad& t, std::size_t idx) {
              const Cost old_value = raw_read[entry_slots_[idx]];
              const Cost best = hlv ? square_scan_fast(t, old_value)
                                    : square_scan<false>(t, old_value, ops);
              if (best < old_value) {
                pw_log_[pw_log_count_.fetch_add(
                    1, std::memory_order_relaxed)] =
                    Delta{static_cast<std::uint32_t>(idx), best};
              }
            };
            if (!skip_clean) {
              for (std::size_t idx = lo; idx < hi; ++idx) {
                scan_one(quads[idx], idx);
              }
              if (prof) {
                prof_quads_scanned_.fetch_add(hi - lo,
                                              std::memory_order_relaxed);
              }
              return;
            }
            std::uint64_t blocks_scanned = 0, blocks_skipped = 0;
            std::uint64_t quads_scanned = 0, quads_skipped = 0;
            std::uint64_t quads_block_skipped = 0;
            for (std::size_t bi = block_at(lo); bi < root_blocks_.size();
                 ++bi) {
              const RootBlock& rb = root_blocks_[bi];
              if (rb.begin >= hi) break;
              const std::size_t b = rb.begin < lo ? lo : rb.begin;
              const std::size_t e = rb.end < hi ? rb.end : hi;
              if (!root_block_moved(pairs_[rb.pair])) {
                if (prof) {
                  ++blocks_skipped;
                  quads_block_skipped += e > b ? e - b : 0;
                }
                continue;
              }
              if (prof) ++blocks_scanned;
              const bool root_moved =
                  pw_root_moved_[rb.pair].load(std::memory_order_relaxed) !=
                  0;
              for (std::size_t idx = b; idx < e; ++idx) {
                const Quad t = quads[idx];
                if (!root_moved && !square_window_moved(t)) {
                  if (prof) ++quads_skipped;
                  continue;
                }
                if (prof) ++quads_scanned;
                scan_one(t, idx);
              }
            }
            if (prof) {
              prof_blocks_scanned_.fetch_add(blocks_scanned,
                                             std::memory_order_relaxed);
              prof_blocks_skipped_.fetch_add(blocks_skipped,
                                             std::memory_order_relaxed);
              prof_quads_scanned_.fetch_add(quads_scanned,
                                            std::memory_order_relaxed);
              prof_quads_skipped_.fetch_add(quads_skipped,
                                            std::memory_order_relaxed);
              prof_quads_block_skipped_.fetch_add(quads_block_skipped,
                                                  std::memory_order_relaxed);
            }
          });
    }
    // Apply after the barrier: one write per improved cell, all distinct.
    const std::size_t logged = pw_log_count_.load(std::memory_order_relaxed);
    if (prof_ != nullptr) prof_->pw_log_entries = logged;
    if (frontier_enabled_) {
      // This square consumed all accumulated movement marks; the next one
      // must see only its own applies plus the next activate's writes.
      // The moved-roots list is the exact set behind `pw_root_moved_`, so
      // the clear costs O(moved), not O(pairs).
      const std::size_t moved =
          moved_roots_count_.load(std::memory_order_relaxed);
      for (std::size_t k = 0; k < moved; ++k) {
        pw_root_moved_[moved_roots_[k]].store(0, std::memory_order_relaxed);
      }
      moved_roots_count_.store(0, std::memory_order_relaxed);
      square_frontier_ready_ = true;
    }
    Cost* raw = pw_.raw_cells();
    for (std::size_t k = 0; k < logged; ++k) {
      const Delta rec = pw_log_[k];
      raw[entry_slots_[rec.index]] = rec.value;
      if (frontier_enabled_) {
        const Quad t = quads[rec.index];
        mark_root_dirty(pair_index(t.i, t.j));
      }
    }
    return logged;
  }

  std::uint64_t run_pebble() {
    const auto [w_begin, w_end] = pebble_window();
    if (w_begin == w_end) {
      if (frontier_enabled_) frontier_.clear();
      return 0;
    }
    if (!delta_) {
      // Reference mode: full w copy + swap double-buffering.
      std::atomic<std::uint64_t> changed{0};
      w_next_ = w_;
      machine_.step(
          "a-pebble", static_cast<std::int64_t>(w_end - w_begin),
          [&, w_begin = w_begin](std::int64_t idx) -> std::uint64_t {
            const Pair pr = pairs_[w_begin + static_cast<std::size_t>(idx)];
            const Cost old_value = w_(pr.i, pr.j);
            std::uint64_t ops = 0;
            const Cost best = pebble_scan<true>(pr.i, pr.j, old_value, ops);
            if (best < old_value) {
              w_next_(pr.i, pr.j) = best;
              machine_.note_write(
                  kWAddressTag |
                  (static_cast<std::uint64_t>(pr.i) * (n_ + 1) + pr.j));
              changed.fetch_add(1, std::memory_order_relaxed);
            }
            return ops;
          });
      std::swap(w_, w_next_);
      return changed.load();
    }

    w_log_count_.store(0, std::memory_order_relaxed);
    if (machine_.instrumented()) {
      machine_.step(
          "a-pebble", static_cast<std::int64_t>(w_end - w_begin),
          [&, w_begin = w_begin](std::int64_t idx) -> std::uint64_t {
            const std::size_t at = w_begin + static_cast<std::size_t>(idx);
            const Pair pr = pairs_[at];
            const Cost old_value = w_(pr.i, pr.j);
            std::uint64_t ops = 0;
            const Cost best = pebble_scan<true>(pr.i, pr.j, old_value, ops);
            if (best < old_value) {
              w_log_[w_log_count_.fetch_add(1, std::memory_order_relaxed)] =
                  Delta{static_cast<std::uint32_t>(at), best};
              machine_.note_write(
                  kWAddressTag |
                  (static_cast<std::uint64_t>(pr.i) * (n_ + 1) + pr.j));
            }
            return ops;
          });
    } else {
      const bool use_frontier = frontier_enabled_;
      const bool cursor = options_.pebble_cursor;
      if (use_frontier) update_contained_counts();
      const bool prof = prof_ != nullptr;
      if (prof) prof_->pebble_pairs_total += w_end - w_begin;
      machine_.run_blocks(
          static_cast<std::int64_t>(w_end - w_begin),
          [&, w_begin = w_begin](std::int64_t lo, std::int64_t hi) {
            std::uint64_t ops = 0;
            std::uint64_t pairs_scanned = 0, pairs_skipped = 0;
            for (std::int64_t idx = lo; idx < hi; ++idx) {
              const std::size_t at = w_begin + static_cast<std::size_t>(idx);
              const Pair pr = pairs_[at];
              if (use_frontier) {
                // Skip unless some input moved: a pw entry of this root
                // (activate/square this iteration, sticky until rescanned)
                // or the w of a contained gap (last pebble).
                const bool pw_moved =
                    root_dirty_[at].load(std::memory_order_relaxed) != 0;
                if (!pw_moved && !gap_w_moved(pr.i, pr.j)) {
                  if (prof) ++pairs_skipped;
                  continue;
                }
                if (pw_moved) {
                  root_dirty_[at].store(0, std::memory_order_relaxed);
                }
              }
              if (prof) ++pairs_scanned;
              const Cost old_value = w_(pr.i, pr.j);
              const Cost best =
                  cursor ? pebble_scan_fast(pr.i, pr.j, old_value)
                         : pebble_scan<false>(pr.i, pr.j, old_value, ops);
              if (best < old_value) {
                w_log_[w_log_count_.fetch_add(1, std::memory_order_relaxed)] =
                    Delta{static_cast<std::uint32_t>(at), best};
              }
            }
            if (prof) {
              prof_pairs_scanned_.fetch_add(pairs_scanned,
                                            std::memory_order_relaxed);
              prof_pairs_skipped_.fetch_add(pairs_skipped,
                                            std::memory_order_relaxed);
            }
          });
    }
    // Apply after the barrier; the logged pairs are the next frontier.
    const std::size_t logged = w_log_count_.load(std::memory_order_relaxed);
    if (prof_ != nullptr) prof_->w_log_entries = logged;
    if (frontier_enabled_) frontier_.clear();
    Cost* wraw = w_.data();
    for (std::size_t k = 0; k < logged; ++k) {
      const Delta rec = w_log_[k];
      const Pair pr = pairs_[rec.index];
      wraw[pr.i * (n_ + 1) + pr.j] = rec.value;
      if (frontier_enabled_) frontier_.push_back(pr);
    }
    return logged;
  }

  // ---- Per-step profiling (options_.profile) -----------------------------
  // Parallel sweep lambdas accumulate block-local counters and flush them
  // to these relaxed atomics; `end_profile` loads the totals into the
  // iteration's StepProfile after the last barrier. Serial call sites
  // (the activate density decision, the mark-grid update choice, the
  // post-barrier log totals) write `prof_` directly.

  void begin_profile() {
    profiles_.emplace_back();
    prof_ = &profiles_.back();
    prof_->iteration = iteration_;
    prof_blocks_scanned_.store(0, std::memory_order_relaxed);
    prof_blocks_skipped_.store(0, std::memory_order_relaxed);
    prof_quads_scanned_.store(0, std::memory_order_relaxed);
    prof_quads_skipped_.store(0, std::memory_order_relaxed);
    prof_quads_block_skipped_.store(0, std::memory_order_relaxed);
    prof_pairs_scanned_.store(0, std::memory_order_relaxed);
    prof_pairs_skipped_.store(0, std::memory_order_relaxed);
  }

  void end_profile() {
    prof_->square_blocks_scanned =
        prof_blocks_scanned_.load(std::memory_order_relaxed);
    prof_->square_blocks_skipped =
        prof_blocks_skipped_.load(std::memory_order_relaxed);
    prof_->square_quads_scanned =
        prof_quads_scanned_.load(std::memory_order_relaxed);
    prof_->square_quads_skipped =
        prof_quads_skipped_.load(std::memory_order_relaxed);
    prof_->square_quads_block_skipped =
        prof_quads_block_skipped_.load(std::memory_order_relaxed);
    prof_->pebble_pairs_scanned =
        prof_pairs_scanned_.load(std::memory_order_relaxed);
    prof_->pebble_pairs_skipped =
        prof_pairs_skipped_.load(std::memory_order_relaxed);
    prof_ = nullptr;
  }

  std::shared_ptr<const EngineShape<Table>> shape_;
  const dp::Problem* problem_;
  SublinearOptions options_;
  pram::Machine& machine_;
  std::size_t n_;
  bool delta_;
  Table pw_;
  std::optional<Table> pw_next_;    ///< Reference copy-based mode only.
  support::Grid2D<Cost> w_;
  support::Grid2D<Cost> w_next_;    ///< Reference copy-based mode only.

  // Shape-owned geometry — immutable aliases into `*shape_`.
  const ShapeArray<Pair>& pairs_;
  const ShapeArray<std::size_t>& pairs_offset_by_length_;
  const ShapeArray<std::uint32_t>& entry_slots_;  ///< Slot per entry.
  const ShapeArray<RootBlock>& root_blocks_;      ///< Per-root runs.
  std::uint64_t total_split_sites_ = 0;

  // Delta-buffered stepping state (delta_ == true).
  std::vector<Delta> pw_log_;
  std::vector<Delta> w_log_;
  std::atomic<std::size_t> pw_log_count_{0};
  std::atomic<std::size_t> w_log_count_{0};

  // Frontier state (frontier_enabled_ == true).
  bool frontier_enabled_ = false;
  bool square_frontier_ready_ = false;  ///< First square has no marks yet.
  std::unique_ptr<std::atomic<std::uint8_t>[]> root_dirty_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> pw_root_moved_;
  std::vector<Pair> frontier_;  ///< w entries moved by the last pebble.
  std::vector<std::uint8_t> w_moved_;
  std::vector<std::uint32_t> contained_;
  // Root-major square sweep snapshots (maintained incrementally from the
  // moved-roots delta when sparse, rebuilt in parallel row/column passes
  // when dense — see update_square_prefixes).
  std::vector<std::uint8_t> root_mark_grid_;
  std::vector<std::uint32_t> root_contained_;
  std::vector<std::uint32_t> mark_left_pre_;
  std::vector<std::uint32_t> mark_right_pre_;
  // Incremental grid maintenance state: the dense list behind
  // `pw_root_moved_`, the mark sets the grids currently reflect, and the
  // scratch delta list (see update_contained_counts / _square_prefixes).
  std::vector<std::uint32_t> moved_roots_;
  std::atomic<std::size_t> moved_roots_count_{0};
  std::vector<Pair> square_marks_;
  std::vector<Pair> pebble_marks_;
  std::vector<MarkDelta> mark_delta_;
  bool square_grids_valid_ = false;
  bool pebble_grids_valid_ = false;

  // Profiling state (see begin_profile / end_profile above). `prof_` is
  // non-null only inside a profiled iterate(); every hot-path counter
  // increment is guarded by a hoisted `prof` bool, so the default
  // (profile off) takes no extra work.
  bool profile_ = false;
  std::vector<StepProfile> profiles_;
  StepProfile* prof_ = nullptr;
  std::atomic<std::uint64_t> prof_blocks_scanned_{0};
  std::atomic<std::uint64_t> prof_blocks_skipped_{0};
  std::atomic<std::uint64_t> prof_quads_scanned_{0};
  std::atomic<std::uint64_t> prof_quads_skipped_{0};
  std::atomic<std::uint64_t> prof_quads_block_skipped_{0};
  std::atomic<std::uint64_t> prof_pairs_scanned_{0};
  std::atomic<std::uint64_t> prof_pairs_skipped_{0};

  std::size_t iteration_ = 0;
};

}  // namespace subdp::core::detail
