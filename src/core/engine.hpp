#pragma once

/// \file engine.hpp
/// The iteration engine behind `SublinearSolver` (implementation detail).
///
/// Template on the partial-weight table type so dense (Sec. 2) and banded
/// (Sec. 5) variants share one implementation of the three macro-steps:
///
///   a-activate (eq. 1a/1b):
///     pw'(i,j,i,k) <- min(pw'(i,j,i,k), f(i,k,j) + w'(k,j))
///     pw'(i,j,k,j) <- min(pw'(i,j,k,j), f(i,k,j) + w'(i,k))
///   a-square (eq. 2c, HLV mode):
///     pw'(i,j,p,q) <- min over r in [max(i, p-B), p):
///                        pw'(i,j,r,q) + pw'(r,q,p,q)
///                     and over s in (q, min(j, q+B)]:
///                        pw'(i,j,p,s) + pw'(p,s,p,q)
///     (Rytter mode: min over all intermediate gaps (r,s) ⊇ (p,q))
///   a-pebble (eq. 3):
///     w'(i,j) <- min over stored gaps (p,q): pw'(i,j,p,q) + w'(p,q)
///
/// Synchronous PRAM semantics: a-square and a-pebble double-buffer the
/// array they both read and write, so every read observes the previous
/// step's state regardless of execution backend; a-activate writes cells
/// nobody reads within the step and can update in place. Each cell is
/// written by exactly one logical processor per step (owner-computes), so
/// the execution is CREW — which the `CrewChecker` verifies when enabled.

#include <atomic>
#include <string>
#include <vector>

#include "core/quad.hpp"
#include "core/solver_types.hpp"
#include "dp/problem.hpp"
#include "pram/machine.hpp"
#include "support/assert.hpp"
#include "support/stats.hpp"

namespace subdp::core::detail {

/// Distinguishes pw-table addresses from w-table addresses in CREW checks.
inline constexpr std::uint64_t kWAddressTag = std::uint64_t{1} << 62;

/// Abstract stepping interface so the public solver can hold either
/// table variant behind one pointer.
class IEngine {
 public:
  virtual ~IEngine() = default;
  virtual IterationOutcome iterate() = 0;
  [[nodiscard]] virtual std::size_t iterations_done() const = 0;
  [[nodiscard]] virtual Cost w_value(std::size_t i, std::size_t j) const = 0;
  [[nodiscard]] virtual Cost pw_value(std::size_t i, std::size_t j,
                                      std::size_t p, std::size_t q) const = 0;
  [[nodiscard]] virtual const support::Grid2D<Cost>& w_table() const = 0;
  [[nodiscard]] virtual std::uint64_t w_finite_count() const = 0;
  [[nodiscard]] virtual std::size_t pw_cell_count() const = 0;
};

/// One pair `(i,j)` of the pebble/activate sweeps.
struct Pair {
  std::uint16_t i = 0;
  std::uint16_t j = 0;
};

template <class Table>
class Engine final : public IEngine {
 public:
  Engine(const dp::Problem& problem, const SublinearOptions& options,
         std::size_t band, pram::Machine& machine)
      : problem_(problem),
        options_(options),
        machine_(machine),
        n_(problem.size()),
        pw_(n_, band),
        pw_next_(n_, band),
        w_(n_ + 1, n_ + 1, kInfinity),
        w_next_(n_ + 1, n_ + 1, kInfinity) {
    for (std::size_t i = 0; i < n_; ++i) {
      w_(i, i + 1) = problem.init(i);
    }
    w_next_ = w_;
    build_pair_lists();
  }

  IterationOutcome iterate() override {
    ++iteration_;
    IterationOutcome out;
    out.activate_changed = run_activate();
    out.square_changed = run_square();
    out.pebble_changed = run_pebble();
    return out;
  }

  [[nodiscard]] std::size_t iterations_done() const override {
    return iteration_;
  }

  [[nodiscard]] Cost w_value(std::size_t i, std::size_t j) const override {
    SUBDP_REQUIRE(i < j && j <= n_, "w index out of range");
    return w_(i, j);
  }

  [[nodiscard]] Cost pw_value(std::size_t i, std::size_t j, std::size_t p,
                              std::size_t q) const override {
    SUBDP_REQUIRE(i <= p && p < q && q <= j && j <= n_,
                  "pw index out of range");
    return pw_.get(i, j, p, q);
  }

  [[nodiscard]] const support::Grid2D<Cost>& w_table() const override {
    return w_;
  }

  [[nodiscard]] std::uint64_t w_finite_count() const override {
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = i + 1; j <= n_; ++j) {
        if (is_finite(w_(i, j))) ++count;
      }
    }
    return count;
  }

  [[nodiscard]] std::size_t pw_cell_count() const override {
    return pw_.cell_count();
  }

 private:
  void build_pair_lists() {
    // Pairs with length >= 2, grouped by length ascending, plus the
    // prefix offsets needed to address a window of lengths.
    pairs_offset_by_length_.assign(n_ + 2, 0);
    for (std::size_t len = 2; len <= n_; ++len) {
      pairs_offset_by_length_[len] = pairs_.size();
      for (std::size_t i = 0; i + len <= n_; ++i) {
        pairs_.push_back(Pair{static_cast<std::uint16_t>(i),
                              static_cast<std::uint16_t>(i + len)});
      }
    }
    pairs_offset_by_length_[n_ + 1] = pairs_.size();
    // Lengths below 2 alias the first real group.
    pairs_offset_by_length_[0] = 0;
    pairs_offset_by_length_[1] = 0;
  }

  /// Sec. 5 window for iteration `t` (1-based): `l = ceil(t/2)`, lengths
  /// `(l-1)^2 < L <= l^2`. Returns the pair-index range to pebble.
  [[nodiscard]] std::pair<std::size_t, std::size_t> pebble_window() const {
    if (!options_.windowed_pebble) return {0, pairs_.size()};
    const std::size_t l = (iteration_ + 1) / 2;
    std::size_t lo_len = (l - 1) * (l - 1) + 1;
    std::size_t hi_len = l * l;
    if (lo_len < 2) lo_len = 2;
    if (hi_len > n_) hi_len = n_;
    if (lo_len > n_ || hi_len < 2 || lo_len > hi_len) {
      return {0, 0};  // nothing to pebble this iteration
    }
    return {pairs_offset_by_length_[lo_len],
            pairs_offset_by_length_[hi_len + 1]};
  }

  std::uint64_t run_activate() {
    std::atomic<std::uint64_t> changed{0};
    machine_.step(
        "a-activate", static_cast<std::int64_t>(pairs_.size()),
        [&](std::int64_t idx) -> std::uint64_t {
          const Pair pr = pairs_[static_cast<std::size_t>(idx)];
          const std::size_t i = pr.i;
          const std::size_t j = pr.j;
          std::uint64_t ops = 0;
          std::uint64_t local_changed = 0;
          // Both tables store every child gap (eq. 1a/1b write targets):
          // the banded layout keeps out-of-band child gaps in a dedicated
          // side store because the terminal pebble of a balanced node
          // needs them (see pw_banded.hpp).
          for (std::size_t k = i + 1; k <= j - 1; ++k) {
            ops += 2;
            const Cost fv = problem_.f(i, k, j);
            const Cost w_right = w_(k, j);
            if (is_finite(w_right)) {
              const Cost cand = sat_add(fv, w_right);
              if (cand < pw_.get(i, j, i, k)) {
                pw_.set(i, j, i, k, cand);
                machine_.note_write(pw_.address(i, j, i, k));
                ++local_changed;
              }
            }
            const Cost w_left = w_(i, k);
            if (is_finite(w_left)) {
              const Cost cand = sat_add(fv, w_left);
              if (cand < pw_.get(i, j, k, j)) {
                pw_.set(i, j, k, j, cand);
                machine_.note_write(pw_.address(i, j, k, j));
                ++local_changed;
              }
            }
          }
          if (local_changed > 0) {
            changed.fetch_add(local_changed, std::memory_order_relaxed);
          }
          return ops;
        });
    return changed.load();
  }

  std::uint64_t run_square() {
    std::atomic<std::uint64_t> changed{0};
    pw_next_.copy_from(pw_);
    const auto& quads = pw_.entries();
    const bool full_square = options_.square_mode == SquareMode::kRytterFull;
    const std::size_t maxs = pw_.max_slack();
    machine_.step(
        "a-square", static_cast<std::int64_t>(quads.size()),
        [&](std::int64_t idx) -> std::uint64_t {
          const Quad t = quads[static_cast<std::size_t>(idx)];
          const std::size_t i = t.i, j = t.j, p = t.p, q = t.q;
          const Cost old_value = pw_.get(i, j, p, q);
          Cost best = old_value;
          std::uint64_t ops = 0;
          if (full_square) {
            // Rytter: all intermediate gaps (r,s) with (p,q) ⊆ (r,s) ⊆
            // (i,j), excluding the two identities.
            for (std::size_t r = i; r <= p; ++r) {
              for (std::size_t s = q; s <= j; ++s) {
                if (r == i && s == j) continue;
                if (r == p && s == q) continue;
                ++ops;
                const Cost a = pw_.get(i, j, r, s);
                if (!is_finite(a)) continue;
                const Cost b = pw_.get(r, s, p, q);
                best = sat_min(best, sat_add(a, b));
              }
            }
          } else {
            // HLV eq. (2c): intermediate shares the gap's row or column.
            // Out-of-band operands are infinite, so r (resp. s) may be
            // restricted to the B-window without changing the result.
            const std::size_t r_lo = p > maxs && p - maxs > i ? p - maxs : i;
            for (std::size_t r = r_lo; r < p; ++r) {
              ++ops;
              const Cost a = pw_.get(i, j, r, q);
              if (!is_finite(a)) continue;
              const Cost b = pw_.get(r, q, p, q);
              best = sat_min(best, sat_add(a, b));
            }
            const std::size_t s_hi = q + maxs < j ? q + maxs : j;
            for (std::size_t s = q + 1; s <= s_hi; ++s) {
              ++ops;
              const Cost a = pw_.get(i, j, p, s);
              if (!is_finite(a)) continue;
              const Cost b = pw_.get(p, s, p, q);
              best = sat_min(best, sat_add(a, b));
            }
          }
          if (best < old_value) {
            pw_next_.set(i, j, p, q, best);
            machine_.note_write(pw_.address(i, j, p, q));
            changed.fetch_add(1, std::memory_order_relaxed);
          }
          return ops;
        });
    std::swap(pw_, pw_next_);
    return changed.load();
  }

  std::uint64_t run_pebble() {
    std::atomic<std::uint64_t> changed{0};
    const auto [w_begin, w_end] = pebble_window();
    if (w_begin == w_end) return 0;
    w_next_ = w_;
    machine_.step(
        "a-pebble", static_cast<std::int64_t>(w_end - w_begin),
        [&, w_begin = w_begin](std::int64_t idx) -> std::uint64_t {
          const Pair pr = pairs_[w_begin + static_cast<std::size_t>(idx)];
          const std::size_t i = pr.i;
          const std::size_t j = pr.j;
          const Cost old_value = w_(i, j);
          Cost best = old_value;
          std::uint64_t ops = 0;
          pw_.for_each_gap(i, j, [&](std::size_t p, std::size_t q) {
            ++ops;
            const Cost a = pw_.get(i, j, p, q);
            if (!is_finite(a)) return;
            best = sat_min(best, sat_add(a, w_(p, q)));
          });
          if (best < old_value) {
            w_next_(i, j) = best;
            machine_.note_write(kWAddressTag |
                                (static_cast<std::uint64_t>(i) * (n_ + 1) +
                                 j));
            changed.fetch_add(1, std::memory_order_relaxed);
          }
          return ops;
        });
    std::swap(w_, w_next_);
    return changed.load();
  }

  const dp::Problem& problem_;
  SublinearOptions options_;
  pram::Machine& machine_;
  std::size_t n_;
  Table pw_;
  Table pw_next_;
  support::Grid2D<Cost> w_;
  support::Grid2D<Cost> w_next_;
  std::vector<Pair> pairs_;
  std::vector<std::size_t> pairs_offset_by_length_;
  std::size_t iteration_ = 0;
};

}  // namespace subdp::core::detail
