#pragma once

/// \file solve_session.hpp
/// The mutable, per-worker half of a solve: a `SolveSession` binds an
/// immutable `SolvePlan` to one instance at a time.
///
/// The session owns everything a solve mutates — the pw/w tables, the
/// write logs, the frontier marks, the iteration trace and (by default)
/// the PRAM machine with its work/depth ledger. `reset(problem)` swaps the
/// bound instance by re-initialising those tables *in place*: no
/// reallocation, no entry-list or offset rebuild, which is what makes
/// solve-many cheap after prepare-once (see solve_plan.hpp). Any number of
/// sessions can share one plan, one per worker thread in a serving setup.
///
/// Thread-safety (audited for the concurrent serving subsystem): a
/// session is strictly *single-threaded* — it has no internal locking,
/// and `reset`/`step`/`finish`/`solve` mutate its tables and ledger
/// freely. Distinct sessions over one shared plan are fully independent
/// (the plan is immutable, the engine only reads it), so concurrency is
/// achieved by giving each worker its own session — which is what
/// `serve::SessionPool` leases enforce by construction. The bound
/// `dp::Problem` is only read through its const interface, but it is read
/// *during* the solve, so a problem solved on several sessions at once
/// must tolerate concurrent const calls (see dp/problem.hpp).
///
/// Lifecycle: a session starts *idle*; `reset(problem)` makes it
/// *prepared* (tables initialised, ledger cleared); `step()` /
/// `current_*()` observe the prepared iteration state; `finish()`
/// packages the result and moves the session to *finished*, after which
/// stepping or reading requires another `reset`. Misordered calls fail
/// with a `SUBDP_REQUIRE` diagnostic instead of touching a dangling or
/// stale engine. `solve(problem)` is the whole cycle in one call and may
/// be repeated ad libitum — that is the `BatchSolver` hot loop.

#include <cstddef>
#include <memory>
#include <vector>

#include "core/solve_plan.hpp"
#include "core/solver_types.hpp"
#include "dp/problem.hpp"
#include "pram/machine.hpp"

namespace subdp::core {

/// Reusable per-instance solving state bound to a shared `SolvePlan`.
class SolveSession {
 public:
  /// Binds the plan. With `external_machine == nullptr` the session owns
  /// a machine configured from the plan's options; otherwise it borrows
  /// `*external_machine` (the `SublinearSolver` facade does this so its
  /// ledger survives re-preparation).
  explicit SolveSession(std::shared_ptr<const SolvePlan> plan,
                        pram::Machine* external_machine = nullptr);

  /// Prepares the session for `problem` (which must outlive the stepping
  /// and match the plan's `n`). Re-initialises tables in place and clears
  /// the ledger; cheap after the first call.
  void reset(const dp::Problem& problem);

  /// Runs one iteration; requires a prepared (and not finished) session.
  IterationOutcome step();

  /// Current `w'(i,j)` / `pw'(i,j,p,q)` values of the prepared instance.
  [[nodiscard]] Cost current_w(std::size_t i, std::size_t j) const;
  [[nodiscard]] Cost current_pw(std::size_t i, std::size_t j, std::size_t p,
                                std::size_t q) const;

  /// Iterations run since the last `reset` (0 before the first one; the
  /// count of the last solve remains readable after `finish`).
  [[nodiscard]] std::size_t iterations_done() const;

  /// Packages the current state into a result and finishes the session;
  /// stepping again requires another `reset`.
  [[nodiscard]] SublinearResult finish();

  /// The full cycle: `reset(problem)`, iterate under the plan's
  /// termination mode, `finish()`. Repeatable across instances.
  [[nodiscard]] SublinearResult solve(const dp::Problem& problem);

  [[nodiscard]] const SolvePlan& plan() const noexcept { return *plan_; }
  [[nodiscard]] std::shared_ptr<const SolvePlan> plan_ptr() const noexcept {
    return plan_;
  }

  /// pw cells a solve of this shape allocates (the plan's count; 0 for
  /// trivial plans).
  [[nodiscard]] std::size_t pw_cell_count() const;

  /// One `StepProfile` per iteration run since the last `reset`, in
  /// order — empty unless the plan's options set
  /// `SublinearOptions::profile` (and always empty for trivial n == 1
  /// plans, which run no iterations). Readable mid-stepping and after
  /// `finish`.
  [[nodiscard]] const std::vector<StepProfile>& step_profile() const;

  /// The PRAM simulator carrying the work/depth ledger and (optionally)
  /// the CREW conformance checker.
  [[nodiscard]] const pram::Machine& machine() const noexcept {
    return *machine_;
  }
  [[nodiscard]] pram::Machine& machine() noexcept { return *machine_; }

 private:
  enum class State { kIdle, kPrepared, kFinished };

  void require_prepared(const char* what) const;

  std::shared_ptr<const SolvePlan> plan_;
  std::unique_ptr<pram::Machine> owned_machine_;
  pram::Machine* machine_;  ///< Owned or borrowed; never null.
  std::unique_ptr<detail::IEngine> engine_;
  std::vector<IterationTrace> trace_;
  State state_ = State::kIdle;
  Cost trivial_cost_ = kInfinity;  ///< Used when n == 1 (no iterations).
};

}  // namespace subdp::core
