// Tests for the diagonal-parallel baseline (dp/wavefront.hpp): equality
// with the sequential solver on every backend, PRAM accounting shape, and
// CREW conformance.

#include "dp/wavefront.hpp"

#include <gtest/gtest.h>

#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/sequential.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace subdp::dp {
namespace {

class WavefrontBackendTest
    : public ::testing::TestWithParam<pram::Backend> {};

TEST_P(WavefrontBackendTest, MatchesSequentialOnMatrixChains) {
  support::Rng rng(41);
  pram::MachineOptions opts;
  opts.backend = GetParam();
  for (const std::size_t n : {1u, 2u, 3u, 8u, 25u, 40u}) {
    const auto p = MatrixChainProblem::random(n, rng);
    pram::Machine machine(opts);
    const auto par = solve_wavefront(p, machine);
    const auto seq = solve_sequential(p);
    ASSERT_EQ(par.cost, seq.cost) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j <= n; ++j) {
        ASSERT_EQ(par.c(i, j), seq.c(i, j));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, WavefrontBackendTest,
                         ::testing::Values(pram::Backend::kSerial,
                                           pram::Backend::kThreadPool,
                                           pram::Backend::kOpenMP));

TEST(Wavefront, ValidatesAsAFullResult) {
  support::Rng rng(42);
  const auto p = OptimalBstProblem::random(15, rng);
  pram::Machine machine;
  const auto result = solve_wavefront(p, machine);
  EXPECT_TRUE(validate_result(p, result));
}

TEST(Wavefront, UsesOneStepPerDiagonalPlusInit) {
  support::Rng rng(43);
  const std::size_t n = 20;
  const auto p = MatrixChainProblem::random(n, rng);
  pram::Machine machine;
  (void)solve_wavefront(p, machine);
  // init + one step per length 2..n.
  EXPECT_EQ(machine.costs().step_count(), n);
}

TEST(Wavefront, WorkMatchesSequentialTripleCount) {
  support::Rng rng(44);
  const std::size_t n = 24;
  const auto p = MatrixChainProblem::random(n, rng);
  pram::Machine machine;
  (void)solve_wavefront(p, machine);
  std::uint64_t seq_ops = 0;
  (void)solve_sequential(p, &seq_ops);
  // Same candidate evaluations (plus n unit init writes): work-optimal.
  EXPECT_EQ(machine.costs().total_work(), seq_ops + n);
}

TEST(Wavefront, DepthIsLinearWithLogFactors) {
  support::Rng rng(45);
  const std::size_t n = 32;
  const auto p = MatrixChainProblem::random(n, rng);
  pram::Machine machine;
  (void)solve_wavefront(p, machine);
  const auto depth = machine.costs().total_depth();
  // n steps, each depth 1 + ceil(log2(len-1)) <= 1 + log2(n).
  EXPECT_GE(depth, n - 1);
  EXPECT_LE(depth, n * (2 + support::ceil_log2(n)));
}

TEST(Wavefront, IsCrewConformant) {
  support::Rng rng(46);
  const auto p = MatrixChainProblem::random(18, rng);
  pram::MachineOptions opts;
  opts.check_crew = true;
  pram::Machine machine(opts);
  (void)solve_wavefront(p, machine);
  ASSERT_NE(machine.crew(), nullptr);
  EXPECT_EQ(machine.crew()->violation_count(), 0u)
      << machine.crew()->first_violation();
}

}  // namespace
}  // namespace subdp::dp
