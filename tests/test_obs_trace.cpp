// Unit tests of the TraceRing and the Chrome trace renderer: exact
// drop-newest overflow accounting, torn-free collection under concurrent
// writers (run under TSan in the sanitized smoke lanes), timestamp
// ordering, and the renderer's span/outcome labelling.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace subdp::obs {
namespace {

TraceEvent make_event(std::uint64_t job_id, std::uint64_t ts,
                      TraceEventKind kind,
                      PlanSource source = PlanSource::kNone) {
  TraceEvent e;
  e.job_id = job_id;
  e.timestamp_ns = ts;
  e.kind = kind;
  e.source = source;
  return e;
}

TEST(TraceRing, RecordsUpToCapacityThenCountsDropsExactly) {
  // One stripe so a single-threaded writer fills it deterministically.
  TraceRing ring(1, 4);
  EXPECT_EQ(ring.stripes(), 1u);
  EXPECT_EQ(ring.capacity_per_stripe(), 4u);
  for (std::uint64_t k = 0; k < 4; ++k) {
    EXPECT_TRUE(ring.record(make_event(k, k, TraceEventKind::kSubmit)));
  }
  for (std::uint64_t k = 4; k < 11; ++k) {
    EXPECT_FALSE(ring.record(make_event(k, k, TraceEventKind::kSubmit)));
  }
  EXPECT_EQ(ring.dropped(), 7u);
  const std::vector<TraceEvent> events = ring.collect();
  ASSERT_EQ(events.size(), 4u);
  // Drop-newest: the first four survive, the overflow never overwrites.
  for (std::uint64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(events[k].job_id, k);
  }
}

TEST(TraceRing, CollectOrdersByTimestampAcrossStripes) {
  TraceRing ring(1, 8);
  ring.record(make_event(3, 300, TraceEventKind::kResolve));
  ring.record(make_event(1, 100, TraceEventKind::kSubmit));
  ring.record(make_event(2, 200, TraceEventKind::kEnqueue));
  const std::vector<TraceEvent> events = ring.collect();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].timestamp_ns, 100u);
  EXPECT_EQ(events[1].timestamp_ns, 200u);
  EXPECT_EQ(events[2].timestamp_ns, 300u);
}

TEST(TraceRing, ConcurrentWritersNeverTearAndEveryEventIsCountedOnce) {
  // Each writer stamps its events with a thread-unique job_id range and
  // kind == (job_id % 12), so any torn slot — event fields from two
  // writers — is detectable in the collected output. Recorded + dropped
  // must equal attempts exactly. TSan covers the memory-order claims.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 4000;
  constexpr std::size_t kCapacity = 1024;  // force overflow
  TraceRing ring(4, kCapacity);
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t job_id =
            static_cast<std::uint64_t>(t * kPerThread + i);
        ring.record(make_event(
            job_id, job_id,
            static_cast<TraceEventKind>(job_id % 12)));
      }
    });
  }
  for (std::thread& w : writers) w.join();

  const std::vector<TraceEvent> events = ring.collect();
  EXPECT_EQ(events.size() + ring.dropped(), kThreads * kPerThread);
  EXPECT_LE(events.size(), 4 * kCapacity);
  std::set<std::uint64_t> seen;
  for (const TraceEvent& e : events) {
    // Torn-event check: every field must be self-consistent.
    EXPECT_EQ(e.timestamp_ns, e.job_id);
    EXPECT_EQ(static_cast<std::uint64_t>(e.kind), e.job_id % 12);
    // Claim-once slots: no event may be collected twice.
    EXPECT_TRUE(seen.insert(e.job_id).second);
  }
}

TEST(TraceRing, ZeroStripesClampsToOne) {
  TraceRing ring(0, 2);
  EXPECT_EQ(ring.stripes(), 1u);
  EXPECT_TRUE(ring.record(make_event(1, 1, TraceEventKind::kSubmit)));
}

TEST(RenderChromeTrace, EmitsSpansAndInstantsWithOutcomes) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(1, 1000, TraceEventKind::kSubmit));
  events.push_back(make_event(1, 2000, TraceEventKind::kEnqueue));
  events.push_back(make_event(1, 3000, TraceEventKind::kDequeue));
  events.push_back(make_event(1, 3500, TraceEventKind::kPlanAcquired,
                              PlanSource::kCacheHit));
  events.push_back(make_event(1, 5000, TraceEventKind::kResolve));
  events.push_back(make_event(2, 1500, TraceEventKind::kSubmit));
  events.push_back(make_event(2, 1600, TraceEventKind::kReject));
  events.push_back(make_event(3, 1700, TraceEventKind::kSubmit));
  events.push_back(make_event(3, 1800, TraceEventKind::kColdDefer));
  events.push_back(make_event(3, 1900, TraceEventKind::kExpire));

  const std::string json = render_chrome_trace(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("job 1 (completed)"), std::string::npos);
  EXPECT_NE(json.find("job 2 (rejected)"), std::string::npos);
  EXPECT_NE(json.find("job 3 (expired)"), std::string::npos);
  EXPECT_NE(json.find("\"cold_deferred\": true"), std::string::npos);
  EXPECT_NE(json.find("\"source\": \"cache-hit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  // Balanced JSON braces/brackets as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(RenderChromeTrace, EmptyInputRendersAnEmptyValidTrace) {
  const std::string json = render_chrome_trace({});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace subdp::obs
