// Unit tests of the serving building blocks: SessionPool (lazy growth to
// a cap, RAII lease return, reuse accounting, blocking at the cap) and
// PlanCache (hit/miss/eviction stats, LRU order, (n, options) keying,
// eviction safety with in-flight pools).

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "dp/matrix_chain.hpp"
#include "dp/sequential.hpp"
#include "serve/plan_cache.hpp"
#include "serve/session_pool.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace subdp::serve {
namespace {

dp::MatrixChainProblem chain(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return dp::MatrixChainProblem::random(n, rng);
}

TEST(SessionPool, GrowsLazilyAndReusesReturnedSessions) {
  auto pool = std::make_shared<SessionPool>(core::SolvePlan::create(12), 3);
  EXPECT_EQ(pool->stats().sessions_created, 0u);  // nothing until acquire

  {
    SessionPool::Lease a = pool->acquire();
    EXPECT_TRUE(a.fresh());
    SessionPool::Lease b = pool->acquire();
    EXPECT_TRUE(b.fresh());
    const auto stats = pool->stats();
    EXPECT_EQ(stats.sessions_created, 2u);
    EXPECT_EQ(stats.in_use, 2u);
    EXPECT_EQ(stats.peak_in_use, 2u);
  }  // both leases return

  EXPECT_EQ(pool->stats().in_use, 0u);
  SessionPool::Lease c = pool->acquire();
  EXPECT_FALSE(c.fresh());  // warm session, not a third construction
  const auto stats = pool->stats();
  EXPECT_EQ(stats.sessions_created, 2u);
  EXPECT_EQ(stats.checkouts, 3u);
  EXPECT_EQ(stats.reuses, 1u);
}

TEST(SessionPool, LeasedSessionsSolveCorrectly) {
  const auto problem = chain(12, 41);
  auto pool = std::make_shared<SessionPool>(core::SolvePlan::create(12), 2);
  SessionPool::Lease lease = pool->acquire();
  const auto result = lease->solve(problem);
  EXPECT_EQ(result.cost, dp::solve_sequential(problem).cost);
  // Same session via the pool again: in-place reuse, same answer.
  lease.release();
  SessionPool::Lease again = pool->acquire();
  EXPECT_FALSE(again.fresh());
  EXPECT_EQ(again->solve(problem).cost, result.cost);
}

TEST(SessionPool, BlocksAtTheCapUntilALeaseReturns) {
  auto pool = std::make_shared<SessionPool>(core::SolvePlan::create(8), 1);
  auto held = std::make_unique<SessionPool::Lease>(pool->acquire());

  std::promise<void> acquired;
  std::thread waiter([&] {
    SessionPool::Lease lease = pool->acquire();  // must block: cap is 1
    acquired.set_value();
  });
  auto future = acquired.get_future();
  EXPECT_EQ(future.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);

  held.reset();  // return the only session
  future.wait();
  waiter.join();
  const auto stats = pool->stats();
  EXPECT_EQ(stats.sessions_created, 1u);
  EXPECT_EQ(stats.checkouts, 2u);
  EXPECT_EQ(stats.reuses, 1u);
}

TEST(PlanCache, CountsHitsAndMisses) {
  PlanCache cache(4, 1);
  core::SublinearOptions options;
  bool built = false;
  const auto first = cache.acquire(10, options, &built);
  EXPECT_TRUE(built);
  const auto second = cache.acquire(10, options, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(first, second) << "same key must share one pool";

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.capacity, 4u);
}

TEST(PlanCache, EvictsLeastRecentlyUsedAtTheBound) {
  PlanCache cache(2, 1);
  core::SublinearOptions options;
  (void)cache.acquire(10, options);
  (void)cache.acquire(12, options);
  (void)cache.acquire(10, options);  // hit: 10 becomes most recent
  (void)cache.acquire(14, options);  // evicts 12, the LRU entry

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);
  EXPECT_NE(cache.peek(10, options), nullptr);
  EXPECT_EQ(cache.peek(12, options), nullptr);
  EXPECT_NE(cache.peek(14, options), nullptr);

  // The evicted shape is a fresh miss (and evicts again).
  bool built = false;
  (void)cache.acquire(12, options, &built);
  EXPECT_TRUE(built);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(PlanCache, PeekRecordsNoStatsAndKeepsLruOrder) {
  PlanCache cache(2, 1);
  core::SublinearOptions options;
  (void)cache.acquire(10, options);
  (void)cache.acquire(12, options);
  const auto before = cache.stats();
  (void)cache.peek(10, options);  // no hit recorded, no LRU bump
  (void)cache.peek(99, options);  // no miss recorded either
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  // 10 was NOT bumped by the peek, so it is still the LRU victim.
  (void)cache.acquire(14, options);
  EXPECT_EQ(cache.peek(10, options), nullptr);
  EXPECT_NE(cache.peek(12, options), nullptr);
}

TEST(PlanCache, KeysOnOptionsNotJustN) {
  PlanCache cache(8, 1);
  core::SublinearOptions banded;
  core::SublinearOptions narrow = banded;
  narrow.band_width = 3;
  const auto a = cache.acquire(16, banded);
  const auto b = cache.acquire(16, narrow);
  EXPECT_NE(a, b) << "different options must not share a plan";
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(a->plan().effective_band(), support::two_ceil_sqrt(16));
  EXPECT_EQ(b->plan().effective_band(), 3u);
}

TEST(PlanCache, EvictedPoolStaysAliveWhileLeased) {
  PlanCache cache(1, 1);
  core::SublinearOptions options;
  std::shared_ptr<SessionPool> pool = cache.acquire(10, options);
  SessionPool::Lease lease = pool->acquire();
  (void)cache.acquire(12, options);  // evicts shape 10 from the cache
  EXPECT_EQ(cache.peek(10, options), nullptr);

  // The detached pool (and its plan) must still serve the in-flight
  // lease correctly.
  const auto problem = chain(10, 42);
  EXPECT_EQ(lease->solve(problem).cost, dp::solve_sequential(problem).cost);
}

TEST(PlanCache, PooledSessionStatsAggregateAcrossShapes) {
  PlanCache cache(4, 2);
  core::SublinearOptions options;
  auto a = cache.acquire(10, options);
  auto b = cache.acquire(12, options);
  { const auto lease = a->acquire(); }
  { const auto lease_one = b->acquire(); }
  { const auto lease_two = b->acquire(); }
  const SessionPoolStats sum = cache.pooled_session_stats();
  EXPECT_EQ(sum.capacity, 4u);  // two pools of two
  EXPECT_EQ(sum.checkouts, 3u);
  EXPECT_EQ(sum.in_use, 0u);
}

}  // namespace
}  // namespace subdp::serve
