// Unit tests for the 2-D grid container (support/grid.hpp).

#include "support/grid.hpp"

#include <gtest/gtest.h>

#include "support/cost.hpp"

namespace subdp::support {
namespace {

TEST(Grid2D, ConstructsWithFillValue) {
  Grid2D<int> g(3, 4, 7);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.cols(), 4u);
  EXPECT_EQ(g.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(g(r, c), 7);
    }
  }
}

TEST(Grid2D, ValueInitialisedByDefault) {
  Grid2D<Cost> g(2, 2);
  EXPECT_EQ(g(0, 0), 0);
  EXPECT_EQ(g(1, 1), 0);
}

TEST(Grid2D, WritesAreIndependent) {
  Grid2D<int> g(2, 3, 0);
  g(0, 1) = 5;
  g(1, 2) = 9;
  EXPECT_EQ(g(0, 1), 5);
  EXPECT_EQ(g(1, 2), 9);
  EXPECT_EQ(g(0, 0), 0);
  EXPECT_EQ(g(1, 1), 0);
}

TEST(Grid2D, FillResetsEverything) {
  Grid2D<int> g(2, 2, 1);
  g(0, 0) = 42;
  g.fill(3);
  EXPECT_EQ(g(0, 0), 3);
  EXPECT_EQ(g(1, 1), 3);
}

TEST(Grid2D, EqualityComparesShapeAndContents) {
  Grid2D<int> a(2, 2, 1), b(2, 2, 1), c(2, 3, 1);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  b(1, 1) = 2;
  EXPECT_FALSE(a == b);
}

TEST(Grid2D, CopyAssignIsDeep) {
  Grid2D<int> a(2, 2, 1);
  Grid2D<int> b = a;
  b(0, 0) = 99;
  EXPECT_EQ(a(0, 0), 1);
  EXPECT_EQ(b(0, 0), 99);
}

TEST(Grid2D, RowMajorLayout) {
  Grid2D<int> g(2, 3, 0);
  g(0, 0) = 1;
  g(0, 2) = 3;
  g(1, 0) = 4;
  EXPECT_EQ(g.data()[0], 1);
  EXPECT_EQ(g.data()[2], 3);
  EXPECT_EQ(g.data()[3], 4);
}

}  // namespace
}  // namespace subdp::support
