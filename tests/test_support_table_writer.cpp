// Unit tests for the experiment table writer (support/table_writer.hpp).

#include "support/table_writer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace subdp::support {
namespace {

TEST(TableWriter, PrintsHeaderAndRows) {
  TableWriter t("demo", {"n", "moves", "note"});
  t.add_row({std::int64_t{16}, 3.25, std::string("ok")});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("moves"), std::string::npos);
  EXPECT_NE(out.find("16"), std::string::npos);
  EXPECT_NE(out.find("3.25"), std::string::npos);
  EXPECT_NE(out.find("ok"), std::string::npos);
}

TEST(TableWriter, RowWidthMismatchThrows) {
  TableWriter t("demo", {"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), std::invalid_argument);
}

TEST(TableWriter, FormatsIntegersWithoutDecimals) {
  EXPECT_EQ(TableWriter::format_cell(std::int64_t{42}), "42");
}

TEST(TableWriter, FormatsDoublesTrimmed) {
  EXPECT_EQ(TableWriter::format_cell(2.5), "2.5");
  EXPECT_EQ(TableWriter::format_cell(2.0), "2.0");
  EXPECT_EQ(TableWriter::format_cell(0.1234567), "0.1235");
}

TEST(TableWriter, CsvRoundTripWithEscaping) {
  TableWriter t("demo", {"name", "value"});
  t.add_row({std::string("has,comma"), std::int64_t{1}});
  t.add_row({std::string("has\"quote"), std::int64_t{2}});
  const std::string path = ::testing::TempDir() + "subdp_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has,comma\",1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\",2");
  std::remove(path.c_str());
}

TEST(TableWriter, RowCountTracksAdds) {
  TableWriter t("demo", {"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({std::int64_t{1}});
  t.add_row({std::int64_t{2}});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace subdp::support
