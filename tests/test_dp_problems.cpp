// Tests for the problem instances (dp/matrix_chain.hpp, dp/optimal_bst.hpp,
// dp/polygon_triangulation.hpp, dp/tabulated.hpp): textbook answers,
// structural invariants, and the tabulation round trip.

#include <gtest/gtest.h>

#include "dp/brute_force.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/polygon_triangulation.hpp"
#include "dp/sequential.hpp"
#include "dp/tabulated.hpp"
#include "support/rng.hpp"

namespace subdp::dp {
namespace {

// ---- Matrix chain ----

TEST(MatrixChain, ClrsExampleCosts15125) {
  const auto p = MatrixChainProblem::clrs_example();
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(solve_sequential(p).cost, 15125);
}

TEST(MatrixChain, SingleMatrixCostsNothing) {
  const MatrixChainProblem p({10, 20});
  EXPECT_EQ(solve_sequential(p).cost, 0);
}

TEST(MatrixChain, TwoMatricesCostOneProduct) {
  const MatrixChainProblem p({10, 20, 30});
  EXPECT_EQ(solve_sequential(p).cost, 10 * 20 * 30);
}

TEST(MatrixChain, FMatchesDimsProduct) {
  const MatrixChainProblem p({2, 3, 5, 7});
  EXPECT_EQ(p.f(0, 1, 2), 2 * 3 * 5);
  EXPECT_EQ(p.f(0, 2, 3), 2 * 5 * 7);
  EXPECT_EQ(p.f(1, 2, 3), 3 * 5 * 7);
  EXPECT_EQ(p.init(0), 0);
}

TEST(MatrixChain, RejectsBadDimensions) {
  EXPECT_THROW(MatrixChainProblem({10}), std::invalid_argument);
  EXPECT_THROW(MatrixChainProblem({10, 0, 5}), std::invalid_argument);
}

TEST(MatrixChain, RandomGeneratorRespectsBounds) {
  support::Rng rng(1);
  const auto p = MatrixChainProblem::random(12, rng, 9);
  EXPECT_EQ(p.size(), 12u);
  for (const Cost d : p.dims()) {
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 9);
  }
}

// ---- Optimal BST ----

TEST(OptimalBst, ClrsExampleMatches) {
  // CLRS Fig. 15.10 instance (weights x100): their expected search cost is
  // 2.75, counting one comparison for reaching each dummy leaf. Our
  // recurrence charges gap weights once per *internal* ancestor, so
  // c(0,n) = 275 - sum(q) = 275 - 40 = 235.
  const auto p = OptimalBstProblem::clrs_example();
  EXPECT_EQ(p.size(), 6u);  // 5 keys -> 6 gap objects
  EXPECT_EQ(solve_sequential(p).cost, 235);
}

TEST(OptimalBst, SingleKeyCostIsTotalWeight) {
  const OptimalBstProblem p({7}, {2, 3});
  // One key at the root: c = p1 + q0 + q1.
  EXPECT_EQ(solve_sequential(p).cost, 12);
}

TEST(OptimalBst, FIsIndependentOfSplit) {
  support::Rng rng(5);
  const auto p = OptimalBstProblem::random(8, rng);
  const std::size_t n = p.size();
  for (std::size_t i = 0; i + 2 <= n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      const Cost first = p.f(i, i + 1, j);
      for (std::size_t k = i + 1; k < j; ++k) {
        EXPECT_EQ(p.f(i, k, j), first);
      }
    }
  }
}

TEST(OptimalBst, TotalWeightIsPrefixConsistent) {
  const OptimalBstProblem p({1, 2, 3}, {10, 20, 30, 40});
  // W(0,4) = all gaps + all keys.
  EXPECT_EQ(p.total_weight(0, 4), 100 + 6);
  // W(1,3) = gaps q1,q2 + key p2.
  EXPECT_EQ(p.total_weight(1, 3), 20 + 30 + 2);
  // W(0,1) = gap q0 only (no keys inside).
  EXPECT_EQ(p.total_weight(0, 1), 10);
}

TEST(OptimalBst, SkewedWeightsProduceSkewedTree) {
  // Heavily weighting the first key forces it to the root.
  const OptimalBstProblem p({100, 1, 1}, {0, 0, 0, 0});
  const auto result = solve_sequential(p);
  EXPECT_EQ(result.split(0, 4), 1);  // key 1 is the root
}

TEST(OptimalBst, RejectsBadShapes) {
  EXPECT_THROW(OptimalBstProblem({}, {1}), std::invalid_argument);
  EXPECT_THROW(OptimalBstProblem({1}, {1}), std::invalid_argument);
  EXPECT_THROW(OptimalBstProblem({1}, {1, -2}), std::invalid_argument);
}

// ---- Polygon triangulation ----

TEST(PolygonTriangulation, TriangleNeedsNoDiagonal) {
  // 3 vertices = 2 sides: a single decomposition, cost = the one triangle.
  const auto p = PolygonTriangulationProblem::weight_product({2, 3, 5});
  EXPECT_EQ(solve_sequential(p).cost, 2 * 3 * 5);
}

TEST(PolygonTriangulation, QuadrilateralPicksCheaperDiagonal) {
  // Vertices 1, 9, 2, 3: diagonals (v0,v2) vs (v1,v3):
  //   split at k=1 then k=2 ... two triangulations:
  //   {v0v1v2, v0v2v3} = 18 + 6 = 24;  {v0v1v3, v1v2v3} = 27 + 54 = 81.
  const auto p = PolygonTriangulationProblem::weight_product({1, 9, 2, 3});
  EXPECT_EQ(solve_sequential(p).cost, 24);
}

TEST(PolygonTriangulation, PerimeterModelCountsScaledLengths) {
  // Unit right triangle: perimeter 2 + sqrt(2), scaled by 1000.
  const auto p = PolygonTriangulationProblem::perimeter(
      {{0, 0}, {1, 0}, {0, 1}}, 1000.0);
  EXPECT_EQ(solve_sequential(p).cost, 3414);  // 1000*(2 + 1.41421356)
}

TEST(PolygonTriangulation, PerimeterMatchesBruteForceOnRandomPolygon) {
  support::Rng rng(11);
  const auto p = PolygonTriangulationProblem::random_convex(8, rng);
  EXPECT_EQ(solve_sequential(p).cost, brute_force_cost(p));
}

TEST(PolygonTriangulation, RejectsTooFewVertices) {
  EXPECT_THROW((void)PolygonTriangulationProblem::weight_product({1, 2}),
               std::invalid_argument);
}

// ---- Tabulated ----

TEST(Tabulated, RoundTripsMatrixChain) {
  support::Rng rng(13);
  const auto original = MatrixChainProblem::random(10, rng);
  const auto tab = TabulatedProblem::from(original);
  EXPECT_EQ(tab.size(), original.size());
  EXPECT_EQ(tab.name(), original.name());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(tab.init(i), original.init(i));
  }
  for (std::size_t i = 0; i + 2 <= original.size(); ++i) {
    for (std::size_t j = i + 2; j <= original.size(); ++j) {
      for (std::size_t k = i + 1; k < j; ++k) {
        EXPECT_EQ(tab.f(i, k, j), original.f(i, k, j));
      }
    }
  }
}

TEST(Tabulated, FromFunctionsEvaluatesCallables) {
  const auto tab = TabulatedProblem::from_functions(
      4, "custom", [](std::size_t i) { return static_cast<Cost>(i + 1); },
      [](std::size_t i, std::size_t k, std::size_t j) {
        return static_cast<Cost>(i * 100 + k * 10 + j);
      });
  EXPECT_EQ(tab.init(2), 3);
  EXPECT_EQ(tab.f(0, 1, 2), 12);
  EXPECT_EQ(tab.f(1, 2, 4), 124);
}

TEST(Tabulated, SettersValidateRanges) {
  TabulatedProblem tab(4, "t");
  tab.set_f(0, 1, 2, 5);
  EXPECT_EQ(tab.f(0, 1, 2), 5);
  EXPECT_THROW(tab.set_f(0, 0, 2, 5), std::invalid_argument);
  EXPECT_THROW(tab.set_f(0, 2, 2, 5), std::invalid_argument);
  EXPECT_THROW(tab.set_f(0, 1, 5, 5), std::invalid_argument);
  EXPECT_THROW(tab.set_f(0, 1, 2, -1), std::invalid_argument);
  EXPECT_THROW(tab.set_init(4, 1), std::invalid_argument);
}

TEST(Tabulated, SolvesIdenticallyToOriginal) {
  support::Rng rng(17);
  for (int rep = 0; rep < 5; ++rep) {
    const auto original = MatrixChainProblem::random(14, rng);
    const auto tab = TabulatedProblem::from(original);
    EXPECT_EQ(solve_sequential(tab).cost, solve_sequential(original).cost);
  }
}

}  // namespace
}  // namespace subdp::dp
