// Tests for the Sec. 6 average-case recurrence evaluator
// (trees/average_case.hpp) and its agreement with game simulations.

#include "trees/average_case.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trees/generators.hpp"
#include "trees/pebble_game.hpp"

namespace subdp::trees {
namespace {

TEST(AverageRecurrence, BaseCases) {
  const auto t = average_move_recurrence(4);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_DOUBLE_EQ(t[1], 0.0);
  // T(2) = 1 + max(T(1),T(1)) = 1.
  EXPECT_DOUBLE_EQ(t[2], 1.0);
  // T(3) = 1 + (T(2) + T(2)) / 2 = 2 (splits 1|2 and 2|1 both give max=T(2)).
  EXPECT_DOUBLE_EQ(t[3], 2.0);
  // T(4) = 1 + (T(3) + T(2) + T(3)) / 3 = 1 + (2+1+2)/3 = 8/3.
  EXPECT_NEAR(t[4], 1.0 + 5.0 / 3.0, 1e-12);
}

TEST(AverageRecurrence, MatchesDirectEvaluation) {
  // Cross-check the prefix-sum implementation against the O(n^2) direct
  // form on small n.
  constexpr std::size_t kMax = 200;
  const auto fast = average_move_recurrence(kMax);
  std::vector<double> direct(kMax + 1, 0.0);
  for (std::size_t n = 2; n <= kMax; ++n) {
    double sum = 0.0;
    for (std::size_t i = 1; i < n; ++i) {
      sum += std::max(direct[i], direct[n - i]);
    }
    direct[n] = 1.0 + sum / static_cast<double>(n - 1);
  }
  for (std::size_t n = 1; n <= kMax; ++n) {
    ASSERT_NEAR(fast[n], direct[n], 1e-9) << "n=" << n;
  }
}

TEST(AverageRecurrence, IsMonotoneNondecreasing) {
  const auto t = average_move_recurrence(5000);
  for (std::size_t n = 2; n <= 5000; ++n) {
    ASSERT_GE(t[n], t[n - 1]) << "n=" << n;
  }
}

TEST(AverageRecurrence, GrowsLogarithmically) {
  const auto t = average_move_recurrence(1 << 16);
  // Fit T(n) = a + b log2(n) over powers of two; expect solid fit and a
  // modest slope (the paper proves T(n) = O(log n)).
  std::vector<double> xs, ys;
  for (std::size_t e = 4; e <= 16; ++e) {
    xs.push_back(static_cast<double>(std::size_t{1} << e));
    ys.push_back(t[std::size_t{1} << e]);
  }
  const auto fit = support::fit_logarithmic(xs, ys);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_GT(fit.slope, 0.5);
  EXPECT_LT(fit.slope, 4.0);
  // And it is far below the worst-case 2*sqrt(n).
  EXPECT_LT(t[1 << 16], 0.2 * std::sqrt(double{1 << 16}));
}

TEST(AverageRecurrence, RejectsZero) {
  EXPECT_THROW((void)average_move_recurrence(0), std::invalid_argument);
}

TEST(AverageRecurrence, UpperBoundsTheSimulatedGame) {
  // The recurrence charges one move per combining level sequentially; the
  // real game pipelines activations across levels, so measured means run
  // at roughly T(n)/2 (empirically 0.48-0.50 x, tracking log2 n closely —
  // see bench_pebbling_average). The recurrence must stay a sound upper
  // model and the game must stay within a small constant of it.
  const std::size_t n = 512;
  const auto t = average_move_recurrence(n);
  support::Rng rng(99);
  double total = 0;
  constexpr int kTrials = 60;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto tree = make_tree(TreeShape::kRandom, n, &rng);
    PebbleGame game(tree);
    game.run_until_root(support::two_ceil_sqrt(n));
    EXPECT_TRUE(game.root_pebbled());
    total += static_cast<double>(game.moves_made());
  }
  const double mean = total / kTrials;
  EXPECT_LT(mean, t[n]);          // model is an upper envelope
  EXPECT_GT(mean, t[n] / 3.0);    // and not wildly loose
}

}  // namespace
}  // namespace subdp::trees
