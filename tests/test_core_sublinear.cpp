// The central correctness suite for the paper's algorithm
// (core/sublinear_solver.hpp): equality with the sequential baseline
// across problems x variants x backends x schedules, the 2*ceil(sqrt n)
// iteration bound, whole-table convergence, adversarial zigzag instances,
// band-width sensitivity, and CREW conformance.

#include "core/sublinear_solver.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/polygon_triangulation.hpp"
#include "dp/sequential.hpp"
#include "dp/tables.hpp"
#include "dp/tree_shaped.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trees/generators.hpp"

namespace subdp::core {
namespace {

std::unique_ptr<dp::Problem> make_problem(const std::string& kind,
                                          std::size_t n,
                                          support::Rng& rng) {
  if (kind == "matrix-chain") {
    return std::make_unique<dp::MatrixChainProblem>(
        dp::MatrixChainProblem::random(n, rng));
  }
  if (kind == "optimal-bst") {
    return std::make_unique<dp::OptimalBstProblem>(
        dp::OptimalBstProblem::random(n - 1, rng));  // n-1 keys -> n objects
  }
  if (kind == "triangulation") {
    return std::make_unique<dp::PolygonTriangulationProblem>(
        dp::PolygonTriangulationProblem::random(n, rng));
  }
  if (kind == "zigzag") {
    auto inst = dp::make_tree_shaped_instance(
        trees::make_tree(trees::TreeShape::kZigzag, n), rng);
    return std::make_unique<dp::TabulatedProblem>(std::move(inst.problem));
  }
  throw std::invalid_argument("unknown problem kind " + kind);
}

struct SolverParam {
  std::string kind;
  std::size_t n;
  PwVariant variant;
  pram::Backend backend;
};

class SublinearEqualityTest
    : public ::testing::TestWithParam<SolverParam> {};

TEST_P(SublinearEqualityTest, MatchesSequentialAndRespectsBound) {
  const auto& param = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(param.n) * 7919 +
                   static_cast<std::uint64_t>(param.variant));
  const auto problem = make_problem(param.kind, param.n, rng);
  const auto expected = dp::solve_sequential(*problem);

  SublinearOptions options;
  options.variant = param.variant;
  options.machine.backend = param.backend;
  SublinearSolver solver(options);
  const auto result = solver.solve(*problem);

  EXPECT_EQ(result.cost, expected.cost);
  EXPECT_LE(result.iterations, result.iteration_bound);
  EXPECT_EQ(result.iteration_bound, support::two_ceil_sqrt(param.n));

  // Whole-table convergence: every w'(i,j) reached its optimum.
  for (std::size_t i = 0; i < param.n; ++i) {
    for (std::size_t j = i + 1; j <= param.n; ++j) {
      ASSERT_EQ(result.w(i, j), expected.c(i, j))
          << "w(" << i << "," << j << ") suboptimal";
    }
  }
}

std::vector<SolverParam> equality_params() {
  std::vector<SolverParam> params;
  const auto backend = pram::default_backend();
  for (const std::string kind :
       {"matrix-chain", "optimal-bst", "triangulation", "zigzag"}) {
    for (const std::size_t n : {2u, 3u, 5u, 9u, 16u, 30u}) {
      params.push_back({kind, n, PwVariant::kDense, backend});
      params.push_back({kind, n, PwVariant::kBanded, backend});
    }
  }
  // Backend cross-product on one representative configuration.
  for (const auto b : {pram::Backend::kSerial, pram::Backend::kThreadPool,
                       pram::Backend::kOpenMP}) {
    params.push_back({"matrix-chain", 24, PwVariant::kBanded, b});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Everything, SublinearEqualityTest,
    ::testing::ValuesIn(equality_params()),
    [](const ::testing::TestParamInfo<SolverParam>& info) {
      std::string name = info.param.kind + "_" +
                         std::to_string(info.param.n) + "_" +
                         to_string(info.param.variant) + "_" +
                         to_string(info.param.backend);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ---- Determinism and backend equivalence ----

TEST(Sublinear, BackendsProduceIdenticalTraces) {
  support::Rng rng(61);
  const auto p = dp::MatrixChainProblem::random(20, rng);
  std::vector<SublinearResult> results;
  for (const auto b : {pram::Backend::kSerial, pram::Backend::kThreadPool,
                       pram::Backend::kOpenMP}) {
    SublinearOptions options;
    options.machine.backend = b;
    SublinearSolver solver(options);
    results.push_back(solver.solve(p));
  }
  for (std::size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(results[r].cost, results[0].cost);
    ASSERT_EQ(results[r].iterations, results[0].iterations);
    ASSERT_EQ(results[r].trace.size(), results[0].trace.size());
    for (std::size_t t = 0; t < results[r].trace.size(); ++t) {
      ASSERT_EQ(results[r].trace[t].pw_cells_changed,
                results[0].trace[t].pw_cells_changed);
      ASSERT_EQ(results[r].trace[t].w_cells_changed,
                results[0].trace[t].w_cells_changed);
      ASSERT_EQ(results[r].trace[t].w_finite, results[0].trace[t].w_finite);
    }
    ASSERT_TRUE(results[r].w == results[0].w);
  }
}

TEST(Sublinear, DenseAndBandedAgreeCellByCell) {
  support::Rng rng(62);
  for (const std::size_t n : {8u, 17u, 28u}) {
    const auto p = dp::OptimalBstProblem::random(n - 1, rng);
    SublinearOptions dense_opts;
    dense_opts.variant = PwVariant::kDense;
    SublinearOptions banded_opts;
    banded_opts.variant = PwVariant::kBanded;
    SublinearSolver dense(dense_opts), banded(banded_opts);
    const auto a = dense.solve(p);
    const auto b = banded.solve(p);
    ASSERT_EQ(a.cost, b.cost) << "n=" << n;
    ASSERT_TRUE(a.w == b.w) << "n=" << n;
  }
}

// ---- Schedules ----

TEST(Sublinear, WindowedScheduleMatchesSequentialOnAdversarialInput) {
  // The Sec. 5 window is the aggressive schedule; zigzag instances are the
  // shapes that exercise its tail.
  support::Rng rng(63);
  for (const std::size_t n : {9u, 16u, 25u, 36u}) {
    auto inst = dp::make_tree_shaped_instance(
        trees::make_tree(trees::TreeShape::kZigzag, n), rng);
    SublinearOptions options;
    options.windowed_pebble = true;
    options.termination = TerminationMode::kFixedBound;
    SublinearSolver solver(options);
    const auto result = solver.solve(inst.problem);
    EXPECT_EQ(result.cost, inst.optimal_cost) << "n=" << n;
    EXPECT_EQ(result.iterations, support::two_ceil_sqrt(n));
  }
}

TEST(Sublinear, WindowedScheduleMatchesOnRandomInstances) {
  support::Rng rng(64);
  for (int rep = 0; rep < 6; ++rep) {
    const auto p = dp::MatrixChainProblem::random(20, rng);
    SublinearOptions options;
    options.windowed_pebble = true;
    options.termination = TerminationMode::kFixedBound;
    SublinearSolver solver(options);
    EXPECT_EQ(solver.solve(p).cost, dp::solve_sequential(p).cost);
  }
}

TEST(Sublinear, WindowedRequiresFixedBound) {
  SublinearOptions options;
  options.windowed_pebble = true;
  options.termination = TerminationMode::kFixedPoint;
  EXPECT_THROW(SublinearSolver solver(options), std::invalid_argument);
}

// ---- Band width sensitivity (Sec. 5's 2*sqrt(n) is the safe choice) ----

TEST(Sublinear, PaperBandWidthIsAlwaysSufficient) {
  support::Rng rng(65);
  for (const std::size_t n : {16u, 25u, 36u}) {
    auto inst = dp::make_tree_shaped_instance(
        trees::make_tree(trees::TreeShape::kZigzag, n), rng);
    SublinearOptions options;
    options.band_width = support::two_ceil_sqrt(n);
    SublinearSolver solver(options);
    EXPECT_EQ(solver.solve(inst.problem).cost, inst.optimal_cost);
  }
}

TEST(Sublinear, TinyBandCanFailOnAdversarialInput) {
  // With B = 1 the band cannot represent the partial trees a zigzag
  // optimum needs within the iteration budget; the solver must then
  // *overestimate* (never underestimate) the cost.
  support::Rng rng(66);
  const std::size_t n = 25;
  auto inst = dp::make_tree_shaped_instance(
      trees::make_tree(trees::TreeShape::kZigzag, n), rng);
  SublinearOptions options;
  options.band_width = 1;
  options.termination = TerminationMode::kFixedBound;
  SublinearSolver solver(options);
  const auto result = solver.solve(inst.problem);
  EXPECT_GT(result.cost, inst.optimal_cost);
}

TEST(Sublinear, CostsNeverUndershootWhileIterating) {
  // Monotone relaxation from above: at every iteration, every finite
  // w'(i,j) is the weight of *some* decomposition tree, hence >= optimal.
  support::Rng rng(67);
  const std::size_t n = 14;
  const auto p = dp::MatrixChainProblem::random(n, rng);
  const auto expected = dp::solve_sequential(p);
  SublinearSolver solver;
  solver.prepare(p);
  for (std::size_t iter = 0; iter < support::two_ceil_sqrt(n); ++iter) {
    (void)solver.step();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j <= n; ++j) {
        ASSERT_GE(solver.current_w(i, j), expected.c(i, j));
      }
    }
  }
}

// ---- CREW conformance of the full algorithm ----

TEST(Sublinear, AllThreeStepsAreCrewConformant) {
  support::Rng rng(68);
  const auto p = dp::MatrixChainProblem::random(18, rng);
  for (const auto variant : {PwVariant::kDense, PwVariant::kBanded}) {
    SublinearOptions options;
    options.variant = variant;
    options.machine.check_crew = true;
    SublinearSolver solver(options);
    (void)solver.solve(p);
    ASSERT_NE(solver.machine().crew(), nullptr);
    EXPECT_EQ(solver.machine().crew()->violation_count(), 0u)
        << to_string(variant) << ": "
        << solver.machine().crew()->first_violation();
  }
}

// ---- Cost-ledger shape ----

TEST(Sublinear, LedgerRecordsThreeStepsPerIteration) {
  support::Rng rng(69);
  const auto p = dp::MatrixChainProblem::random(12, rng);
  SublinearOptions options;
  options.termination = TerminationMode::kFixedBound;
  SublinearSolver solver(options);
  const auto result = solver.solve(p);
  EXPECT_EQ(solver.machine().costs().step_count(), 3 * result.iterations);
  const auto totals = solver.machine().costs().phase_totals();
  EXPECT_EQ(totals.count("a-activate"), 1u);
  EXPECT_EQ(totals.count("a-square"), 1u);
  EXPECT_EQ(totals.count("a-pebble"), 1u);
}

TEST(Sublinear, BandedDoesLessSquareWorkThanDense) {
  support::Rng rng(70);
  const auto p = dp::MatrixChainProblem::random(32, rng);
  std::uint64_t square_work[2] = {0, 0};
  int idx = 0;
  for (const auto variant : {PwVariant::kDense, PwVariant::kBanded}) {
    SublinearOptions options;
    options.variant = variant;
    options.termination = TerminationMode::kFixedBound;
    SublinearSolver solver(options);
    (void)solver.solve(p);
    square_work[idx++] =
        solver.machine().costs().phase_totals().at("a-square").work;
  }
  // The asymptotic gap is ~n^1.5/const; at n=32 it is still just below 2x,
  // so assert strict ordering here and leave the scaling to bench_work.
  EXPECT_LT(square_work[1], square_work[0]);
}

// ---- Edge cases ----

TEST(Sublinear, TrivialSizes) {
  const dp::MatrixChainProblem one({4, 5});
  SublinearSolver solver;
  const auto r1 = solver.solve(one);
  EXPECT_EQ(r1.cost, 0);
  EXPECT_EQ(r1.iterations, 0u);

  const dp::MatrixChainProblem two({4, 5, 6});
  const auto r2 = solver.solve(two);
  EXPECT_EQ(r2.cost, 120);
}

TEST(Sublinear, SteppingRequiresPrepare) {
  SublinearSolver solver;
  EXPECT_THROW((void)solver.step(), std::invalid_argument);
}

TEST(Sublinear, ReusableAcrossInstances) {
  support::Rng rng(71);
  SublinearSolver solver;
  for (int rep = 0; rep < 4; ++rep) {
    const auto p = dp::MatrixChainProblem::random(10, rng);
    EXPECT_EQ(solver.solve(p).cost, dp::solve_sequential(p).cost);
  }
}

}  // namespace
}  // namespace subdp::core
