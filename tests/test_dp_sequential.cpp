// Tests for the sequential O(n^3) baseline (dp/sequential.hpp), the result
// validator, tree extraction, and agreement with the exponential oracle.

#include "dp/sequential.hpp"

#include <gtest/gtest.h>

#include "dp/brute_force.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/polygon_triangulation.hpp"
#include "dp/tables.hpp"
#include "support/rng.hpp"

namespace subdp::dp {
namespace {

TEST(Sequential, MatchesBruteForceOnRandomMatrixChains) {
  support::Rng rng(21);
  for (std::size_t n = 1; n <= 10; ++n) {
    for (int rep = 0; rep < 5; ++rep) {
      const auto p = MatrixChainProblem::random(n, rng, 12);
      EXPECT_EQ(solve_sequential(p).cost, brute_force_cost(p))
          << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(Sequential, MatchesBruteForceOnRandomBsts) {
  support::Rng rng(22);
  for (std::size_t keys = 1; keys <= 9; ++keys) {
    const auto p = OptimalBstProblem::random(keys, rng);
    EXPECT_EQ(solve_sequential(p).cost, brute_force_cost(p));
  }
}

TEST(Sequential, ResultTableValidates) {
  support::Rng rng(23);
  const auto p = MatrixChainProblem::random(20, rng);
  const auto result = solve_sequential(p);
  EXPECT_TRUE(validate_result(p, result));
}

TEST(Sequential, OpsCountIsExactlyTheTripleCount) {
  support::Rng rng(24);
  const std::size_t n = 17;
  const auto p = MatrixChainProblem::random(n, rng);
  std::uint64_t ops = 0;
  (void)solve_sequential(p, &ops);
  // sum over len of (n-len+1)(len-1) = n(n^2-1)/6 triples.
  EXPECT_EQ(ops, static_cast<std::uint64_t>(n) * (n * n - 1) / 6);
}

TEST(Sequential, ExtractedTreeRealizesTheOptimalCost) {
  support::Rng rng(25);
  for (int rep = 0; rep < 10; ++rep) {
    const auto p = MatrixChainProblem::random(15, rng);
    const auto result = solve_sequential(p);
    const auto tree = extract_tree(result);
    EXPECT_TRUE(tree.validate());
    EXPECT_EQ(tree.leaf_count(), p.size());
    EXPECT_EQ(tree_weight(p, tree), result.cost);
  }
}

TEST(Sequential, ExtractTreeFromWMatchesSplitExtraction) {
  support::Rng rng(26);
  const auto p = MatrixChainProblem::random(12, rng);
  const auto result = solve_sequential(p);
  const auto from_w = extract_tree_from_w(p, result.c);
  EXPECT_TRUE(from_w.validate());
  EXPECT_EQ(tree_weight(p, from_w), result.cost);
}

TEST(Sequential, ExtractTreeFromWRejectsNonFixedPoint) {
  support::Rng rng(27);
  const auto p = MatrixChainProblem::random(8, rng);
  auto result = solve_sequential(p);
  result.c(0, p.size()) -= 1;  // corrupt the root cell
  EXPECT_THROW((void)extract_tree_from_w(p, result.c),
               std::invalid_argument);
}

TEST(Sequential, ValidatorCatchesCorruptedCost) {
  support::Rng rng(28);
  const auto p = MatrixChainProblem::random(10, rng);
  auto result = solve_sequential(p);
  result.c(0, 5) += 1;
  EXPECT_FALSE(validate_result(p, result));
}

TEST(Sequential, ValidatorCatchesCorruptedSplit) {
  support::Rng rng(29);
  const auto p = OptimalBstProblem::random(9, rng);
  auto result = solve_sequential(p);
  result.split(0, p.size()) = 0;  // out of range
  EXPECT_FALSE(validate_result(p, result));
}

TEST(Sequential, TrivialSizes) {
  const MatrixChainProblem one({3, 4});
  const auto r1 = solve_sequential(one);
  EXPECT_EQ(r1.cost, 0);

  const MatrixChainProblem two({3, 4, 5});
  const auto r2 = solve_sequential(two);
  EXPECT_EQ(r2.cost, 60);
  EXPECT_EQ(r2.split(0, 2), 1);
}

TEST(BruteForce, RefusesLargeInstances) {
  support::Rng rng(30);
  const auto p = MatrixChainProblem::random(17, rng);
  EXPECT_THROW((void)brute_force_cost(p), std::invalid_argument);
}

TEST(BruteForce, CatalanCounts) {
  EXPECT_EQ(parenthesization_count(1), 1);
  EXPECT_EQ(parenthesization_count(2), 1);
  EXPECT_EQ(parenthesization_count(3), 2);
  EXPECT_EQ(parenthesization_count(4), 5);
  EXPECT_EQ(parenthesization_count(5), 14);
  EXPECT_EQ(parenthesization_count(11), 16796);
}

}  // namespace
}  // namespace subdp::dp
