// Backend-parameterized tests for parallel loops (pram/parallel.hpp):
// every backend must cover the same index set exactly once and produce
// identical results.

#include "pram/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace subdp::pram {
namespace {

class ParallelBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(ParallelBackendTest, BlockedCoversExactlyOnce) {
  std::vector<std::atomic<int>> hits(5000);
  parallel_for_blocked(GetParam(), 0, 5000, 64,
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i) {
                           hits[static_cast<std::size_t>(i)].fetch_add(1);
                         }
                       });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST_P(ParallelBackendTest, EachCoversExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_each(GetParam(), 0, 1000, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST_P(ParallelBackendTest, EmptyRangeDoesNothing) {
  std::atomic<int> calls{0};
  parallel_for_blocked(GetParam(), 3, 3, 1,
                       [&](std::int64_t, std::int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST_P(ParallelBackendTest, SumMatchesSerialFold) {
  std::atomic<std::int64_t> sum{0};
  parallel_for_blocked(GetParam(), 1, 10001, 0,
                       [&](std::int64_t lo, std::int64_t hi) {
                         std::int64_t local = 0;
                         for (std::int64_t i = lo; i < hi; ++i) local += i;
                         sum.fetch_add(local);
                       });
  EXPECT_EQ(sum.load(), 10000LL * 10001 / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ParallelBackendTest,
    ::testing::Values(Backend::kSerial, Backend::kThreadPool,
                      Backend::kOpenMP),
    [](const ::testing::TestParamInfo<Backend>& info) {
      return std::string(to_string(info.param)) == "threads"
                 ? "threadpool"
                 : std::string(to_string(info.param));
    });

TEST(BackendNames, RoundTrip) {
  EXPECT_EQ(backend_from_string("serial"), Backend::kSerial);
  EXPECT_EQ(backend_from_string("threads"), Backend::kThreadPool);
  EXPECT_EQ(backend_from_string("openmp"), Backend::kOpenMP);
  EXPECT_EQ(backend_from_string(to_string(Backend::kSerial)),
            Backend::kSerial);
  EXPECT_FALSE(backend_from_string("bogus").has_value());
}

TEST(BackendNames, DefaultIsAlwaysAvailable) {
  EXPECT_EQ(default_backend(), Backend::kThreadPool);
}

}  // namespace
}  // namespace subdp::pram
