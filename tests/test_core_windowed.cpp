// Deep tests of the Sec. 5 windowed pebble schedule via the stepping
// interface: at iterations 2l-1 and 2l only pairs with
// (l-1)^2 < j-i <= l^2 may receive new w' values; the windows jointly
// cover every length; and the schedule still produces optimal answers on
// the families that stress it.

#include <gtest/gtest.h>

#include "core/convergence_report.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/sequential.hpp"
#include "dp/tree_shaped.hpp"
#include "support/grid.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trees/generators.hpp"

namespace subdp::core {
namespace {

TEST(Windowed, OnlyWindowLengthsChangePerIteration) {
  support::Rng rng(301);
  const std::size_t n = 30;
  const auto p = dp::MatrixChainProblem::random(n, rng);

  SublinearOptions options;
  options.windowed_pebble = true;
  options.termination = TerminationMode::kFixedBound;
  SublinearSolver solver(options);
  solver.prepare(p);

  support::Grid2D<Cost> before(n + 1, n + 1, kInfinity);
  const std::size_t bound = support::two_ceil_sqrt(n);
  for (std::size_t iter = 1; iter <= bound; ++iter) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j <= n; ++j) {
        before(i, j) = solver.current_w(i, j);
      }
    }
    (void)solver.step();
    const std::size_t l = (iter + 1) / 2;
    const std::size_t lo = (l - 1) * (l - 1);  // exclusive
    const std::size_t hi = l * l;              // inclusive
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j <= n; ++j) {
        const std::size_t len = j - i;
        if (solver.current_w(i, j) != before(i, j)) {
          ASSERT_GT(len, lo) << "iteration " << iter << " touched ("
                             << i << "," << j << ") below its window";
          ASSERT_LE(len, hi) << "iteration " << iter << " touched ("
                             << i << "," << j << ") above its window";
        }
      }
    }
  }
}

TEST(Windowed, WindowsJointlyCoverEveryLength) {
  // Lengths (l-1)^2+1 .. l^2 for l = 1 .. ceil(sqrt n) tile [1, n].
  for (const std::size_t n : {2u, 3u, 16u, 17u, 100u, 101u}) {
    std::vector<bool> covered(n + 1, false);
    for (std::size_t l = 1; l <= support::ceil_sqrt(n); ++l) {
      for (std::size_t len = (l - 1) * (l - 1) + 1;
           len <= l * l && len <= n; ++len) {
        EXPECT_FALSE(covered[len]) << "length " << len << " doubly covered";
        covered[len] = true;
      }
    }
    for (std::size_t len = 1; len <= n; ++len) {
      EXPECT_TRUE(covered[len]) << "length " << len << " never in a window";
    }
  }
}

TEST(Windowed, EachPairIsPebbledOnlyInItsTwoIterations) {
  // Count how many iterations change each pair: with windowing it can be
  // at most 2 (its window is visited exactly twice).
  support::Rng rng(302);
  const std::size_t n = 25;
  auto inst = dp::make_tree_shaped_instance(
      trees::make_tree(trees::TreeShape::kZigzag, n), rng);

  SublinearOptions options;
  options.windowed_pebble = true;
  options.termination = TerminationMode::kFixedBound;
  SublinearSolver solver(options);
  solver.prepare(inst.problem);

  support::Grid2D<int> changes(n + 1, n + 1, 0);
  support::Grid2D<Cost> before(n + 1, n + 1, kInfinity);
  for (std::size_t iter = 1; iter <= support::two_ceil_sqrt(n); ++iter) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j <= n; ++j) {
        before(i, j) = solver.current_w(i, j);
      }
    }
    (void)solver.step();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j <= n; ++j) {
        if (solver.current_w(i, j) != before(i, j)) ++changes(i, j);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j <= n; ++j) {
      EXPECT_LE(changes(i, j), 2) << "(" << i << "," << j << ")";
    }
  }
  EXPECT_EQ(solver.current_w(0, n), inst.optimal_cost);
}

TEST(Windowed, MatchesUnwindowedOnABattery) {
  support::Rng rng(303);
  for (int rep = 0; rep < 8; ++rep) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(4, 36));
    const auto p = dp::MatrixChainProblem::random(n, rng);
    SublinearOptions windowed;
    windowed.windowed_pebble = true;
    windowed.termination = TerminationMode::kFixedBound;
    SublinearOptions plain;
    plain.termination = TerminationMode::kFixedBound;
    SublinearSolver a(windowed), b(plain);
    const auto ra = a.solve(p);
    const auto rb = b.solve(p);
    ASSERT_EQ(ra.cost, rb.cost) << "n=" << n;
    ASSERT_TRUE(ra.w == rb.w) << "n=" << n;
  }
}

TEST(Windowed, PebbleWorkIsConcentrated) {
  // The windowed pebble step touches O(n^1.5) pairs total (sum over
  // windows) instead of O(n^2) pairs per iteration x 2 sqrt(n).
  support::Rng rng(304);
  const std::size_t n = 64;
  const auto p = dp::MatrixChainProblem::random(n, rng);

  std::uint64_t pebble_work[2];
  int idx = 0;
  for (const bool windowed : {false, true}) {
    SublinearOptions options;
    options.windowed_pebble = windowed;
    options.termination = TerminationMode::kFixedBound;
    SublinearSolver solver(options);
    (void)solver.solve(p);
    pebble_work[idx++] =
        solver.machine().costs().phase_totals().at("a-pebble").work;
  }
  EXPECT_LT(pebble_work[1] * 3, pebble_work[0]);
}

TEST(ConvergenceReport, TableAndSummaryReflectTheTrace) {
  support::Rng rng(305);
  const auto p = dp::MatrixChainProblem::random(20, rng);
  SublinearSolver solver;
  const auto result = solver.solve(p);
  const auto table = convergence_table(result, "test");
  EXPECT_EQ(table.rows(), result.trace.size());
  const auto summary = summarize_convergence(result);
  EXPECT_NE(summary.find("fixed point"), std::string::npos);
  EXPECT_NE(summary.find(std::to_string(result.iterations)),
            std::string::npos);
}

}  // namespace
}  // namespace subdp::core
