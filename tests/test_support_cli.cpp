// Unit tests for the flag parser (support/cli.hpp).

#include "support/cli.hpp"

#include <gtest/gtest.h>

namespace subdp::support {
namespace {

ArgParser make_parser() {
  ArgParser p("test program");
  p.add_int("n", 32, "instance size");
  p.add_double("ratio", 0.5, "a ratio");
  p.add_string("shape", "random", "tree shape");
  p.add_bool("verbose", false, "chatty output");
  return p;
}

TEST(ArgParser, DefaultsSurviveEmptyArgv) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_int("n"), 32);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.5);
  EXPECT_EQ(p.get_string("shape"), "random");
  EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(ArgParser, EqualsFormParsesAllTypes) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--n=64", "--ratio=0.25", "--shape=zigzag",
                        "--verbose=true"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.get_int("n"), 64);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.25);
  EXPECT_EQ(p.get_string("shape"), "zigzag");
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(ArgParser, SpaceFormParsesValues) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--n", "128", "--shape", "complete"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.get_int("n"), 128);
  EXPECT_EQ(p.get_string("shape"), "complete");
}

TEST(ArgParser, BareBoolFlagSetsTrue) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(ArgParser, UnknownFlagFails) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, MalformedIntFails) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--n=notanumber"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, MissingValueFails) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, HelpReturnsFalse) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, PositionalArgumentsCollected) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "alpha", "--n=2", "beta"};
  ASSERT_TRUE(p.parse(4, argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "alpha");
  EXPECT_EQ(p.positional()[1], "beta");
}

TEST(ArgParser, UnregisteredLookupThrows) {
  ArgParser p = make_parser();
  EXPECT_THROW((void)p.get_int("missing"), std::invalid_argument);
  EXPECT_THROW((void)p.get_int("shape"), std::invalid_argument);  // wrong type
}

TEST(ArgParser, UsageMentionsFlagsAndHelp) {
  ArgParser p = make_parser();
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("instance size"), std::string::npos);
}

}  // namespace
}  // namespace subdp::support
