// Unit tests for the arena tree (trees/full_binary_tree.hpp).

#include "trees/full_binary_tree.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "trees/generators.hpp"

namespace subdp::trees {
namespace {

FullBinaryTree midpoint_tree(std::size_t n) {
  return FullBinaryTree::build(
      n, [](std::size_t lo, std::size_t hi, std::size_t) {
        return lo + (hi - lo) / 2;
      });
}

TEST(FullBinaryTree, SingleLeaf) {
  const auto t = FullBinaryTree::build(1, {});
  EXPECT_EQ(t.leaf_count(), 1u);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_TRUE(t.is_leaf(t.root()));
  EXPECT_EQ(t.parent(t.root()), kNoNode);
  EXPECT_TRUE(t.validate());
}

TEST(FullBinaryTree, TwoLeaves) {
  const auto t = midpoint_tree(2);
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_FALSE(t.is_leaf(t.root()));
  EXPECT_TRUE(t.is_leaf(t.left(t.root())));
  EXPECT_TRUE(t.is_leaf(t.right(t.root())));
  EXPECT_EQ(t.split(t.root()), 1u);
  EXPECT_TRUE(t.validate());
}

TEST(FullBinaryTree, NodeCountIsAlwaysTwoNMinusOne) {
  for (std::size_t n = 1; n <= 40; ++n) {
    EXPECT_EQ(midpoint_tree(n).node_count(), 2 * n - 1);
  }
}

TEST(FullBinaryTree, SizesAddUp) {
  const auto t = midpoint_tree(17);
  for (NodeId x = 0; static_cast<std::size_t>(x) < t.node_count(); ++x) {
    if (!t.is_leaf(x)) {
      EXPECT_EQ(t.size(x), t.size(t.left(x)) + t.size(t.right(x)));
    } else {
      EXPECT_EQ(t.size(x), 1u);
    }
  }
}

TEST(FullBinaryTree, IsAncestorSemantics) {
  const auto t = midpoint_tree(8);
  const NodeId root = t.root();
  EXPECT_TRUE(t.is_ancestor(root, root));  // every node is its own ancestor
  const NodeId l = t.left(root);
  const NodeId r = t.right(root);
  EXPECT_TRUE(t.is_ancestor(root, l));
  EXPECT_TRUE(t.is_ancestor(root, r));
  EXPECT_FALSE(t.is_ancestor(l, root));
  EXPECT_FALSE(t.is_ancestor(l, r));
}

TEST(FullBinaryTree, NodeAtFindsEveryNode) {
  support::Rng rng(3);
  const auto t = make_tree(TreeShape::kRandom, 33, &rng);
  for (NodeId x = 0; static_cast<std::size_t>(x) < t.node_count(); ++x) {
    EXPECT_EQ(t.node_at(t.lo(x), t.hi(x)), x);
  }
}

TEST(FullBinaryTree, NodeAtMissesNonNodes) {
  // Left-skewed over 4 leaves: nodes (0,4),(0,3),(0,2),(0,1),(1,2),(2,3),(3,4).
  const auto t = make_tree(TreeShape::kLeftSkewed, 4);
  EXPECT_EQ(t.node_at(1, 4), kNoNode);
  EXPECT_EQ(t.node_at(1, 3), kNoNode);
  EXPECT_EQ(t.node_at(2, 4), kNoNode);
  EXPECT_EQ(t.node_at(0, 5), kNoNode);  // out of range
  EXPECT_EQ(t.node_at(3, 3), kNoNode);  // empty interval
}

TEST(FullBinaryTree, HeightOfShapes) {
  EXPECT_EQ(make_tree(TreeShape::kComplete, 16).height(), 4u);
  EXPECT_EQ(make_tree(TreeShape::kLeftSkewed, 16).height(), 15u);
  EXPECT_EQ(make_tree(TreeShape::kZigzag, 16).height(), 15u);
}

TEST(FullBinaryTree, LeavesOrderedByInterval) {
  support::Rng rng(9);
  const auto t = make_tree(TreeShape::kRandom, 20, &rng);
  const auto ls = t.leaves();
  ASSERT_EQ(ls.size(), 20u);
  for (std::size_t i = 0; i < ls.size(); ++i) {
    EXPECT_EQ(t.lo(ls[i]), i);
    EXPECT_EQ(t.hi(ls[i]), i + 1);
  }
}

TEST(FullBinaryTree, BuildRejectsBadSplit) {
  EXPECT_THROW(FullBinaryTree::build(
                   4,
                   [](std::size_t lo, std::size_t, std::size_t) {
                     return lo;  // not strictly inside
                   }),
               std::invalid_argument);
}

TEST(FullBinaryTree, DeepSkewedTreeBuildsWithoutStackOverflow) {
  const std::size_t n = 200'000;
  const auto t = make_tree(TreeShape::kLeftSkewed, n);
  EXPECT_EQ(t.node_count(), 2 * n - 1);
  EXPECT_EQ(t.height(), n - 1);
}

}  // namespace
}  // namespace subdp::trees
