// Tests of the plan/session/batch architecture: prepare-once/solve-many
// bit-identity against one-shot solves, in-place session reuse, plan
// sharing across sessions, ledger resets between instances, and the
// BatchSolver front door's grouping and aggregation.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/api.hpp"
#include "core/batch_solver.hpp"
#include "core/solve_plan.hpp"
#include "core/solve_session.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/sequential.hpp"
#include "serve/solver_service.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace subdp::core {
namespace {

std::vector<dp::MatrixChainProblem> random_chains(std::size_t count,
                                                  std::size_t n,
                                                  std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<dp::MatrixChainProblem> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    out.push_back(dp::MatrixChainProblem::random(n, rng));
  }
  return out;
}

TEST(Plan, ValidatesOptionsPerShape) {
  EXPECT_EQ(SolvePlan::create(20)->iteration_bound(),
            support::two_ceil_sqrt(20));
  EXPECT_EQ(SolvePlan::create(20)->effective_band(),
            support::two_ceil_sqrt(20));

  SublinearOptions dense;
  dense.variant = PwVariant::kDense;
  EXPECT_THROW((void)SolvePlan::create(DensePwTable::kMaxDenseN + 1, dense),
               std::invalid_argument);

  SublinearOptions windowed;
  windowed.windowed_pebble = true;  // default termination is fixed-point
  EXPECT_THROW((void)SolvePlan::create(16, windowed),
               std::invalid_argument);

  SublinearOptions banded;
  banded.band_width = 5;
  EXPECT_EQ(SolvePlan::create(32, banded)->effective_band(), 5u);
}

TEST(Plan, SharedAcrossSessionsGivesIdenticalResults) {
  const std::size_t n = 18;
  const auto problems = random_chains(3, n, 501);
  auto plan = SolvePlan::create(n);
  SolveSession a(plan);
  SolveSession b(plan);  // same immutable plan, independent tables
  for (const auto& p : problems) {
    const auto ra = a.solve(p);
    const auto rb = b.solve(p);
    EXPECT_EQ(ra.cost, rb.cost);
    EXPECT_TRUE(ra.w == rb.w);
    EXPECT_EQ(ra.iterations, rb.iterations);
    EXPECT_EQ(ra.cost, dp::solve_sequential(p).cost);
  }
}

TEST(Session, ReuseIsBitIdenticalToFreshSolves) {
  // One session solving several different problems in sequence must be
  // bit-identical to a fresh solver per problem: the in-place reset may
  // not leak any state between instances.
  const std::size_t n = 24;
  const auto problems = random_chains(5, n, 502);
  SolveSession session(SolvePlan::create(n));
  for (const auto& p : problems) {
    const auto reused = session.solve(p);
    SublinearSolver fresh;
    const auto oneshot = fresh.solve(p);
    EXPECT_EQ(reused.cost, oneshot.cost);
    EXPECT_TRUE(reused.w == oneshot.w);
    EXPECT_EQ(reused.iterations, oneshot.iterations);
    EXPECT_EQ(reused.trace.size(), oneshot.trace.size());
  }
}

TEST(Session, LedgerAndCellCountResetBetweenInstances) {
  const std::size_t n = 16;
  const auto problems = random_chains(2, n, 503);
  SolveSession session(SolvePlan::create(n));

  const auto r0 = session.solve(problems[0]);
  const std::size_t cells = session.pw_cell_count();
  const auto work0 = session.machine().costs().total_work();
  const auto steps0 = session.machine().costs().step_count();
  EXPECT_GT(cells, 0u);
  EXPECT_GT(work0, 0u);
  EXPECT_EQ(steps0, 3 * r0.iterations);

  // Same problem again: the ledger must restart from zero, not
  // accumulate, and the allocation is reused (same cell count).
  const auto r1 = session.solve(problems[0]);
  EXPECT_EQ(session.pw_cell_count(), cells);
  EXPECT_EQ(session.machine().costs().total_work(), work0);
  EXPECT_EQ(session.machine().costs().step_count(), 3 * r1.iterations);
  EXPECT_EQ(r1.cost, r0.cost);
  EXPECT_TRUE(r1.w == r0.w);

  // A different instance of the same shape also starts from a clean
  // ledger and the same allocation.
  (void)session.solve(problems[1]);
  EXPECT_EQ(session.pw_cell_count(), cells);
  EXPECT_EQ(session.pw_cell_count(), session.plan().pw_cell_count());
}

TEST(Session, ReuseMatchesAcrossEngineConfigurations) {
  // The in-place reset must be exact for every engine mode: reference
  // double-buffering, delta without frontiers, and the full fast path.
  const std::size_t n = 14;
  const auto problems = random_chains(3, n, 504);
  for (const bool delta : {false, true}) {
    for (const bool frontier : {false, true}) {
      if (!delta && frontier) continue;
      SublinearOptions options;
      options.delta_buffering = delta;
      options.frontier_sweeps = frontier;
      SolveSession session(SolvePlan::create(n, options));
      for (const auto& p : problems) {
        const auto reused = session.solve(p);
        SolveSession oneshot(SolvePlan::create(n, options));
        const auto fresh = oneshot.solve(p);
        EXPECT_EQ(reused.cost, fresh.cost);
        EXPECT_TRUE(reused.w == fresh.w);
        EXPECT_EQ(reused.iterations, fresh.iterations);
      }
    }
  }
}

TEST(Solver, FacadeReusesPlanAcrossSameShapeInstances) {
  const std::size_t n = 20;
  const auto problems = random_chains(4, n, 505);
  SublinearSolver solver;
  std::shared_ptr<const SolvePlan> plan;
  for (const auto& p : problems) {
    const auto result = solver.solve(p);
    EXPECT_EQ(result.cost, dp::solve_sequential(p).cost);
    if (plan == nullptr) {
      plan = solver.plan();
      EXPECT_NE(plan, nullptr);
    } else {
      EXPECT_EQ(solver.plan(), plan) << "same-n solve rebuilt the plan";
    }
  }
  // A different shape swaps the plan in.
  support::Rng rng(506);
  const auto other = dp::MatrixChainProblem::random(n + 3, rng);
  (void)solver.solve(other);
  EXPECT_NE(solver.plan(), plan);
  EXPECT_EQ(solver.plan()->n(), n + 3);
}

TEST(Batch, BitIdenticalToIndependentSolves) {
  // The acceptance bar: >= 8 same-n instances through solve_all must be
  // bit-identical (cost, iterations, full w table) to independent
  // core::solve calls.
  const std::size_t n = 32;
  const auto problems = random_chains(8, n, 507);
  std::vector<const dp::Problem*> pointers;
  for (const auto& p : problems) pointers.push_back(&p);

  BatchSolver batch;
  const auto out = batch.solve_all(pointers);
  ASSERT_EQ(out.results.size(), problems.size());
  EXPECT_EQ(out.ledger.instances, problems.size());
  EXPECT_EQ(out.ledger.shape_groups, 1u);
  EXPECT_EQ(out.ledger.plans_built, 1u);
  EXPECT_EQ(out.ledger.plans_reused, 0u);
  EXPECT_EQ(batch.cached_plan_count(), 1u);

  for (std::size_t k = 0; k < problems.size(); ++k) {
    SublinearSolver independent;
    const auto expected = independent.solve(problems[k]);
    EXPECT_EQ(out.results[k].cost, expected.cost) << "instance " << k;
    EXPECT_TRUE(out.results[k].w == expected.w) << "instance " << k;
    EXPECT_EQ(out.results[k].iterations, expected.iterations)
        << "instance " << k;
    EXPECT_EQ(out.results[k].cost,
              dp::solve_sequential(problems[k]).cost);
  }
}

TEST(Batch, GroupsMixedShapesAndKeepsInputOrder) {
  support::Rng rng(508);
  std::vector<std::unique_ptr<dp::Problem>> owned;
  // Interleave three shapes so grouping has to reorder internally while
  // results stay in input order.
  for (int rep = 0; rep < 3; ++rep) {
    for (const std::size_t n : {10u, 17u, 23u}) {
      owned.push_back(std::make_unique<dp::MatrixChainProblem>(
          dp::MatrixChainProblem::random(n, rng)));
    }
  }
  std::vector<const dp::Problem*> pointers;
  for (const auto& p : owned) pointers.push_back(p.get());

  BatchSolver batch;
  const auto out = batch.solve_all(pointers);
  ASSERT_EQ(out.results.size(), owned.size());
  EXPECT_EQ(out.ledger.shape_groups, 3u);
  EXPECT_EQ(out.ledger.plans_built, 3u);
  for (std::size_t k = 0; k < owned.size(); ++k) {
    EXPECT_EQ(out.results[k].cost, dp::solve_sequential(*owned[k]).cost)
        << "instance " << k;
  }

  // A second batch of known shapes is served entirely by warm plans.
  const auto again = batch.solve_all(pointers);
  EXPECT_EQ(again.ledger.plans_built, 0u);
  EXPECT_EQ(again.ledger.plans_reused, 3u);
  EXPECT_EQ(batch.cached_plan_count(), 3u);
  EXPECT_NE(batch.plan_for(10), nullptr);
  EXPECT_EQ(batch.plan_for(11), nullptr);
  for (std::size_t k = 0; k < owned.size(); ++k) {
    EXPECT_EQ(again.results[k].cost, out.results[k].cost);
    EXPECT_TRUE(again.results[k].w == out.results[k].w);
  }
}

TEST(Batch, AggregatesTheLedger) {
  const std::size_t n = 12;
  const auto problems = random_chains(4, n, 509);
  std::vector<const dp::Problem*> pointers;
  for (const auto& p : problems) pointers.push_back(&p);

  BatchSolver batch;  // record_costs defaults on
  const auto out = batch.solve_all(pointers);

  std::uint64_t expected_work = 0;
  std::size_t expected_iterations = 0;
  for (const auto& p : problems) {
    SublinearSolver solver;
    const auto r = solver.solve(p);
    expected_work += solver.machine().costs().total_work();
    expected_iterations += r.iterations;
  }
  EXPECT_EQ(out.ledger.total_work, expected_work);
  EXPECT_EQ(out.ledger.total_iterations, expected_iterations);
  EXPECT_GT(out.ledger.total_depth, 0u);
}

TEST(Batch, HandlesTrivialAndEmptyInputs) {
  BatchSolver batch;
  EXPECT_EQ(batch.solve_all({}).results.size(), 0u);

  const dp::MatrixChainProblem one({4, 5});
  const dp::MatrixChainProblem also_one({7, 9});
  std::vector<const dp::Problem*> pointers = {&one, &also_one};
  const auto out = batch.solve_all(pointers);
  ASSERT_EQ(out.results.size(), 2u);
  EXPECT_EQ(out.results[0].cost, 0);
  EXPECT_EQ(out.results[1].cost, 0);
  EXPECT_EQ(out.ledger.plans_built, 1u);  // one shared n == 1 plan

  const dp::Problem* null_problem = nullptr;
  std::vector<const dp::Problem*> bad = {&one, null_problem};
  EXPECT_THROW((void)batch.solve_all(bad), std::invalid_argument);
}

TEST(Batch, ContractUnchangedUnderTheAdmissionIntakePath) {
  // The serving layer grew admission control (bounded queue, kReject
  // shedding, per-job deadlines), but grouped batch jobs bypass it by
  // construction: no deadline is ever armed for them and a full queue
  // back-pressures the caller instead of rejecting. BatchSolver's
  // ledger and bit-identity contract must therefore be byte-for-byte
  // what it was before the intake redesign — even against a service
  // configured to shed aggressively.
  const std::size_t n = 21;
  const auto problems = random_chains(6, n, 511);
  std::vector<const dp::Problem*> pointers;
  for (const auto& p : problems) pointers.push_back(&p);

  BatchSolver batch;  // facade defaults: unbounded queue, no deadlines
  const auto facade = batch.solve_all(pointers);

  serve::ServiceOptions hostile;
  hostile.workers = 2;
  hostile.queue_capacity = 1;  // every enqueue collides with capacity
  hostile.overload_policy = serve::OverloadPolicy::kReject;
  serve::SolverService service(hostile);
  const auto shed = service.solve_all(pointers);

  ASSERT_EQ(facade.results.size(), pointers.size());
  ASSERT_EQ(shed.results.size(), pointers.size());
  for (std::size_t k = 0; k < pointers.size(); ++k) {
    SublinearSolver independent;
    const auto expected = independent.solve(problems[k]);
    EXPECT_EQ(facade.results[k].cost, expected.cost) << "instance " << k;
    EXPECT_TRUE(facade.results[k].w == expected.w) << "instance " << k;
    EXPECT_EQ(facade.results[k].iterations, expected.iterations)
        << "instance " << k;
    EXPECT_EQ(shed.results[k].cost, expected.cost) << "instance " << k;
    EXPECT_TRUE(shed.results[k].w == expected.w) << "instance " << k;
  }
  EXPECT_EQ(facade.ledger.instances, shed.ledger.instances);
  EXPECT_EQ(facade.ledger.shape_groups, shed.ledger.shape_groups);
  EXPECT_EQ(facade.ledger.plans_built, shed.ledger.plans_built);
  EXPECT_EQ(facade.ledger.total_iterations, shed.ledger.total_iterations);

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_rejected, 0u) << "batch jobs must never be shed";
  EXPECT_EQ(stats.jobs_expired, 0u) << "batch jobs carry no deadline";
}

TEST(Batch, RespectsConfiguredOptions) {
  support::Rng rng(510);
  const auto p = dp::OptimalBstProblem::random(13, rng);
  SublinearOptions options;
  options.variant = PwVariant::kDense;
  options.termination = TerminationMode::kFixedBound;
  BatchSolver batch(options);
  std::vector<const dp::Problem*> pointers = {&p};
  const auto out = batch.solve_all(pointers);
  EXPECT_EQ(out.results[0].cost, dp::solve_sequential(p).cost);
  EXPECT_EQ(out.results[0].iterations,
            support::two_ceil_sqrt(p.size()));
  EXPECT_EQ(batch.plan_for(p.size())->options().variant,
            PwVariant::kDense);
}

}  // namespace
}  // namespace subdp::core
