// Tests of the SolverService QoS intake: EDF dequeue order proven with
// inverted submit/deadline order, the lazy expiry sweep freeing a full
// bounded queue without any worker pickup, batch-vs-interactive
// anti-starvation (an interactive submit behind a wall of solve_all
// batch traffic completes first), exact per-priority-class counter and
// histogram reconciliation, and the retry-after hint carried by
// kQueueFull rejections (exact depth, the documented p50/depth drain
// estimate, and the conservative default when the queue-wait histogram
// has no nonzero signal). Deterministic: every deadline and latency
// runs on an obs::ManualClock, and worker/builder progress is gated
// through blocking problems — never timed. Smoke-labelled; runs under
// the TSan preset.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/sequential.hpp"
#include "obs/clock.hpp"
#include "serve/solver_service.hpp"
#include "support/rng.hpp"
#include "tests/serve_tsan_suppression.hpp"

namespace subdp::serve {
namespace {

using core::AdmissionError;

/// A reusable open-once gate for sequencing test threads.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;

  void open_gate() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void wait_open() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return open; });
  }
};

/// Opens a gate at scope exit so a failed ASSERT cannot leave the
/// service destructor waiting on a blocked worker.
struct GateOpener {
  std::shared_ptr<Gate> gate;
  ~GateOpener() { gate->open_gate(); }
};

/// A matrix-chain instance whose solve blocks at the first `init` call
/// until released — pins down one worker deterministically, announcing
/// the moment a solver thread enters it.
class GatedProblem final : public dp::Problem {
 public:
  explicit GatedProblem(dp::MatrixChainProblem inner)
      : inner_(std::move(inner)), gate_(std::make_shared<Gate>()) {}

  [[nodiscard]] std::size_t size() const override { return inner_.size(); }
  [[nodiscard]] Cost init(std::size_t i) const override {
    {
      std::unique_lock<std::mutex> lock(entered_mutex_);
      if (!entered_) {
        entered_ = true;
        entered_cv_.notify_all();
      }
    }
    gate_->wait_open();
    return inner_.init(i);
  }
  [[nodiscard]] Cost f(std::size_t i, std::size_t k,
                       std::size_t j) const override {
    return inner_.f(i, k, j);
  }
  [[nodiscard]] std::string name() const override { return "gated"; }

  [[nodiscard]] const dp::MatrixChainProblem& inner() const {
    return inner_;
  }
  [[nodiscard]] std::shared_ptr<Gate> gate() const { return gate_; }
  void wait_until_entered() const {
    std::unique_lock<std::mutex> lock(entered_mutex_);
    entered_cv_.wait(lock, [&] { return entered_; });
  }

 private:
  dp::MatrixChainProblem inner_;
  std::shared_ptr<Gate> gate_;
  mutable std::mutex entered_mutex_;
  mutable std::condition_variable entered_cv_;
  mutable bool entered_ = false;
};

/// Counts every `init`/`f` evaluation: "resolved without solving" means
/// this stays at zero.
class ProbeProblem final : public dp::Problem {
 public:
  explicit ProbeProblem(dp::MatrixChainProblem inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::size_t size() const override { return inner_.size(); }
  [[nodiscard]] Cost init(std::size_t i) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return inner_.init(i);
  }
  [[nodiscard]] Cost f(std::size_t i, std::size_t k,
                       std::size_t j) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return inner_.f(i, k, j);
  }
  [[nodiscard]] std::string name() const override { return "probe"; }
  [[nodiscard]] std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  dp::MatrixChainProblem inner_;
  mutable std::atomic<std::uint64_t> calls_{0};
};

/// Shared completion-order journal: each OrderedProblem appends its tag
/// the first time a solver thread enters it, so a single-worker drain
/// records the exact dequeue order.
struct OrderJournal {
  std::mutex mutex;
  std::vector<int> order;

  void record(int tag) {
    const std::lock_guard<std::mutex> lock(mutex);
    order.push_back(tag);
  }
  [[nodiscard]] std::vector<int> snapshot() {
    const std::lock_guard<std::mutex> lock(mutex);
    return order;
  }
};

class OrderedProblem final : public dp::Problem {
 public:
  OrderedProblem(dp::MatrixChainProblem inner, int tag,
                 std::shared_ptr<OrderJournal> journal)
      : inner_(std::move(inner)), tag_(tag), journal_(std::move(journal)) {}

  [[nodiscard]] std::size_t size() const override { return inner_.size(); }
  [[nodiscard]] Cost init(std::size_t i) const override {
    {
      const std::lock_guard<std::mutex> lock(recorded_mutex_);
      if (!recorded_) {
        recorded_ = true;
        journal_->record(tag_);
      }
    }
    return inner_.init(i);
  }
  [[nodiscard]] Cost f(std::size_t i, std::size_t k,
                       std::size_t j) const override {
    return inner_.f(i, k, j);
  }
  [[nodiscard]] std::string name() const override { return "ordered"; }
  [[nodiscard]] const dp::MatrixChainProblem& inner() const {
    return inner_;
  }

 private:
  dp::MatrixChainProblem inner_;
  int tag_;
  std::shared_ptr<OrderJournal> journal_;
  mutable std::mutex recorded_mutex_;
  mutable bool recorded_ = false;
};

void expect_admission_error(std::future<core::SublinearResult>& future,
                            AdmissionError::Kind kind) {
  try {
    (void)future.get();
    FAIL() << "expected AdmissionError(" << core::to_string(kind) << ")";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.kind(), kind) << e.what();
    EXPECT_FALSE(e.has_hint());  // hints belong to kQueueFull rejections
  }
}

/// Asserts the global and per-class admission invariants on a drained
/// service: each class's ledger closes, and the class slices partition
/// every global counter.
void expect_class_accounted(const ServiceStats& stats) {
  EXPECT_EQ(stats.jobs_submitted,
            stats.jobs_completed + stats.jobs_rejected + stats.jobs_expired);
  for (const PriorityClassStats* cls : {&stats.interactive, &stats.batch}) {
    EXPECT_EQ(cls->submitted,
              cls->completed + cls->rejected + cls->expired);
    EXPECT_EQ(cls->e2e.count, cls->completed);
  }
  EXPECT_EQ(stats.interactive.submitted + stats.batch.submitted,
            stats.jobs_submitted);
  EXPECT_EQ(stats.interactive.completed + stats.batch.completed,
            stats.jobs_completed);
  EXPECT_EQ(stats.interactive.rejected + stats.batch.rejected,
            stats.jobs_rejected);
  EXPECT_EQ(stats.interactive.expired + stats.batch.expired,
            stats.jobs_expired);
}

TEST(ServeQos, EdfDequeuesInDeadlineOrderNotSubmitOrder) {
  support::Rng rng(9001);
  GatedProblem gated(dp::MatrixChainProblem::random(13, rng));
  const auto journal = std::make_shared<OrderJournal>();
  const OrderedProblem late(dp::MatrixChainProblem::random(13, rng), 1,
                            journal);
  const OrderedProblem middle(dp::MatrixChainProblem::random(13, rng), 2,
                              journal);
  const OrderedProblem early(dp::MatrixChainProblem::random(13, rng), 3,
                             journal);

  const auto manual = std::make_shared<obs::ManualClock>();
  ServiceOptions options;
  options.workers = 1;
  options.clock = manual;
  SolverService service(options);
  const GateOpener opener{gated.gate()};

  // Pin the single worker so the next three submits stack up queued.
  auto pinned = service.submit(gated);
  gated.wait_until_entered();

  // Submit order 1, 2, 3 — deadline order 3, 2, 1 (all far in the
  // future: nothing expires; the deadlines only *rank*).
  using std::chrono::hours;
  auto f_late = service.submit(late, manual->now() + hours(3));
  auto f_middle = service.submit(middle, manual->now() + hours(2));
  auto f_early = service.submit(early, manual->now() + hours(1));

  gated.gate()->open_gate();
  EXPECT_EQ(pinned.get().cost, dp::solve_sequential(gated.inner()).cost);
  EXPECT_EQ(f_late.get().cost, dp::solve_sequential(late.inner()).cost);
  EXPECT_EQ(f_middle.get().cost,
            dp::solve_sequential(middle.inner()).cost);
  EXPECT_EQ(f_early.get().cost, dp::solve_sequential(early.inner()).cost);

  // The single worker drained in EDF order: earliest deadline first,
  // inverting submission order.
  EXPECT_EQ(journal->snapshot(), (std::vector<int>{3, 2, 1}));

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_completed, 4u);
  EXPECT_EQ(stats.jobs_expired, 0u);
  expect_class_accounted(stats);
}

TEST(ServeQos, ExpirySweepFreesAFullQueueWithoutAWorkerPickup) {
  constexpr std::size_t kQueueCap = 3;
  support::Rng rng(9002);
  GatedProblem gated(dp::MatrixChainProblem::random(13, rng));
  ProbeProblem doomed_a(dp::MatrixChainProblem::random(13, rng));
  ProbeProblem doomed_b(dp::MatrixChainProblem::random(13, rng));
  ProbeProblem doomed_c(dp::MatrixChainProblem::random(13, rng));
  const auto normal = dp::MatrixChainProblem::random(13, rng);

  const auto manual = std::make_shared<obs::ManualClock>();
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = kQueueCap;
  options.overload_policy = OverloadPolicy::kReject;
  options.clock = manual;
  SolverService service(options);
  const GateOpener opener{gated.gate()};

  auto pinned = service.submit(gated);
  gated.wait_until_entered();

  // Fill every slot with deadline-carrying jobs, then let every
  // deadline pass with the worker still pinned.
  using std::chrono::milliseconds;
  const Deadline deadline = manual->now() + milliseconds(10);
  auto f_a = service.submit(doomed_a, deadline);
  auto f_b = service.submit(doomed_b, deadline);
  auto f_c = service.submit(doomed_c, deadline);
  manual->advance(milliseconds(20));

  // The overflow submit is *admitted*, not rejected: the enqueue-side
  // sweep expires all three queued jobs and takes one freed slot — no
  // worker pickup involved (the only worker is still blocked in the
  // gated solve).
  auto admitted = service.submit(normal);

  // The swept futures resolved synchronously, before any pickup, and
  // the expired problems were never touched.
  using std::future_status::ready;
  EXPECT_EQ(f_a.wait_for(std::chrono::seconds(0)), ready);
  EXPECT_EQ(f_b.wait_for(std::chrono::seconds(0)), ready);
  EXPECT_EQ(f_c.wait_for(std::chrono::seconds(0)), ready);
  expect_admission_error(f_a, AdmissionError::Kind::kDeadlineExceeded);
  expect_admission_error(f_b, AdmissionError::Kind::kDeadlineExceeded);
  expect_admission_error(f_c, AdmissionError::Kind::kDeadlineExceeded);
  EXPECT_EQ(doomed_a.calls(), 0u);
  EXPECT_EQ(doomed_b.calls(), 0u);
  EXPECT_EQ(doomed_c.calls(), 0u);
  EXPECT_EQ(service.stats().jobs_expired, 3u);

  gated.gate()->open_gate();
  EXPECT_EQ(pinned.get().cost, dp::solve_sequential(gated.inner()).cost);
  EXPECT_EQ(admitted.get().cost, dp::solve_sequential(normal).cost);

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_submitted, 5u);
  EXPECT_EQ(stats.jobs_completed, 2u);
  EXPECT_EQ(stats.jobs_rejected, 0u);
  EXPECT_EQ(stats.jobs_expired, 3u);
  expect_class_accounted(stats);
}

TEST(ServeQos, InteractiveSubmitBehindABatchWallCompletesFirst) {
  constexpr std::size_t kWall = 6;
  support::Rng rng(9003);
  GatedProblem gated(dp::MatrixChainProblem::random(13, rng));
  const auto journal = std::make_shared<OrderJournal>();

  // Tags: 0 = the gated pin, 100 = the interactive job, 1..kWall = the
  // batch wall.
  std::deque<OrderedProblem> wall;  // deque: OrderedProblem is pinned
                                    // in place (mutex member, immovable)
  for (std::size_t i = 0; i < kWall; ++i) {
    wall.emplace_back(dp::MatrixChainProblem::random(13, rng),
                      static_cast<int>(i) + 1, journal);
  }
  const OrderedProblem interactive(dp::MatrixChainProblem::random(13, rng),
                                   100, journal);

  ServiceOptions options;
  options.workers = 1;
  SolverService service(options);
  const GateOpener opener{gated.gate()};

  auto pinned = service.submit(gated);
  gated.wait_until_entered();

  // Queue the batch wall through solve_all on a helper thread (the call
  // blocks until its last instance solves, long after the assertion).
  std::vector<const dp::Problem*> wall_ptrs;
  wall_ptrs.reserve(kWall);
  for (const OrderedProblem& p : wall) wall_ptrs.push_back(&p);
  auto wall_result = std::async(std::launch::async, [&] {
    return service.solve_all(wall_ptrs);
  });
  // Wait for the wall to be counted in (submission is counted before
  // the jobs become visible, and the worker is pinned, so nothing
  // drains yet).
  while (service.stats().jobs_submitted < 1 + kWall) {
    std::this_thread::yield();
  }

  // The interactive submit lands behind kWall queued batch jobs — and
  // is dequeued ahead of every one of them.
  auto f_interactive = service.submit(interactive);

  gated.gate()->open_gate();
  EXPECT_EQ(pinned.get().cost, dp::solve_sequential(gated.inner()).cost);
  EXPECT_EQ(f_interactive.get().cost,
            dp::solve_sequential(interactive.inner()).cost);
  const core::BatchResult batch = wall_result.get();
  for (std::size_t i = 0; i < kWall; ++i) {
    EXPECT_EQ(batch.results[i].cost,
              dp::solve_sequential(wall[i].inner()).cost);
  }

  // Completion order (the gated pin is not journalled): the
  // interactive job ran ahead of the entire batch wall.
  const std::vector<int> order = journal->snapshot();
  ASSERT_EQ(order.size(), kWall + 1);
  EXPECT_EQ(order[0], 100);

  const auto stats = service.stats();
  EXPECT_EQ(stats.interactive.submitted, 2u);  // pin + interactive
  EXPECT_EQ(stats.interactive.completed, 2u);
  EXPECT_EQ(stats.batch.submitted, kWall);
  EXPECT_EQ(stats.batch.completed, kWall);
  expect_class_accounted(stats);
}

TEST(ServeQos, PerClassCountersReconcileExactly) {
  constexpr std::size_t kQueueCap = 4;
  support::Rng rng(9004);
  GatedProblem gated(dp::MatrixChainProblem::random(13, rng));
  const auto normal = dp::MatrixChainProblem::random(13, rng);
  ProbeProblem doomed_i(dp::MatrixChainProblem::random(13, rng));
  ProbeProblem doomed_b(dp::MatrixChainProblem::random(13, rng));

  const auto manual = std::make_shared<obs::ManualClock>();
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = kQueueCap;
  options.overload_policy = OverloadPolicy::kReject;
  options.clock = manual;
  SolverService service(options);
  const GateOpener opener{gated.gate()};

  // Worker pinned on an interactive job; then one live + one doomed
  // job per class fills the queue.
  auto pinned = service.submit(gated);
  gated.wait_until_entered();
  using std::chrono::milliseconds;
  auto f_i1 = service.submit(normal);
  auto f_b1 = service.submit(normal, PriorityClass::kBatch);
  auto f_i2 = service.submit(doomed_i, manual->now() + milliseconds(10));
  auto f_b2 = service.submit(doomed_b, PriorityClass::kBatch,
                             manual->now() + milliseconds(10));
  manual->advance(milliseconds(20));

  // Both doomed jobs expire in the enqueue sweep; their two freed slots
  // admit one more job per class.
  auto f_i3 = service.submit(normal);
  auto f_b3 = service.submit(normal, PriorityClass::kBatch);
  expect_admission_error(f_i2, AdmissionError::Kind::kDeadlineExceeded);
  expect_admission_error(f_b2, AdmissionError::Kind::kDeadlineExceeded);
  EXPECT_EQ(doomed_i.calls(), 0u);
  EXPECT_EQ(doomed_b.calls(), 0u);

  // The queue is full of live jobs again: one rejection per class.
  EXPECT_THROW((void)service.submit(normal), AdmissionError);
  EXPECT_THROW((void)service.submit(normal, PriorityClass::kBatch),
               AdmissionError);

  gated.gate()->open_gate();
  EXPECT_EQ(pinned.get().cost, dp::solve_sequential(gated.inner()).cost);
  const Cost expected = dp::solve_sequential(normal).cost;
  EXPECT_EQ(f_i1.get().cost, expected);
  EXPECT_EQ(f_i3.get().cost, expected);
  EXPECT_EQ(f_b1.get().cost, expected);
  EXPECT_EQ(f_b3.get().cost, expected);

  const auto stats = service.stats();
  EXPECT_EQ(stats.interactive.submitted, 5u);
  EXPECT_EQ(stats.interactive.completed, 3u);  // pin, i1, i3
  EXPECT_EQ(stats.interactive.rejected, 1u);
  EXPECT_EQ(stats.interactive.expired, 1u);
  EXPECT_EQ(stats.batch.submitted, 4u);
  EXPECT_EQ(stats.batch.completed, 2u);  // b1, b3
  EXPECT_EQ(stats.batch.rejected, 1u);
  EXPECT_EQ(stats.batch.expired, 1u);
  EXPECT_EQ(stats.jobs_submitted, 9u);
  EXPECT_EQ(stats.jobs_completed, 5u);
  EXPECT_EQ(stats.jobs_rejected, 2u);
  EXPECT_EQ(stats.jobs_expired, 2u);
  expect_class_accounted(stats);
}

TEST(ServeQos, RetryAfterHintCarriesDepthAndHistogramDrainEstimate) {
  constexpr std::size_t kQueueCap = 4;
  support::Rng rng(9005);
  GatedProblem warmup(dp::MatrixChainProblem::random(13, rng));
  GatedProblem repin(dp::MatrixChainProblem::random(13, rng));
  const auto normal = dp::MatrixChainProblem::random(13, rng);

  const auto manual = std::make_shared<obs::ManualClock>();
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = kQueueCap;
  options.overload_policy = OverloadPolicy::kReject;
  options.clock = manual;
  SolverService service(options);
  const GateOpener open_warmup{warmup.gate()};
  const GateOpener open_repin{repin.gate()};

  // Phase 1 — seed the queue-wait histogram with a known distribution:
  // pin the worker, stack four jobs, age them 16ms, drain. The
  // histogram then holds one ~0 wait (the pin's own pickup) and four
  // 16ms waits.
  auto pinned = service.submit(warmup);
  warmup.wait_until_entered();
  using std::chrono::milliseconds;
  std::vector<std::future<core::SublinearResult>> aged;
  for (int i = 0; i < 4; ++i) aged.push_back(service.submit(normal));
  manual->advance(milliseconds(16));
  warmup.gate()->open_gate();
  EXPECT_EQ(pinned.get().cost, dp::solve_sequential(warmup.inner()).cost);
  for (auto& f : aged) {
    EXPECT_EQ(f.get().cost, dp::solve_sequential(normal).cost);
  }

  // Phase 2 — re-pin and refill, then overflow: the rejection must
  // carry the exact depth and the documented estimate p50(waits)/depth,
  // computed from the very histogram `stats()` exposes.
  auto repinned = service.submit(repin);
  repin.wait_until_entered();
  std::vector<std::future<core::SublinearResult>> fillers;
  for (std::size_t i = 0; i < kQueueCap; ++i) {
    fillers.push_back(service.submit(normal));
  }
  bool rejected = false;
  try {
    (void)service.submit(normal);
  } catch (const AdmissionError& e) {
    rejected = true;
    EXPECT_EQ(e.kind(), AdmissionError::Kind::kQueueFull);
    EXPECT_TRUE(e.has_hint());
    EXPECT_EQ(e.queue_depth(), kQueueCap);
    // No pickups can race this snapshot (the worker is pinned), so the
    // histogram the service consulted is the one stats() renders.
    const auto waits = service.stats().queue_wait;
    ASSERT_GT(waits.count, 0u);
    ASSERT_GT(waits.p50(), 0.0);
    const auto expected = std::chrono::nanoseconds(
        static_cast<std::int64_t>(waits.p50() /
                                  static_cast<double>(kQueueCap)));
    EXPECT_EQ(e.retry_after(), expected);
    EXPECT_GT(e.retry_after().count(), 0);
  }
  EXPECT_TRUE(rejected);

  repin.gate()->open_gate();
  EXPECT_EQ(repinned.get().cost, dp::solve_sequential(repin.inner()).cost);
  for (auto& f : fillers) {
    EXPECT_EQ(f.get().cost, dp::solve_sequential(normal).cost);
  }
  expect_class_accounted(service.stats());
}

TEST(ServeQos, RetryAfterFallsBackToConservativeDefaultWithoutSignal) {
  constexpr std::size_t kQueueCap = 2;
  support::Rng rng(9006);
  GatedProblem gated(dp::MatrixChainProblem::random(13, rng));
  const auto normal = dp::MatrixChainProblem::random(13, rng);

  // The clock never advances, so every recorded queue wait is exactly
  // zero — the histogram has entries but no nonzero signal, and the
  // hint must report the documented conservative default.
  const auto manual = std::make_shared<obs::ManualClock>();
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = kQueueCap;
  options.overload_policy = OverloadPolicy::kReject;
  options.clock = manual;
  SolverService service(options);
  const GateOpener opener{gated.gate()};

  auto pinned = service.submit(gated);
  gated.wait_until_entered();
  std::vector<std::future<core::SublinearResult>> fillers;
  for (std::size_t i = 0; i < kQueueCap; ++i) {
    fillers.push_back(service.submit(normal));
  }
  bool rejected = false;
  try {
    (void)service.submit(normal);
  } catch (const AdmissionError& e) {
    rejected = true;
    EXPECT_TRUE(e.has_hint());
    EXPECT_EQ(e.queue_depth(), kQueueCap);
    EXPECT_EQ(e.retry_after(), kRetryAfterConservativeDefault);
  }
  EXPECT_TRUE(rejected);

  gated.gate()->open_gate();
  EXPECT_EQ(pinned.get().cost, dp::solve_sequential(gated.inner()).cost);
  for (auto& f : fillers) {
    EXPECT_EQ(f.get().cost, dp::solve_sequential(normal).cost);
  }
  expect_class_accounted(service.stats());
}

}  // namespace
}  // namespace subdp::serve
