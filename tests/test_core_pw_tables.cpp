// Tests for the two pw-table layouts (core/pw_dense.hpp,
// core/pw_banded.hpp): addressing, band semantics, the Sec. 5 cell-count
// reduction, dense/banded agreement inside the band, and the
// storage-policy surface (pw_layout.hpp) — overflow-checked sizing,
// unchecked in-band slots, and the incremental window cursors the engine's
// fast square kernel reads through.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "core/pw_banded.hpp"
#include "core/pw_dense.hpp"
#include "core/pw_layout.hpp"
#include "support/stats.hpp"

namespace subdp::core {
namespace {

static_assert(PwStoragePolicy<DensePwTable>);
static_assert(PwStoragePolicy<BandedPwTable>);

TEST(DensePwTable, IdentityGapIsZero) {
  DensePwTable t(6);
  EXPECT_EQ(t.get(1, 4, 1, 4), 0);
  EXPECT_EQ(t.get(0, 6, 0, 6), 0);
  EXPECT_EQ(t.get(2, 3, 2, 3), 0);  // leaf identity
}

TEST(DensePwTable, UnwrittenEntriesAreInfinite) {
  DensePwTable t(6);
  EXPECT_EQ(t.get(0, 6, 2, 4), kInfinity);
  EXPECT_EQ(t.get(1, 5, 1, 2), kInfinity);
}

TEST(DensePwTable, SetThenGetRoundTrips) {
  DensePwTable t(8);
  t.set(0, 8, 3, 5, 42);
  t.set(1, 7, 1, 6, 17);
  EXPECT_EQ(t.get(0, 8, 3, 5), 42);
  EXPECT_EQ(t.get(1, 7, 1, 6), 17);
  EXPECT_EQ(t.get(0, 8, 3, 6), kInfinity);  // neighbours untouched
}

TEST(DensePwTable, EntryCountMatchesClosedForm) {
  // Per (i,j) of length L: C(L+1,2) - 1 gaps.
  for (const std::size_t n : {2u, 3u, 5u, 9u}) {
    DensePwTable t(n);
    std::size_t expected = 0;
    for (std::size_t len = 2; len <= n; ++len) {
      expected += (n - len + 1) * (len * (len + 1) / 2 - 1);
    }
    EXPECT_EQ(t.entry_count(), expected) << "n=" << n;
    EXPECT_EQ(t.entries().size(), expected);
  }
}

TEST(DensePwTable, EntriesAreUniqueAndValid) {
  DensePwTable t(7);
  std::set<std::uint64_t> seen;
  for (const Quad& e : t.entries()) {
    EXPECT_LE(e.i, e.p);
    EXPECT_LT(e.p, e.q);
    EXPECT_LE(e.q, e.j);
    EXPECT_FALSE(e.p == e.i && e.q == e.j);
    EXPECT_TRUE(seen.insert(t.address(e.i, e.j, e.p, e.q)).second);
  }
}

TEST(DensePwTable, RejectsOversizedN) {
  // The cap throws before any allocation, so this is cheap even though
  // kMaxDenseN is now 192.
  EXPECT_THROW(DensePwTable t(DensePwTable::kMaxDenseN + 1),
               std::invalid_argument);
}

TEST(DensePwTable, CapIsWellPastTheOldCubeLimit) {
  // The seed's (n+1)^4 cube capped dense instances at 64; the
  // entries-indexed layout lifts that.
  EXPECT_GE(DensePwTable::kMaxDenseN, 128u);
}

TEST(DensePwTable, AddressingIsInjectiveAndInBounds) {
  const std::size_t n = 12;
  DensePwTable t(n);
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      for (std::size_t p = i; p < j; ++p) {
        for (std::size_t q = p + 1; q <= j; ++q) {
          if (p == i && q == j) continue;
          const std::uint64_t addr = t.address(i, j, p, q);
          EXPECT_LT(addr, t.cell_count());
          EXPECT_TRUE(seen.insert(addr).second)
              << "(" << i << "," << j << "," << p << "," << q << ")";
          EXPECT_EQ(t.entry_slot(i, j, p, q), addr);
          EXPECT_EQ(t.in_band_slot(i, j, p, q), addr);
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), t.entry_count());
}

TEST(DensePwTable, CellCountIsEntriesPlusOneIdentitySlotPerRoot) {
  // The entries-indexed layout wastes exactly the identity slot per root
  // (kept so gap addressing stays branch-free) — a ~24x cut from the old
  // (n+1)^4 cube.
  for (const std::size_t n : {4u, 9u, 17u}) {
    DensePwTable t(n);
    std::size_t roots = 0;
    for (std::size_t len = 2; len <= n; ++len) roots += n - len + 1;
    EXPECT_EQ(t.cell_count(), t.entry_count() + roots) << "n=" << n;
    const std::size_t cube = (n + 1) * (n + 1) * (n + 1) * (n + 1);
    EXPECT_LT(t.cell_count() * 10, cube) << "n=" << n;
  }
}

TEST(PwLayout, CheckedSizeArithmeticThrowsInsteadOfWrapping) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  EXPECT_EQ(checked_size_mul(3, 7), 21u);
  EXPECT_EQ(checked_size_mul(kMax, 0), 0u);
  EXPECT_EQ(checked_size_add(kMax - 1, 1), kMax);
  EXPECT_THROW((void)checked_size_mul(kMax / 2, 3), std::invalid_argument);
  EXPECT_THROW((void)checked_size_add(kMax, 1), std::invalid_argument);
}

// ---- Window cursors / unchecked in-band reads ----

/// Replicates the engine's HLV window and walks both cursors plus the
/// second-operand `in_band_slot` reads, comparing every value against the
/// general `get`. Exercised for both layouts below.
template <class Table>
void expect_cursors_match_get(Table& t) {
  const std::size_t n = t.n();
  const std::size_t maxs = t.max_slack();
  // Make every stored cell distinct so an addressing slip cannot alias to
  // the right value.
  Cost v = 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      for (std::size_t p = i; p < j; ++p) {
        for (std::size_t q = p + 1; q <= j; ++q) {
          if ((p == i && q == j) || !t.stores(i, j, p, q)) continue;
          t.set(i, j, p, q, v++);
        }
      }
    }
  }
  const Cost* raw = std::as_const(t).raw_cells();
  for (const Quad& e : t.entries()) {
    const std::size_t i = e.i, j = e.j, p = e.p, q = e.q;
    const std::size_t r_lo = p > maxs && p - maxs > i ? p - maxs : i;
    const std::size_t s_hi = q + maxs < j ? q + maxs : j;
    std::size_t r = r_lo;
    if (r == i && q == j) ++r;  // identity operand: not an in-band cell
    if (r < p) {
      PwWindowCursor cur = t.r_window_cursor(i, j, r, q);
      for (; r < p; ++r) {
        ASSERT_EQ(cur.value(), t.get(i, j, r, q))
            << "r-cursor (" << i << "," << j << "," << r << "," << q << ")";
        cur.advance();
        ASSERT_EQ(raw[t.in_band_slot(r, q, p, q)], t.get(r, q, p, q))
            << "r-slot (" << r << "," << q << "," << p << "," << q << ")";
      }
    }
    std::size_t s_end = s_hi;
    if (p == i && s_end == j) --s_end;  // identity operand
    if (q < s_end) {
      PwWindowCursor cur = t.s_window_cursor(i, j, p, q + 1);
      for (std::size_t s = q + 1; s <= s_end; ++s) {
        ASSERT_EQ(cur.value(), t.get(i, j, p, s))
            << "s-cursor (" << i << "," << j << "," << p << "," << s << ")";
        cur.advance();
        ASSERT_EQ(raw[t.in_band_slot(p, s, p, q)], t.get(p, s, p, q))
            << "s-slot (" << p << "," << s << "," << p << "," << q << ")";
      }
    }
  }
}

TEST(PwLayoutCursors, DenseWindowsMatchGeneralGet) {
  DensePwTable t(11);
  expect_cursors_match_get(t);
}

TEST(PwLayoutCursors, BandedWindowsMatchGeneralGet) {
  BandedPwTable t(13, 4);
  expect_cursors_match_get(t);
}

TEST(PwLayoutCursors, BandedWideBandWindowsMatchGeneralGet) {
  BandedPwTable t(10, 10);
  expect_cursors_match_get(t);
}

// ---- Gap runs (the fast pebble scan's reader) ----

/// Fills every stored cell with a distinct value, then — root by root —
/// walks `for_each_gap_run`, decoding each run's `w` slots back to gap
/// coordinates (`w_slot = p*(n+1)+q`, advanced by `w_step`) and its
/// stored values through the arithmetic-progression cell cursor, and
/// compares the collected `(p, q, value)` triples against the reference
/// `for_each_gap` + `get` enumeration. Equality of the sorted triple sets
/// proves the runs cover exactly the stored gaps, address the right cells
/// and pair each with the right `w` slot.
template <class Table>
void expect_gap_runs_match_for_each_gap(Table& t) {
  const std::size_t n = t.n();
  Cost v = 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      for (std::size_t p = i; p < j; ++p) {
        for (std::size_t q = p + 1; q <= j; ++q) {
          if ((p == i && q == j) || !t.stores(i, j, p, q)) continue;
          t.set(i, j, p, q, v++);
        }
      }
    }
  }
  using GapTriple = std::tuple<std::size_t, std::size_t, Cost>;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      std::vector<GapTriple> ref;
      t.for_each_gap(i, j, [&](std::size_t p, std::size_t q) {
        ref.emplace_back(p, q, t.get(i, j, p, q));
      });
      std::vector<GapTriple> runs;
      t.for_each_gap_run(i, j, [&](const PwGapRun& run) {
        const Cost* cell = run.cell;
        std::ptrdiff_t step = run.cell_step;
        std::ptrdiff_t w = static_cast<std::ptrdiff_t>(run.w_slot);
        for (std::size_t k = 0; k < run.count; ++k) {
          const std::size_t slot = static_cast<std::size_t>(w);
          runs.emplace_back(slot / (n + 1), slot % (n + 1), *cell);
          cell += step;
          step += run.cell_dstep;
          w += run.w_step;
        }
      });
      std::sort(ref.begin(), ref.end());
      std::sort(runs.begin(), runs.end());
      ASSERT_EQ(runs, ref) << "root (" << i << "," << j << ")";
    }
  }
}

TEST(PwGapRuns, DenseRunsMatchForEachGap) {
  DensePwTable t(11);
  expect_gap_runs_match_for_each_gap(t);
}

TEST(PwGapRuns, BandedRunsMatchForEachGap) {
  BandedPwTable t(13, 4);
  expect_gap_runs_match_for_each_gap(t);
}

TEST(PwGapRuns, BandedWideBandRunsMatchForEachGap) {
  // band >= n - 1: every gap in band, no child-gap side runs anywhere.
  BandedPwTable t(10, 10);
  expect_gap_runs_match_for_each_gap(t);
}

TEST(PwGapRuns, BandedNarrowestBandRunsMatchForEachGap) {
  // band = 1: the slack runs degenerate to one per root and nearly every
  // child gap lives in the tetrahedral side stores.
  BandedPwTable t(9, 1);
  expect_gap_runs_match_for_each_gap(t);
}

TEST(PwGapRuns, EdgeSizesMatchForEachGap) {
  // Smallest meaningful tables: a single root (n = 2) and the first size
  // with length-3 roots.
  DensePwTable d2(2), d3(3);
  expect_gap_runs_match_for_each_gap(d2);
  expect_gap_runs_match_for_each_gap(d3);
  BandedPwTable b2(2, 1), b3(3, 1), b3w(3, 3);
  expect_gap_runs_match_for_each_gap(b2);
  expect_gap_runs_match_for_each_gap(b3);
  expect_gap_runs_match_for_each_gap(b3w);
}

TEST(PwGapRuns, PaperBandMatchesForEachGap) {
  // The band the solver actually uses (B = 2 ceil(sqrt n)).
  const std::size_t n = 17;
  BandedPwTable t(n, support::two_ceil_sqrt(n));
  expect_gap_runs_match_for_each_gap(t);
}

TEST(DensePwTable, ResetRestoresInfinity) {
  DensePwTable t(5);
  t.set(0, 5, 1, 3, 9);
  t.reset();
  EXPECT_EQ(t.get(0, 5, 1, 3), kInfinity);
}

TEST(DensePwTable, CopyFromDuplicatesContents) {
  DensePwTable a(5), b(5);
  a.set(0, 5, 2, 4, 7);
  b.copy_from(a);
  EXPECT_EQ(b.get(0, 5, 2, 4), 7);
  a.set(0, 5, 2, 4, 9);
  EXPECT_EQ(b.get(0, 5, 2, 4), 7);  // deep copy
}

// ---- Banded ----

TEST(BandedPwTable, InBandBehavesLikeDense) {
  BandedPwTable t(10, 4);
  EXPECT_EQ(t.get(0, 10, 0, 10), 0);           // identity
  EXPECT_EQ(t.get(2, 8, 3, 7), kInfinity);     // slack 2, unwritten
  t.set(2, 8, 3, 7, 55);                       // slack 2 <= 4
  EXPECT_EQ(t.get(2, 8, 3, 7), 55);
}

TEST(BandedPwTable, OutOfBandInteriorReadsAreInfinite) {
  BandedPwTable t(10, 2);
  // slack (10-0)-(4-3) = 9 > 2 and the gap touches neither endpoint.
  EXPECT_FALSE(t.stores(0, 10, 3, 4));
  EXPECT_EQ(t.get(0, 10, 3, 4), kInfinity);
}

TEST(BandedPwTable, OutOfBandChildGapsAreStored) {
  // The terminal pebble of a balanced node needs activate-form entries of
  // any slack: gaps sharing an endpoint with the root stay materialised.
  BandedPwTable t(10, 2);
  EXPECT_TRUE(t.stores(0, 10, 0, 5));  // left child gap, slack 5 > B
  EXPECT_TRUE(t.stores(0, 10, 5, 10));  // right child gap, slack 5 > B
  t.set(0, 10, 0, 5, 21);
  t.set(0, 10, 5, 10, 22);  // same split, different family: no collision
  EXPECT_EQ(t.get(0, 10, 0, 5), 21);
  EXPECT_EQ(t.get(0, 10, 5, 10), 22);
}

TEST(BandedPwTable, StoresBandPlusChildGaps) {
  const std::size_t n = 9, band = 3;
  BandedPwTable t(n, band);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      for (std::size_t p = i; p < j; ++p) {
        for (std::size_t q = p + 1; q <= j; ++q) {
          if (p == i && q == j) continue;
          const bool in_band = (j - i) - (q - p) <= band;
          const bool child_gap = p == i || q == j;
          EXPECT_EQ(t.stores(i, j, p, q), in_band || child_gap);
          if (in_band || child_gap) ++expected;
        }
      }
    }
  }
  EXPECT_EQ(t.entry_count(), expected);
}

TEST(BandedPwTable, AddressingIsInjective) {
  const std::size_t n = 12, band = 5;
  BandedPwTable t(n, band);
  std::set<std::uint64_t> seen;
  // Every stored entry (in-band plus child gaps) has a distinct address.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      for (std::size_t p = i; p < j; ++p) {
        for (std::size_t q = p + 1; q <= j; ++q) {
          if (p == i && q == j) continue;
          if (!t.stores(i, j, p, q)) continue;
          EXPECT_TRUE(seen.insert(t.address(i, j, p, q)).second)
              << "(" << i << "," << j << "," << p << "," << q << ")";
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), t.entry_count());
}

TEST(BandedPwTable, RoundTripsEveryStoredEntry) {
  const std::size_t n = 11, band = 4;
  BandedPwTable t(n, band);
  Cost v = 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      for (std::size_t p = i; p < j; ++p) {
        for (std::size_t q = p + 1; q <= j; ++q) {
          if ((p == i && q == j) || !t.stores(i, j, p, q)) continue;
          t.set(i, j, p, q, v++);
        }
      }
    }
  }
  v = 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      for (std::size_t p = i; p < j; ++p) {
        for (std::size_t q = p + 1; q <= j; ++q) {
          if ((p == i && q == j) || !t.stores(i, j, p, q)) continue;
          ASSERT_EQ(t.get(i, j, p, q), v++);
        }
      }
    }
  }
}

TEST(BandedPwTable, ForEachGapEnumeratesExactlyTheStoredGaps) {
  const std::size_t n = 10, band = 3;
  BandedPwTable t(n, band);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j <= n; ++j) {
      std::set<std::pair<std::size_t, std::size_t>> enumerated;
      t.for_each_gap(i, j, [&](std::size_t p, std::size_t q) {
        EXPECT_TRUE(enumerated.emplace(p, q).second)
            << "duplicate gap (" << p << "," << q << ")";
        EXPECT_TRUE(t.stores(i, j, p, q));
      });
      std::size_t stored = 0;
      for (std::size_t p = i; p < j; ++p) {
        for (std::size_t q = p + 1; q <= j; ++q) {
          if ((p == i && q == j) || !t.stores(i, j, p, q)) continue;
          ++stored;
        }
      }
      EXPECT_EQ(enumerated.size(), stored) << "(" << i << "," << j << ")";
    }
  }
}

TEST(BandedPwTable, CellCountIsQuadraticallySmallerThanDense) {
  // Sec. 5: O(n^2 B^2) vs O(n^4) meaningful entries. Compare against the
  // closed-form dense count so we do not have to allocate the dense cube.
  auto dense_entries = [](std::size_t n) {
    std::size_t total = 0;
    for (std::size_t len = 2; len <= n; ++len) {
      total += (n - len + 1) * (len * (len + 1) / 2 - 1);
    }
    return total;
  };
  const std::size_t n = 128;
  BandedPwTable banded(n, support::two_ceil_sqrt(n));
  EXPECT_LT(banded.entry_count() * 3, dense_entries(n));
  // The ratio widens with n (~ n/B^2-fold):
  const std::size_t m = 48;
  BandedPwTable banded_small(m, support::two_ceil_sqrt(m));
  const double ratio_small =
      static_cast<double>(dense_entries(m)) /
      static_cast<double>(banded_small.entry_count());
  const double ratio_large = static_cast<double>(dense_entries(n)) /
                             static_cast<double>(banded.entry_count());
  EXPECT_GT(ratio_large, ratio_small);
}

TEST(BandedPwTable, WideBandCoversEverything) {
  const std::size_t n = 8;
  BandedPwTable banded(n, n);
  DensePwTable dense(n);
  EXPECT_EQ(banded.entry_count(), dense.entry_count());
}

TEST(BandedPwTable, RejectsZeroBand) {
  EXPECT_THROW(BandedPwTable(5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace subdp::core
