// Tests of the SolverService admission-control layer: the bounded
// dispatch queue under both overload policies (kReject turning away the
// overflow submit with a typed AdmissionError, kBlock back-pressuring
// the submitter until a worker drains), per-job deadlines resolving
// without ever touching the problem, exact ServiceStats accounting
// (rejected / expired / cold-deferred and the admission invariant), the
// background plan builder keeping warm traffic flowing past a cold
// shape, single-build coalescing of concurrent cold submits, and
// solve_all's documented bypass of shedding and expiry. Deterministic:
// worker and builder progress is gated through blocking problems and
// the cold_build_hook seam, never timed. Smoke-labelled; runs under the
// TSan preset.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/sequential.hpp"
#include "obs/clock.hpp"
#include "serve/solver_service.hpp"
#include "support/rng.hpp"
#include "tests/serve_tsan_suppression.hpp"

namespace subdp::serve {
namespace {

using core::AdmissionError;

/// A reusable open-once gate for sequencing test threads.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;

  void open_gate() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void wait_open() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return open; });
  }
};

/// Opens a gate at scope exit so a failed ASSERT cannot leave the
/// service destructor waiting on a blocked worker or builder.
struct GateOpener {
  std::shared_ptr<Gate> gate;
  ~GateOpener() { gate->open_gate(); }
};

/// A matrix-chain instance whose solve blocks at the first `init` call
/// until released — pins down one worker deterministically. Announces
/// the moment a solver thread enters it, so tests can wait for "the
/// worker is now busy" instead of sleeping.
class GatedProblem final : public dp::Problem {
 public:
  explicit GatedProblem(dp::MatrixChainProblem inner)
      : inner_(std::move(inner)), gate_(std::make_shared<Gate>()) {}

  [[nodiscard]] std::size_t size() const override { return inner_.size(); }
  [[nodiscard]] Cost init(std::size_t i) const override {
    {
      std::unique_lock<std::mutex> lock(entered_mutex_);
      if (!entered_) {
        entered_ = true;
        entered_cv_.notify_all();
      }
    }
    gate_->wait_open();
    return inner_.init(i);
  }
  [[nodiscard]] Cost f(std::size_t i, std::size_t k,
                       std::size_t j) const override {
    return inner_.f(i, k, j);
  }
  [[nodiscard]] std::string name() const override { return "gated"; }

  [[nodiscard]] const dp::MatrixChainProblem& inner() const {
    return inner_;
  }
  [[nodiscard]] std::shared_ptr<Gate> gate() const { return gate_; }
  void wait_until_entered() const {
    std::unique_lock<std::mutex> lock(entered_mutex_);
    entered_cv_.wait(lock, [&] { return entered_; });
  }

 private:
  dp::MatrixChainProblem inner_;
  std::shared_ptr<Gate> gate_;
  mutable std::mutex entered_mutex_;
  mutable std::condition_variable entered_cv_;
  mutable bool entered_ = false;
};

/// Counts every `init`/`f` evaluation: "resolved without solving" means
/// this stays at zero.
class ProbeProblem final : public dp::Problem {
 public:
  explicit ProbeProblem(dp::MatrixChainProblem inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::size_t size() const override { return inner_.size(); }
  [[nodiscard]] Cost init(std::size_t i) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return inner_.init(i);
  }
  [[nodiscard]] Cost f(std::size_t i, std::size_t k,
                       std::size_t j) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return inner_.f(i, k, j);
  }
  [[nodiscard]] std::string name() const override { return "probe"; }
  [[nodiscard]] std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  dp::MatrixChainProblem inner_;
  mutable std::atomic<std::uint64_t> calls_{0};
};

void expect_admission_error(std::future<core::SublinearResult>& future,
                            AdmissionError::Kind kind) {
  try {
    (void)future.get();
    FAIL() << "expected AdmissionError(" << core::to_string(kind) << ")";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.kind(), kind) << e.what();
  }
}

/// Asserts the admission invariant on a drained service. These services
/// run without a `snapshot_dir`, so the snapshot tier must report exactly
/// zero activity — persistence never leaks into admission accounting.
void expect_accounted(const ServiceStats& stats) {
  EXPECT_EQ(stats.jobs_submitted,
            stats.jobs_completed + stats.jobs_rejected + stats.jobs_expired);
  EXPECT_EQ(stats.snapshot_hits, 0u);
  EXPECT_EQ(stats.snapshot_misses, 0u);
  EXPECT_EQ(stats.snapshot_write_failures, 0u);
  EXPECT_EQ(stats.shapes_prewarmed, 0u);
}

TEST(Admission, RejectPolicyFailsTheOverflowSubmitWithAdmissionError) {
  constexpr std::size_t kQueueCap = 3;
  support::Rng rng(801);
  const auto warm = dp::MatrixChainProblem::random(12, rng);
  GatedProblem gated(dp::MatrixChainProblem::random(12, rng));
  std::vector<dp::MatrixChainProblem> fill;
  for (std::size_t k = 0; k < kQueueCap; ++k) {
    fill.push_back(dp::MatrixChainProblem::random(12, rng));
  }

  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = kQueueCap;
  options.overload_policy = OverloadPolicy::kReject;
  SolverService service(options);
  const GateOpener opener{gated.gate()};

  // Warm the shape first so the gated job takes the direct path onto
  // the single worker (a cold job would detour through the builder).
  EXPECT_EQ(service.submit(warm).get().cost,
            dp::solve_sequential(warm).cost);

  auto gated_future = service.submit(gated);
  gated.wait_until_entered();  // the worker is now pinned mid-solve

  // The queue holds exactly kQueueCap jobs...
  std::vector<std::future<core::SublinearResult>> queued;
  for (const auto& p : fill) queued.push_back(service.submit(p));
  // ...so the (N+1)th submit is turned away, synchronously and typed.
  EXPECT_THROW((void)service.submit(fill.front()), AdmissionError);
  try {
    (void)service.submit(fill.front());
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.kind(), AdmissionError::Kind::kQueueFull);
    EXPECT_NE(std::string(e.what()).find("queue full"), std::string::npos);
  }

  gated.gate()->open_gate();
  EXPECT_EQ(gated_future.get().cost,
            dp::solve_sequential(gated.inner()).cost);
  for (std::size_t k = 0; k < queued.size(); ++k) {
    core::SublinearSolver independent;
    const auto expected = independent.solve(fill[k]);
    const auto got = queued[k].get();
    EXPECT_EQ(got.cost, expected.cost) << "instance " << k;
    EXPECT_EQ(got.iterations, expected.iterations) << "instance " << k;
    EXPECT_TRUE(got.w == expected.w) << "instance " << k;
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_rejected, 2u);  // both overflow attempts
  EXPECT_EQ(stats.jobs_expired, 0u);
  EXPECT_EQ(stats.jobs_completed, 2u + kQueueCap);
  EXPECT_EQ(stats.jobs_submitted, 4u + kQueueCap);
  expect_accounted(stats);
}

TEST(Admission, BlockPolicyUnblocksWhenAWorkerDrains) {
  support::Rng rng(802);
  const auto warm = dp::MatrixChainProblem::random(10, rng);
  GatedProblem gated(dp::MatrixChainProblem::random(10, rng));
  const auto filler = dp::MatrixChainProblem::random(10, rng);
  const auto blocked = dp::MatrixChainProblem::random(10, rng);

  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.overload_policy = OverloadPolicy::kBlock;
  SolverService service(options);
  const GateOpener opener{gated.gate()};

  EXPECT_EQ(service.submit(warm).get().cost,
            dp::solve_sequential(warm).cost);
  auto gated_future = service.submit(gated);
  gated.wait_until_entered();
  auto filler_future = service.submit(filler);  // queue now full

  // A further submit must park its caller instead of throwing.
  auto parked = std::async(std::launch::async, [&] {
    return service.submit(blocked);  // blocks until the worker drains
  });
  EXPECT_EQ(parked.wait_for(std::chrono::milliseconds(100)),
            std::future_status::timeout)
      << "kBlock submit went through while the queue was full";

  gated.gate()->open_gate();  // worker drains: gated, filler, blocked
  auto blocked_future = parked.get();  // submit returned => unblocked
  EXPECT_EQ(gated_future.get().cost,
            dp::solve_sequential(gated.inner()).cost);
  EXPECT_EQ(filler_future.get().cost, dp::solve_sequential(filler).cost);
  EXPECT_EQ(blocked_future.get().cost,
            dp::solve_sequential(blocked).cost);

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_rejected, 0u);
  EXPECT_EQ(stats.jobs_expired, 0u);
  EXPECT_EQ(stats.jobs_submitted, 4u);
  EXPECT_EQ(stats.jobs_completed, 4u);
  expect_accounted(stats);
}

TEST(Admission, ExpiredDeadlineResolvesWithoutSolving) {
  support::Rng rng(803);
  const auto warm = dp::MatrixChainProblem::random(11, rng);
  ProbeProblem probe(dp::MatrixChainProblem::random(11, rng));

  // Deadlines are judged on the injected manual clock, not the real
  // steady clock: "expired" and "in time" below are deterministic
  // statements about clock arithmetic, not races against the worker.
  const auto manual = std::make_shared<obs::ManualClock>();
  ServiceOptions options;
  options.workers = 1;
  options.clock = manual;
  SolverService service(options);

  // Warm the shape so the probe job cannot detour through the builder.
  EXPECT_EQ(service.submit(warm).get().cost,
            dp::solve_sequential(warm).cost);

  auto expired = service.submit(
      probe, manual->now() - std::chrono::seconds(1));
  expect_admission_error(expired, AdmissionError::Kind::kDeadlineExceeded);
  EXPECT_EQ(probe.calls(), 0u)
      << "an expired job must never touch the problem";

  // A deadline one tick ahead of the (frozen) manual clock solves
  // normally — and bit-identically.
  auto in_time = service.submit(
      probe, manual->now() + std::chrono::nanoseconds(1));
  core::SublinearSolver independent;
  const auto expected = independent.solve(probe);
  const auto got = in_time.get();
  EXPECT_EQ(got.cost, expected.cost);
  EXPECT_TRUE(got.w == expected.w);
  EXPECT_GT(probe.calls(), 0u);

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_expired, 1u);
  EXPECT_EQ(stats.jobs_rejected, 0u);
  EXPECT_EQ(stats.jobs_submitted, 3u);
  EXPECT_EQ(stats.jobs_completed, 2u);
  expect_accounted(stats);
}

TEST(Admission, StatsCountersMatchExactExpectedValues) {
  constexpr std::size_t kQueueCap = 2;
  support::Rng rng(804);
  const auto cold = dp::MatrixChainProblem::random(13, rng);
  GatedProblem gated(dp::MatrixChainProblem::random(13, rng));
  ProbeProblem doomed(dp::MatrixChainProblem::random(13, rng));
  const auto normal = dp::MatrixChainProblem::random(13, rng);

  const auto manual = std::make_shared<obs::ManualClock>();
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = kQueueCap;
  options.overload_policy = OverloadPolicy::kReject;
  options.clock = manual;
  SolverService service(options);
  const GateOpener opener{gated.gate()};

  // 1: a cold submit — deferred to the builder exactly once.
  EXPECT_EQ(service.submit(cold).get().cost,
            dp::solve_sequential(cold).cost);
  // 2: pin the worker on a warm-shape job.
  auto gated_future = service.submit(gated);
  gated.wait_until_entered();
  // 3: queue a job already expired on the manual clock; 4: queue a
  // normal job (queue full).
  auto expired = service.submit(
      doomed, manual->now() - std::chrono::seconds(1));
  auto ok = service.submit(normal);
  // 5: the overflow submit *sweeps the expired job out* and takes its
  // slot — a queue full of expired work admits instead of shedding.
  auto admitted = service.submit(normal);
  expect_admission_error(expired, AdmissionError::Kind::kDeadlineExceeded);
  // 6: the queue is now full of live jobs: this overflow is rejected.
  EXPECT_THROW((void)service.submit(normal), AdmissionError);

  gated.gate()->open_gate();
  EXPECT_EQ(gated_future.get().cost,
            dp::solve_sequential(gated.inner()).cost);
  EXPECT_EQ(doomed.calls(), 0u);
  EXPECT_EQ(ok.get().cost, dp::solve_sequential(normal).cost);
  EXPECT_EQ(admitted.get().cost, dp::solve_sequential(normal).cost);

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_submitted, 6u);
  EXPECT_EQ(stats.jobs_completed, 4u);  // cold, gated, normal, admitted
  EXPECT_EQ(stats.jobs_rejected, 1u);
  EXPECT_EQ(stats.jobs_expired, 1u);
  EXPECT_EQ(stats.jobs_cold_deferred, 1u);  // the first submit only
  EXPECT_EQ(stats.plan_cache.misses, 1u);   // one shape, one build
  expect_accounted(stats);
}

TEST(Admission, ColdBuildDoesNotBlockWarmThroughput) {
  support::Rng rng(805);
  const std::size_t warm_n = 10;
  std::vector<dp::MatrixChainProblem> warm;
  for (int k = 0; k < 4; ++k) {
    warm.push_back(dp::MatrixChainProblem::random(warm_n, rng));
  }
  const auto cold = dp::MatrixChainProblem::random(16, rng);

  const auto build_gate = std::make_shared<Gate>();
  ServiceOptions options;
  options.workers = 1;
  options.cold_build_hook = [build_gate] { build_gate->wait_open(); };
  SolverService service(options);
  const GateOpener opener{build_gate};

  // Warm the small shape through solve_all: the caller thread resolves
  // the plan itself, so the builder (and its gate) is not involved.
  std::vector<const dp::Problem*> warmup = {&warm[0]};
  EXPECT_EQ(service.solve_all(warmup).results[0].cost,
            dp::solve_sequential(warm[0]).cost);

  // The cold shape parks at the builder, which is now gated shut...
  auto cold_future = service.submit(cold);
  // ...while the single worker keeps draining warm jobs behind it.
  std::vector<std::future<core::SublinearResult>> warm_futures;
  for (const auto& p : warm) warm_futures.push_back(service.submit(p));
  for (std::size_t k = 0; k < warm_futures.size(); ++k) {
    EXPECT_EQ(warm_futures[k].get().cost,
              dp::solve_sequential(warm[k]).cost)
        << "warm job " << k << " did not complete past the busy builder";
  }
  // Every warm job finished; the cold job is still parked at the gate.
  EXPECT_EQ(cold_future.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout)
      << "cold job completed although its build gate never opened";
  auto stats = service.stats();
  EXPECT_EQ(stats.jobs_cold_deferred, 1u);
  EXPECT_EQ(stats.jobs_completed, 1u + warm.size());

  build_gate->open_gate();
  EXPECT_EQ(cold_future.get().cost, dp::solve_sequential(cold).cost);
  stats = service.stats();
  EXPECT_EQ(stats.jobs_completed, 2u + warm.size());
  EXPECT_EQ(stats.plan_cache.misses, 2u);  // warm shape + cold shape
  expect_accounted(stats);
}

TEST(Admission, ConcurrentColdSubmitsShareOneBuild) {
  constexpr std::size_t kSameShape = 6;
  support::Rng rng(806);
  std::vector<dp::MatrixChainProblem> problems;
  for (std::size_t k = 0; k < kSameShape; ++k) {
    problems.push_back(dp::MatrixChainProblem::random(15, rng));
  }

  const auto build_gate = std::make_shared<Gate>();
  ServiceOptions options;
  options.workers = 2;
  options.cold_build_hook = [build_gate] { build_gate->wait_open(); };
  SolverService service(options);
  const GateOpener opener{build_gate};

  std::vector<std::future<core::SublinearResult>> futures;
  for (const auto& p : problems) futures.push_back(service.submit(p));

  // With the builder gated on the first cold job, the workers defer
  // every same-key job to it (none can solve: the plan never becomes
  // ready while the gate is shut).
  const auto poll_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.stats().jobs_cold_deferred < kSameShape &&
         std::chrono::steady_clock::now() < poll_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.stats().jobs_cold_deferred, kSameShape);
  EXPECT_EQ(service.stats().plan_cache.misses, 1u)
      << "concurrent cold submits for one key must count a single miss";

  build_gate->open_gate();
  for (std::size_t k = 0; k < futures.size(); ++k) {
    core::SublinearSolver independent;
    const auto expected = independent.solve(problems[k]);
    const auto got = futures[k].get();
    EXPECT_EQ(got.cost, expected.cost) << "instance " << k;
    EXPECT_TRUE(got.w == expected.w) << "instance " << k;
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.plan_cache.misses, 1u)
      << "the shared build must have happened exactly once";
  EXPECT_EQ(stats.jobs_cold_deferred, kSameShape);
  EXPECT_EQ(stats.jobs_completed, kSameShape);
  expect_accounted(stats);
}

TEST(Admission, DestructionWaitsForAMidBatchFill) {
  // Destroying the service while a solve_all caller is still filling a
  // bounded queue must not strand the call: the destructor waits for
  // the fill (which stops back-pressuring once intake closes), then
  // drains every queued job, so the batch resolves normally.
  support::Rng rng(808);
  GatedProblem gated(dp::MatrixChainProblem::random(11, rng));
  std::vector<dp::MatrixChainProblem> rest;
  for (int k = 0; k < 5; ++k) {
    rest.push_back(dp::MatrixChainProblem::random(11, rng));
  }
  std::vector<const dp::Problem*> pointers = {&gated};
  for (const auto& p : rest) pointers.push_back(&p);

  std::future<core::BatchResult> batch;
  {
    ServiceOptions options;
    options.workers = 1;
    options.queue_capacity = 1;  // the filler parks almost immediately
    SolverService service(options);
    const GateOpener opener{gated.gate()};
    batch = std::async(std::launch::async,
                       [&] { return service.solve_all(pointers); });
    // The worker is pinned on the gated first job, so the filler is
    // (at most one job later) parked on the full queue when the
    // service goes out of scope. The opener fires first, letting the
    // destructor's drain run the remaining solves.
    gated.wait_until_entered();
  }
  const auto out = batch.get();  // resolved by the destructor's drain
  ASSERT_EQ(out.results.size(), pointers.size());
  EXPECT_EQ(out.results[0].cost, dp::solve_sequential(gated.inner()).cost);
  for (std::size_t k = 0; k < rest.size(); ++k) {
    EXPECT_EQ(out.results[k + 1].cost,
              dp::solve_sequential(rest[k]).cost)
        << "instance " << k + 1;
  }
}

/// A counting gate for the builder pool: each `enter()` (called from
/// `cold_build_hook`) consumes one token, blocking until one is
/// granted, and announces itself — so tests release builds one at a
/// time and observe exactly how many are in flight.
struct TokenGate {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t tokens = 0;
  std::size_t entered = 0;

  void enter() {
    std::unique_lock<std::mutex> lock(mutex);
    ++entered;
    cv.notify_all();
    cv.wait(lock, [&] { return tokens > 0; });
    --tokens;
  }
  void release(std::size_t k) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      tokens += k;
    }
    cv.notify_all();
  }
  void wait_entered(std::size_t k) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return entered >= k; });
  }
};

TEST(Admission, BuilderPoolBuildsDistinctShapesConcurrently) {
  support::Rng rng(809);
  const auto cold_a = dp::MatrixChainProblem::random(14, rng);
  const auto cold_b = dp::MatrixChainProblem::random(16, rng);

  const auto gate = std::make_shared<TokenGate>();
  ServiceOptions options;
  options.workers = 1;
  options.builders = 2;
  options.cold_build_hook = [gate] { gate->enter(); };
  SolverService service(options);
  EXPECT_EQ(service.builders(), 2u);
  EXPECT_EQ(service.stats().builders, 2u);

  auto f_a = service.submit(cold_a);
  auto f_b = service.submit(cold_b);

  // Two distinct cold keys, two builders: both claims enter the build
  // hook with neither released — two builds genuinely in flight at
  // once (a single builder could never get here: its first build
  // blocks the second claim).
  gate->wait_entered(2);

  gate->release(2);
  core::SublinearSolver independent;
  const auto expected_a = independent.solve(cold_a);
  const auto expected_b = independent.solve(cold_b);
  const auto got_a = f_a.get();
  const auto got_b = f_b.get();
  EXPECT_EQ(got_a.cost, expected_a.cost);
  EXPECT_TRUE(got_a.w == expected_a.w);
  EXPECT_EQ(got_b.cost, expected_b.cost);
  EXPECT_TRUE(got_b.w == expected_b.w);

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_cold_deferred, 2u);
  EXPECT_EQ(stats.plan_cache.misses, 2u);
  EXPECT_EQ(stats.jobs_completed, 2u);
  expect_accounted(stats);
}

TEST(Admission, ColdCoalescingStillCountsOneMissWithTwoBuilders) {
  constexpr std::size_t kSameShape = 6;
  support::Rng rng(810);
  std::vector<dp::MatrixChainProblem> problems;
  for (std::size_t k = 0; k < kSameShape; ++k) {
    problems.push_back(dp::MatrixChainProblem::random(15, rng));
  }

  const auto gate = std::make_shared<TokenGate>();
  ServiceOptions options;
  options.workers = 2;
  options.builders = 2;
  options.cold_build_hook = [gate] { gate->enter(); };
  SolverService service(options);

  std::vector<std::future<core::SublinearResult>> futures;
  for (const auto& p : problems) futures.push_back(service.submit(p));

  // Every same-key job parks on the one claimed entry; the second
  // builder finds nothing claimable and sleeps.
  const auto poll_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.stats().jobs_cold_deferred < kSameShape &&
         std::chrono::steady_clock::now() < poll_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.stats().jobs_cold_deferred, kSameShape);
  EXPECT_EQ(service.stats().plan_cache.misses, 1u)
      << "concurrent cold submits for one key must count a single miss";
  {
    const std::lock_guard<std::mutex> lock(gate->mutex);
    EXPECT_EQ(gate->entered, 1u)
        << "one shape must be claimed by exactly one builder";
  }

  gate->release(kSameShape);  // ample: only one build should draw one
  for (std::size_t k = 0; k < futures.size(); ++k) {
    core::SublinearSolver independent;
    const auto expected = independent.solve(problems[k]);
    const auto got = futures[k].get();
    EXPECT_EQ(got.cost, expected.cost) << "instance " << k;
    EXPECT_TRUE(got.w == expected.w) << "instance " << k;
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.plan_cache.misses, 1u)
      << "the shared build must have happened exactly once";
  EXPECT_EQ(stats.jobs_cold_deferred, kSameShape);
  EXPECT_EQ(stats.jobs_completed, kSameShape);
  expect_accounted(stats);
}

TEST(Admission, BuilderPicksTheShapeWithMostWaitingRequestersFirst) {
  support::Rng rng(811);
  const auto first = dp::MatrixChainProblem::random(18, rng);
  // The lukewarm shape is submitted before the hot one AND has the
  // smaller plan key, so both submission order and key order would
  // pick it — only requester-count priority picks the hot shape.
  const auto lukewarm = dp::MatrixChainProblem::random(14, rng);
  std::vector<dp::MatrixChainProblem> hot;
  for (int k = 0; k < 3; ++k) {
    hot.push_back(dp::MatrixChainProblem::random(16, rng));
  }

  const auto gate = std::make_shared<TokenGate>();
  ServiceOptions options;
  options.workers = 1;
  options.builders = 1;  // a single builder makes the pick observable
  options.cold_build_hook = [gate] { gate->enter(); };
  SolverService service(options);

  // Hold the builder in the first shape's build while the contest
  // accumulates: one lukewarm requester vs three hot ones.
  auto f_first = service.submit(first);
  gate->wait_entered(1);
  auto f_lukewarm = service.submit(lukewarm);
  std::vector<std::future<core::SublinearResult>> f_hot;
  for (const auto& p : hot) f_hot.push_back(service.submit(p));
  const auto poll_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.stats().jobs_cold_deferred < 5 &&
         std::chrono::steady_clock::now() < poll_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.stats().jobs_cold_deferred, 5u);

  // Token 1 finishes the first build; the builder's next claim is the
  // hot shape (3 waiting requesters beat 1). Token 2 releases exactly
  // that build: every hot future resolves while the lukewarm job —
  // earlier submitted, smaller key — is still parked behind gate
  // entry 3.
  gate->release(1);
  gate->wait_entered(2);
  gate->release(1);
  gate->wait_entered(3);
  EXPECT_EQ(f_first.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  for (std::size_t k = 0; k < f_hot.size(); ++k) {
    ASSERT_EQ(f_hot[k].wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "hot instance " << k << " must be built before the lukewarm "
        << "shape (3 requesters beat 1)";
    EXPECT_EQ(f_hot[k].get().cost, dp::solve_sequential(hot[k]).cost);
  }
  EXPECT_EQ(f_lukewarm.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout)
      << "the lukewarm build ran ahead of the hotter shape";

  gate->release(1);
  EXPECT_EQ(f_lukewarm.get().cost, dp::solve_sequential(lukewarm).cost);
  EXPECT_EQ(f_first.get().cost, dp::solve_sequential(first).cost);

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_completed, 5u);
  EXPECT_EQ(stats.plan_cache.misses, 3u);
  expect_accounted(stats);
}

TEST(Admission, ShutdownDrainsBuildersThenWorkersResolvingEveryFuture) {
  support::Rng rng(812);
  const auto cold_a = dp::MatrixChainProblem::random(14, rng);
  const auto cold_b = dp::MatrixChainProblem::random(16, rng);

  std::future<core::SublinearResult> f_a;
  std::future<core::SublinearResult> f_b;
  {
    const auto gate = std::make_shared<TokenGate>();
    ServiceOptions options;
    options.workers = 1;
    options.builders = 2;
    options.cold_build_hook = [gate] { gate->enter(); };
    SolverService service(options);
    // Destroyed before `service` (reverse declaration order), so the
    // tokens land exactly when the destructor starts waiting on its
    // builders — the drain itself is what resolves the futures.
    struct Release {
      std::shared_ptr<TokenGate> gate;
      ~Release() { gate->release(1000); }
    } release{gate};

    f_a = service.submit(cold_a);
    f_b = service.submit(cold_b);
    gate->wait_entered(2);  // both builds claimed, neither released
  }

  // The destructor joined builders first (both builds finished and
  // requeued their jobs), then workers (which solved them): both
  // futures are resolved — with full results — after destruction.
  core::SublinearSolver independent;
  const auto expected_a = independent.solve(cold_a);
  const auto expected_b = independent.solve(cold_b);
  const auto got_a = f_a.get();
  const auto got_b = f_b.get();
  EXPECT_EQ(got_a.cost, expected_a.cost);
  EXPECT_TRUE(got_a.w == expected_a.w);
  EXPECT_EQ(got_b.cost, expected_b.cost);
  EXPECT_TRUE(got_b.w == expected_b.w);
}

TEST(Admission, SolveAllBypassesSheddingAndExpiry) {
  // The blocking surface back-pressures its caller instead: a batch far
  // larger than the queue under kReject completes in full, with zero
  // rejections or expiries and an untouched ledger contract.
  support::Rng rng(807);
  std::vector<std::unique_ptr<dp::Problem>> owned;
  for (int rep = 0; rep < 4; ++rep) {
    for (const std::size_t n : {9u, 13u}) {
      owned.push_back(std::make_unique<dp::MatrixChainProblem>(
          dp::MatrixChainProblem::random(n, rng)));
    }
  }
  std::vector<const dp::Problem*> pointers;
  for (const auto& p : owned) pointers.push_back(p.get());

  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 2;  // far below the batch size
  options.overload_policy = OverloadPolicy::kReject;
  SolverService service(options);

  const auto out = service.solve_all(pointers);
  ASSERT_EQ(out.results.size(), pointers.size());
  EXPECT_EQ(out.ledger.instances, pointers.size());
  EXPECT_EQ(out.ledger.shape_groups, 2u);
  EXPECT_EQ(out.ledger.plans_built, 2u);
  for (std::size_t k = 0; k < pointers.size(); ++k) {
    core::SublinearSolver independent;
    const auto expected = independent.solve(*pointers[k]);
    EXPECT_EQ(out.results[k].cost, expected.cost) << "instance " << k;
    EXPECT_EQ(out.results[k].iterations, expected.iterations)
        << "instance " << k;
    EXPECT_TRUE(out.results[k].w == expected.w) << "instance " << k;
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_rejected, 0u);
  EXPECT_EQ(stats.jobs_expired, 0u);
  EXPECT_EQ(stats.jobs_submitted, pointers.size());
  EXPECT_EQ(stats.jobs_completed, pointers.size());
  EXPECT_EQ(stats.jobs_cold_deferred, 0u)
      << "solve_all resolves plans on the caller, never via the builder";
  expect_accounted(stats);
}

}  // namespace
}  // namespace subdp::serve
