// Unit tests for the exclusive-write checker (pram/crew_checker.hpp).

#include "pram/crew_checker.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace subdp::pram {
namespace {

TEST(CrewChecker, CleanStepHasNoViolations) {
  CrewChecker c;
  c.begin_step("clean");
  for (std::uint64_t a = 0; a < 100; ++a) c.record_write(a);
  c.end_step();
  EXPECT_EQ(c.violation_count(), 0u);
  EXPECT_TRUE(c.first_violation().empty());
}

TEST(CrewChecker, DetectsDoubleWrite) {
  CrewChecker c;
  c.begin_step("dirty");
  c.record_write(7);
  c.record_write(3);
  c.record_write(7);
  c.end_step();
  EXPECT_EQ(c.violation_count(), 1u);
  EXPECT_NE(c.first_violation().find("dirty"), std::string::npos);
  EXPECT_NE(c.first_violation().find("7"), std::string::npos);
  EXPECT_NE(c.first_violation().find("2 times"), std::string::npos);
}

TEST(CrewChecker, CountsDistinctConflictedCells) {
  CrewChecker c;
  c.begin_step("s");
  for (int rep = 0; rep < 3; ++rep) {
    c.record_write(1);
    c.record_write(2);
  }
  c.record_write(5);
  c.end_step();
  EXPECT_EQ(c.violation_count(), 2u);  // cells 1 and 2, not 5
}

TEST(CrewChecker, WriteSetResetsBetweenSteps) {
  CrewChecker c;
  c.begin_step("one");
  c.record_write(9);
  c.end_step();
  c.begin_step("two");
  c.record_write(9);  // same cell, different step: fine
  c.end_step();
  EXPECT_EQ(c.violation_count(), 0u);
}

TEST(CrewChecker, ViolationsAccumulateAcrossSteps) {
  CrewChecker c;
  for (int s = 0; s < 3; ++s) {
    c.begin_step("s" + std::to_string(s));
    c.record_write(1);
    c.record_write(1);
    c.end_step();
  }
  EXPECT_EQ(c.violation_count(), 3u);
}

TEST(CrewChecker, NestedBeginThrows) {
  CrewChecker c;
  c.begin_step("outer");
  EXPECT_THROW(c.begin_step("inner"), std::invalid_argument);
}

TEST(CrewChecker, EndWithoutBeginThrows) {
  CrewChecker c;
  EXPECT_THROW(c.end_step(), std::invalid_argument);
}

TEST(CrewChecker, ResetClearsTally) {
  CrewChecker c;
  c.begin_step("s");
  c.record_write(1);
  c.record_write(1);
  c.end_step();
  c.reset();
  EXPECT_EQ(c.violation_count(), 0u);
  EXPECT_TRUE(c.first_violation().empty());
}

TEST(CrewChecker, ThreadSafeRecording) {
  CrewChecker c;
  c.begin_step("mt");
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      // Disjoint address ranges: no conflicts expected.
      const auto base = static_cast<std::uint64_t>(t) * kPerThread;
      for (std::uint64_t a = 0; a < kPerThread; ++a) {
        c.record_write(base + a);
      }
    });
  }
  for (auto& th : threads) th.join();
  c.end_step();
  EXPECT_EQ(c.violation_count(), 0u);
}

}  // namespace
}  // namespace subdp::pram
