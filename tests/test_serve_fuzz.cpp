// Seeded randomized differential stress for the SolverService admission
// path: many caller threads submit shuffled mixes of shapes, option
// sets, priority classes and deadlines against a deliberately hostile
// service configuration — small bounded queue, tiny plan cache
// (constant eviction and cold rebuild churn through the builder pool,
// exercised with 1 and 2 builders), both overload policies — and the
// harness checks the two contracts that must survive any overload:
//
//  1. differential bit-identity: every job that completes returns
//     exactly what an independent `core::solve` under the same options
//     returns (cost, iteration count, full w table);
//  2. exact accounting: every submission is resolved exactly once —
//     completed + rejected + expired == submitted — both in the
//     caller-side tallies and in `ServiceStats`, and the two agree
//     counter by counter, globally AND per priority class (the class
//     slices must also partition the global ledger, and each class's
//     e2e histogram must see exactly its completed jobs).
//
// All randomness flows from the test's seeds (support::Rng), so a
// failure reproduces from the seed; which jobs get rejected under
// kReject depends on scheduling, but the asserted invariants hold for
// every interleaving. Smoke-labelled; runs under the TSan preset.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "serve/solver_service.hpp"
#include "support/rng.hpp"
#include "tests/serve_tsan_suppression.hpp"

namespace subdp::serve {
namespace {

using core::AdmissionError;

/// One solver configuration the fuzz mix draws from. Distinct option
/// sets key distinct plans, so mixing them also churns the tiny cache.
std::vector<core::SublinearOptions> option_sets() {
  std::vector<core::SublinearOptions> out;
  out.emplace_back();  // banded HLV defaults
  core::SublinearOptions dense;
  dense.variant = core::PwVariant::kDense;
  out.push_back(dense);
  core::SublinearOptions rytter;
  rytter.square_mode = core::SquareMode::kRytterFull;
  out.push_back(rytter);
  return out;
}

/// The instances plus the full differential expectation matrix
/// `expected[opt][shape]`, solved independently of any service.
struct FuzzWorkload {
  std::vector<std::unique_ptr<dp::MatrixChainProblem>> problems;
  std::vector<core::SublinearOptions> options;
  std::vector<std::vector<core::SublinearResult>> expected;
};

FuzzWorkload make_workload(const std::vector<std::size_t>& shapes,
                           std::uint64_t seed) {
  FuzzWorkload out;
  out.options = option_sets();
  support::Rng rng(seed);
  for (const std::size_t n : shapes) {
    out.problems.push_back(std::make_unique<dp::MatrixChainProblem>(
        dp::MatrixChainProblem::random(n, rng)));
  }
  out.expected.resize(out.options.size());
  for (std::size_t o = 0; o < out.options.size(); ++o) {
    for (const auto& p : out.problems) {
      core::SublinearSolver solver(out.options[o]);
      out.expected[o].push_back(solver.solve(*p));
    }
  }
  return out;
}

/// Per-caller outcome ledger; summed across threads and checked against
/// `ServiceStats` for the exactly-once accounting invariant. The
/// per-class slices track the same four counters keyed by the
/// `PriorityClass` the caller drew, mirroring `PriorityClassStats`.
struct ClassTally {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
};

struct Tally {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::array<ClassTally, kPriorityClasses> cls{};
  std::vector<std::string> failures;

  void fail(const std::string& what) {
    if (failures.size() < 8) failures.push_back(what);
  }
};

enum class DeadlineMix { kNone, kFarFuture, kAlreadyExpired };

/// Seed-drawn deadline frequencies: a roll below `expired_below` makes
/// the job already expired at submit; below `far_below`, a far-future
/// deadline; otherwise no deadline. The heavy profile pushes most of
/// the traffic through the deadline paths so the EDF ordering, the
/// expiry sweep and the per-class expired counters all run hot.
struct DeadlineProfile {
  double expired_below = 0.15;
  double far_below = 0.30;
};
constexpr DeadlineProfile kDefaultDeadlines{};
constexpr DeadlineProfile kHeavyDeadlines{0.45, 0.90};

/// One caller thread's worth of traffic: shuffled (shape, options)
/// pairs, each with a seed-drawn priority class and deadline category,
/// plus an occasional blocking solve_all mixed in (which the service
/// accounts as batch-class traffic).
void run_caller(SolverService& service, const FuzzWorkload& load,
                std::uint64_t seed, std::size_t rounds,
                DeadlineProfile deadlines, Tally& tally) {
  support::Rng rng(seed);
  struct Pending {
    std::future<core::SublinearResult> future;
    std::size_t opt = 0;
    std::size_t shape = 0;
    DeadlineMix deadline = DeadlineMix::kNone;
    PriorityClass priority = PriorityClass::kInteractive;
  };
  for (std::size_t round = 0; round < rounds; ++round) {
    // Shuffle the full (option set x shape) cross product.
    std::vector<std::pair<std::size_t, std::size_t>> mix;
    for (std::size_t o = 0; o < load.options.size(); ++o) {
      for (std::size_t s = 0; s < load.problems.size(); ++s) {
        mix.emplace_back(o, s);
      }
    }
    rng.shuffle(mix);

    std::vector<Pending> pending;
    for (const auto& [o, s] : mix) {
      DeadlineMix deadline = DeadlineMix::kNone;
      const double roll = rng.uniform01();
      if (roll < deadlines.expired_below) {
        deadline = DeadlineMix::kAlreadyExpired;
      } else if (roll < deadlines.far_below) {
        deadline = DeadlineMix::kFarFuture;
      }
      const PriorityClass priority = rng.uniform01() < 0.5
                                         ? PriorityClass::kInteractive
                                         : PriorityClass::kBatch;
      const auto cls = static_cast<std::size_t>(priority);
      ++tally.submitted;
      ++tally.cls[cls].submitted;
      try {
        Pending job;
        job.opt = o;
        job.shape = s;
        job.deadline = deadline;
        job.priority = priority;
        switch (deadline) {
          case DeadlineMix::kNone:
            job.future = service.submit(*load.problems[s], load.options[o],
                                        priority);
            break;
          case DeadlineMix::kFarFuture:
            job.future = service.submit(
                *load.problems[s], load.options[o], priority,
                std::chrono::steady_clock::now() + std::chrono::hours(1));
            break;
          case DeadlineMix::kAlreadyExpired:
            job.future = service.submit(
                *load.problems[s], load.options[o], priority,
                std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
            break;
        }
        pending.push_back(std::move(job));
      } catch (const AdmissionError& e) {
        if (e.kind() != AdmissionError::Kind::kQueueFull) {
          tally.fail(std::string("submit threw non-queue-full: ") +
                     e.what());
        }
        ++tally.rejected;
        ++tally.cls[cls].rejected;
      }
    }

    for (Pending& job : pending) {
      const auto cls = static_cast<std::size_t>(job.priority);
      try {
        const core::SublinearResult got = job.future.get();
        ++tally.completed;
        ++tally.cls[cls].completed;
        const core::SublinearResult& want =
            load.expected[job.opt][job.shape];
        if (!(got.cost == want.cost && got.iterations == want.iterations &&
              got.w == want.w)) {
          tally.fail("bit-identity mismatch (opt " +
                     std::to_string(job.opt) + ", shape " +
                     std::to_string(job.shape) + ")");
        }
        if (job.deadline == DeadlineMix::kAlreadyExpired) {
          tally.fail("already-expired job completed instead of expiring");
        }
      } catch (const AdmissionError& e) {
        if (e.kind() != AdmissionError::Kind::kDeadlineExceeded) {
          tally.fail(std::string("future threw non-deadline error: ") +
                     e.what());
        }
        if (job.deadline != DeadlineMix::kAlreadyExpired) {
          tally.fail("job without an expired deadline expired anyway");
        }
        ++tally.expired;
        ++tally.cls[cls].expired;
      }
    }

    // Every other round, mix the blocking surface into the same queue:
    // it must never shed or expire, whatever the policy. The service
    // always classifies solve_all work as batch.
    if (round % 2 == 0) {
      std::vector<const dp::Problem*> batch;
      for (const auto& p : load.problems) batch.push_back(p.get());
      const auto out = service.solve_all(batch, load.options[0]);
      const auto kBatchIdx =
          static_cast<std::size_t>(PriorityClass::kBatch);
      tally.submitted += batch.size();
      tally.completed += batch.size();
      tally.cls[kBatchIdx].submitted += batch.size();
      tally.cls[kBatchIdx].completed += batch.size();
      for (std::size_t s = 0; s < batch.size(); ++s) {
        const core::SublinearResult& want = load.expected[0][s];
        if (!(out.results[s].cost == want.cost &&
              out.results[s].iterations == want.iterations &&
              out.results[s].w == want.w)) {
          tally.fail("solve_all bit-identity mismatch (shape " +
                     std::to_string(s) + ")");
        }
      }
    }
  }
}

void run_fuzz(std::uint64_t seed, OverloadPolicy policy,
              std::size_t builders,
              DeadlineProfile deadlines = kDefaultDeadlines) {
  SCOPED_TRACE(std::string("seed ") + std::to_string(seed) + ", policy " +
               to_string(policy) + ", builders " +
               std::to_string(builders));
  const FuzzWorkload load = make_workload({6, 9, 12, 15}, seed);

  ServiceOptions options;
  options.workers = 4;
  options.queue_capacity = 4;   // small: overload is the common case
  options.plan_capacity = 2;    // tiny: constant eviction + cold rebuilds
  options.overload_policy = policy;
  options.builders = builders;
  SolverService service(options);

  constexpr std::size_t kCallerThreads = 4;
  constexpr std::size_t kRounds = 2;
  std::vector<Tally> tallies(kCallerThreads);
  {
    std::vector<std::thread> callers;
    callers.reserve(kCallerThreads);
    for (std::size_t t = 0; t < kCallerThreads; ++t) {
      callers.emplace_back([&, t] {
        run_caller(service, load, seed * 1000 + t, kRounds, deadlines,
                   tallies[t]);
      });
    }
    for (auto& thread : callers) thread.join();
  }

  Tally sum;
  for (const Tally& t : tallies) {
    sum.submitted += t.submitted;
    sum.completed += t.completed;
    sum.rejected += t.rejected;
    sum.expired += t.expired;
    for (std::size_t c = 0; c < kPriorityClasses; ++c) {
      sum.cls[c].submitted += t.cls[c].submitted;
      sum.cls[c].completed += t.cls[c].completed;
      sum.cls[c].rejected += t.cls[c].rejected;
      sum.cls[c].expired += t.cls[c].expired;
    }
    for (const auto& f : t.failures) {
      ADD_FAILURE() << f;
    }
  }
  // Caller-side exactly-once accounting...
  EXPECT_EQ(sum.submitted, sum.completed + sum.rejected + sum.expired);
  // ...agreeing with the service's own ledger, counter by counter.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.builders, builders == 0 ? 1u : builders);
  EXPECT_EQ(stats.jobs_submitted, sum.submitted);
  EXPECT_EQ(stats.jobs_completed, sum.completed);
  EXPECT_EQ(stats.jobs_rejected, sum.rejected);
  EXPECT_EQ(stats.jobs_expired, sum.expired);
  EXPECT_EQ(stats.jobs_submitted,
            stats.jobs_completed + stats.jobs_rejected + stats.jobs_expired);
  // The same reconciliation per priority class: the service's class
  // slices must match the callers' class tallies counter by counter,
  // hold the drained invariant on their own, and partition the globals.
  const PriorityClassStats* const slices[kPriorityClasses] = {
      &stats.interactive, &stats.batch};
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    SCOPED_TRACE(std::string("class ") +
                 to_string(static_cast<PriorityClass>(c)));
    EXPECT_EQ(slices[c]->submitted, sum.cls[c].submitted);
    EXPECT_EQ(slices[c]->completed, sum.cls[c].completed);
    EXPECT_EQ(slices[c]->rejected, sum.cls[c].rejected);
    EXPECT_EQ(slices[c]->expired, sum.cls[c].expired);
    EXPECT_EQ(slices[c]->submitted, slices[c]->completed +
                                        slices[c]->rejected +
                                        slices[c]->expired);
    // Per-class observability: each class's e2e histogram sees exactly
    // that class's completions, and its p99 is a finite latency.
    EXPECT_EQ(slices[c]->e2e.count, slices[c]->completed);
    EXPECT_TRUE(std::isfinite(slices[c]->e2e.p99()));
    EXPECT_GE(slices[c]->e2e.p99(), 0.0);
  }
  EXPECT_EQ(stats.interactive.submitted + stats.batch.submitted,
            stats.jobs_submitted);
  EXPECT_EQ(stats.interactive.completed + stats.batch.completed,
            stats.jobs_completed);
  EXPECT_EQ(stats.interactive.rejected + stats.batch.rejected,
            stats.jobs_rejected);
  EXPECT_EQ(stats.interactive.expired + stats.batch.expired,
            stats.jobs_expired);
  // Observability reconciliation: the end-to-end latency histogram sees
  // every completed job exactly once — rejected and expired jobs never
  // reach it — under every seed, policy, and interleaving.
  EXPECT_EQ(stats.e2e.count, stats.jobs_completed);
  if (policy == OverloadPolicy::kBlock) {
    EXPECT_EQ(stats.jobs_rejected, 0u) << "kBlock must never shed";
    EXPECT_EQ(stats.interactive.rejected, 0u);
    EXPECT_EQ(stats.batch.rejected, 0u);
  }
  // No `snapshot_dir` configured: however hard the cache is churned, the
  // snapshot tier reports exactly zero activity.
  EXPECT_EQ(stats.snapshot_hits, 0u);
  EXPECT_EQ(stats.snapshot_misses, 0u);
  EXPECT_EQ(stats.snapshot_write_failures, 0u);
  EXPECT_EQ(stats.shapes_prewarmed, 0u);
  // The tiny cache was genuinely churned: more distinct (shape, options)
  // keys than capacity forces evictions and repeat cold builds.
  EXPECT_GT(stats.plan_cache.evictions, 0u);
  EXPECT_GT(stats.plan_cache.misses, stats.plan_cache.capacity);
}

TEST(ServeFuzz, RejectPolicyAcrossSeedsAndBuilderCounts) {
  for (const std::size_t builders : {1u, 2u}) {
    for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
      run_fuzz(seed, OverloadPolicy::kReject, builders);
    }
  }
}

TEST(ServeFuzz, BlockPolicyAcrossSeedsAndBuilderCounts) {
  for (const std::size_t builders : {1u, 2u}) {
    for (const std::uint64_t seed : {21ull, 22ull, 23ull}) {
      run_fuzz(seed, OverloadPolicy::kBlock, builders);
    }
  }
}

// Deadline-heavy traffic: ~45% of submissions arrive already expired
// and another ~45% carry far-future deadlines, so most of the queue
// flows through the EDF ordering and the expiry sweep. Both policies,
// two builders — the per-class expired counters and the drained
// invariant must still reconcile exactly.
TEST(ServeFuzz, DeadlineHeavyMixAcrossSeeds) {
  for (const std::uint64_t seed : {31ull, 32ull, 33ull}) {
    run_fuzz(seed, OverloadPolicy::kReject, 2, kHeavyDeadlines);
    run_fuzz(seed, OverloadPolicy::kBlock, 2, kHeavyDeadlines);
  }
}

}  // namespace
}  // namespace subdp::serve
