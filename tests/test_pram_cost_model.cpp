// Unit tests for the work/depth ledger (pram/cost_model.hpp).

#include "pram/cost_model.hpp"

#include <gtest/gtest.h>

namespace subdp::pram {
namespace {

TEST(CostModel, AccumulatesWorkAndDepth) {
  CostModel m;
  m.add_step("a", 100, 1);
  m.add_step("b", 50, 3);
  EXPECT_EQ(m.total_work(), 150u);
  EXPECT_EQ(m.total_depth(), 4u);
  EXPECT_EQ(m.step_count(), 2u);
}

TEST(CostModel, DepthDefaultsToOne) {
  CostModel m;
  m.add_step("a", 10);
  EXPECT_EQ(m.total_depth(), 1u);
}

TEST(CostModel, ZeroDepthRejected) {
  CostModel m;
  EXPECT_THROW(m.add_step("a", 10, 0), std::invalid_argument);
}

TEST(CostModel, BrentTimeUnboundedProcessorsIsDepthPlusSteps) {
  CostModel m;
  m.add_step("a", 1000, 2);
  m.add_step("b", 500, 5);
  // With p huge each step costs ceil(work/p) = 1 plus its depth.
  EXPECT_EQ(m.brent_time(1'000'000), (1 + 2) + (1 + 5));
}

TEST(CostModel, BrentTimeOneProcessorIsWorkPlusDepth) {
  CostModel m;
  m.add_step("a", 1000, 2);
  m.add_step("b", 500, 5);
  EXPECT_EQ(m.brent_time(1), 1000 + 2 + 500 + 5);
}

TEST(CostModel, BrentTimeIsMonotoneInProcessors) {
  CostModel m;
  for (int s = 0; s < 10; ++s) m.add_step("s", 997, 3);
  std::uint64_t prev = m.brent_time(1);
  for (std::uint64_t p = 2; p <= 64; p *= 2) {
    const std::uint64_t t = m.brent_time(p);
    EXPECT_LE(t, prev);
    prev = t;
  }
}

TEST(CostModel, BrentCeilingIsExact) {
  CostModel m;
  m.add_step("a", 10, 1);
  EXPECT_EQ(m.brent_time(3), 4u + 1u);  // ceil(10/3)=4
  EXPECT_EQ(m.brent_time(5), 2u + 1u);
}

TEST(CostModel, PhaseTotalsGroupByLabel) {
  CostModel m;
  m.add_step("square", 10, 1);
  m.add_step("pebble", 5, 2);
  m.add_step("square", 20, 3);
  const auto totals = m.phase_totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals.at("square").steps, 2u);
  EXPECT_EQ(totals.at("square").work, 30u);
  EXPECT_EQ(totals.at("square").depth, 4u);
  EXPECT_EQ(totals.at("pebble").work, 5u);
}

TEST(CostModel, ResetClearsEverything) {
  CostModel m;
  m.add_step("a", 10, 1);
  m.reset();
  EXPECT_EQ(m.total_work(), 0u);
  EXPECT_EQ(m.total_depth(), 0u);
  EXPECT_EQ(m.step_count(), 0u);
  EXPECT_TRUE(m.phase_totals().empty());
}

TEST(CostModel, InvalidProcessorCountRejected) {
  CostModel m;
  EXPECT_THROW((void)m.brent_time(0), std::invalid_argument);
}

}  // namespace
}  // namespace subdp::pram
