// Tests for the PRAM prefix-sum primitive (pram/scan.hpp): correctness
// against serial folds, depth accounting, backend independence, CREW
// conformance, and saturation behaviour.

#include "pram/scan.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace subdp::pram {
namespace {

std::vector<Cost> serial_inclusive(const std::vector<Cost>& v) {
  std::vector<Cost> out(v.size());
  Cost run = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    run = sat_add(run, v[i]);
    out[i] = run;
  }
  return out;
}

TEST(Scan, EmptyAndSingleton) {
  Machine m;
  EXPECT_TRUE(inclusive_scan(m, {}, "s").empty());
  EXPECT_EQ(inclusive_scan(m, {7}, "s"), std::vector<Cost>{7});
  EXPECT_EQ(exclusive_scan(m, {7}, "s"), std::vector<Cost>{0});
}

TEST(Scan, InclusiveMatchesSerialFold) {
  support::Rng rng(3);
  Machine m;
  for (const std::size_t n : {2u, 3u, 7u, 64u, 100u, 1000u}) {
    std::vector<Cost> v(n);
    for (auto& x : v) x = rng.uniform_int(0, 1000);
    ASSERT_EQ(inclusive_scan(m, v, "s"), serial_inclusive(v)) << "n=" << n;
  }
}

TEST(Scan, ExclusiveIsShiftedInclusive) {
  support::Rng rng(4);
  Machine m;
  std::vector<Cost> v(33);
  for (auto& x : v) x = rng.uniform_int(0, 50);
  const auto inc = inclusive_scan(m, v, "s");
  const auto exc = exclusive_scan(m, v, "s");
  ASSERT_EQ(exc.size(), v.size());
  EXPECT_EQ(exc[0], 0);
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_EQ(exc[i], inc[i - 1]);
  }
}

TEST(Scan, DepthIsLogarithmic) {
  Machine m;
  const std::size_t n = 1024;
  (void)inclusive_scan(m, std::vector<Cost>(n, 1), "scan");
  // log2(n) doubling steps, unit depth each.
  EXPECT_EQ(m.costs().step_count(), support::ceil_log2(n));
  EXPECT_EQ(m.costs().total_depth(), support::ceil_log2(n));
}

TEST(Scan, WorkIsNLogNForDoublingScan) {
  Machine m;
  const std::size_t n = 256;
  (void)inclusive_scan(m, std::vector<Cost>(n, 1), "scan");
  const auto work = m.costs().total_work();
  EXPECT_GT(work, (n / 2) * support::ceil_log2(n));
  EXPECT_LE(work, n * support::ceil_log2(n));
}

TEST(Scan, BackendsAgree) {
  support::Rng rng(5);
  std::vector<Cost> v(500);
  for (auto& x : v) x = rng.uniform_int(0, 9);
  std::vector<std::vector<Cost>> results;
  for (const auto b :
       {Backend::kSerial, Backend::kThreadPool, Backend::kOpenMP}) {
    MachineOptions opts;
    opts.backend = b;
    Machine m(opts);
    results.push_back(inclusive_scan(m, v, "s"));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Scan, IsCrewConformant) {
  MachineOptions opts;
  opts.check_crew = true;
  Machine m(opts);
  (void)exclusive_scan(m, std::vector<Cost>(128, 2), "s");
  ASSERT_NE(m.crew(), nullptr);
  EXPECT_EQ(m.crew()->violation_count(), 0u)
      << m.crew()->first_violation();
}

TEST(Scan, SaturatesAtInfinity) {
  Machine m;
  const std::vector<Cost> v{kInfinity - 5, 10, 1};
  const auto inc = inclusive_scan(m, v, "s");
  EXPECT_EQ(inc[0], kInfinity - 5);
  EXPECT_EQ(inc[1], kInfinity);
  EXPECT_EQ(inc[2], kInfinity);
}

}  // namespace
}  // namespace subdp::pram
