// Unit tests for the fork-join pool (pram/thread_pool.hpp).

#include "pram/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace subdp::pram {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 7, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NonZeroBeginRespected) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(100, 200, 13, [&](std::int64_t lo, std::int64_t hi) {
    std::int64_t local = 0;
    for (std::int64_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) {
    calls.fetch_add(1);
  });
  pool.parallel_for(7, 3, 1, [&](std::int64_t, std::int64_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, AutomaticGrainStillCovers) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> count{0};
  pool.parallel_for(0, 12345, 0, [&](std::int64_t lo, std::int64_t hi) {
    count.fetch_add(hi - lo);
  });
  EXPECT_EQ(count.load(), 12345);
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::int64_t> count{0};
    pool.parallel_for(0, 100, 3, [&](std::int64_t lo, std::int64_t hi) {
      count.fetch_add(hi - lo);
    });
    ASSERT_EQ(count.load(), 100) << "round " << round;
  }
}

TEST(ThreadPool, BodyExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::int64_t lo, std::int64_t) {
                          if (lo == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must still be usable after an exception.
  std::atomic<std::int64_t> count{0};
  pool.parallel_for(0, 10, 1, [&](std::int64_t lo, std::int64_t hi) {
    count.fetch_add(hi - lo);
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1u);
  std::int64_t sum = 0;  // no atomics needed: single thread
  pool.parallel_for(0, 100, 10, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().parallelism(), 1u);
}

}  // namespace
}  // namespace subdp::pram
