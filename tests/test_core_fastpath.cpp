// Equivalence tests for the hot-path engine mechanisms (core/engine.hpp):
// delta-buffered stepping vs copy-based double buffering, frontier-driven
// vs full sweeps, cursor-driven a-pebble gap runs vs per-gap `get` scans,
// incrementally maintained frontier mark grids vs per-step rebuilds, and
// serial vs thread-pool execution must all produce identical solver
// output — the same w table, cost, iteration count, and per-iteration
// change counts — across every instance family in bench/common.hpp and
// both pw-table layouts. The fast path is engaged by
// turning the cost ledger off (`record_costs = false`); checked /
// instrumented runs keep full sweeps, whose ledger must be unaffected by
// delta buffering.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/pw_dense.hpp"
#include "core/solve_plan.hpp"
#include "core/solve_session.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/sequential.hpp"
#include "support/rng.hpp"

namespace subdp::core {
namespace {

struct EngineConfig {
  std::string name;
  bool delta = true;
  bool frontier = true;
  bool record_costs = false;
  pram::Backend backend = pram::Backend::kSerial;
  // The two PR-6 hot-path mechanisms; false selects the reference
  // implementation (per-gap `get` pebble scans / from-scratch mark-grid
  // rebuilds) the cursor and incremental paths must be bit-identical to.
  bool cursor = true;
  bool incremental = true;
  // Per-step engine profiling (observability PR): on or off, the solver
  // output must be bit-identical — profiling only ever records.
  bool profile = false;
};

SublinearResult run_config(const dp::Problem& problem,
                           const EngineConfig& config, PwVariant variant) {
  SublinearOptions options;
  options.variant = variant;
  options.delta_buffering = config.delta;
  options.frontier_sweeps = config.frontier;
  options.pebble_cursor = config.cursor;
  options.incremental_marks = config.incremental;
  options.profile = config.profile;
  options.machine.record_costs = config.record_costs;
  options.machine.backend = config.backend;
  SublinearSolver solver(options);
  return solver.solve(problem);
}

void expect_identical(const SublinearResult& ref, const SublinearResult& got,
                      const std::string& label) {
  EXPECT_EQ(ref.cost, got.cost) << label;
  EXPECT_EQ(ref.iterations, got.iterations) << label;
  EXPECT_TRUE(ref.w == got.w) << label << ": w tables differ";
  ASSERT_EQ(ref.trace.size(), got.trace.size()) << label;
  for (std::size_t t = 0; t < ref.trace.size(); ++t) {
    EXPECT_EQ(ref.trace[t].pw_cells_changed, got.trace[t].pw_cells_changed)
        << label << " iteration " << t + 1;
    EXPECT_EQ(ref.trace[t].w_cells_changed, got.trace[t].w_cells_changed)
        << label << " iteration " << t + 1;
  }
}

// The reference configuration is the seed engine's stepping scheme:
// copy-based double buffering, full sweeps, instrumented.
EngineConfig reference_config() {
  return {"reference(copy,full,counted,serial)", false, false, true,
          pram::Backend::kSerial};
}

std::vector<EngineConfig> variant_configs() {
  return {
      {"delta,full,counted,serial", true, false, true, pram::Backend::kSerial},
      {"delta,full,fast,serial", true, false, false, pram::Backend::kSerial},
      {"delta,frontier,fast,serial", true, true, false,
       pram::Backend::kSerial},
      {"copy,full,fast,serial", false, false, false, pram::Backend::kSerial},
      {"delta,frontier,fast,threads", true, true, false,
       pram::Backend::kThreadPool},
      {"delta,full,counted,threads", true, false, true,
       pram::Backend::kThreadPool},
      // Legacy fast paths: each PR-6 mechanism off alone, then both off
      // (the pre-cursor engine), serial and threaded.
      {"delta,frontier,fast,serial,no-cursor", true, true, false,
       pram::Backend::kSerial, false, true},
      {"delta,frontier,fast,serial,no-incremental", true, true, false,
       pram::Backend::kSerial, true, false},
      {"delta,frontier,fast,serial,legacy", true, true, false,
       pram::Backend::kSerial, false, false},
      {"delta,frontier,fast,threads,legacy", true, true, false,
       pram::Backend::kThreadPool, false, false},
      // Observability: per-step profiling on must be bit-identical to the
      // reference — recording never steers a sweep, serial or threaded.
      {"delta,frontier,fast,serial,profiled", true, true, false,
       pram::Backend::kSerial, true, true, true},
      {"delta,frontier,fast,threads,profiled", true, true, false,
       pram::Backend::kThreadPool, true, true, true},
  };
}

TEST(FastPath, AllConfigurationsAgreeOnEveryFamilyBanded) {
  for (const std::string& family : bench::instance_families()) {
    support::Rng rng(2024);
    const auto problem = bench::make_instance(family, 33, rng);
    const auto ref =
        run_config(*problem, reference_config(), PwVariant::kBanded);
    EXPECT_EQ(ref.cost, dp::solve_sequential(*problem).cost) << family;
    for (const EngineConfig& config : variant_configs()) {
      const auto got = run_config(*problem, config, PwVariant::kBanded);
      expect_identical(ref, got, family + " / " + config.name);
    }
  }
}

TEST(FastPath, AllConfigurationsAgreeOnEveryFamilyDense) {
  for (const std::string& family : bench::instance_families()) {
    support::Rng rng(77);
    const auto problem = bench::make_instance(family, 18, rng);
    const auto ref =
        run_config(*problem, reference_config(), PwVariant::kDense);
    for (const EngineConfig& config : variant_configs()) {
      const auto got = run_config(*problem, config, PwVariant::kDense);
      expect_identical(ref, got, family + " / " + config.name);
    }
  }
}

TEST(FastPath, PwTablesMatchCellByCell) {
  // Beyond the w table: step both engines side by side and compare every
  // stored pw entry after each iteration.
  support::Rng rng(99);
  const std::size_t n = 20;
  const auto problem = bench::make_instance("matrix-chain", n, rng);

  SublinearOptions ref_options;
  ref_options.delta_buffering = false;
  ref_options.frontier_sweeps = false;
  SublinearOptions fast_options;
  fast_options.machine.record_costs = false;

  SublinearSolver ref(ref_options);
  SublinearSolver fast(fast_options);
  ref.prepare(*problem);
  fast.prepare(*problem);
  ASSERT_EQ(ref.effective_band(), fast.effective_band());
  const std::size_t band = ref.effective_band();

  for (std::size_t iter = 0; iter < ref.iteration_bound(); ++iter) {
    (void)ref.step();
    (void)fast.step();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 2; j <= n; ++j) {
        for (std::size_t p = i; p < j; ++p) {
          for (std::size_t q = p + 1; q <= j; ++q) {
            if (p == i && q == j) continue;
            const bool stored =
                (j - i) - (q - p) <= band || p == i || q == j;
            if (!stored) continue;
            ASSERT_EQ(ref.current_pw(i, j, p, q), fast.current_pw(i, j, p, q))
                << "iteration " << iter + 1 << " pw(" << i << "," << j << ","
                << p << "," << q << ")";
          }
        }
      }
    }
  }
}

TEST(FastPath, DeltaBufferingLeavesTheLedgerUnchanged) {
  // Checked-mode accounting (work, depth, step sequence) must be
  // identical whether steps double-buffer by copy or by write log.
  support::Rng rng(7);
  const auto problem = bench::make_instance("optimal-bst", 24, rng);
  SublinearOptions copy_options;
  copy_options.delta_buffering = false;
  copy_options.frontier_sweeps = false;
  SublinearOptions delta_options;
  delta_options.delta_buffering = true;

  SublinearSolver copy_solver(copy_options);
  SublinearSolver delta_solver(delta_options);
  (void)copy_solver.solve(*problem);
  (void)delta_solver.solve(*problem);

  const auto& a = copy_solver.machine().costs();
  const auto& b = delta_solver.machine().costs();
  EXPECT_EQ(a.total_work(), b.total_work());
  EXPECT_EQ(a.total_depth(), b.total_depth());
  ASSERT_EQ(a.step_count(), b.step_count());
  for (std::size_t s = 0; s < a.steps().size(); ++s) {
    EXPECT_EQ(a.steps()[s].label, b.steps()[s].label) << "step " << s;
    EXPECT_EQ(a.steps()[s].work, b.steps()[s].work) << "step " << s;
    EXPECT_EQ(a.steps()[s].depth, b.steps()[s].depth) << "step " << s;
  }
}

TEST(FastPath, DeltaBufferingIsCrewConformant) {
  // The write-log scheme defers all square/pebble writes past the
  // barrier; the CREW checker must still see exactly one reported write
  // per improved cell and no conflicts.
  support::Rng rng(13);
  const auto problem = bench::make_instance("triangulation", 21, rng);
  SublinearOptions options;
  options.machine.check_crew = true;
  options.machine.backend = pram::Backend::kThreadPool;
  SublinearSolver solver(options);
  const auto result = solver.solve(*problem);
  EXPECT_EQ(result.cost, dp::solve_sequential(*problem).cost);
  ASSERT_NE(solver.machine().crew(), nullptr);
  EXPECT_EQ(solver.machine().crew()->violation_count(), 0u)
      << solver.machine().crew()->first_violation();
}

TEST(FastPath, WindowedPebbleMatchesReferenceEngine) {
  // The windowed schedule disables frontier sweeps internally; the
  // delta-buffered fast path must still match the copy-based engine.
  support::Rng rng(55);
  const auto problem = bench::make_instance("zigzag", 30, rng);
  SublinearOptions base;
  base.windowed_pebble = true;
  base.termination = TerminationMode::kFixedBound;

  SublinearOptions ref_options = base;
  ref_options.delta_buffering = false;
  ref_options.frontier_sweeps = false;
  SublinearOptions fast_options = base;
  fast_options.machine.record_costs = false;

  SublinearSolver ref(ref_options);
  SublinearSolver fast(fast_options);
  const auto a = ref.solve(*problem);
  const auto b = fast.solve(*problem);
  expect_identical(a, b, "windowed");
}

// ---- Cross-layout equivalence ----------------------------------------------
// The storage-policy refactor must leave semantics untouched: layouts that
// store the same entry set are bit-identical in every observable, and all
// layouts agree on the converged tables.

TEST(CrossLayout, DenseAndWideBandAgreeBitForBitOnEveryFamily) {
  // The entries-indexed dense layout and a banded table with band = n
  // store exactly the same entry set (only the addressing differs), so
  // costs, w tables, iteration schedules and per-iteration change counts
  // must match bit for bit — reference and fast engines alike.
  for (const std::string& family : bench::instance_families()) {
    support::Rng rng(4242);
    const std::size_t n = 21;
    const auto problem = bench::make_instance(family, n, rng);

    const auto ref =
        run_config(*problem, reference_config(), PwVariant::kDense);
    EXPECT_EQ(ref.cost, dp::solve_sequential(*problem).cost) << family;

    const auto dense_fast = run_config(
        *problem, {"dense,fast", true, true, false, pram::Backend::kSerial},
        PwVariant::kDense);
    expect_identical(ref, dense_fast, family + " / dense fast");

    for (const bool fast : {false, true}) {
      SublinearOptions options;
      options.variant = PwVariant::kBanded;
      options.band_width = n;  // wide band: stores every slack, like dense
      options.delta_buffering = fast;
      options.frontier_sweeps = fast;
      options.machine.record_costs = !fast;
      SublinearSolver solver(options);
      const auto got = solver.solve(*problem);
      expect_identical(ref, got,
                       family + (fast ? " / wide-band fast"
                                      : " / wide-band reference"));
    }
  }
}

TEST(CrossLayout, DenseAndBandedConvergeToTheSameTables) {
  // Different stored sets (Sec. 2 vs Sec. 5) take different iteration
  // paths, but both fixed points are the full optimum: final w tables and
  // costs agree with each other and with sequential DP.
  for (const std::string& family : bench::instance_families()) {
    support::Rng rng(911);
    const auto problem = bench::make_instance(family, 26, rng);
    SublinearOptions fast;
    fast.machine.record_costs = false;

    SublinearOptions dense_opts = fast;
    dense_opts.variant = PwVariant::kDense;
    SublinearSolver dense_solver(dense_opts);
    const auto dense = dense_solver.solve(*problem);

    SublinearOptions banded_opts = fast;
    banded_opts.variant = PwVariant::kBanded;
    SublinearSolver banded_solver(banded_opts);
    const auto banded = banded_solver.solve(*problem);

    EXPECT_EQ(dense.cost, dp::solve_sequential(*problem).cost) << family;
    EXPECT_EQ(dense.cost, banded.cost) << family;
    EXPECT_TRUE(dense.w == banded.w) << family << ": w tables differ";
  }
}

TEST(CrossLayout, DensePastTheOldCubeCapSolvesCorrectly) {
  // n = 80 would have needed a 330-MB (n+1)^4 cube (rejected at 64); the
  // entries-indexed layout handles it in ~14 MB and still matches
  // sequential DP and the banded layout.
  support::Rng rng(8080);
  const std::size_t n = 80;
  const auto problem = bench::make_instance("matrix-chain", n, rng);
  SublinearOptions dense_opts;
  dense_opts.variant = PwVariant::kDense;
  dense_opts.machine.record_costs = false;
  SublinearSolver dense_solver(dense_opts);
  const auto dense = dense_solver.solve(*problem);
  EXPECT_EQ(dense.cost, dp::solve_sequential(*problem).cost);

  SublinearOptions banded_opts;
  banded_opts.machine.record_costs = false;
  SublinearSolver banded_solver(banded_opts);
  const auto banded = banded_solver.solve(*problem);
  EXPECT_EQ(dense.cost, banded.cost);
  EXPECT_TRUE(dense.w == banded.w);
}

TEST(CrossLayout, PrepareEnforcesTheNewDenseLimit) {
  class SizedProblem final : public dp::Problem {
   public:
    explicit SizedProblem(std::size_t n) : n_(n) {}
    [[nodiscard]] std::size_t size() const override { return n_; }
    [[nodiscard]] Cost init(std::size_t) const override { return 0; }
    [[nodiscard]] Cost f(std::size_t, std::size_t, std::size_t) const
        override {
      return 0;
    }
    [[nodiscard]] std::string name() const override { return "sized"; }

   private:
    std::size_t n_;
  };

  SublinearOptions dense_opts;
  dense_opts.variant = PwVariant::kDense;
  SublinearSolver solver(dense_opts);

  // Rejected up front (before any table allocation).
  const SizedProblem too_big(DensePwTable::kMaxDenseN + 1);
  EXPECT_THROW(solver.prepare(too_big), std::invalid_argument);

  // Accepted well past the old 64 cube cap.
  const SizedProblem past_old_cap(80);
  solver.prepare(past_old_cap);
  EXPECT_GT(solver.pw_cell_count(), 0u);
}

// ---- Step profiles (observability) -----------------------------------------
// `SublinearOptions::profile` records one StepProfile per iteration. The
// bit-identical guarantee is covered by the profiled configs above; here
// the counters themselves must reconcile: every quad and pair the sweep
// owns is either scanned or accounted to a skip, exactly once.

TEST(StepProfiles, CountersReconcilePerStepOnEveryFamily) {
  for (const std::string& family : bench::instance_families()) {
    for (const PwVariant variant : {PwVariant::kBanded, PwVariant::kDense}) {
      support::Rng rng(606);
      const auto problem = bench::make_instance(family, 24, rng);
      SublinearOptions options;
      options.variant = variant;
      options.profile = true;
      options.machine.record_costs = false;  // engage the fast sweeps
      const auto plan = SolvePlan::create(problem->size(), options);
      SolveSession session(plan);
      const auto result = session.solve(*problem);
      EXPECT_EQ(result.cost, dp::solve_sequential(*problem).cost) << family;

      const std::vector<StepProfile>& profiles = session.step_profile();
      ASSERT_EQ(profiles.size(), result.iterations) << family;
      for (std::size_t t = 0; t < profiles.size(); ++t) {
        const StepProfile& p = profiles[t];
        const std::string label = family + " iteration " + std::to_string(t);
        EXPECT_EQ(p.iteration, t + 1) << label;
        EXPECT_EQ(p.square_quads_scanned + p.square_quads_skipped +
                      p.square_quads_block_skipped,
                  p.square_quads_total)
            << label;
        EXPECT_EQ(p.pebble_pairs_scanned + p.pebble_pairs_skipped,
                  p.pebble_pairs_total)
            << label;
        // Skipping a whole block accounts all of its quads at once.
        if (p.square_blocks_skipped > 0) {
          EXPECT_GT(p.square_quads_block_skipped, 0u) << label;
        }
        // Frontier density accounting is a subset relation.
        EXPECT_LE(p.frontier_sites, p.total_split_sites) << label;
      }
      // The sweeps genuinely ran: some work is attributed somewhere.
      std::uint64_t total_quads = 0;
      std::uint64_t total_pairs = 0;
      for (const StepProfile& p : profiles) {
        total_quads += p.square_quads_total;
        total_pairs += p.pebble_pairs_total;
      }
      EXPECT_GT(total_quads, 0u) << family;
      EXPECT_GT(total_pairs, 0u) << family;
    }
  }
}

TEST(StepProfiles, EmptyWhenProfilingIsOff) {
  support::Rng rng(607);
  const auto problem = bench::make_instance("matrix-chain", 18, rng);
  SublinearOptions options;  // profile defaults to false
  options.machine.record_costs = false;
  const auto plan = SolvePlan::create(problem->size(), options);
  SolveSession session(plan);
  const auto result = session.solve(*problem);
  EXPECT_EQ(result.cost, dp::solve_sequential(*problem).cost);
  EXPECT_TRUE(session.step_profile().empty());
}

TEST(StepProfiles, SurvivesSessionResetAndRepeatedSolves) {
  // A pooled session is reset across jobs; each solve's profile must
  // describe that solve alone, not accumulate across resets.
  support::Rng rng(608);
  const auto a = bench::make_instance("matrix-chain", 20, rng);
  const auto b = bench::make_instance("optimal-bst", 20, rng);
  SublinearOptions options;
  options.profile = true;
  options.machine.record_costs = false;
  const auto plan = SolvePlan::create(20, options);
  SolveSession session(plan);
  const auto ra = session.solve(*a);
  EXPECT_EQ(session.step_profile().size(), ra.iterations);
  const auto rb = session.solve(*b);
  EXPECT_EQ(session.step_profile().size(), rb.iterations);
}

TEST(FastPath, OversizedInstancesAreRejectedUpFront) {
  // Satellite of the same PR: pair/quad packing must not silently
  // truncate huge n. The solver rejects past the packed-coordinate cap.
  class HugeProblem final : public dp::Problem {
   public:
    [[nodiscard]] std::size_t size() const override { return 70000; }
    [[nodiscard]] Cost init(std::size_t) const override { return 0; }
    [[nodiscard]] Cost f(std::size_t, std::size_t, std::size_t) const
        override {
      return 0;
    }
    [[nodiscard]] std::string name() const override { return "huge"; }
  };
  SublinearSolver solver;
  const HugeProblem huge;
  EXPECT_THROW(solver.prepare(huge), std::invalid_argument);
}

}  // namespace
}  // namespace subdp::core
