// Tests of the stepping interface and per-iteration semantics of the
// engine: monotone relaxation of both tables, idempotence beyond the
// fixed point, trace bookkeeping, accessor contracts, and option
// validation — the machinery the co-simulation and the Sec. 7
// experiments rely on.

#include <gtest/gtest.h>

#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/sequential.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace subdp::core {
namespace {

TEST(Stepping, PwValuesAreMonotoneNonincreasing) {
  support::Rng rng(401);
  const std::size_t n = 12;
  const auto p = dp::MatrixChainProblem::random(n, rng);
  SublinearOptions options;
  options.variant = PwVariant::kDense;
  SublinearSolver solver(options);
  solver.prepare(p);

  // Snapshot all pw values each iteration; they may only decrease.
  std::vector<Cost> prev;
  const auto snapshot = [&] {
    std::vector<Cost> values;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 2; j <= n; ++j) {
        for (std::size_t pp = i; pp < j; ++pp) {
          for (std::size_t q = pp + 1; q <= j; ++q) {
            if (pp == i && q == j) continue;
            values.push_back(solver.current_pw(i, j, pp, q));
          }
        }
      }
    }
    return values;
  };
  prev = snapshot();
  for (std::size_t iter = 0; iter < support::two_ceil_sqrt(n); ++iter) {
    (void)solver.step();
    const auto now = snapshot();
    ASSERT_EQ(now.size(), prev.size());
    for (std::size_t c = 0; c < now.size(); ++c) {
      ASSERT_LE(now[c], prev[c]) << "pw cell " << c << " increased";
    }
    prev = now;
  }
}

TEST(Stepping, WValuesAreMonotoneNonincreasing) {
  support::Rng rng(402);
  const std::size_t n = 16;
  const auto p = dp::OptimalBstProblem::random(n - 1, rng);
  SublinearSolver solver;
  solver.prepare(p);
  support::Grid2D<Cost> prev(n + 1, n + 1, kInfinity);
  for (std::size_t i = 0; i < n; ++i) prev(i, i + 1) = p.init(i);
  for (std::size_t iter = 0; iter < support::two_ceil_sqrt(n); ++iter) {
    (void)solver.step();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j <= n; ++j) {
        ASSERT_LE(solver.current_w(i, j), prev(i, j));
        prev(i, j) = solver.current_w(i, j);
      }
    }
  }
}

TEST(Stepping, IterationsBeyondTheFixedPointChangeNothing) {
  support::Rng rng(403);
  const std::size_t n = 14;
  const auto p = dp::MatrixChainProblem::random(n, rng);
  SublinearSolver solver;
  solver.prepare(p);
  // Drive to the fixed point.
  std::size_t guard = 0;
  while (solver.step().any_changed()) {
    ASSERT_LT(++guard, 100u);
  }
  // Extra iterations must be perfectly quiet.
  for (int extra = 0; extra < 3; ++extra) {
    const auto out = solver.step();
    EXPECT_EQ(out.activate_changed, 0u);
    EXPECT_EQ(out.square_changed, 0u);
    EXPECT_EQ(out.pebble_changed, 0u);
  }
  EXPECT_EQ(solver.current_w(0, n), dp::solve_sequential(p).cost);
}

TEST(Stepping, OutcomeCountsMatchTraceEntries) {
  support::Rng rng(404);
  const auto p = dp::MatrixChainProblem::random(10, rng);
  SublinearSolver solver;
  solver.prepare(p);
  for (int iter = 0; iter < 5; ++iter) {
    const auto out = solver.step();
    (void)out;
  }
  const auto result = solver.finish();
  ASSERT_EQ(result.trace.size(), 5u);
  for (std::size_t t = 0; t < result.trace.size(); ++t) {
    EXPECT_EQ(result.trace[t].iteration, t + 1);
  }
  EXPECT_EQ(result.iterations, 5u);
}

TEST(Stepping, LifecycleGuardsBeforePrepare) {
  // The stepping interface is guarded: using it before prepare() must
  // fail with a SUBDP_REQUIRE diagnostic, not dereference a null engine.
  SublinearSolver solver;
  EXPECT_THROW((void)solver.step(), std::invalid_argument);
  EXPECT_THROW((void)solver.finish(), std::invalid_argument);
  EXPECT_THROW((void)solver.current_w(0, 1), std::invalid_argument);
  EXPECT_THROW((void)solver.current_pw(0, 2, 0, 1), std::invalid_argument);
  EXPECT_EQ(solver.iterations_done(), 0u);
  EXPECT_EQ(solver.pw_cell_count(), 0u);
}

TEST(Stepping, LifecycleGuardsAfterFinish) {
  support::Rng rng(405);
  const auto p = dp::MatrixChainProblem::random(12, rng);
  SublinearSolver solver;
  solver.prepare(p);
  (void)solver.step();
  const auto result = solver.finish();
  EXPECT_EQ(result.iterations, 1u);
  // After finish() the cycle is closed: stepping or reading again
  // without a fresh prepare() must fail, not act on stale state (the
  // prepared problem may be long dead by now).
  EXPECT_THROW((void)solver.step(), std::invalid_argument);
  EXPECT_THROW((void)solver.finish(), std::invalid_argument);
  EXPECT_THROW((void)solver.current_w(0, 12), std::invalid_argument);
  EXPECT_THROW((void)solver.current_pw(0, 12, 0, 1),
               std::invalid_argument);
  // A new prepare() reopens the cycle on the same solver.
  solver.prepare(p);
  (void)solver.step();
  EXPECT_EQ(solver.current_w(0, 1), p.init(0));
  const auto again = solver.finish();
  EXPECT_EQ(again.iterations, 1u);
  EXPECT_EQ(again.cost, result.cost);
}

TEST(Stepping, SolveClosesTheSteppingCycle) {
  support::Rng rng(412);
  const auto p = dp::MatrixChainProblem::random(12, rng);
  SublinearSolver solver;
  const auto direct = solver.solve(p);
  EXPECT_EQ(direct.cost, dp::solve_sequential(p).cost);
  // solve() packages its own finish(); the stepping cycle is closed.
  EXPECT_THROW((void)solver.finish(), std::invalid_argument);
  EXPECT_THROW((void)solver.step(), std::invalid_argument);
  // Counters stay readable after the cycle closes.
  EXPECT_EQ(solver.iterations_done(), direct.iterations);
  EXPECT_EQ(solver.pw_cell_count(), solver.plan()->pw_cell_count());
}

TEST(Stepping, SessionLifecycleGuards) {
  support::Rng rng(413);
  const auto p = dp::MatrixChainProblem::random(10, rng);
  auto plan = SolvePlan::create(10);
  SolveSession session(plan);
  // Idle session: nothing prepared yet.
  EXPECT_THROW((void)session.step(), std::invalid_argument);
  EXPECT_THROW((void)session.finish(), std::invalid_argument);
  EXPECT_THROW((void)session.current_w(0, 1), std::invalid_argument);
  // Wrong shape: the plan serves n == 10 only.
  const auto p12 = dp::MatrixChainProblem::random(12, rng);
  EXPECT_THROW(session.reset(p12), std::invalid_argument);
  // Prepared -> finished -> guarded again.
  session.reset(p);
  (void)session.step();
  (void)session.finish();
  EXPECT_THROW((void)session.step(), std::invalid_argument);
  EXPECT_THROW((void)session.current_w(0, 1), std::invalid_argument);
  session.reset(p);
  EXPECT_EQ(session.solve(p).cost, dp::solve_sequential(p).cost);
}

TEST(Stepping, AccessorsRejectBadCoordinates) {
  support::Rng rng(406);
  const auto p = dp::MatrixChainProblem::random(8, rng);
  SublinearSolver solver;
  solver.prepare(p);
  EXPECT_THROW((void)solver.current_w(3, 3), std::invalid_argument);
  EXPECT_THROW((void)solver.current_w(0, 9), std::invalid_argument);
  EXPECT_THROW((void)solver.current_pw(2, 6, 1, 4), std::invalid_argument);
  EXPECT_THROW((void)solver.current_pw(0, 8, 4, 4), std::invalid_argument);
}

TEST(Stepping, IdentityPwIsAlwaysZero) {
  support::Rng rng(407);
  const auto p = dp::MatrixChainProblem::random(9, rng);
  SublinearSolver solver;
  solver.prepare(p);
  (void)solver.step();
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = i + 1; j <= 9; ++j) {
      EXPECT_EQ(solver.current_pw(i, j, i, j), 0);
    }
  }
}

TEST(Stepping, EffectiveBandDefaultsToPaperChoice) {
  support::Rng rng(408);
  const auto p = dp::MatrixChainProblem::random(20, rng);
  SublinearSolver solver;
  solver.prepare(p);
  EXPECT_EQ(solver.effective_band(), support::two_ceil_sqrt(20));
  EXPECT_EQ(solver.iteration_bound(), support::two_ceil_sqrt(20));

  SublinearOptions custom;
  custom.band_width = 5;
  SublinearSolver s2(custom);
  s2.prepare(p);
  EXPECT_EQ(s2.effective_band(), 5u);
}

TEST(Stepping, BandIsClampedToN) {
  support::Rng rng(409);
  const auto p = dp::MatrixChainProblem::random(4, rng);
  SublinearOptions options;
  options.band_width = 1000;
  SublinearSolver solver(options);
  solver.prepare(p);
  EXPECT_EQ(solver.effective_band(), 4u);
  EXPECT_EQ(solver.solve(p).cost, dp::solve_sequential(p).cost);
}

TEST(Stepping, MachineLedgerGrowsPerStep) {
  support::Rng rng(410);
  const auto p = dp::MatrixChainProblem::random(10, rng);
  SublinearSolver solver;
  solver.prepare(p);
  const auto before = solver.machine().costs().step_count();
  (void)solver.step();
  EXPECT_EQ(solver.machine().costs().step_count(), before + 3);
}

TEST(Stepping, PrepareResetsStateBetweenInstances) {
  support::Rng rng(411);
  const auto a = dp::MatrixChainProblem::random(10, rng);
  const auto b = dp::MatrixChainProblem::random(10, rng);
  SublinearSolver solver;
  const auto ra = solver.solve(a);
  const auto rb = solver.solve(b);
  // Fresh ledger per solve and fresh state (independent results).
  EXPECT_EQ(rb.cost, dp::solve_sequential(b).cost);
  EXPECT_EQ(ra.cost, dp::solve_sequential(a).cost);
}

}  // namespace
}  // namespace subdp::core
