// Unit tests for the PRAM simulator facade (pram/machine.hpp).

#include "pram/machine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace subdp::pram {
namespace {

TEST(Machine, StepRunsEveryLogicalProcessor) {
  Machine m;
  std::vector<std::atomic<int>> hits(500);
  m.step("touch", 500, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
    return std::uint64_t{1};
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Machine, WorkIsSumOfReportedOps) {
  Machine m;
  const auto work = m.step("varops", 10, [](std::int64_t i) {
    return static_cast<std::uint64_t>(i);  // 0 + 1 + ... + 9 = 45
  });
  EXPECT_EQ(work, 45u);
  EXPECT_EQ(m.costs().total_work(), 45u);
}

TEST(Machine, DepthChargesLogOfWidestReduction) {
  Machine m;
  m.step("map", 100, [](std::int64_t) { return std::uint64_t{1}; });
  EXPECT_EQ(m.costs().total_depth(), 1u);  // unit-work processors
  m.step("reduce", 4, [](std::int64_t) { return std::uint64_t{8}; });
  // widest = 8 candidates -> depth 1 + ceil(log2 8) = 4.
  EXPECT_EQ(m.costs().total_depth(), 1u + 4u);
}

TEST(Machine, EmptyStepRecordsNothing) {
  Machine m;
  EXPECT_EQ(m.step("empty", 0, [](std::int64_t) { return std::uint64_t{1}; }),
            0u);
  EXPECT_EQ(m.costs().step_count(), 0u);
}

TEST(Machine, CostRecordingCanBeDisabled) {
  MachineOptions opts;
  opts.record_costs = false;
  Machine m(opts);
  m.step("s", 10, [](std::int64_t) { return std::uint64_t{1}; });
  EXPECT_EQ(m.costs().step_count(), 0u);
}

TEST(Machine, CrewCheckerAbsentByDefault) {
  Machine m;
  EXPECT_EQ(m.crew(), nullptr);
  m.note_write(3);  // must be a harmless no-op
}

TEST(Machine, CrewCheckerFlagsConflictingStep) {
  MachineOptions opts;
  opts.check_crew = true;
  opts.backend = Backend::kSerial;
  Machine m(opts);
  m.step("conflict", 10, [&](std::int64_t) {
    m.note_write(42);  // every processor writes the same cell
    return std::uint64_t{1};
  });
  ASSERT_NE(m.crew(), nullptr);
  EXPECT_GE(m.crew()->violation_count(), 1u);
}

TEST(Machine, CrewCheckerPassesOwnerComputesStep) {
  MachineOptions opts;
  opts.check_crew = true;
  Machine m(opts);
  m.step("owner", 100, [&](std::int64_t i) {
    m.note_write(static_cast<std::uint64_t>(i));
    return std::uint64_t{1};
  });
  EXPECT_EQ(m.crew()->violation_count(), 0u);
}

TEST(Machine, ResetClearsLedgerAndCrew) {
  MachineOptions opts;
  opts.check_crew = true;
  Machine m(opts);
  m.step("s", 10, [&](std::int64_t) {
    m.note_write(1);
    return std::uint64_t{1};
  });
  m.reset();
  EXPECT_EQ(m.costs().step_count(), 0u);
  EXPECT_EQ(m.crew()->violation_count(), 0u);
}

class MachineBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(MachineBackendTest, WorkCountIsBackendIndependent) {
  MachineOptions opts;
  opts.backend = GetParam();
  Machine m(opts);
  const auto work = m.step("w", 1000, [](std::int64_t i) {
    return static_cast<std::uint64_t>(i % 7);
  });
  std::uint64_t expected = 0;
  for (std::int64_t i = 0; i < 1000; ++i) {
    expected += static_cast<std::uint64_t>(i % 7);
  }
  EXPECT_EQ(work, expected);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, MachineBackendTest,
                         ::testing::Values(Backend::kSerial,
                                           Backend::kThreadPool,
                                           Backend::kOpenMP));

}  // namespace
}  // namespace subdp::pram
