// End-to-end tests through the public API (core/api.hpp): all three
// motivating applications, tree extraction, and statistics plumbing.

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/polygon_triangulation.hpp"
#include "dp/sequential.hpp"
#include "dp/tables.hpp"
#include "support/rng.hpp"

namespace subdp {
namespace {

TEST(Api, MatrixChainEndToEnd) {
  const auto p = dp::MatrixChainProblem::clrs_example();
  const auto solution = core::solve(p);
  EXPECT_EQ(solution.cost, 15125);
  EXPECT_TRUE(solution.tree.validate());
  EXPECT_EQ(solution.tree.leaf_count(), 6u);
  EXPECT_EQ(dp::tree_weight(p, solution.tree), 15125);
  EXPECT_GT(solution.pram_work, 0u);
  EXPECT_GT(solution.pram_depth, 0u);
  EXPECT_LE(solution.iterations, solution.iteration_bound);
}

TEST(Api, ClrsOptimalParenthesization) {
  // CLRS 15.2: the optimal parenthesization is ((A1(A2A3))((A4A5)A6)),
  // i.e. root split after matrix 3, left subtree splits after matrix 1,
  // right subtree after matrix 5.
  const auto p = dp::MatrixChainProblem::clrs_example();
  const auto solution = core::solve(p);
  const auto& t = solution.tree;
  ASSERT_FALSE(t.is_leaf(t.root()));
  EXPECT_EQ(t.split(t.root()), 3u);
  EXPECT_EQ(t.split(t.left(t.root())), 1u);
  EXPECT_EQ(t.split(t.right(t.root())), 5u);
}

TEST(Api, OptimalBstEndToEnd) {
  const auto p = dp::OptimalBstProblem::clrs_example();
  const auto solution = core::solve(p);
  EXPECT_EQ(solution.cost, 235);
  EXPECT_EQ(dp::tree_weight(p, solution.tree), 235);
  // CLRS: k2 is the optimal root, i.e. the root split is at gap 2.
  EXPECT_EQ(solution.tree.split(solution.tree.root()), 2u);
}

TEST(Api, TriangulationEndToEnd) {
  support::Rng rng(101);
  const auto p = dp::PolygonTriangulationProblem::random_convex(12, rng);
  const auto solution = core::solve(p);
  EXPECT_EQ(solution.cost, dp::solve_sequential(p).cost);
  EXPECT_EQ(dp::tree_weight(p, solution.tree), solution.cost);
}

TEST(Api, SingleObjectInstance) {
  const dp::MatrixChainProblem p({7, 9});
  const auto solution = core::solve(p);
  EXPECT_EQ(solution.cost, 0);
  EXPECT_EQ(solution.tree.leaf_count(), 1u);
  EXPECT_EQ(solution.iterations, 0u);
}

TEST(Api, OptionsArePassedThrough) {
  support::Rng rng(102);
  const auto p = dp::MatrixChainProblem::random(16, rng);
  core::SublinearOptions options;
  options.variant = core::PwVariant::kDense;
  options.termination = core::TerminationMode::kFixedBound;
  const auto solution = core::solve(p, options);
  EXPECT_EQ(solution.iterations, solution.iteration_bound);
  EXPECT_EQ(solution.cost, dp::solve_sequential(p).cost);
}

TEST(Api, TreesFromAllSolversAgreeOnCost) {
  support::Rng rng(103);
  for (int rep = 0; rep < 5; ++rep) {
    const auto p = dp::MatrixChainProblem::random(14, rng);
    const auto seq = dp::solve_sequential(p);
    const auto seq_tree = dp::extract_tree(seq);
    const auto solution = core::solve(p);
    // Optimal trees may differ under ties, but weights must agree.
    EXPECT_EQ(dp::tree_weight(p, seq_tree), dp::tree_weight(p, solution.tree));
  }
}

TEST(Api, WorkGrowsWithInstanceSize) {
  support::Rng rng(104);
  const auto small = core::solve(dp::MatrixChainProblem::random(8, rng));
  const auto large = core::solve(dp::MatrixChainProblem::random(32, rng));
  EXPECT_GT(large.pram_work, small.pram_work);
}

}  // namespace
}  // namespace subdp
