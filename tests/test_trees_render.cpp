// Tests for the ASCII tree renderer (trees/render.hpp).

#include "trees/render.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/rng.hpp"
#include "trees/generators.hpp"

namespace subdp::trees {
namespace {

std::size_t count_lines(const std::string& s) {
  std::size_t lines = 0;
  for (const char c : s) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST(Render, SingleLeaf) {
  const auto t = FullBinaryTree::build(1, {});
  const auto out = render_sideways(t);
  EXPECT_EQ(count_lines(out), 1u);
  EXPECT_NE(out.find("(0,1)"), std::string::npos);
}

TEST(Render, OneLinePerNode) {
  support::Rng rng(71);
  for (const std::size_t n : {2u, 5u, 12u}) {
    const auto t = make_tree(TreeShape::kRandom, n, &rng);
    const auto out = render_sideways(t);
    EXPECT_EQ(count_lines(out), t.node_count()) << "n=" << n;
  }
}

TEST(Render, EveryIntervalAppears) {
  const auto t = make_tree(TreeShape::kZigzag, 6);
  const auto out = render_sideways(t);
  for (NodeId x = 0; static_cast<std::size_t>(x) < t.node_count(); ++x) {
    const std::string label =
        "(" + std::to_string(t.lo(x)) + "," + std::to_string(t.hi(x)) + ")";
    EXPECT_NE(out.find(label), std::string::npos) << label;
  }
}

TEST(Render, DecoratorOutputIsAttached) {
  const auto t = make_tree(TreeShape::kComplete, 4);
  const auto out = render_sideways(
      t, [&](NodeId x) { return t.is_leaf(x) ? "LEAF" : "INNER"; });
  // 4 leaves and 3 internal nodes.
  std::size_t leaves = 0, inner = 0;
  for (std::size_t pos = out.find("LEAF"); pos != std::string::npos;
       pos = out.find("LEAF", pos + 1)) {
    ++leaves;
  }
  for (std::size_t pos = out.find("INNER"); pos != std::string::npos;
       pos = out.find("INNER", pos + 1)) {
    ++inner;
  }
  EXPECT_EQ(leaves, 4u);
  EXPECT_EQ(inner, 3u);
}

TEST(Render, RootIsUnindented) {
  const auto t = make_tree(TreeShape::kComplete, 8);
  const auto out = render_sideways(t);
  // The root line starts at column 0 with its interval.
  EXPECT_NE(out.find("\n(0,8)"), std::string::npos);
}

}  // namespace
}  // namespace subdp::trees
