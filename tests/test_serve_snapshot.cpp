// Service-level tests of plan snapshot persistence
// (`ServiceOptions::snapshot_dir`): a cold service writes its built plans
// back to the store, a restarted service prewarms from the manifest and
// serves its first requests with zero cold-path work, post-eviction
// re-requests reload from disk instead of rebuilding, corrupt snapshots
// degrade to a rebuild that repairs the file, and every result a
// snapshot-backed service produces is bit-identical to a fresh-built one.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dp/matrix_chain.hpp"
#include "dp/sequential.hpp"
#include "serve/solver_service.hpp"
#include "snapshot/snapshot_store.hpp"
#include "support/rng.hpp"

namespace subdp::serve {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() / ("subdp-serve-snap-" + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

dp::MatrixChainProblem chain(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return dp::MatrixChainProblem::random(n, rng);
}

ServiceOptions snapshot_options(const std::string& dir) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.snapshot_dir = dir;
  return opts;
}

void expect_identical(const core::SublinearResult& ref,
                      const core::SublinearResult& got,
                      const std::string& label) {
  EXPECT_EQ(ref.cost, got.cost) << label;
  EXPECT_EQ(ref.iterations, got.iterations) << label;
  EXPECT_TRUE(ref.w == got.w) << label << ": w tables differ";
}

std::vector<fs::path> snapshot_files(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".snap") files.push_back(entry.path());
  }
  return files;
}

TEST(ServeSnapshot, ColdServicePopulatesStoreRestartPrewarms) {
  TempDir dir("prewarm");
  const auto p16 = chain(16, 7);
  const auto p20 = chain(20, 8);
  core::SublinearResult cold16, cold20;

  {
    // Generation 1: empty store, both shapes are snapshot misses that
    // build geometry and write back asynchronously.
    SolverService service(snapshot_options(dir.str()));
    ASSERT_NE(service.snapshot_store(), nullptr);
    cold16 = service.submit(p16).get();
    cold20 = service.submit(p20).get();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.shapes_prewarmed, 0u);
    EXPECT_EQ(stats.snapshot_hits, 0u);
    EXPECT_EQ(stats.snapshot_misses, 2u);
    EXPECT_EQ(stats.snapshot_write_failures, 0u);
    service.snapshot_store()->flush();
    EXPECT_EQ(service.snapshot_store()->stats().writes_completed, 2u);
    service.snapshot_store()->write_manifest({16, 20});
  }
  EXPECT_EQ(cold16.cost, dp::solve_sequential(p16).cost);
  EXPECT_EQ(cold20.cost, dp::solve_sequential(p20).cost);
  EXPECT_EQ(snapshot_files(dir.path()).size(), 2u);

  {
    // Generation 2: the manifest prewarms both shapes from disk before
    // the first request — no geometry build, no cold deferral.
    SolverService service(snapshot_options(dir.str()));
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.shapes_prewarmed, 2u);
    EXPECT_EQ(stats.snapshot_hits, 2u);
    EXPECT_EQ(stats.snapshot_misses, 0u);
    EXPECT_EQ(stats.plan_cache.misses, 2u);  // prewarm resolves = misses
    EXPECT_EQ(stats.plan_cache.size, 2u);

    const auto warm16 = service.submit(p16).get();
    const auto warm20 = service.submit(p20).get();
    expect_identical(cold16, warm16, "n=16 prewarmed");
    expect_identical(cold20, warm20, "n=20 prewarmed");

    stats = service.stats();
    EXPECT_EQ(stats.plan_cache.hits, 2u);    // warm entries, no rebuild
    EXPECT_EQ(stats.jobs_cold_deferred, 0u); // zero cold-path stalls
    EXPECT_GE(stats.snapshot_hits + stats.snapshot_misses,
              stats.plan_cache.misses);
    EXPECT_EQ(stats.jobs_submitted, stats.jobs_completed);
  }
}

TEST(ServeSnapshot, EvictionReloadIsASnapshotHit) {
  // PlanCache eviction drops only the in-memory entry; the disk tier
  // keeps the file, so a re-requested evicted shape reloads instead of
  // rebuilding.
  TempDir dir("evict");
  ServiceOptions opts = snapshot_options(dir.str());
  opts.plan_capacity = 1;
  SolverService service(opts);
  const auto pa = chain(14, 3);
  const auto pb = chain(18, 4);

  const auto a1 = service.submit(pa).get();
  service.snapshot_store()->flush();  // shape-14 snapshot installed
  const auto b1 = service.submit(pb).get();  // capacity 1: evicts shape 14
  ServiceStats stats = service.stats();
  EXPECT_GE(stats.plan_cache.evictions, 1u);
  EXPECT_EQ(stats.snapshot_hits, 0u);

  const auto a2 = service.submit(pa).get();  // cache miss, snapshot hit
  stats = service.stats();
  EXPECT_GE(stats.snapshot_hits, 1u);
  expect_identical(a1, a2, "post-eviction reload");
  EXPECT_EQ(b1.cost, dp::solve_sequential(pb).cost);
}

TEST(ServeSnapshot, CorruptSnapshotDegradesToRebuildAndRepairs) {
  TempDir dir("corrupt");
  const auto p = chain(16, 9);
  core::SublinearResult cold;
  {
    SolverService service(snapshot_options(dir.str()));
    cold = service.submit(p).get();
    service.snapshot_store()->flush();
    service.snapshot_store()->write_manifest({16});
  }
  // Flip one payload byte in the installed snapshot.
  const auto files = snapshot_files(dir.path());
  ASSERT_EQ(files.size(), 1u);
  {
    std::fstream f(files.front(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(170);
    char byte = 0;
    f.get(byte);
    f.seekp(170);
    f.put(static_cast<char>(byte ^ 0x40));
  }
  {
    // Generation 2: the prewarm load rejects the corrupt file, rebuilds
    // from scratch (prewarm still succeeds), and the write-back repairs
    // the file.
    SolverService service(snapshot_options(dir.str()));
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.shapes_prewarmed, 1u);
    EXPECT_EQ(stats.snapshot_hits, 0u);
    EXPECT_EQ(stats.snapshot_misses, 1u);
    EXPECT_EQ(service.snapshot_store()->stats().rejected, 1u);
    const auto rebuilt = service.submit(p).get();
    expect_identical(cold, rebuilt, "rebuild after corruption");
    service.snapshot_store()->flush();
  }
  {
    // Generation 3: the repaired file loads cleanly.
    SolverService service(snapshot_options(dir.str()));
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.snapshot_hits, 1u);
    EXPECT_EQ(service.snapshot_store()->stats().rejected, 0u);
    const auto warm = service.submit(p).get();
    expect_identical(cold, warm, "repaired snapshot");
  }
}

TEST(ServeSnapshot, SolveAllThroughSnapshotBackedService) {
  // The blocking batch surface takes the same snapshot-backed build path
  // as submit: generation 2 resolves every shape from disk.
  TempDir dir("batch");
  const auto p12 = chain(12, 1);
  const auto p15 = chain(15, 2);
  const auto p12b = chain(12, 5);
  const std::vector<const dp::Problem*> problems{&p12, &p15, &p12b};
  core::BatchResult cold;
  {
    SolverService service(snapshot_options(dir.str()));
    cold = service.solve_all(problems);
    service.snapshot_store()->flush();
    service.snapshot_store()->write_manifest({12, 15});
  }
  {
    SolverService service(snapshot_options(dir.str()));
    EXPECT_EQ(service.stats().snapshot_hits, 2u);
    const core::BatchResult warm = service.solve_all(problems);
    ASSERT_EQ(warm.results.size(), cold.results.size());
    for (std::size_t i = 0; i < warm.results.size(); ++i) {
      expect_identical(cold.results[i], warm.results[i],
                       "batch instance " + std::to_string(i));
    }
    EXPECT_EQ(service.stats().plan_cache.misses, 2u);  // prewarm only
  }
}

TEST(ServeSnapshot, NoStoreMeansZeroSnapshotCounters) {
  // Without `snapshot_dir` the persistence tier does not exist: every
  // snapshot counter stays zero however much the service works.
  SolverService service(ServiceOptions{});
  EXPECT_EQ(service.snapshot_store(), nullptr);
  const auto p = chain(12, 6);
  EXPECT_EQ(service.submit(p).get().cost, dp::solve_sequential(p).cost);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.snapshot_hits, 0u);
  EXPECT_EQ(stats.snapshot_misses, 0u);
  EXPECT_EQ(stats.snapshot_write_failures, 0u);
  EXPECT_EQ(stats.shapes_prewarmed, 0u);
}

TEST(ServeSnapshot, PlanCacheConsultsStoreExactlyOncePerBuild) {
  // The accounting invariant from the ServiceStats doc: with a store,
  // every plan construction consults it exactly once, so
  // hits + misses >= plan_cache.misses, and admission accounting is
  // untouched by where plans come from.
  TempDir dir("accounting");
  SolverService service(snapshot_options(dir.str()));
  const auto p10 = chain(10, 11);
  const auto p13 = chain(13, 12);
  (void)service.submit(p10).get();
  (void)service.submit(p13).get();
  (void)service.submit(p10).get();  // warm: no store consultation
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.snapshot_hits + stats.snapshot_misses,
            stats.plan_cache.misses);
  EXPECT_EQ(stats.plan_cache.misses, 2u);
  EXPECT_EQ(stats.plan_cache.hits, 1u);
  EXPECT_EQ(stats.jobs_submitted, 3u);
  EXPECT_EQ(stats.jobs_completed, 3u);
  EXPECT_EQ(stats.jobs_rejected + stats.jobs_expired, 0u);
}

}  // namespace
}  // namespace subdp::serve
