// Tests for the Fig. 1 chain decomposition (trees/chain_decomposition.hpp):
// the structural bounds used in the proof of Lemma 3.3 must hold for every
// node of every tree shape.

#include "trees/chain_decomposition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trees/generators.hpp"

namespace subdp::trees {
namespace {

TEST(ChainDecomposition, LeafHasTrivialChain) {
  const auto t = FullBinaryTree::build(1, {});
  const auto d = decompose(t, t.root());
  EXPECT_EQ(d.i, 0u);
  ASSERT_EQ(d.chain.size(), 1u);
  EXPECT_EQ(d.chain[0], t.root());
  EXPECT_TRUE(verify_chain_bounds(t, d));
}

TEST(ChainDecomposition, IndexIsTheSquareBand) {
  // i is defined by i^2 < size <= (i+1)^2.
  const auto t = make_tree(TreeShape::kComplete, 100);
  const auto d = decompose(t, t.root());
  EXPECT_EQ(d.i, 9u);  // 81 < 100 <= 100
}

TEST(ChainDecomposition, ChainStartsAtTheNode) {
  support::Rng rng(1);
  const auto t = make_tree(TreeShape::kRandom, 50, &rng);
  for (NodeId x = 0; static_cast<std::size_t>(x) < t.node_count(); ++x) {
    const auto d = decompose(t, x);
    ASSERT_FALSE(d.chain.empty());
    EXPECT_EQ(d.chain.front(), x);
  }
}

TEST(ChainDecomposition, ChainIsAHeavyPath) {
  support::Rng rng(2);
  const auto t = make_tree(TreeShape::kBiasedRandom, 80, &rng);
  const auto d = decompose(t, t.root());
  if (d.i >= 2) {
    for (std::size_t idx = 1; idx < d.chain.size(); ++idx) {
      EXPECT_EQ(t.parent(d.chain[idx]), d.chain[idx - 1]);
      EXPECT_GT(t.size(d.chain[idx]), d.i * d.i);
    }
  }
}

TEST(ChainDecomposition, SkewedTreeHasLongestAllowedChain) {
  // On a chain-shaped (skewed) tree, the chain walks until the subtree
  // size drops to i^2 + 1: length = size - i^2 <= 2i + 1.
  const std::size_t n = 100;  // i = 9
  const auto t = make_tree(TreeShape::kLeftSkewed, n);
  const auto d = decompose(t, t.root());
  EXPECT_EQ(d.i, 9u);
  EXPECT_EQ(d.chain.size(), n - 81u);  // 19 = 2i + 1
  EXPECT_TRUE(verify_chain_bounds(t, d));
}

TEST(ChainDecomposition, OffChainSizesAreSmall) {
  support::Rng rng(3);
  const auto t = make_tree(TreeShape::kRandom, 400, &rng);
  const auto d = decompose(t, t.root());
  if (d.i >= 2) {
    const auto off_total =
        std::accumulate(d.off_chain_sizes.begin(), d.off_chain_sizes.end(),
                        std::size_t{0});
    EXPECT_LE(off_total, 2 * d.i);
    for (const auto s : d.off_chain_sizes) EXPECT_LE(s, d.i * d.i);
  }
}

struct ChainParam {
  TreeShape shape;
  std::size_t n;
  std::uint64_t seed;
};

class ChainBoundsTest : public ::testing::TestWithParam<ChainParam> {};

TEST_P(ChainBoundsTest, BoundsHoldForEveryNode) {
  const auto [shape, n, seed] = GetParam();
  support::Rng rng(seed);
  const auto t = make_tree(shape, n, &rng);
  for (NodeId x = 0; static_cast<std::size_t>(x) < t.node_count(); ++x) {
    const auto d = decompose(t, x);
    ASSERT_TRUE(verify_chain_bounds(t, d))
        << to_string(shape) << " n=" << n << " node=" << x
        << " size=" << t.size(x) << " i=" << d.i
        << " chain_len=" << d.chain.size();
  }
}

std::vector<ChainParam> chain_params() {
  std::vector<ChainParam> params;
  std::uint64_t seed = 50;
  for (const TreeShape s : kAllShapes) {
    for (const std::size_t n : {2u, 5u, 17u, 64u, 100u, 333u}) {
      params.push_back({s, n, seed++});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, ChainBoundsTest, ::testing::ValuesIn(chain_params()),
    [](const ::testing::TestParamInfo<ChainParam>& info) {
      std::string name = to_string(info.param.shape);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_" + std::to_string(info.param.n);
    });

}  // namespace
}  // namespace subdp::trees
