// The Sec. 4 correctness argument, executed literally: run the pebbling
// game on a known optimal tree in lock-step with the algorithm and check
// the synchronisation claims the proof relies on (with the one-iteration
// lag the paper states):
//   (a) if the game has pebbled node (i,j) after move k, then after the
//       (k+1)st a-pebble the algorithm's w'(i,j) equals the optimum;
//   (b) if cond((i,j)) = (p,q) after move k, then after the (k+1)st
//       a-square the algorithm's pw'(i,j,p,q) is finite (a concrete
//       partial tree has been accounted) and never below the true
//       partial weight.

#include <gtest/gtest.h>

#include <vector>

#include "core/sublinear_solver.hpp"
#include "dp/sequential.hpp"
#include "dp/tree_shaped.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trees/generators.hpp"
#include "trees/pebble_game.hpp"

namespace subdp::core {
namespace {

struct CosimParam {
  trees::TreeShape shape;
  std::size_t n;
  std::uint64_t seed;
};

class CosimTest : public ::testing::TestWithParam<CosimParam> {};

TEST_P(CosimTest, GamePebbleImpliesAlgorithmConvergence) {
  const auto [shape, n, seed] = GetParam();
  support::Rng rng(seed);
  const auto target = trees::make_tree(shape, n, &rng);
  auto inst = dp::make_tree_shaped_instance(target, rng);
  const auto expected = dp::solve_sequential(inst.problem);
  ASSERT_EQ(expected.cost, inst.optimal_cost);

  trees::PebbleGame game(target, trees::SquareRule::kOneLevel);
  SublinearOptions options;
  options.variant = PwVariant::kDense;  // full Sec. 2 algorithm
  SublinearSolver solver(options);
  solver.prepare(inst.problem);

  std::vector<bool> pebbled_before(target.node_count(), false);
  const std::size_t bound = support::two_ceil_sqrt(n) + 1;
  for (std::size_t iter = 1; iter <= bound; ++iter) {
    const bool root_was_pebbled = game.root_pebbled();
    if (!root_was_pebbled) game.move();
    (void)solver.step();
    // Sec. 4 claim (a): nodes the game had pebbled after the previous
    // move have converged w' after this iteration's a-pebble.
    for (trees::NodeId x = 0;
         static_cast<std::size_t>(x) < target.node_count(); ++x) {
      if (!pebbled_before[static_cast<std::size_t>(x)]) continue;
      const std::size_t i = target.lo(x);
      const std::size_t j = target.hi(x);
      if (j - i < 2) continue;  // leaves are initialisation
      ASSERT_EQ(solver.current_w(i, j), expected.c(i, j))
          << "iteration " << iter << ": game pebbled (" << i << "," << j
          << ") a move ago but w' has not converged";
    }
    for (trees::NodeId x = 0;
         static_cast<std::size_t>(x) < target.node_count(); ++x) {
      pebbled_before[static_cast<std::size_t>(x)] = game.pebbled(x);
    }
    if (root_was_pebbled) break;
  }
  EXPECT_TRUE(game.root_pebbled());
  EXPECT_EQ(solver.current_w(0, n), inst.optimal_cost);
}

TEST_P(CosimTest, CondPointerImpliesPartialWeightIsAccounted) {
  const auto [shape, n, seed] = GetParam();
  support::Rng rng(seed + 1);
  const auto target = trees::make_tree(shape, n, &rng);
  auto inst = dp::make_tree_shaped_instance(target, rng);
  const auto expected = dp::solve_sequential(inst.problem);

  trees::PebbleGame game(target, trees::SquareRule::kOneLevel);
  SublinearOptions options;
  options.variant = PwVariant::kDense;
  SublinearSolver solver(options);
  solver.prepare(inst.problem);

  // cond targets recorded after the previous move: (node, cond) pairs.
  std::vector<trees::NodeId> cond_before(target.node_count());
  for (trees::NodeId x = 0;
       static_cast<std::size_t>(x) < target.node_count(); ++x) {
    cond_before[static_cast<std::size_t>(x)] = x;
  }

  const std::size_t bound = support::two_ceil_sqrt(n) + 1;
  for (std::size_t iter = 1; iter <= bound; ++iter) {
    const bool done = game.root_pebbled();
    if (!done) game.move();
    (void)solver.step();
    for (trees::NodeId x = 0;
         static_cast<std::size_t>(x) < target.node_count(); ++x) {
      const trees::NodeId c = cond_before[static_cast<std::size_t>(x)];
      if (c == x) continue;
      const std::size_t i = target.lo(x), j = target.hi(x);
      const std::size_t p = target.lo(c), q = target.hi(c);
      const Cost pw_prime = solver.current_pw(i, j, p, q);
      ASSERT_TRUE(is_finite(pw_prime))
          << "iteration " << iter << ": cond((" << i << "," << j
          << ")) = (" << p << "," << q << ") a move ago but pw' is infinite";
      // Never below the true partial weight along the planted tree:
      // pw(i,j,p,q) = w(i,j) - w(p,q) for on-tree nodes.
      ASSERT_GE(pw_prime, expected.c(i, j) - expected.c(p, q));
    }
    for (trees::NodeId x = 0;
         static_cast<std::size_t>(x) < target.node_count(); ++x) {
      cond_before[static_cast<std::size_t>(x)] = game.cond(x);
    }
    if (done) break;
  }
}

std::vector<CosimParam> cosim_params() {
  std::vector<CosimParam> params;
  std::uint64_t seed = 500;
  for (const auto shape :
       {trees::TreeShape::kComplete, trees::TreeShape::kLeftSkewed,
        trees::TreeShape::kZigzag, trees::TreeShape::kRandom,
        trees::TreeShape::kBiasedRandom}) {
    for (const std::size_t n : {4u, 9u, 16u, 25u}) {
      params.push_back({shape, n, seed++});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CosimTest, ::testing::ValuesIn(cosim_params()),
    [](const ::testing::TestParamInfo<CosimParam>& info) {
      std::string name = to_string(info.param.shape);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_" + std::to_string(info.param.n);
    });

}  // namespace
}  // namespace subdp::core
