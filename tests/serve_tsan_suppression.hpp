#pragma once

/// \file serve_tsan_suppression.hpp
/// A narrow ThreadSanitizer suppression for tests that inspect
/// `core::AdmissionError`s carried through `std::future`s.
///
/// When a service worker resolves a promise with `set_exception` and the
/// caller rethrows it via `future.get()`, libstdc++ shares one heap
/// exception object between the two threads, lifetime-managed by the
/// atomic refcount inside `__cxa_refcounted_exception`. Those refcount
/// operations live in `eh_ptr.cc` / `eh_throw.cc` inside `libstdc++.so`,
/// which is *not* TSan-instrumented — so when the caller reads a field
/// of the caught exception (`e.kind()`) and the worker later drops the
/// last reference (freeing the object), TSan sees a read and a `free`
/// with no happens-before edge between them and reports a race. The
/// ordering is in fact guaranteed by the acq/rel refcount in
/// `exception_ptr::_M_release`; the report is a visibility artifact of
/// the uninstrumented standard library, not a bug in the service (the
/// same pattern is listed among upstream TSan's known libstdc++ blind
/// spots).
///
/// The suppression below matches exactly that release path and nothing
/// else, so genuine races in the serving layer still fail the TSan
/// presets. It is compiled into the test binary via TSan's
/// `__tsan_default_suppressions` hook, keeping ctest invocation free of
/// environment plumbing.

#if defined(__has_feature)
#define SUBDP_TSAN_ACTIVE __has_feature(thread_sanitizer)
#elif defined(__SANITIZE_THREAD__)
#define SUBDP_TSAN_ACTIVE 1
#else
#define SUBDP_TSAN_ACTIVE 0
#endif

#if SUBDP_TSAN_ACTIVE
extern "C" const char* __tsan_default_suppressions() {
  return "race:std::__exception_ptr::exception_ptr::_M_release\n";
}
#endif
