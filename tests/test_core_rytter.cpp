// Tests for the Rytter-style baseline (SquareMode::kRytterFull +
// core::solve_rytter): correctness on small instances, O(log n)
// iteration counts, and the work trade-off against the paper's square.

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/sequential.hpp"
#include "dp/tree_shaped.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trees/generators.hpp"

namespace subdp::core {
namespace {

TEST(Rytter, MatchesSequentialOnRandomInstances) {
  support::Rng rng(91);
  for (const std::size_t n : {2u, 3u, 5u, 8u, 12u}) {
    for (int rep = 0; rep < 3; ++rep) {
      const auto p = dp::MatrixChainProblem::random(n, rng);
      const auto result = solve_rytter(p);
      ASSERT_EQ(result.cost, dp::solve_sequential(p).cost)
          << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(Rytter, MatchesSequentialOnBsts) {
  support::Rng rng(92);
  const auto p = dp::OptimalBstProblem::random(11, rng);
  EXPECT_EQ(solve_rytter(p).cost, dp::solve_sequential(p).cost);
}

TEST(Rytter, ConvergesInLogarithmicIterationsOnZigzag) {
  // Full squaring doubles the handled path length every iteration, so
  // even the paper's worst-case shape converges in O(log n) iterations —
  // the move-count half of the trade-off (Sec. 3 discussion).
  support::Rng rng(93);
  for (const std::size_t n : {8u, 16u}) {
    auto inst = dp::make_tree_shaped_instance(
        trees::make_tree(trees::TreeShape::kZigzag, n), rng);
    const auto result = solve_rytter(inst.problem);
    EXPECT_EQ(result.cost, inst.optimal_cost);
    EXPECT_LE(result.iterations, 2 * support::ceil_log2(n) + 4) << "n=" << n;
  }
}

TEST(Rytter, FewerIterationsButMoreWorkThanHlvOnZigzag) {
  support::Rng rng(94);
  const std::size_t n = 16;
  auto inst = dp::make_tree_shaped_instance(
      trees::make_tree(trees::TreeShape::kZigzag, n), rng);

  SublinearOptions hlv_opts;
  hlv_opts.variant = PwVariant::kDense;
  hlv_opts.square_mode = SquareMode::kHlvOneLevel;
  hlv_opts.termination = TerminationMode::kFixedPoint;
  SublinearSolver hlv(hlv_opts);
  const auto hlv_result = hlv.solve(inst.problem);

  SublinearOptions ryt_opts;
  ryt_opts.variant = PwVariant::kDense;
  ryt_opts.square_mode = SquareMode::kRytterFull;
  ryt_opts.termination = TerminationMode::kFixedPoint;
  SublinearSolver ryt(ryt_opts);
  const auto ryt_result = ryt.solve(inst.problem);

  EXPECT_EQ(hlv_result.cost, ryt_result.cost);
  // Zigzag: Rytter needs fewer iterations...
  EXPECT_LT(ryt_result.iterations, hlv_result.iterations);
  // ...but each of its square steps costs far more work.
  const auto hlv_square =
      hlv.machine().costs().phase_totals().at("a-square");
  const auto ryt_square =
      ryt.machine().costs().phase_totals().at("a-square");
  EXPECT_GT(ryt_square.work / ryt_square.steps,
            2 * (hlv_square.work / hlv_square.steps));
}

TEST(Rytter, RefusesLargeInstances) {
  support::Rng rng(95);
  const auto p = dp::MatrixChainProblem::random(30, rng);
  EXPECT_THROW((void)solve_rytter(p), std::invalid_argument);
}

TEST(Rytter, AcceptsOptionsAndAssertsSquareMode) {
  support::Rng rng(97);
  const auto p = dp::MatrixChainProblem::random(10, rng);

  // solve_rytter shares the solver's options surface: tweaks like the
  // termination mode ride along, but the square mode is pinned.
  SublinearOptions options = rytter_options();
  options.termination = TerminationMode::kFixedBound;
  const auto full = solve_rytter(p, options);
  EXPECT_EQ(full.cost, dp::solve_sequential(p).cost);
  EXPECT_EQ(full.iterations, 4 * support::ceil_log2(10) + 8);

  SublinearOptions wrong = rytter_options();
  wrong.square_mode = SquareMode::kHlvOneLevel;
  EXPECT_THROW((void)solve_rytter(p, wrong), std::invalid_argument);
}

TEST(Rytter, MatchesEquivalentSolverConfiguration) {
  // The redesigned entry point routes through the same plan/session
  // machinery as SublinearSolver; identical options must give identical
  // results and traces.
  support::Rng rng(98);
  const auto p = dp::MatrixChainProblem::random(12, rng);
  const auto via_api = solve_rytter(p);
  SublinearSolver solver(rytter_options());
  const auto via_solver = solver.solve(p);
  EXPECT_EQ(via_api.cost, via_solver.cost);
  EXPECT_EQ(via_api.iterations, via_solver.iterations);
  EXPECT_TRUE(via_api.w == via_solver.w);
}

TEST(Rytter, ReachesFixedPoint) {
  support::Rng rng(96);
  const auto p = dp::MatrixChainProblem::random(10, rng);
  const auto result = solve_rytter(p);
  EXPECT_TRUE(result.reached_fixed_point);
}

}  // namespace
}  // namespace subdp::core
