// Unit tests for statistics and curve fitting (support/stats.hpp).

#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace subdp::support {
namespace {

TEST(Summary, KnownSample) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summary, EvenCountMedianAveragesMiddlePair) {
  const std::vector<double> xs{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(summarize(xs).median, 2.5);
}

TEST(Summary, EmptySampleIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, SingleElement) {
  const std::vector<double> xs{7.5};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.5);
}

TEST(FitLinear, RecoversExactLine) {
  const std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, NoisyLineStillClose) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 2.0 + 0.01 * (rng.uniform01() - 0.5));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-3);
  EXPECT_GT(fit.r_squared, 0.9999);
}

TEST(FitPowerLaw, RecoversPlantedExponent) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(std::pow(2.0, i / 2.0));
    ys.push_back(7.0 * std::pow(xs.back(), 1.5));
  }
  const LinearFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);  // the exponent
}

TEST(FitPowerLaw, RejectsNonPositiveInput) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{0, 2};
  EXPECT_THROW((void)fit_power_law(xs, ys), std::invalid_argument);
}

TEST(FitLogarithmic, RecoversPlantedCoefficients) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 16; ++i) {
    xs.push_back(std::pow(2.0, i));
    ys.push_back(4.0 + 2.0 * i);  // 4 + 2*log2(x)
  }
  const LinearFit fit = fit_logarithmic(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-9);
}

TEST(IntegerMath, CeilSqrtExactSquares) {
  EXPECT_EQ(ceil_sqrt(0), 0u);
  EXPECT_EQ(ceil_sqrt(1), 1u);
  EXPECT_EQ(ceil_sqrt(4), 2u);
  EXPECT_EQ(ceil_sqrt(9), 3u);
  EXPECT_EQ(ceil_sqrt(1 << 20), 1024u);
}

TEST(IntegerMath, CeilSqrtBetweenSquares) {
  EXPECT_EQ(ceil_sqrt(2), 2u);
  EXPECT_EQ(ceil_sqrt(3), 2u);
  EXPECT_EQ(ceil_sqrt(5), 3u);
  EXPECT_EQ(ceil_sqrt(10), 4u);
  EXPECT_EQ(ceil_sqrt(99), 10u);
  EXPECT_EQ(ceil_sqrt(101), 11u);
}

TEST(IntegerMath, CeilSqrtIsExactForAllSmallN) {
  for (std::size_t n = 1; n <= 5000; ++n) {
    const std::size_t r = ceil_sqrt(n);
    EXPECT_GE(r * r, n);
    EXPECT_LT((r - 1) * (r - 1), n);
  }
}

TEST(IntegerMath, TwoCeilSqrtMatchesPaperBound) {
  EXPECT_EQ(two_ceil_sqrt(16), 8u);
  EXPECT_EQ(two_ceil_sqrt(17), 10u);
}

TEST(IntegerMath, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

}  // namespace
}  // namespace subdp::support
