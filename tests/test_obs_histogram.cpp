// Unit tests of the log2-bucket LatencyHistogram: bucket boundary math
// (every power-of-two edge, zero, uint64 overflow bucket), snapshot
// counters, merge associativity, and quantile interpolation — the maths
// the service's p50/p95/p99 columns and the Prometheus surface rest on.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "obs/latency_histogram.hpp"

namespace subdp::obs {
namespace {

TEST(HistogramBuckets, ZeroGetsItsOwnBucket) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket_lo(0), 0u);
  EXPECT_EQ(histogram_bucket_hi(0), 0u);
}

TEST(HistogramBuckets, PowerOfTwoBoundaries) {
  // Bucket k >= 1 covers [2^(k-1), 2^k - 1]: both edges must land in k,
  // and the neighbours must not.
  for (std::size_t k = 1; k < kHistogramBuckets; ++k) {
    const std::uint64_t lo = histogram_bucket_lo(k);
    const std::uint64_t hi = histogram_bucket_hi(k);
    EXPECT_EQ(lo, std::uint64_t{1} << (k - 1)) << "bucket " << k;
    EXPECT_EQ(histogram_bucket(lo), k) << "lo edge of bucket " << k;
    EXPECT_EQ(histogram_bucket(hi), k) << "hi edge of bucket " << k;
    EXPECT_EQ(histogram_bucket(lo - 1), k - 1)
        << "below lo edge of bucket " << k;
  }
}

TEST(HistogramBuckets, EveryUint64ValueHasABucket) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(histogram_bucket(max), kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket_hi(kHistogramBuckets - 1), max);
  // The overflow-prone edge: 2^63 is the last bucket's lower bound.
  EXPECT_EQ(histogram_bucket(std::uint64_t{1} << 63),
            kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket_lo(kHistogramBuckets - 1),
            std::uint64_t{1} << 63);
}

TEST(LatencyHistogram, RecordFillsCountSumAndBuckets) {
  LatencyHistogram hist;
  hist.record(0);
  hist.record(1);
  hist.record(2);
  hist.record(3);
  hist.record(1000);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1006u);
  EXPECT_EQ(snap.buckets[0], 1u);  // the zero
  EXPECT_EQ(snap.buckets[1], 1u);  // 1
  EXPECT_EQ(snap.buckets[2], 2u);  // 2 and 3
  EXPECT_EQ(snap.buckets[10], 1u);  // 1000 in [512, 1023]
  EXPECT_DOUBLE_EQ(snap.mean(), 1006.0 / 5.0);
}

TEST(LatencyHistogram, EmptySnapshotQuantilesAreZero) {
  const HistogramSnapshot snap = LatencyHistogram().snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

TEST(HistogramSnapshot, MergeIsAssociativeAndCommutative) {
  LatencyHistogram a, b, c;
  for (std::uint64_t v : {0u, 1u, 7u, 100u}) a.record(v);
  for (std::uint64_t v : {3u, 3u, 90000u}) b.record(v);
  c.record(std::numeric_limits<std::uint64_t>::max());

  // (a + b) + c
  HistogramSnapshot left = a.snapshot();
  left.merge(b.snapshot());
  left.merge(c.snapshot());
  // a + (b + c)
  HistogramSnapshot right_inner = b.snapshot();
  right_inner.merge(c.snapshot());
  HistogramSnapshot right = a.snapshot();
  right.merge(right_inner);
  // b + a + c (commuted)
  HistogramSnapshot commuted = b.snapshot();
  commuted.merge(a.snapshot());
  commuted.merge(c.snapshot());

  EXPECT_EQ(left.count, 8u);
  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.sum, right.sum);
  EXPECT_EQ(left.buckets, right.buckets);
  EXPECT_EQ(left.buckets, commuted.buckets);
  EXPECT_EQ(left.sum, commuted.sum);
}

TEST(HistogramSnapshot, QuantileInterpolatesInsideTheMatchedBucket) {
  // 4 samples, all in bucket 7 ([64, 127]): the quantile walks to that
  // bucket and interpolates linearly across its [lo, hi] range.
  LatencyHistogram hist;
  for (int i = 0; i < 4; ++i) hist.record(100);
  const HistogramSnapshot snap = hist.snapshot();
  const double lo = 64.0;
  const double hi = 127.0;
  // target = q * 4 samples; fraction = target / 4 within the one bucket.
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), lo + 0.5 * (hi - lo));
  EXPECT_DOUBLE_EQ(snap.quantile(0.25), lo + 0.25 * (hi - lo));
  // q = 0 clamps to the bucket's lower edge.
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), lo);
  // q = 1 reaches the bucket's upper edge exactly.
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), hi);
}

TEST(HistogramSnapshot, QuantileWalksCumulativeBuckets) {
  // 10 zeros + 10 values in [512, 1023]: p50 must stay in the zero
  // bucket, anything above it lands in bucket 10.
  LatencyHistogram hist;
  for (int i = 0; i < 10; ++i) hist.record(0);
  for (int i = 0; i < 10; ++i) hist.record(700);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
  EXPECT_GE(snap.quantile(0.75), 512.0);
  EXPECT_LE(snap.quantile(0.75), 1023.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1023.0);
  EXPECT_DOUBLE_EQ(snap.p50(), snap.quantile(0.5));
  EXPECT_DOUBLE_EQ(snap.p95(), snap.quantile(0.95));
  EXPECT_DOUBLE_EQ(snap.p99(), snap.quantile(0.99));
}

TEST(HistogramSnapshot, QuantileClampsOutOfRangeInputs) {
  LatencyHistogram hist;
  hist.record(100);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(-0.5), snap.quantile(0.0));
  EXPECT_DOUBLE_EQ(snap.quantile(1.5), snap.quantile(1.0));
}

TEST(LatencyHistogram, ConcurrentRecordsLoseNothing) {
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(static_cast<std::uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

}  // namespace
}  // namespace subdp::obs
