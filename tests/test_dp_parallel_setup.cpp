// Tests for the Sec. 4 preprocessing phase (dp/parallel_setup.hpp):
// parallel f-materialisation equals the direct tabulation, its ledger
// shape matches the paper's claims, and the preprocessing never
// dominates the main iteration's work.

#include "dp/parallel_setup.hpp"

#include <gtest/gtest.h>

#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/sequential.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace subdp::dp {
namespace {

TEST(ParallelSetup, WeightsScanMatchesPrefixSums) {
  support::Rng rng(61);
  pram::Machine machine;
  std::vector<Cost> weights(40);
  for (auto& w : weights) w = rng.uniform_int(0, 100);
  const auto prefix = prepare_interval_weights(machine, weights);
  ASSERT_EQ(prefix.size(), weights.size());
  Cost run = 0;
  for (std::size_t t = 0; t < weights.size(); ++t) {
    EXPECT_EQ(prefix[t], run);
    run += weights[t];
  }
}

TEST(ParallelSetup, MaterialisedTableEqualsDirectTabulation) {
  support::Rng rng(62);
  const auto problem = MatrixChainProblem::random(18, rng);
  pram::Machine machine;
  const auto parallel = materialize_in_parallel(machine, problem);
  const auto direct = TabulatedProblem::from(problem);
  for (std::size_t i = 0; i < problem.size(); ++i) {
    ASSERT_EQ(parallel.init(i), direct.init(i));
  }
  for (std::size_t i = 0; i + 2 <= problem.size(); ++i) {
    for (std::size_t j = i + 2; j <= problem.size(); ++j) {
      for (std::size_t k = i + 1; k < j; ++k) {
        ASSERT_EQ(parallel.f(i, k, j), direct.f(i, k, j));
      }
    }
  }
}

TEST(ParallelSetup, SolvingTheMaterialisedTableIsEquivalent) {
  support::Rng rng(63);
  const auto problem = OptimalBstProblem::random(15, rng);
  pram::Machine machine;
  const auto table = materialize_in_parallel(machine, problem);
  EXPECT_EQ(solve_sequential(table).cost, solve_sequential(problem).cost);
}

TEST(ParallelSetup, LedgerHasTwoStepsWithLogDepth) {
  support::Rng rng(64);
  const std::size_t n = 20;
  const auto problem = MatrixChainProblem::random(n, rng);
  pram::Machine machine;
  (void)materialize_in_parallel(machine, problem);
  EXPECT_EQ(machine.costs().step_count(), 2u);  // init + one f sweep
  // Unit work per produced f entry: total = n(n^2-1)/6 triples + n inits.
  EXPECT_EQ(machine.costs().total_work(),
            static_cast<std::uint64_t>(n) * (n * n - 1) / 6 + n);
  // O(log n) depth: widest pair scans n-1 splits.
  EXPECT_LE(machine.costs().total_depth(),
            2 + support::ceil_log2(n));
}

TEST(ParallelSetup, IsCrewConformant) {
  support::Rng rng(65);
  const auto problem = MatrixChainProblem::random(12, rng);
  pram::MachineOptions opts;
  opts.check_crew = true;
  pram::Machine machine(opts);
  (void)materialize_in_parallel(machine, problem);
  ASSERT_NE(machine.crew(), nullptr);
  EXPECT_EQ(machine.crew()->violation_count(), 0u)
      << machine.crew()->first_violation();
}

TEST(ParallelSetup, PreprocessingNeverDominatesTheMainIteration) {
  // Paper Sec. 4: "In general, the f(i,j,k)'s do not form the
  // timewise-expensive part of the computation."
  support::Rng rng(66);
  const std::size_t n = 32;
  const auto problem = MatrixChainProblem::random(n, rng);
  pram::Machine pre;
  const auto table = materialize_in_parallel(pre, problem);

  core::SublinearOptions options;
  core::SublinearSolver solver(options);
  (void)solver.solve(table);
  EXPECT_LT(pre.costs().total_work() * 10,
            solver.machine().costs().total_work());
  EXPECT_LT(pre.costs().total_depth(),
            solver.machine().costs().total_depth());
}

}  // namespace
}  // namespace subdp::dp
