// Randomized cross-solver equivalence fuzzing: for a sweep of seeds,
// draw a random instance family, size and solver configuration, and
// check that every solver in the repository agrees with the sequential
// baseline (and that iteration bounds and monotonicity side conditions
// hold). This is the catch-all net under the targeted suites.

#include <gtest/gtest.h>

#include <memory>

#include "core/api.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/brute_force.hpp"
#include "dp/knuth.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/polygon_triangulation.hpp"
#include "dp/sequential.hpp"
#include "dp/tables.hpp"
#include "dp/tree_shaped.hpp"
#include "dp/wavefront.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trees/generators.hpp"

namespace subdp {
namespace {

std::unique_ptr<dp::Problem> random_instance(support::Rng& rng,
                                             std::size_t n) {
  switch (rng.uniform_int(0, 4)) {
    case 0:
      return std::make_unique<dp::MatrixChainProblem>(
          dp::MatrixChainProblem::random(n, rng, 40));
    case 1:
      return std::make_unique<dp::OptimalBstProblem>(
          dp::OptimalBstProblem::random(n > 1 ? n - 1 : 1, rng, 30));
    case 2:
      return std::make_unique<dp::PolygonTriangulationProblem>(
          dp::PolygonTriangulationProblem::random(std::max<std::size_t>(n,
                                                                        2),
                                                  rng, 20));
    case 3: {
      const auto shape =
          trees::kAllShapes[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(std::size(trees::kAllShapes)) -
                     1))];
      auto inst = dp::make_tree_shaped_instance(
          trees::make_tree(shape, n, &rng), rng,
          rng.uniform_int(0, 16));
      return std::make_unique<dp::TabulatedProblem>(
          std::move(inst.problem));
    }
    default: {
      // Fully random tabulated f / init values (no structure at all).
      auto t = std::make_unique<dp::TabulatedProblem>(n, "fuzz-random");
      for (std::size_t i = 0; i < n; ++i) {
        t->set_init(i, rng.uniform_int(0, 1000));
      }
      for (std::size_t i = 0; i + 2 <= n; ++i) {
        for (std::size_t j = i + 2; j <= n; ++j) {
          for (std::size_t k = i + 1; k < j; ++k) {
            t->set_f(i, k, j, rng.uniform_int(0, 1000));
          }
        }
      }
      return t;
    }
  }
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, AllSolversAgree) {
  support::Rng rng(GetParam());
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 26));
  const auto problem = random_instance(rng, n);
  const auto expected = dp::solve_sequential(*problem);
  ASSERT_TRUE(dp::validate_result(*problem, expected));

  // Exponential oracle on the small ones.
  if (problem->size() <= 9) {
    ASSERT_EQ(expected.cost, dp::brute_force_cost(*problem));
  }

  // Wavefront on a random backend.
  {
    pram::MachineOptions mopts;
    mopts.backend = static_cast<pram::Backend>(rng.uniform_int(0, 2));
    pram::Machine machine(mopts);
    ASSERT_EQ(dp::solve_wavefront(*problem, machine).cost, expected.cost);
  }

  // Sublinear solver with a random legal configuration.
  core::SublinearOptions options;
  options.variant = rng.bernoulli(0.5) ? core::PwVariant::kBanded
                                       : core::PwVariant::kDense;
  options.machine.backend =
      static_cast<pram::Backend>(rng.uniform_int(0, 2));
  switch (rng.uniform_int(0, 2)) {
    case 0:
      options.termination = core::TerminationMode::kFixedBound;
      break;
    case 1:
      options.termination = core::TerminationMode::kFixedPoint;
      break;
    default:
      options.termination = core::TerminationMode::kFixedBound;
      options.windowed_pebble = true;
      break;
  }
  // Any band at or above the paper's choice must be safe.
  const auto paper_band = support::two_ceil_sqrt(problem->size());
  options.band_width =
      paper_band + static_cast<std::size_t>(rng.uniform_int(0, 6));

  core::SublinearSolver solver(options);
  const auto result = solver.solve(*problem);
  ASSERT_EQ(result.cost, expected.cost)
      << problem->name() << " n=" << problem->size()
      << " variant=" << to_string(options.variant)
      << " termination=" << to_string(options.termination)
      << " windowed=" << options.windowed_pebble
      << " band=" << options.band_width;
  ASSERT_LE(result.iterations, result.iteration_bound);

  // Whole-table agreement and tree extraction.
  for (std::size_t i = 0; i < problem->size(); ++i) {
    for (std::size_t j = i + 1; j <= problem->size(); ++j) {
      ASSERT_EQ(result.w(i, j), expected.c(i, j))
          << "cell (" << i << "," << j << ")";
    }
  }
  const auto tree = dp::extract_tree_from_w(*problem, result.w);
  ASSERT_TRUE(tree.validate());
  ASSERT_EQ(dp::tree_weight(*problem, tree), expected.cost);

  // Knuth fast path whenever its preconditions hold.
  if (dp::is_k_independent(*problem) && problem->size() <= 16 &&
      dp::satisfies_quadrangle_inequality(*problem)) {
    ASSERT_EQ(dp::solve_knuth(*problem).cost, expected.cost);
  }
}

std::vector<std::uint64_t> fuzz_seeds() {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 120; ++s) seeds.push_back(s * 2654435761u);
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::ValuesIn(fuzz_seeds()));

}  // namespace
}  // namespace subdp
