// Tests for the result-validation utilities (dp/tables.hpp): tree
// weights, extraction edge cases, and a parameterized corruption sweep
// showing the validator catches every class of damage.

#include <gtest/gtest.h>

#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/sequential.hpp"
#include "dp/tables.hpp"
#include "support/rng.hpp"
#include "trees/generators.hpp"

namespace subdp::dp {
namespace {

TEST(TreeWeight, LeafOnlyTree) {
  const MatrixChainProblem p({3, 7});
  const auto tree = trees::FullBinaryTree::build(1, {});
  EXPECT_EQ(tree_weight(p, tree), p.init(0));
}

TEST(TreeWeight, HandComputedSmallTree) {
  // dims {2,3,4,5}: tree ((A1A2)A3) costs f(0,2,3) + f(0,1,2)
  //                = 2*4*5 + 2*3*4 = 64.
  const MatrixChainProblem p({2, 3, 4, 5});
  const auto tree = trees::FullBinaryTree::build(
      3, [](std::size_t lo, std::size_t hi, std::size_t) {
        return lo == 0 && hi == 3 ? 2u : lo + 1;
      });
  EXPECT_EQ(tree_weight(p, tree), 64);
}

TEST(TreeWeight, SuboptimalTreeWeighsMore) {
  support::Rng rng(501);
  for (int rep = 0; rep < 10; ++rep) {
    const auto p = MatrixChainProblem::random(10, rng);
    const auto optimal = solve_sequential(p);
    // Any fixed shape is a valid decomposition; it can't beat the optimum.
    const auto skewed = trees::make_tree(trees::TreeShape::kLeftSkewed, 10);
    EXPECT_GE(tree_weight(p, skewed), optimal.cost);
  }
}

TEST(TreeWeight, AgreesWithCostForExtractedTrees) {
  support::Rng rng(502);
  for (const std::size_t n : {2u, 5u, 9u, 17u}) {
    const auto p = OptimalBstProblem::random(n, rng);
    const auto result = solve_sequential(p);
    EXPECT_EQ(tree_weight(p, extract_tree(result)), result.cost);
  }
}

enum class Corruption {
  kRootCost,
  kInteriorCost,
  kLeafCost,
  kSplitOutOfRange,
  kSplitSuboptimal,
  kTotalCostField,
};

class ValidatorTest : public ::testing::TestWithParam<Corruption> {};

TEST_P(ValidatorTest, CatchesDamage) {
  support::Rng rng(503);
  const auto p = MatrixChainProblem::random(12, rng);
  auto result = solve_sequential(p);
  ASSERT_TRUE(validate_result(p, result));

  switch (GetParam()) {
    case Corruption::kRootCost:
      result.c(0, 12) += 1;
      break;
    case Corruption::kInteriorCost:
      result.c(3, 9) -= 1;
      break;
    case Corruption::kLeafCost:
      result.c(4, 5) += 1;
      break;
    case Corruption::kSplitOutOfRange:
      result.split(2, 8) = 8;
      break;
    case Corruption::kSplitSuboptimal: {
      // Pick a pair where some split is strictly worse and plant it.
      bool planted = false;
      for (std::size_t i = 0; i < 12 && !planted; ++i) {
        for (std::size_t j = i + 2; j <= 12 && !planted; ++j) {
          for (std::size_t k = i + 1; k < j; ++k) {
            const Cost cand =
                sat_add(result.c(i, k), result.c(k, j), p.f(i, k, j));
            if (cand > result.c(i, j)) {
              result.split(i, j) = static_cast<std::int32_t>(k);
              planted = true;
              break;
            }
          }
        }
      }
      ASSERT_TRUE(planted) << "instance has no strictly-worse split";
      break;
    }
    case Corruption::kTotalCostField:
      result.cost += 5;
      break;
  }
  EXPECT_FALSE(validate_result(p, result));
}

INSTANTIATE_TEST_SUITE_P(
    AllCorruptions, ValidatorTest,
    ::testing::Values(Corruption::kRootCost, Corruption::kInteriorCost,
                      Corruption::kLeafCost, Corruption::kSplitOutOfRange,
                      Corruption::kSplitSuboptimal,
                      Corruption::kTotalCostField),
    [](const ::testing::TestParamInfo<Corruption>& info) {
      switch (info.param) {
        case Corruption::kRootCost:
          return std::string("root_cost");
        case Corruption::kInteriorCost:
          return std::string("interior_cost");
        case Corruption::kLeafCost:
          return std::string("leaf_cost");
        case Corruption::kSplitOutOfRange:
          return std::string("split_range");
        case Corruption::kSplitSuboptimal:
          return std::string("split_suboptimal");
        case Corruption::kTotalCostField:
          return std::string("total_cost");
      }
      return std::string("unknown");
    });

TEST(ExtractTree, SingleObject) {
  const MatrixChainProblem p({2, 3});
  const auto result = solve_sequential(p);
  const auto tree = extract_tree(result);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(ExtractTree, TiesProduceSomeOptimalTree) {
  // All-equal dims: every parenthesization is optimal; extraction must
  // still produce a valid tree of the optimal weight.
  const MatrixChainProblem p({5, 5, 5, 5, 5, 5});
  const auto result = solve_sequential(p);
  const auto tree = extract_tree(result);
  EXPECT_TRUE(tree.validate());
  EXPECT_EQ(tree_weight(p, tree), result.cost);
}

}  // namespace
}  // namespace subdp::dp
