// Tests of the concurrent serving front door: SolverService bit-identity
// against independent solves across worker counts and submission orders,
// async submission futures, the solve_all ledger contract, LRU plan
// eviction under load, per-call option keying, and a multi-threaded
// stress run (the tsan preset's main subject) hammering one service with
// mixed shapes from many caller threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_solver.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/sequential.hpp"
#include "serve/solver_service.hpp"
#include "support/rng.hpp"

namespace subdp::serve {
namespace {

/// A mixed-shape instance set plus its independently solved expectations.
struct Workload {
  std::vector<std::unique_ptr<dp::Problem>> owned;
  std::vector<const dp::Problem*> pointers;
  std::vector<core::SublinearResult> expected;
};

Workload make_workload(const std::vector<std::size_t>& shapes,
                       std::size_t per_shape, std::uint64_t seed,
                       const core::SublinearOptions& options = {}) {
  Workload out;
  support::Rng rng(seed);
  for (std::size_t rep = 0; rep < per_shape; ++rep) {
    for (const std::size_t n : shapes) {
      out.owned.push_back(std::make_unique<dp::MatrixChainProblem>(
          dp::MatrixChainProblem::random(n, rng)));
    }
  }
  for (const auto& p : out.owned) out.pointers.push_back(p.get());
  for (const auto& p : out.owned) {
    core::SublinearSolver solver(options);
    out.expected.push_back(solver.solve(*p));
  }
  return out;
}

void expect_identical(const core::SublinearResult& got,
                      const core::SublinearResult& want, std::size_t k) {
  EXPECT_EQ(got.cost, want.cost) << "instance " << k;
  EXPECT_EQ(got.iterations, want.iterations) << "instance " << k;
  EXPECT_TRUE(got.w == want.w) << "instance " << k;
}

TEST(Service, SolveAllBitIdenticalAcrossWorkerCounts) {
  const auto load = make_workload({9, 14, 21}, 3, 601);
  std::vector<std::size_t> worker_counts = {
      1, 4, static_cast<std::size_t>(
                std::max(1u, std::thread::hardware_concurrency()))};
  std::sort(worker_counts.begin(), worker_counts.end());
  worker_counts.erase(
      std::unique(worker_counts.begin(), worker_counts.end()),
      worker_counts.end());
  for (const std::size_t workers : worker_counts) {
    ServiceOptions options;
    options.workers = workers;
    SolverService service(options);
    const auto out = service.solve_all(load.pointers);
    ASSERT_EQ(out.results.size(), load.pointers.size());
    EXPECT_EQ(out.ledger.instances, load.pointers.size());
    EXPECT_EQ(out.ledger.shape_groups, 3u);
    EXPECT_EQ(out.ledger.plans_built, 3u);
    for (std::size_t k = 0; k < load.pointers.size(); ++k) {
      expect_identical(out.results[k], load.expected[k], k);
    }
    EXPECT_EQ(service.workers(), workers);
  }
}

TEST(Service, SubmitFuturesMatchIndependentSolvesShuffled) {
  const auto load = make_workload({8, 13, 17}, 4, 602);
  ServiceOptions options;
  options.workers = 4;
  SolverService service(options);

  // Submit in a shuffled order; results must not notice.
  std::vector<std::size_t> order(load.pointers.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  support::Rng rng(603);
  rng.shuffle(order);
  std::vector<std::future<core::SublinearResult>> futures(
      load.pointers.size());
  for (const std::size_t k : order) {
    futures[k] = service.submit(*load.pointers[k]);
  }
  for (std::size_t k = 0; k < futures.size(); ++k) {
    expect_identical(futures[k].get(), load.expected[k], k);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_submitted, load.pointers.size());
  EXPECT_EQ(stats.jobs_completed, load.pointers.size());
  EXPECT_EQ(stats.plan_cache.size, 3u);
  EXPECT_EQ(stats.plan_cache.misses, 3u);
}

TEST(Service, MatchesBatchSolverLedgerAndResults) {
  const auto load = make_workload({10, 15}, 3, 604);
  core::BatchSolver batch;
  const auto batch_out = batch.solve_all(load.pointers);

  ServiceOptions options;
  options.workers = 3;
  SolverService service(options);
  const auto service_out = service.solve_all(load.pointers);

  ASSERT_EQ(service_out.results.size(), batch_out.results.size());
  for (std::size_t k = 0; k < batch_out.results.size(); ++k) {
    expect_identical(service_out.results[k], batch_out.results[k], k);
  }
  EXPECT_EQ(service_out.ledger.instances, batch_out.ledger.instances);
  EXPECT_EQ(service_out.ledger.shape_groups,
            batch_out.ledger.shape_groups);
  EXPECT_EQ(service_out.ledger.plans_built, batch_out.ledger.plans_built);
  EXPECT_EQ(service_out.ledger.total_iterations,
            batch_out.ledger.total_iterations);
  // record_costs defaults on: the summed PRAM ledger is worker-count
  // independent (accounting is backend-independent by construction).
  EXPECT_EQ(service_out.ledger.total_work, batch_out.ledger.total_work);
  EXPECT_EQ(service_out.ledger.total_depth, batch_out.ledger.total_depth);

  // A second call is served entirely warm.
  const auto again = service.solve_all(load.pointers);
  EXPECT_EQ(again.ledger.plans_built, 0u);
  EXPECT_EQ(again.ledger.plans_reused, 2u);
}

TEST(Service, StressManyCallerThreadsMixedShapes) {
  // The tsan preset's main subject: one service, many caller threads,
  // mixed shapes, both submission surfaces, while asserting bit-identity
  // and pool/cache accounting afterwards.
  const std::vector<std::size_t> shapes = {6, 9, 12, 15};
  const auto load = make_workload(shapes, 4, 605);  // 16 instances

  ServiceOptions options;
  options.workers = 4;
  SolverService service(options);

  constexpr std::size_t kCallerThreads = 6;
  constexpr std::size_t kRoundsPerThread = 3;
  std::vector<std::vector<std::string>> failures(kCallerThreads);
  std::vector<std::thread> callers;
  callers.reserve(kCallerThreads);
  for (std::size_t t = 0; t < kCallerThreads; ++t) {
    callers.emplace_back([&, t] {
      support::Rng rng(700 + t);
      for (std::size_t round = 0; round < kRoundsPerThread; ++round) {
        if ((t + round) % 2 == 0) {
          // Blocking surface: the whole set at once, shuffled.
          std::vector<const dp::Problem*> mine = load.pointers;
          std::vector<std::size_t> order(mine.size());
          std::iota(order.begin(), order.end(), std::size_t{0});
          rng.shuffle(order);
          std::vector<const dp::Problem*> shuffled;
          for (const std::size_t k : order) shuffled.push_back(mine[k]);
          const auto out = service.solve_all(shuffled);
          for (std::size_t j = 0; j < order.size(); ++j) {
            const auto& want = load.expected[order[j]];
            if (!(out.results[j].cost == want.cost &&
                  out.results[j].iterations == want.iterations &&
                  out.results[j].w == want.w)) {
              failures[t].push_back("solve_all mismatch");
            }
          }
        } else {
          // Async surface: one future per instance, shuffled order.
          std::vector<std::size_t> order(load.pointers.size());
          std::iota(order.begin(), order.end(), std::size_t{0});
          rng.shuffle(order);
          std::vector<std::future<core::SublinearResult>> futures(
              load.pointers.size());
          for (const std::size_t k : order) {
            futures[k] = service.submit(*load.pointers[k]);
          }
          for (std::size_t k = 0; k < futures.size(); ++k) {
            const auto got = futures[k].get();
            const auto& want = load.expected[k];
            if (!(got.cost == want.cost &&
                  got.iterations == want.iterations && got.w == want.w)) {
              failures[t].push_back("submit mismatch");
            }
          }
        }
      }
    });
  }
  for (auto& thread : callers) thread.join();
  for (std::size_t t = 0; t < kCallerThreads; ++t) {
    EXPECT_TRUE(failures[t].empty())
        << "caller " << t << ": " << failures[t].size() << " mismatches, "
        << "first: " << failures[t].front();
  }

  const auto stats = service.stats();
  const std::uint64_t total_jobs =
      kCallerThreads * kRoundsPerThread * load.pointers.size();
  EXPECT_EQ(stats.jobs_submitted, total_jobs);
  EXPECT_EQ(stats.jobs_completed, total_jobs);
  // Every shape was built exactly once; everything else hit warm plans.
  EXPECT_EQ(stats.plan_cache.size, shapes.size());
  EXPECT_EQ(stats.plan_cache.misses, shapes.size());
  EXPECT_EQ(stats.plan_cache.evictions, 0u);
  EXPECT_GT(stats.plan_cache.hits, 0u);
  // Pool growth is bounded by the real concurrency (workers per plan)
  // and the traffic is dominated by in-place session reuse.
  EXPECT_LE(stats.sessions_created,
            static_cast<std::uint64_t>(options.workers) * shapes.size());
  EXPECT_GT(stats.session_reuses, stats.sessions_created);
  EXPECT_EQ(stats.sessions_created + stats.session_reuses, total_jobs);
}

TEST(Service, EvictsPlansAtTheBoundAndStillServes) {
  ServiceOptions options;
  options.workers = 2;
  options.plan_capacity = 2;
  SolverService service(options);

  const auto load = make_workload({8, 11, 14}, 2, 606);  // 3 shapes
  const auto out = service.solve_all(load.pointers);
  for (std::size_t k = 0; k < load.pointers.size(); ++k) {
    expect_identical(out.results[k], load.expected[k], k);
  }
  auto stats = service.stats();
  EXPECT_EQ(stats.plan_cache.capacity, 2u);
  EXPECT_EQ(stats.plan_cache.size, 2u);
  EXPECT_GE(stats.plan_cache.evictions, 1u);

  // An evicted shape rebuilds on demand and still solves correctly.
  const std::uint64_t misses_before = stats.plan_cache.misses;
  support::Rng rng(607);
  const auto fresh = dp::MatrixChainProblem::random(8, rng);
  const auto result = service.submit(fresh).get();
  EXPECT_EQ(result.cost, dp::solve_sequential(fresh).cost);
  stats = service.stats();
  EXPECT_GE(stats.plan_cache.misses, misses_before);
  EXPECT_EQ(stats.plan_cache.size, 2u);
}

TEST(Service, PerCallOptionsKeyTheCacheSeparately) {
  support::Rng rng(608);
  const auto problem = dp::MatrixChainProblem::random(18, rng);

  ServiceOptions service_options;
  service_options.workers = 2;
  SolverService service(service_options);

  core::SublinearOptions dense;
  dense.variant = core::PwVariant::kDense;
  const auto banded_result = service.submit(problem).get();
  const auto dense_result = service.submit(problem, dense).get();
  EXPECT_EQ(banded_result.cost, dense_result.cost);
  EXPECT_EQ(banded_result.cost, dp::solve_sequential(problem).cost);

  const auto stats = service.stats();
  EXPECT_EQ(stats.plan_cache.size, 2u)
      << "same n under different options must occupy two cache entries";
  EXPECT_EQ(stats.plan_cache.misses, 2u);
  EXPECT_NE(service.plan_for(18), nullptr);
  EXPECT_NE(service.plan_for(18, dense), nullptr);
  EXPECT_EQ(service.plan_for(18, dense)->options().variant,
            core::PwVariant::kDense);
}

TEST(Service, SubmitSurfacesPlanValidationThroughTheFuture) {
  SolverService service;
  support::Rng rng(609);
  const auto problem = dp::MatrixChainProblem::random(
      core::DensePwTable::kMaxDenseN + 1, rng);
  core::SublinearOptions dense;
  dense.variant = core::PwVariant::kDense;  // too large for dense
  auto future = service.submit(problem, dense);
  EXPECT_THROW((void)future.get(), std::invalid_argument);
  // The service stays healthy after a failed job.
  const auto small = dp::MatrixChainProblem::random(10, rng);
  EXPECT_EQ(service.submit(small).get().cost,
            dp::solve_sequential(small).cost);
}

TEST(Service, OptimalBstInstancesServeConcurrently) {
  // A second problem family through the same service, to make sure
  // nothing in the dispatch path is matrix-chain specific.
  std::vector<std::unique_ptr<dp::Problem>> owned;
  support::Rng rng(610);
  for (int k = 0; k < 6; ++k) {
    owned.push_back(std::make_unique<dp::OptimalBstProblem>(
        dp::OptimalBstProblem::random(11, rng)));
  }
  std::vector<const dp::Problem*> pointers;
  for (const auto& p : owned) pointers.push_back(p.get());

  ServiceOptions options;
  options.workers = 3;
  SolverService service(options);
  const auto out = service.solve_all(pointers);
  for (std::size_t k = 0; k < pointers.size(); ++k) {
    EXPECT_EQ(out.results[k].cost, dp::solve_sequential(*pointers[k]).cost)
        << "instance " << k;
  }
}

}  // namespace
}  // namespace subdp::serve
