// Property suite for the Sec. 3 pebbling game (trees/pebble_game.hpp):
// Lemma 3.3's 2*ceil(sqrt n) bound across all shapes, the invariants of
// its alternative proof, shape-specific move counts (Fig. 2), and the
// contrast with Rytter's path-doubling square rule.

#include "trees/pebble_game.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trees/generators.hpp"

namespace subdp::trees {
namespace {

using support::ceil_log2;
using support::two_ceil_sqrt;

TEST(PebbleGame, SingleLeafIsPebbledFromTheStart) {
  const auto t = FullBinaryTree::build(1, {});
  PebbleGame game(t);
  EXPECT_TRUE(game.root_pebbled());
  EXPECT_EQ(game.run_until_root(100), 0u);
}

TEST(PebbleGame, TwoLeavesNeedExactlyOneMove) {
  const auto t = make_tree(TreeShape::kComplete, 2);
  PebbleGame game(t);
  EXPECT_FALSE(game.root_pebbled());
  game.move();
  EXPECT_TRUE(game.root_pebbled());
}

TEST(PebbleGame, MovesAreCounted) {
  const auto t = make_tree(TreeShape::kComplete, 64);
  PebbleGame game(t);
  const auto made = game.run_until_root(1000);
  EXPECT_EQ(made, game.moves_made());
  EXPECT_TRUE(game.root_pebbled());
}

TEST(PebbleGame, PebblesAreNeverRemoved) {
  support::Rng rng(5);
  const auto t = make_tree(TreeShape::kRandom, 40, &rng);
  PebbleGame game(t);
  std::vector<bool> was_pebbled(t.node_count(), false);
  while (!game.root_pebbled()) {
    game.move();
    for (NodeId x = 0; static_cast<std::size_t>(x) < t.node_count(); ++x) {
      if (was_pebbled[static_cast<std::size_t>(x)]) {
        ASSERT_TRUE(game.pebbled(x)) << "pebble vanished from node " << x;
      }
      was_pebbled[static_cast<std::size_t>(x)] = game.pebbled(x);
    }
    ASSERT_LE(game.moves_made(), 2 * t.leaf_count());  // safety stop
  }
}

TEST(PebbleGame, CondAlwaysPointsAtDescendant) {
  support::Rng rng(7);
  const auto t = make_tree(TreeShape::kBiasedRandom, 60, &rng);
  PebbleGame game(t);
  while (!game.root_pebbled()) {
    game.move();
    ASSERT_TRUE(game.pointers_consistent());
    ASSERT_LE(game.moves_made(), 2 * t.leaf_count());
  }
}

// ---- Lemma 3.3: the 2*ceil(sqrt(n)) bound, parameterized over shapes ----

struct GameParam {
  TreeShape shape;
  std::size_t n;
  std::uint64_t seed;
};

class Lemma33Test : public ::testing::TestWithParam<GameParam> {};

TEST_P(Lemma33Test, RootPebbledWithinBound) {
  const auto [shape, n, seed] = GetParam();
  support::Rng rng(seed);
  const auto t = make_tree(shape, n, &rng);
  PebbleGame game(t, SquareRule::kOneLevel);
  const std::size_t bound = two_ceil_sqrt(n);
  game.run_until_root(bound);
  EXPECT_TRUE(game.root_pebbled())
      << to_string(shape) << " n=" << n << " not pebbled after " << bound
      << " moves";
}

TEST_P(Lemma33Test, InvariantAHoldsAfterEveryEvenMove) {
  const auto [shape, n, seed] = GetParam();
  support::Rng rng(seed);
  const auto t = make_tree(shape, n, &rng);
  PebbleGame game(t, SquareRule::kOneLevel);
  const std::size_t bound = two_ceil_sqrt(n);
  for (std::size_t k = 1; 2 * k <= bound; ++k) {
    game.move();
    game.move();
    ASSERT_TRUE(game.invariant_a_holds(k))
        << to_string(shape) << " n=" << n << ": node with size <= " << k * k
        << " unpebbled after " << 2 * k << " moves";
    if (game.root_pebbled()) break;
  }
}

TEST_P(Lemma33Test, InvariantBHoldsBetweenSquareAndPebble) {
  const auto [shape, n, seed] = GetParam();
  support::Rng rng(seed);
  const auto t = make_tree(shape, n, &rng);
  PebbleGame game(t, SquareRule::kOneLevel);
  const std::size_t bound = two_ceil_sqrt(n);
  for (std::size_t k = 1; 2 * k <= bound; ++k) {
    // First move of the pair.
    game.move();
    // Second move, phase by phase, checking (b) before the pebble phase.
    game.activate();
    game.square();
    ASSERT_TRUE(game.invariant_b_holds(k))
        << to_string(shape) << " n=" << n << " k=" << k;
    game.pebble();
    if (game.root_pebbled()) break;
  }
}

std::vector<GameParam> lemma_params() {
  std::vector<GameParam> params;
  std::uint64_t seed = 1000;
  for (const TreeShape s : kAllShapes) {
    for (const std::size_t n :
         {2u, 3u, 4u, 7u, 16u, 17u, 64u, 100u, 256u, 1000u}) {
      params.push_back({s, n, seed++});
    }
  }
  // Extra random replicates: the bound must hold for every tree, so
  // sample more random shapes.
  for (int rep = 0; rep < 20; ++rep) {
    params.push_back({TreeShape::kRandom, 200, seed++});
    params.push_back({TreeShape::kBiasedRandom, 200, seed++});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, Lemma33Test, ::testing::ValuesIn(lemma_params()),
    [](const ::testing::TestParamInfo<GameParam>& info) {
      std::string name = to_string(info.param.shape);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_" + std::to_string(info.param.n) + "_s" +
             std::to_string(info.param.seed);
    });

// ---- Fig. 2 shape behaviour ----

TEST(PebbleGameShapes, CompleteTreeFinishesInLogMoves) {
  for (const std::size_t n : {16u, 64u, 256u, 1024u, 4096u}) {
    const auto t = make_tree(TreeShape::kComplete, n);
    PebbleGame game(t);
    game.run_until_root(two_ceil_sqrt(n));
    EXPECT_TRUE(game.root_pebbled());
    EXPECT_LE(game.moves_made(), 2 * ceil_log2(n) + 2) << "n=" << n;
  }
}

TEST(PebbleGameShapes, ZigzagNeedsOrderSqrtMoves) {
  for (const std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const auto t = make_tree(TreeShape::kZigzag, n);
    PebbleGame game(t);
    game.run_until_root(two_ceil_sqrt(n));
    EXPECT_TRUE(game.root_pebbled());
    // Theta(sqrt n): at least sqrt(n)/2 moves, at most the lemma bound.
    EXPECT_GE(game.moves_made(), support::ceil_sqrt(n) / 2) << "n=" << n;
  }
}

TEST(PebbleGameShapes, ZigzagIsAsymptoticallyWorseThanComplete) {
  const std::size_t n = 4096;
  const auto zig_tree = make_tree(TreeShape::kZigzag, n);
  const auto comp_tree = make_tree(TreeShape::kComplete, n);
  PebbleGame zig(zig_tree);
  PebbleGame comp(comp_tree);
  zig.run_until_root(two_ceil_sqrt(n));
  comp.run_until_root(two_ceil_sqrt(n));
  EXPECT_GT(zig.moves_made(), 3 * comp.moves_made());
}

TEST(PebbleGameShapes, SkewedChainsAlsoNeedOrderSqrtMoves) {
  // The *game* needs Theta(sqrt n) on pure chains (the frontier climbs
  // quadratically); the Sec. 6 O(log n) claim for skewed trees concerns
  // the full algorithm, whose pw-compositions exploit all subproblems at
  // once — see test_core_sublinear.cpp.
  for (const std::size_t n : {256u, 1024u}) {
    const auto tree = make_tree(TreeShape::kLeftSkewed, n);
    PebbleGame game(tree);
    game.run_until_root(two_ceil_sqrt(n));
    EXPECT_TRUE(game.root_pebbled());
    EXPECT_GE(game.moves_made(), support::ceil_sqrt(n)) << "n=" << n;
  }
}

TEST(PebbleGameShapes, LeftAndRightSkewedAreSymmetric) {
  for (const std::size_t n : {64u, 257u}) {
    const auto left_tree = make_tree(TreeShape::kLeftSkewed, n);
    const auto right_tree = make_tree(TreeShape::kRightSkewed, n);
    PebbleGame l(left_tree);
    PebbleGame r(right_tree);
    l.run_until_root(two_ceil_sqrt(n));
    r.run_until_root(two_ceil_sqrt(n));
    EXPECT_EQ(l.moves_made(), r.moves_made()) << "n=" << n;
  }
}

// ---- Rytter's path-doubling rule (the trade-off the paper makes) ----

TEST(PathDoubling, PebblesAnyShapeInLogarithmicMoves) {
  support::Rng rng(42);
  for (const TreeShape s : kAllShapes) {
    for (const std::size_t n : {16u, 256u, 1024u}) {
      const auto t = make_tree(s, n, &rng);
      PebbleGame game(t, SquareRule::kPathDoubling);
      game.run_until_root(4 * ceil_log2(n) + 8);
      EXPECT_TRUE(game.root_pebbled()) << to_string(s) << " n=" << n;
    }
  }
}

TEST(PathDoubling, BeatsOneLevelOnZigzag) {
  const std::size_t n = 1024;
  const auto t = make_tree(TreeShape::kZigzag, n);
  PebbleGame doubling(t, SquareRule::kPathDoubling);
  PebbleGame one_level(t, SquareRule::kOneLevel);
  doubling.run_until_root(two_ceil_sqrt(n));
  one_level.run_until_root(two_ceil_sqrt(n));
  EXPECT_TRUE(doubling.root_pebbled());
  EXPECT_TRUE(one_level.root_pebbled());
  EXPECT_LT(doubling.moves_made(), one_level.moves_made() / 2);
}

TEST(PathDoubling, NeverSlowerThanOneLevel) {
  support::Rng rng(77);
  for (int rep = 0; rep < 10; ++rep) {
    const auto t = make_tree(TreeShape::kRandom, 300, &rng);
    PebbleGame doubling(t, SquareRule::kPathDoubling);
    PebbleGame one_level(t, SquareRule::kOneLevel);
    doubling.run_until_root(two_ceil_sqrt(300));
    one_level.run_until_root(two_ceil_sqrt(300));
    EXPECT_LE(doubling.moves_made(), one_level.moves_made());
  }
}

// ---- Average case (Sec. 6): random trees pebble in O(log n) moves ----

TEST(AverageCase, RandomTreesPebbleInLogarithmicMovesOnAverage) {
  support::Rng rng(2024);
  for (const std::size_t n : {64u, 256u, 1024u}) {
    double total = 0;
    constexpr int kTrials = 40;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto t = make_tree(TreeShape::kRandom, n, &rng);
      PebbleGame game(t);
      game.run_until_root(two_ceil_sqrt(n));
      EXPECT_TRUE(game.root_pebbled());
      total += static_cast<double>(game.moves_made());
    }
    const double mean = total / kTrials;
    // O(log n): comfortably below 4*log2(n) and far below 2*sqrt(n).
    EXPECT_LT(mean, 4.0 * static_cast<double>(ceil_log2(n))) << "n=" << n;
    EXPECT_LT(mean, static_cast<double>(support::ceil_sqrt(n))) << "n=" << n;
  }
}

}  // namespace
}  // namespace subdp::trees
