// Tests for the Sec. 7 termination question: the fixed-point stop is safe
// and usually far earlier than the 2*ceil(sqrt n) schedule; the paper's
// "w unchanged twice" heuristic is measured for correctness on a battery
// of instances.

#include <gtest/gtest.h>

#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/sequential.hpp"
#include "dp/tree_shaped.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trees/generators.hpp"

namespace subdp::core {
namespace {

SublinearResult run(const dp::Problem& p, TerminationMode mode) {
  SublinearOptions options;
  options.termination = mode;
  SublinearSolver solver(options);
  return solver.solve(p);
}

TEST(Termination, FixedPointStopsNoLaterThanTheBound) {
  support::Rng rng(81);
  const auto p = dp::MatrixChainProblem::random(30, rng);
  const auto result = run(p, TerminationMode::kFixedPoint);
  EXPECT_LE(result.iterations, result.iteration_bound);
}

TEST(Termination, FixedPointIsCorrectOnManySeeds) {
  support::Rng rng(82);
  for (int rep = 0; rep < 20; ++rep) {
    const auto p = dp::MatrixChainProblem::random(16, rng);
    const auto result = run(p, TerminationMode::kFixedPoint);
    ASSERT_EQ(result.cost, dp::solve_sequential(p).cost) << "rep=" << rep;
  }
}

TEST(Termination, RandomInstancesConvergeLogarithmically) {
  // Sec. 6/7: simulations show far fewer than 2*sqrt(n) iterations on
  // typical inputs.
  support::Rng rng(83);
  const std::size_t n = 40;
  double total_iters = 0;
  constexpr int kTrials = 8;
  for (int rep = 0; rep < kTrials; ++rep) {
    const auto p = dp::MatrixChainProblem::random(n, rng);
    const auto result = run(p, TerminationMode::kFixedPoint);
    total_iters += static_cast<double>(result.iterations);
  }
  const double mean = total_iters / kTrials;
  EXPECT_LT(mean, static_cast<double>(support::two_ceil_sqrt(n)));
  EXPECT_LT(mean, 3.0 * static_cast<double>(support::ceil_log2(n)) + 3.0);
}

TEST(Termination, ZigzagInstancesExhaustTheSchedule) {
  // The adversarial shape forces Theta(sqrt n) iterations even with
  // fixed-point detection (nothing converges early).
  support::Rng rng(84);
  for (const std::size_t n : {16u, 36u}) {
    auto inst = dp::make_tree_shaped_instance(
        trees::make_tree(trees::TreeShape::kZigzag, n), rng);
    const auto result = run(inst.problem, TerminationMode::kFixedPoint);
    EXPECT_EQ(result.cost, inst.optimal_cost);
    EXPECT_GE(result.iterations, support::ceil_sqrt(n) / 2) << "n=" << n;
  }
}

TEST(Termination, WHeuristicIsCorrectOnRandomBattery) {
  // The paper suggests "stop when w' did not change for two consecutive
  // iterations" and leaves its sufficiency open; on this battery it must
  // at least never *undershoot* and, on these instances, actually match.
  support::Rng rng(85);
  for (int rep = 0; rep < 15; ++rep) {
    const auto p = dp::OptimalBstProblem::random(14, rng);
    const auto result = run(p, TerminationMode::kWUnchangedTwice);
    const auto expected = dp::solve_sequential(p).cost;
    ASSERT_GE(result.cost, expected);
    EXPECT_EQ(result.cost, expected) << "rep=" << rep;
  }
}

TEST(Termination, WHeuristicStopsEarlierOrEqualToFixedPoint) {
  support::Rng rng(86);
  const auto p = dp::MatrixChainProblem::random(24, rng);
  const auto heuristic = run(p, TerminationMode::kWUnchangedTwice);
  const auto fixed = run(p, TerminationMode::kFixedPoint);
  EXPECT_LE(heuristic.iterations, fixed.iterations + 2);
  EXPECT_EQ(heuristic.cost, fixed.cost);
}

TEST(Termination, FixedBoundRunsExactlyTheSchedule) {
  support::Rng rng(87);
  const auto p = dp::MatrixChainProblem::random(20, rng);
  const auto result = run(p, TerminationMode::kFixedBound);
  EXPECT_EQ(result.iterations, support::two_ceil_sqrt(20));
  EXPECT_EQ(result.cost, dp::solve_sequential(p).cost);
}

TEST(Termination, TraceShowsMonotoneProgress) {
  support::Rng rng(88);
  const auto p = dp::MatrixChainProblem::random(24, rng);
  const auto result = run(p, TerminationMode::kFixedBound);
  ASSERT_FALSE(result.trace.empty());
  // w_finite is nondecreasing and ends at the full pair count.
  std::uint64_t prev = 0;
  for (const auto& t : result.trace) {
    ASSERT_GE(t.w_finite, prev);
    prev = t.w_finite;
  }
  EXPECT_EQ(prev, 24u * 25u / 2);
  // Once the iteration changes nothing, it never changes again.
  bool quiet = false;
  for (const auto& t : result.trace) {
    const bool changed = t.pw_cells_changed + t.w_cells_changed > 0;
    if (quiet) ASSERT_FALSE(changed);
    if (!changed) quiet = true;
  }
}

TEST(Termination, MaxIterationOverrideCapsTheRun) {
  support::Rng rng(89);
  const auto p = dp::MatrixChainProblem::random(36, rng);
  SublinearOptions options;
  options.termination = TerminationMode::kFixedBound;
  options.max_iterations = 3;
  SublinearSolver solver(options);
  const auto result = solver.solve(p);
  EXPECT_EQ(result.iterations, 3u);
}

}  // namespace
}  // namespace subdp::core
