// Unit tests for the deterministic PRNG (support/rng.hpp).

#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

namespace subdp::support {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(3, 3), 3);
  }
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, UniformIntCoversAllValuesOfSmallRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, kBuckets - 1))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets / 5);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  // The child should not replay the parent's stream.
  Rng a2(31);
  (void)a2.next();  // account for the fork's draw
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next() == a2.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Splitmix64, KnownFirstValueIsStable) {
  std::uint64_t s1 = 0, s2 = 0;
  const auto v1 = splitmix64(s1);
  const auto v2 = splitmix64(s2);
  EXPECT_EQ(v1, v2);
  EXPECT_NE(v1, 0u);
}

}  // namespace
}  // namespace subdp::support
