// Tests for the adversarial instance generator (dp/tree_shaped.hpp): the
// prescribed tree must be the unique optimum, across shapes and noise
// levels.

#include "dp/tree_shaped.hpp"

#include <gtest/gtest.h>

#include "dp/sequential.hpp"
#include "dp/tables.hpp"
#include "support/rng.hpp"
#include "trees/generators.hpp"

namespace subdp::dp {
namespace {

using trees::TreeShape;
using trees::make_tree;

TEST(TreeShaped, OptimalCostMatchesPlantedTree) {
  support::Rng rng(51);
  const auto target = make_tree(TreeShape::kZigzag, 12);
  const auto inst = make_tree_shaped_instance(target, rng);
  EXPECT_EQ(solve_sequential(inst.problem).cost, inst.optimal_cost);
  EXPECT_EQ(tree_weight(inst.problem, target), inst.optimal_cost);
}

TEST(TreeShaped, ZeroNoiseMeansZeroCost) {
  support::Rng rng(52);
  const auto target = make_tree(TreeShape::kComplete, 16);
  const auto inst = make_tree_shaped_instance(target, rng, 0);
  EXPECT_EQ(inst.optimal_cost, 0);
  EXPECT_EQ(solve_sequential(inst.problem).cost, 0);
}

TEST(TreeShaped, RecoveredTreeIsExactlyTheTarget) {
  support::Rng rng(53);
  for (const TreeShape shape :
       {TreeShape::kZigzag, TreeShape::kLeftSkewed, TreeShape::kComplete,
        TreeShape::kRandom}) {
    const auto target = make_tree(shape, 14, &rng);
    const auto inst = make_tree_shaped_instance(target, rng);
    const auto result = solve_sequential(inst.problem);
    const auto recovered = extract_tree(result);
    ASSERT_EQ(recovered.node_count(), target.node_count());
    for (trees::NodeId x = 0;
         static_cast<std::size_t>(x) < target.node_count(); ++x) {
      // Same node set: every target node exists in the recovered tree
      // with the same interval (node ids may differ; compare via lookup).
      EXPECT_NE(recovered.node_at(target.lo(x), target.hi(x)),
                trees::kNoNode)
          << to_string(shape) << " missing node (" << target.lo(x) << ","
          << target.hi(x) << ")";
    }
  }
}

TEST(TreeShaped, OffTreeDecompositionsArePenalised) {
  support::Rng rng(54);
  const auto target = make_tree(TreeShape::kRightSkewed, 8);
  const auto inst = make_tree_shaped_instance(target, rng, 4);
  // Any interval that is not a node of the target must carry the penalty
  // on all its splits.
  const Cost penalty_floor = 4 * 2 * 8;  // > max possible on-tree total
  for (std::size_t i = 0; i + 2 <= 8; ++i) {
    for (std::size_t j = i + 2; j <= 8; ++j) {
      if (target.node_at(i, j) != trees::kNoNode) continue;
      for (std::size_t k = i + 1; k < j; ++k) {
        EXPECT_GE(inst.problem.f(i, k, j), penalty_floor);
      }
    }
  }
}

TEST(TreeShaped, WrongSplitOfOnTreeNodeIsPenalised) {
  support::Rng rng(55);
  const auto target = make_tree(TreeShape::kComplete, 8);
  const auto inst = make_tree_shaped_instance(target, rng, 4);
  const auto root_split = target.split(target.root());
  for (std::size_t k = 1; k < 8; ++k) {
    if (k == root_split) continue;
    EXPECT_GE(inst.problem.f(0, k, 8), 4 * 2 * 8);
  }
}

TEST(TreeShaped, SingleLeafTarget) {
  support::Rng rng(56);
  const auto target = trees::FullBinaryTree::build(1, {});
  const auto inst = make_tree_shaped_instance(target, rng, 3);
  EXPECT_EQ(inst.problem.size(), 1u);
  EXPECT_EQ(inst.problem.init(0), inst.optimal_cost);
}

TEST(TreeShaped, DeterministicGivenSeed) {
  const auto target = make_tree(TreeShape::kZigzag, 10);
  support::Rng a(77), b(77);
  const auto ia = make_tree_shaped_instance(target, a);
  const auto ib = make_tree_shaped_instance(target, b);
  EXPECT_EQ(ia.optimal_cost, ib.optimal_cost);
  EXPECT_EQ(solve_sequential(ia.problem).cost,
            solve_sequential(ib.problem).cost);
}

}  // namespace
}  // namespace subdp::dp
