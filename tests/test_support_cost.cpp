// Unit tests for the saturating cost domain (support/cost.hpp).

#include "support/cost.hpp"

#include <gtest/gtest.h>

namespace subdp {
namespace {

TEST(Cost, InfinityIsNotFinite) {
  EXPECT_FALSE(is_finite(kInfinity));
  EXPECT_TRUE(is_finite(0));
  EXPECT_TRUE(is_finite(kInfinity - 1));
}

TEST(Cost, SatAddFiniteValuesIsExact) {
  EXPECT_EQ(sat_add(2, 3), 5);
  EXPECT_EQ(sat_add(0, 0), 0);
  EXPECT_EQ(sat_add(1'000'000'000LL, 2'000'000'000LL), 3'000'000'000LL);
}

TEST(Cost, SatAddWithInfinitySaturates) {
  EXPECT_EQ(sat_add(kInfinity, 0), kInfinity);
  EXPECT_EQ(sat_add(0, kInfinity), kInfinity);
  EXPECT_EQ(sat_add(kInfinity, kInfinity), kInfinity);
}

TEST(Cost, SatAddDoesNotOverflowNearInfinity) {
  // Two large finite values must saturate, not wrap around.
  const Cost big = kInfinity - 1;
  EXPECT_EQ(sat_add(big, big), kInfinity);
  EXPECT_EQ(sat_add(big, 1), kInfinity);
}

TEST(Cost, ThreeOperandSatAdd) {
  EXPECT_EQ(sat_add(1, 2, 3), 6);
  EXPECT_EQ(sat_add(1, kInfinity, 3), kInfinity);
  EXPECT_EQ(sat_add(kInfinity, 2, 3), kInfinity);
  EXPECT_EQ(sat_add(1, 2, kInfinity), kInfinity);
}

TEST(Cost, SatMin) {
  EXPECT_EQ(sat_min(3, 5), 3);
  EXPECT_EQ(sat_min(5, 3), 3);
  EXPECT_EQ(sat_min(kInfinity, 3), 3);
  EXPECT_EQ(sat_min(kInfinity, kInfinity), kInfinity);
}

TEST(Cost, SatAddIsAssociativeOnSamples) {
  const Cost samples[] = {0, 1, 17, kInfinity - 2, kInfinity};
  for (const Cost a : samples) {
    for (const Cost b : samples) {
      for (const Cost c : samples) {
        EXPECT_EQ(sat_add(sat_add(a, b), c), sat_add(a, sat_add(b, c)));
      }
    }
  }
}

}  // namespace
}  // namespace subdp
