// Tests for the Knuth O(n^2) speedup (dp/knuth.hpp): applicability
// checkers and equality with the O(n^3) baseline where the quadrangle
// inequality holds.

#include "dp/knuth.hpp"

#include <gtest/gtest.h>

#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/sequential.hpp"
#include "dp/tabulated.hpp"
#include "support/rng.hpp"

namespace subdp::dp {
namespace {

TEST(Knuth, BstIsKIndependent) {
  support::Rng rng(31);
  EXPECT_TRUE(is_k_independent(OptimalBstProblem::random(10, rng)));
}

TEST(Knuth, MatrixChainIsNotKIndependent) {
  // Generic dims make f depend on k.
  const MatrixChainProblem p({2, 3, 5, 7, 11});
  EXPECT_FALSE(is_k_independent(p));
}

TEST(Knuth, BstSatisfiesQuadrangleInequality) {
  support::Rng rng(32);
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_TRUE(
        satisfies_quadrangle_inequality(OptimalBstProblem::random(8, rng)));
  }
}

TEST(Knuth, QiCheckerRejectsCraftedViolation) {
  // A k-independent w that violates QI: w(0,2)=5, w(1,3)=5, w(1,2)=0,
  // w(0,3)=0 -> w(0,2)+w(1,3)=10 > w(1,2)+w(0,3)=0.
  TabulatedProblem p(3, "qi-violator");
  p.set_f(0, 1, 2, 5);
  p.set_f(1, 2, 3, 5);
  // w(0,3) stays 0 for both k values.
  EXPECT_TRUE(is_k_independent(p));
  EXPECT_FALSE(satisfies_quadrangle_inequality(p));
}

TEST(Knuth, MatchesSequentialOnClrsBst) {
  const auto p = OptimalBstProblem::clrs_example();
  EXPECT_EQ(solve_knuth(p).cost, solve_sequential(p).cost);
}

TEST(Knuth, MatchesSequentialOnRandomBsts) {
  support::Rng rng(33);
  for (std::size_t keys = 1; keys <= 24; ++keys) {
    const auto p = OptimalBstProblem::random(keys, rng);
    const auto fast = solve_knuth(p);
    const auto slow = solve_sequential(p);
    ASSERT_EQ(fast.cost, slow.cost) << "keys=" << keys;
    // Every cell must agree, not just the root.
    for (std::size_t i = 0; i < p.size(); ++i) {
      for (std::size_t j = i + 1; j <= p.size(); ++j) {
        ASSERT_EQ(fast.c(i, j), slow.c(i, j))
            << "keys=" << keys << " cell (" << i << "," << j << ")";
      }
    }
  }
}

TEST(Knuth, DoesQuadraticallyLessWorkThanSequential) {
  support::Rng rng(34);
  const auto p = OptimalBstProblem::random(60, rng);
  std::uint64_t fast_ops = 0, slow_ops = 0;
  (void)solve_knuth(p, &fast_ops);
  (void)solve_sequential(p, &slow_ops);
  // Knuth: O(n^2) candidate evaluations; sequential: Theta(n^3)/6.
  EXPECT_LT(fast_ops * 4, slow_ops);
}

TEST(Knuth, ZeroWeightDegenerateStillCorrect) {
  const OptimalBstProblem p({0, 0, 0}, {0, 0, 0, 0});
  EXPECT_EQ(solve_knuth(p).cost, 0);
}

}  // namespace
}  // namespace subdp::dp
