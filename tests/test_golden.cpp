// Golden regression tests: exact costs, iteration counts and PRAM
// work/depth ledgers for fixed seeds. All quantities are deterministic
// by construction (seeded xoshiro PRNG, integer costs, min-reductions),
// so any drift here means the algorithm, the cost accounting or the
// instance generators changed behaviour — the quantities EXPERIMENTS.md
// is built on.
//
// If a change is *intended* (e.g. a different depth-charging rule),
// regenerate the table below and record the reason in the commit.

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "support/rng.hpp"

namespace subdp {
namespace {

struct GoldenCase {
  std::size_t n;
  core::PwVariant variant;
  Cost cost;
  std::size_t iterations;
  std::uint64_t work;
  std::uint64_t depth;
};

// Matrix-chain instances with seed 9000 + n, fixed-point termination.
const GoldenCase kMatrixChainGolden[] = {
    {8u, core::PwVariant::kDense, 30074, 5u, 6930ull, 80ull},
    {8u, core::PwVariant::kBanded, 30074, 5u, 6620ull, 75ull},
    {16u, core::PwVariant::kDense, 250800, 7u, 198492ull, 140ull},
    {16u, core::PwVariant::kBanded, 250800, 5u, 86130ull, 85ull},
    {24u, core::PwVariant::kDense, 252848, 7u, 1283170ull, 161ull},
    {24u, core::PwVariant::kBanded, 252848, 7u, 549983ull, 140ull},
    {32u, core::PwVariant::kDense, 255672, 8u, 5696064ull, 192ull},
    {32u, core::PwVariant::kBanded, 255672, 7u, 1678075ull, 140ull},
};

class GoldenMatrixChainTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenMatrixChainTest, LedgerIsBitStable) {
  const auto& g = GetParam();
  support::Rng rng(9000 + g.n);
  const auto p = dp::MatrixChainProblem::random(g.n, rng);
  core::SublinearOptions options;
  options.variant = g.variant;
  options.termination = core::TerminationMode::kFixedPoint;
  core::SublinearSolver solver(options);
  const auto result = solver.solve(p);
  EXPECT_EQ(result.cost, g.cost);
  EXPECT_EQ(result.iterations, g.iterations);
  EXPECT_EQ(solver.machine().costs().total_work(), g.work);
  EXPECT_EQ(solver.machine().costs().total_depth(), g.depth);
}

INSTANTIATE_TEST_SUITE_P(
    Pinned, GoldenMatrixChainTest,
    ::testing::ValuesIn(kMatrixChainGolden),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string("n") + std::to_string(info.param.n) + "_" +
             to_string(info.param.variant);
    });

TEST(Golden, BandedConvergesNoLaterButOftenEarlierThanDense) {
  // Observation pinned from the table above: the banded fixed point can
  // arrive *earlier* than the dense one (n = 16: 5 vs 7 iterations) —
  // fewer stored cells keep improving after w' has settled. The w tables
  // still agree exactly.
  support::Rng rng_a(9000 + 16), rng_b(9000 + 16);
  const auto pa = dp::MatrixChainProblem::random(16, rng_a);
  const auto pb = dp::MatrixChainProblem::random(16, rng_b);
  core::SublinearOptions dense_opts;
  dense_opts.variant = core::PwVariant::kDense;
  core::SublinearOptions banded_opts;
  core::SublinearSolver dense(dense_opts), banded(banded_opts);
  const auto rd = dense.solve(pa);
  const auto rb = banded.solve(pb);
  EXPECT_LE(rb.iterations, rd.iterations);
  EXPECT_TRUE(rd.w == rb.w);
}

TEST(Golden, OptimalBstLedger) {
  {
    support::Rng rng(9110);
    const auto p = dp::OptimalBstProblem::random(10, rng);
    core::SublinearSolver solver;
    const auto r = solver.solve(p);
    EXPECT_EQ(r.cost, 1907);
    EXPECT_EQ(r.iterations, 6u);
    EXPECT_EQ(solver.machine().costs().total_work(), 29796u);
    EXPECT_EQ(solver.machine().costs().total_depth(), 102u);
  }
  {
    support::Rng rng(9120);
    const auto p = dp::OptimalBstProblem::random(20, rng);
    core::SublinearSolver solver;
    const auto r = solver.solve(p);
    EXPECT_EQ(r.cost, 3814);
    EXPECT_EQ(r.iterations, 7u);
    EXPECT_EQ(solver.machine().costs().total_work(), 372988u);
    EXPECT_EQ(solver.machine().costs().total_depth(), 140u);
  }
}

TEST(Golden, TextbookAnswersNeverDrift) {
  EXPECT_EQ(core::solve(dp::MatrixChainProblem::clrs_example()).cost, 15125);
  EXPECT_EQ(core::solve(dp::OptimalBstProblem::clrs_example()).cost, 235);
}

}  // namespace
}  // namespace subdp
