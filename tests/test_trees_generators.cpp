// Tests for the tree-shape generators (trees/generators.hpp), including
// shape-specific structural properties and a parameterized validation
// sweep over all shapes and many sizes.

#include "trees/generators.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace subdp::trees {
namespace {

TEST(Generators, CompleteTreeIsBalanced) {
  const auto t = make_tree(TreeShape::kComplete, 32);
  // Every internal node's children differ in size by at most 1.
  for (NodeId x = 0; static_cast<std::size_t>(x) < t.node_count(); ++x) {
    if (t.is_leaf(x)) continue;
    const auto a = t.size(t.left(x));
    const auto b = t.size(t.right(x));
    EXPECT_LE(a > b ? a - b : b - a, 1u);
  }
}

TEST(Generators, LeftSkewedSpineShedsRightLeaves) {
  const auto t = make_tree(TreeShape::kLeftSkewed, 10);
  NodeId x = t.root();
  std::size_t depth = 0;
  while (!t.is_leaf(x)) {
    EXPECT_TRUE(t.is_leaf(t.right(x)));
    x = t.left(x);
    ++depth;
  }
  EXPECT_EQ(depth, 9u);
}

TEST(Generators, RightSkewedSpineShedsLeftLeaves) {
  const auto t = make_tree(TreeShape::kRightSkewed, 10);
  NodeId x = t.root();
  while (!t.is_leaf(x)) {
    EXPECT_TRUE(t.is_leaf(t.left(x)));
    x = t.right(x);
  }
}

TEST(Generators, ZigzagAlternatesSpineDirection) {
  const auto t = make_tree(TreeShape::kZigzag, 12);
  // Walk the spine: the non-leaf child alternates sides every level.
  NodeId x = t.root();
  int expect_leaf_on_left = 1;  // depth 0 splits at lo+1: left child is leaf
  while (!t.is_leaf(x) && t.size(x) > 2) {
    const NodeId l = t.left(x);
    const NodeId r = t.right(x);
    if (expect_leaf_on_left) {
      EXPECT_TRUE(t.is_leaf(l));
      x = r;
    } else {
      EXPECT_TRUE(t.is_leaf(r));
      x = l;
    }
    expect_leaf_on_left ^= 1;
  }
}

TEST(Generators, ZigzagIsDeterministic) {
  const auto a = make_tree(TreeShape::kZigzag, 30);
  const auto b = make_tree(TreeShape::kZigzag, 30);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (NodeId x = 0; static_cast<std::size_t>(x) < a.node_count(); ++x) {
    EXPECT_EQ(a.lo(x), b.lo(x));
    EXPECT_EQ(a.hi(x), b.hi(x));
  }
}

TEST(Generators, RandomTreesVaryWithSeed) {
  support::Rng r1(1), r2(2);
  const auto a = make_tree(TreeShape::kRandom, 64, &r1);
  const auto b = make_tree(TreeShape::kRandom, 64, &r2);
  bool differs = false;
  for (NodeId x = 0; static_cast<std::size_t>(x) < a.node_count(); ++x) {
    if (a.lo(x) != b.lo(x) || a.hi(x) != b.hi(x)) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, RandomShapeRequiresRng) {
  EXPECT_THROW((void)make_tree(TreeShape::kRandom, 8, nullptr),
               std::invalid_argument);
  EXPECT_THROW((void)make_tree(TreeShape::kBiasedRandom, 8, nullptr),
               std::invalid_argument);
}

TEST(Generators, ShapeNamesRoundTrip) {
  for (const TreeShape s : kAllShapes) {
    const auto parsed = shape_from_string(to_string(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(shape_from_string("bogus").has_value());
}

struct ShapeSizeParam {
  TreeShape shape;
  std::size_t n;
};

class GeneratorValidationTest
    : public ::testing::TestWithParam<ShapeSizeParam> {};

TEST_P(GeneratorValidationTest, ProducesValidFullBinaryTree) {
  const auto [shape, n] = GetParam();
  support::Rng rng(123);
  const auto t = make_tree(shape, n, &rng);
  EXPECT_EQ(t.leaf_count(), n);
  EXPECT_TRUE(t.validate());
}

std::vector<ShapeSizeParam> all_shape_sizes() {
  std::vector<ShapeSizeParam> params;
  for (const TreeShape s : kAllShapes) {
    for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 16u, 33u, 100u, 257u}) {
      params.push_back({s, n});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllShapesAndSizes, GeneratorValidationTest,
    ::testing::ValuesIn(all_shape_sizes()),
    [](const ::testing::TestParamInfo<ShapeSizeParam>& info) {
      std::string name = to_string(info.param.shape);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_" + std::to_string(info.param.n);
    });

}  // namespace
}  // namespace subdp::trees
