// Round-trip and rejection tests for the plan snapshot format
// (snapshot/plan_snapshot.hpp) and the snapshot store
// (snapshot/snapshot_store.hpp).
//
// The contract under test is bit-identity: a plan decoded from a snapshot
// must be indistinguishable from a freshly built one, so a solve through
// it produces the same cost, iteration count, full w table and
// per-iteration trace — across both pw layouts, every bench instance
// family, and the option toggles that shape a plan. The rejection half
// asserts the trust-nothing decode: truncated files, flipped payload or
// checksum bytes, stale format versions and key/filename mismatches are
// all detected, counted as rejected misses, and followed by a clean
// rebuild — never a crash, never a wrong answer.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/solve_plan.hpp"
#include "core/solve_session.hpp"
#include "core/solver_types.hpp"
#include "dp/sequential.hpp"
#include "snapshot/plan_snapshot.hpp"
#include "snapshot/snapshot_store.hpp"
#include "support/rng.hpp"

namespace subdp::snapshot {
namespace {

namespace fs = std::filesystem;

/// A fresh directory under the system temp root, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() / ("subdp-snapshot-test-" + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

core::SublinearResult solve_with(std::shared_ptr<const core::SolvePlan> plan,
                                 const dp::Problem& problem) {
  core::SolveSession session(std::move(plan));
  return session.solve(problem);
}

void expect_identical(const core::SublinearResult& ref,
                      const core::SublinearResult& got,
                      const std::string& label) {
  EXPECT_EQ(ref.cost, got.cost) << label;
  EXPECT_EQ(ref.iterations, got.iterations) << label;
  EXPECT_TRUE(ref.w == got.w) << label << ": w tables differ";
  ASSERT_EQ(ref.trace.size(), got.trace.size()) << label;
  for (std::size_t t = 0; t < ref.trace.size(); ++t) {
    EXPECT_EQ(ref.trace[t].pw_cells_changed, got.trace[t].pw_cells_changed)
        << label << " iteration " << t + 1;
    EXPECT_EQ(ref.trace[t].w_cells_changed, got.trace[t].w_cells_changed)
        << label << " iteration " << t + 1;
  }
}

/// Encode -> decode through an owned buffer (the buffered-read path).
std::shared_ptr<const core::SolvePlan> reencode(
    const std::shared_ptr<const core::SolvePlan>& plan) {
  auto bytes =
      std::make_shared<std::vector<std::uint8_t>>(encode_plan(*plan));
  return decode_plan(bytes->data(), bytes->size(), bytes, plan->n(),
                     plan->options());
}

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void dump(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// The one snapshot file in `dir` (the store names it; tests tamper with
/// its bytes without re-deriving the shape-keyed name).
fs::path only_snapshot_file(const fs::path& dir) {
  fs::path found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".snap") {
      EXPECT_TRUE(found.empty()) << "more than one snapshot in " << dir;
      found = entry.path();
    }
  }
  EXPECT_FALSE(found.empty()) << "no snapshot file in " << dir;
  return found;
}

// Format-v1 byte offsets (documented in plan_snapshot.cpp's header
// struct); the tamper tests below flip bytes at these positions.
constexpr std::size_t kHeaderBytes = 160;
constexpr std::size_t kVersionOffset = 8;     // format_version u32
constexpr std::size_t kChecksumOffset = 152;  // payload_checksum u64

// ---- Round-trip bit-identity -----------------------------------------------

TEST(SnapshotRoundTrip, BitIdenticalEveryFamilyBanded) {
  for (const std::string& family : bench::instance_families()) {
    support::Rng rng(2026);
    const auto problem = bench::make_instance(family, 33, rng);
    core::SublinearOptions options;  // banded default, instrumented
    const auto fresh = core::SolvePlan::create(33, options);
    const auto loaded = reencode(fresh);
    const auto ref = solve_with(fresh, *problem);
    EXPECT_EQ(ref.cost, dp::solve_sequential(*problem).cost) << family;
    expect_identical(ref, solve_with(loaded, *problem), family);
  }
}

TEST(SnapshotRoundTrip, BitIdenticalEveryFamilyDense) {
  for (const std::string& family : bench::instance_families()) {
    support::Rng rng(31);
    const auto problem = bench::make_instance(family, 18, rng);
    core::SublinearOptions options;
    options.variant = core::PwVariant::kDense;
    const auto fresh = core::SolvePlan::create(18, options);
    const auto loaded = reencode(fresh);
    expect_identical(solve_with(fresh, *problem),
                     solve_with(loaded, *problem), family);
  }
}

TEST(SnapshotRoundTrip, OptionTogglesSurviveTheFormat) {
  // Every toggle that changes the engine shape or the session
  // configuration must round-trip: the decoded plan carries the same
  // options and solves identically.
  struct Toggle {
    std::string name;
    core::SublinearOptions options;
  };
  std::vector<Toggle> toggles;
  toggles.push_back({"default", {}});
  {
    core::SublinearOptions o;
    o.delta_buffering = false;
    toggles.push_back({"no-delta", o});
  }
  {
    core::SublinearOptions o;
    o.frontier_sweeps = false;
    toggles.push_back({"no-frontier", o});
  }
  {
    core::SublinearOptions o;
    o.pebble_cursor = false;
    o.incremental_marks = false;
    toggles.push_back({"legacy-pebble", o});
  }
  {
    core::SublinearOptions o;
    o.machine.record_costs = false;
    toggles.push_back({"fast", o});
  }
  {
    core::SublinearOptions o;
    o.band_width = 4;
    toggles.push_back({"band-4", o});
  }

  support::Rng rng(5);
  const auto problem = bench::make_instance("matrix-chain", 24, rng);
  for (const Toggle& toggle : toggles) {
    const auto fresh = core::SolvePlan::create(24, toggle.options);
    const auto loaded = reencode(fresh);
    EXPECT_EQ(loaded->n(), fresh->n()) << toggle.name;
    EXPECT_EQ(loaded->iteration_bound(), fresh->iteration_bound())
        << toggle.name;
    EXPECT_EQ(loaded->effective_band(), fresh->effective_band())
        << toggle.name;
    EXPECT_EQ(loaded->iteration_cap(), fresh->iteration_cap())
        << toggle.name;
    expect_identical(solve_with(fresh, *problem),
                     solve_with(loaded, *problem), toggle.name);
  }
}

TEST(SnapshotRoundTrip, SmallShapesIncludingTrivial) {
  // n == 1 has no engine shape (header-only snapshot); n == 2 and 3 are
  // the smallest non-trivial geometries.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                              std::size_t{3}}) {
    const auto fresh = core::SolvePlan::create(n);
    const auto encoded = encode_plan(*fresh);
    if (n == 1) EXPECT_EQ(encoded.size(), kHeaderBytes);
    const auto loaded = reencode(fresh);
    support::Rng rng(n);
    const auto problem = bench::make_instance("matrix-chain", n, rng);
    expect_identical(solve_with(fresh, *problem),
                     solve_with(loaded, *problem),
                     "n=" + std::to_string(n));
  }
}

// ---- Store save / load -----------------------------------------------------

TEST(SnapshotStoreTest, SaveLoadSolvesIdentically) {
  TempDir dir("save-load");
  SnapshotStore store(dir.str());
  const auto fresh = core::SolvePlan::create(24);
  ASSERT_TRUE(store.save(fresh));
  EXPECT_EQ(store.stats().writes_completed, 1u);
  EXPECT_EQ(store.scan().size(), 1u);

  const auto loaded = store.load(24, fresh->options());
  ASSERT_NE(loaded, nullptr);
  const auto stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.rejected, 0u);

  support::Rng rng(12);
  const auto problem = bench::make_instance("optimal-bst", 24, rng);
  expect_identical(solve_with(fresh, *problem),
                   solve_with(loaded, *problem), "store round-trip");
}

TEST(SnapshotStoreTest, AsyncWriteBackInstallsAfterFlush) {
  TempDir dir("async");
  SnapshotStore store(dir.str());
  store.save_async(core::SolvePlan::create(17));
  store.flush();
  EXPECT_EQ(store.stats().writes_completed, 1u);
  EXPECT_NE(store.load(17, {}), nullptr);
  // Temp-file discipline: nothing but the installed .snap remains.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".snap") << entry.path();
  }
  EXPECT_EQ(files, 1u);
}

TEST(SnapshotStoreTest, MissingFileIsAPlainMiss) {
  TempDir dir("miss");
  SnapshotStore store(dir.str());
  EXPECT_EQ(store.load(24, {}), nullptr);
  const auto stats = store.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.rejected, 0u);  // absent, not corrupt
}

TEST(SnapshotStoreTest, EvictRemovesTheFile) {
  TempDir dir("evict");
  SnapshotStore store(dir.str());
  ASSERT_TRUE(store.save(core::SolvePlan::create(15)));
  EXPECT_TRUE(store.evict(15, {}));
  EXPECT_FALSE(store.evict(15, {}));  // already gone
  EXPECT_EQ(store.load(15, {}), nullptr);
  EXPECT_EQ(store.stats().rejected, 0u);
}

// ---- Rejection: corrupt, truncated, stale, mismatched ----------------------

/// Installs a good snapshot for `(n, {})`, applies `tamper` to its bytes,
/// and asserts the load is a rejected miss followed by a clean rebuild
/// that repairs the file.
template <class Tamper>
void expect_rejected_then_rebuilt(const std::string& tag, Tamper tamper) {
  TempDir dir(tag);
  SnapshotStore store(dir.str());
  ASSERT_TRUE(store.save(core::SolvePlan::create(24)));
  const fs::path file = only_snapshot_file(dir.path());
  std::vector<std::uint8_t> bytes = slurp(file);
  ASSERT_GT(bytes.size(), kHeaderBytes);
  tamper(bytes);
  dump(file, bytes);

  // The PlanCache fallback protocol: load -> null -> rebuild -> save.
  EXPECT_EQ(store.load(24, {}), nullptr) << tag;
  auto stats = store.stats();
  EXPECT_EQ(stats.misses, 1u) << tag;
  EXPECT_EQ(stats.rejected, 1u) << tag;

  const auto rebuilt = core::SolvePlan::create(24);
  ASSERT_TRUE(store.save(rebuilt)) << tag;
  const auto reloaded = store.load(24, {});
  ASSERT_NE(reloaded, nullptr) << tag;
  support::Rng rng(88);
  const auto problem = bench::make_instance("triangulation", 24, rng);
  expect_identical(solve_with(rebuilt, *problem),
                   solve_with(reloaded, *problem), tag);
}

TEST(SnapshotRejection, TruncatedBelowHeader) {
  expect_rejected_then_rebuilt("trunc-header", [](auto& bytes) {
    bytes.resize(kHeaderBytes / 2);
  });
}

TEST(SnapshotRejection, TruncatedMidPayload) {
  expect_rejected_then_rebuilt("trunc-payload", [](auto& bytes) {
    bytes.resize(bytes.size() - 7);
  });
}

TEST(SnapshotRejection, FlippedPayloadByte) {
  expect_rejected_then_rebuilt("flip-payload", [](auto& bytes) {
    bytes[kHeaderBytes + 3] ^= 0x40;  // checksum must catch it
  });
}

TEST(SnapshotRejection, FlippedChecksumByte) {
  expect_rejected_then_rebuilt("flip-checksum", [](auto& bytes) {
    bytes[kChecksumOffset] ^= 0x01;
  });
}

TEST(SnapshotRejection, StaleFormatVersion) {
  expect_rejected_then_rebuilt("stale-version", [](auto& bytes) {
    bytes[kVersionOffset] ^= 0xFF;  // a future/old format_version
  });
}

TEST(SnapshotRejection, BadMagic) {
  expect_rejected_then_rebuilt("bad-magic", [](auto& bytes) {
    bytes[0] ^= 0x20;
  });
}

TEST(SnapshotRejection, KeyFilenameMismatch) {
  // A valid file for shape A copied under shape B's name: the embedded
  // key is authoritative, so B's load rejects it (and A's still works).
  TempDir dir("wrong-key");
  SnapshotStore store(dir.str());
  core::SublinearOptions options_a;  // default
  core::SublinearOptions options_b;
  options_b.delta_buffering = false;
  ASSERT_TRUE(store.save(core::SolvePlan::create(24, options_a)));
  const fs::path file_a = only_snapshot_file(dir.path());
  const fs::path file_b =
      dir.path() / snapshot_file_name(24, options_b);
  ASSERT_NE(file_a, file_b);  // distinct shapes never share a name
  fs::copy_file(file_a, file_b);

  EXPECT_EQ(store.load(24, options_b), nullptr);
  EXPECT_EQ(store.stats().rejected, 1u);
  EXPECT_NE(store.load(24, options_a), nullptr);  // A is untouched
  EXPECT_EQ(store.stats().hits, 1u);
}

TEST(SnapshotRejection, DecodeThrowsInsteadOfMisSolving) {
  // The decode layer itself: every tamper class throws (the store turns
  // this into a miss); none produces a plan.
  const auto plan = core::SolvePlan::create(12);
  auto bytes =
      std::make_shared<std::vector<std::uint8_t>>(encode_plan(*plan));
  const auto decode = [&](std::size_t size, std::size_t n,
                          const core::SublinearOptions& options) {
    return decode_plan(bytes->data(), size, bytes, n, options);
  };
  // Shorter than the header.
  EXPECT_THROW((void)decode(kHeaderBytes - 1, 12, {}),
               std::invalid_argument);
  // Requested shape disagrees with the embedded key.
  EXPECT_THROW((void)decode(bytes->size(), 13, {}), std::invalid_argument);
  core::SublinearOptions other;
  other.frontier_sweeps = false;
  EXPECT_THROW((void)decode(bytes->size(), 12, other),
               std::invalid_argument);
  // Claimed payload size disagrees with the buffer.
  EXPECT_THROW((void)decode(bytes->size() - 16, 12, {}),
               std::invalid_argument);
  // The untampered buffer still decodes (the guard rails are targeted).
  EXPECT_NE(decode(bytes->size(), 12, {}), nullptr);
}

// ---- Manifest --------------------------------------------------------------

TEST(SnapshotManifest, RoundTripsAndSkipsMalformedLines) {
  TempDir dir("manifest");
  SnapshotStore store(dir.str());
  EXPECT_TRUE(store.read_manifest().empty());  // absent file: no shapes

  store.write_manifest({24, 7, 96});
  EXPECT_EQ(store.read_manifest(),
            (std::vector<std::size_t>{24, 7, 96}));

  // A damaged manifest degrades prewarming, never startup: junk lines,
  // comments and zeros are skipped, valid entries survive.
  std::ofstream out(dir.path() / SnapshotStore::kManifestFile,
                    std::ios::trunc);
  out << "# comment\n\n  48\nnot-a-number\n0\n12 trailing junk\n";
  out.close();
  EXPECT_EQ(store.read_manifest(),
            (std::vector<std::size_t>{48, 12}));
}

}  // namespace
}  // namespace subdp::snapshot
