// Service-level observability tests: per-job trace spans covering every
// outcome (completed, rejected, expired, cold-deferred), stage latency
// histograms reconciling with the admission counters, the Prometheus /
// JSON metrics surface carrying every ServiceStats counter, manual-clock
// determinism, and the tracing-disabled / ring-overflow edges.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/solver_types.hpp"
#include "dp/matrix_chain.hpp"
#include "obs/clock.hpp"
#include "serve/solver_service.hpp"
#include "support/rng.hpp"

namespace subdp::serve {
namespace {

dp::MatrixChainProblem chain(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return dp::MatrixChainProblem::random(n, rng);
}

bool balanced_json(const std::string& s) {
  return std::count(s.begin(), s.end(), '{') ==
             std::count(s.begin(), s.end(), '}') &&
         std::count(s.begin(), s.end(), '[') ==
             std::count(s.begin(), s.end(), ']');
}

TEST(ServiceTrace, CoversCompletedColdDeferredRejectedAndExpiredJobs) {
  const auto manual = std::make_shared<obs::ManualClock>();
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.overload_policy = OverloadPolicy::kReject;
  options.clock = manual;
  SolverService service(options);

  const auto problem = chain(16, 11);
  // Completed (and cold-deferred: the first job of a cold shape goes
  // through the builder).
  auto done = service.submit(problem);
  (void)done.get();

  // Rejected: flood a 1-deep queue until at least one submit sheds.
  std::vector<std::future<core::SublinearResult>> flood;
  std::size_t rejected = 0;
  for (int k = 0; k < 64; ++k) {
    try {
      flood.push_back(service.submit(problem));
    } catch (const core::AdmissionError&) {
      ++rejected;
    }
  }
  for (auto& f : flood) (void)f.get();
  ASSERT_GE(rejected, 1u);

  // Expired: on the manual clock the deadline is deterministically in
  // the past at pickup — no sleeping, no racing the worker.
  auto doomed = service.submit(
      problem, manual->now() - std::chrono::milliseconds(1));
  EXPECT_THROW((void)doomed.get(), core::AdmissionError);

  const std::string trace = service.export_trace();
  EXPECT_TRUE(balanced_json(trace));
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("(completed)"), std::string::npos);
  EXPECT_NE(trace.find("(rejected)"), std::string::npos);
  EXPECT_NE(trace.find("(expired)"), std::string::npos);
  EXPECT_NE(trace.find("\"cold_deferred\": true"), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"cold_defer\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"plan_ready\""), std::string::npos);
  // The second and later jobs hit the now-warm cache.
  EXPECT_NE(trace.find("\"source\": \"cache-hit\""), std::string::npos);
  EXPECT_NE(trace.find("\"source\": \"cold-build\""), std::string::npos);
}

TEST(ServiceHistograms, EndToEndCountMatchesCompletedJobsExactly) {
  ServiceOptions options;
  options.workers = 2;
  SolverService service(options);
  const auto problem = chain(12, 21);
  std::vector<std::future<core::SublinearResult>> futures;
  for (int k = 0; k < 10; ++k) futures.push_back(service.submit(problem));
  for (auto& f : futures) (void)f.get();
  std::vector<const dp::Problem*> batch = {&problem, &problem, &problem};
  (void)service.solve_all(batch);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_completed, 13u);
  EXPECT_EQ(stats.e2e.count, stats.jobs_completed);
  EXPECT_EQ(stats.queue_wait.count, stats.jobs_completed);
  EXPECT_EQ(stats.solve.count, stats.jobs_completed);
  // One shape was materialised once (the cold build).
  EXPECT_EQ(stats.plan_build.count, 1u);
  EXPECT_EQ(stats.snapshot_load.count, 0u);  // no snapshot store
  // Per-shape split: a single n=12 banded/hlv label carrying all jobs.
  ASSERT_EQ(stats.e2e_by_shape.size(), 1u);
  EXPECT_EQ(stats.e2e_by_shape[0].first, "n12-banded-hlv");
  EXPECT_EQ(stats.e2e_by_shape[0].second.count, stats.jobs_completed);
}

TEST(ServiceHistograms, ManualClockMakesLatenciesDeterministic) {
  // With an injected manual clock that never moves, every stage latency
  // is exactly zero: the histograms collapse into the zero bucket and
  // the quantiles read 0 — proof the service measures on the seam, not
  // on the real clock.
  ServiceOptions options;
  options.workers = 1;
  options.clock = std::make_shared<obs::ManualClock>();
  SolverService service(options);
  const auto problem = chain(10, 31);
  for (int k = 0; k < 4; ++k) (void)service.submit(problem).get();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.e2e.count, 4u);
  EXPECT_EQ(stats.e2e.buckets[0], 4u);  // all exact zeros
  EXPECT_EQ(stats.e2e.sum, 0u);
  EXPECT_DOUBLE_EQ(stats.e2e.p99(), 0.0);
  EXPECT_EQ(stats.queue_wait.buckets[0], stats.queue_wait.count);
  EXPECT_EQ(stats.solve.buckets[0], stats.solve.count);
}

TEST(ServiceMetrics, PrometheusCarriesEveryServiceStatsCounter) {
  ServiceOptions options;
  options.workers = 1;
  SolverService service(options);
  const auto problem = chain(12, 41);
  (void)service.submit(problem).get();

  const std::string text = service.metrics().to_prometheus();
  for (const char* name :
       {"subdp_workers", "subdp_jobs_submitted", "subdp_jobs_completed",
        "subdp_jobs_rejected", "subdp_jobs_expired",
        "subdp_jobs_cold_deferred", "subdp_total_iterations",
        "subdp_total_work", "subdp_total_depth", "subdp_sessions_created",
        "subdp_session_reuses", "subdp_snapshot_hits",
        "subdp_snapshot_misses", "subdp_snapshot_write_failures",
        "subdp_shapes_prewarmed", "subdp_plan_cache_capacity",
        "subdp_plan_cache_size", "subdp_plan_cache_hits",
        "subdp_plan_cache_misses", "subdp_plan_cache_evictions",
        "subdp_trace_dropped"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  // Every stage histogram renders count/sum and the percentile gauges.
  for (const char* stage :
       {"subdp_queue_wait_ns", "subdp_plan_build_ns",
        "subdp_snapshot_load_ns", "subdp_solve_ns", "subdp_e2e_ns"}) {
    EXPECT_NE(text.find(std::string(stage) + "_count"), std::string::npos)
        << stage;
    EXPECT_NE(text.find(std::string(stage) + "_sum"), std::string::npos)
        << stage;
    EXPECT_NE(text.find(std::string(stage) + "_p50"), std::string::npos)
        << stage;
    EXPECT_NE(text.find(std::string(stage) + "_p95"), std::string::npos)
        << stage;
    EXPECT_NE(text.find(std::string(stage) + "_p99"), std::string::npos)
        << stage;
  }
  // The per-shape e2e family carries its shape label.
  EXPECT_NE(text.find("subdp_e2e_shape_ns"), std::string::npos);
  EXPECT_NE(text.find("shape=\"n12-banded-hlv\""), std::string::npos);

  const std::string json = service.metrics().to_json();
  EXPECT_TRUE(balanced_json(json));
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(ServiceTrace, DisabledTracingStillExportsAValidEmptyTrace) {
  ServiceOptions options;
  options.workers = 1;
  options.trace_capacity = 0;  // tracing off
  SolverService service(options);
  const auto problem = chain(10, 51);
  (void)service.submit(problem).get();

  const std::string trace = service.export_trace();
  EXPECT_TRUE(balanced_json(trace));
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_EQ(service.stats().trace_dropped, 0u);
  // Histograms keep working with tracing off.
  EXPECT_EQ(service.stats().e2e.count, 1u);
}

TEST(ServiceTrace, RingOverflowIsCountedNeverBlocking) {
  ServiceOptions options;
  options.workers = 1;
  options.trace_capacity = 2;  // tiny ring: most events drop
  SolverService service(options);
  const auto problem = chain(10, 61);
  std::vector<std::future<core::SublinearResult>> futures;
  for (int k = 0; k < 16; ++k) futures.push_back(service.submit(problem));
  for (auto& f : futures) (void)f.get();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_completed, 16u);  // overflow never loses jobs
  EXPECT_GE(stats.trace_dropped, 1u);
  EXPECT_TRUE(balanced_json(service.export_trace()));
}

TEST(ServiceStatsSnapshot, AdmissionInvariantStillHoldsWithObservability) {
  const auto manual = std::make_shared<obs::ManualClock>();
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.overload_policy = OverloadPolicy::kReject;
  options.clock = manual;
  SolverService service(options);
  const auto problem = chain(12, 71);
  std::size_t rejected = 0;
  std::vector<std::future<core::SublinearResult>> futures;
  for (int k = 0; k < 32; ++k) {
    try {
      futures.push_back(service.submit(problem));
    } catch (const core::AdmissionError&) {
      ++rejected;
    }
  }
  // Drain first: the deadline submit below must find queue space, not
  // another rejection.
  for (auto& f : futures) (void)f.get();
  auto doomed = service.submit(
      problem, manual->now() - std::chrono::milliseconds(1));
  EXPECT_THROW((void)doomed.get(), core::AdmissionError);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_submitted,
            stats.jobs_completed + stats.jobs_rejected + stats.jobs_expired);
  EXPECT_EQ(stats.jobs_rejected, rejected);
  EXPECT_EQ(stats.e2e.count, stats.jobs_completed);
}

}  // namespace
}  // namespace subdp::serve
