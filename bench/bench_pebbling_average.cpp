// Experiment E3 (Sec. 6): the average-case recurrence
// T(n) = 1 + (1/(n-1)) sum_i max(T(i), T(n-i))  vs the simulated mean
// move count of the game on uniformly random split trees.
//
// Reproduces: T(n) = O(log n) (the paper's average-case theorem) and the
// unreported simulation study the paper alludes to. Empirically the game
// runs at ~T(n)/2: the recurrence serialises one move per combining
// level, while the real game pipelines activations across levels.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "support/cli.hpp"
#include "trees/average_case.hpp"
#include "trees/pebble_game.hpp"

using namespace subdp;

int main(int argc, char** argv) {
  support::ArgParser args("E3: average-case moves vs the Sec. 6 recurrence");
  args.add_int("max-exp", 14, "largest n = 2^k");
  args.add_int("trials", 50, "simulated trees per size");
  args.add_int("seed", 7, "base random seed");
  args.add_string("csv", "", "optional CSV output path");
  if (!args.parse(argc, argv)) return 2;

  const auto max_exp = static_cast<std::size_t>(args.get_int("max-exp"));
  const auto trials = static_cast<int>(args.get_int("trials"));
  const std::size_t max_n = std::size_t{1} << max_exp;
  const auto recurrence = trees::average_move_recurrence(max_n);

  support::TableWriter table(
      "E3: Sec. 6 average-case — exact recurrence vs simulation",
      {"n", "T(n) exact", "sim mean", "sim max", "sim/T(n)", "log2(n)",
       "bound 2ceil(sqrt n)"});

  std::vector<double> xs, recurrence_ys, sim_ys;
  for (std::size_t e = 4; e <= max_exp; ++e) {
    const std::size_t n = std::size_t{1} << e;
    support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) + e);
    double total = 0;
    std::size_t max_moves = 0;
    for (int rep = 0; rep < trials; ++rep) {
      const auto tree = trees::make_tree(trees::TreeShape::kRandom, n, &rng);
      trees::PebbleGame game(tree);
      game.run_until_root(support::two_ceil_sqrt(n));
      total += static_cast<double>(game.moves_made());
      max_moves = std::max(max_moves, game.moves_made());
    }
    const double mean = total / trials;
    table.add_row({static_cast<std::int64_t>(n), recurrence[n], mean,
                   static_cast<std::int64_t>(max_moves),
                   mean / recurrence[n],
                   static_cast<std::int64_t>(support::ceil_log2(n)),
                   static_cast<std::int64_t>(support::two_ceil_sqrt(n))});
    xs.push_back(static_cast<double>(n));
    recurrence_ys.push_back(recurrence[n]);
    sim_ys.push_back(mean);
  }

  table.print(std::cout);
  bench::maybe_write_csv(table, args.get_string("csv"));

  std::printf("\nGrowth fits:\n");
  bench::print_log_fit(std::cout, "exact T(n)", xs, recurrence_ys);
  bench::print_log_fit(std::cout, "simulated mean", xs, sim_ys);
  std::printf(
      "\nPaper's claim: T(n) = O(log n), hence O(log^2 n) average time "
      "for the algorithm; both curves must fit a + b*log2(n) with high "
      "R^2 and sit far below 2*ceil(sqrt n).\n");
  return 0;
}
