#pragma once

/// \file common.hpp
/// Shared helpers for the experiment binaries: problem factories keyed by
/// instance-family name, and fit-reporting utilities.

#include <cstdio>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "dp/matrix_chain.hpp"
#include "dp/optimal_bst.hpp"
#include "dp/polygon_triangulation.hpp"
#include "dp/tabulated.hpp"
#include "dp/tree_shaped.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table_writer.hpp"
#include "trees/generators.hpp"

namespace subdp::bench {

/// Instance families used across experiments. "zigzag" / "skewed" /
/// "complete" are adversarially planted optimal-tree shapes (Sec. 6).
inline const std::vector<std::string>& instance_families() {
  static const std::vector<std::string> kFamilies = {
      "matrix-chain", "optimal-bst", "triangulation",
      "zigzag",       "skewed",      "complete"};
  return kFamilies;
}

/// Builds an instance of `family` with `n` objects.
inline std::unique_ptr<dp::Problem> make_instance(const std::string& family,
                                                  std::size_t n,
                                                  support::Rng& rng) {
  if (family == "matrix-chain") {
    return std::make_unique<dp::MatrixChainProblem>(
        dp::MatrixChainProblem::random(n, rng));
  }
  if (family == "optimal-bst") {
    return std::make_unique<dp::OptimalBstProblem>(
        dp::OptimalBstProblem::random(n > 1 ? n - 1 : 1, rng));
  }
  if (family == "triangulation") {
    return std::make_unique<dp::PolygonTriangulationProblem>(
        dp::PolygonTriangulationProblem::random(n, rng));
  }
  const auto planted_shape = [&]() {
    if (family == "zigzag") return trees::TreeShape::kZigzag;
    if (family == "skewed") return trees::TreeShape::kLeftSkewed;
    if (family == "complete") return trees::TreeShape::kComplete;
    throw std::invalid_argument("unknown instance family: " + family);
  }();
  auto inst = dp::make_tree_shaped_instance(
      trees::make_tree(planted_shape, n, &rng), rng);
  return std::make_unique<dp::TabulatedProblem>(std::move(inst.problem));
}

/// Prints a one-line power-law fit summary: y ~ C * x^alpha.
inline void print_power_fit(std::ostream& os, const std::string& label,
                            const std::vector<double>& xs,
                            const std::vector<double>& ys,
                            double predicted_exponent) {
  if (xs.size() < 2) return;
  const auto fit = support::fit_power_law(xs, ys);
  os << "  " << label << ": measured exponent " << fit.slope
     << " (paper predicts ~" << predicted_exponent
     << "), R^2 = " << fit.r_squared << "\n";
}

/// Prints a one-line semi-log fit summary: y ~ a + b*log2(x).
inline void print_log_fit(std::ostream& os, const std::string& label,
                          const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() < 2) return;
  const auto fit = support::fit_logarithmic(xs, ys);
  os << "  " << label << ": y ~ " << fit.intercept << " + " << fit.slope
     << " * log2(n), R^2 = " << fit.r_squared << "\n";
}

/// Standard CSV handling: every bench accepts --csv=<path>.
inline void maybe_write_csv(const support::TableWriter& table,
                            const std::string& path) {
  if (path.empty()) return;
  if (table.write_csv(path)) {
    std::printf("(csv written to %s)\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write csv to %s\n", path.c_str());
  }
}

}  // namespace subdp::bench
