// Experiment E6 (the headline processor-time-product comparison,
// Secs. 1 & 7): measured PRAM work of every solver in the repo, with
// fitted growth exponents.
//
// Reproduces the paper's ranking:
//   sequential / wavefront  ~ n^3   (work-optimal baselines)
//   HLV banded (Sec. 5)     ~ n^4   (= n^3.5/log n procs x sqrt(n) log n)
//   HLV dense  (Sec. 2)     ~ n^5.5 (= n^5/log n procs x sqrt(n) log n)
//   Rytter-style squaring   ~ n^6+  (= n^6/log n procs x log^2 n)
// i.e. this paper's O(n^2 log n) improvement over Rytter and its
// remaining Theta(sqrt n) gap to the sequential bound. The fixed
// 2*ceil(sqrt n) schedule is used so the measurement reflects the
// worst-case product, not early convergence.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/sequential.hpp"
#include "dp/wavefront.hpp"
#include "support/cli.hpp"

using namespace subdp;

namespace {

std::uint64_t sublinear_work(const dp::Problem& problem,
                             core::PwVariant variant,
                             core::SquareMode square_mode) {
  core::SublinearOptions options;
  options.variant = variant;
  options.square_mode = square_mode;
  options.termination = core::TerminationMode::kFixedBound;
  if (square_mode == core::SquareMode::kRytterFull) {
    options.termination = core::TerminationMode::kFixedPoint;
  }
  core::SublinearSolver solver(options);
  (void)solver.solve(problem);
  return solver.machine().costs().total_work();
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("E6: measured work (processor-time product)");
  args.add_int("max-n", 96, "largest size for the banded solver");
  args.add_int("max-dense-n", 48, "largest size for the dense solver");
  args.add_int("max-rytter-n", 18, "largest size for Rytter squaring");
  args.add_int("seed", 77, "random seed");
  args.add_string("csv", "", "optional CSV output path");
  if (!args.parse(argc, argv)) return 2;

  const auto max_n = static_cast<std::size_t>(args.get_int("max-n"));
  const auto max_dense = static_cast<std::size_t>(args.get_int("max-dense-n"));
  const auto max_rytter =
      static_cast<std::size_t>(args.get_int("max-rytter-n"));

  support::TableWriter table(
      "E6: total PRAM operations per solver (matrix-chain instances, "
      "fixed 2*ceil(sqrt n) schedule)",
      {"n", "sequential", "wavefront", "hlv-banded", "hlv-dense",
       "rytter", "banded/seq", "rytter/banded"});

  std::vector<double> ns, seq_w, banded_w, dense_ns, dense_w, ryt_ns, ryt_w;
  for (std::size_t n = 8; n <= max_n; n = n * 3 / 2) {
    support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) + n);
    const auto problem = dp::MatrixChainProblem::random(n, rng);

    std::uint64_t seq_ops = 0;
    (void)dp::solve_sequential(problem, &seq_ops);
    pram::Machine machine;
    (void)dp::solve_wavefront(problem, machine);
    const std::uint64_t wavefront = machine.costs().total_work();
    const std::uint64_t banded = sublinear_work(
        problem, core::PwVariant::kBanded, core::SquareMode::kHlvOneLevel);

    std::uint64_t dense = 0;
    if (n <= max_dense) {
      dense = sublinear_work(problem, core::PwVariant::kDense,
                             core::SquareMode::kHlvOneLevel);
      dense_ns.push_back(static_cast<double>(n));
      dense_w.push_back(static_cast<double>(dense));
    }
    std::uint64_t rytter = 0;
    if (n <= max_rytter) {
      rytter = sublinear_work(problem, core::PwVariant::kDense,
                              core::SquareMode::kRytterFull);
      ryt_ns.push_back(static_cast<double>(n));
      ryt_w.push_back(static_cast<double>(rytter));
    }

    table.add_row(
        {static_cast<std::int64_t>(n), static_cast<std::int64_t>(seq_ops),
         static_cast<std::int64_t>(wavefront),
         static_cast<std::int64_t>(banded), static_cast<std::int64_t>(dense),
         static_cast<std::int64_t>(rytter),
         static_cast<double>(banded) / static_cast<double>(seq_ops),
         rytter != 0
             ? static_cast<double>(rytter) / static_cast<double>(banded)
             : 0.0});
    ns.push_back(static_cast<double>(n));
    seq_w.push_back(static_cast<double>(seq_ops));
    banded_w.push_back(static_cast<double>(banded));
  }

  table.print(std::cout);
  bench::maybe_write_csv(table, args.get_string("csv"));

  std::printf("\nGrowth fits (work vs n):\n");
  bench::print_power_fit(std::cout, "sequential", ns, seq_w, 3.0);
  bench::print_power_fit(std::cout, "hlv-banded (Sec. 5)", ns, banded_w,
                         4.0);
  bench::print_power_fit(std::cout, "hlv-dense (Sec. 2)", dense_ns, dense_w,
                         5.5);
  bench::print_power_fit(std::cout, "rytter squaring", ryt_ns, ryt_w, 6.0);
  std::printf(
      "\nPaper's claims: ranking sequential < banded < dense < rytter "
      "from moderate n on (constants mask it below n ~ 10); the "
      "banded/sequential gap is the open Theta(sqrt n) factor of Sec. 7; "
      "rytter/banded reproduces the O(n^2 log n) improvement (its "
      "measured ratio grows ~n^2).\n");
  return 0;
}
