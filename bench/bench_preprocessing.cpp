// Experiment E11 (Sec. 4, preprocessing remark): "In general, the
// f(i,j,k)'s do not form the timewise-expensive part of the computation."
//
// Measures the accounted work and depth of the parallel f-preparation
// phase (one O(log n)-depth sweep + prefix-sum scans for weight-based
// instances) against the main iteration, per application.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/parallel_setup.hpp"
#include "support/cli.hpp"

using namespace subdp;

int main(int argc, char** argv) {
  support::ArgParser args("E11: Sec. 4 preprocessing vs main iteration");
  args.add_int("max-n", 96, "largest instance size");
  args.add_int("seed", 37, "random seed");
  args.add_string("csv", "", "optional CSV output path");
  if (!args.parse(argc, argv)) return 2;

  const auto max_n = static_cast<std::size_t>(args.get_int("max-n"));

  support::TableWriter table(
      "E11: f-preprocessing vs main iteration (banded solver)",
      {"family", "n", "pre work", "main work", "work ratio", "pre depth",
       "main depth", "depth ratio"});

  for (const char* family : {"matrix-chain", "optimal-bst"}) {
    for (std::size_t n = 12; n <= max_n; n *= 2) {
      support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) + n);
      const auto problem = bench::make_instance(family, n, rng);

      pram::Machine pre;
      const auto table_problem = dp::materialize_in_parallel(pre, *problem);

      core::SublinearOptions options;
      options.termination = core::TerminationMode::kFixedBound;
      core::SublinearSolver solver(options);
      (void)solver.solve(table_problem);
      const auto& main_costs = solver.machine().costs();

      table.add_row(
          {std::string(family), static_cast<std::int64_t>(n),
           static_cast<std::int64_t>(pre.costs().total_work()),
           static_cast<std::int64_t>(main_costs.total_work()),
           static_cast<double>(main_costs.total_work()) /
               static_cast<double>(pre.costs().total_work()),
           static_cast<std::int64_t>(pre.costs().total_depth()),
           static_cast<std::int64_t>(main_costs.total_depth()),
           static_cast<double>(main_costs.total_depth()) /
               static_cast<double>(pre.costs().total_depth())});
    }
  }

  table.print(std::cout);
  bench::maybe_write_csv(table, args.get_string("csv"));
  std::printf(
      "\nPaper's claim (Sec. 4): preparing the f values — O(1) time / "
      "O(n^2)-O(n^3) processors (O(log n) with the weight scans) — never "
      "dominates: both ratios must exceed 1 and grow with n (work gap "
      "~n, depth gap ~sqrt(n)).\n");
  return 0;
}
