// Experiment E8 (Sec. 7, open problem): termination policies — the fixed
// 2*ceil(sqrt n) schedule vs stopping at a fixed point vs the paper's
// "w' unchanged for two consecutive iterations" heuristic.
//
// Reproduces the simulation claim of Secs. 6-7: on typical instances the
// iteration converges long before the worst-case schedule, so a
// detection-based stop saves a Theta(sqrt(n)/log(n)) factor; on the
// adversarial zigzag family there is nothing to save. Also audits the
// heuristic's correctness (the paper leaves its sufficiency open).

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/sequential.hpp"
#include "support/cli.hpp"

using namespace subdp;

namespace {

core::SublinearResult run(const dp::Problem& p, core::TerminationMode mode) {
  core::SublinearOptions options;
  options.termination = mode;
  core::SublinearSolver solver(options);
  return solver.solve(p);
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("E8: termination policies (Sec. 7)");
  args.add_int("max-n", 96, "largest instance size");
  args.add_int("trials", 3, "random instances per (family, n)");
  args.add_int("seed", 23, "base random seed");
  args.add_string("csv", "", "optional CSV output path");
  if (!args.parse(argc, argv)) return 2;

  const auto max_n = static_cast<std::size_t>(args.get_int("max-n"));
  const auto trials = static_cast<int>(args.get_int("trials"));

  support::TableWriter table(
      "E8: iterations by termination policy (banded solver)",
      {"family", "n", "fixed bound", "fixed point", "w-heuristic",
       "saving", "all correct"});

  std::size_t heuristic_errors = 0;
  for (const char* family_name :
       {"matrix-chain", "optimal-bst", "zigzag"}) {
    const std::string family = family_name;
    for (std::size_t n = 12; n <= max_n; n *= 2) {
      support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) +
                       n * 17);
      const bool randomized = family != "zigzag";
      const int reps = randomized ? trials : 1;
      double fp_total = 0, wh_total = 0;
      bool all_correct = true;
      for (int rep = 0; rep < reps; ++rep) {
        const auto problem = bench::make_instance(family, n, rng);
        const Cost optimal = dp::solve_sequential(*problem).cost;
        const auto fixed_point =
            run(*problem, core::TerminationMode::kFixedPoint);
        const auto heuristic =
            run(*problem, core::TerminationMode::kWUnchangedTwice);
        fp_total += static_cast<double>(fixed_point.iterations);
        wh_total += static_cast<double>(heuristic.iterations);
        all_correct &= fixed_point.cost == optimal;
        if (heuristic.cost != optimal) {
          ++heuristic_errors;
          all_correct = false;
        }
      }
      const auto bound = support::two_ceil_sqrt(n);
      const double fp_mean = fp_total / reps;
      table.add_row({family, static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(bound), fp_mean,
                     wh_total / reps,
                     static_cast<double>(bound) / fp_mean,
                     std::string(all_correct ? "yes" : "NO")});
    }
  }

  table.print(std::cout);
  bench::maybe_write_csv(table, args.get_string("csv"));
  std::printf(
      "\nPaper's claim (Sec. 7): convergence-detected stops finish in far "
      "fewer iterations than the schedule on typical inputs; the zigzag "
      "family shows no saving. The 'w unchanged twice' heuristic is not "
      "proven sufficient — observed wrong answers: %zu.\n",
      heuristic_errors);
  return heuristic_errors == 0 ? 0 : 1;
}
