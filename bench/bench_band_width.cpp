// Experiment E7b (Sec. 5 sensitivity): how small can the slack band B be?
//
// Reproduces: B = 2*ceil(sqrt n) (the paper's choice) is always safe
// within the fixed schedule; much smaller bands break the adversarial
// zigzag family (they cannot carry the chain compositions fast enough)
// while typical instances tolerate smaller bands. Costs only ever
// *overshoot* when the band is too small — relaxation never undershoots.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/sequential.hpp"
#include "support/cli.hpp"

using namespace subdp;

int main(int argc, char** argv) {
  support::ArgParser args("E7b: band-width sensitivity");
  args.add_int("n", 49, "instance size");
  args.add_int("seed", 19, "random seed");
  args.add_string("csv", "", "optional CSV output path");
  if (!args.parse(argc, argv)) return 2;

  const auto n = static_cast<std::size_t>(args.get_int("n"));
  const std::size_t paper_band = support::two_ceil_sqrt(n);

  support::TableWriter table(
      "E7b: result quality vs band width B (fixed 2*ceil(sqrt n) "
      "schedule; n = " + std::to_string(n) + ", paper B = " +
          std::to_string(paper_band) + ")",
      {"family", "B", "iterations", "cost/optimal", "correct",
       "square work"});

  for (const std::string family : {"zigzag", "matrix-chain"}) {
    support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
    const auto problem = bench::make_instance(family, n, rng);
    const Cost optimal = dp::solve_sequential(*problem).cost;
    for (std::size_t band = 1; band <= paper_band + 2; band += 2) {
      core::SublinearOptions options;
      options.band_width = band;
      options.termination = core::TerminationMode::kFixedBound;
      core::SublinearSolver solver(options);
      const auto result = solver.solve(*problem);
      const bool correct = result.cost == optimal;
      const double rel =
          optimal > 0 ? static_cast<double>(result.cost) /
                            static_cast<double>(optimal)
                      : (result.cost == 0 ? 1.0 : -1.0);
      table.add_row({family, static_cast<std::int64_t>(band),
                     static_cast<std::int64_t>(result.iterations),
                     is_finite(result.cost) ? rel : -1.0,
                     std::string(correct ? "yes" : "no"),
                     static_cast<std::int64_t>(
                         solver.machine()
                             .costs()
                             .phase_totals()
                             .at("a-square")
                             .work)});
      if (result.cost < optimal) {
        std::fprintf(stderr, "UNDERSHOOT at %s B=%zu — impossible for a "
                     "relaxation\n", family.c_str(), band);
        return 1;
      }
    }
  }

  table.print(std::cout);
  bench::maybe_write_csv(table, args.get_string("csv"));
  std::printf(
      "\nPaper's claim: B = 2*ceil(sqrt n) suffices for every instance "
      "within the fixed schedule. Expected shape: zigzag rows become "
      "correct only once B (together with the schedule) can carry its "
      "chains; matrix-chain rows tolerate much smaller bands; cost is "
      "never below optimal.\n");
  return 0;
}
