// Experiment E1 + E2 (Lemma 3.3, Fig. 2): pebbling-game move counts per
// tree shape as a function of n.
//
// Reproduces: the universal 2*ceil(sqrt n) bound; zigzag (and skewed
// chains) as the Theta(sqrt n) pathological shapes; complete trees and
// random trees at O(log n) moves. The fitted exponents/slopes printed at
// the end are the quantitative form of the paper's Fig. 2 discussion.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "support/cli.hpp"
#include "trees/pebble_game.hpp"

using namespace subdp;

int main(int argc, char** argv) {
  support::ArgParser args("E1/E2: pebbling moves by tree shape (Fig. 2)");
  args.add_int("max-exp", 16, "largest n = 2^k for sqrt-shaped trees");
  args.add_int("trials", 10, "trials per size for random shapes");
  args.add_int("seed", 42, "base random seed");
  args.add_string("csv", "", "optional CSV output path");
  if (!args.parse(argc, argv)) return 2;

  const auto max_exp = static_cast<std::size_t>(args.get_int("max-exp"));
  const auto trials = static_cast<int>(args.get_int("trials"));

  support::TableWriter table(
      "E1/E2: pebbling-game moves until the root is pebbled",
      {"shape", "n", "moves(mean)", "moves(max)", "bound 2ceil(sqrt n)",
       "moves/bound", "log2(n)", "moves/log2(n)"});

  struct ShapeSpec {
    trees::TreeShape shape;
    bool randomized;
    std::size_t max_n;
  };
  const ShapeSpec specs[] = {
      {trees::TreeShape::kComplete, false, std::size_t{1} << (max_exp + 2)},
      {trees::TreeShape::kLeftSkewed, false, std::size_t{1} << max_exp},
      {trees::TreeShape::kZigzag, false, std::size_t{1} << max_exp},
      {trees::TreeShape::kRandom, true, std::size_t{1} << (max_exp + 2)},
      {trees::TreeShape::kBiasedRandom, true, std::size_t{1} << max_exp},
  };

  std::vector<std::string> fit_labels;
  std::vector<std::vector<double>> fit_ns, fit_moves;

  for (const auto& spec : specs) {
    std::vector<double> xs, ys;
    for (std::size_t n = 16; n <= spec.max_n; n *= 4) {
      support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) + n);
      const int reps = spec.randomized ? trials : 1;
      double total = 0;
      std::size_t max_moves = 0;
      for (int rep = 0; rep < reps; ++rep) {
        const auto tree = trees::make_tree(spec.shape, n, &rng);
        trees::PebbleGame game(tree);
        game.run_until_root(support::two_ceil_sqrt(n));
        if (!game.root_pebbled()) {
          std::fprintf(stderr, "BOUND VIOLATION at %s n=%zu\n",
                       to_string(spec.shape), n);
          return 1;
        }
        total += static_cast<double>(game.moves_made());
        max_moves = std::max(max_moves, game.moves_made());
      }
      const double mean = total / reps;
      const auto bound = support::two_ceil_sqrt(n);
      const auto lg = support::ceil_log2(n);
      table.add_row({std::string(to_string(spec.shape)),
                     static_cast<std::int64_t>(n), mean,
                     static_cast<std::int64_t>(max_moves),
                     static_cast<std::int64_t>(bound),
                     mean / static_cast<double>(bound),
                     static_cast<std::int64_t>(lg),
                     mean / static_cast<double>(lg)});
      xs.push_back(static_cast<double>(n));
      ys.push_back(mean);
    }
    fit_labels.emplace_back(to_string(spec.shape));
    fit_ns.push_back(xs);
    fit_moves.push_back(ys);
  }

  table.print(std::cout);
  bench::maybe_write_csv(table, args.get_string("csv"));

  std::printf("\nGrowth fits (moves vs n):\n");
  for (std::size_t s = 0; s < fit_labels.size(); ++s) {
    const bool sqrt_shape =
        fit_labels[s] == "zigzag" || fit_labels[s] == "left-skewed";
    if (sqrt_shape) {
      bench::print_power_fit(std::cout, fit_labels[s], fit_ns[s],
                             fit_moves[s], 0.5);
    } else {
      bench::print_log_fit(std::cout, fit_labels[s], fit_ns[s],
                           fit_moves[s]);
    }
  }
  std::printf(
      "\nPaper's claims: every shape stays within 2*ceil(sqrt n) "
      "(Lemma 3.3); zigzag/skewed grow ~ sqrt(n) (exponent ~0.5); "
      "complete/random grow ~ log n (good semi-log fit).\n");
  return 0;
}
