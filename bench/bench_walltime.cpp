// Experiment E9: real multicore wall-clock times.
//
// Two entry points share this binary:
//  * the google-benchmark suite below (default): sequential DP vs the
//    diagonal-parallel wavefront vs the sublinear solver across execution
//    backends, plus the raw pebbling game;
//  * `--json=<path>`: a machine-readable perf-trajectory sweep. For every
//    instance family in bench/common.hpp and a ladder of sizes it times
//    the solver end-to-end (checks off) on every available backend
//    (serial, threads, and openmp when compiled in), for three engine
//    configurations: "reference" (copy-based double buffering, full
//    sweeps — the seed engine's hot path), "fast-legacy" (delta-buffered
//    + frontier-driven, but per-gap `get` pebble scans and per-step
//    from-scratch mark-grid rebuilds; serial backend only, every ladder
//    point) and "fast" (the full hot path: cursor-driven a-pebble gap
//    runs + incrementally maintained mark grids — the two rows isolate
//    exactly that effect), across both pw layouts (banded ladder to
//    n = 256, entries-indexed dense past the old 64 cube cap). Each row
//    carries a "scan" marker naming the pebble-scan mechanism. Where
//    more than one engine configuration runs, the sweep asserts their
//    cost, iteration count and full w table are bit-identical before
//    writing rows. The instrumented PRAM work ledger is recorded once per
//    (family, n) up to n = 96 (larger counted runs would dominate the
//    sweep; rows above carry total_work = 0). Per family the sweep also
//    times the batched front door: 16 same-n banded instances through
//    BatchSolver::solve_all (plan built once, session tables reset in
//    place) against the same instances through a fresh per-instance
//    solver each — rows with mode "batch-amortised" / "batch-loop" and
//    an "instances" count — and through serve::SolverService, which
//    overlaps whole instances across worker threads (mode
//    "service-parallel", workers from `--workers=<k>`, default
//    hardware_concurrency). All paths are asserted bit-identical first;
//    the service additionally across worker counts {1, 4,
//    hardware_concurrency} and a shuffled async submission order. Every
//    row records "host_threads" and "workers", so rows measured on the
//    1-core container and rows from a real multicore rerun stay
//    distinguishable. The output (conventionally BENCH_walltime.json)
//    is what CI tracks across PRs.
//
//    `--families=<a,b,...>` restricts the sweep to a comma-separated
//    subset of families and `--max-n=<n>` caps the ladder (batch rows
//    clamp to it), so CI can smoke-run a single tiny batch row, e.g.
//    `--json=out.json --families=matrix-chain --max-n=32`.
//
//    `--snapshot-dir=<path>` adds a cold-start row pair per family: the
//    first-request latency of a fresh service with no persistence
//    ("service-coldstart": the plan build sits on the request path)
//    against a service restarted over a populated plan snapshot store +
//    prewarm manifest under `<path>/<family>` ("service-prewarmed": the
//    shape was rehydrated from disk before intake opened, so the first
//    request has no plan-build component). Both paths are asserted
//    bit-identical first, the prewarmed service must report at least one
//    snapshot hit (printed as "snapshot_hits=<k>" for CI to grep), and
//    the rows land in the JSON artifact like every other mode.
//
//    `--queue-cap=<n>` (with `--policy=block|reject`, default block)
//    adds an overload-mode row per family: the same instances pushed
//    through a service whose dispatch queue holds only `n` jobs, under
//    the chosen overload policy — mode "service-admission-<policy>",
//    kReject submitters retrying until admitted (rejection count
//    printed). Every completed result is asserted bit-identical to the
//    per-instance loop first, so the admission path is covered by the
//    same differential bar as the other service rows.
//
//    `--priority-mix=<i:b>` adds a QoS row per family: the instances
//    split into interactive (far-future deadlines) and batch traffic in
//    the i:b ratio, pushed through a tiny EDF-ordered intake (bounded
//    queue, OverloadPolicy::kReject, 2 plan builders); shed submits
//    back off by the rejection's retry-after hint and resubmit until
//    every instance lands — mode "service-qos", with the rejection
//    count and per-class completions printed. Bit-identity to the
//    per-instance loop holds for every completed job, and the
//    per-class ledgers must partition the service's global counters.
//
// The PRAM results are about operation counts; this suite grounds the
// simulator on actual hardware. On a machine with few cores the
// backend speedups are correspondingly modest — the *shape* to check is
// that parallel backends do not lose to serial on the larger sizes and
// that the fast path beats the reference engine.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/batch_solver.hpp"
#include "core/sublinear_solver.hpp"
#include "serve/solver_service.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/sequential.hpp"
#include "dp/wavefront.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trees/generators.hpp"
#include "trees/pebble_game.hpp"

namespace {

using namespace subdp;

dp::MatrixChainProblem make_chain(std::size_t n) {
  support::Rng rng(1234 + n);
  return dp::MatrixChainProblem::random(n, rng);
}

void BM_SequentialDp(benchmark::State& state) {
  const auto problem = make_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::solve_sequential(problem).cost);
  }
}
BENCHMARK(BM_SequentialDp)->Arg(64)->Arg(128)->Arg(256);

void BM_Wavefront(benchmark::State& state) {
  const auto problem = make_chain(static_cast<std::size_t>(state.range(0)));
  const auto backend = static_cast<pram::Backend>(state.range(1));
  pram::MachineOptions opts;
  opts.backend = backend;
  opts.record_costs = false;
  for (auto _ : state) {
    pram::Machine machine(opts);
    benchmark::DoNotOptimize(dp::solve_wavefront(problem, machine).cost);
  }
  state.SetLabel(pram::to_string(backend));
}
BENCHMARK(BM_Wavefront)
    ->Args({256, static_cast<int>(pram::Backend::kSerial)})
    ->Args({256, static_cast<int>(pram::Backend::kThreadPool)})
    ->Args({256, static_cast<int>(pram::Backend::kOpenMP)});

// range(2) selects the engine configuration: 0 = reference (copy-based
// double buffering + full sweeps, the seed hot path), 1 = fast
// (delta-buffered + frontier-driven).
void BM_SublinearBanded(benchmark::State& state) {
  const auto problem = make_chain(static_cast<std::size_t>(state.range(0)));
  const auto backend = static_cast<pram::Backend>(state.range(1));
  const bool fast = state.range(2) != 0;
  for (auto _ : state) {
    core::SublinearOptions options;
    options.machine.backend = backend;
    options.machine.record_costs = false;
    options.delta_buffering = fast;
    options.frontier_sweeps = fast;
    core::SublinearSolver solver(options);
    benchmark::DoNotOptimize(solver.solve(problem).cost);
  }
  state.SetLabel(std::string(pram::to_string(backend)) +
                 (fast ? "/fast" : "/reference"));
}
BENCHMARK(BM_SublinearBanded)
    ->Args({32, static_cast<int>(pram::Backend::kSerial), 0})
    ->Args({32, static_cast<int>(pram::Backend::kSerial), 1})
    ->Args({32, static_cast<int>(pram::Backend::kThreadPool), 1})
    ->Args({64, static_cast<int>(pram::Backend::kSerial), 0})
    ->Args({64, static_cast<int>(pram::Backend::kSerial), 1})
    ->Args({64, static_cast<int>(pram::Backend::kThreadPool), 1})
    ->Args({64, static_cast<int>(pram::Backend::kOpenMP), 1});

void BM_SublinearDense(benchmark::State& state) {
  const auto problem = make_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::SublinearOptions options;
    options.variant = core::PwVariant::kDense;
    options.machine.record_costs = false;
    core::SublinearSolver solver(options);
    benchmark::DoNotOptimize(solver.solve(problem).cost);
  }
}
BENCHMARK(BM_SublinearDense)->Arg(32)->Arg(48)->Arg(96);

void BM_PebbleGame(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tree = trees::make_tree(trees::TreeShape::kZigzag, n);
  for (auto _ : state) {
    trees::PebbleGame game(tree);
    game.run_until_root(support::two_ceil_sqrt(n));
    benchmark::DoNotOptimize(game.moves_made());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tree.node_count()));
}
BENCHMARK(BM_PebbleGame)->Arg(1 << 10)->Arg(1 << 14);

// ---- --json sweep ----------------------------------------------------------

struct SweepRow {
  std::string family;
  std::size_t n = 0;
  std::string variant;  // "banded" | "dense"
  std::string engine;   // "reference" | "fast-legacy" | "fast"
  std::string scan = "gap-get";  // | "pebble-cursor+incremental-marks"
  std::string backend;  // "serial" | "threads" | "openmp"
  std::string mode = "single";  // | "batch-amortised" | "batch-loop"
                                // | "service-parallel"
  std::size_t instances = 1;    // problems timed in this row
  double wall_ms = 0.0;         // total across `instances`
  std::uint64_t total_work = 0;  // instrumented PRAM ops; 0 = not counted
  std::size_t iterations = 0;
  Cost cost = 0;
  // Host metadata: rows measured on a 1-core container and rows from a
  // real multicore rerun must stay distinguishable in the artifact.
  unsigned host_threads = std::thread::hardware_concurrency();
  unsigned workers = 1;  // host threads the row's parallelism ran across
  // Per-job end-to-end latency percentiles (service rows only; 0 for
  // single/batch rows, which time one call, not a job population).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// ns → ms for the histogram percentile columns.
double ns_to_ms(double ns) { return ns / 1e6; }

/// Writes `content` through a sibling temp file renamed over `path` (the
/// same crash-safe protocol as the main --json artifact).
void write_text_artifact(const std::string& path,
                         const std::string& content, const char* what) {
  const std::string tmp_path = path + ".tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n",
                 tmp_path.c_str());
    std::exit(1);
  }
  const std::size_t wrote =
      std::fwrite(content.data(), 1, content.size(), out);
  if (std::fclose(out) != 0 || wrote != content.size()) {
    std::remove(tmp_path.c_str());
    std::fprintf(stderr, "write to %s failed\n", tmp_path.c_str());
    std::exit(1);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    std::fprintf(stderr, "could not rename %s over %s\n", tmp_path.c_str(),
                 path.c_str());
    std::exit(1);
  }
  std::printf("(%s written to %s)\n", what, path.c_str());
}

struct TimedSolve {
  double ms = 0.0;
  core::SublinearResult result;
};

/// The three engine configurations the sweep contrasts (see file comment).
enum class EngineConfig { kReference, kFastLegacy, kFast };

const char* engine_name(EngineConfig config) {
  switch (config) {
    case EngineConfig::kReference:
      return "reference";
    case EngineConfig::kFastLegacy:
      return "fast-legacy";
    case EngineConfig::kFast:
      return "fast";
  }
  return "unknown";
}

const char* scan_name(EngineConfig config) {
  return config == EngineConfig::kFast ? "pebble-cursor+incremental-marks"
                                       : "gap-get";
}

TimedSolve time_solve(const dp::Problem& problem, core::PwVariant variant,
                      EngineConfig config, pram::Backend backend) {
  core::SublinearOptions options;
  options.variant = variant;
  options.machine.backend = backend;
  options.machine.record_costs = false;
  const bool fast = config != EngineConfig::kReference;
  options.delta_buffering = fast;
  options.frontier_sweeps = fast;
  options.pebble_cursor = config == EngineConfig::kFast;
  options.incremental_marks = config == EngineConfig::kFast;
  core::SublinearSolver solver(options);
  TimedSolve out;
  for (int rep = 0; rep < 2; ++rep) {  // best-of-2 absorbs cold caches
    const auto t0 = std::chrono::steady_clock::now();
    auto result = solver.solve(problem);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(result.cost);
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < out.ms) out.ms = ms;
    if (rep == 0) out.result = std::move(result);
  }
  return out;
}

/// One rung of a variant's size ladder. Counted (instrumented) runs and
/// the copy-based reference engine get quadratically slower with n, so
/// they climb only part of the way; the fast path is timed everywhere.
struct LadderPoint {
  std::size_t n = 0;
  bool run_reference = false;
  bool run_counted = false;
};

void sweep_variant(const dp::Problem& problem, const std::string& family,
                   core::PwVariant variant, const LadderPoint& point,
                   const std::vector<pram::Backend>& backends,
                   std::vector<SweepRow>& rows) {
  const std::size_t n = point.n;
  const char* variant_name = core::to_string(variant);

  std::uint64_t total_work = 0;
  std::size_t iterations = 0;
  if (point.run_counted) {
    // Work totals come from one instrumented serial run; they are
    // identical across engines and backends (the equivalence tests
    // enforce this), so measure them once.
    core::SublinearOptions counted;
    counted.variant = variant;
    counted.machine.backend = pram::Backend::kSerial;
    counted.machine.record_costs = true;
    core::SublinearSolver counter(counted);
    const auto counted_result = counter.solve(problem);
    total_work = counter.machine().costs().total_work();
    iterations = counted_result.iterations;
  }

  // The serial fast run doubles as the row source of truth; every other
  // engine configuration that runs must be bit-identical to it.
  std::optional<core::SublinearResult> reference_serial;
  std::optional<core::SublinearResult> legacy_serial;
  std::optional<core::SublinearResult> fast_serial;
  for (const EngineConfig config :
       {EngineConfig::kReference, EngineConfig::kFastLegacy,
        EngineConfig::kFast}) {
    if (config == EngineConfig::kReference && !point.run_reference) continue;
    for (const pram::Backend backend : backends) {
      // Above the counted sizes the reference engine is timed on the
      // serial backend only, to keep the sweep's wall time bounded. The
      // legacy fast path exists to isolate the cursor + incremental-grid
      // effect, which serial rows show cleanest — serial only, always.
      if (config == EngineConfig::kReference && !point.run_counted &&
          backend != pram::Backend::kSerial) {
        continue;
      }
      if (config == EngineConfig::kFastLegacy &&
          backend != pram::Backend::kSerial) {
        continue;
      }
      TimedSolve timed = time_solve(problem, variant, config, backend);
      if (backend == pram::Backend::kSerial) {
        (config == EngineConfig::kFast        ? fast_serial
         : config == EngineConfig::kFastLegacy ? legacy_serial
                                               : reference_serial) =
            timed.result;
      }
      SweepRow row;
      row.family = family;
      row.n = n;
      row.variant = variant_name;
      row.engine = engine_name(config);
      row.scan = scan_name(config);
      row.backend = pram::to_string(backend);
      row.wall_ms = timed.ms;
      row.total_work = total_work;
      row.iterations =
          point.run_counted ? iterations : timed.result.iterations;
      row.cost = timed.result.cost;
      row.workers = pram::backend_parallelism(backend);
      rows.push_back(row);
      std::printf("%-14s n=%-4zu %-7s %-11s %-7s %10.3f ms\n",
                  family.c_str(), n, variant_name, row.engine.c_str(),
                  row.backend.c_str(), row.wall_ms);
    }
  }
  const auto assert_matches_fast = [&](
      const std::optional<core::SublinearResult>& other, const char* what) {
    if (!other.has_value() || !fast_serial.has_value()) return;
    SUBDP_REQUIRE(other->cost == fast_serial->cost &&
                      other->iterations == fast_serial->iterations &&
                      other->w == fast_serial->w,
                  std::string("fast path diverged from ") + what);
  };
  assert_matches_fast(reference_serial, "the reference engine");
  assert_matches_fast(legacy_serial, "the legacy fast path");
}

// ---- Batch rows: the plan-amortised front door vs a per-instance loop ----

/// Times `count` same-n instances of `family` through (a) a fresh
/// per-instance solver each — every instance pays plan construction —
/// (b) `BatchSolver::solve_all`, which builds the plan once and resets
/// pooled session tables in place across the group, and (c)
/// `serve::SolverService::solve_all` with `service_workers` workers
/// overlapping whole instances (each on the serial fast path). Asserts
/// all paths bit-identical before recording any row — the service
/// additionally across worker counts {1, 4, hardware_concurrency,
/// service_workers} and a shuffled async submission order.
/// `--priority-mix=<i:b>` ratio; {0, 0} disables the service-qos row.
struct PriorityMix {
  std::size_t interactive = 0;
  std::size_t batch = 0;
  [[nodiscard]] bool enabled() const {
    return interactive + batch > 0;
  }
};

void sweep_batch(const std::string& family, std::size_t n,
                 std::size_t count, std::size_t service_workers,
                 std::size_t queue_cap, serve::OverloadPolicy policy,
                 PriorityMix priority_mix,
                 const std::string& metrics_json,
                 const std::string& trace_json,
                 std::vector<SweepRow>& rows) {
  std::vector<std::unique_ptr<dp::Problem>> owned;
  owned.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    support::Rng rng(7000 + 131 * k + n);
    owned.push_back(bench::make_instance(family, n, rng));
  }
  std::vector<const dp::Problem*> pointers;
  pointers.reserve(count);
  for (const auto& p : owned) pointers.push_back(p.get());

  core::SublinearOptions options;
  options.machine.record_costs = false;

  std::vector<core::SublinearResult> loop_results(count);
  double loop_ms = 0.0;
  double batch_ms = 0.0;
  core::BatchResult batch_out;
  // Best-of-3: at n = 96 the per-instance preparation being amortised is
  // ~10-20 ms against multi-second totals, so single-shot timing noise
  // could drown the signal.
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<core::SublinearResult> results(count);
    for (std::size_t k = 0; k < count; ++k) {
      core::SublinearSolver solver(options);  // pays preparation per instance
      results[k] = solver.solve(*pointers[k]);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < loop_ms) loop_ms = ms;
    if (rep == 0) loop_results = std::move(results);

    core::BatchSolver batch(options);  // cold cache: plan built inside
    const auto b0 = std::chrono::steady_clock::now();
    auto out = batch.solve_all(pointers);
    const auto b1 = std::chrono::steady_clock::now();
    const double bms =
        std::chrono::duration<double, std::milli>(b1 - b0).count();
    if (rep == 0 || bms < batch_ms) batch_ms = bms;
    if (rep == 0) batch_out = std::move(out);
  }

  for (std::size_t k = 0; k < count; ++k) {
    SUBDP_REQUIRE(batch_out.results[k].cost == loop_results[k].cost &&
                      batch_out.results[k].iterations ==
                          loop_results[k].iterations &&
                      batch_out.results[k].w == loop_results[k].w,
                  "batched solve diverged from the per-instance loop");
  }

  for (const bool amortised : {false, true}) {
    SweepRow row;
    row.family = family;
    row.n = n;
    row.variant = core::to_string(core::PwVariant::kBanded);
    row.engine = "fast";
    row.scan = scan_name(EngineConfig::kFast);
    row.backend = pram::to_string(options.machine.backend);
    row.mode = amortised ? "batch-amortised" : "batch-loop";
    row.instances = count;
    row.wall_ms = amortised ? batch_ms : loop_ms;
    row.iterations = batch_out.ledger.total_iterations;
    row.cost = batch_out.results.front().cost;
    row.workers = pram::backend_parallelism(options.machine.backend);
    rows.push_back(row);
    std::printf("%-14s n=%-4zu %-7s %-15s x%zu  %10.3f ms\n",
                family.c_str(), n, row.variant.c_str(), row.mode.c_str(),
                count, row.wall_ms);
  }
  std::printf("%-14s n=%-4zu batch amortisation saves %.1f ms (%.1f%%)\n",
              family.c_str(), n, loop_ms - batch_ms,
              100.0 * (loop_ms - batch_ms) / loop_ms);

  // ---- Service rows: instances overlapped across workers ----

  const auto assert_identical = [&](const core::SublinearResult& got,
                                    std::size_t k, const char* what) {
    SUBDP_REQUIRE(got.cost == loop_results[k].cost &&
                      got.iterations == loop_results[k].iterations &&
                      got.w == loop_results[k].w,
                  std::string(what) +
                      " diverged from the per-instance loop");
  };

  // The acceptance bar: bit-identity for worker counts {1, 4,
  // hardware_concurrency} plus the timed count, whatever the host.
  std::vector<std::size_t> worker_counts = {
      1, 4, static_cast<std::size_t>(pram::backend_parallelism(
                pram::Backend::kThreadPool)),
      service_workers};
  std::sort(worker_counts.begin(), worker_counts.end());
  worker_counts.erase(
      std::unique(worker_counts.begin(), worker_counts.end()),
      worker_counts.end());
  for (const std::size_t workers : worker_counts) {
    serve::ServiceOptions service_options;
    service_options.solver = options;
    service_options.workers = workers;
    serve::SolverService service(service_options);
    const auto out = service.solve_all(pointers);
    for (std::size_t k = 0; k < count; ++k) {
      assert_identical(out.results[k], k, "service solve_all");
    }
  }

  // Shuffled async submission through the future API: submission order
  // must not leak into any result.
  {
    serve::ServiceOptions service_options;
    service_options.solver = options;
    service_options.workers = service_workers;
    serve::SolverService service(service_options);
    std::vector<std::size_t> order(count);
    std::iota(order.begin(), order.end(), std::size_t{0});
    support::Rng shuffle_rng(9100 + n);
    shuffle_rng.shuffle(order);
    std::vector<std::future<core::SublinearResult>> futures(count);
    for (const std::size_t k : order) {
      futures[k] = service.submit(*pointers[k]);
    }
    for (std::size_t k = 0; k < count; ++k) {
      assert_identical(futures[k].get(), k, "shuffled service submit");
    }
  }

  // The timed row mirrors the batch rows' protocol: cold service per
  // rep (plan built inside), best-of-3. The last rep's stats feed the
  // per-job latency percentile columns (every rep runs the identical
  // cold workload) and, with no admission row to prefer, the
  // --metrics-json / --trace-json artifacts.
  double service_ms = 0.0;
  serve::ServiceStats timed_stats;
  for (int rep = 0; rep < 3; ++rep) {
    serve::ServiceOptions service_options;
    service_options.solver = options;
    service_options.workers = service_workers;
    serve::SolverService service(service_options);
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = service.solve_all(pointers);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(out.results.front().cost);
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < service_ms) service_ms = ms;
    if (rep == 2) {
      timed_stats = service.stats();
      if (queue_cap == 0) {
        if (!metrics_json.empty()) {
          write_text_artifact(metrics_json, service.metrics().to_json(),
                              "metrics json");
        }
        if (!trace_json.empty()) {
          write_text_artifact(trace_json, service.export_trace(),
                              "trace json");
        }
      }
    }
  }
  SweepRow row;
  row.family = family;
  row.n = n;
  row.variant = core::to_string(core::PwVariant::kBanded);
  row.engine = "fast";
  row.scan = scan_name(EngineConfig::kFast);
  // Per-solve backend: a multi-worker service normalises to serial; a
  // one-worker service keeps the configured backend.
  row.backend = pram::to_string(service_workers > 1
                                    ? pram::Backend::kSerial
                                    : options.machine.backend);
  row.mode = "service-parallel";
  row.instances = count;
  row.wall_ms = service_ms;
  row.iterations = batch_out.ledger.total_iterations;
  row.cost = batch_out.results.front().cost;
  // A 1-worker service keeps the configured backend, so the row's real
  // parallelism is that backend's, not the worker count.
  row.workers = service_workers > 1
                    ? static_cast<unsigned>(service_workers)
                    : pram::backend_parallelism(options.machine.backend);
  row.p50_ms = ns_to_ms(timed_stats.e2e.p50());
  row.p95_ms = ns_to_ms(timed_stats.e2e.p95());
  row.p99_ms = ns_to_ms(timed_stats.e2e.p99());
  rows.push_back(row);
  std::printf(
      "%-14s n=%-4zu %-7s %-15s x%zu  %10.3f ms (%u workers, "
      "p50/p95/p99 %.3f/%.3f/%.3f ms)\n",
      family.c_str(), n, row.variant.c_str(), row.mode.c_str(), count,
      row.wall_ms, row.workers, row.p50_ms, row.p95_ms, row.p99_ms);

  // ---- Overload row: bounded queue + admission policy (--queue-cap) ----

  if (queue_cap != 0) {
  serve::ServiceOptions admission_options;
  admission_options.solver = options;
  admission_options.workers = service_workers;
  admission_options.queue_capacity = queue_cap;
  admission_options.overload_policy = policy;
  serve::SolverService admission(admission_options);
  std::size_t rejections = 0;
  const auto a0 = std::chrono::steady_clock::now();
  std::vector<std::future<core::SublinearResult>> futures(count);
  for (std::size_t k = 0; k < count; ++k) {
    // kBlock back-pressures inside submit; kReject sheds, and this
    // (deliberately impatient) client retries until admitted so every
    // instance still completes and the row times the full batch.
    for (;;) {
      try {
        futures[k] = admission.submit(*pointers[k]);
        break;
      } catch (const core::AdmissionError&) {
        ++rejections;
        std::this_thread::yield();
      }
    }
  }
  for (std::size_t k = 0; k < count; ++k) {
    assert_identical(futures[k].get(), k, "admission service submit");
  }
  const auto a1 = std::chrono::steady_clock::now();
  SweepRow admission_row = row;
  admission_row.mode =
      std::string("service-admission-") + serve::to_string(policy);
  admission_row.wall_ms =
      std::chrono::duration<double, std::milli>(a1 - a0).count();
  const serve::ServiceStats admission_stats = admission.stats();
  admission_row.p50_ms = ns_to_ms(admission_stats.e2e.p50());
  admission_row.p95_ms = ns_to_ms(admission_stats.e2e.p95());
  admission_row.p99_ms = ns_to_ms(admission_stats.e2e.p99());
  // With an admission row in play, export its observability artifacts
  // instead of the plain service's: the trace then covers rejected jobs
  // and queue-wait under contention, the most interesting case.
  if (!metrics_json.empty()) {
    write_text_artifact(metrics_json, admission.metrics().to_json(),
                        "metrics json");
  }
  if (!trace_json.empty()) {
    write_text_artifact(trace_json, admission.export_trace(), "trace json");
  }
  rows.push_back(admission_row);
  std::printf(
      "%-14s n=%-4zu %-7s %-23s x%zu  %10.3f ms (cap %zu, %zu rejection(s), "
      "p95 %.3f ms)\n",
      family.c_str(), n, admission_row.variant.c_str(),
      admission_row.mode.c_str(), count, admission_row.wall_ms, queue_cap,
      rejections, admission_row.p95_ms);
  }

  // ---- QoS row: EDF intake + builder pool + retry-after (--priority-mix) ----

  if (!priority_mix.enabled()) return;
  serve::ServiceOptions qos_options;
  qos_options.solver = options;
  qos_options.workers = service_workers;
  qos_options.builders = 2;
  qos_options.queue_capacity = 4;  // small: the hint path must fire
  qos_options.overload_policy = serve::OverloadPolicy::kReject;
  serve::SolverService qos(qos_options);

  // Split the instances into the requested interactive:batch ratio.
  // Interactive jobs carry far-future deadlines, so the EDF order ranks
  // them ahead of the deadline-less batch traffic; every shed submit
  // backs off by the rejection's hinted retry-after and resubmits, so
  // all `count` instances still complete and the row times the batch.
  const std::size_t mix_period =
      priority_mix.interactive + priority_mix.batch;
  std::size_t qos_rejections = 0;
  const auto q0 = std::chrono::steady_clock::now();
  std::vector<std::future<core::SublinearResult>> qos_futures(count);
  for (std::size_t k = 0; k < count; ++k) {
    const bool interactive =
        k % mix_period < priority_mix.interactive;
    for (;;) {
      try {
        if (interactive) {
          qos_futures[k] = qos.submit(
              *pointers[k], serve::PriorityClass::kInteractive,
              std::chrono::steady_clock::now() + std::chrono::hours(1));
        } else {
          qos_futures[k] =
              qos.submit(*pointers[k], serve::PriorityClass::kBatch);
        }
        break;
      } catch (const core::AdmissionError& e) {
        ++qos_rejections;
        std::this_thread::sleep_for(
            e.has_hint() ? e.retry_after()
                         : serve::kRetryAfterConservativeDefault);
      }
    }
  }
  for (std::size_t k = 0; k < count; ++k) {
    assert_identical(qos_futures[k].get(), k, "qos service submit");
  }
  const auto q1 = std::chrono::steady_clock::now();
  const serve::ServiceStats qos_stats = qos.stats();
  // The class slices must partition the global ledger exactly, and
  // every instance must have completed despite the shedding.
  SUBDP_REQUIRE(qos_stats.jobs_completed == count,
                "qos row lost instances despite hinted retries");
  SUBDP_REQUIRE(qos_stats.interactive.completed +
                        qos_stats.batch.completed ==
                    qos_stats.jobs_completed,
                "qos per-class completions do not partition the total");
  SUBDP_REQUIRE(qos_stats.jobs_submitted ==
                    qos_stats.jobs_completed + qos_stats.jobs_rejected +
                        qos_stats.jobs_expired,
                "qos admission ledger does not reconcile");
  SweepRow qos_row = row;
  qos_row.mode = "service-qos";
  qos_row.wall_ms =
      std::chrono::duration<double, std::milli>(q1 - q0).count();
  qos_row.p50_ms = ns_to_ms(qos_stats.e2e.p50());
  qos_row.p95_ms = ns_to_ms(qos_stats.e2e.p95());
  qos_row.p99_ms = ns_to_ms(qos_stats.e2e.p99());
  rows.push_back(qos_row);
  std::printf(
      "%-14s n=%-4zu %-7s %-23s x%zu  %10.3f ms (mix %zu:%zu, "
      "%zu interactive + %zu batch completed, %zu hinted retry(ies), "
      "interactive p95 %.3f ms)\n",
      family.c_str(), n, qos_row.variant.c_str(), qos_row.mode.c_str(),
      count, qos_row.wall_ms, priority_mix.interactive, priority_mix.batch,
      static_cast<std::size_t>(qos_stats.interactive.completed),
      static_cast<std::size_t>(qos_stats.batch.completed), qos_rejections,
      ns_to_ms(qos_stats.interactive.e2e.p95()));
}

// ---- Snapshot rows: cold-start vs prewarmed first-request latency ----------

/// Times the first request of a fresh service against the first request
/// of a service restarted over a populated snapshot store (one store per
/// family under `snapshot_root`), asserting bit-identity and at least
/// one snapshot hit. See the file comment (`--snapshot-dir=`).
void sweep_snapshot(const std::string& family, std::size_t n,
                    std::size_t service_workers,
                    const std::string& snapshot_root,
                    std::vector<SweepRow>& rows) {
  support::Rng rng(8800 + n);
  const auto problem = bench::make_instance(family, n, rng);

  core::SublinearOptions options;
  options.machine.record_costs = false;
  serve::ServiceOptions cold_options;
  cold_options.solver = options;
  cold_options.workers = service_workers;
  const std::string dir = snapshot_root + "/" + family;

  // Cold: no persistence — the O(n^2 B^2) plan build happens on the
  // first request's critical path. Fresh service per rep (the build
  // only happens once per service), best-of-3.
  double cold_ms = 0.0;
  core::SublinearResult cold_result;
  for (int rep = 0; rep < 3; ++rep) {
    serve::SolverService service(cold_options);
    const auto t0 = std::chrono::steady_clock::now();
    auto result = service.submit(*problem).get();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < cold_ms) cold_ms = ms;
    if (rep == 0) cold_result = std::move(result);
  }

  // Populate the family's store and its prewarm manifest once.
  serve::ServiceOptions snapshot_options = cold_options;
  snapshot_options.snapshot_dir = dir;
  {
    serve::SolverService service(snapshot_options);
    benchmark::DoNotOptimize(service.submit(*problem).get().cost);
    service.snapshot_store()->flush();
    service.snapshot_store()->write_manifest({n});
  }

  // Prewarmed: a restarted replica rehydrates the shape from disk in its
  // constructor, so the timed first request finds a warm cache entry —
  // no plan-build component at all.
  double warm_ms = 0.0;
  core::SublinearResult warm_result;
  std::uint64_t snapshot_hits = 0;
  for (int rep = 0; rep < 3; ++rep) {
    serve::SolverService service(snapshot_options);
    const auto stats = service.stats();
    SUBDP_REQUIRE(stats.shapes_prewarmed >= 1 && stats.snapshot_hits >= 1,
                  "prewarmed service did not load its plan snapshot");
    snapshot_hits = stats.snapshot_hits;
    const auto t0 = std::chrono::steady_clock::now();
    auto result = service.submit(*problem).get();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < warm_ms) warm_ms = ms;
    if (rep == 0) warm_result = std::move(result);
  }
  SUBDP_REQUIRE(cold_result.cost == warm_result.cost &&
                    cold_result.iterations == warm_result.iterations &&
                    cold_result.w == warm_result.w,
                "snapshot-loaded plan diverged from the fresh build");

  for (const bool prewarmed : {false, true}) {
    SweepRow row;
    row.family = family;
    row.n = n;
    row.variant = core::to_string(core::PwVariant::kBanded);
    row.engine = "fast";
    row.scan = scan_name(EngineConfig::kFast);
    row.backend = pram::to_string(service_workers > 1
                                      ? pram::Backend::kSerial
                                      : options.machine.backend);
    row.mode = prewarmed ? "service-prewarmed" : "service-coldstart";
    row.wall_ms = prewarmed ? warm_ms : cold_ms;
    row.iterations = cold_result.iterations;
    row.cost = cold_result.cost;
    row.workers = static_cast<unsigned>(service_workers);
    rows.push_back(row);
    const std::string suffix =
        prewarmed ? " snapshot_hits=" + std::to_string(snapshot_hits) : "";
    std::printf("%-14s n=%-4zu %-7s %-17s      %10.3f ms%s\n",
                family.c_str(), n, row.variant.c_str(), row.mode.c_str(),
                row.wall_ms, suffix.c_str());
  }
  std::printf(
      "%-14s n=%-4zu prewarming removes %.3f ms of first-request "
      "latency (%.1f%%)\n",
      family.c_str(), n, cold_ms - warm_ms,
      100.0 * (cold_ms - warm_ms) / cold_ms);
}

/// Comma-separated `--families=` filter; empty = all families.
std::vector<std::string> parse_family_filter(const std::string& arg) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= arg.size()) {
    const std::size_t comma = arg.find(',', begin);
    const std::size_t end = comma == std::string::npos ? arg.size() : comma;
    if (end > begin) out.push_back(arg.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

void run_json_sweep(const std::string& path,
                    const std::vector<std::string>& family_filter,
                    std::size_t max_n, std::size_t service_workers,
                    std::size_t queue_cap, serve::OverloadPolicy policy,
                    PriorityMix priority_mix,
                    const std::string& snapshot_dir,
                    const std::string& metrics_json,
                    const std::string& trace_json) {
  // Write through a sibling temp file, renamed over the target only once
  // a complete, non-empty artifact exists: the sweep takes minutes, and
  // an earlier version that opened (truncated) the target up front left
  // an empty BENCH_walltime.json behind when a mid-sweep failure killed
  // the run. Opening the temp file up front still fails bad paths before
  // measuring, not after.
  const std::string tmp_path = path + ".tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n",
                 tmp_path.c_str());
    std::exit(1);
  }
  const std::vector<LadderPoint> banded_ladder = {
      {32, true, true},   {64, true, true},  {96, true, true},
      {128, true, false}, {192, true, false}, {256, false, false}};
  // Entries-indexed dense: 96 is past the old 64 cube cap.
  const std::vector<LadderPoint> dense_ladder = {{48, true, true},
                                                 {96, false, false}};
  std::vector<pram::Backend> backends = {pram::Backend::kSerial,
                                         pram::Backend::kThreadPool};
  if (pram::openmp_available()) {
    backends.push_back(pram::Backend::kOpenMP);
  } else {
    std::printf("(openmp backend not compiled in; skipping its rows)\n");
  }
  std::vector<std::string> families = bench::instance_families();
  if (!family_filter.empty()) {
    families.clear();
    for (const std::string& name : family_filter) {
      bool known = false;
      for (const std::string& f : bench::instance_families()) {
        known = known || f == name;
      }
      if (!known) {
        std::fprintf(stderr, "unknown instance family: %s\n", name.c_str());
        std::exit(1);
      }
      families.push_back(name);
    }
  }
  // The batch rows' size: the acceptance point n = 96, clamped so a
  // --max-n smoke run stays tiny.
  const std::size_t batch_n = max_n < 96 ? max_n : 96;
  // 16 instances: twice the acceptance floor of 8, so the amortised
  // preparation (15 plan builds saved) stands clear of timing noise.
  constexpr std::size_t kBatchInstances = 16;

  std::vector<SweepRow> rows;
  for (const std::string& family : families) {
    for (const LadderPoint& point : banded_ladder) {
      if (point.n > max_n) continue;
      support::Rng rng(1234 + point.n);
      const auto problem = bench::make_instance(family, point.n, rng);
      sweep_variant(*problem, family, core::PwVariant::kBanded, point,
                    backends, rows);
    }
    for (const LadderPoint& point : dense_ladder) {
      if (point.n > max_n) continue;
      support::Rng rng(1234 + point.n);
      const auto problem = bench::make_instance(family, point.n, rng);
      sweep_variant(*problem, family, core::PwVariant::kDense, point,
                    backends, rows);
    }
    sweep_batch(family, batch_n, kBatchInstances, service_workers,
                queue_cap, policy, priority_mix, metrics_json, trace_json,
                rows);
    if (!snapshot_dir.empty()) {
      sweep_snapshot(family, batch_n, service_workers, snapshot_dir, rows);
    }
  }

  // Refuse to publish an empty or failed artifact: downstream CI treats
  // the target file as the source of truth, so a sweep that measured
  // nothing (or a write that errored) must exit loudly with the previous
  // artifact left untouched.
  if (rows.empty()) {
    std::fclose(out);
    std::remove(tmp_path.c_str());
    std::fprintf(stderr,
                 "sweep produced no rows; refusing to write %s\n",
                 path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"bench\": \"walltime\",\n  \"results\": [\n");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const SweepRow& row = rows[r];
    std::fprintf(
        out,
        "    {\"family\": \"%s\", \"n\": %zu, \"variant\": \"%s\", "
        "\"engine\": \"%s\", \"scan\": \"%s\", \"backend\": \"%s\", "
        "\"mode\": \"%s\", "
        "\"instances\": %zu, \"host_threads\": %u, \"workers\": %u, "
        "\"wall_ms\": %.4f, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"total_work\": %llu, \"iterations\": %zu, \"cost\": %lld}%s\n",
        row.family.c_str(), row.n, row.variant.c_str(), row.engine.c_str(),
        row.scan.c_str(), row.backend.c_str(), row.mode.c_str(),
        row.instances, row.host_threads, row.workers, row.wall_ms,
        row.p50_ms, row.p95_ms, row.p99_ms,
        static_cast<unsigned long long>(row.total_work), row.iterations,
        static_cast<long long>(row.cost), r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  const bool write_failed = std::ferror(out) != 0;
  if (std::fclose(out) != 0 || write_failed) {
    std::remove(tmp_path.c_str());
    std::fprintf(stderr, "write to %s failed; %s left untouched\n",
                 tmp_path.c_str(), path.c_str());
    std::exit(1);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    std::fprintf(stderr, "could not rename %s over %s\n", tmp_path.c_str(),
                 path.c_str());
    std::exit(1);
  }
  std::printf("(json written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<std::string> family_filter;
  std::size_t max_n = SIZE_MAX;
  std::size_t service_workers = 0;  // 0 = hardware_concurrency
  std::size_t queue_cap = 0;        // 0 = no admission row
  serve::OverloadPolicy policy = serve::OverloadPolicy::kBlock;
  PriorityMix priority_mix;         // {0, 0} = no service-qos row
  std::string snapshot_dir;         // empty = no cold/prewarmed rows
  std::string metrics_json;         // empty = no metrics artifact
  std::string trace_json;           // empty = no Chrome trace artifact
  int kept = 1;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--json=", 7) == 0) {
      json_path = argv[a] + 7;
    } else if (std::strncmp(argv[a], "--families=", 11) == 0) {
      family_filter = parse_family_filter(argv[a] + 11);
    } else if (std::strncmp(argv[a], "--max-n=", 8) == 0) {
      max_n = static_cast<std::size_t>(std::strtoull(argv[a] + 8,
                                                     nullptr, 10));
      if (max_n < 2) {
        std::fprintf(stderr, "--max-n must be at least 2\n");
        return 1;
      }
    } else if (std::strncmp(argv[a], "--workers=", 10) == 0) {
      service_workers = static_cast<std::size_t>(
          std::strtoull(argv[a] + 10, nullptr, 10));
      if (service_workers < 1) {
        std::fprintf(stderr, "--workers must be at least 1\n");
        return 1;
      }
    } else if (std::strncmp(argv[a], "--queue-cap=", 12) == 0) {
      queue_cap = static_cast<std::size_t>(
          std::strtoull(argv[a] + 12, nullptr, 10));
      if (queue_cap < 1) {
        std::fprintf(stderr, "--queue-cap must be at least 1\n");
        return 1;
      }
    } else if (std::strncmp(argv[a], "--priority-mix=", 15) == 0) {
      const char* spec = argv[a] + 15;
      char* colon = nullptr;
      priority_mix.interactive =
          static_cast<std::size_t>(std::strtoull(spec, &colon, 10));
      if (colon == nullptr || *colon != ':') {
        std::fprintf(stderr, "--priority-mix must look like <i>:<b>, "
                             "e.g. --priority-mix=3:1\n");
        return 1;
      }
      priority_mix.batch = static_cast<std::size_t>(
          std::strtoull(colon + 1, nullptr, 10));
      if (!priority_mix.enabled()) {
        std::fprintf(stderr, "--priority-mix needs a nonzero ratio\n");
        return 1;
      }
    } else if (std::strncmp(argv[a], "--snapshot-dir=", 15) == 0) {
      snapshot_dir = argv[a] + 15;
      if (snapshot_dir.empty()) {
        std::fprintf(stderr, "--snapshot-dir needs a path\n");
        return 1;
      }
    } else if (std::strncmp(argv[a], "--metrics-json=", 15) == 0) {
      metrics_json = argv[a] + 15;
      if (metrics_json.empty()) {
        std::fprintf(stderr, "--metrics-json needs a path\n");
        return 1;
      }
    } else if (std::strncmp(argv[a], "--trace-json=", 13) == 0) {
      trace_json = argv[a] + 13;
      if (trace_json.empty()) {
        std::fprintf(stderr, "--trace-json needs a path\n");
        return 1;
      }
    } else if (std::strncmp(argv[a], "--policy=", 9) == 0) {
      const std::string name = argv[a] + 9;
      if (name == "block") {
        policy = serve::OverloadPolicy::kBlock;
      } else if (name == "reject") {
        policy = serve::OverloadPolicy::kReject;
      } else {
        std::fprintf(stderr, "--policy must be block or reject\n");
        return 1;
      }
    } else {
      argv[kept++] = argv[a];
    }
  }
  argc = kept;
  if (service_workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    service_workers = hw != 0 ? hw : 1;
  }
  if (!json_path.empty()) {
    run_json_sweep(json_path, family_filter, max_n, service_workers,
                   queue_cap, policy, priority_mix, snapshot_dir,
                   metrics_json, trace_json);
    return 0;
  }
  if (!family_filter.empty() || max_n != SIZE_MAX || queue_cap != 0 ||
      priority_mix.enabled() || !snapshot_dir.empty() ||
      !metrics_json.empty() || !trace_json.empty()) {
    std::fprintf(stderr,
                 "--families / --max-n / --queue-cap / --policy / "
                 "--priority-mix / --snapshot-dir / --metrics-json / "
                 "--trace-json filter the --json sweep only\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
