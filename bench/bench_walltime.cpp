// Experiment E9: real multicore wall-clock times.
//
// Two entry points share this binary:
//  * the google-benchmark suite below (default): sequential DP vs the
//    diagonal-parallel wavefront vs the sublinear solver across execution
//    backends, plus the raw pebbling game;
//  * `--json=<path>`: a machine-readable perf-trajectory sweep. For every
//    instance family in bench/common.hpp and a ladder of sizes it times
//    the solver end-to-end (checks off) on the serial and thread-pool
//    backends, for both the reference engine configuration
//    (copy-based double buffering, full sweeps — the seed engine's hot
//    path) and the delta-buffered / frontier-driven fast path, and
//    records the instrumented PRAM work totals once per configuration.
//    The output (conventionally BENCH_walltime.json) is what CI tracks
//    across PRs.
//
// The PRAM results are about operation counts; this suite grounds the
// simulator on actual hardware. On a machine with few cores the
// backend speedups are correspondingly modest — the *shape* to check is
// that parallel backends do not lose to serial on the larger sizes and
// that the fast path beats the reference engine.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/sequential.hpp"
#include "dp/wavefront.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trees/generators.hpp"
#include "trees/pebble_game.hpp"

namespace {

using namespace subdp;

dp::MatrixChainProblem make_chain(std::size_t n) {
  support::Rng rng(1234 + n);
  return dp::MatrixChainProblem::random(n, rng);
}

void BM_SequentialDp(benchmark::State& state) {
  const auto problem = make_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::solve_sequential(problem).cost);
  }
}
BENCHMARK(BM_SequentialDp)->Arg(64)->Arg(128)->Arg(256);

void BM_Wavefront(benchmark::State& state) {
  const auto problem = make_chain(static_cast<std::size_t>(state.range(0)));
  const auto backend = static_cast<pram::Backend>(state.range(1));
  pram::MachineOptions opts;
  opts.backend = backend;
  opts.record_costs = false;
  for (auto _ : state) {
    pram::Machine machine(opts);
    benchmark::DoNotOptimize(dp::solve_wavefront(problem, machine).cost);
  }
  state.SetLabel(pram::to_string(backend));
}
BENCHMARK(BM_Wavefront)
    ->Args({256, static_cast<int>(pram::Backend::kSerial)})
    ->Args({256, static_cast<int>(pram::Backend::kThreadPool)})
    ->Args({256, static_cast<int>(pram::Backend::kOpenMP)});

// range(2) selects the engine configuration: 0 = reference (copy-based
// double buffering + full sweeps, the seed hot path), 1 = fast
// (delta-buffered + frontier-driven).
void BM_SublinearBanded(benchmark::State& state) {
  const auto problem = make_chain(static_cast<std::size_t>(state.range(0)));
  const auto backend = static_cast<pram::Backend>(state.range(1));
  const bool fast = state.range(2) != 0;
  for (auto _ : state) {
    core::SublinearOptions options;
    options.machine.backend = backend;
    options.machine.record_costs = false;
    options.delta_buffering = fast;
    options.frontier_sweeps = fast;
    core::SublinearSolver solver(options);
    benchmark::DoNotOptimize(solver.solve(problem).cost);
  }
  state.SetLabel(std::string(pram::to_string(backend)) +
                 (fast ? "/fast" : "/reference"));
}
BENCHMARK(BM_SublinearBanded)
    ->Args({32, static_cast<int>(pram::Backend::kSerial), 0})
    ->Args({32, static_cast<int>(pram::Backend::kSerial), 1})
    ->Args({32, static_cast<int>(pram::Backend::kThreadPool), 1})
    ->Args({64, static_cast<int>(pram::Backend::kSerial), 0})
    ->Args({64, static_cast<int>(pram::Backend::kSerial), 1})
    ->Args({64, static_cast<int>(pram::Backend::kThreadPool), 1})
    ->Args({64, static_cast<int>(pram::Backend::kOpenMP), 1});

void BM_SublinearDense(benchmark::State& state) {
  const auto problem = make_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::SublinearOptions options;
    options.variant = core::PwVariant::kDense;
    options.machine.record_costs = false;
    core::SublinearSolver solver(options);
    benchmark::DoNotOptimize(solver.solve(problem).cost);
  }
}
BENCHMARK(BM_SublinearDense)->Arg(32)->Arg(48);

void BM_PebbleGame(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tree = trees::make_tree(trees::TreeShape::kZigzag, n);
  for (auto _ : state) {
    trees::PebbleGame game(tree);
    game.run_until_root(support::two_ceil_sqrt(n));
    benchmark::DoNotOptimize(game.moves_made());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tree.node_count()));
}
BENCHMARK(BM_PebbleGame)->Arg(1 << 10)->Arg(1 << 14);

// ---- --json sweep ----------------------------------------------------------

struct SweepRow {
  std::string family;
  std::size_t n = 0;
  std::string engine;   // "reference" | "fast"
  std::string backend;  // "serial" | "threads"
  double wall_ms = 0.0;
  std::uint64_t total_work = 0;  // instrumented PRAM ops (engine-independent)
  std::size_t iterations = 0;
  Cost cost = 0;
};

double time_solve_ms(const dp::Problem& problem, bool fast,
                     pram::Backend backend) {
  core::SublinearOptions options;
  options.machine.backend = backend;
  options.machine.record_costs = false;
  options.delta_buffering = fast;
  options.frontier_sweeps = fast;
  core::SublinearSolver solver(options);
  double best_ms = 0.0;
  for (int rep = 0; rep < 2; ++rep) {  // best-of-2 absorbs cold caches
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = solver.solve(problem);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(result.cost);
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

void run_json_sweep(const std::string& path) {
  // Open the output up front: the sweep takes minutes, and a bad path
  // should fail before measuring, not after.
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", path.c_str());
    std::exit(1);
  }
  const std::vector<std::size_t> sizes = {32, 64, 96};
  std::vector<SweepRow> rows;
  for (const std::string& family : bench::instance_families()) {
    for (const std::size_t n : sizes) {
      support::Rng rng(1234 + n);
      const auto problem = bench::make_instance(family, n, rng);

      // Work totals and iteration counts come from one instrumented
      // serial run; they are identical across engines and backends (the
      // equivalence tests enforce this), so measure them once.
      core::SublinearOptions counted;
      counted.machine.backend = pram::Backend::kSerial;
      counted.machine.record_costs = true;
      core::SublinearSolver counter(counted);
      const auto counted_result = counter.solve(*problem);
      const std::uint64_t total_work = counter.machine().costs().total_work();

      for (const bool fast : {false, true}) {
        for (const pram::Backend backend :
             {pram::Backend::kSerial, pram::Backend::kThreadPool}) {
          SweepRow row;
          row.family = family;
          row.n = n;
          row.engine = fast ? "fast" : "reference";
          row.backend = pram::to_string(backend);
          row.wall_ms = time_solve_ms(*problem, fast, backend);
          row.total_work = total_work;
          row.iterations = counted_result.iterations;
          row.cost = counted_result.cost;
          rows.push_back(row);
          std::printf("%-14s n=%-4zu %-9s %-7s %10.3f ms\n", family.c_str(),
                      n, row.engine.c_str(), row.backend.c_str(),
                      row.wall_ms);
        }
      }
    }
  }

  std::fprintf(out, "{\n  \"bench\": \"walltime\",\n  \"results\": [\n");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const SweepRow& row = rows[r];
    std::fprintf(
        out,
        "    {\"family\": \"%s\", \"n\": %zu, \"engine\": \"%s\", "
        "\"backend\": \"%s\", \"wall_ms\": %.4f, \"total_work\": %llu, "
        "\"iterations\": %zu, \"cost\": %lld}%s\n",
        row.family.c_str(), row.n, row.engine.c_str(), row.backend.c_str(),
        row.wall_ms, static_cast<unsigned long long>(row.total_work),
        row.iterations, static_cast<long long>(row.cost),
        r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("(json written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int kept = 1;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--json=", 7) == 0) {
      json_path = argv[a] + 7;
    } else {
      argv[kept++] = argv[a];
    }
  }
  argc = kept;
  if (!json_path.empty()) {
    run_json_sweep(json_path);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
