// Experiment E9: real multicore wall-clock times (google-benchmark).
//
// The PRAM results are about operation counts; this suite grounds the
// simulator on actual hardware: sequential DP vs the diagonal-parallel
// wavefront vs the sublinear solver across execution backends, plus the
// raw pebbling game. On a machine with few cores the speedups are
// correspondingly modest — the *shape* to check is that parallel backends
// do not lose to serial on the larger sizes and that solver time is
// dominated by the a-square step.

#include <benchmark/benchmark.h>

#include "core/sublinear_solver.hpp"
#include "dp/matrix_chain.hpp"
#include "dp/sequential.hpp"
#include "dp/wavefront.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trees/generators.hpp"
#include "trees/pebble_game.hpp"

namespace {

using namespace subdp;

dp::MatrixChainProblem make_chain(std::size_t n) {
  support::Rng rng(1234 + n);
  return dp::MatrixChainProblem::random(n, rng);
}

void BM_SequentialDp(benchmark::State& state) {
  const auto problem = make_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::solve_sequential(problem).cost);
  }
}
BENCHMARK(BM_SequentialDp)->Arg(64)->Arg(128)->Arg(256);

void BM_Wavefront(benchmark::State& state) {
  const auto problem = make_chain(static_cast<std::size_t>(state.range(0)));
  const auto backend = static_cast<pram::Backend>(state.range(1));
  pram::MachineOptions opts;
  opts.backend = backend;
  opts.record_costs = false;
  for (auto _ : state) {
    pram::Machine machine(opts);
    benchmark::DoNotOptimize(dp::solve_wavefront(problem, machine).cost);
  }
  state.SetLabel(pram::to_string(backend));
}
BENCHMARK(BM_Wavefront)
    ->Args({256, static_cast<int>(pram::Backend::kSerial)})
    ->Args({256, static_cast<int>(pram::Backend::kThreadPool)})
    ->Args({256, static_cast<int>(pram::Backend::kOpenMP)});

void BM_SublinearBanded(benchmark::State& state) {
  const auto problem = make_chain(static_cast<std::size_t>(state.range(0)));
  const auto backend = static_cast<pram::Backend>(state.range(1));
  for (auto _ : state) {
    core::SublinearOptions options;
    options.machine.backend = backend;
    options.machine.record_costs = false;
    core::SublinearSolver solver(options);
    benchmark::DoNotOptimize(solver.solve(problem).cost);
  }
  state.SetLabel(pram::to_string(backend));
}
BENCHMARK(BM_SublinearBanded)
    ->Args({32, static_cast<int>(pram::Backend::kSerial)})
    ->Args({32, static_cast<int>(pram::Backend::kThreadPool)})
    ->Args({64, static_cast<int>(pram::Backend::kSerial)})
    ->Args({64, static_cast<int>(pram::Backend::kThreadPool)})
    ->Args({64, static_cast<int>(pram::Backend::kOpenMP)});

void BM_SublinearDense(benchmark::State& state) {
  const auto problem = make_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::SublinearOptions options;
    options.variant = core::PwVariant::kDense;
    options.machine.record_costs = false;
    core::SublinearSolver solver(options);
    benchmark::DoNotOptimize(solver.solve(problem).cost);
  }
}
BENCHMARK(BM_SublinearDense)->Arg(32)->Arg(48);

void BM_PebbleGame(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tree = trees::make_tree(trees::TreeShape::kZigzag, n);
  for (auto _ : state) {
    trees::PebbleGame game(tree);
    game.run_until_root(support::two_ceil_sqrt(n));
    benchmark::DoNotOptimize(game.moves_made());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tree.node_count()));
}
BENCHMARK(BM_PebbleGame)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace
