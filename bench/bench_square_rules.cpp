// Experiment E4 (Sec. 3 vs Rytter [8]): move counts of the one-level
// square rule (this paper) against path-doubling (Rytter) across shapes.
//
// Reproduces the move-count half of the paper's central trade-off: the
// weaker square needs Theta(sqrt n) moves on adversarial shapes (vs
// Theta(log n) for doubling) but each of its moves costs a factor ~n less
// work — the work half is measured by bench_work.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "support/cli.hpp"
#include "trees/pebble_game.hpp"

using namespace subdp;

int main(int argc, char** argv) {
  support::ArgParser args("E4: one-level vs path-doubling square rules");
  args.add_int("max-exp", 14, "largest n = 2^k");
  args.add_int("trials", 10, "trials per size for random shapes");
  args.add_int("seed", 11, "base random seed");
  args.add_string("csv", "", "optional CSV output path");
  if (!args.parse(argc, argv)) return 2;

  const auto max_exp = static_cast<std::size_t>(args.get_int("max-exp"));
  const auto trials = static_cast<int>(args.get_int("trials"));

  support::TableWriter table(
      "E4: moves by square rule (one-level = this paper, "
      "path-doubling = Rytter)",
      {"shape", "n", "one-level", "path-doubling", "ratio", "2ceil(sqrt n)",
       "2ceil(log2 n)"});

  const trees::TreeShape shapes[] = {trees::TreeShape::kZigzag,
                                     trees::TreeShape::kComplete,
                                     trees::TreeShape::kRandom};
  std::vector<double> zig_ns, zig_ratio;
  for (const auto shape : shapes) {
    const bool randomized = shape == trees::TreeShape::kRandom;
    for (std::size_t n = 16; n <= (std::size_t{1} << max_exp); n *= 4) {
      support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) + n);
      const int reps = randomized ? trials : 1;
      double one_total = 0, dbl_total = 0;
      for (int rep = 0; rep < reps; ++rep) {
        const auto tree = trees::make_tree(shape, n, &rng);
        trees::PebbleGame one(tree, trees::SquareRule::kOneLevel);
        trees::PebbleGame dbl(tree, trees::SquareRule::kPathDoubling);
        one.run_until_root(support::two_ceil_sqrt(n));
        dbl.run_until_root(support::two_ceil_sqrt(n));
        one_total += static_cast<double>(one.moves_made());
        dbl_total += static_cast<double>(dbl.moves_made());
      }
      const double one_mean = one_total / reps;
      const double dbl_mean = dbl_total / reps;
      table.add_row(
          {std::string(to_string(shape)), static_cast<std::int64_t>(n),
           one_mean, dbl_mean, one_mean / dbl_mean,
           static_cast<std::int64_t>(support::two_ceil_sqrt(n)),
           static_cast<std::int64_t>(2 * support::ceil_log2(n))});
      if (shape == trees::TreeShape::kZigzag) {
        zig_ns.push_back(static_cast<double>(n));
        zig_ratio.push_back(one_mean / dbl_mean);
      }
    }
  }

  table.print(std::cout);
  bench::maybe_write_csv(table, args.get_string("csv"));

  std::printf("\nZigzag one-level/path-doubling move ratio growth:\n");
  bench::print_power_fit(std::cout, "ratio", zig_ns, zig_ratio, 0.5);
  std::printf(
      "\nPaper's claim: the deliberately weakened square still meets the "
      "2*ceil(sqrt n) bound while Rytter's doubling runs in O(log n) "
      "moves; the ratio grows like sqrt(n)/log(n) on the zigzag shape.\n");
  return 0;
}
