// Experiment E5 (Secs. 2+4): iterations-to-convergence of the full
// algorithm against the 2*ceil(sqrt n) worst-case schedule, per instance
// family.
//
// Reproduces: correctness within the bound on every family; O(log n)-ish
// observed iterations on the three applications and on planted
// complete/skewed optima (the Sec. 6 "binary decomposition" effect); the
// planted zigzag optima as the Theta(sqrt n) adversarial family.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/sequential.hpp"
#include "support/cli.hpp"

using namespace subdp;

int main(int argc, char** argv) {
  support::ArgParser args("E5: solver iterations vs the sqrt-n schedule");
  args.add_int("max-n", 96, "largest instance size");
  args.add_int("trials", 3, "random instances per (family, n)");
  args.add_int("seed", 5, "base random seed");
  args.add_string("csv", "", "optional CSV output path");
  if (!args.parse(argc, argv)) return 2;

  const auto max_n = static_cast<std::size_t>(args.get_int("max-n"));
  const auto trials = static_cast<int>(args.get_int("trials"));

  support::TableWriter table(
      "E5: iterations to fixed point (banded solver) vs bound",
      {"family", "n", "iterations(mean)", "bound", "iters/bound",
       "log2(n)", "all correct"});

  std::vector<double> zig_ns, zig_iters, rnd_ns, rnd_iters;
  for (const auto& family : bench::instance_families()) {
    for (std::size_t n = 12; n <= max_n; n *= 2) {
      support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) +
                       n * 131);
      double total_iters = 0;
      bool all_correct = true;
      const bool randomized =
          family == "matrix-chain" || family == "optimal-bst" ||
          family == "triangulation";
      const int reps = randomized ? trials : 1;
      for (int rep = 0; rep < reps; ++rep) {
        const auto problem = bench::make_instance(family, n, rng);
        core::SublinearOptions options;  // banded, fixed-point stop
        core::SublinearSolver solver(options);
        const auto result = solver.solve(*problem);
        total_iters += static_cast<double>(result.iterations);
        all_correct &= result.cost == dp::solve_sequential(*problem).cost;
      }
      const double mean = total_iters / reps;
      const auto bound = support::two_ceil_sqrt(n);
      table.add_row({family, static_cast<std::int64_t>(n), mean,
                     static_cast<std::int64_t>(bound),
                     mean / static_cast<double>(bound),
                     static_cast<std::int64_t>(support::ceil_log2(n)),
                     std::string(all_correct ? "yes" : "NO")});
      if (family == "zigzag") {
        zig_ns.push_back(static_cast<double>(n));
        zig_iters.push_back(mean);
      }
      if (family == "matrix-chain") {
        rnd_ns.push_back(static_cast<double>(n));
        rnd_iters.push_back(mean);
      }
      if (!all_correct) {
        table.print(std::cout);
        std::fprintf(stderr, "CORRECTNESS FAILURE at %s n=%zu\n",
                     family.c_str(), n);
        return 1;
      }
    }
  }

  table.print(std::cout);
  bench::maybe_write_csv(table, args.get_string("csv"));

  std::printf("\nGrowth fits (iterations vs n):\n");
  bench::print_power_fit(std::cout, "zigzag (adversarial)", zig_ns,
                         zig_iters, 0.5);
  bench::print_log_fit(std::cout, "matrix-chain (typical)", rnd_ns,
                       rnd_iters);
  std::printf(
      "\nPaper's claims: every family converges within 2*ceil(sqrt n) "
      "iterations (Sec. 4); zigzag needs Theta(sqrt n) of them (Sec. 6) "
      "while typical instances finish in O(log n).\n");
  return 0;
}
