// Experiment E7a (Sec. 5 ablation): dense vs banded layouts — identical
// answers, smaller tables, less square work.
//
// Reproduces: the O(n^4) -> O(n^2 B^2 + n^3) cell reduction and the
// per-step square-work reduction that drives the O(n^5/log n) ->
// O(n^3.5/log n) processor bound.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/pw_banded.hpp"
#include "core/pw_dense.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/sequential.hpp"
#include "support/cli.hpp"

using namespace subdp;

namespace {

// The dense square step's candidate count is data-independent: every quad
// (i,j,p,q) scans (p-i) + (j-q) split positions. Closed-form per
// iteration, so the comparison can extend past the dense memory envelope.
std::uint64_t dense_square_ops_per_iteration(std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len;
      for (std::size_t p = i; p < j; ++p) {
        for (std::size_t q = p + 1; q <= j; ++q) {
          if (p == i && q == j) continue;
          total += (p - i) + (j - q);
        }
      }
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("E7a: Sec. 5 reduction — dense vs banded");
  args.add_int("max-n", 96, "largest size (banded measured everywhere)");
  args.add_int("max-dense-n", 48, "largest size the dense solver runs at");
  args.add_int("seed", 13, "random seed");
  args.add_string("csv", "", "optional CSV output path");
  if (!args.parse(argc, argv)) return 2;

  const auto max_n = static_cast<std::size_t>(args.get_int("max-n"));
  const auto max_dense =
      static_cast<std::size_t>(args.get_int("max-dense-n"));

  support::TableWriter table(
      "E7a: dense (Sec. 2) vs banded (Sec. 5) on matrix-chain instances "
      "(fixed schedule; dense square ops analytic, validated against the "
      "measured run up to the dense memory envelope)",
      {"n", "B", "cells banded", "cells dense", "cell ratio",
       "sq work banded", "sq work dense", "work ratio", "same w"});

  std::vector<double> ns, ratios;
  for (std::size_t n = 8; n <= max_n; n = n * 3 / 2) {
    support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) + n);
    const auto problem = dp::MatrixChainProblem::random(n, rng);
    const std::size_t band = support::two_ceil_sqrt(n);
    const std::size_t iterations = support::two_ceil_sqrt(n);
    const std::uint64_t dense_square =
        dense_square_ops_per_iteration(n) * iterations;
    const std::size_t dense_cells = (n + 1) * (n + 1) * (n + 1) * (n + 1);

    core::SublinearOptions banded_opts;
    banded_opts.termination = core::TerminationMode::kFixedBound;
    core::SublinearSolver banded(banded_opts);
    const auto banded_result = banded.solve(problem);
    const std::size_t banded_cells = banded.pw_cell_count();
    const std::uint64_t banded_square =
        banded.machine().costs().phase_totals().at("a-square").work;

    std::string same = "n/a";
    if (n <= max_dense) {
      core::SublinearOptions dense_opts;
      dense_opts.variant = core::PwVariant::kDense;
      dense_opts.termination = core::TerminationMode::kFixedBound;
      core::SublinearSolver dense(dense_opts);
      const auto dense_result = dense.solve(problem);
      same = dense_result.w == banded_result.w ? "yes" : "NO";
      const std::uint64_t measured =
          dense.machine().costs().phase_totals().at("a-square").work;
      if (measured != dense_square) {
        std::fprintf(stderr,
                     "analytic dense square ops mismatch at n=%zu: "
                     "%llu vs measured %llu\n",
                     n, static_cast<unsigned long long>(dense_square),
                     static_cast<unsigned long long>(measured));
        return 1;
      }
      if (same == "NO") {
        std::fprintf(stderr, "DENSE/BANDED DISAGREEMENT at n=%zu\n", n);
        return 1;
      }
    }

    const double work_ratio = static_cast<double>(dense_square) /
                              static_cast<double>(banded_square);
    table.add_row({static_cast<std::int64_t>(n),
                   static_cast<std::int64_t>(band),
                   static_cast<std::int64_t>(banded_cells),
                   static_cast<std::int64_t>(dense_cells),
                   static_cast<double>(dense_cells) /
                       static_cast<double>(banded_cells),
                   static_cast<std::int64_t>(banded_square),
                   static_cast<std::int64_t>(dense_square), work_ratio,
                   same});
    ns.push_back(static_cast<double>(n));
    ratios.push_back(work_ratio);
  }

  table.print(std::cout);
  bench::maybe_write_csv(table, args.get_string("csv"));

  std::printf("\nSquare-work ratio growth (dense/banded):\n");
  bench::print_power_fit(std::cout, "ratio", ns, ratios, 1.5);
  std::printf(
      "\nPaper's claim: the square step drops from O(n^5) to O(n^3.5) "
      "work per iteration — an n^1.5-factor reduction (the measured "
      "exponent approaches 1.5 from below while B = 2*ceil(sqrt n) is "
      "still comparable to n) — with identical results.\n");
  return 0;
}
