// Experiment E10 (Sec. 1/2): one engine, all three motivating
// applications (plus the generic user recurrence), with per-application
// statistics and Brent-scheduled times at the paper's processor counts.
//
// Reproduces the applicability claim: every recurrence of family (*) is
// served by the same three parallel operations, and the Brent emulation
// shows how the accounted time collapses as processors approach the
// paper's O(n^3.5/log n) budget.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/sublinear_solver.hpp"
#include "dp/sequential.hpp"
#include "support/cli.hpp"

using namespace subdp;

int main(int argc, char** argv) {
  support::ArgParser args("E10: all applications through one engine");
  args.add_int("n", 48, "instance size");
  args.add_int("seed", 31, "random seed");
  args.add_string("csv", "", "optional CSV output path");
  if (!args.parse(argc, argv)) return 2;

  const auto n = static_cast<std::size_t>(args.get_int("n"));
  const double dn = static_cast<double>(n);
  const auto paper_procs = static_cast<std::uint64_t>(
      std::pow(dn, 3.5) / std::log2(dn > 2 ? dn : 2.0));

  support::TableWriter table(
      "E10: the three applications (+ planted shapes), banded solver, "
      "n = " + std::to_string(n),
      {"family", "cost", "iterations", "bound", "work", "depth",
       "T(p=1)", "T(p=64)", "T(p=n^3.5/log n)", "correct"});

  bool all_correct = true;
  for (const auto& family : bench::instance_families()) {
    support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
    const auto problem = bench::make_instance(family, n, rng);
    core::SublinearOptions options;
    core::SublinearSolver solver(options);
    const auto result = solver.solve(*problem);
    const auto& costs = solver.machine().costs();
    const bool correct =
        result.cost == dp::solve_sequential(*problem).cost;
    all_correct &= correct;
    table.add_row({family, static_cast<std::int64_t>(result.cost),
                   static_cast<std::int64_t>(result.iterations),
                   static_cast<std::int64_t>(result.iteration_bound),
                   static_cast<std::int64_t>(costs.total_work()),
                   static_cast<std::int64_t>(costs.total_depth()),
                   static_cast<std::int64_t>(costs.brent_time(1)),
                   static_cast<std::int64_t>(costs.brent_time(64)),
                   static_cast<std::int64_t>(costs.brent_time(paper_procs)),
                   std::string(correct ? "yes" : "NO")});
  }

  table.print(std::cout);
  bench::maybe_write_csv(table, args.get_string("csv"));
  std::printf(
      "\nPaper's claim: matrix-chain ordering, optimal BSTs and polygon "
      "triangulation are all instances of recurrence (*) (Sec. 1); at the "
      "paper's processor budget (p = n^3.5/log n = %llu here) the "
      "Brent-scheduled time approaches the pure depth, i.e. the "
      "O(sqrt(n) log n) bound.\n",
      static_cast<unsigned long long>(paper_procs));
  return all_correct ? 0 : 1;
}
